(* critload — command-line interface to the library.

   Subcommands:
     verify                      run every app functionally + host checks
     classify <app|file.ptx>     print the load classification
     characterize <app>          functional characterization (Figs 1,9-12)
     simulate <app>              cycle simulation (Figs 2-8 metrics)
     trace <app>                 cycle simulation with event tracing
     sweep                       parallel multi-app sweep, JSON export
     serve                       long-running sweep daemon (Unix socket)
     submit                      client of a running serve daemon
     list                        list the applications

   Exit codes follow the Critload.Exit_code table: 0 ok, 1 check
   failure, 2 bad usage, 3 simulator error, 4 timeout, 5 server
   unavailable, 130 interrupted. *)

open Cmdliner
module EC = Critload.Exit_code

(* Every subcommand carries the package version, so `critload --version`
   and `critload SUBCOMMAND --version` both answer. *)
let cmd_info name ~doc = Cmd.info name ~doc ~version:Critload.Version.version

(* Unknown application names are usage errors (exit 2), not crashes. *)
let find_app ~cmd name =
  match Workloads.Suite.find name with
  | app -> app
  | exception Invalid_argument msg ->
      Printf.eprintf "%s: %s\n" cmd msg;
      exit EC.usage

let check_app_names ~cmd names =
  try List.iter (fun a -> ignore (Workloads.Suite.find a)) names
  with Invalid_argument msg ->
    Printf.eprintf "%s: %s\n" cmd msg;
    exit EC.usage

let scale_arg =
  let scale_conv =
    Arg.enum
      [ ("small", Workloads.App.Small); ("default", Workloads.App.Default);
        ("large", Workloads.App.Large) ]
  in
  Arg.(
    value
    & opt scale_conv Workloads.App.Default
    & info [ "scale" ] ~docv:"SCALE" ~doc:"Dataset scale: small|default|large.")

let cap_arg =
  Arg.(
    value & opt int 150_000
    & info [ "cap" ] ~docv:"N"
        ~doc:"Warp-instruction cap for cycle simulation (0 = none).")

let app_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Application name (see `critload list`).")

(* Shared option spellings: every subcommand that writes a file, forks
   workers, selects an output encoding or filters by kernel uses the
   same flag names. *)

let out_arg ?(doc = "Output file ('-' for stdout).") () =
  Arg.(value & opt string "-" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let jobs_arg ?(default = 4) () =
  Arg.(
    value & opt int default
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Number of concurrent worker processes.")

let format_arg ~alts ~default ~doc =
  Arg.(value & opt (Arg.enum alts) default & info [ "format" ] ~docv:"FMT" ~doc)

let kernel_arg ~doc =
  Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"K" ~doc)

let policy_doc =
  "Memory-system policy: $(b,baseline), $(b,iar) (a small reorder unit \
   batches same-line non-deterministic loads before the L1), or \
   $(b,holistic) (bypass streaming loads, protect non-deterministic \
   lines, throttle CTAs under reservation-fail pressure)."

let policy_conv =
  Arg.conv
    ( (fun s ->
        match Gsim.Config.policy_of_string s with
        | Ok p -> Ok p
        | Error msg -> Error (`Msg msg)),
      fun ppf p -> Format.pp_print_string ppf (Gsim.Config.policy_name p) )

let policy_arg =
  Arg.(
    value
    & opt policy_conv Gsim.Config.Baseline
    & info [ "policy" ] ~docv:"POLICY" ~doc:policy_doc)

(* Sweeping subcommands accept the flag repeatedly: one config per
   policy, labelled by the policy name. *)
let policies_arg =
  Arg.(
    value & opt_all policy_conv []
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:(policy_doc ^ "  Repeatable; default baseline only."))

let policy_cfgs ~cfg policies =
  let policies =
    match policies with [] -> [ Gsim.Config.Baseline ] | l -> l
  in
  List.map
    (fun p -> (Gsim.Config.policy_name p, cfg |> Gsim.Config.with_policy p))
    policies

let no_fast_forward_arg =
  Arg.(
    value & flag
    & info [ "no-fast-forward" ]
        ~doc:
          "Advance the cycle simulator one cycle at a time instead of \
           jumping over quiescent windows.  Statistics and traces are \
           identical either way (see DESIGN.md); this exists for \
           cross-checking and timing-sensitive debugging.")

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (a : Workloads.App.t) ->
        Printf.printf "%-6s %-7s %s\n" a.Workloads.App.name
          (Workloads.App.category_name a.Workloads.App.category)
          a.Workloads.App.description)
      Workloads.Suite.all
  in
  Cmd.v (cmd_info "list" ~doc:"List the 15 applications of the suite.")
    Term.(const run $ const ())

(* ---- verify ---- *)

(* Distinct kernels of an app, in first-launch order. *)
let app_kernels name =
  let app = Workloads.Suite.find name in
  let run = app.Workloads.App.make Workloads.App.Small in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        let k = launch.Gsim.Launch.kernel in
        if not (Hashtbl.mem seen k.Ptx.Kernel.kname) then begin
          Hashtbl.add seen k.Ptx.Kernel.kname ();
          acc := k :: !acc
        end
  done;
  List.rev !acc

(* Static verification of one kernel; returns the number of errors. *)
let verify_kernel_report k =
  let diags = Dataflow.Verify.verify_kernel k in
  let errors = Ptx.Verify.errors diags in
  if diags = [] then
    Printf.printf "%-14s ok\n" k.Ptx.Kernel.kname
  else begin
    Printf.printf "%-14s %d diagnostic(s)\n" k.Ptx.Kernel.kname
      (List.length diags);
    List.iter
      (fun d -> Printf.printf "  %s\n" (Ptx.Verify.to_string d))
      diags
  end;
  List.length errors

let verify_cmd =
  let module P = Critload.Parsweep in
  let module Json = Gsim.Stats_io.Json in
  let run target scale jobs out =
    match target with
    | Some t ->
        (* static verification only: fast, no simulation *)
        let kernels =
          if Sys.file_exists t then begin
            let ic = open_in t in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            match Ptx.Parse.kernel_of_string text with
            | k -> [ k ]
            | exception Ptx.Parse.Error msg ->
                Printf.eprintf "verify: parse error in %s: %s\n" t msg;
                exit EC.failure
            | exception Ptx.Kernel.Invalid msg ->
                Printf.eprintf "verify: invalid kernel in %s: %s\n" t msg;
                exit EC.failure
          end
          else
            match app_kernels t with
            | ks -> ks
            | exception Invalid_argument msg ->
                Printf.eprintf "verify: %s\n" msg;
                exit EC.usage
        in
        let errors =
          List.fold_left (fun n k -> n + verify_kernel_report k) 0 kernels
        in
        if errors > 0 then exit EC.failure
    | None ->
        (* whole-suite functional verification, over the same worker
           pool the sweep uses *)
        let apps =
          List.map
            (fun (a : Workloads.App.t) -> a.Workloads.App.name)
            Workloads.Suite.all
        in
        let job_list =
          P.jobs ~apps ~scales:[ scale ]
            ~cfgs:[ ("base", Gsim.Config.default) ]
            ~mode:P.Func ()
        in
        let outcomes = P.run ~workers:jobs job_list in
        let failures = ref 0 in
        List.iteri
          (fun i (j : P.job) ->
            match outcomes.(i) with
            | P.Failed msg ->
                incr failures;
                Printf.printf "%-6s FAIL  %s\n" j.P.sj_app msg
            | P.Completed payload ->
                let f = P.func_summary_of_json payload in
                let ok = f.P.fu_check in
                if not ok then incr failures;
                Printf.printf "%-6s %-4s  %8d warp insts\n" j.P.sj_app
                  (if ok then "OK" else "FAIL")
                  f.P.fu_warp_insts)
          job_list;
        (if out <> "-" then begin
           let oc = open_out out in
           Json.to_channel oc (P.sweep_to_json ~jobs:job_list ~outcomes);
           output_char oc '\n';
           close_out oc;
           Printf.eprintf "verify: wrote %s\n%!" out
         end);
        if !failures > 0 then exit EC.failure
  in
  let target =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"APP|FILE"
          ~doc:
            "Statically verify one application's kernels (or a .ptx \
             file) and print the diagnostics.  Without it, run every \
             application functionally and check the results.")
  in
      Cmd.v
      (cmd_info "verify"
       ~doc:
         "Check applications: statically verify one app's kernels, or \
          (no argument) run the whole suite functionally against the \
          host references.")
    Term.(
      const run $ target $ scale_arg $ jobs_arg ()
      $ out_arg
          ~doc:
            "Also export the functional results as a sweep-format JSON \
             document to $(docv) ('-', the default, writes no file)."
          ())

(* ---- classify ---- *)

let classify_cmd =
  let run target =
    if Sys.file_exists target then begin
      let ic = open_in target in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let kernel = Ptx.Parse.kernel_of_string text in
      Format.printf "%a@." Dataflow.Classify.pp_result
        (Dataflow.Classify.classify kernel);
      Format.printf "static coalescing prediction (1-D block assumed):@.%a@."
        (Dataflow.Stride.pp_predictions ?block:None) kernel
    end
    else begin
      let app = find_app ~cmd:"classify" target in
      let run = app.Workloads.App.make Workloads.App.Small in
      let seen = Hashtbl.create 8 in
      let continue_ = ref true in
      while !continue_ do
        match run.Workloads.App.next_launch () with
        | None -> continue_ := false
        | Some launch ->
            let k = launch.Gsim.Launch.kernel in
            if not (Hashtbl.mem seen k.Ptx.Kernel.kname) then begin
              Hashtbl.add seen k.Ptx.Kernel.kname ();
              Format.printf "%a" Dataflow.Classify.pp_result
                launch.Gsim.Launch.classes;
              Format.printf "  coalescing prediction:@.%a"
                (Dataflow.Stride.pp_predictions
                   ~block:launch.Gsim.Launch.block)
                k;
              (* spare registers bound the prefetch slots of the
                 paper's [16]-style optimization *)
              let cfg = Ptx.Cfg.build k in
              let lv = Dataflow.Liveness.compute k cfg in
              let pressure = Dataflow.Liveness.max_pressure lv in
              Format.printf
                "  registers: %d used, peak pressure %d, %d spare@.@."
                k.Ptx.Kernel.nregs pressure
                (max 0 (k.Ptx.Kernel.nregs - pressure))
            end
      done
    end
  in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"APP|FILE" ~doc:"Application name or .ptx file.")
  in
      Cmd.v
      (cmd_info "classify"
       ~doc:"Print the deterministic / non-deterministic load classification.")
    Term.(const run $ target)

(* ---- characterize (functional) ---- *)

let characterize_cmd =
  let run name scale =
    let app = find_app ~cmd:"characterize" name in
    let r =
      match
        Critload.Runner.run ~mode:Critload.Runner.Func ~scale ~check:false app
      with
      | Ok r -> Critload.Runner.Report.func_exn r
      | Error e ->
          Printf.eprintf "characterize: %s\n" (Gsim.Sim_error.to_string e);
          exit EC.sim_error
    in
    let fs = r.Critload.Runner.fr_fs in
    let open Dataflow.Classify in
    Printf.printf "app: %s (%s scale)\n" name
      (match scale with
      | Workloads.App.Small -> "small"
      | Workloads.App.Default -> "default"
      | Workloads.App.Large -> "large");
    Printf.printf "warp instructions: %d (%d launches, %d CTAs)\n"
      fs.Gsim.Funcsim.warp_insts r.Critload.Runner.fr_launches
      r.Critload.Runner.fr_ctas;
    Printf.printf "static loads: %d D, %d N\n" r.Critload.Runner.fr_static_d
      r.Critload.Runner.fr_static_n;
    Printf.printf "dynamic load warps: %d D, %d N (D fraction %.1f%%)\n"
      fs.Gsim.Funcsim.gld_warps.(0)
      fs.Gsim.Funcsim.gld_warps.(1)
      (100.0 *. Gsim.Funcsim.deterministic_fraction fs);
    Printf.printf "requests/active thread: N %.2f vs D %.2f\n"
      (Gsim.Funcsim.requests_per_active_thread fs Nondeterministic)
      (Gsim.Funcsim.requests_per_active_thread fs Deterministic);
    Printf.printf "shared loads per global load: %.2f\n"
      (Gsim.Funcsim.shared_per_global fs);
    Printf.printf "cold miss: %.1f%%, accesses/block: %.1f\n"
      (100.0 *. Gsim.Funcsim.cold_miss_ratio fs)
      (Gsim.Funcsim.avg_accesses_per_block fs);
    let sh = Gsim.Funcsim.sharing fs in
    Printf.printf
      "inter-CTA sharing: %.1f%% blocks, %.1f%% accesses, %.1f CTAs/block\n"
      (100.0 *. sh.Gsim.Funcsim.sh_block_ratio)
      (100.0 *. sh.Gsim.Funcsim.sh_access_ratio)
      sh.Gsim.Funcsim.sh_avg_ctas;
    (* hottest load instructions *)
    let hot =
      Hashtbl.fold (fun k v acc -> (v, k) :: acc) fs.Gsim.Funcsim.gld_warps_by_pc []
      |> List.sort compare |> List.rev
      |> List.filteri (fun i _ -> i < 8)
    in
    Printf.printf "hottest global loads:\n";
    List.iter
      (fun (count, (kernel, pc)) ->
        Printf.printf "  %-14s pc %3d  %8d warp loads\n" kernel pc count)
      hot
  in
      Cmd.v
      (cmd_info "characterize"
       ~doc:"Functional characterization of one application.")
    Term.(const run $ app_arg $ scale_arg)

(* ---- dot (graphviz export) ---- *)

let dot_cmd =
  let run name which =
    let app = find_app ~cmd:"dot" name in
    let run = app.Workloads.App.make Workloads.App.Small in
    (match run.Workloads.App.next_launch () with
    | None -> prerr_endline "no launch"
    | Some launch ->
        let k = launch.Gsim.Launch.kernel in
        (match which with
        | "cfg" -> print_string (Ptx.Cfg.to_dot (Ptx.Cfg.build k))
        | "deps" ->
            let cfg = Ptx.Cfg.build k in
            let r = Dataflow.Reaching.compute k cfg in
            print_string (Dataflow.Depgraph.to_dot (Dataflow.Depgraph.build k r))
        | other ->
            Printf.eprintf "unknown graph kind %s (cfg|deps)\n" other;
            exit EC.usage));
    ()
  in
  let which =
    Arg.(
      value
      & opt string "cfg"
      & info [ "kind" ] ~docv:"KIND" ~doc:"Graph to export: cfg or deps.")
  in
      Cmd.v
      (cmd_info "dot"
       ~doc:
         "Export the first kernel's control-flow or dependence graph as \
          Graphviz dot.")
    Term.(const run $ app_arg $ which)

(* ---- advise ---- *)

let advise_cmd =
  let run name scale =
    let app = find_app ~cmd:"advise" name in
    let advice = Critload.Advisor.advise_app app scale in
    Format.printf
      "per-load hardware advice for %s (class x stride x walk):@.%a" name
      Critload.Advisor.pp_advice advice;
    let n_policies = List.length (Critload.Advisor.policies advice) in
    Printf.printf "%d of %d loads get a policy override\n" n_policies
      (List.length advice)
  in
      Cmd.v
      (cmd_info "advise"
       ~doc:
         "Per-load instruction-aware policy advice (paper Section X.A): \
          prefetch walking non-deterministic loads, split gathers.")
    Term.(const run $ app_arg $ scale_arg)

(* ---- simulate (cycle-level) ---- *)

let simulate_cmd =
  let run name scale cap policy no_ff =
    let app = find_app ~cmd:"simulate" name in
    let cfg =
      Gsim.Config.default
      |> Gsim.Config.with_caps ~max_warp_insts:cap ()
      |> Gsim.Config.with_policy policy
    in
    let report =
      match
        Critload.Runner.run ~cfg ~scale ~fast_forward:(not no_ff) app
      with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "simulate: %s\n" (Gsim.Sim_error.to_string e);
          exit EC.sim_error
    in
    let s = Critload.Runner.Report.stats_exn report in
    let open Dataflow.Classify in
    Printf.printf "cycles: %d, warp instructions: %d, CTAs completed: %d%s\n"
      s.Gsim.Stats.cycles s.Gsim.Stats.warp_insts s.Gsim.Stats.completed_ctas
      (if s.Gsim.Stats.truncated then "  [truncated]" else "");
    if s.Gsim.Stats.truncated then
      Printf.eprintf
        "simulate: warning: run truncated by an instruction/cycle cap; \
         statistics cover only the simulated prefix\n%!";
    List.iter
      (fun (nm, c) ->
        Printf.printf
          "%s: req/warp %.2f, req/thread %.2f, turnaround %.0f, L1 miss \
           %.0f%%, L2 miss %.0f%%\n"
          nm
          (Gsim.Stats.requests_per_warp s c)
          (Gsim.Stats.requests_per_active_thread s c)
          (Gsim.Stats.avg_turnaround s c)
          (100.0 *. Gsim.Stats.l1_miss_ratio s c)
          (100.0 *. Gsim.Stats.l2_miss_ratio s c))
      [ ("N", Nondeterministic); ("D", Deterministic) ];
    let b = Gsim.Stats.l1_cycle_breakdown s in
    Printf.printf
      "L1 cycles: hit %.0f%%, hit-reserved %.0f%%, miss %.0f%%, tag-fail \
       %.0f%%, mshr-fail %.0f%%, icnt-fail %.0f%%\n"
      (100. *. b.(0)) (100. *. b.(1)) (100. *. b.(2)) (100. *. b.(3))
      (100. *. b.(4)) (100. *. b.(5));
    let n_sms = cfg.Gsim.Config.n_sms in
    Printf.printf "unit busy: SP %.1f%%, SFU %.1f%%, LD/ST %.1f%%\n"
      (100. *. Gsim.Stats.unit_busy_fraction s ~n_sms Gsim.Exec.SP)
      (100. *. Gsim.Stats.unit_busy_fraction s ~n_sms Gsim.Exec.SFU)
      (100. *. Gsim.Stats.unit_busy_fraction s ~n_sms Gsim.Exec.LDST)
  in
      Cmd.v
      (cmd_info "simulate" ~doc:"Cycle-level simulation of one application.")
    Term.(
      const run $ app_arg $ scale_arg $ cap_arg $ policy_arg
      $ no_fast_forward_arg)

(* ---- trace (cycle-level observability) ---- *)

let trace_cmd =
  let run name scale cap policy kernel format out no_ff =
    let app = find_app ~cmd:"trace" name in
    let cfg =
      Gsim.Config.default
      |> Gsim.Config.with_caps ~max_warp_insts:cap ()
      |> Gsim.Config.with_policy policy
    in
    let with_out f =
      match out with
      | "-" -> f stdout
      | file ->
          let oc = open_out file in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
    in
    let run_traced ?trace ?profile () =
      match
        Critload.Runner.run ~cfg ~scale ?trace ?trace_kernel:kernel ?profile
          ~fast_forward:(not no_ff) app
      with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "trace: %s\n" (Gsim.Sim_error.to_string e);
          exit EC.sim_error
    in
    match format with
    | `Summary ->
        let r = run_traced ~profile:true () in
        let s = Critload.Runner.Report.stats_exn r in
        let profile = Option.get r.Critload.Runner.Report.profile in
        with_out (fun oc ->
            Printf.fprintf oc "app: %s  cycles: %d  warp insts: %d%s\n" name
              s.Gsim.Stats.cycles s.Gsim.Stats.warp_insts
              (if s.Gsim.Stats.truncated then "  [truncated]" else "");
            output_string oc (Gsim.Profile.summary_to_string profile))
    | `Jsonl ->
        with_out (fun oc ->
            ignore (run_traced ~trace:(Gsim.Trace.jsonl_sink oc) ()))
    | `Chrome ->
        with_out (fun oc ->
            let trace, close_trace = Gsim.Trace.chrome_sink oc in
            ignore (run_traced ~trace ());
            close_trace ())
  in
  let kernel =
    kernel_arg
      ~doc:
        "Trace only launches of kernel $(docv); other launches still \
         run (cache state flows across them) but emit no events."
  in
  let format =
    format_arg
      ~alts:
        [ ("summary", `Summary); ("jsonl", `Jsonl); ("chrome", `Chrome) ]
      ~default:`Summary
      ~doc:
        "Output format: $(b,summary) (per-category turnaround \
         histograms, reservation-fail attribution, MSHR locality), \
         $(b,jsonl) (one event object per line), or $(b,chrome) \
         (chrome://tracing / Perfetto trace_event JSON)."
  in
  let out = out_arg () in
      Cmd.v
      (cmd_info "trace"
       ~doc:
         "Cycle-simulate one application with event tracing enabled: \
          per-load-category latency histograms and fail attribution \
          (summary), or the raw event stream (jsonl / chrome).")
    Term.(
      const run $ app_arg $ scale_arg $ cap_arg $ policy_arg $ kernel
      $ format $ out $ no_fast_forward_arg)

(* ---- sweep (parallel, JSON export) ---- *)

let sweep_cmd =
  let module P = Critload.Parsweep in
  let module Json = Gsim.Stats_io.Json in
  let run apps scale cap policies jobs timeout func no_warmup profile out
      resume format no_cache cache_dir no_ff =
    let apps =
      match apps with
      | [] -> List.map (fun (a : Workloads.App.t) -> a.Workloads.App.name)
                Workloads.Suite.all
      | l -> l
    in
    (* validate names up front for a clean error instead of spawning a
       pool that fails one job per bad name *)
    check_app_names ~cmd:"sweep" apps;
    if resume && out = "-" then begin
      Printf.eprintf
        "sweep: --resume needs --out FILE (the checkpoint lives next to \
         it)\n";
      exit EC.usage
    end;
    let cfg =
      Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:cap ()
    in
    let mode = if func then P.Func else P.Timing in
    let job_list =
      P.jobs ~apps ~scales:[ scale ] ~cfgs:(policy_cfgs ~cfg policies) ~mode
        ~warmup:(not no_warmup) ~profile ~fast_forward:(not no_ff) ()
    in
    let total = List.length job_list in
    let finished = ref 0 in
    let tag (j : P.job) =
      Printf.sprintf "%s (%s, %s)" j.P.sj_app
        (Workloads.App.string_of_scale j.P.sj_scale)
        j.P.sj_label
    in
    let on_event = function
      | P.Started (j, attempt) ->
          Printf.eprintf "sweep: start %s%s\n%!" (tag j)
            (if attempt > 0 then " (retry)" else "")
      | P.Finished (j, dt) ->
          incr finished;
          Printf.eprintf "sweep: [%d/%d] %s done in %.1fs\n%!" !finished
            total (tag j) dt
      | P.Retried (j, reason) ->
          Printf.eprintf "sweep: %s crashed (%s), retrying\n%!" (tag j) reason
      | P.Gave_up (j, reason) ->
          incr finished;
          Printf.eprintf "sweep: [%d/%d] %s FAILED: %s\n%!" !finished total
            (tag j) reason
      | P.Skipped j ->
          incr finished;
          Printf.eprintf "sweep: [%d/%d] %s skipped (checkpoint)\n%!"
            !finished total (tag j)
      | P.Cached j ->
          incr finished;
          Printf.eprintf "sweep: [%d/%d] %s cached\n%!" !finished total
            (tag j)
      | P.Cache_damage (j, reason) ->
          Printf.eprintf
            "sweep: warning: damaged cache entry for %s (%s); recomputing\n%!"
            (tag j) reason
    in
    (* Completed jobs restored from the checkpoint are skipped; failed
       ones get a fresh chance (their failure may have been the crash
       being resumed from). *)
    let ckpt_path = out ^ ".partial" in
    let prefilled =
      if resume then begin
        let corrupt = ref 0 in
        let entries =
          P.read_checkpoint
            ~on_corrupt:(fun ~line ~reason ->
              incr corrupt;
              Printf.eprintf
                "sweep: warning: %s:%d: corrupt checkpoint line (%s); \
                 ignoring\n%!"
                ckpt_path line reason)
            ckpt_path
        in
        if !corrupt > 0 then
          Printf.eprintf
            "sweep: warning: dropped %d corrupt checkpoint line(s); the \
             affected jobs will rerun\n%!"
            !corrupt;
        List.filter
          (fun (_, o) ->
            match o with P.Completed _ -> true | P.Failed _ -> false)
          entries
      end
      else []
    in
    let ckpt_oc =
      if out = "-" then None
      else begin
        (* a fresh (non-resume) run invalidates any stale checkpoint *)
        let flags =
          if resume then [ Open_wronly; Open_append; Open_creat ]
          else [ Open_wronly; Open_trunc; Open_creat ]
        in
        Some (open_out_gen flags 0o644 ckpt_path)
      end
    in
    let on_result _i j o =
      match ckpt_oc with
      | None -> ()
      | Some oc ->
          output_string oc (P.checkpoint_line j o);
          output_char oc '\n';
          flush oc
    in
    Sys.catch_break true;
    (* SIGTERM gets the same orderly exit as ^C: close the checkpoint,
       report how to resume, leave no pool workers behind. *)
    let old_term =
      try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> raise Sys.Break)))
      with Invalid_argument _ | Sys_error _ -> None
    in
    let cache_dir = if no_cache then None else Some cache_dir in
    let outcomes =
      try
        P.run ~workers:jobs ~timeout ~on_event ~prefilled ~on_result
          ?cache_dir job_list
      with Sys.Break ->
        Option.iter close_out ckpt_oc;
        (if out = "-" then
           Printf.eprintf "sweep: interrupted\n%!"
         else
           Printf.eprintf
             "sweep: interrupted; %d/%d result(s) checkpointed in %s — \
              rerun with --resume to continue\n%!"
             !finished total ckpt_path);
        exit EC.interrupted
    in
    Option.iter (fun h -> Sys.set_signal Sys.sigterm h) old_term;
    Option.iter close_out ckpt_oc;
    let write_doc oc =
      match format with
      | `Json ->
          Json.to_channel oc (P.sweep_to_json ~jobs:job_list ~outcomes);
          output_char oc '\n'
      | `Jsonl ->
          List.iteri
            (fun i j ->
              Json.to_channel oc (P.job_envelope j outcomes.(i));
              output_char oc '\n')
            job_list
    in
    (match out with
    | "-" -> write_doc stdout
    | file ->
        let oc = open_out file in
        write_doc oc;
        close_out oc;
        (* the full document supersedes the checkpoint *)
        (try Sys.remove ckpt_path with Sys_error _ -> ());
        Printf.eprintf "sweep: wrote %s\n%!" file);
    if Array.exists (function P.Failed _ -> true | _ -> false) outcomes
    then exit EC.failure
  in
  let apps =
    Arg.(
      value
      & opt (list string) []
      & info [ "apps" ] ~docv:"APPS"
          ~doc:"Comma-separated application names (default: all 15).")
  in
  let jobs = jobs_arg () in
  let timeout =
    Arg.(
      value & opt float 600.
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Per-job wall-clock timeout; an overdue worker is killed \
                and retried once.")
  in
  let func =
    Arg.(
      value & flag
      & info [ "func" ]
          ~doc:"Run the functional simulator instead of the cycle \
                simulator.")
  in
  let no_warmup =
    Arg.(
      value & flag
      & info [ "no-warmup" ]
          ~doc:"Skip the functional fast-forward to the first heavy \
                launch (timing mode).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attach the event-trace Profile reducer to every timing job \
             and embed its per-category metrics (turnaround histograms, \
             fail attribution, MSHR locality) in each result.")
  in
  let out =
    out_arg ~doc:"Output file for the JSON document ('-' for stdout)." ()
  in
  let format =
    format_arg
      ~alts:[ ("json", `Json); ("jsonl", `Jsonl) ]
      ~default:`Json
      ~doc:
        "Output encoding: $(b,json) (one whole-sweep document) or \
         $(b,jsonl) (one result envelope per line)."
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Bypass the content-addressed result cache entirely: \
             neither read nor write entries.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string ".critload-cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Directory of the content-addressed result cache.  Jobs \
             whose digest — kernels (normalized text), launch geometry, \
             dataset seed, full config, mode and simulator tag — \
             matches a stored entry are served from it without \
             re-simulating; completed jobs are stored back.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume an interrupted sweep: jobs already completed in \
             FILE.partial (written incrementally alongside --out FILE) \
             are skipped; everything else, including previously failed \
             jobs, runs again.  The final document is identical to an \
             uninterrupted run's.")
  in
      Cmd.v
      (cmd_info "sweep"
       ~doc:
         "Run many applications through the simulator in parallel worker \
          processes and export every per-app statistic as JSON.")
    Term.(
      const run $ apps $ scale_arg $ cap_arg $ policies_arg $ jobs $ timeout
      $ func $ no_warmup $ profile $ out $ resume $ format $ no_cache
      $ cache_dir $ no_fast_forward_arg)

(* ---- serve (long-running sweep daemon) ---- *)

let socket_arg =
  Arg.(
    value
    & opt string ".critload.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the sweep daemon.")

let serve_cmd =
  let module S = Critload.Server in
  let module Json = Gsim.Stats_io.Json in
  let run socket workers timeout queue_limit no_cache cache_dir chaos_every
      quiet =
    let log =
      if quiet then None
      else Some (fun msg -> Printf.eprintf "serve: %s\n%!" msg)
    in
    let cfg =
      {
        (S.default_config ~socket_path:socket) with
        S.workers = max 1 workers;
        job_timeout = timeout;
        queue_limit;
        cache_dir = (if no_cache then None else Some cache_dir);
        chaos =
          (if chaos_every > 0 then Some { S.kill_every = chaos_every }
           else None);
        log;
      }
    in
    match S.run cfg with
    | Ok health ->
        (* final tally on stdout so operators can scrape it *)
        Json.to_channel stdout (Critload.Protocol.health_to_json health);
        print_newline ()
    | Error msg ->
        Printf.eprintf "serve: %s\n" msg;
        exit EC.unavailable
  in
  let workers = jobs_arg () in
  let timeout =
    Arg.(
      value & opt float 600.
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-request wall-clock deadline; an overdue worker is \
             killed and the client receives a timeout response.")
  in
  let queue_limit =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Bound on queued (accepted, not yet dispatched) jobs; \
             submissions beyond it are rejected with a retry-after \
             hint.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Serve without the content-addressed result cache.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string ".critload-cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Directory of the content-addressed result cache shared \
             with `critload sweep`.")
  in
  let chaos_every =
    Arg.(
      value & opt int 0
      & info [ "chaos-kill-every" ] ~docv:"N"
          ~doc:
            "Fault injection for testing: each worker kills itself on \
             every $(docv)-th first-attempt job (0 = off).  Results \
             are unchanged — crashes are retried.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress the event log on stderr.")
  in
      Cmd.v
      (cmd_info "serve"
       ~doc:
         "Run the sweep daemon: accept jobs over a Unix-domain socket, \
          execute them on a supervised worker pool (crash retry, \
          exponential-backoff restart, per-request deadlines, bounded \
          queue), and drain gracefully on SIGTERM.")
    Term.(
      const run $ socket_arg $ workers $ timeout $ queue_limit $ no_cache
      $ cache_dir $ chaos_every $ quiet)

(* ---- submit (client of a running daemon) ---- *)

let submit_cmd =
  let module P = Critload.Parsweep in
  let module Pr = Critload.Protocol in
  let module Json = Gsim.Stats_io.Json in
  let module F = Gsim.Stats_io.Framing in
  let run socket apps scale cap policies func no_warmup profile no_ff out
      format
      retries wait health_only =
    let fd =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> fd
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "submit: cannot reach a daemon at %s: %s\n" socket
            (Unix.error_message e);
          exit EC.unavailable
    in
    let send req =
      let b = Bytes.of_string (F.frame (Pr.request_to_json req)) in
      let n = Bytes.length b in
      let off = ref 0 in
      try
        while !off < n do
          off := !off + Unix.write fd b !off (n - !off)
        done
      with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        Printf.eprintf "submit: daemon closed the connection\n";
        exit EC.unavailable
    in
    let split = F.Splitter.create () in
    let buf = Bytes.create 65536 in
    let rec next_line () =
      match F.Splitter.pop split with
      | Some l -> l
      | None -> (
          let ready, _, _ = Unix.select [ fd ] [] [] wait in
          if ready = [] then begin
            Printf.eprintf
              "submit: no response from the daemon for %.0fs; giving up\n"
              wait;
            exit EC.timeout
          end;
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 ->
              Printf.eprintf "submit: daemon closed the connection\n";
              exit EC.unavailable
          | n ->
              F.Splitter.feed split (Bytes.sub_string buf 0 n);
              next_line ()
          | exception Unix.Unix_error (ECONNRESET, _, _) ->
              Printf.eprintf "submit: daemon closed the connection\n";
              exit EC.unavailable)
    in
    let next_response () =
      let line = next_line () in
      match Pr.response_of_json (Json.of_string line) with
      | Ok r -> r
      | Error msg | (exception Json.Parse_error msg) ->
          Printf.eprintf "submit: unintelligible response: %s\n" msg;
          exit EC.failure
    in
    if health_only then begin
      send Pr.Health;
      match next_response () with
      | Pr.Health_report h ->
          Json.to_channel stdout (Pr.health_to_json h);
          print_newline ()
      | _ ->
          Printf.eprintf "submit: unexpected response to the health probe\n";
          exit EC.failure
    end
    else begin
      let apps =
        match apps with
        | [] ->
            List.map
              (fun (a : Workloads.App.t) -> a.Workloads.App.name)
              Workloads.Suite.all
        | l -> l
      in
      check_app_names ~cmd:"submit" apps;
      let cfg =
        Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:cap ()
      in
      let mode = if func then P.Func else P.Timing in
      let job_list =
        P.jobs ~apps ~scales:[ scale ] ~cfgs:(policy_cfgs ~cfg policies)
          ~mode ~warmup:(not no_warmup) ~profile
          ~fast_forward:(not no_ff) ()
      in
      let jobs_a = Array.of_list job_list in
      let n = Array.length jobs_a in
      let outcomes = Array.make n None in
      let rejections = Array.make n 0 in
      let remaining = ref n in
      let any_timeout = ref false in
      let any_failed = ref false in
      let submit i =
        send (Pr.Submit { id = string_of_int i; job = jobs_a.(i) })
      in
      Array.iteri (fun i _ -> submit i) jobs_a;
      let settle i o =
        (* first verdict wins; a duplicate line would be a server bug *)
        if i >= 0 && i < n && outcomes.(i) = None then begin
          outcomes.(i) <- Some o;
          decr remaining
        end
      in
      while !remaining > 0 do
        match next_response () with
        | Pr.Result { id; payload } -> (
            match int_of_string_opt id with
            | Some i -> settle i (P.Completed payload)
            | None -> ())
        | Pr.Job_failed { id; message } -> (
            any_failed := true;
            match int_of_string_opt id with
            | Some i -> settle i (P.Failed message)
            | None -> ())
        | Pr.Job_timeout { id; after } -> (
            any_timeout := true;
            Printf.eprintf "submit: job %s timed out after %.0fs\n%!" id
              after;
            match int_of_string_opt id with
            | Some i ->
                settle i
                  (P.Failed (Printf.sprintf "timeout after %.0fs" after))
            | None -> ())
        | Pr.Rejected { id; reason; retry_after } -> (
            match int_of_string_opt id with
            | None -> ()
            | Some i ->
                rejections.(i) <- rejections.(i) + 1;
                if rejections.(i) > retries then begin
                  any_failed := true;
                  settle i
                    (P.Failed
                       (Printf.sprintf "rejected: %s"
                          (Pr.reject_reason_to_string reason)))
                end
                else begin
                  Unix.sleepf retry_after;
                  submit i
                end)
        | Pr.Error_response { message } ->
            Printf.eprintf "submit: daemon error: %s\n" message;
            exit EC.failure
        | Pr.Health_report _ | Pr.Pong -> ()
      done;
      Unix.close fd;
      let outcomes =
        Array.map
          (function Some o -> o | None -> P.Failed "no response")
          outcomes
      in
      (* same document shapes as `critload sweep`, byte for byte *)
      let write_doc oc =
        match format with
        | `Json ->
            Json.to_channel oc (P.sweep_to_json ~jobs:job_list ~outcomes);
            output_char oc '\n'
        | `Jsonl ->
            List.iteri
              (fun i j ->
                Json.to_channel oc (P.job_envelope j outcomes.(i));
                output_char oc '\n')
              job_list
      in
      (match out with
      | "-" -> write_doc stdout
      | file ->
          let oc = open_out file in
          write_doc oc;
          close_out oc;
          Printf.eprintf "submit: wrote %s\n%!" file);
      if !any_timeout then exit EC.timeout
      else if !any_failed then exit EC.failure
    end
  in
  let apps =
    Arg.(
      value
      & opt (list string) []
      & info [ "apps" ] ~docv:"APPS"
          ~doc:"Comma-separated application names (default: all 15).")
  in
  let func =
    Arg.(
      value & flag
      & info [ "func" ]
          ~doc:"Submit functional-simulation jobs instead of timing.")
  in
  let no_warmup =
    Arg.(
      value & flag
      & info [ "no-warmup" ]
          ~doc:"Skip the functional fast-forward (timing mode).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Attach the event-trace Profile reducer to timing jobs.")
  in
  let out =
    out_arg ~doc:"Output file for the JSON document ('-' for stdout)." ()
  in
  let format =
    format_arg
      ~alts:[ ("json", `Json); ("jsonl", `Jsonl) ]
      ~default:`Json
      ~doc:
        "Output encoding: $(b,json) (one whole-sweep document, \
         identical to `critload sweep`'s) or $(b,jsonl) (one result \
         envelope per line)."
  in
  let retries =
    Arg.(
      value & opt int 25
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "How many backpressure rejections to absorb per job \
             (sleeping the server's retry-after hint between attempts) \
             before reporting it failed.")
  in
  let wait =
    Arg.(
      value & opt float 600.
      & info [ "wait" ] ~docv:"SECS"
          ~doc:
            "Give up (exit 4) if the daemon sends nothing at all for \
             $(docv) seconds.")
  in
  let health_only =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Do not submit jobs; print the daemon's health counters as \
             JSON and exit.")
  in
      Cmd.v
      (cmd_info "submit"
       ~doc:
         "Submit sweep jobs to a running `critload serve` daemon and \
          write the same JSON document `critload sweep` would.")
    Term.(
      const run $ socket_arg $ apps $ scale_arg $ cap_arg $ policies_arg
      $ func $ no_warmup $ profile $ no_fast_forward_arg $ out $ format
      $ retries $ wait $ health_only)

let () =
  let doc =
    "critical-load classification and GPU memory-system characterization"
  in
  exit
    (Cmd.eval
       (Cmd.group (cmd_info "critload" ~doc)
          [ list_cmd; verify_cmd; classify_cmd; characterize_cmd;
            advise_cmd; dot_cmd; simulate_cmd; trace_cmd; sweep_cmd;
            serve_cmd; submit_cmd ]))
