(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     main.exe                 run every experiment (default scale)
     main.exe fig3 fig8       run selected experiments
     main.exe --scale small all
     main.exe --cap 250000 fig5
     main.exe --out results/  additionally write each experiment to
                              results/<id>.txt
     main.exe micro           Bechamel microbenchmarks of the core
                              primitives (classifier, cache, coalescer)

   main.exe --jobs 8 sweep   parallel timing sweep of all 15 apps
                             (forked workers; writes sweep.json under
                             --out, table rendered from the JSON)
   main.exe --policies baseline,iar,holistic sweep
                             same sweep under each memory-system
                             policy (policy column in the table)
   main.exe policies         policy comparison table: speedup and
                             reservation-fail deltas vs baseline

   Experiment ids: table1 table2 table3 fig1..fig12 ablate-split
   ablate-cta ablate-l2 ablate-prefetch ablate-bypass ablate-warpsched
   ablate-advisor sensitivity micro sweep perf policies all *)

module E = Critload.Experiments

let experiments scale : (string * (unit -> string)) list =
  [
    ("table1", fun () -> E.render_table1 scale);
    ("table2", fun () -> E.render_table2 ());
    ("table3", fun () -> E.render_table3 scale);
    ("fig1", fun () -> E.render_fig1 scale);
    ("fig2", fun () -> E.render_fig2 scale);
    ("fig3", fun () -> E.render_fig3 scale);
    ("fig4", fun () -> E.render_fig4 scale);
    ("fig5", fun () -> E.render_fig5 scale);
    ("fig6", fun () -> E.render_fig6 scale);
    ("fig7", fun () -> E.render_fig7 scale);
    ("fig8", fun () -> E.render_fig8 scale);
    ("fig9", fun () -> E.render_fig9 scale);
    ("fig10", fun () -> E.render_fig10 scale);
    ("fig11", fun () -> E.render_fig11 scale);
    ("fig12", fun () -> E.render_fig12 scale);
    ("ablate-split", fun () -> E.render_ablate_split scale);
    ("ablate-cta", fun () -> E.render_ablate_cta scale);
    ("ablate-l2", fun () -> E.render_ablate_l2 scale);
    ("ablate-prefetch", fun () -> E.render_ablate_prefetch scale);
    ("ablate-bypass", fun () -> E.render_ablate_bypass scale);
    ("ablate-warpsched", fun () -> E.render_ablate_warpsched scale);
    ("ablate-advisor", fun () -> E.render_ablate_advisor scale);
    ("sensitivity", fun () -> E.render_sensitivity ());
  ]

(* ---- parallel timing sweep over the whole suite ---- *)

(* Runs every app through the cycle simulator across forked workers and
   renders the summary table from the JSON that crossed the process
   boundary — the same schema `critload sweep` writes to disk. *)
let sweep ~jobs ~scale ~out_dir ~policies () =
  let module P = Critload.Parsweep in
  let apps =
    List.map (fun (a : Workloads.App.t) -> a.Workloads.App.name)
      Workloads.Suite.all
  in
  let cfg = E.timing_cfg () in
  let policies =
    match policies with [] -> [ Gsim.Config.Baseline ] | ps -> ps
  in
  let cfgs =
    List.map
      (fun p ->
        (Gsim.Config.policy_name p, cfg |> Gsim.Config.with_policy p))
      policies
  in
  let job_list = P.jobs ~apps ~scales:[ scale ] ~cfgs () in
  let on_event = function
    | P.Finished (j, dt) ->
        Printf.eprintf "sweep: %s done in %.1fs\n%!" j.P.sj_app dt
    | P.Retried (j, reason) ->
        Printf.eprintf "sweep: %s crashed (%s), retrying\n%!" j.P.sj_app
          reason
    | P.Gave_up (j, reason) ->
        Printf.eprintf "sweep: %s FAILED: %s\n%!" j.P.sj_app reason
    | P.Cached j -> Printf.eprintf "sweep: %s cached\n%!" j.P.sj_app
    | P.Cache_damage (j, reason) ->
        Printf.eprintf "sweep: %s damaged cache entry (%s); recomputing\n%!"
          j.P.sj_app reason
    | P.Started _ | P.Skipped _ -> ()
  in
  let outcomes = P.run ~workers:jobs ~timeout:1800. ~on_event job_list in
  let buf = Buffer.create 1024 in
  let truncated = ref 0 in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-9s %10s %10s %8s %8s %8s %8s %8s %8s\n" "app"
       "policy" "cycles" "warpinsts" "req/w N" "req/w D" "L1m% N" "L1m% D"
       "turn N" "turn D");
  List.iteri
    (fun i (j : P.job) ->
      match outcomes.(i) with
      | P.Failed msg ->
          Buffer.add_string buf
            (Printf.sprintf "%-6s %-9s FAILED: %s\n" j.P.sj_app j.P.sj_label
               msg)
      | P.Completed payload ->
          let t = P.timing_summary_of_json payload in
          let s = t.P.tm_stats in
          if s.Gsim.Stats.truncated then incr truncated;
          let open Dataflow.Classify in
          Buffer.add_string buf
            (Printf.sprintf
               "%-6s %-9s %10d %10d %8.2f %8.2f %8.1f %8.1f %8.0f %8.0f%s\n"
               j.P.sj_app j.P.sj_label s.Gsim.Stats.cycles
               s.Gsim.Stats.warp_insts
               (Gsim.Stats.requests_per_warp s Nondeterministic)
               (Gsim.Stats.requests_per_warp s Deterministic)
               (100. *. Gsim.Stats.l1_miss_ratio s Nondeterministic)
               (100. *. Gsim.Stats.l1_miss_ratio s Deterministic)
               (Gsim.Stats.avg_turnaround s Nondeterministic)
               (Gsim.Stats.avg_turnaround s Deterministic)
               (if s.Gsim.Stats.truncated then "  [truncated]" else "")))
    job_list;
  if !truncated > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "note: %d run(s) hit an instruction/cycle cap; their counters \
          cover only the simulated prefix\n"
         !truncated);
  (match out_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir "sweep.json") in
      Gsim.Stats_io.Json.to_channel oc
        (P.sweep_to_json ~jobs:job_list ~outcomes);
      output_char oc '\n';
      close_out oc);
  Buffer.contents buf

(* ---- memory-system policy comparison ----

   `main.exe policies` sweeps every app under each policy through the
   cached parallel runner with profiling on, and renders speedup and
   per-class reservation-fail deltas against the baseline rows.
   `--out DIR` additionally writes policies.json
   (critload-bench-policies-v1), the per-policy record BENCH_*.json
   embeds. *)

let policy_rows_json ~scale rows =
  let module J = Gsim.Stats_io.Json in
  J.Obj
    [
      ("schema", J.Str "critload-bench-policies-v1");
      ("scale", J.Str (Workloads.App.string_of_scale scale));
      ( "rows",
        J.Arr
          (List.map
             (fun (r : E.policy_row) ->
               J.Obj
                 [
                   ("app", J.Str r.E.po_app);
                   ("category", J.Str r.E.po_category);
                   ("policy", J.Str r.E.po_policy);
                   ("cycles", J.Int r.E.po_cycles);
                   ("speedup", J.Float r.E.po_speedup);
                   ("l1_fail_cycles_d", J.Int r.E.po_fail_d);
                   ("l1_fail_cycles_n", J.Int r.E.po_fail_n);
                   ("n_fail_delta", J.Float r.E.po_fail_n_delta);
                 ])
             rows) );
    ]

let policy_bench ~jobs ~scale ~out_dir ~policies () =
  let policies =
    match policies with [] -> E.default_policies | ps -> ps
  in
  let rows = E.policy_sweep ~policies ~workers:jobs scale in
  (match out_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir "policies.json") in
      Gsim.Stats_io.Json.to_channel oc (policy_rows_json ~scale rows);
      output_char oc '\n';
      close_out oc);
  E.render_policy_rows rows

(* ---- repeated-rounds single-sim perf harness (luamark shape) ----

   `main.exe perf` times one full timing simulation per app over
   several rounds and reports median / min / max wall seconds plus a
   cycles/sec throughput column (simulated cycles over the median
   round).  Repeated rounds make a speedup claim statistically
   defensible: a regression must move the median, not just lose one
   noisy sample.  `--out DIR` additionally writes perf.json
   (critload-bench-perf-v1), the schema BENCH_PR8.json embeds. *)

type perf_row = {
  pf_app : string;
  pf_cycles : int;
  pf_warp_insts : int;
  pf_wall : float array; (* per-round wall seconds, sorted ascending *)
}

let median sorted =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if n land 1 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.

let perf_row ~rounds ~cfg ~scale (app : Workloads.App.t) =
  let wall = Array.make rounds 0. in
  let cycles = ref 0 and warp_insts = ref 0 in
  for r = 0 to rounds - 1 do
    let t0 = Unix.gettimeofday () in
    let res =
      match
        Critload.Runner.run ~cfg ~scale ~warmup:false ~fast_forward:true app
      with
      | Ok rep -> rep
      | Error e -> failwith (Gsim.Sim_error.to_string e)
    in
    wall.(r) <- Unix.gettimeofday () -. t0;
    let s = Critload.Runner.Report.stats_exn res in
    cycles := s.Gsim.Stats.cycles;
    warp_insts := s.Gsim.Stats.warp_insts
  done;
  Array.sort compare wall;
  {
    pf_app = app.Workloads.App.name;
    pf_cycles = !cycles;
    pf_warp_insts = !warp_insts;
    pf_wall = wall;
  }

let perf_json ~rounds rows =
  let module J = Gsim.Stats_io.Json in
  J.Obj
    [
      ("schema", J.Str "critload-bench-perf-v1");
      ("rounds", J.Int rounds);
      ( "apps",
        J.Arr
          (List.map
             (fun r ->
               let med = median r.pf_wall in
               J.Obj
                 [
                   ("app", J.Str r.pf_app);
                   ("cycles", J.Int r.pf_cycles);
                   ("warp_insts", J.Int r.pf_warp_insts);
                   ("wall_s_median", J.Float med);
                   ("wall_s_min", J.Float r.pf_wall.(0));
                   ( "wall_s_max",
                     J.Float r.pf_wall.(Array.length r.pf_wall - 1) );
                   ( "cycles_per_sec",
                     J.Float
                       (if med > 0. then float_of_int r.pf_cycles /. med
                        else 0.) );
                 ])
             rows) );
      ( "totals",
        let med_sum = List.fold_left (fun a r -> a +. median r.pf_wall) 0. rows
        and cyc_sum = List.fold_left (fun a r -> a + r.pf_cycles) 0 rows in
        J.Obj
          [
            ("wall_s_median_sum", J.Float med_sum);
            ("cycles_sum", J.Int cyc_sum);
            ( "cycles_per_sec",
              J.Float
                (if med_sum > 0. then float_of_int cyc_sum /. med_sum else 0.)
            );
          ] );
    ]

let perf ~rounds ~scale ~out_dir ~only () =
  let cfg = E.timing_cfg () in
  let apps =
    match only with
    | [] -> Workloads.Suite.all
    | names -> List.map Workloads.Suite.find names
  in
  let rows = List.map (fun app -> perf_row ~rounds ~cfg ~scale app) apps in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %10s %10s %9s %9s %9s %12s\n" "app" "cycles"
       "warpinsts" "med(s)" "min(s)" "max(s)" "cycles/s");
  List.iter
    (fun r ->
      let med = median r.pf_wall in
      Buffer.add_string buf
        (Printf.sprintf "%-6s %10d %10d %9.4f %9.4f %9.4f %12.0f\n" r.pf_app
           r.pf_cycles r.pf_warp_insts med r.pf_wall.(0)
           r.pf_wall.(Array.length r.pf_wall - 1)
           (if med > 0. then float_of_int r.pf_cycles /. med else 0.)))
    rows;
  let med_sum = List.fold_left (fun a r -> a +. median r.pf_wall) 0. rows in
  let cyc_sum = List.fold_left (fun a r -> a + r.pf_cycles) 0 rows in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %10d %10s %9.4f %9s %9s %12.0f\n" "TOTAL" cyc_sum ""
       med_sum "" ""
       (if med_sum > 0. then float_of_int cyc_sum /. med_sum else 0.));
  (match out_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir "perf.json") in
      Gsim.Stats_io.Json.to_channel oc (perf_json ~rounds rows);
      output_char oc '\n';
      close_out oc);
  Buffer.contents buf

(* ---- Bechamel microbenchmarks of core primitives ---- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let bfs_app = Workloads.Suite.find "bfs" in
  let run = bfs_app.Workloads.App.make Workloads.App.Small in
  let launch =
    match run.Workloads.App.next_launch () with
    | Some l -> l
    | None -> assert false
  in
  let kernel = launch.Gsim.Launch.kernel in
  let classify =
    Test.make ~name:"classify-bfs-kernel"
      (Staged.stage (fun () -> ignore (Dataflow.Classify.classify kernel)))
  in
  let cfg_analyses =
    Test.make ~name:"cfg+dominators"
      (Staged.stage (fun () ->
           let cfg = Ptx.Cfg.build kernel in
           ignore (Ptx.Dom.post_dominators cfg)))
  in
  let rng = Workloads.Prng.create 7 in
  let addrs = Array.init 32 (fun _ -> Workloads.Prng.int rng (1 lsl 20)) in
  let coalesce =
    Test.make ~name:"coalesce-32-lanes"
      (Staged.stage (fun () ->
           ignore (Gsim.Coalesce.lines ~line_size:128 ~mask:0xFFFFFFFF ~addrs)))
  in
  let cache =
    Gsim.Cache.create ~sets:32 ~ways:4 ~line_size:128 ~mshr_entries:64
      ~mshr_max_merge:8
  in
  let next = ref 0 in
  let cache_access =
    Test.make ~name:"l1-access-load"
      (Staged.stage (fun () ->
           next := (!next + 4099) land 0xFFFFF;
           let req =
             Gsim.Request.make ~cta:(-1) ~line_addr:(!next / 128 * 128)
               ~sm_id:0
               ~kind:Gsim.Request.Load ~cls:Dataflow.Classify.Deterministic
               ~wl:None ~now:0
           in
           match Gsim.Cache.access_load cache ~req ~icnt_ok:true with
           | Gsim.Cache.Miss ->
               ignore
                 (Gsim.Cache.fill cache ~line_addr:req.Gsim.Request.line_addr)
           | _ -> ()))
  in
  let funcsim_run =
    Test.make ~name:"funcsim-bfs-small-incl-datagen"
      (Staged.stage (fun () ->
           let app = Workloads.Suite.find "bfs" in
           let r = app.Workloads.App.make Workloads.App.Small in
           match r.Workloads.App.next_launch () with
           | Some l -> ignore (Gsim.Funcsim.run ~max_warp_insts:2000 l)
           | None -> ()))
  in
  let tests =
    Test.make_grouped ~name:"critload"
      [ classify; cfg_analyses; coalesce; cache_access; funcsim_run ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  List.iter
    (fun instance ->
      let tbl = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name res ->
          match Analyze.OLS.estimates res with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    instances

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref Workloads.App.Default in
  let cap = ref 0 in
  let out_dir = ref None in
  let jobs = ref 4 in
  let rounds = ref 5 in
  let only = ref [] in
  let policies = ref [] in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest ->
        scale := Workloads.App.scale_of_string s;
        parse rest
    | "--cap" :: n :: rest ->
        cap := int_of_string n;
        parse rest
    | "--out" :: dir :: rest ->
        out_dir := Some dir;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--rounds" :: n :: rest ->
        rounds := int_of_string n;
        parse rest
    | "--only" :: apps :: rest ->
        only := String.split_on_char ',' apps;
        parse rest
    | "--policies" :: names :: rest ->
        policies :=
          List.map
            (fun n ->
              match Gsim.Config.policy_of_string n with
              | Ok p -> p
              | Error msg -> failwith msg)
            (String.split_on_char ',' names);
        parse rest
    | "--version" :: _ ->
        print_endline Critload.Version.version;
        exit 0
    | x :: rest ->
        selected := x :: !selected;
        parse rest
  in
  parse args;
  if !cap > 0 then E.set_timing_cap !cap;
  let selected =
    match List.rev !selected with [] | [ "all" ] -> [] | l -> l
  in
  let exps = experiments !scale in
  let to_run =
    if selected = [] then exps
    else
      List.map
        (fun name ->
          if name = "micro" then (name, fun () -> "")
          else if name = "sweep" then
            ( name,
              sweep ~jobs:!jobs ~scale:!scale ~out_dir:!out_dir
                ~policies:!policies )
          else if name = "perf" then
            (name, perf ~rounds:!rounds ~scale:!scale ~out_dir:!out_dir
                     ~only:!only)
          else if name = "policies" then
            ( name,
              policy_bench ~jobs:!jobs ~scale:!scale ~out_dir:!out_dir
                ~policies:!policies )
          else
            match List.assoc_opt name exps with
            | Some f -> (name, f)
            | None ->
                failwith
                  (Printf.sprintf
                     "unknown experiment %s (have: %s, micro, sweep, perf, \
                      policies)"
                     name
                     (String.concat ", " (List.map fst exps)))
        )
        selected
  in
  List.iter
    (fun (name, f) ->
      if name = "micro" then micro ()
      else begin
        let t0 = Unix.gettimeofday () in
        let out = f () in
        Printf.printf "=== %s (%.1fs) ===\n%s\n%!" name
          (Unix.gettimeofday () -. t0)
          out;
        match !out_dir with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let oc = open_out (Filename.concat dir (name ^ ".txt")) in
            output_string oc out;
            close_out oc
      end)
    to_run
