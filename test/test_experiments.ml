(* Experiment-layer tests: the paper's qualitative shapes must hold on
   the Small-scale datasets, and the statistics must satisfy internal
   conservation invariants. *)

module E = Critload.Experiments
module App = Workloads.App
open Dataflow.Classify

let scale = App.Small

(* keep the timing runs fast *)
let () = E.set_timing_cap 40_000

let find name rows fname =
  match List.find_opt (fun r -> fname r = name) rows with
  | Some r -> r
  | None -> Alcotest.failf "missing app %s" name

(* ---------------- Fig 1 shapes ---------------- *)

let test_fig1_shapes () =
  let rows = E.fig1 scale in
  let get n = find n rows (fun (r : E.fig1_row) -> r.E.f1_name) in
  (* linear algebra & image processing: fully deterministic except
     spmv / srad / htw *)
  List.iter
    (fun n ->
      let r = get n in
      Alcotest.(check int) (n ^ " has no static N loads") 0 r.E.f1_static_n)
    [ "2mm"; "gaus"; "grm"; "lu"; "mriq"; "dwt"; "bpr" ];
  (* graph apps: static D fraction above 33% (paper: "more than 50% on
     average"), dynamic N-heavy *)
  List.iter
    (fun n ->
      let r = get n in
      Alcotest.(check bool)
        (n ^ " has static N loads")
        true (r.E.f1_static_n > 0);
      Alcotest.(check bool)
        (n ^ " dynamically N-dominated")
        true
        (r.E.f1_dyn_d_fraction < 0.5))
    [ "bfs"; "sssp"; "ccl"; "mst"; "mis" ];
  (* averaged static D fraction of the graph apps exceeds 33% *)
  let graph = [ "bfs"; "sssp"; "ccl"; "mst"; "mis" ] in
  let avg =
    List.fold_left
      (fun acc n ->
        let r = get n in
        acc
        +. float_of_int r.E.f1_static_d
           /. float_of_int (r.E.f1_static_d + r.E.f1_static_n))
      0.0 graph
    /. float_of_int (List.length graph)
  in
  Alcotest.(check bool) "graph apps: avg static D fraction > 1/3" true
    (avg > 0.33)

(* ---------------- Fig 2 shape: N requests >> D requests ---------- *)

let test_fig2_shapes () =
  let rows = E.fig2 scale in
  let get n = find n rows (fun (r : E.fig2_row) -> r.E.f2_name) in
  List.iter
    (fun n ->
      let r = get n in
      let rn = r.E.f2_req_per_thread Nondeterministic in
      let rd = r.E.f2_req_per_thread Deterministic in
      Alcotest.(check bool)
        (Printf.sprintf "%s: N req/thread (%.2f) > 3x D (%.2f)" n rn rd)
        true
        (rn > 3.0 *. rd))
    [ "bfs"; "mis"; "ccl" ];
  (* fully deterministic apps generate no N requests at all *)
  List.iter
    (fun n ->
      let r = get n in
      Alcotest.(check (float 0.0001))
        (n ^ " no N requests")
        0.0
        (r.E.f2_req_per_warp Nondeterministic))
    [ "2mm"; "mriq"; "bpr" ]

(* ---------------- Fig 3 invariant: fractions sum to 1 ------------ *)

let test_fig3_invariants () =
  List.iter
    (fun app ->
      let b = E.fig3 scale app in
      let sum = Array.fold_left ( +. ) 0.0 b in
      if Array.exists (fun x -> x > 0.0) b then
        Alcotest.(check (float 0.001))
          (app.App.name ^ " L1 cycle fractions sum to 1")
          1.0 sum)
    E.all_apps

(* ---------------- Fig 5 invariant: breakdown sums to total ------- *)

let test_fig5_invariants () =
  List.iter
    (fun app ->
      let n, d = E.fig5 scale app in
      List.iter
        (fun (u, p, c, w) ->
          Alcotest.(check bool)
            (app.App.name ^ " non-negative components")
            true
            (u >= 0.0 && p >= 0.0 && c >= 0.0 && w >= 0.0))
        [ n; d ])
    E.all_apps

(* ---------------- Fig 8: miss ratios are ratios ------------------ *)

let test_fig8_invariants () =
  List.iter
    (fun app ->
      let (l1n, l2n), (l1d, l2d) = E.fig8 scale app in
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (app.App.name ^ " ratio in [0,1]")
            true
            (x >= 0.0 && x <= 1.0))
        [ l1n; l2n; l1d; l2d ])
    E.all_apps

(* ---------------- Fig 9 shape ---------------- *)

let test_fig9_shapes () =
  (* bpr stages data in shared memory; graph apps do not use it *)
  Alcotest.(check bool) "bpr uses shared memory heavily" true
    (E.fig9 scale (Workloads.Suite.find "bpr") > 1.0);
  List.iter
    (fun n ->
      Alcotest.(check (float 0.0001))
        (n ^ " never touches shared memory")
        0.0
        (E.fig9 scale (Workloads.Suite.find n)))
    [ "bfs"; "sssp"; "2mm"; "spmv" ]

(* ---------------- Fig 10 shape ---------------- *)

let test_fig10_shapes () =
  (* the paper: image apps have high cold-miss ratios, linear/graph low
     with heavy block reuse *)
  let cold n = fst (E.fig10 scale (Workloads.Suite.find n)) in
  let reuse n = snd (E.fig10 scale (Workloads.Suite.find n)) in
  Alcotest.(check bool) "mriq cold ratio ~1" true (cold "mriq" > 0.9);
  Alcotest.(check bool) "2mm cold ratio < 10%" true (cold "2mm" < 0.1);
  Alcotest.(check bool) "2mm blocks reused > 50x" true (reuse "2mm" > 50.0);
  Alcotest.(check bool) "graph apps reuse blocks" true (reuse "bfs" > 3.0)

(* ---------------- Fig 11 shape ---------------- *)

let test_fig11_shapes () =
  let sh n = E.fig11 scale (Workloads.Suite.find n) in
  (* "In 2mm and gaus every block of data is accessed by multiple CTAs" *)
  Alcotest.(check (float 0.01)) "2mm all blocks shared" 1.0
    (sh "2mm").Gsim.Funcsim.sh_block_ratio;
  (* graph apps: shared blocks span multiple CTAs (dozens at larger
     scales; the Small graph only has a handful of CTAs) *)
  Alcotest.(check bool) "bfs shared blocks span multiple CTAs" true
    ((sh "bfs").Gsim.Funcsim.sh_avg_ctas > 2.0);
  (* accesses to shared blocks outweigh their block share *)
  let s = sh "bfs" in
  Alcotest.(check bool) "bfs shared-access ratio > shared-block ratio" true
    (s.Gsim.Funcsim.sh_access_ratio > s.Gsim.Funcsim.sh_block_ratio)

(* ---------------- Fig 12 shape ---------------- *)

let test_fig12_shapes () =
  (* neighbouring CTAs (distance 1) dominate sharing in linear apps *)
  let hist = E.fig12 scale (Workloads.Suite.find "2mm") in
  match hist with
  | [] -> Alcotest.fail "2mm has no CTA-distance histogram"
  | _ ->
      let d1 = try List.assoc 1 hist with Not_found -> 0.0 in
      Alcotest.(check bool) "distance-1 sharing present in 2mm" true (d1 > 0.1)

(* ---------------- stats invariants from a timing run ------------- *)

let test_stats_conservation () =
  let app = Workloads.Suite.find "bfs" in
  let r = E.timing_report scale app in
  let s = Critload.Runner.Report.stats_exn r in
  (* every l1 event was one probe cycle *)
  Alcotest.(check int) "l1 events sum to probe cycles"
    s.Gsim.Stats.l1_probe_cycles
    (Array.fold_left ( + ) 0 s.Gsim.Stats.l1_events);
  (* unit busy cycles cannot exceed total SM cycles *)
  let n_sms = r.Critload.Runner.Report.cfg.Gsim.Config.n_sms in
  Array.iter
    (fun busy ->
      Alcotest.(check bool) "busy <= cycles * sms" true
        (busy <= s.Gsim.Stats.cycles * n_sms))
    s.Gsim.Stats.unit_busy;
  Alcotest.(check bool) "issued instructions" true (s.Gsim.Stats.warp_insts > 0)

(* ---------------- Section X ablations run ---------------- *)

let test_ablation_split_runs () =
  let app = Workloads.Suite.find "mis" in
  let base =
    E.ablation_run scale app (E.timing_cfg ()) "baseline"
  in
  let split =
    E.ablation_run scale app
      (E.timing_cfg () |> Gsim.Config.with_warp_split 8)
      "split8"
  in
  Alcotest.(check bool) "both ran" true
    (base.E.ab_cycles > 0 && split.E.ab_cycles > 0)

let test_ablation_cta_sched_runs () =
  let app = Workloads.Suite.find "2mm" in
  let rr = E.ablation_run scale app (E.timing_cfg ()) "rr" in
  let cl =
    E.ablation_run scale app
      (E.timing_cfg () |> Gsim.Config.with_cta_sched (Gsim.Config.Clustered 2))
      "cl2"
  in
  Alcotest.(check bool) "both ran" true (rr.E.ab_cycles > 0 && cl.E.ab_cycles > 0)

let test_render_all_smoke () =
  (* every renderer produces non-empty text *)
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " renders") true (String.length s > 40))
    [
      ("table1", E.render_table1 scale);
      ("table2", E.render_table2 ());
      ("table3", E.render_table3 scale);
      ("fig1", E.render_fig1 scale);
      ("fig2", E.render_fig2 scale);
      ("fig3", E.render_fig3 scale);
      ("fig4", E.render_fig4 scale);
      ("fig5", E.render_fig5 scale);
      ("fig6", E.render_fig6 scale);
      ("fig7", E.render_fig7 scale);
      ("fig8", E.render_fig8 scale);
      ("fig9", E.render_fig9 scale);
      ("fig10", E.render_fig10 scale);
      ("fig11", E.render_fig11 scale);
      ("fig12", E.render_fig12 scale);
    ]

(* Every application runs through the cycle simulator at Small scale:
   instructions issue, CTAs complete, and the stats stay consistent. *)
let timing_smoke (app : App.t) () =
  let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:15_000 () in
  let s =
    match Critload.Runner.run ~cfg ~scale app with
    | Ok r -> Critload.Runner.Report.stats_exn r
    | Error e -> raise (Gsim.Sim_error.Error e)
  in
  Alcotest.(check bool) "instructions issued" true (s.Gsim.Stats.warp_insts > 0);
  Alcotest.(check bool) "cycles advanced" true (s.Gsim.Stats.cycles > 0);
  (* either CTAs retired or the cap stopped us mid-flight *)
  Alcotest.(check bool) "CTAs completed or cap hit" true
    (s.Gsim.Stats.completed_ctas > 0 || s.Gsim.Stats.warp_insts >= 15_000);
  Alcotest.(check int) "l1 event conservation" s.Gsim.Stats.l1_probe_cycles
    (Array.fold_left ( + ) 0 s.Gsim.Stats.l1_events);
  (* completed warp loads imply recorded requests *)
  Array.iter
    (fun (c : Gsim.Stats.class_stats) ->
      if c.Gsim.Stats.cs_warps > 0 then begin
        Alcotest.(check bool) "requests recorded" true (c.Gsim.Stats.cs_requests > 0);
        Alcotest.(check bool) "turnaround positive" true
          (c.Gsim.Stats.cs_turnaround > 0)
      end)
    s.Gsim.Stats.per_class

let timing_smoke_tests =
  List.map
    (fun (app : App.t) ->
      Alcotest.test_case ("cycle-sim " ^ app.App.name) `Slow (timing_smoke app))
    E.all_apps

let tests =
  [
    Alcotest.test_case "fig1: classification shapes" `Quick test_fig1_shapes;
    Alcotest.test_case "fig2: N vs D request disparity" `Slow
      test_fig2_shapes;
    Alcotest.test_case "fig3: fractions sum to 1" `Slow test_fig3_invariants;
    Alcotest.test_case "fig5: non-negative breakdown" `Slow
      test_fig5_invariants;
    Alcotest.test_case "fig8: ratios in range" `Slow test_fig8_invariants;
    Alcotest.test_case "fig9: shared-memory usage shape" `Quick
      test_fig9_shapes;
    Alcotest.test_case "fig10: cold-miss shapes" `Quick test_fig10_shapes;
    Alcotest.test_case "fig11: inter-CTA sharing shapes" `Quick
      test_fig11_shapes;
    Alcotest.test_case "fig12: CTA distance histogram" `Quick
      test_fig12_shapes;
    Alcotest.test_case "stats conservation" `Slow test_stats_conservation;
    Alcotest.test_case "ablation: warp split runs" `Slow
      test_ablation_split_runs;
    Alcotest.test_case "ablation: cta scheduling runs" `Slow
      test_ablation_cta_sched_runs;
    Alcotest.test_case "all renderers (smoke)" `Slow test_render_all_smoke;
  ]

let () =
  Alcotest.run "experiments"
    [ ("experiments", tests); ("timing-smoke", timing_smoke_tests) ]
