(* Property-based equivalence of the functional and cycle-level
   simulators: for randomly generated race-free kernels over random
   data, both must produce identical final memory — and so must every
   timing-policy variant (GTO, warp splitting, prefetch, bypass),
   since policies may reshape time but never values.

   Random kernels: a few rounds of loads (arbitrary in-bounds
   addresses), integer/float arithmetic, data-dependent branches and
   bounded data-dependent loops; each thread stores only to its own
   output slot, so there are no races. *)

open Ptx.Types
module B = Ptx.Builder

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }

let data_words = 1024 (* input region size, in u32 words *)

(* Build a kernel from a recipe: a list of small opcodes interpreted by
   the generator below.  [acc] is the running value; all loads are
   bounds-masked into the input region. *)
type step =
  | R_load (* acc <- in[acc mod data_words] *)
  | R_add of int
  | R_mul of int
  | R_xor_tid
  | R_branch (* if acc odd then acc += 13 else acc *= 3 *)
  | R_loop of int (* bounded loop: repeat (acc = acc*5+1) (acc mod k) times *)

let build_kernel steps =
  let b = B.create ~name:"rand_eq" ~params:[ u64 "inp"; u64 "out"; u32 "n" ] () in
  let inp = B.ld_param b "inp" in
  let out = B.ld_param b "out" in
  let n = B.ld_param b "n" in
  let tid = B.global_tid b in
  let p = B.setp b Lt tid n in
  B.if_ b p (fun () ->
      let acc = B.fresh_reg b in
      B.emit b (Ptx.Instr.Mov (acc, tid));
      List.iter
        (fun step ->
          match step with
          | R_load ->
              let idx = B.rem b (Reg acc) (B.int data_words) in
              let v = B.ld b Global U32 (B.at b ~base:inp ~scale:4 idx) in
              B.emit b (Ptx.Instr.Mov (acc, v))
          | R_add k -> B.emit b (Ptx.Instr.Iop (Add, acc, Reg acc, B.int k))
          | R_mul k -> B.emit b (Ptx.Instr.Iop (Mul, acc, Reg acc, B.int k))
          | R_xor_tid -> B.emit b (Ptx.Instr.Iop (Bxor, acc, Reg acc, tid))
          | R_branch ->
              let odd = B.band b (Reg acc) (B.int 1) in
              let podd = B.setp b Eq odd (B.int 1) in
              B.if_ b podd (fun () ->
                  B.emit b (Ptx.Instr.Iop (Add, acc, Reg acc, B.int 13)));
              B.if_not b podd (fun () ->
                  B.emit b (Ptx.Instr.Iop (Mul, acc, Reg acc, B.int 3)))
          | R_loop k ->
              let trips = B.rem b (Reg acc) (B.int (max 1 k)) in
              B.for_loop b ~init:(B.int 0) ~bound:trips ~step:(B.int 1)
                (fun _ ->
                  B.emit b (Ptx.Instr.Mad (acc, Reg acc, B.int 5, B.int 1))))
        steps;
      (* mask to keep values comparable across representations *)
      B.emit b (Ptx.Instr.Iop (Band, acc, Reg acc, B.int 0x7FFFFFFF));
      B.st b Global U32 (B.at b ~base:out ~scale:4 tid) (Reg acc));
  B.finish b

let gen_step =
  QCheck.Gen.(
    frequency
      [ (3, return R_load);
        (2, map (fun k -> R_add (1 + k)) (int_bound 100));
        (2, map (fun k -> R_mul (1 + (k mod 7))) (int_bound 100));
        (1, return R_xor_tid);
        (2, return R_branch);
        (1, map (fun k -> R_loop (1 + (k mod 6))) (int_bound 100)) ])

let gen_recipe = QCheck.Gen.(list_size (int_range 1 8) gen_step)

let n_threads = 128

let run_kernel kernel inputs ~mode =
  let global = Gsim.Mem.create (1 lsl 16) in
  let inp_base = 0 in
  let out_base = 4 * data_words in
  Array.iteri
    (fun i v -> Gsim.Mem.set_u32 global (inp_base + (4 * i)) v)
    inputs;
  let launch =
    Gsim.Launch.create ~kernel
      ~grid:(n_threads / 64, 1, 1)
      ~block:(64, 1, 1)
      ~params:
        [ ("inp", Int64.of_int inp_base); ("out", Int64.of_int out_base);
          ("n", Int64.of_int n_threads) ]
      ~global
  in
  (match mode with
  | `Func -> ignore (Gsim.Funcsim.run launch)
  | `Cycle cfg -> ignore (Gsim.Gpu.run ~cfg launch));
  Array.init n_threads (fun i -> Gsim.Mem.get_u32 global (out_base + (4 * i)))

let uncapped = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:0 ()

let modes =
  [
    ("cycle", `Cycle uncapped);
    ("gto", `Cycle (uncapped |> Gsim.Config.with_warp_sched Gsim.Config.Gto));
    ("split", `Cycle (uncapped |> Gsim.Config.with_warp_split 8));
    ("prefetch", `Cycle (uncapped |> Gsim.Config.with_prefetch_ndet true));
    ("bypass", `Cycle (uncapped |> Gsim.Config.with_bypass_ndet true));
  ]

let prop_equivalence =
  QCheck.Test.make ~count:40
    ~name:"funcsim = cycle sim (all policy variants) on random kernels"
    (QCheck.make
       QCheck.Gen.(
         pair gen_recipe
           (array_size (return data_words) (int_bound 0x7FFFFFF))))
    (fun (recipe, inputs) ->
      let kernel = build_kernel recipe in
      let reference = run_kernel kernel inputs ~mode:`Func in
      List.for_all
        (fun (_, mode) -> run_kernel kernel inputs ~mode = reference)
        modes)

(* bank conflicts slow shared accesses down but never change results *)
let test_bank_conflict_timing () =
  let mk_kernel stride =
    let b =
      B.create ~name:"banks" ~params:[ u64 "a"; u32 "n" ] ~smem_bytes:8192 ()
    in
    let a = B.ld_param b "a" in
    let _n = B.ld_param b "n" in
    let tid = B.mov b B.tid_x in
    (* stage, then read back with the given bank stride *)
    B.st b Shared U32 (B.at b ~base:(B.int 0) ~scale:4 tid) tid;
    B.bar b;
    let idx = B.rem b (B.mul b tid (B.int stride)) (B.int 2048) in
    let v = B.ld b Shared U32 (B.at b ~base:(B.int 0) ~scale:4 idx) in
    B.st b Global U32 (B.at b ~base:a ~scale:4 tid) v;
    B.finish b
  in
  let cycles stride =
    let global = Gsim.Mem.create 4096 in
    let launch =
      Gsim.Launch.create ~kernel:(mk_kernel stride) ~grid:(1, 1, 1)
        ~block:(32, 1, 1)
        ~params:[ ("a", 0L); ("n", 32L) ]
        ~global
    in
    let gpu = Gsim.Gpu.run ~cfg:uncapped launch in
    gpu.Gsim.Gpu.stats.Gsim.Stats.cycles
  in
  (* stride 32 in 4-byte words = every lane on bank 0: 32-way conflict *)
  let fast = cycles 1 in
  let slow = cycles 32 in
  Alcotest.(check bool)
    (Printf.sprintf "32-way conflict slower (%d vs %d cycles)" slow fast)
    true (slow > fast)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_equivalence;
    Alcotest.test_case "bank conflicts slow shared reads" `Quick
      test_bank_conflict_timing;
  ]

let () = Alcotest.run "equivalence" [ ("equivalence", tests) ]
