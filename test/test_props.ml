(* Property-test hardening pass over the coalescer and the PTX
   printer/parser.

   Coalescer: for arbitrary (mask, address vector) inputs the generated
   requests must cover every active thread's cache line exactly once,
   never exceed one request per active thread, and fully-strided warps
   must collapse to the minimum possible request count.

   PTX: kernels built through the Ptx.Builder eDSL (structured control
   flow included) must survive print -> parse with an identical
   instruction stream. *)

open Ptx.Types
module B = Ptx.Builder

let line_size = 128

(* ---------------- coalescer ---------------- *)

let gen_mask_addrs =
  QCheck.pair
    (QCheck.int_bound 0xFFFFFFFF)
    (QCheck.array_of_size (QCheck.Gen.return 32) (QCheck.int_bound 1_000_000))

let active_lines mask addrs =
  let out = ref [] in
  Gsim.Warp.iter_active mask (fun lane ->
      out := (addrs.(lane) / line_size * line_size) :: !out);
  List.sort_uniq compare !out

(* every active thread's line appears in the request list exactly once *)
let prop_cover_each_sector_once =
  QCheck.Test.make ~count:500
    ~name:"coalesce: requests cover every active thread's line exactly once"
    gen_mask_addrs
    (fun (mask, addrs) ->
      let reqs = Gsim.Coalesce.lines ~line_size ~mask ~addrs in
      let no_dups = List.length (List.sort_uniq compare reqs) = List.length reqs in
      no_dups && List.sort compare reqs = active_lines mask addrs)

let prop_count_at_most_active =
  QCheck.Test.make ~count:500
    ~name:"coalesce: request count <= active threads (0 iff none active)"
    gen_mask_addrs
    (fun (mask, addrs) ->
      let n = Gsim.Coalesce.count ~line_size ~mask ~addrs in
      let active = Gsim.Warp.popcount (mask land 0xFFFFFFFF) in
      if active = 0 then n = 0 else n >= 1 && n <= active)

(* a fully-strided warp (lane i reads base + i*elem) generates the
   minimum number of requests: exactly the lines of the touched span *)
let prop_strided_minimal =
  QCheck.Test.make ~count:500
    ~name:"coalesce: fully-strided warps coalesce to the minimum"
    QCheck.(pair (int_bound 100_000) (oneofl [ 1; 2; 4; 8; 16 ]))
    (fun (base, elem) ->
      let addrs = Array.init 32 (fun i -> base + (i * elem)) in
      let n = Gsim.Coalesce.count ~line_size ~mask:0xFFFFFFFF ~addrs in
      let first = base / line_size in
      let last = (base + (31 * elem)) / line_size in
      n = last - first + 1)

(* splitting never changes the set of lines and never reduces coverage:
   each sub-warp covers exactly its own lanes' lines *)
let prop_split_subwarp_coverage =
  QCheck.Test.make ~count:300
    ~name:"coalesce: each sub-warp covers exactly its own lanes"
    gen_mask_addrs
    (fun (mask, addrs) ->
      let width = 8 in
      let groups =
        Gsim.Coalesce.split_lines ~line_size ~width ~mask ~addrs
      in
      (* recompute the expected non-empty sub-warp line sets *)
      let expected = ref [] in
      for g = 3 downto 0 do
        let gmask = mask land (0xFF lsl (g * width)) in
        if gmask <> 0 then expected := active_lines gmask addrs :: !expected
      done;
      List.length groups = List.length !expected
      && List.for_all2
           (fun got want -> List.sort compare got = want)
           groups !expected)

(* ---------------- PTX round-trip via Builder ---------------- *)

(* Random structured kernels: a recursive op language interpreted into
   Builder calls.  Operand references index a growing pool of values,
   so every generated program is well-formed by construction. *)
type rop =
  | R_iop of iop * int * int
  | R_fop of fop * int * int
  | R_funary of funary * int
  | R_mad of int * int * int
  | R_cvt of dtype * dtype * int
  | R_ld of space * dtype * int
  | R_st of space * dtype * int * int
  | R_atom of atomop * int * int
  | R_selp of cmp * int * int
  | R_if of cmp * int * int * rop list
  | R_for of int * rop list
  | R_bar

let gen_rop : rop QCheck.Gen.t =
  let open QCheck.Gen in
  let idx = int_bound 1000 in
  let base =
    [ ( 4,
        map3
          (fun op i j -> R_iop (op, i, j))
          (oneofl [ Add; Sub; Mul; Mulhi; Div; Rem; Min; Max; Band; Bor;
                    Bxor; Shl; Shr ])
          idx idx );
      ( 2,
        map3
          (fun op i j -> R_fop (op, i, j))
          (oneofl [ Fadd; Fsub; Fmul; Fdiv; Fmin; Fmax ])
          idx idx );
      ( 1,
        map2
          (fun op i -> R_funary (op, i))
          (oneofl [ Sqrt; Rsqrt; Rcp; Sin; Cos; Ex2; Lg2 ])
          idx );
      (1, map3 (fun i j k -> R_mad (i, j, k)) idx idx idx);
      ( 1,
        map3
          (fun d s i -> R_cvt (d, s, i))
          (oneofl [ U32; S32; U64; F32; F64 ])
          (oneofl [ U32; S32; U64; F32; F64 ])
          idx );
      ( 2,
        map3
          (fun sp ty i -> R_ld (sp, ty, i))
          (oneofl [ Global; Shared ])
          (oneofl [ U8; U16; U32; S32; U64; F32; F64 ])
          idx );
      ( 2,
        map3
          (fun (sp, ty) i j -> R_st (sp, ty, i, j))
          (pair (oneofl [ Global; Shared ]) (oneofl [ U32; S32; U64; F32 ]))
          idx idx );
      ( 1,
        map3
          (fun op i j -> R_atom (op, i, j))
          (oneofl [ Aadd; Amin; Amax; Aexch; Acas ])
          idx idx );
      ( 1,
        map3
          (fun c i j -> R_selp (c, i, j))
          (oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])
          idx idx );
      (1, return R_bar) ]
  in
  let rec gen depth =
    if depth = 0 then frequency base
    else
      frequency
        (base
        @ [ ( 2,
              map3
                (fun c (i, j) body -> R_if (c, i, j, body))
                (oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])
                (pair idx idx)
                (list_size (int_range 1 5) (gen (depth - 1))) );
            ( 1,
              map2
                (fun trips body -> R_for (trips, body))
                (int_range 1 4)
                (list_size (int_range 1 4) (gen (depth - 1))) ) ])
  in
  gen 2

let build_kernel ops =
  let b =
    B.create ~name:"prop"
      ~params:[ { Ptx.Kernel.pname = "a"; pty = U64 };
                { Ptx.Kernel.pname = "n"; pty = U32 } ]
      ~smem_bytes:256 ()
  in
  let ap = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let pool = ref [| B.global_tid b; n; B.int 3; B.float 1.5 |] in
  let pick i = !pool.(i mod Array.length !pool) in
  let push v = pool := Array.append !pool [| v |] in
  let addr_of sp i =
    (* global addresses hang off the parameter; shared off offset 0 *)
    match sp with
    | Global -> B.at b ~base:ap ~scale:8 (pick i)
    | _ -> B.at b ~base:(B.int 0) ~scale:4 (pick i)
  in
  let rec interp op =
    match op with
    | R_iop (o, i, j) -> push (B.iop b o (pick i) (pick j))
    | R_fop (o, i, j) -> push (B.fop b o (pick i) (pick j))
    | R_funary (o, i) -> push (B.funary b o (pick i))
    | R_mad (i, j, k) -> push (B.mad b (pick i) (pick j) (pick k))
    | R_cvt (d, s, i) -> push (B.cvt b ~dst_ty:d ~src_ty:s (pick i))
    | R_ld (sp, ty, i) -> push (B.ld b sp ty (addr_of sp i))
    | R_st (sp, ty, i, j) -> B.st b sp ty (addr_of sp i) (pick j)
    | R_atom (o, i, j) -> push (B.atom b o U32 (addr_of Global i) (pick j))
    | R_selp (c, i, j) ->
        let p = B.setp b c (pick i) (pick j) in
        push (B.selp b (pick i) (pick j) p)
    | R_if (c, i, j, body) ->
        let p = B.setp b c (pick i) (pick j) in
        B.if_ b p (fun () -> List.iter interp body)
    | R_for (trips, body) ->
        B.for_loop b ~init:(B.int 0) ~bound:(B.int trips) ~step:(B.int 1)
          (fun iv ->
            push iv;
            List.iter interp body)
    | R_bar -> B.bar b
  in
  List.iter interp ops;
  B.finish b

let gen_builder_kernel =
  QCheck.make
    ~print:(fun ops -> Ptx.Kernel.to_string (build_kernel ops))
    QCheck.Gen.(list_size (int_range 1 12) gen_rop |> map (fun l -> l))

let same_stream (k1 : Ptx.Kernel.t) (k2 : Ptx.Kernel.t) =
  k1.Ptx.Kernel.kname = k2.Ptx.Kernel.kname
  && k1.Ptx.Kernel.params = k2.Ptx.Kernel.params
  && k1.Ptx.Kernel.nregs = k2.Ptx.Kernel.nregs
  && k1.Ptx.Kernel.npregs = k2.Ptx.Kernel.npregs
  && k1.Ptx.Kernel.smem_bytes = k2.Ptx.Kernel.smem_bytes
  && Array.length k1.Ptx.Kernel.body = Array.length k2.Ptx.Kernel.body
  && (let same = ref true in
      Array.iteri
        (fun pc i ->
          if i <> k2.Ptx.Kernel.body.(pc) then same := false)
        k1.Ptx.Kernel.body;
      !same)

let prop_builder_roundtrip =
  QCheck.Test.make ~count:150
    ~name:"ptx: parse of printed builder kernels reproduces the stream"
    gen_builder_kernel
    (fun ops ->
      let k = build_kernel ops in
      let k2 = Ptx.Parse.kernel_of_string (Ptx.Kernel.to_string k) in
      same_stream k k2)

(* the classifier must agree on a kernel and its print/parse image —
   classification is a function of the instruction stream alone *)
let prop_classification_stable_under_roundtrip =
  QCheck.Test.make ~count:75
    ~name:"ptx: load classification survives print/parse"
    gen_builder_kernel
    (fun ops ->
      let k = build_kernel ops in
      let k2 = Ptx.Parse.kernel_of_string (Ptx.Kernel.to_string k) in
      let digest k =
        List.map
          (fun (li : Dataflow.Classify.load_info) ->
            ( li.Dataflow.Classify.li_pc,
              li.Dataflow.Classify.li_space,
              li.Dataflow.Classify.li_class ))
          (Dataflow.Classify.classify k).Dataflow.Classify.res_loads
      in
      digest k = digest k2)

(* ---------------- Ringbuf vs Queue reference ---------------- *)

(* The simulator's preallocated FIFO must be observably identical to
   Queue.  Random operation sequences are replayed against both; every
   intermediate observation (pop/peek results, lengths) and the final
   contents must agree. *)

type rb_op = Rb_push of int | Rb_pop | Rb_peek | Rb_clear

let gen_rb_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [ (5, map (fun v -> Rb_push v) (int_bound 10_000));
        (4, return Rb_pop);
        (2, return Rb_peek);
        (1, return Rb_clear) ]
  in
  QCheck.make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "cap=%d ops=[%s]" cap
        (String.concat "; "
           (List.map
              (function
                | Rb_push v -> Printf.sprintf "push %d" v
                | Rb_pop -> "pop"
                | Rb_peek -> "peek"
                | Rb_clear -> "clear")
              ops)))
    (pair (int_range 1 8) (list_size (int_bound 200) op))

let prop_ringbuf_matches_queue =
  QCheck.Test.make ~count:500
    ~name:"ringbuf: random op sequences agree with a Queue reference"
    gen_rb_ops
    (fun (cap, ops) ->
      let rb = Gsim.Ringbuf.create ~capacity:cap () in
      let q = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Rb_push v ->
              Gsim.Ringbuf.push v rb;
              Queue.push v q;
              true
          | Rb_pop -> Gsim.Ringbuf.pop_opt rb = Queue.take_opt q
          | Rb_peek -> Gsim.Ringbuf.peek_opt rb = Queue.peek_opt q
          | Rb_clear ->
              Gsim.Ringbuf.clear rb;
              Queue.clear q;
              true)
        ops
      && Gsim.Ringbuf.length rb = Queue.length q
      && Gsim.Ringbuf.to_list rb = List.of_seq (Queue.to_seq q))

let prop_ringbuf_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"ringbuf: push-all / pop-all round-trips any list"
    QCheck.(list (int_bound 100_000))
    (fun xs ->
      let rb = Gsim.Ringbuf.create ~capacity:1 () in
      List.iter (fun x -> Gsim.Ringbuf.push x rb) xs;
      let out = ref [] in
      let rec drain () =
        match Gsim.Ringbuf.pop_opt rb with
        | Some x ->
            out := x :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = xs && Gsim.Ringbuf.is_empty rb)

(* Wrap-around: a buffer repeatedly cycled at full capacity must keep
   strict FIFO order as head/tail pass the array boundary. *)
let prop_ringbuf_wraparound =
  QCheck.Test.make ~count:200
    ~name:"ringbuf: FIFO order survives wrap-around at fixed occupancy"
    QCheck.(pair (int_range 1 6) (int_range 1 100))
    (fun (cap, rounds) ->
      let rb = Gsim.Ringbuf.create ~capacity:cap () in
      (* fill to exactly capacity so every later push wraps *)
      for i = 0 to cap - 1 do
        Gsim.Ringbuf.push i rb
      done;
      let ok = ref (Gsim.Ringbuf.capacity rb = cap) in
      for i = cap to cap + (rounds * cap) - 1 do
        (match Gsim.Ringbuf.pop_opt rb with
        | Some v -> if v <> i - cap then ok := false
        | None -> ok := false);
        Gsim.Ringbuf.push i rb
      done;
      (* staying at <= capacity elements must never have grown it *)
      !ok && Gsim.Ringbuf.capacity rb = cap)

(* Capacity edge: growing from a wrapped state preserves order, and
   capacity doubles exactly when the buffer is full. *)
let prop_ringbuf_grow_preserves_order =
  QCheck.Test.make ~count:200
    ~name:"ringbuf: growth from a wrapped full buffer preserves order"
    QCheck.(pair (int_range 1 8) (int_range 0 8))
    (fun (cap, churn) ->
      let rb = Gsim.Ringbuf.create ~capacity:cap () in
      (* wrap the head: push churn sentinels and pop them again *)
      for i = 0 to churn - 1 do
        Gsim.Ringbuf.push (-i) rb;
        ignore (Gsim.Ringbuf.pop_opt rb)
      done;
      for i = 0 to cap - 1 do
        Gsim.Ringbuf.push i rb
      done;
      let cap_before = Gsim.Ringbuf.capacity rb in
      Gsim.Ringbuf.push cap rb;
      (* exactly one doubling, contents intact *)
      Gsim.Ringbuf.capacity rb = 2 * cap_before
      && Gsim.Ringbuf.to_list rb = List.init (cap + 1) Fun.id)

(* ---------------- JSON emitter/parser ---------------- *)

let gen_json =
  let open QCheck.Gen in
  let module J = Gsim.Stats_io.Json in
  let leaf =
    frequency
      [ (2, map (fun i -> J.Int i) (int_range (-1000000) 1000000));
        (1, map (fun f -> J.Float f) (float_bound_exclusive 1e9));
        (2, map (fun s -> J.Str s) (string_size ~gen:printable (int_bound 12)));
        (1, return (J.Bool true));
        (1, return (J.Bool false));
        (1, return J.Null) ]
  in
  let rec value depth =
    if depth = 0 then leaf
    else
      frequency
        [ (3, leaf);
          (1, map (fun l -> J.Arr l) (list_size (int_bound 5) (value (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                (* object keys must be distinct for round-trip equality *)
                let seen = Hashtbl.create 8 in
                J.Obj
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else begin
                         Hashtbl.add seen k ();
                         true
                       end)
                     kvs))
              (list_size (int_bound 5)
                 (pair (string_size ~gen:printable (int_bound 8))
                    (value (depth - 1)))) ) ]
  in
  QCheck.make (value 3)

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json: of_string (to_string v) = v"
    gen_json
    (fun v ->
      let module J = Gsim.Stats_io.Json in
      J.of_string (J.to_string v) = v)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cover_each_sector_once;
      prop_count_at_most_active;
      prop_strided_minimal;
      prop_split_subwarp_coverage;
      prop_builder_roundtrip;
      prop_classification_stable_under_roundtrip;
      prop_ringbuf_matches_queue;
      prop_ringbuf_roundtrip;
      prop_ringbuf_wraparound;
      prop_ringbuf_grow_preserves_order;
      prop_json_roundtrip ]

let () = Alcotest.run "props" [ ("props", tests) ]
