(* @perf-smoke: one small app through the optimized timing core,
   asserting its golden perf-lock digests.  A sub-second canary wired
   into `dune runtest` so a timing perturbation is caught even when the
   full (Slow-tagged) test_perf_lock sweep is skipped.

   Usage: validate_perf_smoke.exe GOLDEN_FILE [APP] *)

let () =
  let golden_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "goldens/perf_lock.golden"
  in
  let app = if Array.length Sys.argv > 2 then Sys.argv.(2) else "2mm" in
  let want =
    match List.assoc_opt app (Perf_lock.read_golden golden_path) with
    | Some d -> d
    | None ->
        Printf.eprintf "perf-smoke: no golden entry for %s\n" app;
        exit 1
  in
  let got = Perf_lock.digest_app (Workloads.Suite.find app) in
  let fail = ref false in
  let check label w g =
    if w <> g then begin
      Printf.eprintf "perf-smoke: %s %s digest mismatch: want %s got %s\n" app
        label w g;
      fail := true
    end
  in
  check "stats" want.Perf_lock.dg_stats got.Perf_lock.dg_stats;
  check "profile" want.Perf_lock.dg_profile got.Perf_lock.dg_profile;
  check "trace" want.Perf_lock.dg_trace got.Perf_lock.dg_trace;
  if !fail then exit 1;
  Printf.printf "perf-smoke: %s digests match goldens\n" app
