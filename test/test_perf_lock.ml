(* Perf-lock differential suite: the core-loop optimizations (decode
   precompute, flat warp-slot arrays, ring buffers, batched coalescing)
   must be observably invisible.  Every app of the suite is re-run at
   the pinned perf-lock configuration and its Stats.t JSON, Profile.t
   JSON, and full trace event stream digests are compared against the
   goldens recorded from the pre-optimization core
   (test/goldens/perf_lock.golden).  A mismatch means a core change
   perturbed timing — which is either a bug or a deliberate model
   change that must regenerate the goldens via gen_perf_lock.exe and
   justify itself in review. *)

let golden_path = "goldens/perf_lock.golden"

let goldens = lazy (Perf_lock.read_golden golden_path)

let check_app name =
  let want =
    match List.assoc_opt name (Lazy.force goldens) with
    | Some d -> d
    | None -> Alcotest.failf "no golden entry for %s" name
  in
  let got = Perf_lock.digest_app (Workloads.Suite.find name) in
  Alcotest.(check string)
    (name ^ ": Stats.t JSON digest")
    want.Perf_lock.dg_stats got.Perf_lock.dg_stats;
  Alcotest.(check string)
    (name ^ ": profile JSON digest")
    want.Perf_lock.dg_profile got.Perf_lock.dg_profile;
  Alcotest.(check string)
    (name ^ ": trace stream digest")
    want.Perf_lock.dg_trace got.Perf_lock.dg_trace

let test_covers_suite () =
  Alcotest.(check int)
    "golden file covers the whole suite"
    (List.length Workloads.Suite.all)
    (List.length (Lazy.force goldens))

let app_cases =
  List.map
    (fun (a : Workloads.App.t) ->
      let name = a.Workloads.App.name in
      Alcotest.test_case name `Slow (fun () -> check_app name))
    Workloads.Suite.all

let () =
  Alcotest.run "perf_lock"
    [
      ( "coverage",
        [ Alcotest.test_case "suite coverage" `Quick test_covers_suite ] );
      ("byte-identity", app_cases);
    ]
