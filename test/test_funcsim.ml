(* Functional-simulator metric invariants, profiler-counter
   consistency, and parser error reporting. *)

open Ptx.Types
module B = Ptx.Builder
module App = Workloads.App

(* unchecked functional run through the unified entry point *)
let run_func app scale =
  match
    Critload.Runner.run ~mode:Critload.Runner.Func ~scale ~check:false app
  with
  | Ok r -> Critload.Runner.Report.func_exn r
  | Error e -> raise (Gsim.Sim_error.Error e)

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }

(* stride-configurable load kernel: thread i loads a[i * stride] *)
let stride_kernel () =
  let b =
    B.create ~name:"stride" ~params:[ u64 "a"; u32 "stride"; u32 "n" ] ()
  in
  let a = B.ld_param b "a" in
  let stride = B.ld_param b "stride" in
  let n = B.ld_param b "n" in
  let i = B.global_tid b in
  let p = B.setp b Lt i n in
  B.if_ b p (fun () ->
      let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 (B.mul b i stride)) in
      B.st b Global F32 (B.at b ~base:a ~scale:4 i) v);
  B.finish b

let run_stride stride =
  let kernel = stride_kernel () in
  let global = Gsim.Mem.create (1 lsl 22) in
  let n = 512 in
  let launch =
    Gsim.Launch.create ~kernel
      ~grid:(n / 128, 1, 1)
      ~block:(128, 1, 1)
      ~params:
        [ ("a", 0L); ("stride", Int64.of_int stride); ("n", Int64.of_int n) ]
      ~global
  in
  Gsim.Funcsim.run launch

(* coalescing degrades exactly with the stride, in line sized steps *)
let test_stride_coalescing () =
  let rpw s =
    Gsim.Funcsim.requests_per_warp (run_stride s)
      Dataflow.Classify.Deterministic
  in
  Alcotest.(check (float 0.01)) "stride 1 -> 1 request" 1.0 (rpw 1);
  Alcotest.(check (float 0.01)) "stride 2 -> 2 requests" 2.0 (rpw 2);
  Alcotest.(check (float 0.01)) "stride 8 -> 8 requests" 8.0 (rpw 8);
  Alcotest.(check (float 0.01)) "stride 32 -> fully uncoalesced" 32.0 (rpw 32);
  Alcotest.(check (float 0.01)) "stride 64 -> still 32 (one per lane)" 32.0
    (rpw 64)

(* counter conservation: every generated request probed the serial L1;
   every L1 miss queried the L2 *)
let test_counter_conservation () =
  List.iter
    (fun name ->
      let app = Workloads.Suite.find name in
      let r = run_func app App.Small in
      let fs = r.Critload.Runner.fr_fs in
      let c = Gsim.Funcsim.counters fs in
      Alcotest.(check int)
        (name ^ ": L1 probes = generated requests")
        (fs.Gsim.Funcsim.gld_requests.(0) + fs.Gsim.Funcsim.gld_requests.(1))
        (c.Gsim.Funcsim.l1_global_load_hit + c.Gsim.Funcsim.l1_global_load_miss);
      Alcotest.(check int)
        (name ^ ": L2 queries = L1 misses")
        c.Gsim.Funcsim.l1_global_load_miss c.Gsim.Funcsim.l2_read_queries;
      Alcotest.(check bool)
        (name ^ ": L2 hits <= queries")
        true
        (c.Gsim.Funcsim.l2_read_hits <= c.Gsim.Funcsim.l2_read_queries);
      Alcotest.(check int)
        (name ^ ": block accesses = generated requests")
        (fs.Gsim.Funcsim.gld_requests.(0) + fs.Gsim.Funcsim.gld_requests.(1))
        fs.Gsim.Funcsim.block_accesses)
    [ "2mm"; "spmv"; "bfs"; "htw" ]

let test_sharing_invariants () =
  List.iter
    (fun name ->
      let app = Workloads.Suite.find name in
      let fs = (run_func app App.Small).Critload.Runner.fr_fs in
      let sh = Gsim.Funcsim.sharing fs in
      Alcotest.(check bool) (name ^ ": ratios in [0,1]") true
        (sh.Gsim.Funcsim.sh_block_ratio >= 0.0
        && sh.Gsim.Funcsim.sh_block_ratio <= 1.0
        && sh.Gsim.Funcsim.sh_access_ratio >= 0.0
        && sh.Gsim.Funcsim.sh_access_ratio <= 1.0);
      if sh.Gsim.Funcsim.sh_block_ratio > 0.0 then
        Alcotest.(check bool) (name ^ ": shared blocks have >= 2 CTAs") true
          (sh.Gsim.Funcsim.sh_avg_ctas >= 2.0);
      (* cold-miss ratio and reuse are reciprocal views *)
      let cold = Gsim.Funcsim.cold_miss_ratio fs in
      let reuse = Gsim.Funcsim.avg_accesses_per_block fs in
      if cold > 0.0 then
        Alcotest.(check (float 0.01))
          (name ^ ": cold * reuse = 1")
          1.0 (cold *. reuse))
    [ "2mm"; "bfs"; "mriq" ]

let test_cta_histogram_sums_to_one () =
  let app = Workloads.Suite.find "2mm" in
  let fs = (run_func app App.Small).Critload.Runner.fr_fs in
  let hist = Gsim.Funcsim.cta_distance_histogram fs in
  let total = List.fold_left (fun a (_, f) -> a +. f) 0.0 hist in
  Alcotest.(check (float 0.001)) "fractions sum to 1" 1.0 total;
  List.iter
    (fun (d, f) ->
      Alcotest.(check bool) "distances positive" true (d > 0);
      Alcotest.(check bool) "fractions positive" true (f > 0.0))
    hist

(* ---------------- parser error reporting ---------------- *)

let check_parse_error text =
  match Ptx.Parse.kernel_of_string text with
  | exception Ptx.Parse.Error _ -> ()
  | exception Ptx.Kernel.Invalid _ -> ()
  | _ -> Alcotest.failf "expected a parse failure for %S" text

let test_parse_errors () =
  (* missing header *)
  check_parse_error "{ exit; }";
  (* bad register *)
  check_parse_error
    ".kernel k ()\n.reg 1 .pred 1 .shared 0\n{\n  mov %q1, 0;\n}";
  (* unknown mnemonic *)
  check_parse_error
    ".kernel k ()\n.reg 1 .pred 1 .shared 0\n{\n  frobnicate %r0, 0;\n}";
  (* arity error *)
  check_parse_error
    ".kernel k ()\n.reg 2 .pred 1 .shared 0\n{\n  add %r0, %r1;\n  exit;\n}";
  (* missing brace *)
  check_parse_error ".kernel k ()\n.reg 1 .pred 1 .shared 0\n{\n  exit;";
  (* register out of declared range -> Kernel.Invalid *)
  check_parse_error
    ".kernel k ()\n.reg 1 .pred 1 .shared 0\n{\n  mov %r5, 0;\n  exit;\n}"

let test_parse_comments_and_offsets () =
  let k =
    Ptx.Parse.kernel_of_string
      ".kernel k (.param .u64 a) // header comment\n\
       .reg 2 .pred 1 .shared 0\n\
       {\n\
      \  ld.param.u64 %r0, [a]; // load the base\n\
      \  ld.global.u32 %r1, [%r0+64];\n\
      \  exit;\n\
       }"
  in
  match k.Ptx.Kernel.body.(1) with
  | Ptx.Instr.Ld (Global, U32, 1, { abase = Reg 0; aoffset = 64 }) -> ()
  | i -> Alcotest.failf "unexpected instruction %s" (Ptx.Instr.to_string i)

(* ---------------- warp utility properties ---------------- *)

let prop_popcount =
  QCheck.Test.make ~count:300 ~name:"popcount matches naive count"
    QCheck.(int_bound 0xFFFFFFFF)
    (fun m ->
      let naive = ref 0 in
      for b = 0 to 31 do
        if m land (1 lsl b) <> 0 then incr naive
      done;
      Gsim.Warp.popcount m = !naive)

let test_full_mask () =
  Alcotest.(check int) "full 32" 0xFFFFFFFF (Gsim.Warp.full_mask 32);
  Alcotest.(check int) "full 1" 1 (Gsim.Warp.full_mask 1);
  Alcotest.(check int) "popcount of full" 17
    (Gsim.Warp.popcount (Gsim.Warp.full_mask 17))

(* ---------------- table rendering ---------------- *)

let test_tables_render () =
  let out =
    Critload.Tables.render ~title:"T" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | title :: header :: rule :: r1 :: r2 :: _ ->
      Alcotest.(check string) "title" "T" title;
      Alcotest.(check bool) "columns aligned" true
        (String.length header = String.length rule
        && String.length r1 = String.length header
        && String.length r2 = String.length header)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check string) "pct" "12.3%" (Critload.Tables.pct 0.1234);
  Alcotest.(check string) "f2" "3.14" (Critload.Tables.f2 3.14159);
  Alcotest.(check string) "f1" "3.1" (Critload.Tables.f1 3.14159)

let tests =
  [
    Alcotest.test_case "tables render" `Quick test_tables_render;
    Alcotest.test_case "stride coalescing" `Quick test_stride_coalescing;
    Alcotest.test_case "profiler counter conservation" `Quick
      test_counter_conservation;
    Alcotest.test_case "sharing invariants" `Quick test_sharing_invariants;
    Alcotest.test_case "CTA histogram normalization" `Quick
      test_cta_histogram_sums_to_one;
    Alcotest.test_case "parser error reporting" `Quick test_parse_errors;
    Alcotest.test_case "parser comments and offsets" `Quick
      test_parse_comments_and_offsets;
    QCheck_alcotest.to_alcotest prop_popcount;
    Alcotest.test_case "full_mask" `Quick test_full_mask;
  ]

let () = Alcotest.run "funcsim" [ ("funcsim", tests) ]
