(* Integration tests of the fork-based sweep runner: parallel results
   equal sequential and in-process results, killed/hung workers are
   retried without corrupting the result set, deterministic failures
   are reported without a futile retry, and both result flavors
   round-trip through their JSON summaries. *)

module P = Critload.Parsweep
module Json = Gsim.Stats_io.Json

let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:6_000 ()
let apps4 = [ "2mm"; "gaus"; "bfs"; "spmv" ]

let mk_jobs apps =
  List.map (fun a -> P.job ~cfg ~warmup:false a) apps

let payload_exn name = function
  | P.Completed v -> v
  | P.Failed msg -> Alcotest.failf "%s failed: %s" name msg

(* jobs 4 and jobs 1 produce the same per-app stats, which also match
   direct in-process execution — the acceptance criterion *)
let test_parallel_equals_sequential () =
  let jobs = mk_jobs apps4 in
  let par = P.run ~workers:4 ~timeout:300. jobs in
  let seq = P.run ~workers:1 ~timeout:300. jobs in
  List.iteri
    (fun i j ->
      let name = j.P.sj_app in
      let p = Json.to_string (payload_exn name par.(i)) in
      let s = Json.to_string (payload_exn name seq.(i)) in
      Alcotest.(check string) (name ^ ": jobs 4 = jobs 1") s p;
      let direct = Json.to_string (P.exec_job j) in
      Alcotest.(check string) (name ^ ": pool = in-process") direct p;
      (* parse-back validation: the payload is a well-formed timing
         summary and re-serializes identically *)
      let t = P.timing_summary_of_json (payload_exn name par.(i)) in
      Alcotest.(check string)
        (name ^ ": timing summary round-trip")
        p
        (Json.to_string (P.timing_summary_to_json t));
      Alcotest.(check bool)
        (name ^ ": simulated cycles present")
        true
        (t.P.tm_stats.Gsim.Stats.cycles > 0))
    jobs

(* a worker killed mid-job is retried once and the result set matches a
   clean run slot-for-slot *)
let test_killed_worker_retried () =
  let jobs = mk_jobs [ "2mm"; "gaus" ] in
  let retries = ref [] in
  let chaos ~job_index ~attempt =
    if job_index = 0 && attempt = 0 then
      Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  let on_event = function
    | P.Retried (j, _) -> retries := j.P.sj_app :: !retries
    | _ -> ()
  in
  let chaotic = P.run ~workers:2 ~timeout:300. ~on_event ~chaos jobs in
  let clean = P.run ~workers:2 ~timeout:300. jobs in
  Alcotest.(check (list string)) "exactly the killed job retried" [ "2mm" ]
    !retries;
  List.iteri
    (fun i j ->
      let name = j.P.sj_app in
      Alcotest.(check string)
        (name ^ ": retried run matches clean run")
        (Json.to_string (payload_exn name clean.(i)))
        (Json.to_string (payload_exn name chaotic.(i))))
    jobs

(* a hung worker hits the wall-clock timeout, is killed and retried *)
let test_hung_worker_timed_out () =
  let jobs = mk_jobs [ "2mm" ] in
  let reasons = ref [] in
  let chaos ~job_index ~attempt =
    if job_index = 0 && attempt = 0 then Unix.sleepf 30.
  in
  let on_event = function
    | P.Retried (_, reason) -> reasons := reason :: !reasons
    | _ -> ()
  in
  let out = P.run ~workers:1 ~timeout:0.5 ~on_event ~chaos jobs in
  (match !reasons with
  | [ reason ] ->
      Alcotest.(check bool) "retry reason mentions the timeout" true
        (String.length reason >= 7 && String.sub reason 0 7 = "timeout")
  | l -> Alcotest.failf "expected one retry, saw %d" (List.length l));
  match out.(0) with
  | P.Completed _ -> ()
  | P.Failed msg -> Alcotest.failf "retry did not recover: %s" msg

(* a worker that ships corrupted bytes instead of a result envelope is
   indistinguishable from a crash: retried once, then identical to a
   clean run *)
let test_garbled_worker_retried () =
  let jobs = mk_jobs [ "2mm"; "gaus" ] in
  let retries = ref [] in
  let chaos ~job_index ~attempt =
    if job_index = 1 && attempt = 0 then raise P.Garble
  in
  let on_event = function
    | P.Retried (j, _) -> retries := j.P.sj_app :: !retries
    | _ -> ()
  in
  let chaotic = P.run ~workers:2 ~timeout:300. ~on_event ~chaos jobs in
  let clean = P.run ~workers:2 ~timeout:300. jobs in
  Alcotest.(check (list string)) "exactly the garbled job retried" [ "gaus" ]
    !retries;
  List.iteri
    (fun i j ->
      let name = j.P.sj_app in
      Alcotest.(check string)
        (name ^ ": garbled run matches clean run")
        (Json.to_string (payload_exn name clean.(i)))
        (Json.to_string (payload_exn name chaotic.(i))))
    jobs

(* a sweep aborted mid-run leaves a checkpoint from which a resumed
   sweep reconstructs the uninterrupted document byte-for-byte — even
   with a trailing checkpoint line cut short by the "crash" *)
let test_abort_resume_byte_identical () =
  let jobs = mk_jobs apps4 in
  let ckpt = Filename.temp_file "critload-ckpt" ".partial" in
  let oc = open_out ckpt in
  let on_result _i j o =
    output_string oc (P.checkpoint_line j o);
    output_char oc '\n';
    flush oc
  in
  let partial =
    P.run ~workers:2 ~timeout:300. ~on_result ~abort_after:2 jobs
  in
  let settled =
    Array.to_list partial
    |> List.filter (function P.Completed _ -> true | P.Failed _ -> false)
    |> List.length
  in
  Alcotest.(check bool) "abort stopped the sweep early" true
    (settled >= 2 && settled < List.length jobs);
  (* the write the crash interrupted *)
  output_string oc "{\"key\": \"half-a-rec";
  close_out oc;
  let corrupt = ref [] in
  let prefilled =
    P.read_checkpoint
      ~on_corrupt:(fun ~line ~reason -> corrupt := (line, reason) :: !corrupt)
      ckpt
    |> List.filter (fun (_, o) ->
           match o with P.Completed _ -> true | P.Failed _ -> false)
  in
  Alcotest.(check int) "checkpoint holds exactly the settled jobs" settled
    (List.length prefilled);
  (* exactly the torn trailing line is reported, at its line number *)
  (match !corrupt with
  | [ (line, _) ] ->
      Alcotest.(check int) "torn line reported at the right line number"
        (settled + 1) line
  | l -> Alcotest.failf "expected 1 corrupt line, got %d" (List.length l));
  let skipped = ref 0 in
  let on_event = function P.Skipped _ -> incr skipped | _ -> () in
  let resumed = P.run ~workers:2 ~timeout:300. ~prefilled ~on_event jobs in
  Alcotest.(check int) "every checkpointed job was skipped" settled !skipped;
  let clean = P.run ~workers:1 ~timeout:300. jobs in
  Alcotest.(check string)
    "resumed document byte-identical to an uninterrupted jobs-1 run"
    (Json.to_string (P.sweep_to_json ~jobs ~outcomes:clean))
    (Json.to_string (P.sweep_to_json ~jobs ~outcomes:resumed));
  Sys.remove ckpt

(* corrupt checkpoint lines are classified and reported line by line:
   unparseable JSON and well-formed-but-wrong-shape records are both
   dropped with a callback; blank lines are not corruption *)
let test_checkpoint_corrupt_lines () =
  let j = P.job ~cfg "2mm" in
  let ckpt = Filename.temp_file "critload-ckpt" ".partial" in
  let oc = open_out ckpt in
  output_string oc (P.checkpoint_line j (P.Failed "boom"));
  output_string oc "\n\n";
  output_string oc "{\"not\": \"a checkpoint record\"}\n";
  output_string oc "garbage that is not JSON\n";
  output_string oc (P.checkpoint_line j (P.Failed "boom2"));
  output_char oc '\n';
  close_out oc;
  let corrupt = ref [] in
  let entries =
    P.read_checkpoint
      ~on_corrupt:(fun ~line ~reason -> corrupt := (line, reason) :: !corrupt)
      ckpt
  in
  Alcotest.(check int) "both valid records survive" 2 (List.length entries);
  Alcotest.(check (list int)) "corrupt lines reported with line numbers"
    [ 3; 4 ]
    (List.rev_map fst !corrupt);
  (* silent by default: omitting the callback still parses *)
  Alcotest.(check int) "default reader drops them silently" 2
    (List.length (P.read_checkpoint ckpt));
  Sys.remove ckpt

(* an in-job exception is a deterministic failure: reported, not
   retried *)
let test_deterministic_failure_not_retried () =
  let jobs = [ P.job ~cfg "no-such-app" ] in
  let retried = ref false in
  let on_event = function P.Retried _ -> retried := true | _ -> () in
  let out = P.run ~workers:1 ~timeout:300. ~on_event jobs in
  Alcotest.(check bool) "no retry for a deterministic error" false !retried;
  match out.(0) with
  | P.Failed msg ->
      Alcotest.(check bool) "error names the unknown app" true
        (let rec contains i =
           i + 11 <= String.length msg
           && (String.sub msg i 11 = "no-such-app" || contains (i + 1))
         in
         contains 0)
  | P.Completed _ -> Alcotest.fail "expected failure"

(* functional-mode jobs cross the boundary too, with the host check *)
let test_func_mode_roundtrip () =
  let jobs = [ P.job ~cfg:Gsim.Config.default ~mode:P.Func "2mm" ] in
  let out = P.run ~workers:2 ~timeout:300. jobs in
  let payload = payload_exn "2mm" out.(0) in
  let f = P.func_summary_of_json payload in
  Alcotest.(check bool) "host check passed" true f.P.fu_check;
  Alcotest.(check (pair int int)) "static counts" (2, 0)
    (f.P.fu_static_d, f.P.fu_static_n);
  Alcotest.(check string) "func summary round-trip"
    (Json.to_string payload)
    (Json.to_string (P.func_summary_to_json f))

(* the whole-sweep document parses back: envelopes keyed by app with ok
   status and parseable stats *)
let test_sweep_document () =
  let jobs = mk_jobs [ "2mm"; "gaus" ] in
  let outcomes = P.run ~workers:2 ~timeout:300. jobs in
  let doc = P.sweep_to_json ~jobs ~outcomes in
  let doc = Json.of_string (Json.to_string doc) in
  Alcotest.(check string) "schema tag" "critload-sweep-v1"
    (Json.str_field "schema" doc);
  let results = Json.get_list (Json.member "results" doc) in
  Alcotest.(check int) "one envelope per job" 2 (List.length results);
  List.iter2
    (fun j env ->
      Alcotest.(check string) "app" j.P.sj_app (Json.str_field "app" env);
      Alcotest.(check string) "status" "ok" (Json.str_field "status" env);
      ignore (P.timing_summary_of_json (Json.member "result" env)))
    jobs results

let () =
  Alcotest.run "parsweep"
    [ ( "parsweep",
        [ Alcotest.test_case "parallel = sequential = in-process" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "killed worker retried" `Quick
            test_killed_worker_retried;
          Alcotest.test_case "hung worker timed out + retried" `Quick
            test_hung_worker_timed_out;
          Alcotest.test_case "garbled worker retried" `Quick
            test_garbled_worker_retried;
          Alcotest.test_case "abort + resume byte-identical" `Quick
            test_abort_resume_byte_identical;
          Alcotest.test_case "corrupt checkpoint lines reported" `Quick
            test_checkpoint_corrupt_lines;
          Alcotest.test_case "deterministic failure not retried" `Quick
            test_deterministic_failure_not_retried;
          Alcotest.test_case "func mode round-trip" `Quick
            test_func_mode_roundtrip;
          Alcotest.test_case "sweep document parses back" `Quick
            test_sweep_document ] ) ]
