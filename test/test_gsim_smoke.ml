(* End-to-end smoke tests of the functional and cycle simulators on
   small hand-built kernels: correct results in memory, sensible stats,
   and classifier-tagged traffic. *)

open Ptx.Types
module B = Ptx.Builder

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }

(* y[i] = a*x[i] + y[i] over n elements, one thread per element. *)
let saxpy_kernel () =
  let b =
    B.create ~name:"saxpy" ~params:[ u64 "x"; u64 "y"; u32 "n" ] ()
  in
  let xp = B.ld_param b "x" in
  let yp = B.ld_param b "y" in
  let n = B.ld_param b "n" in
  let i = B.global_tid b in
  let p = B.setp b Lt i n in
  B.if_ b p (fun () ->
      let xi = B.ld b Global F32 (B.at b ~base:xp ~scale:4 i) in
      let yi = B.ld b Global F32 (B.at b ~base:yp ~scale:4 i) in
      let r = B.fma b (B.float 2.0) xi yi in
      B.st b Global F32 (B.at b ~base:yp ~scale:4 i) r);
  B.finish b

let n_elems = 1024

let make_launch () =
  let global = Gsim.Mem.create (64 * 1024) in
  let x_base = 0 and y_base = 4 * n_elems in
  for i = 0 to n_elems - 1 do
    Gsim.Mem.set_f32 global (x_base + (4 * i)) (float_of_int i);
    Gsim.Mem.set_f32 global (y_base + (4 * i)) 1.0
  done;
  Gsim.Launch.create ~kernel:(saxpy_kernel ())
    ~grid:(n_elems / 128, 1, 1)
    ~block:(128, 1, 1)
    ~params:
      [ ("x", Int64.of_int x_base); ("y", Int64.of_int y_base);
        ("n", Int64.of_int n_elems) ]
    ~global

let check_result global =
  let y_base = 4 * n_elems in
  let ok = ref true in
  for i = 0 to n_elems - 1 do
    let expect = (2.0 *. float_of_int i) +. 1.0 in
    if Gsim.Mem.get_f32 global (y_base + (4 * i)) <> expect then ok := false
  done;
  !ok

let test_funcsim_saxpy () =
  let launch = make_launch () in
  let fs = Gsim.Funcsim.run launch in
  Alcotest.(check bool) "results correct" true (check_result launch.Gsim.Launch.global);
  Alcotest.(check int) "global load warps: 2 per warp, 8 warps/CTA, 8 CTAs"
    (2 * (n_elems / 32))
    (Gsim.Funcsim.total_gld_warps fs);
  Alcotest.(check (float 0.001)) "all loads deterministic" 1.0
    (Gsim.Funcsim.deterministic_fraction fs);
  (* perfectly coalesced: 1 request per warp load *)
  Alcotest.(check (float 0.001)) "requests per warp" 1.0
    (Gsim.Funcsim.requests_per_warp fs Dataflow.Classify.Deterministic)

let test_cyclesim_saxpy () =
  let launch = make_launch () in
  let gpu = Gsim.Gpu.run launch in
  let st = gpu.Gsim.Gpu.stats in
  Alcotest.(check bool) "results correct" true (check_result launch.Gsim.Launch.global);
  Alcotest.(check int) "all CTAs completed" (n_elems / 128)
    st.Gsim.Stats.completed_ctas;
  Alcotest.(check bool) "simulated some cycles" true (st.Gsim.Stats.cycles > 0);
  Alcotest.(check bool) "warp instructions issued" true
    (st.Gsim.Stats.warp_insts > 0)

let test_cyclesim_gather () =
  (* y[i] = x[idx[i]] with a scrambled index array: the x load is
     non-deterministic and should generate multiple requests/warp. *)
  let b =
    B.create ~name:"gather" ~params:[ u64 "idx"; u64 "x"; u64 "y"; u32 "n" ] ()
  in
  let ip = B.ld_param b "idx" in
  let xp = B.ld_param b "x" in
  let yp = B.ld_param b "y" in
  let n = B.ld_param b "n" in
  let i = B.global_tid b in
  let p = B.setp b Lt i n in
  B.if_ b p (fun () ->
      let idx = B.ld b Global U32 (B.at b ~base:ip ~scale:4 i) in
      let v = B.ld b Global F32 (B.at b ~base:xp ~scale:4 idx) in
      B.st b Global F32 (B.at b ~base:yp ~scale:4 i) v);
  let kernel = B.finish b in
  let n_elems = 65536 in
  (* the gather range is 2M elements (8MB) so non-deterministic loads
     stress DRAM rather than hitting in the 768KB L2 *)
  let x_range = 2 * 1024 * 1024 in
  let global = Gsim.Mem.create (16 * 1024 * 1024) in
  let idx_base = 0 and x_base = 4 * n_elems in
  let y_base = x_base + (4 * x_range) in
  (* scrambled permutation: i * 9973 mod n spreads a warp across lines *)
  for i = 0 to n_elems - 1 do
    Gsim.Mem.set_u32 global (idx_base + (4 * i)) (i * 9973 mod x_range)
  done;
  for i = 0 to x_range - 1 do
    Gsim.Mem.set_f32 global (x_base + (4 * i)) (float_of_int (i land 1023))
  done;
  let launch =
    Gsim.Launch.create ~kernel
      ~grid:(n_elems / 256, 1, 1)
      ~block:(256, 1, 1)
      ~params:
        [ ("idx", Int64.of_int idx_base); ("x", Int64.of_int x_base);
          ("y", Int64.of_int y_base); ("n", Int64.of_int n_elems) ]
      ~global
  in
  let gpu = Gsim.Gpu.run launch in
  let st = gpu.Gsim.Gpu.stats in
  (* functional correctness *)
  let ok = ref true in
  for i = 0 to n_elems - 1 do
    let expect = float_of_int (i * 9973 mod x_range land 1023) in
    if Gsim.Mem.get_f32 global (y_base + (4 * i)) <> expect then ok := false
  done;
  Alcotest.(check bool) "gather results correct" true !ok;
  let rpw_n =
    Gsim.Stats.requests_per_warp st Dataflow.Classify.Nondeterministic
  in
  let rpw_d =
    Gsim.Stats.requests_per_warp st Dataflow.Classify.Deterministic
  in
  Alcotest.(check bool)
    (Printf.sprintf "N loads generate more requests/warp (N=%.2f D=%.2f)"
       rpw_n rpw_d)
    true (rpw_n > rpw_d +. 1.0);
  Alcotest.(check bool) "N turnaround exceeds D turnaround" true
    (Gsim.Stats.avg_turnaround st Dataflow.Classify.Nondeterministic
     > Gsim.Stats.avg_turnaround st Dataflow.Classify.Deterministic)

let tests =
  [
    Alcotest.test_case "funcsim saxpy" `Quick test_funcsim_saxpy;
    Alcotest.test_case "cycle sim saxpy" `Quick test_cyclesim_saxpy;
    Alcotest.test_case "cycle sim gather (N vs D)" `Quick test_cyclesim_gather;
  ]

let () = Alcotest.run "gsim_smoke" [ ("smoke", tests) ]
