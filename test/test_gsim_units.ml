(* Unit tests for the GPU-simulator components: cache + MSHR outcomes,
   coalescer, interconnect, memory partition, and warp-level SIMT
   divergence semantics. *)

open Ptx.Types
module B = Ptx.Builder

let mk_req ?(sm = 0) ?(kind = Gsim.Request.Load) ?(cta = -1) line =
  Gsim.Request.make ~cta ~line_addr:line ~sm_id:sm ~kind
    ~cls:Dataflow.Classify.Deterministic ~wl:None ~now:0

let outcome =
  Alcotest.testable
    (fun ppf o ->
      Format.pp_print_string ppf
        (match o with
        | Gsim.Cache.Hit -> "Hit"
        | Gsim.Cache.Hit_reserved -> "Hit_reserved"
        | Gsim.Cache.Miss -> "Miss"
        | Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_tags -> "Fail_tags"
        | Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr -> "Fail_mshr"
        | Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_icnt -> "Fail_icnt"))
    ( = )

(* ---------------- cache + MSHR ---------------- *)

let small_cache ?(mshr = 4) ?(merge = 2) () =
  Gsim.Cache.create ~sets:2 ~ways:2 ~line_size:128 ~mshr_entries:mshr
    ~mshr_max_merge:merge

let test_cache_miss_then_hit () =
  let c = small_cache () in
  Alcotest.check outcome "first access misses" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  Alcotest.check outcome "in-flight access merges" Gsim.Cache.Hit_reserved
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  let waiters = Gsim.Cache.fill c ~line_addr:0 in
  Alcotest.(check int) "two waiters released" 2 (List.length waiters);
  Alcotest.check outcome "after fill it hits" Gsim.Cache.Hit
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true)

let test_cache_merge_limit () =
  let c = small_cache ~merge:2 () in
  ignore (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  Alcotest.check outcome "merge 2" Gsim.Cache.Hit_reserved
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  Alcotest.check outcome "merge capacity exhausted"
    (Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr)
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true)

let test_cache_tag_reservation_fail () =
  let c = small_cache ~mshr:16 () in
  (* set 0 holds lines 0 and 512 (2 sets * 128B); both ways reserved *)
  Alcotest.check outcome "miss 1" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  Alcotest.check outcome "miss 2" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 512) ~icnt_ok:true);
  Alcotest.check outcome "set full of reserved lines"
    (Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_tags)
    (Gsim.Cache.access_load c ~req:(mk_req 1024) ~icnt_ok:true);
  (* the other set is unaffected *)
  Alcotest.check outcome "other set misses normally" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 128) ~icnt_ok:true)

let test_cache_mshr_exhaustion () =
  let c = small_cache ~mshr:1 () in
  Alcotest.check outcome "miss reserves the single mshr" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  Alcotest.check outcome "no mshr left (different set)"
    (Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr)
    (Gsim.Cache.access_load c ~req:(mk_req 128) ~icnt_ok:true)

let test_cache_icnt_fail () =
  let c = small_cache () in
  Alcotest.check outcome "icnt full blocks the miss"
    (Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_icnt)
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:false);
  (* no state was reserved: a retry with space succeeds *)
  Alcotest.check outcome "retry succeeds" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true)

let test_cache_lru_eviction () =
  let c = small_cache () in
  let touch line =
    (match Gsim.Cache.access_load c ~req:(mk_req line) ~icnt_ok:true with
    | Gsim.Cache.Miss -> ignore (Gsim.Cache.fill c ~line_addr:line)
    | _ -> ())
  in
  touch 0;
  touch 512;
  (* set 0 now holds {0, 512}; touching 0 makes 512 the LRU *)
  touch 0;
  touch 1024;
  (* 512 must have been evicted, 0 retained *)
  Alcotest.check outcome "retained MRU line" Gsim.Cache.Hit
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  Alcotest.check outcome "evicted LRU line" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 512) ~icnt_ok:true)

let test_cache_invalidate_and_write_allocate () =
  let c = small_cache () in
  ignore (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  ignore (Gsim.Cache.fill c ~line_addr:0);
  Gsim.Cache.invalidate c ~line_addr:0;
  Alcotest.check outcome "invalidated line misses" Gsim.Cache.Miss
    (Gsim.Cache.access_load c ~req:(mk_req 0) ~icnt_ok:true);
  Alcotest.(check bool) "write allocate succeeds" true
    (Gsim.Cache.write_allocate c ~line_addr:128);
  Alcotest.check outcome "write-allocated line hits" Gsim.Cache.Hit
    (Gsim.Cache.access_load c ~req:(mk_req 128) ~icnt_ok:true)

(* ---------------- coalescer ---------------- *)

let test_coalesce_fully_coalesced () =
  let addrs = Array.init 32 (fun i -> 4 * i) in
  Alcotest.(check int) "one line" 1
    (Gsim.Coalesce.count ~line_size:128 ~mask:0xFFFFFFFF ~addrs)

let test_coalesce_strided () =
  let addrs = Array.init 32 (fun i -> 128 * i) in
  Alcotest.(check int) "32 lines" 32
    (Gsim.Coalesce.count ~line_size:128 ~mask:0xFFFFFFFF ~addrs)

let test_coalesce_respects_mask () =
  let addrs = Array.init 32 (fun i -> 128 * i) in
  Alcotest.(check int) "only active lanes counted" 2
    (Gsim.Coalesce.count ~line_size:128 ~mask:0b101 ~addrs)

let test_coalesce_split () =
  let addrs = Array.init 32 (fun i -> 128 * i) in
  let groups =
    Gsim.Coalesce.split_lines ~line_size:128 ~width:8 ~mask:0xFFFFFFFF ~addrs
  in
  Alcotest.(check int) "4 sub-warps" 4 (List.length groups);
  Alcotest.(check int) "8 lines each" 8 (List.length (List.hd groups))

let prop_coalesce_split_preserves_lines =
  QCheck.Test.make ~count:200
    ~name:"warp splitting preserves the set of touched lines"
    QCheck.(
      pair (int_bound 0xFFFF)
        (array_of_size (QCheck.Gen.return 32) (int_bound 100_000)))
    (fun (mask, addrs) ->
      let full =
        Gsim.Coalesce.lines ~line_size:128 ~mask ~addrs
        |> List.sort_uniq compare
      in
      let split =
        Gsim.Coalesce.split_lines ~line_size:128 ~width:8 ~mask ~addrs
        |> List.concat
        |> List.sort_uniq compare
      in
      (* split may repeat lines across sub-warps but must cover the
         same set *)
      List.for_all (fun l -> List.mem l split) full
      && List.for_all (fun l -> List.mem l full) split)

let prop_coalesce_count_bounds =
  QCheck.Test.make ~count:200 ~name:"coalesced request count bounds"
    QCheck.(
      pair (int_bound 0xFFFFFFFF)
        (array_of_size (QCheck.Gen.return 32) (int_bound 1_000_000)))
    (fun (mask, addrs) ->
      let n = Gsim.Coalesce.count ~line_size:128 ~mask ~addrs in
      let active = Gsim.Warp.popcount mask in
      if active = 0 then n = 0 else n >= 1 && n <= active)

(* ---------------- interconnect ---------------- *)

let test_icnt_credits_and_latency () =
  let cfg = Gsim.Config.default |> Gsim.Config.with_icnt_width 2 in
  let icnt = Gsim.Icnt.create cfg in
  Alcotest.(check bool) "can inject" true (Gsim.Icnt.can_inject icnt ~sm:0);
  let r1 = mk_req 0 in
  let r2 = mk_req 128 in
  Gsim.Icnt.inject_request icnt ~now:0 r1;
  Gsim.Icnt.inject_request icnt ~now:0 r2;
  Alcotest.(check bool) "buffer full" false (Gsim.Icnt.can_inject icnt ~sm:0);
  let part0 = Gsim.Icnt.partition_of cfg ~sm:0 0 in
  (* nothing arrives before the latency *)
  Alcotest.(check bool) "not arrived yet" true
    (Gsim.Icnt.pop_request icnt ~now:1 ~part:part0 = None);
  (* after the latency the request pops and the credit returns *)
  let popped =
    Gsim.Icnt.pop_request icnt ~now:cfg.Gsim.Config.icnt_latency ~part:part0
  in
  Alcotest.(check bool) "arrived" true (popped <> None);
  Alcotest.(check bool) "credit returned" true
    (Gsim.Icnt.can_inject icnt ~sm:0)

let test_icnt_response_path () =
  let cfg = Gsim.Config.default in
  let icnt = Gsim.Icnt.create cfg in
  let r = mk_req ~sm:3 0 in
  Gsim.Icnt.inject_response icnt ~now:10 r;
  Alcotest.(check bool) "wrong sm sees nothing" true
    (Gsim.Icnt.pop_response icnt ~now:100 ~sm:0 = None);
  Alcotest.(check bool) "response arrives for its SM" true
    (Gsim.Icnt.pop_response icnt ~now:(10 + cfg.Gsim.Config.icnt_latency)
       ~sm:3
    <> None)

let test_l2_cluster_partitioning () =
  (* with l2_cluster on, SMs in different clusters use disjoint
     partition subsets for the same address *)
  let cfg = Gsim.Config.default |> Gsim.Config.with_l2_cluster 7 in
  let p0 = Gsim.Icnt.partition_of cfg ~sm:0 0 in
  let p1 = Gsim.Icnt.partition_of cfg ~sm:13 0 in
  Alcotest.(check bool) "clusters map to different partitions" true (p0 <> p1);
  (* without clustering the partition is SM-independent *)
  let cfg0 = Gsim.Config.default in
  Alcotest.(check int) "global L2 ignores sm"
    (Gsim.Icnt.partition_of cfg0 ~sm:0 1280)
    (Gsim.Icnt.partition_of cfg0 ~sm:9 1280)

(* ---------------- memory partition ---------------- *)

let test_l2part_services_load () =
  let cfg = Gsim.Config.default in
  let stats = Gsim.Stats.create () in
  let icnt = Gsim.Icnt.create cfg in
  let part = Gsim.L2part.create cfg ~id:0 ~stats in
  let line = 0 in
  let r = mk_req line in
  Alcotest.(check int) "request routed to partition 0" 0
    (Gsim.Icnt.partition_of cfg ~sm:0 line);
  Gsim.Icnt.inject_request icnt ~now:0 r;
  (* run the partition forward until the response arrives *)
  let response = ref None in
  let t = ref 0 in
  while !response = None && !t < 1000 do
    Gsim.L2part.cycle part ~now:!t ~icnt;
    response := Gsim.Icnt.pop_response icnt ~now:!t ~sm:0;
    incr t
  done;
  (match !response with
  | None -> Alcotest.fail "no response within 1000 cycles"
  | Some resp ->
      Alcotest.(check bool) "serviced by DRAM" true
        (resp.Gsim.Request.level = Gsim.Request.Lvl_dram);
      Alcotest.(check bool) "timestamps ordered" true
        (resp.Gsim.Request.t_icnt <= resp.Gsim.Request.t_arrive
        && resp.Gsim.Request.t_arrive <= resp.Gsim.Request.t_l2_start
        && resp.Gsim.Request.t_l2_start < resp.Gsim.Request.t_serviced));
  (* a second access to the same line is an L2 hit *)
  let r2 = mk_req line in
  Gsim.Icnt.inject_request icnt ~now:!t r2;
  let response2 = ref None in
  let t2 = ref !t in
  while !response2 = None && !t2 < !t + 1000 do
    Gsim.L2part.cycle part ~now:!t2 ~icnt;
    response2 := Gsim.Icnt.pop_response icnt ~now:!t2 ~sm:0;
    incr t2
  done;
  match !response2 with
  | None -> Alcotest.fail "no second response"
  | Some resp ->
      Alcotest.(check bool) "second access is an L2 hit" true
        (resp.Gsim.Request.level = Gsim.Request.Lvl_l2)

(* ---------------- warp divergence semantics ---------------- *)

(* Execute a kernel twice: once with 32-wide warps, once with 1-wide
   warps (scalar reference).  For race-free kernels the final memory
   must be identical. *)
let run_with_warp_size kernel ~n_threads ~setup warp_size =
  let global = Gsim.Mem.create (1 lsl 16) in
  setup global;
  let launch =
    Gsim.Launch.create ~kernel
      ~grid:(n_threads / 32, 1, 1)
      ~block:(32, 1, 1)
      ~params:[ ("a", 0L); ("n", Int64.of_int n_threads) ]
      ~global
  in
  let cfg = Gsim.Config.default |> Gsim.Config.with_warp_size warp_size in
  ignore (Gsim.Funcsim.run ~cfg launch);
  global

let divergent_kernel () =
  (* per-thread data-dependent loop plus nested ifs *)
  let b = B.create ~name:"div" ~params:[ Workloads.Kutil.u64 "a"; Workloads.Kutil.u32 "n" ] () in
  let ap = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let tid = B.global_tid b in
  let pin = B.setp b Lt tid n in
  B.if_ b pin (fun () ->
      let x = B.ld b Global U32 (B.at b ~base:ap ~scale:4 tid) in
      let acc = B.fresh_reg b in
      B.emit b (Ptx.Instr.Mov (acc, Imm 0L));
      (* trip count = x mod 7, different per thread *)
      let trips = B.rem b x (B.int 7) in
      B.for_loop b ~init:(B.int 0) ~bound:trips ~step:(B.int 1) (fun i ->
          let podd = B.setp b Eq (B.band b i (B.int 1)) (B.int 1) in
          B.if_ b podd (fun () ->
              B.emit b (Ptx.Instr.Iop (Add, acc, Reg acc, B.int 3)));
          B.if_not b podd (fun () ->
              B.emit b (Ptx.Instr.Iop (Add, acc, Reg acc, B.int 5))));
      B.st b Global U32 (B.at b ~base:ap ~scale:4 tid) (Reg acc));
  B.finish b

let test_divergence_vs_scalar () =
  let kernel = divergent_kernel () in
  let n = 128 in
  let setup g =
    for i = 0 to n - 1 do
      Gsim.Mem.set_u32 g (4 * i) (i * 2654435761 land 0xFFFF)
    done
  in
  let m32 = run_with_warp_size kernel ~n_threads:n ~setup 32 in
  let m1 = run_with_warp_size kernel ~n_threads:n ~setup 1 in
  let same = ref true in
  for i = 0 to n - 1 do
    if Gsim.Mem.get_u32 m32 (4 * i) <> Gsim.Mem.get_u32 m1 (4 * i) then
      same := false
  done;
  Alcotest.(check bool) "warp-of-32 matches scalar execution" true !same

let prop_divergence_random_inputs =
  QCheck.Test.make ~count:25
    ~name:"divergent kernel: warp-of-32 equals scalar (random inputs)"
    QCheck.(array_of_size (QCheck.Gen.return 64) (int_bound 0xFFFF))
    (fun inputs ->
      let kernel = divergent_kernel () in
      let setup g =
        Array.iteri (fun i v -> Gsim.Mem.set_u32 g (4 * i) v) inputs
      in
      let m32 = run_with_warp_size kernel ~n_threads:64 ~setup 32 in
      let m1 = run_with_warp_size kernel ~n_threads:64 ~setup 1 in
      let same = ref true in
      for i = 0 to 63 do
        if Gsim.Mem.get_u32 m32 (4 * i) <> Gsim.Mem.get_u32 m1 (4 * i) then
          same := false
      done;
      !same)

let test_exit_divergence () =
  (* threads exit at different points; remaining lanes must continue *)
  let b = B.create ~name:"exits" ~params:[ Workloads.Kutil.u64 "a"; Workloads.Kutil.u32 "n" ] () in
  let ap = B.ld_param b "a" in
  let _n = B.ld_param b "n" in
  let tid = B.global_tid b in
  let plow = B.setp b Lt tid (B.int 16) in
  let skip = B.fresh_label b "CONT" in
  B.bra_ifnot b plow skip;
  B.emit b Ptx.Instr.Exit;
  B.label b skip;
  B.st b Global U32 (B.at b ~base:ap ~scale:4 tid) (B.int 7);
  let kernel = B.finish b in
  let global = Gsim.Mem.create 4096 in
  let launch =
    Gsim.Launch.create ~kernel ~grid:(1, 1, 1) ~block:(32, 1, 1)
      ~params:[ ("a", 0L); ("n", 32L) ]
      ~global
  in
  ignore (Gsim.Funcsim.run launch);
  Alcotest.(check int) "early-exit lane wrote nothing" 0
    (Gsim.Mem.get_u32 global (4 * 3));
  Alcotest.(check int) "surviving lane wrote" 7
    (Gsim.Mem.get_u32 global (4 * 20))

(* ---------------- SM slot management ---------------- *)

let mini_launch () =
  let b = B.create ~name:"noop" ~params:[ Workloads.Kutil.u32 "n" ] () in
  let _ = B.ld_param b "n" in
  let kernel = B.finish b in
  Gsim.Launch.create ~kernel ~grid:(4, 1, 1) ~block:(64, 1, 1)
    ~params:[ ("n", 0L) ]
    ~global:(Gsim.Mem.create 256)

let test_sm_slot_packing () =
  let cfg = Gsim.Config.default in
  let stats = Gsim.Stats.create () in
  let sm = Gsim.Sm.create cfg ~id:0 ~stats ~warp_slots:4 in
  let launch = mini_launch () in
  (* each CTA is 2 warps: two fit, the third does not *)
  Alcotest.(check bool) "cta 0 fits" true (Gsim.Sm.try_launch sm launch ~cta_lin:0);
  Alcotest.(check int) "2 slots left" 2 (Gsim.Sm.free_slots sm);
  Alcotest.(check bool) "cta 1 fits" true (Gsim.Sm.try_launch sm launch ~cta_lin:1);
  Alcotest.(check bool) "cta 2 rejected" false
    (Gsim.Sm.try_launch sm launch ~cta_lin:2);
  Alcotest.(check bool) "sm busy" false (Gsim.Sm.idle sm)

let test_sm_reconfigure_empty () =
  let cfg = Gsim.Config.default in
  let stats = Gsim.Stats.create () in
  let sm = Gsim.Sm.create cfg ~id:0 ~stats ~warp_slots:4 in
  Gsim.Sm.reconfigure sm ~warp_slots:8 ~warps_per_cta:2;
  Alcotest.(check int) "resized" 8 (Gsim.Sm.free_slots sm)

(* ---------------- determinism ---------------- *)

(* identical launches on fresh machines produce identical statistics *)
let test_cycle_sim_deterministic () =
  let run () =
    let app = Workloads.Suite.find "mis" in
    let r = app.Workloads.App.make Workloads.App.Small in
    let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:20_000 () in
    let machine = Gsim.Gpu.create_machine ~cfg () in
    let continue_ = ref true in
    while !continue_ do
      match r.Workloads.App.next_launch () with
      | None -> continue_ := false
      | Some l -> if not (Gsim.Gpu.run_launch machine l) then continue_ := false
    done;
    let s = machine.Gsim.Gpu.stats in
    (s.Gsim.Stats.cycles, s.Gsim.Stats.warp_insts,
     Array.to_list s.Gsim.Stats.l1_events,
     s.Gsim.Stats.per_class.(1).Gsim.Stats.cs_turnaround)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two runs identical" true (a = b)

(* ---------------- dot exports ---------------- *)

let test_dot_exports () =
  let b = B.create ~name:"dotk" ~params:[ Workloads.Kutil.u64 "a" ] () in
  let a = B.ld_param b "a" in
  let p = B.setp b Lt B.tid_x (B.int 4) in
  B.if_ b p (fun () ->
      let v = B.ld b Global U32 (B.addr a) in
      B.st b Global U32 (B.addr a) v);
  let k = B.finish b in
  let cfg = Ptx.Cfg.build k in
  let dot = Ptx.Cfg.to_dot cfg in
  Alcotest.(check bool) "cfg dot has digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "cfg dot has edges" true
    (List.exists
       (fun line -> String.length line > 4 && String.sub line 2 1 = "B")
       (String.split_on_char '\n' dot));
  let r = Dataflow.Reaching.compute k cfg in
  let dg = Dataflow.Depgraph.build k r in
  let ddot = Dataflow.Depgraph.to_dot dg in
  Alcotest.(check bool) "deps dot highlights the load" true
    (let rec contains s sub i =
       if i + String.length sub > String.length s then false
       else if String.sub s i (String.length sub) = sub then true
       else contains s sub (i + 1)
     in
     contains ddot "lightcoral" 0)

let tests =
  [
    Alcotest.test_case "sm: slot packing" `Quick test_sm_slot_packing;
    Alcotest.test_case "sm: reconfigure" `Quick test_sm_reconfigure_empty;
    Alcotest.test_case "cycle sim determinism" `Quick
      test_cycle_sim_deterministic;
    Alcotest.test_case "dot exports" `Quick test_dot_exports;
    Alcotest.test_case "cache: miss/merge/fill/hit" `Quick
      test_cache_miss_then_hit;
    Alcotest.test_case "cache: merge limit" `Quick test_cache_merge_limit;
    Alcotest.test_case "cache: tag reservation fail" `Quick
      test_cache_tag_reservation_fail;
    Alcotest.test_case "cache: mshr exhaustion" `Quick
      test_cache_mshr_exhaustion;
    Alcotest.test_case "cache: icnt fail leaves no state" `Quick
      test_cache_icnt_fail;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache: invalidate + write allocate" `Quick
      test_cache_invalidate_and_write_allocate;
    Alcotest.test_case "coalesce: fully coalesced" `Quick
      test_coalesce_fully_coalesced;
    Alcotest.test_case "coalesce: strided worst case" `Quick
      test_coalesce_strided;
    Alcotest.test_case "coalesce: mask respected" `Quick
      test_coalesce_respects_mask;
    Alcotest.test_case "coalesce: warp splitting" `Quick test_coalesce_split;
    QCheck_alcotest.to_alcotest prop_coalesce_split_preserves_lines;
    QCheck_alcotest.to_alcotest prop_coalesce_count_bounds;
    Alcotest.test_case "icnt: credits and latency" `Quick
      test_icnt_credits_and_latency;
    Alcotest.test_case "icnt: response path" `Quick test_icnt_response_path;
    Alcotest.test_case "icnt: semi-global L2 routing" `Quick
      test_l2_cluster_partitioning;
    Alcotest.test_case "l2 partition: dram then l2 hit" `Quick
      test_l2part_services_load;
    Alcotest.test_case "warp: divergence vs scalar" `Quick
      test_divergence_vs_scalar;
    QCheck_alcotest.to_alcotest prop_divergence_random_inputs;
    Alcotest.test_case "warp: divergent exits" `Quick test_exit_divergence;
  ]

let () = Alcotest.run "gsim_units" [ ("units", tests) ]
