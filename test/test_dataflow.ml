(* Tests for the dataflow library: reaching definitions, dependence
   graph, liveness, and the load classifier on hand-built kernels. *)

open Ptx.Types
module B = Ptx.Builder

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }

(* The paper's Code 1: bfs-style kernel.
   tid = ctaid.x*ntid.x + tid.x
   mask = g_mask[tid]            <- deterministic
   start = g_nodes[tid]          <- deterministic
   id = g_edges[start]           <- non-deterministic (start loaded)
   v = g_visited[id]             <- non-deterministic (id loaded) *)
let bfs_like () =
  let b =
    B.create ~name:"bfs_like"
      ~params:[ u64 "g_mask"; u64 "g_nodes"; u64 "g_edges"; u64 "g_visited"; u32 "n" ]
      ()
  in
  let mask_p = B.ld_param b "g_mask" in
  let nodes_p = B.ld_param b "g_nodes" in
  let edges_p = B.ld_param b "g_edges" in
  let visited_p = B.ld_param b "g_visited" in
  let n = B.ld_param b "n" in
  let tid = B.global_tid b in
  let in_range = B.setp b Lt tid n in
  B.if_ b in_range (fun () ->
      let mask = B.ld b Global U32 (B.at b ~base:mask_p ~scale:4 tid) in
      let active = B.setp b Ne mask (B.int 0) in
      B.if_ b active (fun () ->
          let start = B.ld b Global U32 (B.at b ~base:nodes_p ~scale:4 tid) in
          let id = B.ld b Global U32 (B.at b ~base:edges_p ~scale:4 start) in
          let v = B.ld b Global U32 (B.at b ~base:visited_p ~scale:4 id) in
          B.st b Global U32 (B.at b ~base:mask_p ~scale:4 tid) v));
  B.finish b

let classes kernel =
  let res = Dataflow.Classify.classify kernel in
  List.map
    (fun (li : Dataflow.Classify.load_info) -> (li.li_space, li.li_class))
    (Dataflow.Classify.global_loads res)

let test_bfs_classification () =
  let k = bfs_like () in
  let res = Dataflow.Classify.classify k in
  let d, n = Dataflow.Classify.count_global res in
  Alcotest.(check int) "deterministic global loads" 2 d;
  Alcotest.(check int) "non-deterministic global loads" 2 n;
  (* order: mask (D), nodes (D), edges (N), visited (N) *)
  let cls = List.map snd (classes k) in
  Alcotest.(check (list string))
    "per-load classes"
    [ "D"; "D"; "N"; "N" ]
    (List.map Dataflow.Classify.short_class cls)

(* Address from pure arithmetic on tid/param -> deterministic, even with
   a loop-carried counter. *)
let test_loop_deterministic () =
  let b = B.create ~name:"loop_det" ~params:[ u64 "a"; u32 "n" ] () in
  let a = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let tid = B.global_tid b in
  let acc = B.fresh_reg b in
  B.emit b (Ptx.Instr.Mov (acc, B.int 0));
  B.for_loop b ~init:tid ~bound:n ~step:(B.int 32) (fun i ->
      let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 i) in
      B.emit b (Ptx.Instr.Fop (Fadd, F32, acc, Reg acc, v)));
  B.st b Global F32 (B.at b ~base:a ~scale:4 tid) (Reg acc);
  let k = B.finish b in
  let res = Dataflow.Classify.classify k in
  let d, n = Dataflow.Classify.count_global res in
  Alcotest.(check int) "deterministic" 1 d;
  Alcotest.(check int) "non-deterministic" 0 n

(* Pointer chasing: address fed by the loop-carried loaded value ->
   non-deterministic. *)
let test_pointer_chase () =
  let b = B.create ~name:"chase" ~params:[ u64 "a"; u32 "n" ] () in
  let a = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let cur = B.fresh_reg b in
  B.emit b (Ptx.Instr.Mov (cur, B.tid_x));
  B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun _ ->
      let next = B.ld b Global U32 (B.at b ~base:a ~scale:4 (Reg cur)) in
      B.emit b (Ptx.Instr.Mov (cur, next)));
  B.st b Global U32 (B.addr a) (Reg cur);
  let k = B.finish b in
  let res = Dataflow.Classify.classify k in
  let d, n = Dataflow.Classify.count_global res in
  (* first iteration reads a[tid] but the same pc later reads a[loaded]:
     static classification must be non-deterministic *)
  Alcotest.(check int) "deterministic" 0 d;
  Alcotest.(check int) "non-deterministic" 1 n

(* Shared-memory loads classified but not counted as global. *)
let test_shared_not_global () =
  let b = B.create ~name:"sh" ~params:[ u64 "a" ] ~smem_bytes:1024 () in
  let a = B.ld_param b "a" in
  let tid = B.mov b B.tid_x in
  let s = B.ld b Shared U32 (B.at b ~base:(B.int 0) ~scale:4 tid) in
  let g = B.ld b Global U32 (B.at b ~base:a ~scale:4 s) in
  B.st b Global U32 (B.addr a) g;
  let k = B.finish b in
  let res = Dataflow.Classify.classify k in
  let d, n = Dataflow.Classify.count_global res in
  Alcotest.(check int) "one global load" 1 (d + n);
  Alcotest.(check int) "it is non-deterministic (indexed by shared load)" 1 n;
  Alcotest.(check int) "classified loads include shared" 2
    (List.length res.Dataflow.Classify.res_loads)

(* selp: value operands traced; choosing between two params stays D. *)
let test_selp_deterministic () =
  let b = B.create ~name:"selp_det" ~params:[ u64 "a"; u64 "bp" ] () in
  let a = B.ld_param b "a" in
  let b2 = B.ld_param b "bp" in
  let p = B.setp b Lt B.tid_x (B.int 16) in
  let base = B.selp b a b2 p in
  let v = B.ld b Global U32 (B.at b ~base ~scale:4 B.tid_x) in
  B.st b Global U32 (B.addr a) v;
  let k = B.finish b in
  let d, n = Dataflow.Classify.count_global (Dataflow.Classify.classify k) in
  Alcotest.(check (pair int int)) "selp of params is D" (1, 0) (d, n)

(* setp comparing against a loaded value taints selp through the
   predicate operand. *)
let test_selp_tainted_predicate () =
  let b = B.create ~name:"selp_n" ~params:[ u64 "a"; u64 "bp" ] () in
  let a = B.ld_param b "a" in
  let b2 = B.ld_param b "bp" in
  let x = B.ld b Global U32 (B.addr a) in
  let p = B.setp b Lt x (B.int 16) in
  let base = B.selp b a b2 p in
  let v = B.ld b Global U32 (B.at b ~base ~scale:4 B.tid_x) in
  B.st b Global U32 (B.addr a) v;
  let k = B.finish b in
  let d, n = Dataflow.Classify.count_global (Dataflow.Classify.classify k) in
  Alcotest.(check (pair int int)) "selp w/ tainted pred" (1, 1) (d, n)

let test_backward_slice () =
  let k = bfs_like () in
  let cfg = Ptx.Cfg.build k in
  let r = Dataflow.Reaching.compute k cfg in
  let dg = Dataflow.Depgraph.build k r in
  let last_ld =
    List.rev (Ptx.Kernel.global_load_pcs k) |> List.hd
  in
  let slice = Dataflow.Depgraph.backward_slice dg [ last_ld ] in
  Alcotest.(check bool) "slice contains the load" true (List.mem last_ld slice);
  Alcotest.(check bool) "slice is non-trivial" true (List.length slice > 4);
  List.iter
    (fun pc -> Alcotest.(check bool) "slice pcs <= load pc" true (pc <= last_ld))
    slice

let test_liveness () =
  let k = bfs_like () in
  let cfg = Ptx.Cfg.build k in
  let lv = Dataflow.Liveness.compute k cfg in
  Alcotest.(check bool) "positive register pressure" true
    (Dataflow.Liveness.max_pressure lv > 0);
  (* the first instruction's defined register must be live somewhere *)
  let first_def = List.hd (Ptx.Instr.defs k.Ptx.Kernel.body.(0)) in
  let live_anywhere =
    Array.exists (fun _ -> true) k.Ptx.Kernel.body
    && List.exists
         (fun pc -> Dataflow.Liveness.live_in_reg lv ~pc ~reg:first_def)
         (List.init (Array.length k.Ptx.Kernel.body) Fun.id)
  in
  Alcotest.(check bool) "param register live" true live_anywhere


(* ---------- reaching definitions precision ---------- *)

(* r0 defined twice in sequence: only the latest def reaches the use. *)
let test_reaching_kill () =
  let body =
    [| Ptx.Instr.Mov (0, Imm 1L) (* 0 *);
       Ptx.Instr.Mov (0, Imm 2L) (* 1 *);
       Ptx.Instr.Iop (Add, 1, Reg 0, Imm 0L) (* 2 *);
       Ptx.Instr.Exit
    |]
  in
  let k =
    Ptx.Kernel.validate
      (Ptx.Kernel.create ~name:"kill" ~params:[] ~nregs:2 ~npregs:1
         ~smem_bytes:0 body)
  in
  let cfg = Ptx.Cfg.build k in
  let r = Dataflow.Reaching.compute k cfg in
  Alcotest.(check (list int)) "only the second def reaches" [ 1 ]
    (Dataflow.Reaching.defs_reaching_reg r ~pc:2 ~reg:0)

(* both arms of a diamond define r0: both defs reach the join use. *)
let test_reaching_join () =
  let body =
    [| Ptx.Instr.Setp (Lt, S32, 0, Sreg (Tid X), Imm 4L) (* 0 *);
       Ptx.Instr.Bra (Some (true, 0), "T") (* 1 *);
       Ptx.Instr.Mov (0, Imm 1L) (* 2 *);
       Ptx.Instr.Bra (None, "J") (* 3 *);
       Ptx.Instr.Label "T" (* 4 *);
       Ptx.Instr.Mov (0, Imm 2L) (* 5 *);
       Ptx.Instr.Label "J" (* 6 *);
       Ptx.Instr.Iop (Add, 1, Reg 0, Imm 0L) (* 7 *);
       Ptx.Instr.Exit
    |]
  in
  let k =
    Ptx.Kernel.validate
      (Ptx.Kernel.create ~name:"join" ~params:[] ~nregs:2 ~npregs:1
         ~smem_bytes:0 body)
  in
  let cfg = Ptx.Cfg.build k in
  let r = Dataflow.Reaching.compute k cfg in
  Alcotest.(check (list int)) "both arm defs reach the join" [ 2; 5 ]
    (List.sort compare (Dataflow.Reaching.defs_reaching_reg r ~pc:7 ~reg:0))

(* A loop-carried definition reaches the loop body from both the
   initialization and the back edge. *)
let test_reaching_loop_carried () =
  let b = B.create ~name:"loopr" ~params:[ u32 "n" ] () in
  let n = B.ld_param b "n" in
  let acc = B.fresh_reg b in
  B.emit b (Ptx.Instr.Mov (acc, Imm 0L));
  B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun _ ->
      B.emit b (Ptx.Instr.Iop (Add, acc, Reg acc, Imm 1L)));
  let k = B.finish b in
  let cfg = Ptx.Cfg.build k in
  let r = Dataflow.Reaching.compute k cfg in
  (* find the Add instruction using acc *)
  (* first matching add is the accumulator's (the loop counter's own
     increment comes later in the body) *)
  let use_pc = ref (-1) in
  Array.iteri
    (fun pc i ->
      match i with
      | Ptx.Instr.Iop (Add, d, Reg s, Imm 1L) when d = s && d = acc && !use_pc < 0 ->
          use_pc := pc
      | _ -> ())
    k.Ptx.Kernel.body;
  let defs = Dataflow.Reaching.defs_reaching_reg r ~pc:!use_pc ~reg:acc in
  Alcotest.(check int) "init + loop-carried defs reach the body" 2
    (List.length defs)

(* ---------- classifier provenance ---------- *)

let test_leaf_provenance () =
  let k = bfs_like () in
  let res = Dataflow.Classify.classify k in
  let loads = Dataflow.Classify.global_loads res in
  let has_leaf li l = List.mem l li.Dataflow.Classify.li_leaves in
  (match loads with
  | det :: _ ->
      Alcotest.(check bool) "deterministic load sees param leaf" true
        (has_leaf det Dataflow.Classify.Leaf_param);
      Alcotest.(check bool) "deterministic load sees sreg leaf" true
        (has_leaf det Dataflow.Classify.Leaf_sreg);
      Alcotest.(check bool) "no load leaf" false
        (List.exists
           (function Dataflow.Classify.Leaf_load _ -> true | _ -> false)
           det.Dataflow.Classify.li_leaves)
  | [] -> Alcotest.fail "no loads");
  match List.rev loads with
  | nd :: _ ->
      Alcotest.(check bool) "non-deterministic load sees ld.global leaf" true
        (has_leaf nd (Dataflow.Classify.Leaf_load Global));
      Alcotest.(check bool) "slice is non-trivial" true
        (nd.Dataflow.Classify.li_slice_size > 0)
  | [] -> Alcotest.fail "no loads"

(* address taken directly from a special register (no defs at all) *)
let test_direct_sreg_address () =
  let b = B.create ~name:"sregaddr" ~params:[] () in
  let v = B.ld b Global U32 { Ptx.Types.abase = B.tid_x; aoffset = 0 } in
  B.st b Global U32 { Ptx.Types.abase = B.tid_x; aoffset = 64 } v;
  let k = B.finish b in
  let d, n = Dataflow.Classify.count_global (Dataflow.Classify.classify k) in
  Alcotest.(check (pair int int)) "sreg-addressed load is D" (1, 0) (d, n)

(* atomics count as loads: an address fed by an atomic's result is N *)
let test_atomic_taints () =
  let b = B.create ~name:"atomtaint" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let old = B.atom b Aadd U32 (B.addr a) (B.int 1) in
  let v = B.ld b Global U32 (B.at b ~base:a ~scale:4 old) in
  B.st b Global U32 (B.addr a) v;
  let k = B.finish b in
  let res = Dataflow.Classify.classify k in
  let d, n = Dataflow.Classify.count_global res in
  (* the atomic itself is a global access (D address), the dependent
     load is N *)
  Alcotest.(check (pair int int)) "atomic D, dependent load N" (1, 1) (d, n)

(* dependence through a store is NOT tracked (registers only), matching
   the paper's register-dataflow method *)
let test_no_memory_dependence () =
  let b = B.create ~name:"memdep" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let tid = B.mov b B.tid_x in
  B.st b Global U32 (B.addr a) tid;
  (* reload what we just stored: the classifier sees a load leaf, so the
     dependent gather is N even though the value is "really" tid *)
  let x = B.ld b Global U32 (B.addr a) in
  let v = B.ld b Global U32 (B.at b ~base:a ~scale:4 x) in
  B.st b Global U32 (B.addr a) v;
  let k = B.finish b in
  let d, n = Dataflow.Classify.count_global (Dataflow.Classify.classify k) in
  Alcotest.(check (pair int int)) "reloaded value taints" (1, 1) (d, n)

(* liveness precision: a value is dead after its last use and live
   between def and use across a branch *)
let test_liveness_precision () =
  let body =
    [| Ptx.Instr.Mov (0, Imm 1L) (* 0: def r0 *);
       Ptx.Instr.Mov (1, Imm 2L) (* 1: def r1 *);
       Ptx.Instr.Iop (Add, 2, Reg 0, Imm 3L) (* 2: last use of r0 *);
       Ptx.Instr.Iop (Add, 3, Reg 1, Reg 2) (* 3: uses r1, r2 *);
       Ptx.Instr.Exit
    |]
  in
  let k =
    Ptx.Kernel.validate
      (Ptx.Kernel.create ~name:"lv" ~params:[] ~nregs:4 ~npregs:1
         ~smem_bytes:0 body)
  in
  let cfg = Ptx.Cfg.build k in
  let lv = Dataflow.Liveness.compute k cfg in
  Alcotest.(check bool) "r0 live into pc2" true
    (Dataflow.Liveness.live_in_reg lv ~pc:2 ~reg:0);
  Alcotest.(check bool) "r0 dead after pc2" false
    (Dataflow.Liveness.live_in_reg lv ~pc:3 ~reg:0);
  Alcotest.(check bool) "r1 live across pc2" true
    (Dataflow.Liveness.live_in_reg lv ~pc:2 ~reg:1);
  Alcotest.(check int) "max pressure is 2" 2
    (Dataflow.Liveness.max_pressure lv)

(* depgraph: uninitialized use detection *)
let test_uninitialized_use () =
  let body =
    [| Ptx.Instr.Iop (Add, 0, Reg 1, Imm 1L) (* r1 never defined *);
       Ptx.Instr.Exit
    |]
  in
  let k =
    Ptx.Kernel.validate
      (Ptx.Kernel.create ~name:"uninit" ~params:[] ~nregs:2 ~npregs:1
         ~smem_bytes:0 body)
  in
  let cfg = Ptx.Cfg.build k in
  let r = Dataflow.Reaching.compute k cfg in
  let dg = Dataflow.Depgraph.build k r in
  Alcotest.(check bool) "flagged" true
    (Dataflow.Depgraph.has_uninitialized_use dg 0)

let extra_tests =
  [
    Alcotest.test_case "liveness precision" `Quick test_liveness_precision;
    Alcotest.test_case "uninitialized use" `Quick test_uninitialized_use;
    Alcotest.test_case "reaching: kill" `Quick test_reaching_kill;
    Alcotest.test_case "reaching: join" `Quick test_reaching_join;
    Alcotest.test_case "reaching: loop-carried" `Quick
      test_reaching_loop_carried;
    Alcotest.test_case "classifier leaf provenance" `Quick
      test_leaf_provenance;
    Alcotest.test_case "sreg-addressed load" `Quick test_direct_sreg_address;
    Alcotest.test_case "atomic result taints" `Quick test_atomic_taints;
    Alcotest.test_case "no memory dependence tracking" `Quick
      test_no_memory_dependence;
  ]

let tests =
  [
    Alcotest.test_case "bfs-like classification (paper Code 1)" `Quick
      test_bfs_classification;
    Alcotest.test_case "loop with deterministic addressing" `Quick
      test_loop_deterministic;
    Alcotest.test_case "pointer chase is non-deterministic" `Quick
      test_pointer_chase;
    Alcotest.test_case "shared loads classified, not global" `Quick
      test_shared_not_global;
    Alcotest.test_case "selp of params stays deterministic" `Quick
      test_selp_deterministic;
    Alcotest.test_case "selp with tainted predicate" `Quick
      test_selp_tainted_predicate;
    Alcotest.test_case "backward slice" `Quick test_backward_slice;
    Alcotest.test_case "liveness" `Quick test_liveness;
  ]

let () =
  Alcotest.run "dataflow"
    [ ("classify", tests); ("analysis", extra_tests) ]
