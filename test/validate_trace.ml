(* Validates a JSONL event stream produced by `critload trace --format
   jsonl`: every line must parse through the in-tree JSON reader and
   decode into a Trace.event, and the stream must contain the event
   kinds any real run is guaranteed to produce (load issues/returns,
   cache probes, occupancy samples).  Exit 0 on success; any defect is
   a diagnostic on stderr and exit 1. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ -> fail "usage: validate_trace TRACE.jsonl"
  in
  let ic = try open_in file with Sys_error e -> fail "%s" e in
  let n_events = ref 0 in
  let issues = ref 0 and returns = ref 0 and accesses = ref 0 in
  let occupancy = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if line <> "" then begin
         let ev =
           try Gsim.Trace.event_of_json (Gsim.Stats_io.Json.of_string line)
           with Gsim.Stats_io.Json.Parse_error e ->
             fail "%s:%d: bad event: %s" file !lineno e
         in
         incr n_events;
         match ev with
         | Gsim.Trace.Ev_load_issue _ -> incr issues
         | Gsim.Trace.Ev_load_return _ -> incr returns
         | Gsim.Trace.Ev_access _ -> incr accesses
         | Gsim.Trace.Ev_occupancy _ -> incr occupancy
         | _ -> ()
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !n_events = 0 then fail "%s: empty trace" file;
  if !issues = 0 then fail "%s: no load-issue events" file;
  if !returns = 0 then fail "%s: no load-return events" file;
  if !returns > !issues then
    fail "%s: %d returns exceed %d issues" file !returns !issues;
  if !accesses = 0 then fail "%s: no cache-probe events" file;
  if !occupancy = 0 then fail "%s: no occupancy samples" file;
  Printf.printf
    "trace ok: %d events (%d issues, %d returns, %d probes, %d occupancy)\n"
    !n_events !issues !returns !accesses !occupancy
