(* Unit tests for the first-class memory-system policies: the
   Mempolicy interpreter (IAR reorder buffer bounds and ordering,
   holistic throttle hysteresis, streaming-bypass detection), the
   Config builder/digest contract the sweep cache rests on, and the
   central acceptance criterion of the policy seam — an explicit
   [Baseline] policy is byte-identical to the perf-lock goldens. *)

module C = Gsim.Config
module M = Gsim.Mempolicy

let cfg_of p = C.default |> C.with_policy p

(* ---- Baseline: every hook answers the neutral constant ---- *)

let test_baseline_noops () =
  let t = M.create C.default in
  let d = M.decide t ~kernel:"k" ~pc:3 Dataflow.Classify.Nondeterministic in
  Alcotest.(check bool) "no flags" true (d = M.no_decision);
  Alcotest.(check bool) "no IAR room" false (M.iar_room t ~n:1);
  Alcotest.(check int) "no IAR entries" 0 (M.iar_pending t);
  Alcotest.(check bool) "no buffered line" true
    (M.iar_select t ~now:1_000 ~fifo_nonempty:false = None);
  M.on_outcome t ~kernel:"k" ~pc:3 Dataflow.Classify.Nondeterministic
    (Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr);
  Alcotest.(check int) "no throttle" max_int (M.allowed_ctas t);
  Alcotest.(check int) "no throttle steps" 0 (M.throttle_steps t)

(* [with_policy Baseline] must be *structurally* the default config —
   byte identity of the runs then follows from determinism *)
let test_baseline_structural_identity () =
  Alcotest.(check bool) "with_policy Baseline = default" true
    (cfg_of C.Baseline = C.default);
  Alcotest.(check bool) "deprecated knobs round-trip to Baseline" true
    (C.default |> C.with_warp_split 8 |> C.with_warp_split 0 = C.default);
  Alcotest.(check bool) "empty per-pc table unwraps" true
    (C.default
     |> C.with_pc_policies [ (("k", 4), { C.no_policy with C.lp_split = 4 }) ]
     |> C.with_pc_policies []
    = C.default)

(* ---- IAR reorder buffer ---- *)

let entry ?(line = 0) ?(born = 0) () =
  {
    M.ie_line = line;
    ie_born = born;
    ie_wl = None;
    ie_kind = Gsim.Request.Load;
    ie_cls = Dataflow.Classify.Nondeterministic;
    ie_cta = 0;
  }

let iar_t ?(entries = 3) ?(max_wait = 16) () =
  M.create (cfg_of (C.Iar { C.iar_entries = entries; iar_max_wait = max_wait }))

let test_iar_bounds () =
  let t = iar_t ~entries:3 () in
  Alcotest.(check bool) "room for capacity" true (M.iar_room t ~n:3);
  Alcotest.(check bool) "no room beyond capacity" false (M.iar_room t ~n:4);
  M.iar_add t (entry ~line:128 ~born:1 ());
  M.iar_add t (entry ~line:256 ~born:2 ());
  M.iar_add t (entry ~line:128 ~born:3 ());
  Alcotest.(check int) "three buffered" 3 (M.iar_pending t);
  Alcotest.(check bool) "full" false (M.iar_room t ~n:1);
  M.iar_remove_line t ~line:128;
  Alcotest.(check int) "batch removed as a unit" 1 (M.iar_pending t);
  Alcotest.(check bool) "room again" true (M.iar_room t ~n:2)

let test_iar_select_ordering () =
  let t = iar_t ~entries:8 ~max_wait:16 () in
  M.iar_add t (entry ~line:512 ~born:10 ());
  (* fresh singles defer to the in-order queue *)
  Alcotest.(check bool) "fresh singles defer to the queue" true
    (M.iar_select t ~now:11 ~fifo_nonempty:true = None);
  M.iar_add t (entry ~line:128 ~born:11 ());
  M.iar_add t (entry ~line:128 ~born:12 ());
  (* a formed batch claims the port even when the queue has work *)
  Alcotest.(check bool) "formed batch preempts the queue" true
    (M.iar_select t ~now:13 ~fifo_nonempty:true = Some 128);
  (* batches come back oldest first, without removal *)
  let batch = M.iar_batch t ~line:128 in
  Alcotest.(check (list int))
    "batch oldest first" [ 11; 12 ]
    (List.map (fun e -> e.M.ie_born) batch);
  Alcotest.(check int) "batch is non-destructive" 3 (M.iar_pending t);
  (* with the batch harvested, a single aged past max_wait preempts *)
  M.iar_remove_line t ~line:128;
  Alcotest.(check bool) "fresh single still defers" true
    (M.iar_select t ~now:13 ~fifo_nonempty:true = None);
  Alcotest.(check bool) "aged single preempts the queue" true
    (M.iar_select t ~now:(10 + 16) ~fifo_nonempty:true = Some 512);
  (* queue idle: the buffer issues what it has *)
  Alcotest.(check bool) "idle queue drains the buffer" true
    (M.iar_select t ~now:11 ~fifo_nonempty:false = Some 512)

let test_iar_tie_oldest_wins () =
  let t = iar_t ~entries:8 ~max_wait:100 () in
  M.iar_add t (entry ~line:512 ~born:1 ());
  M.iar_add t (entry ~line:128 ~born:2 ());
  Alcotest.(check bool) "equal counts: first-buffered line wins" true
    (M.iar_select t ~now:3 ~fifo_nonempty:false = Some 512)

(* ---- holistic throttle: hysteresis over count-based windows ---- *)

let holi ?(window = 10) ?(high = 50) ?(low = 10) () =
  let hp =
    {
      C.default_holistic with
      C.hp_throttle_window = window;
      hp_throttle_high_pct = high;
      hp_throttle_low_pct = low;
    }
  in
  let t = M.create (cfg_of (C.Holistic hp)) in
  (* 8 warp slots / 2 warps per CTA: 4 resident CTAs, all allowed *)
  M.reconfigure t ~warp_slots:8 ~warps_per_cta:2;
  t

let feed t ~fails ~oks =
  for _ = 1 to fails do
    M.on_outcome t ~kernel:"k" ~pc:0 Dataflow.Classify.Nondeterministic
      (Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr)
  done;
  for _ = 1 to oks do
    M.on_outcome t ~kernel:"k" ~pc:0 Dataflow.Classify.Nondeterministic
      Gsim.Cache.Hit
  done

let test_throttle_hysteresis () =
  let t = holi () in
  Alcotest.(check int) "open after reconfigure" 4 (M.allowed_ctas t);
  (* 60% fails >= high threshold: tighten one CTA per window *)
  feed t ~fails:6 ~oks:4;
  Alcotest.(check int) "first spike throttles" 3 (M.allowed_ctas t);
  feed t ~fails:6 ~oks:4;
  Alcotest.(check int) "second spike throttles further" 2 (M.allowed_ctas t);
  Alcotest.(check int) "two tightenings counted" 2 (M.throttle_steps t);
  (* 30% sits between the thresholds: hysteresis holds the level *)
  feed t ~fails:3 ~oks:7;
  Alcotest.(check int) "mid-band rate holds steady" 2 (M.allowed_ctas t);
  (* clean windows release one CTA at a time *)
  feed t ~fails:0 ~oks:10;
  feed t ~fails:0 ~oks:10;
  Alcotest.(check int) "clean windows release" 4 (M.allowed_ctas t);
  feed t ~fails:0 ~oks:10;
  Alcotest.(check int) "never beyond occupancy" 4 (M.allowed_ctas t);
  Alcotest.(check int) "releases are not steps" 2 (M.throttle_steps t)

let test_throttle_floor () =
  let t = holi () in
  for _ = 1 to 10 do
    feed t ~fails:10 ~oks:0
  done;
  Alcotest.(check int) "one CTA always runs" 1 (M.allowed_ctas t);
  M.reconfigure t ~warp_slots:8 ~warps_per_cta:2;
  Alcotest.(check int) "launch boundary reopens" 4 (M.allowed_ctas t)

(* ---- holistic streaming-bypass detection + N-line protection ---- *)

let test_streaming_bypass () =
  let hp = { C.default_holistic with C.hp_bypass_sample = 4 } in
  let t = M.create (cfg_of (C.Holistic hp)) in
  let d = Dataflow.Classify.Deterministic in
  (* a pc that only misses crosses the sample threshold -> bypass *)
  for _ = 1 to 4 do
    M.on_outcome t ~kernel:"k" ~pc:8 d Gsim.Cache.Miss
  done;
  Alcotest.(check bool) "streaming pc bypasses" true
    (M.decide t ~kernel:"k" ~pc:8 d).M.d_flags.C.lp_bypass;
  (* a pc that hits stays cached; other kernels are independent *)
  for _ = 1 to 4 do
    M.on_outcome t ~kernel:"k" ~pc:16 d Gsim.Cache.Hit
  done;
  Alcotest.(check bool) "hitting pc keeps the L1" false
    (M.decide t ~kernel:"k" ~pc:16 d).M.d_flags.C.lp_bypass;
  Alcotest.(check bool) "fresh pc keeps the L1" false
    (M.decide t ~kernel:"k2" ~pc:8 d).M.d_flags.C.lp_bypass;
  (* the verdict is sticky: later hits do not un-bypass *)
  for _ = 1 to 8 do
    M.on_outcome t ~kernel:"k" ~pc:8 d Gsim.Cache.Hit
  done;
  Alcotest.(check bool) "verdict is sticky" true
    (M.decide t ~kernel:"k" ~pc:8 d).M.d_flags.C.lp_bypass;
  (* non-deterministic loads get line protection, not bypass *)
  let dn = M.decide t ~kernel:"k" ~pc:8 Dataflow.Classify.Nondeterministic in
  Alcotest.(check bool) "N loads protected" true dn.M.d_protect;
  Alcotest.(check bool) "N loads not bypassed" false dn.M.d_flags.C.lp_bypass

(* ---- per-pc combinator layering ---- *)

let test_per_pc_overrides () =
  let split4 = { C.no_policy with C.lp_split = 4 } in
  let t =
    M.create
      (cfg_of
         (C.Per_pc
            ( [ (("k", 8), split4) ],
              C.Iar C.default_iar )))
  in
  let d_hit = M.decide t ~kernel:"k" ~pc:8 Dataflow.Classify.Nondeterministic in
  Alcotest.(check int) "override wins at its pc" 4 d_hit.M.d_flags.C.lp_split;
  Alcotest.(check bool) "override does not buffer" false d_hit.M.d_buffer;
  let d_miss =
    M.decide t ~kernel:"k" ~pc:12 Dataflow.Classify.Nondeterministic
  in
  Alcotest.(check bool) "inner policy applies elsewhere" true d_miss.M.d_buffer;
  (* the IAR buffer of the inner policy is reachable through the wrapper *)
  Alcotest.(check bool) "inner IAR reachable" true (M.iar_room t ~n:1)

(* ---- Config: naming, parsing, digest sensitivity ---- *)

let test_policy_names () =
  List.iter
    (fun p ->
      match C.policy_of_string (C.policy_name p) with
      | Ok q ->
          Alcotest.(check string)
            (C.policy_name p ^ " round-trips")
            (C.string_of_mem_policy p) (C.string_of_mem_policy q)
      | Error e -> Alcotest.fail e)
    [ C.Baseline; C.Iar C.default_iar; C.Holistic C.default_holistic ];
  (match C.policy_of_string "no-such-policy" with
  | Ok _ -> Alcotest.fail "junk parsed as a policy"
  | Error _ -> ())

(* every builder must reach to_key/to_digest: a knob the digest misses
   is a sweep-cache collision between semantically different runs *)
let test_digest_sensitivity () =
  let variants =
    [
      ("n_sms", C.with_n_sms 8 C.default);
      ("warp_size", C.with_warp_size 16 C.default);
      ("l1", C.with_l1 ~sets:16 C.default);
      ("mshrs", C.with_mshrs 32 C.default);
      ("l2", C.with_l2 ~ways:4 C.default);
      ("icnt_width", C.with_icnt_width 2 C.default);
      ("icnt_latency", C.with_icnt_latency 9 C.default);
      ("dram", C.with_dram ~latency:77 C.default);
      ("caps", C.with_caps ~max_warp_insts:123 () C.default);
      ("cta_sched", C.with_cta_sched (C.Clustered 2) C.default);
      ("warp_sched", C.with_warp_sched C.Gto C.default);
      ("l2_cluster", C.with_l2_cluster 2 C.default);
      ("ndet_flags", cfg_of (C.Ndet_flags { C.no_policy with C.lp_split = 8 }));
      ("iar", cfg_of (C.Iar C.default_iar));
      ("iar_params", cfg_of (C.Iar { C.iar_entries = 8; iar_max_wait = 4 }));
      ("holistic", cfg_of (C.Holistic C.default_holistic));
      ( "holistic_params",
        cfg_of (C.Holistic { C.default_holistic with C.hp_bypass_hit_pct = 5 })
      );
      ( "per_pc",
        cfg_of
          (C.Per_pc
             ([ (("k", 4), { C.no_policy with C.lp_prefetch = true }) ],
              C.Baseline)) );
      ("deprecated_split", C.with_warp_split 4 C.default);
      ("deprecated_prefetch", C.with_prefetch_ndet true C.default);
      ("deprecated_bypass", C.with_bypass_ndet true C.default);
    ]
  in
  let all = ("default", C.default) :: variants in
  List.iter
    (fun (na, ca) ->
      List.iter
        (fun (nb, cb) ->
          if na < nb then
            Alcotest.(check bool)
              (Printf.sprintf "digest(%s) <> digest(%s)" na nb)
              false
              (C.to_digest ca = C.to_digest cb))
        all)
    all

(* digest agrees with the JSON round-trip: parse-back of the config
   document reproduces the same canonical key *)
let test_digest_json_agreement () =
  List.iter
    (fun p ->
      let cfg = cfg_of p in
      let back =
        Gsim.Stats_io.config_of_json (Gsim.Stats_io.config_to_json cfg)
      in
      Alcotest.(check string)
        (C.policy_name p ^ " config survives JSON")
        (C.to_key cfg) (C.to_key back))
    [
      C.Baseline;
      C.Ndet_flags { C.lp_split = 4; lp_prefetch = true; lp_bypass = false };
      C.Iar C.default_iar;
      C.Holistic C.default_holistic;
      C.Per_pc
        ( [ (("k", 8), { C.no_policy with C.lp_bypass = true }) ],
          C.Iar { C.iar_entries = 16; iar_max_wait = 8 } );
    ]

(* ---- end-to-end: explicit Baseline is byte-identical to the locked
   goldens on a graph app; the real policies complete and diverge ---- *)

let test_baseline_matches_golden () =
  let golden = Perf_lock.read_golden "goldens/perf_lock.golden" in
  let want = List.assoc "bfs" golden in
  let got = Perf_lock.digest_app (Workloads.Suite.find "bfs") in
  Alcotest.(check string) "stats digest" want.Perf_lock.dg_stats
    got.Perf_lock.dg_stats;
  Alcotest.(check string) "profile digest" want.Perf_lock.dg_profile
    got.Perf_lock.dg_profile;
  Alcotest.(check string) "trace digest" want.Perf_lock.dg_trace
    got.Perf_lock.dg_trace

let run_bfs policy =
  let cfg =
    C.default
    |> C.with_caps ~max_warp_insts:6_000 ()
    |> C.with_policy policy
  in
  let app = Workloads.Suite.find "bfs" in
  match
    Critload.Runner.run ~cfg ~scale:Workloads.App.Small ~warmup:false app
  with
  | Ok r -> Critload.Runner.Report.stats_exn r
  | Error e -> raise (Gsim.Sim_error.Error e)

let test_policies_complete_and_diverge () =
  let base = run_bfs C.Baseline in
  let iar = run_bfs (C.Iar C.default_iar) in
  (* thresholds low enough to trip inside a 6k-instruction prefix (the
     default parameters are tuned for full runs and may legitimately
     never fire this early) *)
  let holistic =
    run_bfs
      (C.Holistic
         {
           C.default_holistic with
           C.hp_bypass_sample = 8;
           hp_bypass_hit_pct = 100;
           hp_throttle_window = 64;
           hp_throttle_high_pct = 1;
         })
  in
  let doc s = Gsim.Stats_io.Json.to_string (Gsim.Stats_io.stats_to_json s) in
  Alcotest.(check bool) "all runs make progress" true
    (base.Gsim.Stats.cycles > 0 && iar.Gsim.Stats.cycles > 0
    && holistic.Gsim.Stats.cycles > 0);
  Alcotest.(check bool) "iar changes the execution" true
    (doc iar <> doc base);
  Alcotest.(check bool) "holistic changes the execution" true
    (doc holistic <> doc base)

let () =
  Alcotest.run "policy"
    [
      ( "mempolicy",
        [
          Alcotest.test_case "baseline hooks are no-ops" `Quick
            test_baseline_noops;
          Alcotest.test_case "baseline is structurally default" `Quick
            test_baseline_structural_identity;
          Alcotest.test_case "iar buffer bounds" `Quick test_iar_bounds;
          Alcotest.test_case "iar selection ordering" `Quick
            test_iar_select_ordering;
          Alcotest.test_case "iar tie breaks oldest" `Quick
            test_iar_tie_oldest_wins;
          Alcotest.test_case "throttle hysteresis" `Quick
            test_throttle_hysteresis;
          Alcotest.test_case "throttle floor and relaunch" `Quick
            test_throttle_floor;
          Alcotest.test_case "streaming bypass detection" `Quick
            test_streaming_bypass;
          Alcotest.test_case "per-pc overrides layer" `Quick
            test_per_pc_overrides;
        ] );
      ( "config",
        [
          Alcotest.test_case "policy names parse back" `Quick
            test_policy_names;
          Alcotest.test_case "digest sees every builder" `Quick
            test_digest_sensitivity;
          Alcotest.test_case "config JSON preserves the key" `Quick
            test_digest_json_agreement;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "explicit baseline matches goldens" `Quick
            test_baseline_matches_golden;
          Alcotest.test_case "policies complete and diverge" `Quick
            test_policies_complete_and_diverge;
        ] );
    ]
