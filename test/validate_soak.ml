(* Soak smoke (`dune build @soak-smoke`): a short concurrent client
   mix with fault injection, entirely through the real CLI binary.

   One `critload serve` daemon runs with --chaos-kill-every 2 (every
   worker SIGKILLs itself on every 2nd first-attempt job) and a cache
   directory this driver deliberately corrupts between rounds.
   Concurrent `critload submit` clients must each produce a document
   byte-identical to a `critload sweep` baseline; the daemon must
   answer a health probe afterwards and drain cleanly on SIGTERM.

   Usage: validate_soak CRITLOAD_CLI *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let cli =
  if Array.length Sys.argv < 2 then die "usage: validate_soak CRITLOAD_CLI"
  else Sys.argv.(1)

let job_args =
  [ "--apps"; "2mm,gaus"; "--scale"; "small"; "--cap"; "5000"; "--no-warmup" ]

let spawn ?(log = "/dev/null") args =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let fd =
        Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      Unix.dup2 fd Unix.stdout;
      Unix.dup2 fd Unix.stderr;
      Unix.close fd;
      (try Unix.execv cli (Array.of_list (cli :: args)) with _ -> ());
      exit 127
  | pid -> pid

let wait_code pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, Unix.WSIGNALED s -> die "child killed by signal %d" s
  | _ -> die "child stopped"

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let () =
  let dir = "soak-smoke.tmp" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path f = Filename.concat dir f in
  let socket = path "daemon.sock" in
  let cache = path "cache" in
  (try Unix.mkdir cache 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* serial baseline through the ordinary sweep path *)
  let baseline = path "baseline.json" in
  let c =
    wait_code
      (spawn ~log:(path "baseline.log")
         ([ "sweep"; "--jobs"; "2"; "--no-cache"; "--out"; baseline ]
         @ job_args))
  in
  if c <> 0 then die "validate_soak: baseline sweep failed with code %d" c;
  let expect = read_file baseline in
  (* the daemon under fault injection *)
  let daemon =
    spawn ~log:(path "serve.log")
      [ "serve"; "--socket"; socket; "--jobs"; "2"; "--cache-dir"; cache;
        "--chaos-kill-every"; "2"; "--queue-limit"; "8" ]
  in
  let cleanup_daemon () =
    (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
    ignore (try wait_code daemon with _ -> 0)
  in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        cleanup_daemon ();
        prerr_endline m;
        exit 1)
      fmt
  in
  let deadline = Unix.gettimeofday () +. 30. in
  while not (Sys.file_exists socket) do
    if Unix.gettimeofday () > deadline then fail "daemon never bound %s" socket;
    Unix.sleepf 0.02
  done;
  let round label n_clients =
    let clients =
      List.init n_clients (fun i ->
          let out = path (Printf.sprintf "%s-client%d.json" label i) in
          ( out,
            spawn
              ~log:(path (Printf.sprintf "%s-client%d.log" label i))
              ([ "submit"; "--socket"; socket; "--out"; out ] @ job_args) ))
    in
    List.iteri
      (fun i (out, pid) ->
        let c = wait_code pid in
        if c <> 0 then fail "%s: client %d exited %d" label i c;
        if read_file out <> expect then
          fail "%s: client %d document differs from the sweep baseline" label
            i)
      clients
  in
  (* round 1: cold cache, concurrent misses, chaos crashes *)
  round "cold" 3;
  (* corrupt the store between rounds: truncate one entry mid-file *)
  (match
     Sys.readdir cache |> Array.to_list
     |> List.filter (fun f -> Filename.check_suffix f ".json")
   with
  | [] -> fail "no cache entries written by round 1"
  | f :: _ ->
      let entry = Filename.concat cache f in
      let whole = read_file entry in
      let oc = open_out entry in
      output_string oc (String.sub whole 0 (String.length whole / 2));
      close_out oc);
  (* round 2: a mix of hits, plus the damaged entry recomputed *)
  round "warm" 2;
  (* the daemon is still standing and says so *)
  let hc =
    wait_code
      (spawn ~log:(path "health.log")
         [ "submit"; "--socket"; socket; "--health" ])
  in
  if hc <> 0 then fail "health probe exited %d" hc;
  let health = read_file (path "health.log") in
  (* drain: exit 0, socket gone *)
  (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
  let dc = wait_code daemon in
  if dc <> 0 then die "daemon exited %d after SIGTERM" dc;
  if Sys.file_exists socket then die "daemon left its socket behind";
  Printf.printf "validate_soak: ok (5 clients byte-identical; health %s)\n"
    (String.trim health)
