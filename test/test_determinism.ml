(* The invariant the parallel sweep runner's retry logic relies on: two
   cycle-simulation runs of the same (app, scale, config) produce
   byte-identical serialized statistics, so a retried worker reproduces
   the lost result exactly.  Also checks that the JSON layer itself is
   lossless: parse-back followed by re-serialization is the identity on
   the emitted string. *)

let cap = 8_000

let ok = function Ok r -> r | Error e -> raise (Gsim.Sim_error.Error e)

let stats_json app =
  let cfg =
    Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:cap ()
  in
  let a = Workloads.Suite.find app in
  let r = ok (Critload.Runner.run ~cfg ~scale:Workloads.App.Small a) in
  Gsim.Stats_io.Json.to_string
    (Gsim.Stats_io.stats_to_json (Critload.Runner.Report.stats_exn r))

let test_byte_identical app () =
  let first = stats_json app in
  let second = stats_json app in
  Alcotest.(check string)
    (app ^ ": two timing runs serialize identically")
    first second;
  Alcotest.(check bool) "output is non-trivial" true
    (String.length first > 100)

let test_json_roundtrip_lossless app () =
  let text = stats_json app in
  let back =
    Gsim.Stats_io.stats_of_json (Gsim.Stats_io.Json.of_string text)
  in
  Alcotest.(check string)
    (app ^ ": of_json . to_json is the identity on the wire format")
    text
    (Gsim.Stats_io.Json.to_string (Gsim.Stats_io.stats_to_json back))

(* an instruction cap marks the run truncated and the flag survives the
   wire format *)
let test_truncated_flag () =
  let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:500 () in
  let a = Workloads.Suite.find "bfs" in
  let r =
    ok (Critload.Runner.run ~cfg ~scale:Workloads.App.Small ~warmup:false a)
  in
  let s = Critload.Runner.Report.stats_exn r in
  Alcotest.(check bool) "capped run is marked truncated" true
    s.Gsim.Stats.truncated;
  let text =
    Gsim.Stats_io.Json.to_string (Gsim.Stats_io.stats_to_json s)
  in
  let back = Gsim.Stats_io.stats_of_json (Gsim.Stats_io.Json.of_string text) in
  Alcotest.(check bool) "flag round-trips through JSON" true
    back.Gsim.Stats.truncated

(* documents written before the flag existed parse as a clean finish *)
let test_truncated_absent_defaults_false () =
  let module Json = Gsim.Stats_io.Json in
  let stripped =
    match Gsim.Stats_io.stats_to_json (Gsim.Stats.create ()) with
    | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "truncated") fields)
    | _ -> Alcotest.fail "stats document is not an object"
  in
  Alcotest.(check bool) "missing field reads as not truncated" false
    (Gsim.Stats_io.stats_of_json stripped).Gsim.Stats.truncated

let () =
  Alcotest.run "determinism"
    [ ( "determinism",
        [ Alcotest.test_case "bfs timing determinism" `Quick
            (test_byte_identical "bfs");
          Alcotest.test_case "spmv timing determinism" `Quick
            (test_byte_identical "spmv");
          Alcotest.test_case "bfs stats JSON lossless" `Quick
            (test_json_roundtrip_lossless "bfs");
          Alcotest.test_case "srad stats JSON lossless" `Quick
            (test_json_roundtrip_lossless "srad");
          Alcotest.test_case "cap sets + round-trips truncated" `Quick
            test_truncated_flag;
          Alcotest.test_case "absent truncated field defaults false" `Quick
            test_truncated_absent_defaults_false ] ) ]
