(* The shipped example .ptx files must parse, classify as documented,
   and round-trip. *)

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* locate examples/ptx relative to the workspace root *)
let ptx_dir =
  let rec up dir n =
    let candidate = Filename.concat dir "examples/ptx" in
    if Sys.file_exists candidate then Some candidate
    else if n = 0 then None
    else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 6

let with_file name f =
  match ptx_dir with
  | None -> Alcotest.skip ()
  | Some dir -> f (read_file (Filename.concat dir name))

let test_gather_file () =
  with_file "gather.ptx" (fun text ->
      let k = Ptx.Parse.kernel_of_string text in
      let d, n = Dataflow.Classify.count_global (Dataflow.Classify.classify k) in
      Alcotest.(check (pair int int)) "gather.ptx: 1 D, 1 N" (1, 1) (d, n);
      (* round trip *)
      let text' = Ptx.Kernel.to_string k in
      Alcotest.(check string) "stable" text'
        (Ptx.Kernel.to_string (Ptx.Parse.kernel_of_string text')))

let test_spmv_file () =
  with_file "spmv.ptx" (fun text ->
      let k = Ptx.Parse.kernel_of_string text in
      let d, n = Dataflow.Classify.count_global (Dataflow.Classify.classify k) in
      Alcotest.(check (pair int int)) "spmv.ptx: 2 D, 3 N" (2, 3) (d, n);
      (* the value/column walks are detected *)
      let walks = Dataflow.Induction.walking_loads k in
      Alcotest.(check int) "two walking loads" 2 (List.length walks);
      List.iter
        (fun w -> Alcotest.(check int) "4-byte walk" 4 w.Dataflow.Induction.w_step)
        walks)

let tests =
  [
    Alcotest.test_case "gather.ptx" `Quick test_gather_file;
    Alcotest.test_case "spmv.ptx" `Quick test_spmv_file;
  ]

let () = Alcotest.run "ptx_files" [ ("files", tests) ]
