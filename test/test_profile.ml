(* Unit tests for the Profile reducer: log-2 histogram bucket edges,
   merge associativity/commutativity, JSON round-trip, golden
   per-category turnaround digests for two apps, and — for all 15 apps
   — reconciliation of trace-derived counts against the Stats.t
   counters of the same run (which the trace layer must not perturb). *)

module P = Gsim.Profile
module Json = Gsim.Stats_io.Json

let d = Dataflow.Classify.Deterministic
let n = Dataflow.Classify.Nondeterministic

(* ---------------- histogram buckets ---------------- *)

let test_bucket_edges () =
  Alcotest.(check int) "negative latency -> bucket 0" 0
    (P.bucket_of_latency (-7));
  Alcotest.(check int) "latency 0 -> bucket 0" 0 (P.bucket_of_latency 0);
  Alcotest.(check int) "latency 1 -> bucket 1" 1 (P.bucket_of_latency 1);
  Alcotest.(check int) "latency 2 -> bucket 2" 2 (P.bucket_of_latency 2);
  Alcotest.(check int) "latency 3 -> bucket 2" 2 (P.bucket_of_latency 3);
  Alcotest.(check int) "latency 4 -> bucket 3" 3 (P.bucket_of_latency 4);
  Alcotest.(check int) "latency 7 -> bucket 3" 3 (P.bucket_of_latency 7);
  Alcotest.(check int) "power of two starts its bucket" 11
    (P.bucket_of_latency 1024);
  Alcotest.(check int) "huge latency clamps to the last bucket"
    (P.n_buckets - 1)
    (P.bucket_of_latency max_int);
  (* each bucket's bounds map back to the bucket itself *)
  for i = 1 to P.n_buckets - 2 do
    Alcotest.(check int) "lower bound lands in its bucket" i
      (P.bucket_of_latency (P.bucket_lo i));
    Alcotest.(check int) "upper bound is exclusive" i
      (P.bucket_of_latency ((P.bucket_lo (i + 1)) - 1))
  done;
  Alcotest.(check int) "bucket_lo 0" 0 (P.bucket_lo 0);
  Alcotest.(check int) "bucket_lo 1" 1 (P.bucket_lo 1);
  Alcotest.(check int) "bucket_lo 3" 4 (P.bucket_lo 3)

(* ---------------- merge laws ---------------- *)

(* Three disjoint synthetic event streams with overlapping pcs so the
   per-pc table actually has to merge rows. *)
let stream_a =
  [
    Gsim.Trace.Ev_load_issue
      { cycle = 1; sm = 0; cta = 0; warp_slot = 0; kernel = "k"; pc = 8;
        cls = d; active = 32; nreq = 1 };
    Gsim.Trace.Ev_load_return
      { cycle = 130; sm = 0; cta = 0; kernel = "k"; pc = 8; cls = d; nreq = 1;
        turnaround = 129; level = Gsim.Request.Lvl_dram };
    Gsim.Trace.Ev_access
      { cycle = 2; where = Gsim.Trace.S_l1 0; line = 0;
        src = Gsim.Trace.A_load d; outcome = Gsim.Cache.Miss };
    Gsim.Trace.Ev_mshr_merge
      { cycle = 3; where = Gsim.Trace.S_l1 0; line = 0; cta = 0;
        owner_cta = 0 };
    Gsim.Trace.Ev_occupancy { cycle = 0; sm = 0; mshr = 1; ldst_q = 0 };
  ]

let stream_b =
  [
    Gsim.Trace.Ev_load_issue
      { cycle = 4; sm = 1; cta = 2; warp_slot = 1; kernel = "k"; pc = 8;
        cls = d; active = 16; nreq = 2 };
    Gsim.Trace.Ev_load_return
      { cycle = 40; sm = 1; cta = 2; kernel = "k"; pc = 8; cls = d; nreq = 2;
        turnaround = 36; level = Gsim.Request.Lvl_l2 };
    Gsim.Trace.Ev_access
      { cycle = 5; where = Gsim.Trace.S_l2 1; line = 128;
        src = Gsim.Trace.A_load n; outcome = Gsim.Cache.Hit };
    Gsim.Trace.Ev_mshr_merge
      { cycle = 6; where = Gsim.Trace.S_l2 0; line = 128; cta = 1;
        owner_cta = 3 };
    Gsim.Trace.Ev_dram_enq { cycle = 7; part = 0; line = 256; write = false };
    Gsim.Trace.Ev_occupancy { cycle = 0; sm = 1; mshr = 2; ldst_q = 1 };
  ]

let stream_c =
  [
    Gsim.Trace.Ev_load_issue
      { cycle = 9; sm = 0; cta = 5; warp_slot = 2; kernel = "k2"; pc = 16;
        cls = n; active = 32; nreq = 4 };
    Gsim.Trace.Ev_load_return
      { cycle = 900; sm = 0; cta = 5; kernel = "k2"; pc = 16; cls = n;
        nreq = 4; turnaround = 891; level = Gsim.Request.Lvl_dram };
    Gsim.Trace.Ev_access
      { cycle = 10; where = Gsim.Trace.S_l1 0; line = 384;
        src = Gsim.Trace.A_store;
        outcome = Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_icnt };
    Gsim.Trace.Ev_icnt_enq
      { cycle = 11; dir = Gsim.Trace.Dir_req; sm = 0; part = 1; line = 384 };
    Gsim.Trace.Ev_occupancy { cycle = 256; sm = 0; mshr = 0; ldst_q = 2 };
  ]

let profile_of events =
  let p = P.create () in
  List.iter (P.add p) events;
  p

let bytes p = Json.to_string (P.to_json p)

let test_merge_laws () =
  (* associativity: (a + b) + c = a + (b + c) *)
  let left = profile_of stream_a in
  P.merge ~dst:left ~src:(profile_of stream_b);
  P.merge ~dst:left ~src:(profile_of stream_c);
  let bc = profile_of stream_b in
  P.merge ~dst:bc ~src:(profile_of stream_c);
  let right = profile_of stream_a in
  P.merge ~dst:right ~src:bc;
  Alcotest.(check string) "merge is associative" (bytes left) (bytes right);
  (* commutativity: a + b = b + a *)
  let ab = profile_of stream_a in
  P.merge ~dst:ab ~src:(profile_of stream_b);
  let ba = profile_of stream_b in
  P.merge ~dst:ba ~src:(profile_of stream_a);
  Alcotest.(check string) "merge is commutative" (bytes ab) (bytes ba);
  (* merging everything equals folding one concatenated stream *)
  let whole = profile_of (stream_a @ stream_b @ stream_c) in
  Alcotest.(check string) "merge of parts equals the whole" (bytes whole)
    (bytes left)

let test_json_roundtrip () =
  let p = profile_of (stream_a @ stream_b @ stream_c) in
  let j = P.to_json p in
  Alcotest.(check string) "profile JSON round-trips byte-identically"
    (Json.to_string j)
    (Json.to_string (P.to_json (P.of_json j)))

(* ---------------- golden per-category digests ---------------- *)

let ok = function Ok r -> r | Error e -> raise (Gsim.Sim_error.Error e)

let run_profiled ?(cfg = Gsim.Config.default) app_name =
  let app = Workloads.Suite.find app_name in
  let cfg = cfg |> Gsim.Config.with_caps ~max_warp_insts:8000 () in
  let p = P.create () in
  let r =
    ok
      (Critload.Runner.run ~cfg ~scale:Workloads.App.Small ~warmup:false
         ~trace:(P.sink p) app)
  in
  (Critload.Runner.Report.stats_exn r, p)

let digest p =
  let block name (cp : P.class_profile) =
    Printf.sprintf "%s %d/%d l1 %d+%d+%d l2 %d/%d avg %.1f" name
      cp.P.cp_issues cp.P.cp_returns cp.P.cp_l1_hit cp.P.cp_l1_merge
      cp.P.cp_l1_miss cp.P.cp_l2_access cp.P.cp_l2_miss
      (if cp.P.cp_returns = 0 then 0.0
       else
         float_of_int cp.P.cp_sum_turnaround /. float_of_int cp.P.cp_returns)
  in
  Printf.sprintf "%s | %s | merges %d/%d %d/%d"
    (block "D" p.P.per_class.(0))
    (block "N" p.P.per_class.(1))
    p.P.l1_merge_intra p.P.l1_merge_inter p.P.l2_merge_intra
    p.P.l2_merge_inter

(* Pinned against the deterministic simulator (Small scale, 8000-warp-
   instruction cap, no warmup).  A digest change means the memory
   system's observable behaviour changed — re-pin only deliberately. *)
let test_golden_2mm () =
  let _, p = run_profiled "2mm" in
  Alcotest.(check string) "2mm digest"
    "D 1006/882 l1 432+390+184 l2 184/72 avg 130.5 | N 0/0 l1 0+0+0 l2 0/0 \
     avg 0.0 | merges 384/6 0/112"
    (digest p)

let test_golden_bfs () =
  let _, p = run_profiled "bfs" in
  Alcotest.(check string) "bfs digest"
    "D 404/404 l1 110+0+294 l2 294/120 avg 137.9 | N 506/493 l1 531+17+232 \
     l2 232/125 avg 87.5 | merges 17/0 0/6"
    (digest p)

(* ---------------- trace vs stats reconciliation, all 15 apps ------------ *)

let fail_kinds =
  [ Gsim.Cache.Fail_tags; Gsim.Cache.Fail_mshr; Gsim.Cache.Fail_icnt ]

let reconcile_app name () =
  let app = Workloads.Suite.find name in
  let cfg =
    Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:8000 ()
  in
  let r0 =
    ok
      (Critload.Runner.run ~cfg ~scale:Workloads.App.Small ~warmup:false app)
  in
  let p = P.create () in
  let r1 =
    ok
      (Critload.Runner.run ~cfg ~scale:Workloads.App.Small ~warmup:false
         ~trace:(P.sink p) app)
  in
  (* the trace layer must not perturb the simulation at all *)
  let stat_bytes s = Json.to_string (Gsim.Stats_io.stats_to_json s) in
  Alcotest.(check string) "stats byte-identical with tracing on"
    (stat_bytes (Critload.Runner.Report.stats_exn r0))
    (stat_bytes (Critload.Runner.Report.stats_exn r1));
  let s = Critload.Runner.Report.stats_exn r1 in
  (* per-class counters *)
  List.iteri
    (fun i cls ->
      let cp = p.P.per_class.(i) in
      let cs = s.Gsim.Stats.per_class.(i) in
      Alcotest.(check int) "completed L1 load probes = cs_l1_access"
        cs.Gsim.Stats.cs_l1_access (P.l1_loads p cls);
      Alcotest.(check int) "L1 misses" cs.Gsim.Stats.cs_l1_miss
        cp.P.cp_l1_miss;
      Alcotest.(check int) "returned warp loads = cs_warps"
        cs.Gsim.Stats.cs_warps cp.P.cp_returns;
      Alcotest.(check int) "L2 accesses" cs.Gsim.Stats.cs_l2_access
        cp.P.cp_l2_access;
      Alcotest.(check int) "L2 misses" cs.Gsim.Stats.cs_l2_miss
        cp.P.cp_l2_miss)
    [ d; n ];
  (* every L1 probe slot: classified loads + stores must account for
     the whole Stats.l1_events histogram (no prefetch in this config) *)
  let sum f = f p.P.per_class.(0) + f p.P.per_class.(1) in
  let slot o = s.Gsim.Stats.l1_events.(Gsim.Stats.l1_event_index o) in
  Alcotest.(check int) "hit slot" (slot Gsim.Cache.Hit)
    (sum (fun c -> c.P.cp_l1_hit));
  Alcotest.(check int) "merge slot" (slot Gsim.Cache.Hit_reserved)
    (sum (fun c -> c.P.cp_l1_merge));
  Alcotest.(check int) "miss slot (stores probe as misses)"
    (slot Gsim.Cache.Miss)
    (sum (fun c -> c.P.cp_l1_miss) + p.P.store_ok);
  List.iteri
    (fun k kind ->
      Alcotest.(check int)
        ("fail slot " ^ string_of_int k)
        (slot (Gsim.Cache.Rsrv_fail kind))
        (sum (fun c -> c.P.cp_l1_fail.(k)) + p.P.st_fail.(k)))
    fail_kinds;
  (* L2 reservation failures, loads + stores *)
  Alcotest.(check int) "l2 rsrv fails" s.Gsim.Stats.l2_rsrv_fails
    (sum (fun c -> Array.fold_left ( + ) 0 c.P.cp_l2_fail)
    + p.P.l2_store_fail);
  (* global stores seen by the trace *)
  Alcotest.(check int) "accepted stores" s.Gsim.Stats.global_stores
    p.P.store_ok

let reconcile_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ ": trace counts = stats") `Slow
        (reconcile_app name))
    Workloads.Suite.names

let tests =
  [
    Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "merge associativity + commutativity" `Quick
      test_merge_laws;
    Alcotest.test_case "profile JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "golden digest: 2mm" `Quick test_golden_2mm;
    Alcotest.test_case "golden digest: bfs" `Quick test_golden_bfs;
  ]

let () =
  Alcotest.run "profile"
    [ ("profile", tests); ("reconcile", reconcile_tests) ]
