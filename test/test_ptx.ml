(* Tests for the PTX substrate: builder, printer/parser round-trip
   (including property-based random kernels), CFG construction,
   dominators and reconvergence points, and kernel validation. *)

open Ptx.Types
module B = Ptx.Builder

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }

(* ---------- builder and validation ---------- *)

let test_builder_basic () =
  let b = B.create ~name:"k" ~params:[ u64 "a" ] () in
  let ap = B.ld_param b "a" in
  let v = B.ld b Global U32 (B.at b ~base:ap ~scale:4 B.tid_x) in
  B.st b Global U32 (B.addr ap) v;
  let k = B.finish b in
  Alcotest.(check string) "name" "k" k.Ptx.Kernel.kname;
  Alcotest.(check bool) "ends with exit" true
    (Ptx.Instr.is_exit k.Ptx.Kernel.body.(Array.length k.Ptx.Kernel.body - 1));
  Alcotest.(check (list int)) "global load pcs" [ 2 ]
    (Ptx.Kernel.global_load_pcs k)

let test_validation_catches_bad_label () =
  let body = [| Ptx.Instr.Bra (None, "nowhere"); Ptx.Instr.Exit |] in
  let k =
    Ptx.Kernel.create ~name:"bad" ~params:[] ~nregs:1 ~npregs:1 ~smem_bytes:0
      body
  in
  Alcotest.check_raises "unknown label"
    (Ptx.Kernel.Invalid "kernel bad: pc 0 branches to unknown label nowhere")
    (fun () -> ignore (Ptx.Kernel.validate k))

let test_validation_catches_bad_register () =
  let body = [| Ptx.Instr.Mov (5, Imm 0L); Ptx.Instr.Exit |] in
  let k =
    Ptx.Kernel.create ~name:"bad" ~params:[] ~nregs:2 ~npregs:1 ~smem_bytes:0
      body
  in
  Alcotest.check_raises "register range"
    (Ptx.Kernel.Invalid "kernel bad: register %r5 out of range [0,2)")
    (fun () -> ignore (Ptx.Kernel.validate k))

let test_validation_requires_exit () =
  let body = [| Ptx.Instr.Mov (0, Imm 0L) |] in
  let k =
    Ptx.Kernel.create ~name:"noexit" ~params:[] ~nregs:1 ~npregs:1
      ~smem_bytes:0 body
  in
  Alcotest.check_raises "no exit"
    (Ptx.Kernel.Invalid "kernel noexit: no exit instruction") (fun () ->
      ignore (Ptx.Kernel.validate k))

let test_duplicate_label_rejected () =
  let body =
    [| Ptx.Instr.Label "L"; Ptx.Instr.Label "L"; Ptx.Instr.Exit |]
  in
  Alcotest.check_raises "duplicate label"
    (Ptx.Kernel.Invalid "duplicate label L") (fun () ->
      ignore
        (Ptx.Kernel.create ~name:"dup" ~params:[] ~nregs:1 ~npregs:1
           ~smem_bytes:0 body))

(* ---------- def/use ---------- *)

let test_defs_uses () =
  let i = Ptx.Instr.Mad (3, Reg 1, Imm 4L, Reg 2) in
  Alcotest.(check (list int)) "defs" [ 3 ] (Ptx.Instr.defs i);
  Alcotest.(check (list int)) "uses" [ 1; 2 ] (Ptx.Instr.uses i);
  let s = Ptx.Instr.Setp (Lt, S32, 1, Reg 0, Imm 7L) in
  Alcotest.(check (list int)) "pdefs" [ 1 ] (Ptx.Instr.pdefs s);
  Alcotest.(check (list int)) "setp defs no gpr" [] (Ptx.Instr.defs s);
  let br = Ptx.Instr.Bra (Some (false, 2), "L") in
  Alcotest.(check (list int)) "bra puses" [ 2 ] (Ptx.Instr.puses br)

(* ---------- printer / parser round-trip ---------- *)

let roundtrip k =
  let text = Ptx.Kernel.to_string k in
  let k2 = Ptx.Parse.kernel_of_string text in
  let text2 = Ptx.Kernel.to_string k2 in
  Alcotest.(check string) "print-parse-print stable" text text2

let test_roundtrip_handwritten () =
  let b =
    B.create ~name:"rt" ~params:[ u64 "a"; u32 "n" ] ~smem_bytes:64 ()
  in
  let ap = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let i = B.global_tid b in
  let p = B.setp b Lt i n in
  B.if_ b p (fun () ->
      let x = B.ld b Global F32 (B.at b ~base:ap ~scale:4 i) in
      let y = B.funary b Sqrt x in
      let z = B.fma b y y (B.float 1.5) in
      B.st b Shared F32 (B.at b ~base:(B.int 0) ~scale:4 B.tid_x) z;
      B.bar b;
      let w = B.ld b Shared F32 (B.at b ~base:(B.int 0) ~scale:4 B.tid_x) in
      ignore (B.atom b Aadd U32 (B.addr ap) (B.cvt b ~dst_ty:U32 ~src_ty:F32 w)));
  roundtrip (B.finish b)

(* random straight-line + structured kernels for the round-trip *)
let gen_kernel =
  let open QCheck.Gen in
  let gen_operand nregs =
    frequency
      [ (4, map (fun r -> Reg r) (int_bound (nregs - 1)));
        (2, map (fun i -> Imm (Int64.of_int i)) (int_bound 1000));
        (1, return (Sreg (Tid X)));
        (1, return (Sreg (Ctaid X))) ]
  in
  let gen_iop =
    oneofl [ Add; Sub; Mul; Mulhi; Div; Rem; Min; Max; Band; Bor; Bxor; Shl; Shr ]
  in
  let gen_instr nregs npregs =
    frequency
      [ ( 4,
          map3
            (fun op (d, a) b -> Ptx.Instr.Iop (op, d, a, b))
            gen_iop
            (pair (int_bound (nregs - 1)) (gen_operand nregs))
            (gen_operand nregs) );
        ( 2,
          map2 (fun d s -> Ptx.Instr.Mov (d, s)) (int_bound (nregs - 1))
            (gen_operand nregs) );
        ( 2,
          map3
            (fun (c, ty) p (a, b) -> Ptx.Instr.Setp (c, ty, p, a, b))
            (pair (oneofl [ Eq; Ne; Lt; Le; Gt; Ge ]) (oneofl [ S32; U32; S64; F32 ]))
            (int_bound (npregs - 1))
            (pair (gen_operand nregs) (gen_operand nregs)) );
        ( 1,
          map3
            (fun d a off -> Ptx.Instr.Ld (Global, U32, d, { abase = a; aoffset = off }))
            (int_bound (nregs - 1))
            (gen_operand nregs) (int_bound 64) );
        ( 1,
          map2
            (fun a v -> Ptx.Instr.St (Global, F32, { abase = a; aoffset = 0 }, v))
            (gen_operand nregs) (gen_operand nregs) ) ]
  in
  let nregs = 8 and npregs = 2 in
  map
    (fun instrs ->
      let body = Array.of_list (instrs @ [ Ptx.Instr.Exit ]) in
      Ptx.Kernel.validate
        (Ptx.Kernel.create ~name:"rand" ~params:[] ~nregs ~npregs
           ~smem_bytes:0 body))
    (list_size (int_range 1 30) (gen_instr nregs npregs))

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"printer/parser round-trip (random kernels)"
    (QCheck.make gen_kernel)
    (fun k ->
      let text = Ptx.Kernel.to_string k in
      let k2 = Ptx.Parse.kernel_of_string text in
      Ptx.Kernel.to_string k2 = text)

(* ---------- CFG and dominators ---------- *)

let diamond_kernel () =
  (* if p then x=1 else x=2; exit — classic diamond *)
  let body =
    [| Ptx.Instr.Setp (Lt, S32, 0, Sreg (Tid X), Imm 16L) (* 0 *);
       Ptx.Instr.Bra (Some (true, 0), "THEN") (* 1 *);
       Ptx.Instr.Mov (0, Imm 2L) (* 2 *);
       Ptx.Instr.Bra (None, "JOIN") (* 3 *);
       Ptx.Instr.Label "THEN" (* 4 *);
       Ptx.Instr.Mov (0, Imm 1L) (* 5 *);
       Ptx.Instr.Label "JOIN" (* 6 *);
       Ptx.Instr.Exit (* 7 *)
    |]
  in
  Ptx.Kernel.validate
    (Ptx.Kernel.create ~name:"diamond" ~params:[] ~nregs:1 ~npregs:1
       ~smem_bytes:0 body)

let test_cfg_diamond () =
  let k = diamond_kernel () in
  let cfg = Ptx.Cfg.build k in
  Alcotest.(check int) "4 blocks" 4 (Ptx.Cfg.nblocks cfg);
  let entry = Ptx.Cfg.block cfg 0 in
  Alcotest.(check int) "entry has 2 successors" 2
    (List.length entry.Ptx.Cfg.succs);
  let join = Ptx.Cfg.block_of_pc cfg 6 in
  Alcotest.(check int) "join has 2 preds" 2
    (List.length (Ptx.Cfg.block cfg join).Ptx.Cfg.preds)

let test_reconvergence_diamond () =
  let k = diamond_kernel () in
  let cfg = Ptx.Cfg.build k in
  let pdom = Ptx.Dom.post_dominators cfg in
  match Ptx.Dom.reconvergence_pc cfg pdom 1 with
  | Some pc ->
      Alcotest.(check int) "reconverges at JOIN label" 6 pc
  | None -> Alcotest.fail "expected reconvergence point"

let test_dominators_diamond () =
  let k = diamond_kernel () in
  let cfg = Ptx.Cfg.build k in
  let dom = Ptx.Dom.dominators cfg in
  (* entry dominates everything *)
  for b = 0 to Ptx.Cfg.nblocks cfg - 1 do
    Alcotest.(check bool) "entry dominates" true (Ptx.Dom.dominates dom 0 b)
  done;
  (* neither branch arm dominates the join *)
  let join = Ptx.Cfg.block_of_pc cfg 6 in
  let then_ = Ptx.Cfg.block_of_pc cfg 5 in
  let else_ = Ptx.Cfg.block_of_pc cfg 2 in
  Alcotest.(check bool) "then arm does not dominate join" false
    (Ptx.Dom.dominates dom then_ join);
  Alcotest.(check bool) "else arm does not dominate join" false
    (Ptx.Dom.dominates dom else_ join)

let loop_kernel () =
  let b = B.create ~name:"loop" ~params:[ u32 "n" ] () in
  let n = B.ld_param b "n" in
  let acc = B.fresh_reg b in
  B.emit b (Ptx.Instr.Mov (acc, Imm 0L));
  B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun i ->
      B.emit b (Ptx.Instr.Iop (Add, acc, Reg acc, i)));
  B.finish b

let test_loop_cfg () =
  let k = loop_kernel () in
  let cfg = Ptx.Cfg.build k in
  (* the loop head must have two predecessors: entry and the back edge *)
  let has_back_edge =
    Array.exists
      (fun blk ->
        List.exists (fun s -> s <= blk.Ptx.Cfg.bid) blk.Ptx.Cfg.succs)
      cfg.Ptx.Cfg.blocks
  in
  Alcotest.(check bool) "has a back edge" true has_back_edge;
  (* reverse postorder visits every reachable block exactly once *)
  let rpo = Ptx.Cfg.reverse_postorder cfg in
  Alcotest.(check int) "rpo covers all blocks"
    (Ptx.Cfg.nblocks cfg) (List.length rpo);
  Alcotest.(check int) "rpo unique"
    (List.length rpo)
    (List.length (List.sort_uniq compare rpo))

(* dominator sanity on random CFGs derived from random kernels with
   branches *)
let gen_branchy_kernel =
  let open QCheck.Gen in
  map
    (fun choices ->
      let b = B.create ~name:"branchy" ~params:[ u32 "n" ] () in
      let n = B.ld_param b "n" in
      List.iteri
        (fun idx choice ->
          let p = B.setp b Lt B.tid_x n in
          match choice mod 3 with
          | 0 -> B.if_ b p (fun () -> ignore (B.add b B.tid_x (B.int idx)))
          | 1 ->
              B.if_not b p (fun () ->
                  ignore (B.mul b B.tid_x (B.int (idx + 1))))
          | _ ->
              B.for_loop b ~init:(B.int 0) ~bound:(B.int (1 + (idx mod 3)))
                ~step:(B.int 1) (fun i -> ignore (B.add b i (B.int 1))))
        choices;
      B.finish b)
    (list_size (int_range 1 6) (int_bound 2))

let prop_dominator_sanity =
  QCheck.Test.make ~count:100 ~name:"dominator properties (random CFGs)"
    (QCheck.make gen_branchy_kernel)
    (fun k ->
      let cfg = Ptx.Cfg.build k in
      let dom = Ptx.Dom.dominators cfg in
      let ok = ref true in
      (* every reachable block is dominated by the entry, and idom is a
         strict dominator *)
      List.iter
        (fun b ->
          if not (Ptx.Dom.dominates dom 0 b) then ok := false;
          match Ptx.Dom.idom dom b with
          | Some i ->
              if not (Ptx.Dom.dominates dom i b) then ok := false;
              if i = b then ok := false
          | None -> if b <> 0 then ok := false)
        (Ptx.Cfg.reverse_postorder cfg);
      !ok)

let prop_branches_have_reconvergence =
  QCheck.Test.make ~count:100
    ~name:"builder if/loop branches reconverge before exit"
    (QCheck.make gen_branchy_kernel)
    (fun k ->
      let cfg = Ptx.Cfg.build k in
      let pdom = Ptx.Dom.post_dominators cfg in
      let ok = ref true in
      Array.iteri
        (fun pc instr ->
          match instr with
          | Ptx.Instr.Bra (Some _, _) ->
              (* structured guards from the builder always reconverge *)
              if Ptx.Dom.reconvergence_pc cfg pdom pc = None then ok := false
          | _ -> ())
        k.Ptx.Kernel.body;
      !ok)

(* Parse errors carry the 1-based source line and the offending token,
   even with comments and blank lines above the bad line. *)
let test_parse_error_line_numbers () =
  let text =
    String.concat "\n"
      [ ".kernel k (.param .u64 a)";
        "// a comment line";
        ".reg 4 .pred 1 .shared 0";
        "{";
        "";
        "  mov %r0, %r1;";
        "  mov %bogus, %r0;";
        "  exit;";
        "}" ]
  in
  match Ptx.Parse.kernel_of_string text with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Ptx.Parse.Error msg ->
      let contains sub =
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        if not (go 0) then
          Alcotest.failf "error %S does not mention %S" msg sub
      in
      contains "line 7";
      contains "%bogus"

let tests =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basic;
    Alcotest.test_case "parse error: line number + token" `Quick
      test_parse_error_line_numbers;
    Alcotest.test_case "validation: bad label" `Quick
      test_validation_catches_bad_label;
    Alcotest.test_case "validation: bad register" `Quick
      test_validation_catches_bad_register;
    Alcotest.test_case "validation: missing exit" `Quick
      test_validation_requires_exit;
    Alcotest.test_case "validation: duplicate label" `Quick
      test_duplicate_label_rejected;
    Alcotest.test_case "def/use sets" `Quick test_defs_uses;
    Alcotest.test_case "round-trip: handwritten kernel" `Quick
      test_roundtrip_handwritten;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "cfg: diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "reconvergence: diamond" `Quick
      test_reconvergence_diamond;
    Alcotest.test_case "dominators: diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "cfg: loop back edge + rpo" `Quick test_loop_cfg;
    QCheck_alcotest.to_alcotest prop_dominator_sanity;
    QCheck_alcotest.to_alcotest prop_branches_have_reconvergence;
  ]

let () = Alcotest.run "ptx" [ ("ptx", tests) ]
