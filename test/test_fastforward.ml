(* Fast-forward equivalence: the event-driven quiescence jump in the
   cycle simulator must be observably invisible.  For every app of the
   suite, a fast-forwarded run must produce a byte-identical Stats.t
   JSON document and an identical trace event stream compared to the
   naive cycle-by-cycle loop — including under truncation caps and
   with tracing disabled (where jumps are not pinned to occupancy
   sample boundaries). *)

module R = Critload.Runner
module Json = Gsim.Stats_io.Json

let cap_cfg =
  Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:6_000 ()

let stats_bytes (s : Gsim.Stats.t) =
  Json.to_string (Gsim.Stats_io.stats_to_json s)

let ok = function Ok r -> r | Error e -> raise (Gsim.Sim_error.Error e)

(* One timing run; returns the stats document and a digest of the full
   trace event stream (each event rendered to its JSON line). *)
let run_traced ~fast_forward ~cfg app =
  let buf = Buffer.create (1 lsl 16) in
  let trace =
    Gsim.Trace.stream (fun ev ->
        Buffer.add_string buf (Json.to_string (Gsim.Trace.event_to_json ev));
        Buffer.add_char buf '\n')
  in
  let r =
    ok
      (R.run ~cfg ~scale:Workloads.App.Small ~warmup:false ~trace
         ~fast_forward app)
  in
  ( stats_bytes (R.Report.stats_exn r),
    Digest.to_hex (Digest.string (Buffer.contents buf)) )

let check_app name =
  let app = Workloads.Suite.find name in
  let s_naive, t_naive = run_traced ~fast_forward:false ~cfg:cap_cfg app in
  let s_fast, t_fast = run_traced ~fast_forward:true ~cfg:cap_cfg app in
  Alcotest.(check string) (name ^ ": stats bytes identical") s_naive s_fast;
  Alcotest.(check string) (name ^ ": trace digest identical") t_naive t_fast

(* Untraced: jumps are not capped at occupancy boundaries, a different
   code path than the traced case above. *)
let run_untraced ~fast_forward ~cfg app =
  let r =
    ok (R.run ~cfg ~scale:Workloads.App.Small ~warmup:false ~fast_forward app)
  in
  stats_bytes (R.Report.stats_exn r)

let test_untraced () =
  List.iter
    (fun name ->
      let app = Workloads.Suite.find name in
      Alcotest.(check string)
        (name ^ ": untraced stats identical")
        (run_untraced ~fast_forward:false ~cfg:cap_cfg app)
        (run_untraced ~fast_forward:true ~cfg:cap_cfg app))
    [ "2mm"; "bfs"; "spmv" ]

(* A cycle cap must truncate both loops at the identical cycle. *)
let test_truncation () =
  let cfg =
    Gsim.Config.default
    |> Gsim.Config.with_caps ~max_warp_insts:0 ~max_cycles:3_000 ()
  in
  let app = Workloads.Suite.find "gaus" in
  let naive = run_untraced ~fast_forward:false ~cfg app in
  let fast = run_untraced ~fast_forward:true ~cfg app in
  Alcotest.(check string) "truncated stats identical" naive fast;
  let r =
    ok
      (R.run ~cfg ~scale:Workloads.App.Small ~warmup:false ~fast_forward:true
         app)
  in
  Alcotest.(check bool) "run was truncated" true
    (R.Report.stats_exn r).Gsim.Stats.truncated

(* The warmup pre-pass (functional skip to the first heavy launch)
   composes with fast-forward. *)
let test_with_warmup () =
  let app = Workloads.Suite.find "bfs" in
  let one ff =
    let r =
      ok
        (R.run ~cfg:cap_cfg ~scale:Workloads.App.Small ~warmup:true
           ~fast_forward:ff app)
    in
    stats_bytes (R.Report.stats_exn r)
  in
  Alcotest.(check string) "warmup + fast-forward identical" (one false)
    (one true)

(* The unified entry point defaults to fast-forward and reports the
   same statistics. *)
let test_runner_report () =
  let app = Workloads.Suite.find "2mm" in
  let via_run =
    match R.run ~cfg:cap_cfg ~scale:Workloads.App.Small ~warmup:false app with
    | Ok rep -> stats_bytes (R.Report.stats_exn rep)
    | Error e -> Alcotest.failf "run failed: %s" (Gsim.Sim_error.to_string e)
  in
  Alcotest.(check string) "Runner.run = naive cycle loop"
    (run_untraced ~fast_forward:false ~cfg:cap_cfg app)
    via_run;
  match R.run ~mode:R.Func ~scale:Workloads.App.Small app with
  | Error e -> Alcotest.failf "func run failed: %s" (Gsim.Sim_error.to_string e)
  | Ok rep ->
      let f = R.Report.func_exn rep in
      Alcotest.(check bool) "func report verified" true f.R.fr_check;
      Alcotest.(check bool) "func report has no stats" true
        (rep.R.Report.stats = None)

let all_apps_cases =
  List.map
    (fun (a : Workloads.App.t) ->
      let name = a.Workloads.App.name in
      Alcotest.test_case name `Slow (fun () -> check_app name))
    Workloads.Suite.all

let () =
  Alcotest.run "fastforward"
    [
      ("equivalence", all_apps_cases);
      ( "edge-cases",
        [
          Alcotest.test_case "untraced" `Slow test_untraced;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "warmup" `Slow test_with_warmup;
          Alcotest.test_case "runner-report" `Quick test_runner_report;
        ] );
    ]
