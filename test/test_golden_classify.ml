(* Golden static-classification table: the exact deterministic (D) and
   non-deterministic (N) global-load instruction counts of every
   workload app, locked in one table-driven test so a classifier
   regression is caught per-app instead of via downstream timing drift.

   Counts are static (per distinct kernel, summed over the kernels each
   app launches at Small scale); they do not depend on the dataset, only
   on the kernel code and the classifier. *)

module App = Workloads.App

(* unchecked functional run through the unified entry point *)
let run_func app scale =
  match
    Critload.Runner.run ~mode:Critload.Runner.Func ~scale ~check:false app
  with
  | Ok r -> Critload.Runner.Report.func_exn r
  | Error e -> raise (Gsim.Sim_error.Error e)

(* (app, static D, static N) *)
let golden =
  [ ("2mm", 2, 0);
    ("gaus", 7, 0);
    ("grm", 7, 0);
    ("lu", 5, 0);
    ("spmv", 2, 3);
    ("htw", 3, 1);
    ("mriq", 5, 0);
    ("dwt", 4, 0);
    ("bpr", 2, 0);
    ("srad", 10, 6);
    ("bfs", 5, 2);
    ("sssp", 3, 4);
    ("ccl", 3, 2);
    ("mst", 6, 10);
    ("mis", 7, 5) ]

let test_counts () =
  Alcotest.(check int)
    "golden table covers the whole suite"
    (List.length Workloads.Suite.all)
    (List.length golden);
  List.iter
    (fun (name, want_d, want_n) ->
      let app = Workloads.Suite.find name in
      let r = run_func app App.Small in
      Alcotest.(check (pair int int))
        (name ^ " static D/N counts")
        (want_d, want_n)
        (r.Critload.Runner.fr_static_d, r.Critload.Runner.fr_static_n))
    golden

(* the JSON classification summary agrees with the golden counts and
   survives a serialization round-trip *)
let test_summary_json_roundtrip () =
  let module Io = Gsim.Stats_io in
  List.iter
    (fun (name, want_d, want_n) ->
      let app = Workloads.Suite.find name in
      let run = app.App.make App.Small in
      let fs = Gsim.Funcsim.create Gsim.Config.default in
      let seen = Hashtbl.create 8 in
      let d = ref 0 and n = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        match run.App.next_launch () with
        | None -> continue_ := false
        | Some launch ->
            (* iterative hosts decide the next launch from simulated
               memory, so each launch must actually execute *)
            Gsim.Funcsim.run_into fs launch;
            let k = launch.Gsim.Launch.kernel in
            if not (Hashtbl.mem seen k.Ptx.Kernel.kname) then begin
              Hashtbl.add seen k.Ptx.Kernel.kname ();
              let summary =
                Io.classify_summary launch.Gsim.Launch.classes
              in
              let json = Io.classify_summary_to_json summary in
              let back = Io.classify_summary_of_json json in
              Alcotest.(check string)
                (name ^ "/" ^ k.Ptx.Kernel.kname ^ " summary round-trip")
                (Io.Json.to_string json)
                (Io.Json.to_string (Io.classify_summary_to_json back));
              d := !d + summary.Io.cy_static_d;
              n := !n + summary.Io.cy_static_n
            end
      done;
      Alcotest.(check (pair int int))
        (name ^ " summary counts match golden")
        (want_d, want_n) (!d, !n))
    golden

let () =
  Alcotest.run "golden_classify"
    [ ( "golden",
        [ Alcotest.test_case "static D/N counts (all 15 apps)" `Quick
            test_counts;
          Alcotest.test_case "classify summary JSON round-trip" `Quick
            test_summary_json_roundtrip ] ) ]
