(* Unit tests for the trace event layer: ring-sink semantics, JSON
   round-trips of every event constructor, the JSONL / Chrome stream
   sinks, the Cache/Simplecache access-counting convention, and an
   end-to-end 2-CTA kernel whose ring-captured event stream must show
   issue -> probe -> return ordering, correct D/N tags, and an MSHR
   merge between distinct CTAs. *)

open Ptx.Types
module B = Ptx.Builder
module Json = Gsim.Stats_io.Json

let d = Dataflow.Classify.Deterministic
let n = Dataflow.Classify.Nondeterministic

(* A cheap distinguishable event for ring bookkeeping tests. *)
let occ c = Gsim.Trace.Ev_occupancy { cycle = c; sm = 0; mshr = 0; ldst_q = 0 }

(* ---------------- sink plumbing ---------------- *)

let test_enabled () =
  Alcotest.(check bool) "null sink disabled" false
    (Gsim.Trace.enabled (Gsim.Trace.null ()));
  Alcotest.(check bool) "ring sink enabled" true
    (Gsim.Trace.enabled (Gsim.Trace.ring_sink ~capacity:4));
  Alcotest.(check bool) "stream sink enabled" true
    (Gsim.Trace.enabled (Gsim.Trace.stream (fun _ -> ())));
  Alcotest.(check bool) "null sink keeps nothing" true
    (let t = Gsim.Trace.null () in
     Gsim.Trace.emit t (occ 1);
     Gsim.Trace.ring_contents t = [] && Gsim.Trace.ring_total t = 0)

let test_ring_wrap () =
  let t = Gsim.Trace.ring_sink ~capacity:2 in
  List.iter (Gsim.Trace.emit t) [ occ 1; occ 2; occ 3 ];
  Alcotest.(check int) "total counts evicted events" 3
    (Gsim.Trace.ring_total t);
  Alcotest.(check bool) "oldest event evicted, order kept" true
    (Gsim.Trace.ring_contents t = [ occ 2; occ 3 ])

let test_stream_sink () =
  let got = ref [] in
  let t = Gsim.Trace.stream (fun e -> got := e :: !got) in
  List.iter (Gsim.Trace.emit t) [ occ 1; occ 2 ];
  Alcotest.(check bool) "stream callback sees every event" true
    (List.rev !got = [ occ 1; occ 2 ])

let test_with_muted () =
  let t = Gsim.Trace.ring_sink ~capacity:8 in
  Gsim.Trace.emit t (occ 1);
  Gsim.Trace.with_muted t (fun () -> Gsim.Trace.emit t (occ 2));
  Gsim.Trace.emit t (occ 3);
  Alcotest.(check bool) "muted emission dropped" true
    (Gsim.Trace.ring_contents t = [ occ 1; occ 3 ]);
  (* the sink must be restored even when the muted section raises *)
  (try
     Gsim.Trace.with_muted t (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "sink restored after exception" true
    (Gsim.Trace.enabled t);
  Gsim.Trace.emit t (occ 4);
  Alcotest.(check int) "post-exception emission recorded" 3
    (Gsim.Trace.ring_total t)

(* ---------------- JSON round-trips ---------------- *)

(* One literal per constructor, with the variant payloads (classes,
   sides, outcomes, directions, levels) spread across them so every
   encoder branch is exercised. *)
let sample_events : Gsim.Trace.event list =
  [
    Gsim.Trace.Ev_load_issue
      { cycle = 5; sm = 1; cta = 3; warp_slot = 2; kernel = "k"; pc = 24;
        cls = d; active = 32; nreq = 4 };
    Gsim.Trace.Ev_load_issue
      { cycle = 6; sm = 0; cta = 0; warp_slot = 0; kernel = "k2"; pc = 40;
        cls = n; active = 7; nreq = 1 };
    Gsim.Trace.Ev_load_return
      { cycle = 209; sm = 1; cta = 3; kernel = "k"; pc = 24; cls = d;
        nreq = 4; turnaround = 204; level = Gsim.Request.Lvl_dram };
    Gsim.Trace.Ev_load_return
      { cycle = 12; sm = 0; cta = 0; kernel = "k2"; pc = 40; cls = n;
        nreq = 1; turnaround = 6; level = Gsim.Request.Lvl_l1 };
    Gsim.Trace.Ev_load_return
      { cycle = 90; sm = 2; cta = 1; kernel = "k"; pc = 28; cls = n;
        nreq = 2; turnaround = 80; level = Gsim.Request.Lvl_l2 };
    Gsim.Trace.Ev_access
      { cycle = 6; where = Gsim.Trace.S_l1 0; line = 128;
        src = Gsim.Trace.A_load d; outcome = Gsim.Cache.Hit };
    Gsim.Trace.Ev_access
      { cycle = 7; where = Gsim.Trace.S_l2 3; line = 256;
        src = Gsim.Trace.A_load n; outcome = Gsim.Cache.Hit_reserved };
    Gsim.Trace.Ev_access
      { cycle = 8; where = Gsim.Trace.S_l1 1; line = 0;
        src = Gsim.Trace.A_store; outcome = Gsim.Cache.Miss };
    Gsim.Trace.Ev_access
      { cycle = 9; where = Gsim.Trace.S_l1 2; line = 384;
        src = Gsim.Trace.A_prefetch;
        outcome = Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_tags };
    Gsim.Trace.Ev_access
      { cycle = 10; where = Gsim.Trace.S_l1 0; line = 512;
        src = Gsim.Trace.A_load d;
        outcome = Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr };
    Gsim.Trace.Ev_access
      { cycle = 11; where = Gsim.Trace.S_l2 0; line = 640;
        src = Gsim.Trace.A_load n;
        outcome = Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_icnt };
    Gsim.Trace.Ev_mshr_alloc
      { cycle = 12; where = Gsim.Trace.S_l1 2; line = 768; cta = 5 };
    Gsim.Trace.Ev_mshr_merge
      { cycle = 13; where = Gsim.Trace.S_l2 1; line = 768; cta = 4;
        owner_cta = 7 };
    Gsim.Trace.Ev_mshr_free
      { cycle = 14; where = Gsim.Trace.S_l1 0; line = 768; waiters = 3 };
    Gsim.Trace.Ev_icnt_enq
      { cycle = 15; dir = Gsim.Trace.Dir_req; sm = 1; part = 2; line = 896 };
    Gsim.Trace.Ev_icnt_deq
      { cycle = 16; dir = Gsim.Trace.Dir_resp; sm = 1; part = 2; line = 896 };
    Gsim.Trace.Ev_dram_enq { cycle = 17; part = 0; line = 1024; write = true };
    Gsim.Trace.Ev_dram_enq { cycle = 18; part = 1; line = 1152; write = false };
    Gsim.Trace.Ev_dram_deq { cycle = 19; part = 0; line = 1024 };
    Gsim.Trace.Ev_occupancy { cycle = 256; sm = 9; mshr = 17; ldst_q = 3 };
  ]

let test_json_roundtrip () =
  List.iter
    (fun ev ->
      let back = Gsim.Trace.event_of_json (Gsim.Trace.event_to_json ev) in
      Alcotest.(check bool)
        ("round-trips: " ^ Json.to_string (Gsim.Trace.event_to_json ev))
        true (back = ev))
    sample_events

let read_whole file =
  let ic = open_in file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_jsonl_sink () =
  let file = Filename.temp_file "trace" ".jsonl" in
  let oc = open_out file in
  let t = Gsim.Trace.jsonl_sink oc in
  List.iter (Gsim.Trace.emit t) sample_events;
  close_out oc;
  let back =
    String.split_on_char '\n' (read_whole file)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l -> Gsim.Trace.event_of_json (Json.of_string l))
  in
  Sys.remove file;
  Alcotest.(check int) "one line per event" (List.length sample_events)
    (List.length back);
  Alcotest.(check bool) "jsonl stream round-trips" true (back = sample_events)

let test_chrome_sink () =
  let file = Filename.temp_file "trace" ".json" in
  let oc = open_out file in
  let t, close_trace = Gsim.Trace.chrome_sink oc in
  List.iter (Gsim.Trace.emit t) sample_events;
  close_trace ();
  close_out oc;
  let doc = Json.of_string (read_whole file) in
  Sys.remove file;
  match doc with
  | Json.Arr items ->
      Alcotest.(check int) "one trace_event per emitted event"
        (List.length sample_events) (List.length items);
      Alcotest.(check bool) "every entry carries a phase tag" true
        (List.for_all
           (fun it ->
             match Json.member "ph" it with Json.Str _ -> true | _ -> false)
           items)
  | _ -> Alcotest.fail "chrome output is not a JSON array"

(* ---------------- access-counting convention ---------------- *)

(* Cache.completed_accesses and Simplecache.accesses must agree on what
   an "access" is: each logical access once — reservation failures are
   retried probe cycles, not extra accesses.  Regression for the
   MSHR-full-then-retry path, where the in-flight cache used to count
   the failed probe too. *)
let test_completed_accesses_convention () =
  let c =
    Gsim.Cache.create ~sets:2 ~ways:2 ~line_size:128 ~mshr_entries:1
      ~mshr_max_merge:4
  in
  let req line =
    Gsim.Request.make ~cta:(-1) ~line_addr:line ~sm_id:0
      ~kind:Gsim.Request.Load ~cls:d ~wl:None ~now:0
  in
  (* miss A; merge A; B fails twice on the single busy MSHR; after the
     fill B's retry misses; A hits: 4 completed accesses, 6 probes *)
  assert (Gsim.Cache.access_load c ~req:(req 0) ~icnt_ok:true = Gsim.Cache.Miss);
  assert (
    Gsim.Cache.access_load c ~req:(req 0) ~icnt_ok:true
    = Gsim.Cache.Hit_reserved);
  assert (
    Gsim.Cache.access_load c ~req:(req 128) ~icnt_ok:true
    = Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr);
  assert (
    Gsim.Cache.access_load c ~req:(req 128) ~icnt_ok:true
    = Gsim.Cache.Rsrv_fail Gsim.Cache.Fail_mshr);
  ignore (Gsim.Cache.fill c ~line_addr:0);
  assert (
    Gsim.Cache.access_load c ~req:(req 128) ~icnt_ok:true = Gsim.Cache.Miss);
  assert (Gsim.Cache.access_load c ~req:(req 0) ~icnt_ok:true = Gsim.Cache.Hit);
  Alcotest.(check int) "retried probes are not extra accesses" 4
    (Gsim.Cache.completed_accesses c);
  (* the serial cache sees the same logical access sequence (a merge
     resolves immediately there, as a hit) *)
  let sc = Gsim.Simplecache.create ~sets:2 ~ways:2 ~line_size:128 in
  List.iter (fun l -> ignore (Gsim.Simplecache.access sc l)) [ 0; 0; 128; 0 ];
  Alcotest.(check int) "simplecache counts each access once" 4
    (Gsim.Simplecache.accesses sc)

(* ---------------- end-to-end: 2 CTAs, one D and one N load ---------------- *)

(* Each warp performs a deterministic load a[tid.x] (both CTAs touch
   the same line -> inter-CTA MSHR merge on the shared SM) and a
   data-dependent load b[v] whose address comes from the first load's
   value (classified non-deterministic). *)
let traced_kernel () =
  let b =
    B.create ~name:"tk"
      ~params:
        [ Workloads.Kutil.u64 "a"; Workloads.Kutil.u64 "b";
          Workloads.Kutil.u64 "c" ]
      ()
  in
  let ap = B.ld_param b "a" in
  let bp = B.ld_param b "b" in
  let cp = B.ld_param b "c" in
  let v = B.ld b Global U32 (B.at b ~base:ap ~scale:4 B.tid_x) in
  let w = B.ld b Global U32 (B.at b ~base:bp ~scale:4 v) in
  let gtid = B.global_tid b in
  B.st b Global U32 (B.at b ~base:cp ~scale:4 gtid) w;
  B.finish b

let mk_launch () =
  let kernel = traced_kernel () in
  let global = Gsim.Mem.create (1 lsl 16) in
  for i = 0 to 31 do
    Gsim.Mem.set_u32 global (4 * i) (i land 7)
  done;
  Gsim.Launch.create ~kernel ~grid:(2, 1, 1) ~block:(32, 1, 1)
    ~params:[ ("a", 0L); ("b", 4096L); ("c", 8192L) ]
    ~global

(* One SM so both CTAs are co-resident and share an L1. *)
let e2e_cfg = Gsim.Config.default |> Gsim.Config.with_n_sms 1

let test_e2e_event_stream () =
  let trace = Gsim.Trace.ring_sink ~capacity:65536 in
  let machine = Gsim.Gpu.run ~cfg:e2e_cfg ~trace (mk_launch ()) in
  let evs = Gsim.Trace.ring_contents trace in
  Alcotest.(check int) "nothing wrapped" (Gsim.Trace.ring_total trace)
    (List.length evs);
  let indexed = List.mapi (fun i e -> (i, e)) evs in
  let issues =
    List.filter_map
      (function
        | i, Gsim.Trace.Ev_load_issue { cta; pc; cls; active; _ } ->
            Some (i, cta, pc, cls, active)
        | _ -> None)
      indexed
  in
  let returns =
    List.filter_map
      (function
        | i, Gsim.Trace.Ev_load_return { cta; pc; cls; turnaround; _ } ->
            Some (i, cta, pc, cls, turnaround)
        | _ -> None)
      indexed
  in
  (* 2 CTAs x (one D load + one N load) *)
  Alcotest.(check int) "4 warp loads issued" 4 (List.length issues);
  Alcotest.(check int) "4 warp loads returned" 4 (List.length returns);
  let d_issues = List.filter (fun (_, _, _, c, _) -> c = d) issues in
  let n_issues = List.filter (fun (_, _, _, c, _) -> c = n) issues in
  Alcotest.(check int) "2 deterministic issues" 2 (List.length d_issues);
  Alcotest.(check int) "2 non-deterministic issues" 2 (List.length n_issues);
  let ctas l = List.map (fun (_, cta, _, _, _) -> cta) l |> List.sort compare in
  Alcotest.(check (list int)) "D issues from both CTAs" [ 0; 1 ]
    (ctas d_issues);
  Alcotest.(check (list int)) "N issues from both CTAs" [ 0; 1 ]
    (ctas n_issues);
  let pc_of l = match l with (_, _, pc, _, _) :: _ -> pc | [] -> -1 in
  let d_pc = pc_of d_issues and n_pc = pc_of n_issues in
  Alcotest.(check bool) "both CTAs issue the D load from one pc" true
    (List.for_all (fun (_, _, pc, _, _) -> pc = d_pc) d_issues);
  Alcotest.(check bool) "both CTAs issue the N load from one pc" true
    (List.for_all (fun (_, _, pc, _, _) -> pc = n_pc) n_issues);
  Alcotest.(check bool) "distinct pcs for D and N loads" true (d_pc <> n_pc);
  Alcotest.(check bool) "all 32 lanes active" true
    (List.for_all (fun (_, _, _, _, a) -> a = 32) issues);
  (* ordering per CTA: D issue < N issue (data dependency), and every
     issue precedes its return *)
  let idx_of l cta pc =
    match
      List.find_opt (fun (_, c, p, _, _) -> c = cta && p = pc) l
    with
    | Some (i, _, _, _, _) -> i
    | None -> Alcotest.fail "missing event"
  in
  List.iter
    (fun cta ->
      let di = idx_of issues cta d_pc and ni = idx_of issues cta n_pc in
      let dr = idx_of returns cta d_pc and nr = idx_of returns cta n_pc in
      Alcotest.(check bool) "D value feeds the N address" true (di < ni);
      Alcotest.(check bool) "D issue precedes its return" true (di < dr);
      Alcotest.(check bool) "N issue precedes its return" true (ni < nr))
    [ 0; 1 ];
  Alcotest.(check bool) "turnarounds are positive" true
    (List.for_all (fun (_, _, _, _, ta) -> ta > 0) returns);
  (* both CTAs read the same a[] line: the second probe merges into the
     first CTA's in-flight MSHR entry, so the merge event must carry
     two distinct CTA ids *)
  let l1_merges =
    List.filter_map
      (function
        | Gsim.Trace.Ev_mshr_merge
            { where = Gsim.Trace.S_l1 0; cta; owner_cta; _ } ->
            Some (cta, owner_cta)
        | _ -> None)
      evs
  in
  Alcotest.(check bool) "an inter-CTA L1 merge happened" true
    (List.exists
       (fun (cta, owner) ->
         cta <> owner && cta >= 0 && owner >= 0 && cta <= 1 && owner <= 1)
       l1_merges);
  let l1_outcomes =
    List.filter_map
      (function
        | Gsim.Trace.Ev_access
            { where = Gsim.Trace.S_l1 0; src = Gsim.Trace.A_load c; outcome;
              _ } ->
            Some (c, outcome)
        | _ -> None)
      evs
  in
  Alcotest.(check bool) "the first D probe misses" true
    (List.mem (d, Gsim.Cache.Miss) l1_outcomes);
  Alcotest.(check bool) "the second D probe merges" true
    (List.mem (d, Gsim.Cache.Hit_reserved) l1_outcomes);
  Alcotest.(check bool) "an MSHR allocation carries its CTA" true
    (List.exists
       (function
         | Gsim.Trace.Ev_mshr_alloc { where = Gsim.Trace.S_l1 0; cta; _ } ->
             cta >= 0
         | _ -> false)
       evs);
  Alcotest.(check bool) "occupancy sampled" true
    (List.exists
       (function Gsim.Trace.Ev_occupancy _ -> true | _ -> false)
       evs);
  (* tracing must not perturb the simulation: identical run, null sink *)
  let m0 = Gsim.Gpu.run ~cfg:e2e_cfg (mk_launch ()) in
  let bytes s = Json.to_string (Gsim.Stats_io.stats_to_json s) in
  Alcotest.(check string) "ring-sink stats byte-identical to untraced"
    (bytes m0.Gsim.Gpu.stats)
    (bytes machine.Gsim.Gpu.stats)

let tests =
  [
    Alcotest.test_case "sinks: enabled / null" `Quick test_enabled;
    Alcotest.test_case "sinks: ring wrap + total" `Quick test_ring_wrap;
    Alcotest.test_case "sinks: stream callback" `Quick test_stream_sink;
    Alcotest.test_case "sinks: with_muted" `Quick test_with_muted;
    Alcotest.test_case "json: every constructor round-trips" `Quick
      test_json_roundtrip;
    Alcotest.test_case "json: jsonl sink" `Quick test_jsonl_sink;
    Alcotest.test_case "json: chrome sink" `Quick test_chrome_sink;
    Alcotest.test_case "cache: completed-access convention" `Quick
      test_completed_accesses_convention;
    Alcotest.test_case "e2e: 2-CTA D/N event stream" `Quick
      test_e2e_event_stream;
  ]

let () = Alcotest.run "trace" [ ("trace", tests) ]
