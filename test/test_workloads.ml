(* Workload-level tests: every application runs to completion under the
   functional simulator at Small scale and passes its host-reference
   check; dataset generators satisfy their structural invariants. *)

module App = Workloads.App
module Dataset = Workloads.Dataset
module Prng = Workloads.Prng

(* ---------------- per-app end-to-end checks ---------------- *)

(* unchecked functional run through the unified entry point *)
let run_func app scale =
  match
    Critload.Runner.run ~mode:Critload.Runner.Func ~scale ~check:false app
  with
  | Ok r -> Critload.Runner.Report.func_exn r
  | Error e -> raise (Gsim.Sim_error.Error e)

let run_app_check (app : App.t) () =
  let run = app.App.make App.Small in
  let launches = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match run.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        incr launches;
        ignore (Gsim.Funcsim.run launch)
  done;
  Alcotest.(check bool)
    (app.App.name ^ " verifies against its host reference")
    true (run.App.check ());
  Alcotest.(check bool) "at least one launch" true (!launches > 0)

let app_tests =
  List.map
    (fun (app : App.t) ->
      Alcotest.test_case app.App.name `Quick (run_app_check app))
    Workloads.Suite.all

(* ---------------- classification expectations ---------------- *)

(* The paper's Fig 1 structure: linear algebra and image processing are
   (almost) fully deterministic; spmv, srad, htw and the graph codes
   carry non-deterministic loads. *)
let expected_has_nondet = function
  | "spmv" | "srad" | "htw" | "bfs" | "sssp" | "ccl" | "mst" | "mis" -> true
  | _ -> false

let test_static_classification () =
  List.iter
    (fun (app : App.t) ->
      let r = run_func app App.Small in
      let has_n = r.Critload.Runner.fr_static_n > 0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s static non-determinism" app.App.name)
        (expected_has_nondet app.App.name)
        has_n;
      Alcotest.(check bool)
        (Printf.sprintf "%s has deterministic loads too" app.App.name)
        true
        (r.Critload.Runner.fr_static_d > 0))
    Workloads.Suite.all

(* ---------------- suite registry ---------------- *)

let test_suite_registry () =
  Alcotest.(check int) "15 applications" 15 (List.length Workloads.Suite.all);
  Alcotest.(check int) "5 linear" 5
    (List.length (Workloads.Suite.by_category App.Linear));
  Alcotest.(check int) "5 image" 5
    (List.length (Workloads.Suite.by_category App.Image));
  Alcotest.(check int) "5 graph" 5
    (List.length (Workloads.Suite.by_category App.Graph));
  Alcotest.(check bool) "find works" true
    ((Workloads.Suite.find "bfs").App.name = "bfs");
  Alcotest.check_raises "unknown app"
    (Invalid_argument
       "Suite.find: unknown application nope (have: 2mm, gaus, grm, lu, \
        spmv, htw, mriq, dwt, bpr, srad, bfs, sssp, ccl, mst, mis)")
    (fun () -> ignore (Workloads.Suite.find "nope"))

(* ---------------- PRNG ---------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done;
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Prng.next (Prng.create 42) <> Prng.next c)

let prop_prng_int_range =
  QCheck.Test.make ~count:500 ~name:"Prng.int stays in range"
    QCheck.(pair (int_range 1 10_000) small_int)
    (fun (bound, seed) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_prng_float_range =
  QCheck.Test.make ~count:500 ~name:"Prng.float in [0,1)"
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let f = Prng.float rng in
      f >= 0.0 && f < 1.0)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~count:200 ~name:"Prng.shuffle permutes"
    QCheck.(pair small_int (int_range 1 100))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let arr = Array.init n Fun.id in
      Prng.shuffle rng arr;
      let sorted = Array.copy arr in
      Array.sort compare sorted;
      sorted = Array.init n Fun.id)

(* ---------------- dataset invariants ---------------- *)

let csr_well_formed (g : Dataset.csr) =
  let ok = ref (g.Dataset.row_ptr.(0) = 0) in
  for v = 0 to g.Dataset.n_rows - 1 do
    if g.Dataset.row_ptr.(v) > g.Dataset.row_ptr.(v + 1) then ok := false
  done;
  if g.Dataset.row_ptr.(g.Dataset.n_rows) <> g.Dataset.n_edges then ok := false;
  Array.iter
    (fun c -> if c < 0 || c >= g.Dataset.n_rows then ok := false)
    (Array.sub g.Dataset.col_idx 0 g.Dataset.n_edges);
  !ok

let prop_rmat_well_formed =
  QCheck.Test.make ~count:30 ~name:"rmat CSR well-formed"
    QCheck.(pair small_int (int_range 4 9))
    (fun (seed, scale) ->
      let rng = Prng.create seed in
      let g = Dataset.rmat rng ~scale ~edge_factor:4 in
      csr_well_formed g && g.Dataset.n_rows = 1 lsl scale)

let prop_symmetrize_doubles_edges =
  QCheck.Test.make ~count:30 ~name:"symmetrize doubles edge count"
    QCheck.(pair small_int (int_range 8 64))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Dataset.uniform_graph rng ~n ~edge_factor:3 in
      let s = Dataset.symmetrize g in
      csr_well_formed s && s.Dataset.n_edges = 2 * g.Dataset.n_edges)

let prop_relabel_preserves_degree_multiset =
  QCheck.Test.make ~count:30 ~name:"relabel preserves degree multiset"
    QCheck.(pair small_int (int_range 8 64))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Dataset.uniform_graph rng ~n ~edge_factor:3 in
      let r = Dataset.relabel rng g in
      let degrees (x : Dataset.csr) =
        List.sort compare
          (List.init x.Dataset.n_rows (fun v ->
               x.Dataset.row_ptr.(v + 1) - x.Dataset.row_ptr.(v)))
      in
      csr_well_formed r && degrees g = degrees r)

let test_rmat_is_skewed () =
  (* power-law-ish: the max degree should far exceed the average *)
  let rng = Prng.create 99 in
  let g = Dataset.rmat rng ~scale:12 ~edge_factor:8 in
  let max_deg = ref 0 in
  for v = 0 to g.Dataset.n_rows - 1 do
    max_deg := max !max_deg (g.Dataset.row_ptr.(v + 1) - g.Dataset.row_ptr.(v))
  done;
  let avg = g.Dataset.n_edges / g.Dataset.n_rows in
  Alcotest.(check bool)
    (Printf.sprintf "max degree %d >> avg %d" !max_deg avg)
    true
    (!max_deg > 8 * avg)

let test_uniform_is_not_skewed () =
  let rng = Prng.create 99 in
  let g = Dataset.uniform_graph rng ~n:4096 ~edge_factor:8 in
  let max_deg = ref 0 in
  for v = 0 to g.Dataset.n_rows - 1 do
    max_deg := max !max_deg (g.Dataset.row_ptr.(v + 1) - g.Dataset.row_ptr.(v))
  done;
  let avg = g.Dataset.n_edges / g.Dataset.n_rows in
  Alcotest.(check bool)
    (Printf.sprintf "max degree %d stays near avg %d" !max_deg avg)
    true
    (!max_deg < 8 * avg)

(* ---------------- layout allocator ---------------- *)

let test_layout_alignment () =
  let mem = Gsim.Mem.create 4096 in
  let l = Workloads.Layout.create mem in
  let a = Workloads.Layout.alloc l 4 in
  let b = Workloads.Layout.alloc l 130 in
  let c = Workloads.Layout.alloc l 1 in
  Alcotest.(check int) "first at 0" 0 a;
  Alcotest.(check int) "second 128-aligned" 128 b;
  Alcotest.(check int) "third after padded second" 384 c;
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Layout.alloc: 4096 bytes requested, 3584 available")
    (fun () -> ignore (Workloads.Layout.alloc l 4000))

let tests =
  app_tests
  @ [
      Alcotest.test_case "static classification per app" `Quick
        test_static_classification;
      Alcotest.test_case "suite registry" `Quick test_suite_registry;
      Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
      QCheck_alcotest.to_alcotest prop_prng_int_range;
      QCheck_alcotest.to_alcotest prop_prng_float_range;
      QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
      QCheck_alcotest.to_alcotest prop_rmat_well_formed;
      QCheck_alcotest.to_alcotest prop_symmetrize_doubles_edges;
      QCheck_alcotest.to_alcotest prop_relabel_preserves_degree_multiset;
      Alcotest.test_case "rmat degree skew" `Quick test_rmat_is_skewed;
      Alcotest.test_case "uniform graph not skewed" `Quick
        test_uniform_is_not_skewed;
      Alcotest.test_case "layout alignment" `Quick test_layout_alignment;
    ]

let () = Alcotest.run "workloads" [ ("workloads", tests) ]
