(* Interrupting the real CLI binary: `critload sweep` stopped by
   SIGTERM or SIGINT must exit 130, leave a resumable checkpoint and
   no orphaned pool workers; resuming must rebuild the uninterrupted
   document byte-for-byte.  `critload serve` stopped by SIGTERM must
   drain, remove its socket, exit 0, and leave no workers behind.

   Children run via fork+exec as session leaders, so "no orphans"
   is checked the same way as in test_server: after the child exits,
   its process group must be empty. *)

module P = Critload.Parsweep
module Pr = Critload.Protocol
module Json = Gsim.Stats_io.Json
module F = Gsim.Stats_io.Framing

let cli = "../bin/critload_cli.exe"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "critload-shutdown-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rm_rf dir =
  match Sys.readdir dir with
  | files ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        files;
      (try Unix.rmdir dir with _ -> ())
  | exception Sys_error _ -> ()

(* fork+exec the CLI as a session leader, stdout/stderr to [log] *)
let spawn ?(log = "/dev/null") argv =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
      let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Unix.dup2 fd Unix.stdout;
      Unix.dup2 fd Unix.stderr;
      Unix.close fd;
      (try Unix.execv cli argv with _ -> ());
      Unix._exit 127
  | pid -> pid

let wait_exit pid =
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s -> Alcotest.failf "child killed by signal %d" s
  | Unix.WSTOPPED _ -> Alcotest.fail "child stopped"

let assert_no_orphans pid =
  match Unix.kill (-pid) 0 with
  | () -> Alcotest.fail "processes left behind in the child's group"
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ()

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let wait_for ?(timeout = 60.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  while not (pred ()) do
    if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what;
    Unix.sleepf 0.01
  done

(* ---- sweep: interrupt, checkpoint, resume ---- *)

let sweep_args ~out extra =
  Array.of_list
    ([ cli; "sweep"; "--apps"; "2mm,gaus,lu,grm"; "--scale"; "small";
       "--cap"; "40000"; "--no-warmup"; "--no-cache"; "--jobs"; "1";
       "--out"; out ]
    @ extra)

let test_sweep_interrupt signal () =
  let dir = fresh_dir () in
  let out = Filename.concat dir "doc.json" in
  let ckpt = out ^ ".partial" in
  let log = Filename.concat dir "sweep.log" in
  let pid = spawn ~log (sweep_args ~out []) in
  (* interrupt once the first result is checkpointed, mid-sweep *)
  wait_for "the first checkpoint line" (fun () ->
      Sys.file_exists ckpt
      && (try String.index_opt (read_file ckpt) '\n' <> None
          with Sys_error _ -> false));
  Unix.kill pid signal;
  Alcotest.(check int) "interrupted sweep exits 130" 130 (wait_exit pid);
  assert_no_orphans pid;
  Alcotest.(check bool) "no final document yet" false (Sys.file_exists out);
  let settled = P.read_checkpoint ckpt in
  Alcotest.(check bool)
    (Printf.sprintf "checkpoint is parseable and partial (%d entries)"
       (List.length settled))
    true
    (List.length settled >= 1 && List.length settled < 4);
  (* resume to completion *)
  let rpid = spawn ~log:(log ^ ".resume") (sweep_args ~out [ "--resume" ]) in
  Alcotest.(check int) "resumed sweep exits 0" 0 (wait_exit rpid);
  Alcotest.(check bool) "checkpoint superseded by the document" false
    (Sys.file_exists ckpt);
  (* byte-identical to a never-interrupted run *)
  let out2 = Filename.concat dir "clean.json" in
  let cpid = spawn ~log:(log ^ ".clean") (sweep_args ~out:out2 []) in
  Alcotest.(check int) "clean sweep exits 0" 0 (wait_exit cpid);
  Alcotest.(check string) "resumed document byte-identical to clean run"
    (read_file out2) (read_file out);
  rm_rf dir

(* ---- serve: SIGTERM drains and leaves nothing behind ---- *)

let test_serve_sigterm () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "daemon.sock" in
  let log = Filename.concat dir "serve.log" in
  let pid =
    spawn ~log
      [| cli; "serve"; "--socket"; socket; "--jobs"; "2"; "--no-cache";
         "--quiet" |]
  in
  wait_for "the daemon's socket" (fun () -> Sys.file_exists socket);
  (* one in-flight job when the signal lands *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let job =
    P.job
      ~cfg:(Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:80_000 ())
      ~warmup:false "2mm"
  in
  let req =
    F.frame (Pr.request_to_json (Pr.Submit { id = "drain-me"; job }))
  in
  let b = Bytes.of_string req in
  ignore (Unix.write fd b 0 (Bytes.length b));
  Unix.sleepf 0.15;
  Unix.kill pid Sys.sigterm;
  (* the drained job's result still arrives *)
  let split = F.Splitter.create () in
  let buf = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. 60. in
  let rec next_line () =
    match F.Splitter.pop split with
    | Some l -> l
    | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0. then Alcotest.fail "no response before the drain ended";
        (match Unix.select [ fd ] [] [] left with
        | [], _, _ -> Alcotest.fail "no response before the drain ended"
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> Alcotest.fail "daemon closed before answering"
            | n -> F.Splitter.feed split (Bytes.sub_string buf 0 n)));
        next_line ()
  in
  (match Pr.response_of_json (Json.of_string (next_line ())) with
  | Ok (Pr.Result { id = "drain-me"; payload }) ->
      Alcotest.(check string) "drained result byte-identical"
        (Json.to_string (P.exec_job job))
        (Json.to_string payload)
  | Ok r ->
      Alcotest.failf "unexpected response: %s"
        (Json.to_string (Pr.response_to_json r))
  | Error e -> Alcotest.failf "bad response: %s" e);
  Unix.close fd;
  Alcotest.(check int) "daemon exits 0 after draining" 0 (wait_exit pid);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  assert_no_orphans pid;
  rm_rf dir

(* ---- exit codes for usage errors, through the real binary ---- *)

let test_usage_exit_codes () =
  let run argv =
    let pid = spawn (Array.of_list (cli :: argv)) in
    wait_exit pid
  in
  Alcotest.(check int) "unknown app is exit 2 (simulate)" 2
    (run [ "simulate"; "no-such-app" ]);
  Alcotest.(check int) "unknown app is exit 2 (sweep)" 2
    (run [ "sweep"; "--apps"; "no-such-app"; "--out"; "-" ]);
  Alcotest.(check int) "resume without --out FILE is exit 2" 2
    (run [ "sweep"; "--resume"; "--out"; "-" ]);
  Alcotest.(check int) "submit with no daemon is exit 5" 5
    (run [ "submit"; "--socket"; "/nonexistent/nowhere.sock"; "--health" ])

let () =
  Alcotest.run "shutdown"
    [
      ( "sweep",
        [
          Alcotest.test_case "SIGTERM checkpoint + resume" `Slow
            (test_sweep_interrupt Sys.sigterm);
          Alcotest.test_case "SIGINT checkpoint + resume" `Slow
            (test_sweep_interrupt Sys.sigint);
        ] );
      ("serve", [ Alcotest.test_case "SIGTERM drains" `Slow test_serve_sigterm ]);
      ( "exit-codes",
        [ Alcotest.test_case "usage errors" `Quick test_usage_exit_codes ] );
    ]
