(* Cross-cutting integration tests: printer/parser stability over every
   kernel in the suite, classification stability across the
   parse round-trip, the prefetcher ablation's effect, barrier-heavy
   kernels under the cycle simulator, and timing/functional agreement
   on final memory contents. *)

module App = Workloads.App

let kernels_of_app (app : App.t) =
  let run = app.App.make App.Small in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match run.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        let k = launch.Gsim.Launch.kernel in
        if not (Hashtbl.mem seen k.Ptx.Kernel.kname) then begin
          Hashtbl.add seen k.Ptx.Kernel.kname ();
          acc := k :: !acc
        end
  done;
  List.rev !acc

(* Every kernel in the suite survives print -> parse -> print. *)
let test_roundtrip_all_kernels () =
  List.iter
    (fun app ->
      List.iter
        (fun k ->
          let text = Ptx.Kernel.to_string k in
          let k2 = Ptx.Parse.kernel_of_string text in
          Alcotest.(check string)
            (k.Ptx.Kernel.kname ^ " round-trips")
            text
            (Ptx.Kernel.to_string k2))
        (kernels_of_app app))
    Workloads.Suite.all

(* Classification is invariant under the parse round-trip. *)
let test_classification_stable_under_roundtrip () =
  List.iter
    (fun app ->
      List.iter
        (fun k ->
          let before = Dataflow.Classify.count_global (Dataflow.Classify.classify k) in
          let k2 = Ptx.Parse.kernel_of_string (Ptx.Kernel.to_string k) in
          let after = Dataflow.Classify.count_global (Dataflow.Classify.classify k2) in
          Alcotest.(check (pair int int))
            (k.Ptx.Kernel.kname ^ " classification stable")
            before after)
        (kernels_of_app app))
    Workloads.Suite.all

(* The N-load next-line prefetcher reduces the N-class L1 miss ratio on
   spmv, whose edge-array walks are sequential. *)
let test_prefetcher_reduces_misses () =
  let app = Workloads.Suite.find "spmv" in
  let cap = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:40_000 () in
  let run cfg =
    match Critload.Runner.run ~cfg ~scale:App.Small app with
    | Ok r -> Critload.Runner.Report.stats_exn r
    | Error e -> raise (Gsim.Sim_error.Error e)
  in
  let base = run cap in
  let pf = run (cap |> Gsim.Config.with_prefetch_ndet true) in
  let miss s =
    Gsim.Stats.l1_miss_ratio s Dataflow.Classify.Nondeterministic
  in
  Alcotest.(check bool) "prefetches were issued" true
    (pf.Gsim.Stats.prefetches_issued > 0);
  Alcotest.(check bool)
    (Printf.sprintf "N miss ratio reduced (%.3f -> %.3f)" (miss base) (miss pf))
    true
    (miss pf < miss base)

(* bpr's barrier-heavy reduction completes under the cycle simulator
   and produces the same memory image as the functional simulator. *)
let test_barriers_under_cycle_sim () =
  let app = Workloads.Suite.find "bpr" in
  let run1 = app.App.make App.Small in
  let run2 = app.App.make App.Small in
  (* functional *)
  let continue_ = ref true in
  while !continue_ do
    match run1.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Funcsim.run l)
  done;
  (* cycle-level, uncapped *)
  let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:0 () in
  let machine = Gsim.Gpu.create_machine ~cfg () in
  let continue_ = ref true in
  while !continue_ do
    match run2.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Gpu.run_launch machine l)
  done;
  Alcotest.(check bool) "functional result verified" true (run1.App.check ());
  Alcotest.(check bool) "cycle-sim result verified" true (run2.App.check ());
  Alcotest.(check bool) "cycle sim recorded shared loads" true
    (machine.Gsim.Gpu.stats.Gsim.Stats.shared_loads > 0)

(* Timing and functional simulation agree on the final memory for a
   single-kernel deterministic app (dwt). *)
let test_timing_functional_memory_agreement () =
  let app = Workloads.Suite.find "dwt" in
  let run_f = app.App.make App.Small in
  let run_t = app.App.make App.Small in
  let continue_ = ref true in
  while !continue_ do
    match run_f.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Funcsim.run l)
  done;
  let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:0 () in
  let machine = Gsim.Gpu.create_machine ~cfg () in
  let continue_ = ref true in
  while !continue_ do
    match run_t.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Gpu.run_launch machine l)
  done;
  let mf = run_f.App.global and mt = run_t.App.global in
  let n = min (Gsim.Mem.size mf) (Gsim.Mem.size mt) in
  let same = ref true in
  let i = ref 0 in
  while !same && !i < n / 4 do
    if Gsim.Mem.get_u32 mf (4 * !i) <> Gsim.Mem.get_u32 mt (4 * !i) then
      same := false;
    incr i
  done;
  Alcotest.(check bool) "memories identical" true !same

(* Warp splitting preserves results while reducing the per-cycle burst:
   mis must still verify with split8. *)
let test_warp_split_preserves_results () =
  let app = Workloads.Suite.find "mis" in
  let run = app.App.make App.Small in
  let cfg =
    Gsim.Config.default
    |> Gsim.Config.with_caps ~max_warp_insts:0 ()
    |> Gsim.Config.with_warp_split 8
  in
  let machine = Gsim.Gpu.create_machine ~cfg () in
  let continue_ = ref true in
  while !continue_ do
    match run.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Gpu.run_launch machine l)
  done;
  Alcotest.(check bool) "mis verifies under warp splitting" true
    (run.App.check ())

(* GTO warp scheduling changes timing only, never results. *)
let test_gto_preserves_results () =
  let app = Workloads.Suite.find "bfs" in
  let run = app.App.make App.Small in
  let cfg =
    Gsim.Config.default
    |> Gsim.Config.with_caps ~max_warp_insts:0 ()
    |> Gsim.Config.with_warp_sched Gsim.Config.Gto
  in
  let machine = Gsim.Gpu.create_machine ~cfg () in
  let continue_ = ref true in
  while !continue_ do
    match run.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Gpu.run_launch machine l)
  done;
  Alcotest.(check bool) "bfs verifies under GTO" true (run.App.check ())

(* L1 bypass for N loads changes timing only, never results. *)
let test_bypass_preserves_results () =
  let app = Workloads.Suite.find "ccl" in
  let run = app.App.make App.Small in
  let cfg =
    Gsim.Config.default
    |> Gsim.Config.with_caps ~max_warp_insts:0 ()
    |> Gsim.Config.with_bypass_ndet true
  in
  let machine = Gsim.Gpu.create_machine ~cfg () in
  let continue_ = ref true in
  while !continue_ do
    match run.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Gpu.run_launch machine l)
  done;
  Alcotest.(check bool) "ccl verifies under bypass" true (run.App.check ());
  (* bypassed N loads never probe the L1: per-class N access count is 0 *)
  let s = machine.Gsim.Gpu.stats in
  let n = s.Gsim.Stats.per_class.(Gsim.Stats.cls_index Dataflow.Classify.Nondeterministic) in
  Alcotest.(check int) "no N L1 accesses under bypass" 0 n.Gsim.Stats.cs_l1_access;
  Alcotest.(check bool) "but N L2 accesses happened" true (n.Gsim.Stats.cs_l2_access > 0)

(* Prefetch preserves results too. *)
let test_prefetch_preserves_results () =
  let app = Workloads.Suite.find "spmv" in
  let run = app.App.make App.Small in
  let cfg =
    Gsim.Config.default
    |> Gsim.Config.with_caps ~max_warp_insts:0 ()
    |> Gsim.Config.with_prefetch_ndet true
  in
  let machine = Gsim.Gpu.create_machine ~cfg () in
  let continue_ = ref true in
  while !continue_ do
    match run.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Gpu.run_launch machine l)
  done;
  Alcotest.(check bool) "spmv verifies under prefetch" true (run.App.check ())

let tests =
  [
    Alcotest.test_case "round-trip: all suite kernels" `Quick
      test_roundtrip_all_kernels;
    Alcotest.test_case "classification stable under round-trip" `Quick
      test_classification_stable_under_roundtrip;
    Alcotest.test_case "prefetcher reduces N misses (spmv)" `Slow
      test_prefetcher_reduces_misses;
    Alcotest.test_case "barriers under cycle sim (bpr)" `Slow
      test_barriers_under_cycle_sim;
    Alcotest.test_case "timing/functional memory agreement (dwt)" `Slow
      test_timing_functional_memory_agreement;
    Alcotest.test_case "warp splitting preserves results (mis)" `Slow
      test_warp_split_preserves_results;
    Alcotest.test_case "GTO scheduling preserves results (bfs)" `Slow
      test_gto_preserves_results;
    Alcotest.test_case "L1 bypass preserves results (ccl)" `Slow
      test_bypass_preserves_results;
    Alcotest.test_case "prefetch preserves results (spmv)" `Slow
      test_prefetch_preserves_results;
  ]

let () = Alcotest.run "integration" [ ("integration", tests) ]
