(* Tests of the induction/walk detection and the policy advisor. *)

open Ptx.Types
module B = Ptx.Builder
module I = Dataflow.Induction
module A = Critload.Advisor

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }

(* csr-style walk: for e in start..stop: v = vals[e] *)
let walk_kernel () =
  let b = B.create ~name:"walker" ~params:[ u64 "rp"; u64 "vals"; u32 "n" ] () in
  let rp = B.ld_param b "rp" in
  let vp = B.ld_param b "vals" in
  let n = B.ld_param b "n" in
  let row = B.global_tid b in
  let p = B.setp b Lt row n in
  B.if_ b p (fun () ->
      let start = B.ld b Global U32 (B.at b ~base:rp ~scale:4 row) in
      let stop = B.ld b Global U32 (B.at b ~base:rp ~scale:4 (B.add b row (B.int 1))) in
      let acc = Workloads.Kutil.f32_acc b in
      B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun e ->
          let v = B.ld b Global F32 (B.at b ~base:vp ~scale:4 e) in
          B.emit b (Ptx.Instr.Fop (Fadd, F32, acc, Reg acc, v)));
      B.st b Global F32 (B.at b ~base:vp ~scale:4 row) (Reg acc));
  B.finish b

let test_walk_detection () =
  let k = walk_kernel () in
  let walks = I.walking_loads k in
  (* only the vals[e] load walks; the row_ptr loads do not *)
  Alcotest.(check int) "one walking load" 1 (List.length walks);
  Alcotest.(check int) "walk step = 4 bytes" 4
    (List.hd walks).I.w_step

(* pointer bumping: p = p + 8 each iteration *)
let test_pointer_bump_walk () =
  let b = B.create ~name:"bump" ~params:[ u64 "a"; u32 "n" ] () in
  let a = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let ptr = B.fresh_reg b in
  B.emit b (Ptx.Instr.Mov (ptr, a));
  B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun _ ->
      let _v = B.ld b Global U32 (B.addr (Reg ptr)) in
      B.emit b (Ptx.Instr.Iop (Add, ptr, Reg ptr, B.int 8)));
  B.st b Global U32 (B.addr a) (B.int 0);
  let k = B.finish b in
  match I.walking_loads k with
  | [ w ] -> Alcotest.(check int) "bump step 8" 8 w.I.w_step
  | l -> Alcotest.failf "expected one walking load, got %d" (List.length l)

(* a gather a[idx[i]] must NOT be detected as a walk *)
let test_gather_not_walk () =
  let b = B.create ~name:"gather" ~params:[ u64 "idx"; u64 "a"; u32 "n" ] () in
  let ip = B.ld_param b "idx" in
  let a = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun i ->
      let x = B.ld b Global U32 (B.at b ~base:ip ~scale:4 i) in
      let v = B.ld b Global U32 (B.at b ~base:a ~scale:4 x) in
      B.st b Global U32 (B.at b ~base:a ~scale:4 i) v);
  let k = B.finish b in
  let walks = I.walking_loads k in
  (* idx[i] walks (i is the loop induction); a[idx[i]] must not *)
  let gather_pc = List.nth (Ptx.Kernel.global_load_pcs k) 1 in
  Alcotest.(check bool) "gather not a walk" false
    (List.exists (fun w -> w.I.w_pc = gather_pc) walks)

(* ---------------- advisor ---------------- *)

let test_advice_spmv () =
  let advice = A.advise_app (Workloads.Suite.find "spmv") Workloads.App.Small in
  let by pc = List.find (fun la -> la.A.la_pc = pc) advice in
  ignore by;
  (* deterministic loads are left alone *)
  List.iter
    (fun la ->
      if la.A.la_class = Dataflow.Classify.Deterministic then
        Alcotest.(check bool) "D loads left alone" true
          (la.A.la_advice = A.Leave_alone))
    advice;
  (* the vals/col walks get prefetch, the x gather gets split *)
  let prefetches =
    List.filter
      (fun la -> match la.A.la_advice with A.Prefetch_next_line _ -> true | _ -> false)
      advice
  in
  let splits =
    List.filter
      (fun la -> match la.A.la_advice with A.Split_warp _ -> true | _ -> false)
      advice
  in
  Alcotest.(check int) "two walking loads prefetched" 2 (List.length prefetches);
  Alcotest.(check int) "one gather split" 1 (List.length splits)

let test_policies_shape () =
  let advice = A.advise_app (Workloads.Suite.find "bfs") Workloads.App.Small in
  let policies = A.policies advice in
  List.iter
    (fun ((kernel, _), (p : Gsim.Config.load_policy)) ->
      Alcotest.(check bool) "policy belongs to a bfs kernel" true
        (kernel = "bfs_k1" || kernel = "bfs_k2");
      Alcotest.(check bool) "each policy sets exactly one mechanism" true
        (List.length
           (List.filter Fun.id
              [ p.Gsim.Config.lp_prefetch; p.Gsim.Config.lp_split > 0;
                p.Gsim.Config.lp_bypass ])
        = 1))
    policies;
  Alcotest.(check bool) "bfs has overrides" true (List.length policies > 0)

(* advisor-guided run preserves results *)
let test_advisor_preserves_results () =
  let app = Workloads.Suite.find "spmv" in
  let advice = A.advise_app app Workloads.App.Small in
  let run = app.Workloads.App.make Workloads.App.Small in
  let cfg =
    Gsim.Config.default
    |> Gsim.Config.with_caps ~max_warp_insts:0 ()
    |> Gsim.Config.with_pc_policies (A.policies advice)
  in
  let machine = Gsim.Gpu.create_machine ~cfg () in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some l -> ignore (Gsim.Gpu.run_launch machine l)
  done;
  Alcotest.(check bool) "spmv verifies under advisor policies" true
    (run.Workloads.App.check ());
  Alcotest.(check bool) "prefetches fired" true
    (machine.Gsim.Gpu.stats.Gsim.Stats.prefetches_issued > 0)

let tests =
  [
    Alcotest.test_case "csr walk detection" `Quick test_walk_detection;
    Alcotest.test_case "pointer-bump walk" `Quick test_pointer_bump_walk;
    Alcotest.test_case "gather is not a walk" `Quick test_gather_not_walk;
    Alcotest.test_case "spmv advice" `Quick test_advice_spmv;
    Alcotest.test_case "policy shape (bfs)" `Quick test_policies_shape;
    Alcotest.test_case "advisor preserves results" `Slow
      test_advisor_preserves_results;
  ]

let () = Alcotest.run "advisor" [ ("advisor", tests) ]
