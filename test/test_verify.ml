(* Tests for the static kernel verifier (Ptx.Verify + Dataflow.Verify):
   every shipped workload kernel must verify clean, and a table of
   hand-built bad kernels must each produce the expected diagnostic. *)

open Ptx.Types
module Instr = Ptx.Instr
module V = Ptx.Verify

let diag_codes k =
  List.map (fun (d : V.diag) -> d.V.d_code) (Dataflow.Verify.verify_kernel k)

let has_code code k = List.mem code (diag_codes k)

(* ---- golden: the whole suite verifies clean ---- *)

(* Every distinct kernel launched by every workload, at small scale. *)
let suite_kernels () =
  let seen = Hashtbl.create 32 in
  let kernels = ref [] in
  List.iter
    (fun (app : Workloads.App.t) ->
      let run = app.Workloads.App.make Workloads.App.Small in
      let continue_ = ref true in
      while !continue_ do
        match run.Workloads.App.next_launch () with
        | None -> continue_ := false
        | Some launch ->
            let k = launch.Gsim.Launch.kernel in
            if not (Hashtbl.mem seen k.Ptx.Kernel.kname) then begin
              Hashtbl.add seen k.Ptx.Kernel.kname ();
              kernels := k :: !kernels
            end
      done)
    Workloads.Suite.all;
  List.rev !kernels

let test_suite_clean () =
  let kernels = suite_kernels () in
  Alcotest.(check bool) "found a non-trivial kernel set" true
    (List.length kernels >= 15);
  List.iter
    (fun (k : Ptx.Kernel.t) ->
      let diags = Dataflow.Verify.verify_kernel k in
      Alcotest.(check (list string))
        (Printf.sprintf "kernel %s verifies clean" k.Ptx.Kernel.kname)
        []
        (List.map V.to_string diags))
    kernels

(* ---- hand-built bad kernels ---- *)

let mk ?(params = []) ?(nregs = 8) ?(npregs = 4) body =
  (* Kernel.create bypasses Kernel.validate's exceptions so broken
     programs can reach the verifier *)
  Ptx.Kernel.create ~name:"bad" ~params ~nregs ~npregs ~smem_bytes:0
    (Array.of_list body)

let test_use_before_def () =
  let k =
    mk [ Instr.Iop (Add, 0, Reg 1, Imm 1L); Instr.Exit ]
  in
  Alcotest.(check bool) "undefined register flagged" true
    (has_code "use-before-def" k)

let test_use_before_def_pred () =
  let k = mk [ Instr.Bra (Some (true, 0), "l"); Instr.Label "l"; Instr.Exit ] in
  Alcotest.(check bool) "undefined predicate flagged" true
    (has_code "use-before-def" k)

let test_bad_branch_target () =
  let k = mk [ Instr.Bra (None, "nowhere"); Instr.Exit ] in
  Alcotest.(check bool) "unresolved label flagged" true
    (has_code "unknown-label" k)

let test_missing_param () =
  let k = mk [ Instr.Ld_param (0, "missing"); Instr.Exit ] in
  Alcotest.(check bool) "undeclared parameter flagged" true
    (has_code "unknown-param" k)

let test_register_bounds () =
  let k = mk ~nregs:2 [ Instr.Mov (7, Imm 0L); Instr.Exit ] in
  Alcotest.(check bool) "out-of-range register flagged" true
    (has_code "register-bounds" k)

let test_no_exit () =
  let k = mk [ Instr.Mov (0, Imm 0L) ] in
  Alcotest.(check bool) "missing exit flagged" true (has_code "no-exit" k)

let test_unreachable_warns () =
  let k =
    mk
      [ Instr.Bra (None, "l"); Instr.Mov (0, Imm 0L); Instr.Label "l";
        Instr.Exit ]
  in
  let diags = Dataflow.Verify.verify_kernel k in
  Alcotest.(check bool) "dead code warned" true
    (List.exists
       (fun (d : V.diag) ->
         d.V.d_code = "unreachable" && d.V.d_severity = V.Warning)
       diags);
  Alcotest.(check bool) "dead code is not an error" true
    (V.errors diags = [])

let test_float_address () =
  let k =
    mk
      [ Instr.Fop (Fadd, F32, 0, Fimm 1.0, Fimm 2.0);
        Instr.Ld (Global, U32, 1, { abase = Reg 0; aoffset = 0 });
        Instr.Exit ]
  in
  Alcotest.(check bool) "float-valued address base flagged" true
    (has_code "float-address" k)

(* bar.sync inside a tid-guarded arm: part of the warp branches around
   the barrier and the rest waits forever *)
let test_divergent_barrier () =
  let k =
    mk
      [ Instr.Mov (0, Sreg (Tid X));
        Instr.Setp (Eq, U32, 0, Reg 0, Imm 0L);
        Instr.Bra (Some (false, 0), "skip");
        Instr.Bar;
        Instr.Label "skip";
        Instr.Exit ]
  in
  Alcotest.(check bool) "divergent barrier flagged" true
    (has_code "divergent-barrier" k)

(* the same shape with a block-uniform guard (ctaid) is fine *)
let test_uniform_barrier_clean () =
  let k =
    mk
      [ Instr.Mov (0, Sreg (Ctaid X));
        Instr.Setp (Eq, U32, 0, Reg 0, Imm 0L);
        Instr.Bra (Some (false, 0), "skip");
        Instr.Bar;
        Instr.Label "skip";
        Instr.Exit ]
  in
  Alcotest.(check bool) "uniform-guard barrier not flagged" false
    (has_code "divergent-barrier" k);
  (* and a barrier at the reconvergence point is fine even when the
     branch itself diverges *)
  let k2 =
    mk
      [ Instr.Mov (0, Sreg (Tid X));
        Instr.Setp (Eq, U32, 0, Reg 0, Imm 0L);
        Instr.Bra (Some (false, 0), "skip");
        Instr.Mov (1, Imm 1L);
        Instr.Label "skip";
        Instr.Bar;
        Instr.Exit ]
  in
  Alcotest.(check bool) "post-reconvergence barrier not flagged" false
    (has_code "divergent-barrier" k2)

(* structural errors suppress the dataflow pass (whose analyses assume
   in-bounds registers) *)
let test_structural_gates_dataflow () =
  let k = mk ~nregs:1 [ Instr.Iop (Add, 5, Reg 9, Imm 0L); Instr.Exit ] in
  let codes = diag_codes k in
  Alcotest.(check bool) "bounds error reported" true
    (List.mem "register-bounds" codes);
  Alcotest.(check bool) "no dataflow diagnostics alongside" false
    (List.mem "use-before-def" codes)

let () =
  Alcotest.run "verify"
    [
      ( "golden",
        [ Alcotest.test_case "all suite kernels verify clean" `Quick
            test_suite_clean ] );
      ( "bad-kernels",
        [
          Alcotest.test_case "use before def (register)" `Quick
            test_use_before_def;
          Alcotest.test_case "use before def (predicate)" `Quick
            test_use_before_def_pred;
          Alcotest.test_case "bad branch target" `Quick test_bad_branch_target;
          Alcotest.test_case "missing parameter" `Quick test_missing_param;
          Alcotest.test_case "register out of bounds" `Quick
            test_register_bounds;
          Alcotest.test_case "no exit" `Quick test_no_exit;
          Alcotest.test_case "unreachable code warns" `Quick
            test_unreachable_warns;
          Alcotest.test_case "float address base" `Quick test_float_address;
          Alcotest.test_case "divergent barrier" `Quick test_divergent_barrier;
          Alcotest.test_case "uniform barrier clean" `Quick
            test_uniform_barrier_clean;
          Alcotest.test_case "structural gates dataflow" `Quick
            test_structural_gates_dataflow;
        ] );
    ]
