(* Shared digest harness for the perf-lock differential suite.

   One pinned run configuration, used identically by the golden
   generator (gen_perf_lock.ml), the full differential test
   (test_perf_lock.ml), and the @perf-smoke single-app check
   (validate_perf_smoke.ml).  The run exercises the production path —
   fast-forward on, tracing and the profile reducer attached — so the
   digests lock the complete observable surface of the cycle core:

     dg_stats    MD5 of the Stats.t JSON document
     dg_profile  MD5 of the Profile.t JSON document
     dg_trace    MD5 of the full JSONL trace event stream

   The instruction cap keeps a 15-app sweep inside test-suite budgets
   while still driving every app through launch, issue, coalescing,
   L1/MSHR, interconnect, L2 and DRAM paths. *)

module R = Critload.Runner
module Json = Gsim.Stats_io.Json

let cap_cfg =
  Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:6_000 ()

type digests = { dg_stats : string; dg_profile : string; dg_trace : string }

let digest_app (app : Workloads.App.t) =
  let buf = Buffer.create (1 lsl 16) in
  let trace =
    Gsim.Trace.stream (fun ev ->
        Buffer.add_string buf (Json.to_string (Gsim.Trace.event_to_json ev));
        Buffer.add_char buf '\n')
  in
  match
    R.run ~cfg:cap_cfg ~scale:Workloads.App.Small ~warmup:false ~profile:true
      ~trace app
  with
  | Error e ->
      failwith
        (Printf.sprintf "perf_lock: %s failed: %s" app.Workloads.App.name
           (Gsim.Sim_error.to_string e))
  | Ok rep ->
      let stats_doc =
        Json.to_string (Gsim.Stats_io.stats_to_json (R.Report.stats_exn rep))
      in
      let profile_doc =
        match rep.R.Report.profile with
        | Some p -> Json.to_string (Gsim.Profile.to_json p)
        | None -> failwith "perf_lock: profile missing from timing report"
      in
      {
        dg_stats = Digest.to_hex (Digest.string stats_doc);
        dg_profile = Digest.to_hex (Digest.string profile_doc);
        dg_trace = Digest.to_hex (Digest.string (Buffer.contents buf));
      }

(* Parse a golden file: one "<app> <stats> <profile> <trace>" line per
   app; '#' comments and blank lines ignored. *)
let read_golden path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          match String.split_on_char ' ' line with
          | [ app; s; p; t ] ->
              go ((app, { dg_stats = s; dg_profile = p; dg_trace = t }) :: acc)
          | _ ->
              close_in ic;
              failwith
                (Printf.sprintf "perf_lock: malformed golden line: %S" line)
  in
  go []
