(* Validator for the @bench-smoke alias: the CLI runs the same tiny
   sweep twice against one cache directory; the second (warm) run must
   have served every job from the cache — no job may have started a
   simulation — and both output documents must be byte-identical. *)

module Json = Gsim.Stats_io.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let cold = read_file Sys.argv.(1) in
  let warm = read_file Sys.argv.(2) in
  let warm_err = read_file Sys.argv.(3) in
  (* both documents parse and carry the sweep schema *)
  List.iter
    (fun text ->
      if Json.str_field "schema" (Json.of_string text) <> "critload-sweep-v1"
      then begin
        prerr_endline "validate_bench_smoke: unexpected schema tag";
        exit 1
      end)
    [ cold; warm ];
  if cold <> warm then begin
    prerr_endline
      "validate_bench_smoke: warm sweep output differs from cold sweep";
    exit 1
  end;
  (* the warm run's progress log must show cache hits and no fresh
     simulation starts *)
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s
                   && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  if not (contains ~sub:"cached" warm_err) then begin
    prerr_endline "validate_bench_smoke: warm run reported no cache hits";
    exit 1
  end;
  if contains ~sub:"start " warm_err then begin
    prerr_endline "validate_bench_smoke: warm run re-simulated a job";
    exit 1
  end;
  print_endline "validate_bench_smoke: ok (warm run fully cached)"
