(* Golden-digest generator for the perf-lock differential suite.

   Runs every app of the suite through the timing simulator at the
   pinned configuration below and prints one line per app:

     <app> <stats_md5> <profile_md5> <trace_md5>

   The digests cover the full Stats.t JSON document, the Profile.t JSON
   document, and the complete JSONL trace event stream.  The output is
   committed as test/goldens/perf_lock.golden; test_perf_lock re-runs
   the same configuration and asserts byte-identical digests, so any
   core change that perturbs timing — however slightly — fails loudly.

   Regenerate (only when a timing change is *intended* and reviewed):

     dune exec test/gen_perf_lock.exe > test/goldens/perf_lock.golden *)

let () =
  List.iter
    (fun (a : Workloads.App.t) ->
      let name = a.Workloads.App.name in
      let d = Perf_lock.digest_app (Workloads.Suite.find name) in
      Printf.printf "%s %s %s %s\n" name d.Perf_lock.dg_stats
        d.Perf_lock.dg_profile d.Perf_lock.dg_trace)
    Workloads.Suite.all
