(* Tests of the static lane-stride / coalescing predictor, including
   validation of its predictions against measured coalescing from the
   functional simulator. *)

open Ptx.Types
module B = Ptx.Builder
module S = Dataflow.Stride

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }
let f32 n = { Ptx.Kernel.pname = n; pty = F32 }

let prediction =
  Alcotest.testable
    (fun ppf p -> Format.pp_print_string ppf (S.string_of_prediction p))
    ( = )

let predictions k = List.map (fun lp -> lp.S.lp_prediction) (S.predict k)

(* a[tid] with 4-byte elements: textbook coalesced *)
let test_unit_stride () =
  let b = B.create ~name:"unit" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let i = B.global_tid b in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 i) in
  B.st b Global F32 (B.addr a) v;
  Alcotest.(check (list prediction)) "unit stride: one line per warp"
    [ S.Coalesced 1 ]
    (predictions (B.finish b))

(* a[tid * 33]: strided *)
let test_large_stride () =
  let b = B.create ~name:"strided" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let i = B.mul b (B.global_tid b) (B.int 33) in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 i) in
  B.st b Global F32 (B.addr a) v;
  Alcotest.(check (list prediction)) "132-byte stride: one line per lane"
    [ S.Strided 32 ]
    (predictions (B.finish b))

(* a[ctaid.x]: lane-invariant broadcast *)
let test_broadcast () =
  let b = B.create ~name:"bcast" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 B.ctaid_x) in
  B.st b Global F32 (B.addr a) v;
  Alcotest.(check (list prediction)) "broadcast" [ S.Broadcast ]
    (predictions (B.finish b))

(* a[idx[tid]]: the gather is irregular, the index load coalesced *)
let test_gather_irregular () =
  let b = B.create ~name:"gather" ~params:[ u64 "idx"; u64 "a" ] () in
  let ip = B.ld_param b "idx" in
  let a = B.ld_param b "a" in
  let i = B.global_tid b in
  let x = B.ld b Global U32 (B.at b ~base:ip ~scale:4 i) in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 x) in
  B.st b Global F32 (B.addr a) v;
  Alcotest.(check (list prediction)) "index coalesced, gather irregular"
    [ S.Coalesced 1; S.Irregular ]
    (predictions (B.finish b))

(* shl-based scaling: a[tid << 1] in 4-byte elements = 8-byte stride *)
let test_shl_scaling () =
  let b = B.create ~name:"shl" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let i = B.shl b (B.global_tid b) (B.int 1) in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 i) in
  B.st b Global F32 (B.addr a) v;
  Alcotest.(check (list prediction)) "8-byte stride: two lines per warp"
    [ S.Coalesced 2 ]
    (predictions (B.finish b))

(* tid.x - tid.x cancels: broadcast *)
let test_cancellation () =
  let b = B.create ~name:"cancel" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let t = B.global_tid b in
  let z = B.sub b t t in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 z) in
  B.st b Global F32 (B.addr a) v;
  Alcotest.(check (list prediction)) "cancelled stride" [ S.Broadcast ]
    (predictions (B.finish b))

(* loop-carried address: conservatively irregular *)
let test_loop_carried_conservative () =
  let b = B.create ~name:"loopy" ~params:[ u64 "a"; u32 "n" ] () in
  let a = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let acc = Workloads.Kutil.f32_acc b in
  B.for_loop b ~init:(B.global_tid b) ~bound:n ~step:(B.int 32) (fun i ->
      let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 i) in
      B.emit b (Ptx.Instr.Fop (Fadd, F32, acc, Reg acc, v)));
  B.st b Global F32 (B.addr a) (Reg acc);
  match predictions (B.finish b) with
  | [ S.Irregular ] -> ()
  | [ p ] ->
      Alcotest.failf "expected conservative Irregular, got %s"
        (S.string_of_prediction p)
  | _ -> Alcotest.fail "expected one load"

(* Validation against the functional simulator: for every kernel of the
   suite, a load predicted Coalesced(<=8) must measure <= 2 requests
   per fully-active warp; Broadcast must measure 1.  We validate on the
   simple one-launch apps whose per-pc dynamic counts are available. *)
let test_predictions_vs_measurement () =
  (* dwt row pass: every load is Coalesced(8) (two pixels per lane) *)
  let app = Workloads.Suite.find "dwt" in
  let run = app.Workloads.App.make Workloads.App.Small in
  (match run.Workloads.App.next_launch () with
  | Some launch ->
      let k = launch.Gsim.Launch.kernel in
      List.iter
        (fun lp ->
          match lp.S.lp_prediction with
          | S.Coalesced n ->
              Alcotest.(check bool) "dwt loads coalesce into <= 2 lines" true
                (n <= 2)
          | p ->
              Alcotest.failf "dwt load predicted %s"
                (S.string_of_prediction p))
        (S.predict ~block:launch.Gsim.Launch.block k);
      let fs = Gsim.Funcsim.run launch in
      Alcotest.(check bool) "measured requests/warp <= 2" true
        (Gsim.Funcsim.requests_per_warp fs Dataflow.Classify.Deterministic
         <= 2.01)
  | None -> Alcotest.fail "dwt has no launch");
  (* bfs kernel 1: the edge/visited gathers must be Irregular *)
  let app = Workloads.Suite.find "bfs" in
  let run = app.Workloads.App.make Workloads.App.Small in
  match run.Workloads.App.next_launch () with
  | Some launch ->
      let k = launch.Gsim.Launch.kernel in
      let irregular =
        List.filter (fun lp -> lp.S.lp_prediction = S.Irregular) (S.predict k)
      in
      Alcotest.(check int) "bfs k1 has 2 irregular gathers" 2
        (List.length irregular);
      (* the irregular set must coincide with the N classification *)
      let classes = launch.Gsim.Launch.classes in
      List.iter
        (fun lp ->
          Alcotest.(check bool) "irregular loads are non-deterministic" true
            (Dataflow.Classify.class_of_global_load classes lp.S.lp_pc
            = Some Dataflow.Classify.Nondeterministic))
        irregular
  | None -> Alcotest.fail "bfs has no launch"

(* Predicted-coalesced loads across the whole suite must be classified
   deterministic (the converse of the paper's claim: coalescing-by-
   construction implies parameter-only addressing). *)
let test_coalesced_implies_deterministic () =
  List.iter
    (fun (app : Workloads.App.t) ->
      let run = app.Workloads.App.make Workloads.App.Small in
      let continue_ = ref true in
      while !continue_ do
        match run.Workloads.App.next_launch () with
        | None -> continue_ := false
        | Some launch ->
            let k = launch.Gsim.Launch.kernel in
            List.iter
              (fun lp ->
                match lp.S.lp_prediction with
                | S.Coalesced _ | S.Broadcast | S.Strided _ ->
                    Alcotest.(check bool)
                      (Printf.sprintf "%s pc %d: affine implies D"
                         k.Ptx.Kernel.kname lp.S.lp_pc)
                      true
                      (Dataflow.Classify.class_of_global_load
                         launch.Gsim.Launch.classes lp.S.lp_pc
                      = Some Dataflow.Classify.Deterministic)
                | S.Irregular -> ())
              (S.predict k)
      done)
    Workloads.Suite.all

(* laundering a lane-variant value through float ops must not make it
   look uniform *)
let test_float_laundering () =
  let b = B.create ~name:"launder" ~params:[ u64 "a" ] () in
  let a = B.ld_param b "a" in
  let t = B.global_tid b in
  let f = B.cvt b ~dst_ty:F32 ~src_ty:S32 t in
  let f2 = B.fmul b f (B.float 2.0) in
  let i = B.cvt b ~dst_ty:S32 ~src_ty:F32 f2 in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 i) in
  B.st b Global F32 (B.addr a) v;
  match predictions (B.finish b) with
  | [ S.Irregular ] -> ()
  | [ p ] ->
      Alcotest.failf "float-laundered address must be Irregular, got %s"
        (S.string_of_prediction p)
  | _ -> Alcotest.fail "expected one load"

(* but float ops over uniform values stay uniform *)
let test_float_uniform () =
  let b = B.create ~name:"funi" ~params:[ u64 "a"; f32 "s" ] () in
  let a = B.ld_param b "a" in
  let s = B.ld_param b "s" in
  let f2 = B.fmul b s (B.float 2.0) in
  let i = B.cvt b ~dst_ty:S32 ~src_ty:F32 f2 in
  let v = B.ld b Global F32 (B.at b ~base:a ~scale:4 i) in
  B.st b Global F32 (B.addr a) v;
  match predictions (B.finish b) with
  | [ S.Broadcast ] -> ()
  | [ p ] ->
      Alcotest.failf "uniform float address must be Broadcast, got %s"
        (S.string_of_prediction p)
  | _ -> Alcotest.fail "expected one load"

(* Suite-wide validation: every statically predicted coalescing class
   must be consistent with the measured requests-per-warp of that load
   in the functional simulator:
     Broadcast          -> exactly 1 request per warp
     Coalesced (<=8B)   -> at most 2+epsilon requests per warp
     Strided s          -> at most ceil(32*s/128)+1 requests per warp
   (Irregular makes no promise.) *)
let test_predictions_hold_suite_wide () =
  List.iter
    (fun (app : Workloads.App.t) ->
      let run = app.Workloads.App.make Workloads.App.Small in
      let fs = Gsim.Funcsim.create Gsim.Config.default in
      let preds = Hashtbl.create 32 in
      let continue_ = ref true in
      while !continue_ do
        match run.Workloads.App.next_launch () with
        | None -> continue_ := false
        | Some launch ->
            let k = launch.Gsim.Launch.kernel in
            let kname = k.Ptx.Kernel.kname in
            if not (Hashtbl.mem preds kname) then
              Hashtbl.add preds kname
                (S.predict ~block:launch.Gsim.Launch.block k);
            Gsim.Funcsim.run_into fs launch
      done;
      Hashtbl.iter
        (fun kname kernel_preds ->
          List.iter
            (fun (lp : S.load_prediction) ->
              match
                Gsim.Funcsim.requests_per_warp_of_pc fs ~kernel:kname
                  ~pc:lp.S.lp_pc
              with
              | None -> () (* the load never executed *)
              | Some measured -> (
                  let name =
                    Printf.sprintf "%s/%s pc %d (%s): measured %.2f"
                      app.Workloads.App.name kname lp.S.lp_pc
                      (S.string_of_prediction lp.S.lp_prediction)
                      measured
                  in
                  match lp.S.lp_prediction with
                  | S.Broadcast ->
                      Alcotest.(check bool) name true (measured <= 1.01)
                  | S.Coalesced n | S.Strided n ->
                      (* +1 slack: a warp whose base lands mid-line *)
                      Alcotest.(check bool) name true
                        (measured <= float_of_int (n + 1))
                  | S.Irregular -> ()))
            kernel_preds)
        preds)
    Workloads.Suite.all

let tests =
  [
    Alcotest.test_case "predictions hold suite-wide" `Quick
      test_predictions_hold_suite_wide;
    Alcotest.test_case "float laundering stays irregular" `Quick
      test_float_laundering;
    Alcotest.test_case "uniform float stays broadcast" `Quick
      test_float_uniform;
    Alcotest.test_case "unit stride" `Quick test_unit_stride;
    Alcotest.test_case "large stride" `Quick test_large_stride;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "gather irregular" `Quick test_gather_irregular;
    Alcotest.test_case "shl scaling" `Quick test_shl_scaling;
    Alcotest.test_case "term cancellation" `Quick test_cancellation;
    Alcotest.test_case "loop-carried conservative" `Quick
      test_loop_carried_conservative;
    Alcotest.test_case "predictions vs funcsim measurement" `Quick
      test_predictions_vs_measurement;
    Alcotest.test_case "affine implies deterministic (whole suite)" `Quick
      test_coalesced_implies_deterministic;
  ]

let () = Alcotest.run "stride" [ ("stride", tests) ]
