(* Smoke-test validator for `critload sweep` output: parses the JSON
   document back through Stats_io/Parsweep of_json and exits non-zero
   if anything is malformed, failed, or empty.  Driven by the
   runtest-smoke rule in test/dune against a real `sweep --jobs 2`
   invocation of the CLI. *)

module P = Critload.Parsweep
module Json = Gsim.Stats_io.Json

let () =
  let file = Sys.argv.(1) in
  let ic = open_in file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc = Json.of_string text in
  if Json.str_field "schema" doc <> "critload-sweep-v1" then begin
    prerr_endline "validate_sweep: unexpected schema tag";
    exit 1
  end;
  let results = Json.get_list (Json.member "results" doc) in
  if results = [] then begin
    prerr_endline "validate_sweep: empty result set";
    exit 1
  end;
  List.iter
    (fun env ->
      let app = Json.str_field "app" env in
      (match Json.str_field "status" env with
      | "ok" -> ()
      | status ->
          Printf.eprintf "validate_sweep: %s has status %s\n" app status;
          exit 1);
      let result = Json.member "result" env in
      match Json.str_field "mode" env with
      | "timing" ->
          let t = P.timing_summary_of_json result in
          if t.P.tm_stats.Gsim.Stats.cycles <= 0 then begin
            Printf.eprintf "validate_sweep: %s has no cycles\n" app;
            exit 1
          end
      | "func" ->
          let f = P.func_summary_of_json result in
          if not f.P.fu_check then begin
            Printf.eprintf "validate_sweep: %s failed its host check\n" app;
            exit 1
          end
      | mode ->
          Printf.eprintf "validate_sweep: %s has unknown mode %s\n" app mode;
          exit 1)
    results;
  Printf.printf "validate_sweep: %s ok (%d results)\n" file
    (List.length results)
