(* The serve daemon, tested as a real process: the server is forked
   into its own session (so the process group doubles as an orphan
   detector), spoken to over its Unix socket exactly as `critload
   submit` would, and torn down with SIGTERM after every test — exit
   status, socket removal, and an empty process group are asserted
   each time.

   The anchor property throughout: a payload served by the daemon —
   through a cache hit, a cache miss, a crash retry, or chaos — is
   byte-identical to [Parsweep.exec_job] run in this process. *)

module S = Critload.Server
module Pr = Critload.Protocol
module P = Critload.Parsweep
module Json = Gsim.Stats_io.Json
module F = Gsim.Stats_io.Framing

let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:4_000 ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "critload-server-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rm_rf dir =
  match Sys.readdir dir with
  | files ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        files;
      (try Unix.rmdir dir with _ -> ())
  | exception Sys_error _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

(* ---- running a server under test ---- *)

let base_config socket_path =
  { (S.default_config ~socket_path) with S.workers = 2; log = None }

(* Fork the server as a session leader: every process it spawns lives
   in its group, so `kill -pgid 0` after it exits is a whole-tree
   orphan check. *)
let start_server scfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
      let code = match S.run scfg with Ok _ -> 0 | Error _ -> 1 in
      Unix._exit code
  | pid ->
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_up () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX scfg.S.socket_path) with
        | () -> Unix.close fd
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "server did not come up";
            Unix.sleepf 0.02;
            wait_up ()
      in
      wait_up ();
      pid

let assert_no_orphans pid =
  match Unix.kill (-pid) 0 with
  | () -> Alcotest.fail "processes left behind in the server's group"
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ()

(* SIGTERM, wait, and assert the full clean-exit contract. *)
let stop_server ?(expect_status = 0) scfg pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED c ->
      Alcotest.(check int) "server exit status" expect_status c
  | Unix.WSIGNALED s -> Alcotest.failf "server killed by signal %d" s
  | Unix.WSTOPPED _ -> Alcotest.fail "server stopped");
  Alcotest.(check bool) "socket file removed" false
    (Sys.file_exists scfg.S.socket_path);
  assert_no_orphans pid

(* ---- a test client ---- *)

module Client = struct
  type t = { fd : Unix.file_descr; split : F.Splitter.t; buf : Bytes.t }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    { fd; split = F.Splitter.create (); buf = Bytes.create 65536 }

  let send t req = write_all t.fd (F.frame (Pr.request_to_json req))

  (* several framed requests in one write: lands as one read batch on
     the server, which the backpressure test depends on *)
  let send_batch t reqs =
    write_all t.fd
      (String.concat ""
         (List.map (fun r -> F.frame (Pr.request_to_json r)) reqs))

  exception Closed
  exception Timeout

  let recv ?(timeout = 60.) t =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec line () =
      match F.Splitter.pop t.split with
      | Some l -> l
      | None ->
          let left = deadline -. Unix.gettimeofday () in
          if left <= 0. then raise Timeout;
          (match Unix.select [ t.fd ] [] [] left with
          | [], _, _ -> raise Timeout
          | _ -> (
              match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
              | 0 -> raise Closed
              | n -> F.Splitter.feed t.split (Bytes.sub_string t.buf 0 n)));
          line ()
    in
    match Pr.response_of_json (Json.of_string (line ())) with
    | Ok r -> r
    | Error e -> Alcotest.failf "client: bad response: %s" e

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

let submit c id job = Client.send c (Pr.Submit { id; job })

let payload_str = function
  | Pr.Result { payload; _ } -> Json.to_string payload
  | Pr.Job_failed { message; _ } -> Alcotest.failf "job failed: %s" message
  | Pr.Job_timeout _ -> Alcotest.fail "job timed out"
  | Pr.Rejected _ -> Alcotest.fail "job rejected"
  | _ -> Alcotest.fail "unexpected response"

let health_of c =
  Client.send c Pr.Health;
  match Client.recv c with
  | Pr.Health_report h -> h
  | _ -> Alcotest.fail "expected a health report"

(* Read responses until [n] jobs have settled; Rejected submissions
   are resubmitted after the server's hint.  Returns id -> response
   for the settled jobs only. *)
let collect ?(resubmit = fun _ -> ()) c n =
  let settled = Hashtbl.create n in
  while Hashtbl.length settled < n do
    match Client.recv c with
    | Pr.Rejected { id; retry_after; _ } ->
        Unix.sleepf retry_after;
        resubmit id
    | Pr.Result { id; _ } as r -> Hashtbl.replace settled id r
    | Pr.Job_failed { id; _ } as r -> Hashtbl.replace settled id r
    | Pr.Job_timeout { id; _ } as r -> Hashtbl.replace settled id r
    | Pr.Pong | Pr.Health_report _ -> ()
    | Pr.Error_response { message } ->
        Alcotest.failf "server error: %s" message
  done;
  settled

(* ---- protocol round-trips (no server) ---- *)

let test_protocol_roundtrip () =
  let j = P.job ~cfg ~warmup:false ~profile:true "2mm" in
  (match Pr.job_of_json (Pr.job_to_json j) with
  | Ok j' ->
      Alcotest.(check string) "job digest survives the wire"
        (P.job_digest j) (P.job_digest j');
      Alcotest.(check string) "job key survives the wire" (P.job_key j)
        (P.job_key j')
  | Error e -> Alcotest.failf "job round-trip: %s" e);
  (match Pr.job_of_json (Json.Obj [ ("app", Json.Str "2mm") ]) with
  | Ok j' ->
      Alcotest.(check string) "defaults fill an app-only job"
        (P.job_key (P.job "2mm")) (P.job_key j')
  | Error e -> Alcotest.failf "minimal job: %s" e);
  (match Pr.job_of_json (Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object job decoded");
  let reqs =
    [ Pr.Submit { id = "a-1"; job = j }; Pr.Health; Pr.Ping ]
  in
  List.iter
    (fun r ->
      match Pr.request_of_json (Json.of_string (Json.to_string (Pr.request_to_json r))) with
      | Ok r' -> (
          match (r, r') with
          | Pr.Submit { id; job }, Pr.Submit { id = id'; job = job' } ->
              Alcotest.(check string) "submit id" id id';
              Alcotest.(check string) "submit job" (P.job_digest job)
                (P.job_digest job')
          | Pr.Health, Pr.Health | Pr.Ping, Pr.Ping -> ()
          | _ -> Alcotest.fail "request changed shape on the wire")
      | Error e -> Alcotest.failf "request round-trip: %s" e)
    reqs;
  (* distinct counter values catch any health field transposition *)
  let h =
    {
      Pr.h_queued = 1; h_inflight = 2; h_clients = 3; h_workers = 4;
      h_alive = 5; h_accepted = 6; h_completed = 7; h_failed = 8;
      h_timeouts = 9; h_rejected = 10; h_cache_hits = 11;
      h_cache_misses = 12; h_cache_damaged = 13; h_crashes = 14;
      h_restarts = 15; h_disconnects = 16;
    }
  in
  Alcotest.(check bool) "health round-trips field-exactly" true
    (Pr.health_of_json (Json.of_string (Json.to_string (Pr.health_to_json h)))
    = h);
  let resps =
    [ Pr.Result { id = "r"; payload = Json.Obj [ ("x", Json.Int 1) ] };
      Pr.Job_failed { id = "f"; message = "boom" };
      Pr.Job_timeout { id = "t"; after = 1.5 };
      Pr.Rejected { id = "q"; reason = Pr.Queue_full; retry_after = 0.25 };
      Pr.Rejected { id = "s"; reason = Pr.Shutting_down; retry_after = 1.0 };
      Pr.Health_report h; Pr.Pong;
      Pr.Error_response { message = "nope" } ]
  in
  List.iter
    (fun r ->
      match Pr.response_of_json (Json.of_string (Json.to_string (Pr.response_to_json r))) with
      | Ok r' ->
          Alcotest.(check bool) "response round-trips" true (r = r')
      | Error e -> Alcotest.failf "response round-trip: %s" e)
    resps;
  (match Pr.response_of_json (Json.Obj [ ("type", Json.Str "martian") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown response type decoded")

(* ---- basic service: results byte-identical to in-process runs ---- *)

let test_submit_byte_identity () =
  let scfg = base_config (Filename.temp_file "critload" ".sock") in
  let pid = start_server scfg in
  let jobs =
    [ P.job ~cfg ~warmup:false "2mm"; P.job ~cfg ~warmup:false "gaus";
      P.job ~cfg:Gsim.Config.default ~mode:P.Func "2mm" ]
  in
  let c = Client.connect scfg.S.socket_path in
  Client.send c Pr.Ping;
  (match Client.recv c with
  | Pr.Pong -> ()
  | _ -> Alcotest.fail "expected pong");
  List.iteri (fun i j -> submit c (string_of_int i) j) jobs;
  let settled = collect c (List.length jobs) in
  List.iteri
    (fun i j ->
      Alcotest.(check string)
        (Printf.sprintf "job %d byte-identical to exec_job" i)
        (Json.to_string (P.exec_job j))
        (payload_str (Hashtbl.find settled (string_of_int i))))
    jobs;
  let h = health_of c in
  Alcotest.(check int) "accepted" 3 h.Pr.h_accepted;
  Alcotest.(check int) "completed" 3 h.Pr.h_completed;
  Alcotest.(check int) "failed" 0 h.Pr.h_failed;
  Alcotest.(check int) "all workers alive" 2 h.Pr.h_alive;
  Client.close c;
  stop_server scfg pid

(* ---- a bad request line answers with an error, not a crash ---- *)

let test_bad_request_line () =
  let scfg =
    { (base_config (Filename.temp_file "critload" ".sock")) with S.workers = 1 }
  in
  let pid = start_server scfg in
  (* an intelligible-but-unknown request keeps the connection *)
  let c = Client.connect scfg.S.socket_path in
  write_all c.Client.fd "{\"op\": \"martian\"}\n";
  (match Client.recv c with
  | Pr.Error_response _ -> ()
  | _ -> Alcotest.fail "expected an error response");
  Client.send c Pr.Ping;
  (match Client.recv c with
  | Pr.Pong -> ()
  | _ -> Alcotest.fail "connection should survive an unknown request");
  Client.close c;
  (* an unparseable line poisons the stream: error, then close *)
  let c2 = Client.connect scfg.S.socket_path in
  write_all c2.Client.fd "this is not JSON\n";
  (match Client.recv c2 with
  | Pr.Error_response _ -> ()
  | _ -> Alcotest.fail "expected an error response");
  (match Client.recv c2 with
  | exception Client.Closed -> ()
  | _ -> Alcotest.fail "expected the server to close the stream");
  Client.close c2;
  stop_server scfg pid

(* ---- backpressure: the queue is bounded, rejects carry a hint ---- *)

let test_backpressure () =
  let scfg =
    {
      (base_config (Filename.temp_file "critload" ".sock")) with
      S.workers = 1;
      queue_limit = 1;
    }
  in
  let pid = start_server scfg in
  let j = P.job ~cfg ~warmup:false "2mm" in
  let c = Client.connect scfg.S.socket_path in
  let n = 5 in
  Client.send_batch c
    (List.init n (fun i -> Pr.Submit { id = string_of_int i; job = j }));
  let rejected = ref 0 and completed = ref 0 in
  for _ = 1 to n do
    match Client.recv c with
    | Pr.Rejected { reason = Pr.Queue_full; retry_after; _ } ->
        incr rejected;
        Alcotest.(check bool) "retry-after hint is positive" true
          (retry_after > 0.)
    | Pr.Result _ -> incr completed
    | r ->
        Alcotest.failf "unexpected response: %s"
          (Json.to_string (Pr.response_to_json r))
  done;
  Alcotest.(check int) "every submission answered" n (!rejected + !completed);
  Alcotest.(check bool) "at least one accepted" true (!completed >= 1);
  Alcotest.(check bool) "at least one rejected" true (!rejected >= 1);
  let h = health_of c in
  Alcotest.(check int) "rejections counted" !rejected h.Pr.h_rejected;
  (* a rejected job resubmitted after the hint completes normally *)
  Unix.sleepf scfg.S.retry_after;
  submit c "again" j;
  let settled = collect ~resubmit:(fun id -> submit c id j) c 1 in
  ignore (payload_str (Hashtbl.find settled "again"));
  Client.close c;
  stop_server scfg pid

(* ---- deadlines: an overdue job times out, the pool recovers ---- *)

let test_job_timeout () =
  let scfg =
    {
      (base_config (Filename.temp_file "critload" ".sock")) with
      S.workers = 1;
      job_timeout = 0.15;
    }
  in
  let pid = start_server scfg in
  let slow_cfg =
    Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:50_000_000 ()
  in
  let c = Client.connect scfg.S.socket_path in
  submit c "slow" (P.job ~cfg:slow_cfg ~scale:Workloads.App.Large "srad");
  (match Client.recv c with
  | Pr.Job_timeout { id = "slow"; after } ->
      Alcotest.(check (float 0.001)) "reported deadline" 0.15 after
  | r ->
      Alcotest.failf "expected a timeout, got %s"
        (Json.to_string (Pr.response_to_json r)))
  ;
  (* the slot was respawned without backoff: the next job just runs *)
  let j = P.job ~cfg ~warmup:false "2mm" in
  submit c "fast" j;
  let settled = collect c 1 in
  Alcotest.(check string) "post-timeout job byte-identical"
    (Json.to_string (P.exec_job j))
    (payload_str (Hashtbl.find settled "fast"));
  let h = health_of c in
  Alcotest.(check int) "timeout counted" 1 h.Pr.h_timeouts;
  Alcotest.(check int) "worker alive again" 1 h.Pr.h_alive;
  Client.close c;
  stop_server scfg pid

(* ---- chaos: killed workers are respawned, jobs retried ---- *)

let test_crash_retry_chaos () =
  let scfg =
    {
      (base_config (Filename.temp_file "critload" ".sock")) with
      S.chaos = Some { S.kill_every = 1 };
      (* every first-attempt job kills its worker *)
      backoff_base = 0.01;
    }
  in
  let pid = start_server scfg in
  let jobs =
    [ P.job ~cfg ~warmup:false "2mm"; P.job ~cfg ~warmup:false "gaus";
      P.job ~cfg ~warmup:false "lu" ]
  in
  let c = Client.connect scfg.S.socket_path in
  List.iteri (fun i j -> submit c (string_of_int i) j) jobs;
  let settled = collect c (List.length jobs) in
  List.iteri
    (fun i j ->
      Alcotest.(check string)
        (Printf.sprintf "job %d survives its crash byte-identically" i)
        (Json.to_string (P.exec_job j))
        (payload_str (Hashtbl.find settled (string_of_int i))))
    jobs;
  let h = health_of c in
  Alcotest.(check bool) "crashes were injected" true (h.Pr.h_crashes >= 3);
  Alcotest.(check int) "no job failed" 0 h.Pr.h_failed;
  Alcotest.(check int) "all jobs completed" 3 h.Pr.h_completed;
  Client.close c;
  stop_server scfg pid

(* ---- cache: hits are served, damage degrades to a counted miss ---- *)

let test_cache_hit_and_damage () =
  let dir = fresh_dir () in
  let hit_job = P.job ~cfg ~warmup:false "2mm" in
  let torn_job = P.job ~cfg ~warmup:false "gaus" in
  let hit_payload = P.exec_job hit_job in
  let torn_payload = P.exec_job torn_job in
  P.cache_store ~dir hit_job hit_payload;
  P.cache_store ~dir torn_job torn_payload;
  (* tear the second entry mid-write *)
  let entry = Filename.concat dir (P.job_digest torn_job ^ ".json") in
  let whole =
    let ic = open_in entry in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let oc = open_out entry in
  output_string oc (String.sub whole 0 (String.length whole / 2));
  close_out oc;
  let scfg =
    {
      (base_config (Filename.temp_file "critload" ".sock")) with
      S.cache_dir = Some dir;
    }
  in
  let pid = start_server scfg in
  let c = Client.connect scfg.S.socket_path in
  submit c "hit" hit_job;
  submit c "torn" torn_job;
  let settled = collect c 2 in
  Alcotest.(check string) "cached payload served byte-identically"
    (Json.to_string hit_payload)
    (payload_str (Hashtbl.find settled "hit"));
  Alcotest.(check string) "damaged entry recomputed byte-identically"
    (Json.to_string torn_payload)
    (payload_str (Hashtbl.find settled "torn"));
  let h = health_of c in
  Alcotest.(check int) "hit counted" 1 h.Pr.h_cache_hits;
  Alcotest.(check int) "damage counted" 1 h.Pr.h_cache_damaged;
  Client.close c;
  (* completing the job repaired the torn entry *)
  (match P.cache_probe ~dir torn_job with
  | P.Cache_hit v ->
      Alcotest.(check string) "store repaired in place"
        (Json.to_string torn_payload) (Json.to_string v)
  | _ -> Alcotest.fail "torn entry was not repaired");
  stop_server scfg pid;
  rm_rf dir

(* ---- fairness: one greedy client cannot starve another ---- *)

let test_fairness () =
  let scfg =
    { (base_config (Filename.temp_file "critload" ".sock")) with S.workers = 1 }
  in
  let pid = start_server scfg in
  (* slow enough that per-job ordering is observable *)
  let j =
    P.job
      ~cfg:
        (Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:150_000 ())
      ~warmup:false "2mm"
  in
  let n_greedy = 4 in
  let greedy = Client.connect scfg.S.socket_path in
  Client.send_batch greedy
    (List.init n_greedy (fun i ->
         Pr.Submit { id = "g" ^ string_of_int i; job = j }));
  (* let the greedy batch get accepted and its first job dispatched *)
  Unix.sleepf 0.1;
  let single = Client.connect scfg.S.socket_path in
  submit single "s" j;
  (* the single job must settle before the greedy client's tail *)
  ignore (collect single 1);
  (* count what the greedy client had settled by then: round-robin
     means at most the in-flight job plus maybe one more, never the
     whole batch *)
  let greedy_done = ref 0 in
  (try
     while !greedy_done < n_greedy do
       match Client.recv ~timeout:0.05 greedy with
       | Pr.Result _ -> incr greedy_done
       | _ -> ()
     done
   with Client.Timeout -> ());
  Alcotest.(check bool)
    (Printf.sprintf
       "single client served before the greedy tail (greedy had %d/%d)"
       !greedy_done n_greedy)
    true (!greedy_done <= 2);
  (* drain the rest so shutdown is clean *)
  ignore (collect greedy (n_greedy - !greedy_done));
  Client.close greedy;
  Client.close single;
  stop_server scfg pid

(* ---- graceful shutdown: drain in-flight, reject new work ---- *)

let test_graceful_shutdown_drain () =
  let scfg = base_config (Filename.temp_file "critload" ".sock") in
  let pid = start_server scfg in
  let j =
    P.job
      ~cfg:(Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:80_000 ())
      ~warmup:false "2mm"
  in
  let c = Client.connect scfg.S.socket_path in
  submit c "a" j;
  submit c "b" j;
  Unix.sleepf 0.15 (* both dispatched *);
  Unix.kill pid Sys.sigterm;
  Unix.sleepf 0.05 (* let the handler land *);
  submit c "late" j;
  let seen_late_reject = ref false in
  let settled = Hashtbl.create 4 in
  while Hashtbl.length settled < 2 do
    match Client.recv c with
    | Pr.Rejected { id = "late"; reason = Pr.Shutting_down; _ } ->
        seen_late_reject := true
    | Pr.Result { id; _ } as r when id = "a" || id = "b" ->
        Hashtbl.replace settled id r
    | r ->
        Alcotest.failf "unexpected during drain: %s"
          (Json.to_string (Pr.response_to_json r))
  done;
  Alcotest.(check bool) "submission during drain rejected" true
    !seen_late_reject;
  let expect = Json.to_string (P.exec_job j) in
  Alcotest.(check string) "drained job a intact" expect
    (payload_str (Hashtbl.find settled "a"));
  Alcotest.(check string) "drained job b intact" expect
    (payload_str (Hashtbl.find settled "b"));
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "server did not exit cleanly after draining");
  Alcotest.(check bool) "socket removed" false
    (Sys.file_exists scfg.S.socket_path);
  assert_no_orphans pid;
  Client.close c

(* ---- the chaos/soak harness ---- *)

(* >= 200 concurrent requests from forked client processes, against a
   daemon with injected worker SIGKILLs, a pre-damaged cache entry,
   and clients that vanish without reading.  Every settled response
   must be byte-identical to the serial baseline computed up front;
   the daemon must survive it all and drain cleanly. *)
let test_soak () =
  let dir = fresh_dir () in
  let jobs =
    [| P.job ~cfg ~warmup:false "2mm"; P.job ~cfg ~warmup:false "gaus";
       P.job ~cfg ~warmup:false "lu"; P.job ~cfg ~warmup:false "grm";
       P.job ~cfg:Gsim.Config.default ~mode:P.Func "2mm";
       P.job ~cfg:Gsim.Config.default ~mode:P.Func "gaus" |]
  in
  (* serial baseline, computed before any chaos exists *)
  let expected = Array.map (fun j -> Json.to_string (P.exec_job j)) jobs in
  (* warm two entries: one stays intact (hits), one is torn (damage) *)
  P.cache_store ~dir jobs.(0) (Json.of_string expected.(0));
  P.cache_store ~dir jobs.(1) (Json.of_string expected.(1));
  let entry = Filename.concat dir (P.job_digest jobs.(1) ^ ".json") in
  let whole =
    let ic = open_in entry in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let oc = open_out entry in
  output_string oc (String.sub whole 0 (String.length whole / 2));
  close_out oc;
  let scfg =
    {
      (base_config (Filename.temp_file "critload" ".sock")) with
      S.workers = 4;
      cache_dir = Some dir;
      chaos = Some { S.kill_every = 3 };
      queue_limit = 16;
      retry_after = 0.05;
      backoff_base = 0.01;
      backoff_cap = 0.1;
    }
  in
  let pid = start_server scfg in
  let n_clients = 8 and per_client = 26 in
  (* client process: pipeline everything, absorb rejections, verify
     every payload against the baseline; exit 0 only if all 26 match *)
  let run_client ci =
    let c = Client.connect scfg.S.socket_path in
    let pick k = (ci * 7 + k) mod Array.length jobs in
    for k = 0 to per_client - 1 do
      submit c (string_of_int k) jobs.(pick k)
    done;
    let settled =
      collect
        ~resubmit:(fun id -> submit c id jobs.(pick (int_of_string id)))
        c per_client
    in
    let ok = ref true in
    for k = 0 to per_client - 1 do
      match Hashtbl.find_opt settled (string_of_int k) with
      | Some (Pr.Result { payload; _ }) ->
          if Json.to_string payload <> expected.(pick k) then ok := false
      | _ -> ok := false
    done;
    Client.close c;
    if !ok then 0 else 1
  in
  let client_pids =
    List.init n_clients (fun ci ->
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
            let code = try run_client ci with _ -> 2 in
            Unix._exit code
        | pid -> pid)
  in
  (* two clients that vanish rudely: submit, never read, close *)
  for _ = 1 to 2 do
    let c = Client.connect scfg.S.socket_path in
    submit c "gone-0" jobs.(2);
    submit c "gone-1" jobs.(3);
    Unix.sleepf 0.05;
    Client.close c
  done;
  List.iteri
    (fun i pid ->
      let _, status = Unix.waitpid [] pid in
      match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c ->
          Alcotest.failf "soak client %d failed with code %d" i c
      | _ -> Alcotest.failf "soak client %d died" i)
    client_pids;
  let c = Client.connect scfg.S.socket_path in
  let h = health_of c in
  Client.close c;
  Alcotest.(check bool)
    (Printf.sprintf "soak volume >= 200 requests (got %d)" h.Pr.h_accepted)
    true
    (h.Pr.h_accepted >= 200);
  Alcotest.(check bool)
    (Printf.sprintf "chaos injected crashes (got %d)" h.Pr.h_crashes)
    true (h.Pr.h_crashes >= 1);
  Alcotest.(check bool) "torn entry detected" true (h.Pr.h_cache_damaged >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "cache served hits (got %d)" h.Pr.h_cache_hits)
    true (h.Pr.h_cache_hits >= 1);
  Alcotest.(check int) "nothing failed" 0 h.Pr.h_failed;
  Alcotest.(check int) "nothing timed out" 0 h.Pr.h_timeouts;
  Alcotest.(check int) "all workers alive at the end" 4 h.Pr.h_alive;
  stop_server scfg pid;
  rm_rf dir

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [ Alcotest.test_case "round-trips" `Quick test_protocol_roundtrip ] );
      ( "serve",
        [
          Alcotest.test_case "byte-identity" `Slow test_submit_byte_identity;
          Alcotest.test_case "bad request line" `Quick test_bad_request_line;
          Alcotest.test_case "backpressure" `Slow test_backpressure;
          Alcotest.test_case "job timeout" `Slow test_job_timeout;
          Alcotest.test_case "crash retry (chaos)" `Slow
            test_crash_retry_chaos;
          Alcotest.test_case "cache hit + damage" `Slow
            test_cache_hit_and_damage;
          Alcotest.test_case "fairness" `Slow test_fairness;
          Alcotest.test_case "graceful shutdown" `Slow
            test_graceful_shutdown_drain;
        ] );
      ("soak", [ Alcotest.test_case "chaos soak" `Slow test_soak ]);
    ]
