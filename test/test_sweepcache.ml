(* The content-addressed sweep cache: digests must track exactly the
   inputs a result depends on (kernels as normalized text, launch
   geometry, dataset seed, config, mode, simulator tag) and ignore
   presentation (label) and observably-equivalent knobs (fast-forward);
   a warm sweep must serve every job from the store with byte-identical
   output and zero re-simulation; corrupt entries must degrade to a
   re-run, never an error. *)

module P = Critload.Parsweep
module Json = Gsim.Stats_io.Json

let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:6_000 ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "critload-cache-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rm_rf dir =
  match Sys.readdir dir with
  | files ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        files;
      (try Unix.rmdir dir with _ -> ())
  | exception Sys_error _ -> ()

(* ---- digest properties ---- *)

let test_digest_invariants () =
  let j = P.job ~cfg ~warmup:false "2mm" in
  Alcotest.(check string) "digest deterministic" (P.job_digest j)
    (P.job_digest j);
  Alcotest.(check string) "label excluded" (P.job_digest j)
    (P.job_digest (P.job ~label:"other" ~cfg ~warmup:false "2mm"));
  Alcotest.(check string) "fast-forward excluded" (P.job_digest j)
    (P.job_digest (P.job ~cfg ~warmup:false ~fast_forward:false "2mm"));
  let differs what j' =
    Alcotest.(check bool) (what ^ " changes the digest") true
      (P.job_digest j <> P.job_digest j')
  in
  differs "config"
    (P.job ~cfg:(cfg |> Gsim.Config.with_mshrs 32) ~warmup:false "2mm");
  differs "scale" (P.job ~cfg ~warmup:false ~scale:Workloads.App.Default "2mm");
  differs "mode" (P.job ~cfg ~warmup:false ~mode:P.Func "2mm");
  differs "warmup" (P.job ~cfg "2mm");
  differs "profile" (P.job ~cfg ~warmup:false ~profile:true "2mm");
  differs "app" (P.job ~cfg ~warmup:false "gaus")

let test_seed_changes_fingerprint () =
  let app = Workloads.Suite.find "2mm" in
  let app' = { app with Workloads.App.seed = app.Workloads.App.seed + 1 } in
  Alcotest.(check bool) "seed change invalidates" true
    (P.app_fingerprint app Workloads.App.Small
    <> P.app_fingerprint app' Workloads.App.Small)

(* ---- kernel-text sensitivity ---- *)

let mini_app text =
  let kernel = Ptx.Parse.kernel_of_string text in
  {
    Workloads.App.name = "mini";
    category = Workloads.App.Linear;
    description = "synthetic cache-test app";
    seed = 1;
    make =
      (fun _scale ->
        let global = Gsim.Mem.create 4096 in
        Workloads.App.single_launch ~global
          ~check:(fun () -> true)
          (Gsim.Launch.create ~kernel ~grid:(1, 1, 1) ~block:(32, 1, 1)
             ~params:[ ("a", 0L) ] ~global));
  }

let kernel_a =
  ".kernel k (.param .u64 a)\n.reg 2 .pred 1 .shared 0\n{\n\
  \  ld.param.u64 %r0, [a];\n  ld.global.u32 %r1, [%r0+64];\n  exit;\n}"

(* same program, different surface syntax *)
let kernel_a_reformatted =
  ".kernel k (.param .u64 a)   // comment\n.reg 2 .pred 1 .shared 0\n{\n\
  \    ld.param.u64   %r0, [a];\n\n  ld.global.u32 %r1, [%r0+64]; // load\n\
  \  exit;\n}"

(* different program: the load offset changed *)
let kernel_b =
  ".kernel k (.param .u64 a)\n.reg 2 .pred 1 .shared 0\n{\n\
  \  ld.param.u64 %r0, [a];\n  ld.global.u32 %r1, [%r0+128];\n  exit;\n}"

let test_kernel_text_sensitivity () =
  let fp text =
    P.app_fingerprint (mini_app text) Workloads.App.Small
  in
  Alcotest.(check string) "formatting-only edit keeps the fingerprint"
    (fp kernel_a) (fp kernel_a_reformatted);
  Alcotest.(check bool) "changed instruction changes the fingerprint" true
    (fp kernel_a <> fp kernel_b)

(* ---- store / lookup primitives ---- *)

let test_store_lookup_roundtrip () =
  let dir = fresh_dir () in
  let j = P.job ~cfg ~warmup:false "2mm" in
  Alcotest.(check bool) "empty cache misses" true
    (P.cache_lookup ~dir j = None);
  let payload = P.exec_job j in
  P.cache_store ~dir j payload;
  (match P.cache_lookup ~dir j with
  | Some v ->
      Alcotest.(check string) "payload round-trips"
        (Json.to_string payload) (Json.to_string v)
  | None -> Alcotest.fail "stored entry not found");
  (* a torn / corrupt entry is a miss, not an error *)
  let entry = Filename.concat dir (P.job_digest j ^ ".json") in
  let oc = open_out entry in
  output_string oc "{ not json";
  close_out oc;
  Alcotest.(check bool) "corrupt entry degrades to a miss" true
    (P.cache_lookup ~dir j = None);
  rm_rf dir

(* ---- probe verdicts: hit vs stale-miss vs damaged ---- *)

let test_probe_verdicts () =
  let dir = fresh_dir () in
  let j = P.job ~cfg ~warmup:false "2mm" in
  let entry = Filename.concat dir (P.job_digest j ^ ".json") in
  let write s =
    let oc = open_out entry in
    output_string oc s;
    close_out oc
  in
  let damaged what =
    match P.cache_probe ~dir j with
    | P.Cache_damaged _ -> ()
    | P.Cache_hit _ -> Alcotest.failf "%s served as a hit" what
    | P.Cache_miss -> Alcotest.failf "%s counted as a plain miss" what
  in
  Alcotest.(check bool) "absent entry probes as a miss" true
    (P.cache_probe ~dir j = P.Cache_miss);
  let payload = P.exec_job j in
  P.cache_store ~dir j payload;
  let good =
    let ic = open_in entry in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match P.cache_probe ~dir j with
  | P.Cache_hit v ->
      Alcotest.(check string) "intact entry serves the stored payload"
        (Json.to_string payload) (Json.to_string v)
  | _ -> Alcotest.fail "intact entry did not probe as a hit");
  (* torn write: a prefix of the real entry is damage, not a miss *)
  write (String.sub good 0 (String.length good / 2));
  damaged "torn entry";
  (* valid JSON whose digest names a different job: damage (the store
     is content-addressed; a digest mismatch means the file is lying) *)
  let other = P.job ~cfg ~warmup:false "gaus" in
  write
    (Json.to_string
       (Json.Obj
          [ ("schema", Json.member "schema" (Json.of_string good));
            ("sim_tag", Json.Str Critload.Version.sim_tag);
            ("digest", Json.Str (P.job_digest other));
            ("result", payload) ]));
  damaged "digest-mismatched entry";
  (* result payload that does not decode as this mode's summary *)
  write
    (Json.to_string
       (Json.Obj
          [ ("schema", Json.member "schema" (Json.of_string good));
            ("sim_tag", Json.Str Critload.Version.sim_tag);
            ("digest", Json.Str (P.job_digest j));
            ("result", Json.Obj [ ("x", Json.Int 42) ]) ]));
  damaged "undecodable result";
  (* a different simulator version is staleness, not damage *)
  write
    (Json.to_string
       (Json.Obj
          [ ("schema", Json.member "schema" (Json.of_string good));
            ("sim_tag", Json.Str "someone-else");
            ("digest", Json.Str (P.job_digest j));
            ("result", payload) ]));
  Alcotest.(check bool) "foreign sim_tag probes as a stale miss" true
    (P.cache_probe ~dir j = P.Cache_miss);
  (* re-storing repairs the entry *)
  P.cache_store ~dir j payload;
  Alcotest.(check bool) "re-stored entry hits again" true
    (P.cache_lookup ~dir j <> None);
  rm_rf dir

(* ---- cold vs warm sweep ---- *)

let run_counting ?(damaged = ref 0) ~cache_dir jobs =
  let started = ref 0 and cached = ref 0 in
  let on_event = function
    | P.Started _ -> incr started
    | P.Cached _ -> incr cached
    | P.Cache_damage _ -> incr damaged
    | _ -> ()
  in
  let outcomes = P.run ~workers:2 ~timeout:300. ~on_event ?cache_dir jobs in
  (outcomes, !started, !cached)

let test_cold_warm_identical () =
  let dir = fresh_dir () in
  (* profiled jobs: the embedded Profile.t must survive the cache too *)
  let jobs =
    [ P.job ~cfg ~warmup:false ~profile:true "2mm";
      P.job ~cfg ~warmup:false ~profile:true "gaus" ]
  in
  let cold, started_cold, cached_cold =
    run_counting ~cache_dir:(Some dir) jobs
  in
  Alcotest.(check int) "cold run simulates every job" 2 started_cold;
  Alcotest.(check int) "cold run hits nothing" 0 cached_cold;
  let warm, started_warm, cached_warm =
    run_counting ~cache_dir:(Some dir) jobs
  in
  Alcotest.(check int) "warm run simulates nothing" 0 started_warm;
  Alcotest.(check int) "warm run serves every job from cache" 2 cached_warm;
  Alcotest.(check string) "cold and warm sweep documents byte-identical"
    (Json.to_string (P.sweep_to_json ~jobs ~outcomes:cold))
    (Json.to_string (P.sweep_to_json ~jobs ~outcomes:warm));
  (* the profile actually crossed the cache *)
  (match warm.(0) with
  | P.Completed v ->
      Alcotest.(check bool) "cached payload embeds the profile" true
        (Json.member "profile" v <> Json.Null)
  | P.Failed m -> Alcotest.failf "warm job failed: %s" m);
  (* no cache dir = full bypass: everything re-simulates *)
  let _, started_nocache, cached_nocache = run_counting ~cache_dir:None jobs in
  Alcotest.(check int) "bypass re-simulates" 2 started_nocache;
  Alcotest.(check int) "bypass reads nothing" 0 cached_nocache;
  (* a config change misses the warm cache *)
  let jobs' =
    [ P.job ~cfg:(cfg |> Gsim.Config.with_mshrs 32) ~warmup:false "2mm" ]
  in
  let _, started', cached' = run_counting ~cache_dir:(Some dir) jobs' in
  Alcotest.(check int) "changed config re-simulates" 1 started';
  Alcotest.(check int) "changed config hits nothing" 0 cached';
  (* truncate one entry mid-file: the sweep reports the damage, re-runs
     exactly that job, and still produces the identical document *)
  let entry =
    Filename.concat dir (P.job_digest (List.hd jobs) ^ ".json")
  in
  let whole =
    let ic = open_in entry in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let oc = open_out entry in
  output_string oc (String.sub whole 0 (String.length whole / 3));
  close_out oc;
  let damaged = ref 0 in
  let repaired, started_r, cached_r =
    run_counting ~damaged ~cache_dir:(Some dir) jobs
  in
  Alcotest.(check int) "damaged entry is reported once" 1 !damaged;
  Alcotest.(check int) "only the damaged job re-simulates" 1 started_r;
  Alcotest.(check int) "the intact entry still hits" 1 cached_r;
  Alcotest.(check string) "document unchanged after repair"
    (Json.to_string (P.sweep_to_json ~jobs ~outcomes:cold))
    (Json.to_string (P.sweep_to_json ~jobs ~outcomes:repaired));
  rm_rf dir

let () =
  Alcotest.run "sweepcache"
    [
      ( "digest",
        [
          Alcotest.test_case "invariants" `Quick test_digest_invariants;
          Alcotest.test_case "seed" `Quick test_seed_changes_fingerprint;
          Alcotest.test_case "kernel-text" `Quick test_kernel_text_sensitivity;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_lookup_roundtrip;
          Alcotest.test_case "probe-verdicts" `Quick test_probe_verdicts;
        ] );
      ( "sweep",
        [ Alcotest.test_case "cold-warm" `Slow test_cold_warm_identical ] );
    ]
