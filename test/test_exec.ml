(* Unit and property tests of the instruction semantics (Exec), the
   typed memory (Mem), and the Bitset used by the dataflow analyses. *)

open Ptx.Types

let env =
  { Gsim.Exec.ctaid = (3, 1, 0); ntid = (32, 2, 1); nctaid = (8, 4, 1);
    warp_in_cta = 1 }

let thread ?(regs = 8) ?(preds = 2) () =
  { Gsim.Exec.regs = Array.make regs 0L; preds = Array.make preds false;
    tid = (5, 1, 0); lane = 5 }

(* ---------------- operand evaluation ---------------- *)

let test_sreg_values () =
  let th = thread () in
  let ev o = Gsim.Exec.eval_operand env th o in
  Alcotest.(check int64) "tid.x" 5L (ev (Sreg (Tid X)));
  Alcotest.(check int64) "tid.y" 1L (ev (Sreg (Tid Y)));
  Alcotest.(check int64) "ctaid.x" 3L (ev (Sreg (Ctaid X)));
  Alcotest.(check int64) "ntid.x" 32L (ev (Sreg (Ntid X)));
  Alcotest.(check int64) "nctaid.y" 4L (ev (Sreg (Nctaid Y)));
  Alcotest.(check int64) "laneid" 5L (ev (Sreg Laneid));
  Alcotest.(check int64) "warpid" 1L (ev (Sreg Warpid));
  Alcotest.(check int64) "imm" 42L (ev (Imm 42L));
  th.Gsim.Exec.regs.(3) <- 7L;
  Alcotest.(check int64) "reg" 7L (ev (Reg 3))

let test_eval_addr () =
  let th = thread () in
  th.Gsim.Exec.regs.(0) <- 1000L;
  Alcotest.(check int) "base+offset" 1016
    (Gsim.Exec.eval_addr env th { abase = Reg 0; aoffset = 16 })

(* ---------------- integer semantics ---------------- *)

let test_iop_semantics () =
  let x = Gsim.Exec.exec_iop in
  Alcotest.(check int64) "add" 7L (x Add 3L 4L);
  Alcotest.(check int64) "sub" (-1L) (x Sub 3L 4L);
  Alcotest.(check int64) "mul" 12L (x Mul 3L 4L);
  Alcotest.(check int64) "div" 3L (x Div 13L 4L);
  Alcotest.(check int64) "div by zero is 0" 0L (x Div 13L 0L);
  Alcotest.(check int64) "rem" 1L (x Rem 13L 4L);
  Alcotest.(check int64) "rem by zero is 0" 0L (x Rem 13L 0L);
  Alcotest.(check int64) "min" 3L (x Min 3L 4L);
  Alcotest.(check int64) "max" 4L (x Max 3L 4L);
  Alcotest.(check int64) "and" 0b100L (x Band 0b110L 0b101L);
  Alcotest.(check int64) "or" 0b111L (x Bor 0b110L 0b101L);
  Alcotest.(check int64) "xor" 0b011L (x Bxor 0b110L 0b101L);
  Alcotest.(check int64) "shl" 48L (x Shl 3L 4L);
  Alcotest.(check int64) "shr is logical" 1L (x Shr Int64.min_int 63L)

let prop_mulhi =
  QCheck.Test.make ~count:500 ~name:"mulhi64 matches 128-bit reference"
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
    (fun (a, b) ->
      (* for values fitting in 31 bits the high half of the product is 0,
         and for shifted values it's computable exactly *)
      let a64 = Int64.of_int a and b64 = Int64.of_int b in
      let small = Gsim.Exec.mulhi64 a64 b64 = 0L in
      (* (a << 32) * (b << 32) has high half a*b *)
      let big =
        Gsim.Exec.mulhi64 (Int64.shift_left a64 32) (Int64.shift_left b64 32)
        = Int64.mul a64 b64
      in
      small && big)

let test_cmp_signedness () =
  let c = Gsim.Exec.exec_cmp in
  (* -1 as u32 bit pattern: 0xFFFFFFFF *)
  Alcotest.(check bool) "signed lt" true (c Lt S64 (-1L) 1L);
  Alcotest.(check bool) "unsigned lt flips" false (c Lt U64 (-1L) 1L);
  Alcotest.(check bool) "unsigned 0xFFFFFFFF > 1" true (c Gt U32 0xFFFFFFFFL 1L);
  (* float compare through bit patterns *)
  let f v = Int64.bits_of_float v in
  Alcotest.(check bool) "float lt" true (c Lt F32 (f 1.5) (f 2.5));
  Alcotest.(check bool) "float ge" true (c Ge F64 (f 2.5) (f 2.5))

let test_cvt () =
  let cv ~dst_ty ~src_ty v = Gsim.Exec.exec_cvt ~dst_ty ~src_ty v in
  Alcotest.(check int64) "u8 narrows" 0xCDL (cv ~dst_ty:U8 ~src_ty:U32 0xABCDL);
  Alcotest.(check int64) "s8 sign-extends" (-1L) (cv ~dst_ty:S8 ~src_ty:U32 0xFFL);
  Alcotest.(check int64) "s16 sign-extends" (-2L)
    (cv ~dst_ty:S16 ~src_ty:U32 0xFFFEL);
  Alcotest.(check int64) "s32 sign-extends" (-1L)
    (cv ~dst_ty:S32 ~src_ty:U64 0xFFFFFFFFL);
  (* int -> float -> int round trip *)
  let as_f = cv ~dst_ty:F32 ~src_ty:S32 12L in
  Alcotest.(check (float 0.001)) "s32 -> f32" 12.0 (Int64.float_of_bits as_f);
  Alcotest.(check int64) "f32 -> s32 truncates" 12L
    (cv ~dst_ty:S32 ~src_ty:F32 (Int64.bits_of_float 12.9))

let test_atom_semantics () =
  let a = Gsim.Exec.exec_atom in
  Alcotest.(check int64) "add" 10L (a Aadd 7L 3L);
  Alcotest.(check int64) "min keeps old" 3L (a Amin 3L 7L);
  Alcotest.(check int64) "min takes new" 3L (a Amin 7L 3L);
  Alcotest.(check int64) "max" 7L (a Amax 7L 3L);
  Alcotest.(check int64) "exch" 3L (a Aexch 7L 3L)

let test_f32_rounding () =
  (* exec_fop rounds F32 results but not F64 *)
  let tiny = 1e-10 in
  let r32 = Gsim.Exec.exec_fop Fadd F32 1.0 tiny in
  let r64 = Gsim.Exec.exec_fop Fadd F64 1.0 tiny in
  Alcotest.(check (float 0.0)) "f32 absorbs the tiny addend" 1.0 r32;
  Alcotest.(check bool) "f64 keeps it" true (r64 > 1.0)

(* ---------------- typed memory ---------------- *)

let test_mem_typed_access () =
  let m = Gsim.Mem.create 64 in
  Gsim.Mem.store m S8 0 (-5L);
  Alcotest.(check int64) "s8 sign-extends on load" (-5L) (Gsim.Mem.load m S8 0);
  Alcotest.(check int64) "u8 zero-extends" 251L (Gsim.Mem.load m U8 0);
  Gsim.Mem.store m U32 4 0xDEADBEEFL;
  Alcotest.(check int64) "u32" 0xDEADBEEFL (Gsim.Mem.load m U32 4);
  Alcotest.(check int64) "s32 sign-extends" (Int64.of_int32 0xDEADBEEFl)
    (Gsim.Mem.load m S32 4);
  Gsim.Mem.set_f32 m 8 3.25;
  Alcotest.(check (float 0.0)) "f32 round-trip" 3.25 (Gsim.Mem.get_f32 m 8);
  Gsim.Mem.set_f64 m 16 Float.pi;
  Alcotest.(check (float 0.0)) "f64 round-trip" Float.pi (Gsim.Mem.get_f64 m 16);
  Gsim.Mem.set_i64 m 24 Int64.min_int;
  Alcotest.(check int64) "i64 round-trip" Int64.min_int (Gsim.Mem.get_i64 m 24)

(* out-of-bounds accesses raise a structured mem-fault, not a bare
   Invalid_argument *)
let test_mem_bounds () =
  let m = Gsim.Mem.create 16 in
  let expect_fault name range f =
    match f () with
    | _ -> Alcotest.failf "%s: expected a mem fault" name
    | exception Gsim.Sim_error.Error e ->
        Alcotest.(check bool) (name ^ ": kind") true
          (e.Gsim.Sim_error.e_kind = Gsim.Sim_error.Mem_fault);
        let msg = Gsim.Sim_error.to_string e in
        let contains sub =
          let n = String.length sub and l = String.length msg in
          let rec go i =
            i + n <= l && (String.sub msg i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) (name ^ ": names the range") true
          (contains range)
  in
  expect_fault "read past end" "[13,+4)" (fun () ->
      Gsim.Mem.load m U32 13);
  expect_fault "negative address" "[-1,+1)" (fun () ->
      Gsim.Mem.load m U8 (-1))

let prop_mem_roundtrip_f32 =
  QCheck.Test.make ~count:300 ~name:"f32 memory round-trip"
    QCheck.(float_bound_exclusive 1e6)
    (fun f ->
      let m = Gsim.Mem.create 8 in
      Gsim.Mem.set_f32 m 0 f;
      Gsim.Mem.get_f32 m 0 = Gsim.Exec.round_f32 f)

(* ---------------- bitset ---------------- *)

let prop_bitset_membership =
  QCheck.Test.make ~count:300 ~name:"bitset add/mem/remove"
    QCheck.(pair (int_range 1 500) (list (int_bound 499)))
    (fun (n, xs) ->
      let xs = List.filter (fun x -> x < n) xs in
      let s = Dataflow.Bitset.create n in
      List.iter (Dataflow.Bitset.add s) xs;
      let all_in = List.for_all (fun x -> Dataflow.Bitset.mem s x) xs in
      let elements_sorted =
        Dataflow.Bitset.elements s = List.sort_uniq compare xs
      in
      List.iter (Dataflow.Bitset.remove s) xs;
      all_in && elements_sorted && Dataflow.Bitset.cardinal s = 0)

let prop_bitset_union_diff =
  QCheck.Test.make ~count:300 ~name:"bitset union/diff laws"
    QCheck.(pair (list (int_bound 199)) (list (int_bound 199)))
    (fun (xs, ys) ->
      let mk l = Dataflow.Bitset.of_list 200 l in
      let a = mk xs and b = mk ys in
      let u = Dataflow.Bitset.copy a in
      ignore (Dataflow.Bitset.union_into ~dst:u ~src:b);
      let expected_union =
        List.sort_uniq compare (xs @ ys)
      in
      let d = Dataflow.Bitset.copy u in
      Dataflow.Bitset.diff_into ~dst:d ~src:b;
      let expected_diff =
        List.filter (fun x -> not (List.mem x ys)) (List.sort_uniq compare xs)
      in
      Dataflow.Bitset.elements u = expected_union
      && Dataflow.Bitset.elements d = expected_diff)

let test_bitset_union_changed () =
  let a = Dataflow.Bitset.of_list 64 [ 1; 2 ] in
  let b = Dataflow.Bitset.of_list 64 [ 2; 3 ] in
  Alcotest.(check bool) "union reports change" true
    (Dataflow.Bitset.union_into ~dst:a ~src:b);
  Alcotest.(check bool) "idempotent union reports no change" false
    (Dataflow.Bitset.union_into ~dst:a ~src:b)

let tests =
  [
    Alcotest.test_case "special registers" `Quick test_sreg_values;
    Alcotest.test_case "address evaluation" `Quick test_eval_addr;
    Alcotest.test_case "integer ops" `Quick test_iop_semantics;
    QCheck_alcotest.to_alcotest prop_mulhi;
    Alcotest.test_case "comparison signedness" `Quick test_cmp_signedness;
    Alcotest.test_case "conversions" `Quick test_cvt;
    Alcotest.test_case "atomic semantics" `Quick test_atom_semantics;
    Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
    Alcotest.test_case "typed memory" `Quick test_mem_typed_access;
    Alcotest.test_case "memory bounds" `Quick test_mem_bounds;
    QCheck_alcotest.to_alcotest prop_mem_roundtrip_f32;
    QCheck_alcotest.to_alcotest prop_bitset_membership;
    QCheck_alcotest.to_alcotest prop_bitset_union_diff;
    Alcotest.test_case "bitset union change reporting" `Quick
      test_bitset_union_changed;
  ]

let () = Alcotest.run "exec" [ ("exec", tests) ]
