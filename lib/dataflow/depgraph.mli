(** Data-dependence graph at instruction granularity: an edge [pc -> d]
    means instruction [pc] uses a register whose reaching definition is
    instruction [d]. *)

type t

val build : Ptx.Kernel.t -> Reaching.t -> t

val deps : t -> int -> int list
(** Defining pcs of the registers the instruction at [pc] uses. *)

val has_uninitialized_use : t -> int -> bool
(** True when the instruction uses a register with no reaching
    definition (reads a register never written on some path). *)

val to_dot : t -> string
(** Graphviz rendering of the dependence graph; load nodes (the
    classifier's taint sources) are highlighted. *)

val backward_slice : t -> int list -> int list
(** All pcs transitively reachable through dependence edges from the
    given starting pcs (inclusive), in program order.  Traverses
    through loads — this is the full slice, unlike the classifier,
    which stops at load leaves. *)
