(* Data-dependence graph at instruction granularity: an edge pc -> d
   means instruction [pc] uses a register (general or predicate) whose
   reaching definition is instruction [d]. *)

type t = {
  kernel : Ptx.Kernel.t;
  deps : int list array; (* pc -> defining pcs *)
  uninit_uses : bool array; (* pc uses a register with no reaching def *)
}

let build (k : Ptx.Kernel.t) (r : Reaching.t) =
  let npc = Array.length k.Ptx.Kernel.body in
  let deps = Array.make npc [] in
  let uninit_uses = Array.make npc false in
  Array.iteri
    (fun pc instr ->
      let add_node node =
        match Reaching.defs_reaching_node r ~pc ~node with
        | [] -> uninit_uses.(pc) <- true
        | ds -> deps.(pc) <- List.rev_append ds deps.(pc)
      in
      List.iter (fun reg -> add_node (Reaching.node_of_reg reg))
        (Ptx.Instr.uses instr);
      List.iter
        (fun p -> add_node (Reaching.node_of_pred ~nregs:r.Reaching.nregs p))
        (Ptx.Instr.puses instr);
      deps.(pc) <- List.sort_uniq compare deps.(pc))
    k.Ptx.Kernel.body;
  { kernel = k; deps; uninit_uses }

let deps t pc = t.deps.(pc)
let has_uninitialized_use t pc = t.uninit_uses.(pc)

(* Graphviz rendering of the dependence graph; loads are highlighted
   since they are the classifier's taint sources. *)
let to_dot t =
  let k = t.kernel in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "digraph \"%s-deps\" {\n  node [shape=box, fontname=monospace];\n"
       k.Ptx.Kernel.kname);
  Array.iteri
    (fun pc instr ->
      let label =
        String.concat ""
          (String.split_on_char '"' (Ptx.Instr.to_string instr))
      in
      let attrs =
        match Ptx.Instr.loads_from_memory instr with
        | Some _ -> ", style=filled, fillcolor=lightcoral"
        | None -> ""
      in
      if t.deps.(pc) <> [] || Ptx.Instr.defs instr <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  I%d [label=\"%d: %s\"%s];\n" pc pc label attrs))
    k.Ptx.Kernel.body;
  Array.iteri
    (fun pc ds ->
      List.iter
        (fun d -> Buffer.add_string buf (Printf.sprintf "  I%d -> I%d;\n" pc d))
        ds)
    t.deps;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Full backward slice (pcs) from the given starting definitions,
   traversing through loads. *)
let backward_slice t start_pcs =
  let npc = Array.length t.deps in
  let visited = Array.make npc false in
  let rec go pc =
    if not visited.(pc) then begin
      visited.(pc) <- true;
      List.iter go t.deps.(pc)
    end
  in
  List.iter go start_pcs;
  let acc = ref [] in
  for pc = npc - 1 downto 0 do
    if visited.(pc) then acc := pc :: !acc
  done;
  !acc
