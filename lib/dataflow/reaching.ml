(* Reaching definitions over a kernel, at instruction granularity.

   Register "nodes" unify the two PTX register classes: general register
   r is node r, predicate register p is node nregs + p, so predicate
   dataflow (setp -> selp / guarded bra) participates in the analysis.

   Definitions are (pc, node) pairs, assigned dense ids.  The analysis
   is the classical forward may-analysis computed block-wise with a
   worklist, then lowered to a per-pc IN set. *)

type def = { def_id : int; def_pc : int; def_node : int }

type t = {
  kernel : Ptx.Kernel.t;
  cfg : Ptx.Cfg.t;
  ndefs : int;
  defs : def array; (* indexed by def_id *)
  defs_of_node : int list array; (* node -> def ids *)
  in_at : Bitset.t array; (* per-pc IN set of def ids *)
  nregs : int;
}

let node_of_reg r = r
let node_of_pred ~nregs p = nregs + p

(* All (pc, node) definition sites in program order. *)
let collect_defs (k : Ptx.Kernel.t) =
  let nregs = k.Ptx.Kernel.nregs in
  let defs = ref [] in
  let n = ref 0 in
  Array.iteri
    (fun pc instr ->
      let add node =
        defs := { def_id = !n; def_pc = pc; def_node = node } :: !defs;
        incr n
      in
      List.iter (fun r -> add (node_of_reg r)) (Ptx.Instr.defs instr);
      List.iter (fun p -> add (node_of_pred ~nregs p)) (Ptx.Instr.pdefs instr))
    k.Ptx.Kernel.body;
  Array.of_list (List.rev !defs)

let compute (k : Ptx.Kernel.t) (cfg : Ptx.Cfg.t) =
  let nregs = k.Ptx.Kernel.nregs in
  let nnodes = nregs + k.Ptx.Kernel.npregs in
  let defs = collect_defs k in
  let ndefs = Array.length defs in
  let defs_of_node = Array.make nnodes [] in
  Array.iter
    (fun d -> defs_of_node.(d.def_node) <- d.def_id :: defs_of_node.(d.def_node))
    defs;
  let nb = Ptx.Cfg.nblocks cfg in
  (* gen/kill per block *)
  let defs_at_pc = Array.make (Array.length k.Ptx.Kernel.body) [] in
  Array.iter
    (fun d -> defs_at_pc.(d.def_pc) <- d.def_id :: defs_at_pc.(d.def_pc))
    defs;
  let gen = Array.init nb (fun _ -> Bitset.create ndefs) in
  let kill = Array.init nb (fun _ -> Bitset.create ndefs) in
  for b = 0 to nb - 1 do
    let blk = Ptx.Cfg.block cfg b in
    for pc = blk.Ptx.Cfg.first to blk.Ptx.Cfg.last do
      List.iter
        (fun id ->
          let node = defs.(id).def_node in
          (* this def kills all other defs of the node and replaces any
             earlier gen of the node in this block *)
          List.iter
            (fun other ->
              if other <> id then begin
                Bitset.add kill.(b) other;
                Bitset.remove gen.(b) other
              end)
            defs_of_node.(node);
          Bitset.add gen.(b) id;
          Bitset.remove kill.(b) id)
        (defs_at_pc.(pc) |> List.rev)
    done
  done;
  (* worklist iteration: IN[b] = ∪ OUT[p], OUT[b] = gen ∪ (IN \ kill) *)
  let in_b = Array.init nb (fun _ -> Bitset.create ndefs) in
  let out_b = Array.init nb (fun _ -> Bitset.create ndefs) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let blk = Ptx.Cfg.block cfg b in
        List.iter
          (fun p -> ignore (Bitset.union_into ~dst:in_b.(b) ~src:out_b.(p)))
          blk.Ptx.Cfg.preds;
        let new_out = Bitset.copy in_b.(b) in
        Bitset.diff_into ~dst:new_out ~src:kill.(b);
        ignore (Bitset.union_into ~dst:new_out ~src:gen.(b));
        if not (Bitset.equal new_out out_b.(b)) then begin
          out_b.(b) <- new_out;
          changed := true
        end)
      (Ptx.Cfg.reverse_postorder cfg)
  done;
  (* lower to per-pc IN sets *)
  let npc = Array.length k.Ptx.Kernel.body in
  let in_at = Array.init npc (fun _ -> Bitset.create ndefs) in
  for b = 0 to nb - 1 do
    let blk = Ptx.Cfg.block cfg b in
    let cur = Bitset.copy in_b.(b) in
    for pc = blk.Ptx.Cfg.first to blk.Ptx.Cfg.last do
      in_at.(pc) <- Bitset.copy cur;
      List.iter
        (fun id ->
          let node = defs.(id).def_node in
          List.iter (fun other -> Bitset.remove cur other) defs_of_node.(node);
          Bitset.add cur id)
        (defs_at_pc.(pc) |> List.rev)
    done
  done;
  { kernel = k; cfg; ndefs; defs; defs_of_node; in_at; nregs }

(* pcs of the definitions of register node [node] that reach [pc]. *)
let defs_reaching_node t ~pc ~node =
  List.filter_map
    (fun id -> if Bitset.mem t.in_at.(pc) id then Some t.defs.(id).def_pc else None)
    t.defs_of_node.(node)

let defs_reaching_reg t ~pc ~reg = defs_reaching_node t ~pc ~node:reg

let defs_reaching_pred t ~pc ~pred =
  defs_reaching_node t ~pc ~node:(t.nregs + pred)
