(* Full kernel verification: the structural pass from [Ptx.Verify]
   plus the dataflow-dependent checks that need a CFG, reaching
   definitions and post-dominators:

   - use of a register or predicate with no reaching definition at all
     (uninitialized on every path; the machine zero-fills registers, so
     such a use is almost certainly a program bug);
   - a load/store/atomic whose address base can only hold a
     floating-point bit pattern;
   - a barrier reachable under divergent control flow, i.e. between a
     thread-dependent branch and its reconvergence point, where part of
     a warp could wait forever.

   This is the entry point used by the launch path and the CLI. *)

module V = Ptx.Verify

(* Blocks reachable from the CFG entry; dataflow facts in unreachable
   code are vacuous, so checks skip those pcs (the structural pass
   already warns about them). *)
let reachable_blocks (cfg : Ptx.Cfg.t) =
  let n = Ptx.Cfg.nblocks cfg in
  let seen = Array.make n false in
  let rec dfs b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter dfs (Ptx.Cfg.block cfg b).Ptx.Cfg.succs
    end
  in
  if n > 0 then dfs 0;
  seen

(* ---- use before def ---- *)

let check_use_before_def (k : Ptx.Kernel.t) cfg (rd : Reaching.t) reach acc =
  let kernel = k.Ptx.Kernel.kname in
  let acc = ref acc in
  Array.iteri
    (fun pc instr ->
      if reach.(Ptx.Cfg.block_of_pc cfg pc) then begin
        List.iter
          (fun r ->
            if Reaching.defs_reaching_reg rd ~pc ~reg:r = [] then
              acc :=
                V.diag ~kernel ~pc ~code:"use-before-def"
                  "register %%r%d is read but never written on any path to \
                   this point (in: %s)"
                  r
                  (Ptx.Instr.to_string instr)
                :: !acc)
          (Ptx.Instr.uses instr);
        List.iter
          (fun p ->
            if Reaching.defs_reaching_pred rd ~pc ~pred:p = [] then
              acc :=
                V.diag ~kernel ~pc ~code:"use-before-def"
                  "predicate %%p%d is read but never set on any path to \
                   this point (in: %s)"
                  p
                  (Ptx.Instr.to_string instr)
                :: !acc)
          (Ptx.Instr.puses instr)
      end)
    k.Ptx.Kernel.body;
  !acc

(* ---- address operand kind ---- *)

(* Does the definition at [pc] leave a floating-point bit pattern in
   its destination register?  Conservative: anything ambiguous (mov,
   selp, integer ops, loads of integer types) counts as non-float. *)
let def_is_float (k : Ptx.Kernel.t) pc =
  match k.Ptx.Kernel.body.(pc) with
  | Ptx.Instr.Fop _ | Ptx.Instr.Fma _ | Ptx.Instr.Funary _ -> true
  | Ptx.Instr.Cvt (dst, _, _, _) -> Ptx.Types.dtype_is_float dst
  | Ptx.Instr.Ld (_, ty, _, _) -> Ptx.Types.dtype_is_float ty
  | _ -> false

let check_address_kinds (k : Ptx.Kernel.t) cfg (rd : Reaching.t) reach acc =
  let kernel = k.Ptx.Kernel.kname in
  let acc = ref acc in
  let check_addr pc (a : Ptx.Types.addr) =
    match a.Ptx.Types.abase with
    | Ptx.Types.Reg r ->
        let defs = Reaching.defs_reaching_reg rd ~pc ~reg:r in
        if defs <> [] && List.for_all (def_is_float k) defs then
          acc :=
            V.diag ~kernel ~pc ~code:"float-address"
              "address base %%r%d only ever holds a floating-point value \
               (defined at pc %s)"
              r
              (String.concat ", " (List.map string_of_int defs))
            :: !acc
    | Ptx.Types.Imm _ | Ptx.Types.Fimm _ | Ptx.Types.Sreg _ -> ()
  in
  Array.iteri
    (fun pc instr ->
      if reach.(Ptx.Cfg.block_of_pc cfg pc) then
        match instr with
        | Ptx.Instr.Ld (_, _, _, a) -> check_addr pc a
        | Ptx.Instr.St (_, _, a, _) -> check_addr pc a
        | Ptx.Instr.Atom (_, _, _, a, _) -> check_addr pc a
        | _ -> ())
    k.Ptx.Kernel.body;
  !acc

(* ---- barriers under divergent control flow ---- *)

(* Is the guard predicate of the branch at [pc] thread-dependent?
   Backward slice over reaching definitions: the guard is non-uniform
   if any value feeding it reads %tid or %laneid.  Loads are slice
   terminals — their uniformity depends on memory contents, which we
   cannot see, so we assume uniform to keep false positives out. *)
let guard_is_thread_dependent (rd : Reaching.t) ~pc ~pred =
  let nregs = rd.Reaching.nregs in
  let body = rd.Reaching.kernel.Ptx.Kernel.body in
  let seen = Hashtbl.create 32 in
  let rec node_dependent ~pc ~node =
    List.exists
      (fun dpc ->
        if Hashtbl.mem seen (dpc, node) then false
        else begin
          Hashtbl.add seen (dpc, node) ();
          def_dependent dpc
        end)
      (Reaching.defs_reaching_node rd ~pc ~node)
  and def_dependent dpc =
    let instr = body.(dpc) in
    match instr with
    | Ptx.Instr.Ld _ | Ptx.Instr.Ld_param _ | Ptx.Instr.Atom _ -> false
    | _ ->
        let operand_dependent = function
          | Ptx.Types.Sreg (Ptx.Types.Tid _) | Ptx.Types.Sreg Ptx.Types.Laneid
            ->
              true
          | Ptx.Types.Sreg _ | Ptx.Types.Imm _ | Ptx.Types.Fimm _ -> false
          | Ptx.Types.Reg r -> node_dependent ~pc:dpc ~node:r
        in
        List.exists operand_dependent (operands_of instr)
        || List.exists
             (fun p -> node_dependent ~pc:dpc ~node:(nregs + p))
             (Ptx.Instr.puses instr)
  and operands_of instr =
    (* source operands only; register uses cover addr bases too, but we
       want the Sreg operands that [Instr.uses] drops *)
    match instr with
    | Ptx.Instr.Mov (_, s) -> [ s ]
    | Ptx.Instr.Iop (_, _, a, b)
    | Ptx.Instr.Fop (_, _, _, a, b)
    | Ptx.Instr.Setp (_, _, _, a, b) ->
        [ a; b ]
    | Ptx.Instr.Mad (_, a, b, c) | Ptx.Instr.Fma (_, _, a, b, c) ->
        [ a; b; c ]
    | Ptx.Instr.Funary (_, _, _, a) | Ptx.Instr.Cvt (_, _, _, a) -> [ a ]
    | Ptx.Instr.Selp (_, a, b, _) -> [ a; b ]
    | _ -> []
  in
  node_dependent ~pc ~node:(nregs + pred)

let check_divergent_barriers (k : Ptx.Kernel.t) (cfg : Ptx.Cfg.t) rd reach acc
    =
  let kernel = k.Ptx.Kernel.kname in
  let pdom = Ptx.Dom.post_dominators cfg in
  let block_has_bar b =
    let blk = Ptx.Cfg.block cfg b in
    let rec go pc =
      pc <= blk.Ptx.Cfg.last
      && (k.Ptx.Kernel.body.(pc) = Ptx.Instr.Bar || go (pc + 1))
    in
    go blk.Ptx.Cfg.first
  in
  let acc = ref acc in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Ptx.Instr.Bra (Some (_, p), _)
        when reach.(Ptx.Cfg.block_of_pc cfg pc)
             && guard_is_thread_dependent rd ~pc ~pred:p ->
          let c = Ptx.Cfg.block_of_pc cfg pc in
          let stop =
            match Ptx.Dom.reconvergence_pc cfg pdom pc with
            | Some rpc -> Some (Ptx.Cfg.block_of_pc cfg rpc)
            | None -> None
          in
          (* every block strictly between the divergent branch and its
             reconvergence point executes with a partial warp *)
          let seen = Array.make (Ptx.Cfg.nblocks cfg) false in
          let rec dfs b =
            if (not seen.(b)) && stop <> Some b then begin
              seen.(b) <- true;
              if block_has_bar b then begin
                let blk = Ptx.Cfg.block cfg b in
                let bar_pc = ref blk.Ptx.Cfg.first in
                while k.Ptx.Kernel.body.(!bar_pc) <> Ptx.Instr.Bar do
                  incr bar_pc
                done;
                acc :=
                  V.diag ~kernel ~pc:!bar_pc ~code:"divergent-barrier"
                    "barrier reachable under divergent control flow: the \
                     branch at pc %d is thread-dependent and part of the \
                     warp can bypass this bar"
                    pc
                  :: !acc
              end;
              List.iter dfs (Ptx.Cfg.block cfg b).Ptx.Cfg.succs
            end
          in
          List.iter dfs (Ptx.Cfg.block cfg c).Ptx.Cfg.succs
      | _ -> ())
    k.Ptx.Kernel.body;
  !acc

(* ---- entry point ---- *)

let dedup diags =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : V.diag) ->
      let key = (d.V.d_pc, d.V.d_code, d.V.d_msg) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    diags

(* Structural pass first; the dataflow checks assume in-bounds register
   indices and resolvable labels, so they only run on a structurally
   sound kernel. *)
let verify_kernel (k : Ptx.Kernel.t) : V.diag list =
  let structural = V.structural k in
  if V.errors structural <> [] then structural
  else
    let cfg = Ptx.Cfg.build k in
    let rd = Reaching.compute k cfg in
    let reach = reachable_blocks cfg in
    let dataflow =
      []
      |> check_use_before_def k cfg rd reach
      |> check_address_kinds k cfg rd reach
      |> check_divergent_barriers k cfg rd reach
      |> List.rev
    in
    dedup (structural @ dataflow)

let verify_clean k = V.errors (verify_kernel k) = []
