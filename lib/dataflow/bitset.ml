(* Fixed-capacity bit sets over [0, n), backed by an int array.  Used as
   the dataflow-fact representation for reaching definitions and
   liveness. *)

type t = { bits : int array; n : int }

let word_bits = Sys.int_size

let create n = { bits = Array.make ((n + word_bits - 1) / word_bits) 0; n }

let copy t = { t with bits = Array.copy t.bits }

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.n)

let add t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.bits.(w) <- t.bits.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.bits.(w) <- t.bits.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.bits.(w) land (1 lsl b) <> 0

(* dst <- dst ∪ src; returns true when dst changed. *)
let union_into ~dst ~src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: size mismatch";
  let changed = ref false in
  for w = 0 to Array.length dst.bits - 1 do
    let v = dst.bits.(w) lor src.bits.(w) in
    if v <> dst.bits.(w) then begin
      dst.bits.(w) <- v;
      changed := true
    end
  done;
  !changed

(* dst <- dst \ src *)
let diff_into ~dst ~src =
  if dst.n <> src.n then invalid_arg "Bitset.diff_into: size mismatch";
  for w = 0 to Array.length dst.bits - 1 do
    dst.bits.(w) <- dst.bits.(w) land lnot src.bits.(w)
  done

let equal a b = a.n = b.n && a.bits = b.bits

let clear t = Array.fill t.bits 0 (Array.length t.bits) 0

let cardinal t =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    if mem t i then incr count
  done;
  !count

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t
