(** Induction-variable and sequential-walk detection.

    Recognizes non-deterministic loads whose address has a
    data-dependent base but advances by a fixed byte step per loop
    iteration (edge-array walks) — the target of the indirect
    prefetching discussed in the paper's Section X.A. *)

val induction_step :
  Ptx.Kernel.t -> Reaching.t -> pc:int -> reg:int -> int64 option
(** Self-increment step of [reg] at [pc] when its reaching definitions
    are exactly an initialization plus [reg = reg +/- const]. *)

val walk_step : Ptx.Kernel.t -> Reaching.t -> int -> int64 option
(** Byte step per loop iteration of the load at [pc], for pointer-bump
    or [base + i*scale] addressing over an induction variable [i]. *)

type walk = { w_pc : int; w_step : int }

val walking_loads : Ptx.Kernel.t -> walk list
(** Every global load that walks sequentially. *)
