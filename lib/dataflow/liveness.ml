(* Backward liveness of register nodes (general + predicate), at block
   granularity with per-pc lowering.  Complements reaching definitions;
   used by tests as an independent cross-check of the CFG, and offered
   as API for register-pressure style analyses (e.g. the spare-register
   prefetching discussed in the paper's Section X). *)

type t = {
  kernel : Ptx.Kernel.t;
  live_in_at : Bitset.t array; (* per-pc live-in register nodes *)
  nregs : int;
}

let node_uses ~nregs instr =
  List.map (fun r -> r) (Ptx.Instr.uses instr)
  @ List.map (fun p -> nregs + p) (Ptx.Instr.puses instr)

let node_defs ~nregs instr =
  List.map (fun r -> r) (Ptx.Instr.defs instr)
  @ List.map (fun p -> nregs + p) (Ptx.Instr.pdefs instr)

let compute (k : Ptx.Kernel.t) (cfg : Ptx.Cfg.t) =
  let nregs = k.Ptx.Kernel.nregs in
  let nnodes = nregs + k.Ptx.Kernel.npregs in
  let nb = Ptx.Cfg.nblocks cfg in
  (* block-local use (upward-exposed) and def sets *)
  let use_b = Array.init nb (fun _ -> Bitset.create nnodes) in
  let def_b = Array.init nb (fun _ -> Bitset.create nnodes) in
  for b = 0 to nb - 1 do
    let blk = Ptx.Cfg.block cfg b in
    for pc = blk.Ptx.Cfg.first to blk.Ptx.Cfg.last do
      let instr = k.Ptx.Kernel.body.(pc) in
      List.iter
        (fun n -> if not (Bitset.mem def_b.(b) n) then Bitset.add use_b.(b) n)
        (node_uses ~nregs instr);
      List.iter (fun n -> Bitset.add def_b.(b) n) (node_defs ~nregs instr)
    done
  done;
  let live_in = Array.init nb (fun _ -> Bitset.create nnodes) in
  let live_out = Array.init nb (fun _ -> Bitset.create nnodes) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nb - 1 downto 0 do
      let blk = Ptx.Cfg.block cfg b in
      List.iter
        (fun s -> ignore (Bitset.union_into ~dst:live_out.(b) ~src:live_in.(s)))
        blk.Ptx.Cfg.succs;
      let new_in = Bitset.copy live_out.(b) in
      Bitset.diff_into ~dst:new_in ~src:def_b.(b);
      ignore (Bitset.union_into ~dst:new_in ~src:use_b.(b));
      if not (Bitset.equal new_in live_in.(b)) then begin
        live_in.(b) <- new_in;
        changed := true
      end
    done
  done;
  (* lower to per-pc live-in, walking each block backwards *)
  let npc = Array.length k.Ptx.Kernel.body in
  let live_in_at = Array.init npc (fun _ -> Bitset.create nnodes) in
  for b = 0 to nb - 1 do
    let blk = Ptx.Cfg.block cfg b in
    let cur = Bitset.copy live_out.(b) in
    for pc = blk.Ptx.Cfg.last downto blk.Ptx.Cfg.first do
      let instr = k.Ptx.Kernel.body.(pc) in
      List.iter (Bitset.remove cur) (node_defs ~nregs instr);
      List.iter (Bitset.add cur) (node_uses ~nregs instr);
      live_in_at.(pc) <- Bitset.copy cur
    done
  done;
  { kernel = k; live_in_at; nregs }

let live_in_reg t ~pc ~reg = Bitset.mem t.live_in_at.(pc) reg
let live_in_pred t ~pc ~pred = Bitset.mem t.live_in_at.(pc) (t.nregs + pred)
let live_nodes_at t pc = Bitset.elements t.live_in_at.(pc)

(* Maximum number of simultaneously live general registers — a proxy
   for register pressure. *)
let max_pressure t =
  Array.fold_left
    (fun acc set ->
      let live_regs =
        List.length (List.filter (fun n -> n < t.nregs) (Bitset.elements set))
      in
      max acc live_regs)
    0 t.live_in_at
