(* Induction-variable and sequential-walk detection.

   Non-deterministic loads are not all alike: an edge-array walk
   (spmv's vals[e], bfs's edges[i]) has a data-dependent *base* but
   advances by a fixed step every loop iteration — exactly the shape
   the indirect prefetcher of the paper's Section X.A discussion
   targets.  This pass recognizes such loads.

   A register is an induction variable at a use point when its reaching
   definitions are exactly an initialization plus a self-increment by a
   constant ([i = i + c]).  A load "walks" when its address register
   either is an induction variable itself (pointer bumping) or is an
   affine function of one ([mad i, s, base]): the walk step is the
   byte distance between consecutive iterations' accesses. *)

open Ptx.Types

(* The self-increment step of [reg] at [pc], when its reaching
   definitions form the induction pattern. *)
let induction_step (k : Ptx.Kernel.t) (r : Reaching.t) ~pc ~reg =
  let defs = Reaching.defs_reaching_reg r ~pc ~reg in
  let self_add d =
    match k.Ptx.Kernel.body.(d) with
    | Ptx.Instr.Iop (Add, rd, Reg rs, Imm c) when rd = reg && rs = reg ->
        Some c
    | Ptx.Instr.Iop (Add, rd, Imm c, Reg rs) when rd = reg && rs = reg ->
        Some c
    | Ptx.Instr.Iop (Sub, rd, Reg rs, Imm c) when rd = reg && rs = reg ->
        Some (Int64.neg c)
    | _ -> None
  in
  match defs with
  | [ d1; d2 ] -> (
      match (self_add d1, self_add d2) with
      | Some c, None | None, Some c -> Some c
      | _ -> None)
  | _ -> None

(* Byte step per loop iteration of the load at [pc], when its address
   walks sequentially. *)
let walk_step (k : Ptx.Kernel.t) (r : Reaching.t) pc =
  let addr_reg =
    match k.Ptx.Kernel.body.(pc) with
    | Ptx.Instr.Ld (_, _, _, a) | Ptx.Instr.Atom (_, _, _, a, _) -> (
        match a.abase with Reg reg -> Some reg | _ -> None)
    | _ -> None
  in
  match addr_reg with
  | None -> None
  | Some reg -> (
      (* pointer bumping: the address register is the induction *)
      match induction_step k r ~pc ~reg with
      | Some c -> Some c
      | None -> (
          (* affine of an induction: a single def combining an
             induction variable with a constant scale *)
          match Reaching.defs_reaching_reg r ~pc ~reg with
          | [ d ] -> (
              let scaled e s =
                Option.map
                  (fun c -> Int64.mul c s)
                  (induction_step k r ~pc:d ~reg:e)
              in
              match k.Ptx.Kernel.body.(d) with
              | Ptx.Instr.Mad (_, Reg e, Imm s, _) -> scaled e s
              | Ptx.Instr.Mad (_, Imm s, Reg e, _) -> scaled e s
              | Ptx.Instr.Iop (Add, _, Reg e, _)
              | Ptx.Instr.Iop (Add, _, _, Reg e) ->
                  scaled e 1L
              | _ -> None)
          | _ -> None))

type walk = { w_pc : int; w_step : int }

(* Every global load that walks sequentially, with its per-iteration
   byte step. *)
let walking_loads (k : Ptx.Kernel.t) =
  let cfg = Ptx.Cfg.build k in
  let r = Reaching.compute k cfg in
  List.filter_map
    (fun pc ->
      match walk_step k r pc with
      | Some s when s <> 0L -> Some { w_pc = pc; w_step = Int64.to_int s }
      | _ -> None)
    (Ptx.Kernel.global_load_pcs k)
