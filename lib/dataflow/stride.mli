(** Static lane-stride analysis of load addresses.

    Makes the paper's observation that "deterministic loads tend to
    generate coalesced memory accesses" a static prediction: each
    load's address is abstracted as an unknown-but-uniform base plus
    known coefficients over the lane-varying symbols
    ([tid.x]/[tid.y]/[tid.z]/[laneid]).  Given the launch's block
    shape, the affine form yields the exact per-lane offsets of a
    fully-active warp and hence its coalesced request count — including
    2-D blocks where one warp spans several [tid.y] rows.

    Array bases are assumed cache-line aligned (cudaMalloc guarantees
    256-byte alignment). *)

(** Coefficients of the lane-varying symbols. *)
type aff = { ax : int64; ay : int64; az : int64; al : int64 }

val zero_aff : aff

(** Grouped-affine: per-(tid.y, tid.z) groups with unknown-but-distinct
    bases (e.g. [tid.y * width] with unknown width) plus known x/lane
    coefficients within each group. *)
type gaff = { gax : int64; gal : int64 }

(** Abstract value of a register or address. *)
type value =
  | Kon of int64  (** known integer constant *)
  | Affv of aff
      (** uniform base + lane coefficients; all-zero = warp-uniform *)
  | Gaff of gaff
  | Unknown  (** lane-variant, shape unknown *)

val uniform : value

(** {1 Abstract arithmetic} (exposed for tests) *)

val add : value -> value -> value
val sub : value -> value -> value
val mul : value -> value -> value
val shl : value -> value -> value

(** {1 Prediction} *)

(** [int] payloads are the predicted coalesced requests of one
    fully-active warp. *)
type prediction =
  | Broadcast  (** one request per warp *)
  | Coalesced of int  (** 1-2 lines per warp *)
  | Strided of int  (** more lines, but statically known *)
  | Irregular  (** data-dependent — the uncoalesced-burst candidates *)

val string_of_prediction : prediction -> string

val lines_of_aff :
  ?warp_size:int -> ?line_size:int -> block:int * int * int -> aff -> int
(** Distinct lines touched by a fully-active warp with the given
    per-dimension coefficients and block shape. *)

val lines_of_gaff :
  ?warp_size:int -> ?line_size:int -> block:int * int * int -> gaff -> int
(** Distinct lines of a grouped-affine address (groups assumed to touch
    disjoint lines). *)

type load_prediction = { lp_pc : int; lp_prediction : prediction }

val predict :
  ?warp_size:int ->
  ?line_size:int ->
  ?block:int * int * int ->
  Ptx.Kernel.t ->
  load_prediction list
(** Predicted coalescing class of every global load, in program order,
    for the given launch block shape (default [(256,1,1)]). *)

val pp_predictions :
  ?block:int * int * int -> Format.formatter -> Ptx.Kernel.t -> unit
