(* The paper's load classifier (Section V).

   A load is DETERMINISTIC when its effective address derives only from
   parameterized data — thread/CTA ids, grid/block dimensions, kernel
   parameters (ld.param) and immediates — all known at kernel launch.
   It is NON-DETERMINISTIC when the address depends, transitively, on a
   value read from memory by a prior load (ld.global/shared/local/tex,
   or an atomic's return value).

   Implementation: backward traversal of the data-dependence graph from
   the definitions of the load's address registers.  Loads and ld.param
   are traversal *leaves*: the classifier records what kind of leaf it
   reached and does not look through them — the paper classifies a load
   as non-deterministic as soon as its address flows from any prior
   load, regardless of how that load's own address was formed. *)

open Ptx.Types

type load_class = Deterministic | Nondeterministic

type leaf =
  | Leaf_param (* ld.param *)
  | Leaf_sreg (* tid/ctaid/ntid/nctaid/laneid/warpid *)
  | Leaf_imm
  | Leaf_load of space (* value loaded from this space *)
  | Leaf_uninit (* register never written on some path *)

type load_info = {
  li_pc : int;
  li_space : space;
  li_class : load_class;
  li_leaves : leaf list; (* distinct leaf kinds, sorted *)
  li_slice_size : int; (* instructions in the address slice *)
}

type result = {
  res_kernel : Ptx.Kernel.t;
  res_loads : load_info list; (* every memory load, in program order *)
  res_class_of_pc : (int, load_class) Hashtbl.t; (* global loads only *)
}

let string_of_class = function
  | Deterministic -> "deterministic"
  | Nondeterministic -> "non-deterministic"

let short_class = function Deterministic -> "D" | Nondeterministic -> "N"

let string_of_leaf = function
  | Leaf_param -> "param"
  | Leaf_sreg -> "sreg"
  | Leaf_imm -> "imm"
  | Leaf_load sp -> "ld." ^ string_of_space sp
  | Leaf_uninit -> "uninit"

(* Leaf kinds contributed directly by an instruction's non-register
   operands. *)
let direct_leaves instr =
  let of_operand = function
    | Sreg _ -> [ Leaf_sreg ]
    | Imm _ | Fimm _ -> [ Leaf_imm ]
    | Reg _ -> []
  in
  let of_addr (a : addr) = of_operand a.abase in
  match (instr : Ptx.Instr.t) with
  | Ld_param _ -> [ Leaf_param ]
  | Ld (_, _, _, a) -> of_addr a
  | St (_, _, a, v) -> of_addr a @ of_operand v
  | Mov (_, s) -> of_operand s
  | Iop (_, _, a, b) | Fop (_, _, _, a, b) | Setp (_, _, _, a, b) ->
      of_operand a @ of_operand b
  | Mad (_, a, b, c) | Fma (_, _, a, b, c) ->
      of_operand a @ of_operand b @ of_operand c
  | Funary (_, _, _, a) | Cvt (_, _, _, a) -> of_operand a
  | Selp (_, a, b, _) -> of_operand a @ of_operand b
  | Atom (_, _, _, a, v) -> of_addr a @ of_operand v
  | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit | Label _ -> []

(* Traverse the dependence graph backwards from [roots]; collect leaf
   kinds; stop at load leaves.  Returns (leaves, visited instruction
   count). *)
let collect_leaves (k : Ptx.Kernel.t) (dg : Depgraph.t) roots =
  let npc = Array.length k.Ptx.Kernel.body in
  let visited = Array.make npc false in
  let leaves = ref [] in
  let nvisited = ref 0 in
  let push l = if not (List.mem l !leaves) then leaves := l :: !leaves in
  let rec go pc =
    if not visited.(pc) then begin
      visited.(pc) <- true;
      incr nvisited;
      let instr = k.Ptx.Kernel.body.(pc) in
      if Depgraph.has_uninitialized_use dg pc then push Leaf_uninit;
      match Ptx.Instr.loads_from_memory instr with
      | Some sp -> push (Leaf_load sp) (* leaf: do not look through *)
      | None ->
          List.iter push (direct_leaves instr);
          List.iter go (Depgraph.deps dg pc)
    end
  in
  List.iter go roots;
  (List.sort compare !leaves, !nvisited)

let class_of_leaves leaves =
  if List.exists (function Leaf_load _ -> true | _ -> false) leaves then
    Nondeterministic
  else Deterministic

(* The registers whose reaching definitions root the address slice of
   the load at [pc]. *)
let address_regs instr =
  match (instr : Ptx.Instr.t) with
  | Ld (_, _, _, a) | Atom (_, _, _, a, _) -> (
      match a.abase with Reg r -> [ r ] | Imm _ | Fimm _ | Sreg _ -> [])
  | _ -> []

let address_leaf_operand instr =
  match (instr : Ptx.Instr.t) with
  | Ld (_, _, _, a) | Atom (_, _, _, a, _) -> (
      match a.abase with
      | Sreg _ -> [ Leaf_sreg ]
      | Imm _ | Fimm _ -> [ Leaf_imm ]
      | Reg _ -> [])
  | _ -> []

let classify_load k r dg pc =
  let instr = k.Ptx.Kernel.body.(pc) in
  let roots =
    List.concat_map
      (fun reg -> Reaching.defs_reaching_reg r ~pc ~reg)
      (address_regs instr)
  in
  let uninit_root =
    List.exists
      (fun reg -> Reaching.defs_reaching_reg r ~pc ~reg = [])
      (address_regs instr)
  in
  let leaves, slice = collect_leaves k dg roots in
  let leaves = List.sort_uniq compare (leaves @ address_leaf_operand instr) in
  let leaves = if uninit_root then Leaf_uninit :: leaves else leaves in
  let space =
    match Ptx.Instr.loads_from_memory instr with
    | Some sp -> sp
    | None -> invalid_arg "classify_load: pc is not a load"
  in
  {
    li_pc = pc;
    li_space = space;
    li_class = class_of_leaves leaves;
    li_leaves = leaves;
    li_slice_size = slice;
  }

let classify (k : Ptx.Kernel.t) =
  let cfg = Ptx.Cfg.build k in
  let r = Reaching.compute k cfg in
  let dg = Depgraph.build k r in
  let loads = ref [] in
  Array.iteri
    (fun pc instr ->
      match Ptx.Instr.loads_from_memory instr with
      | Some _ -> loads := classify_load k r dg pc :: !loads
      | None -> ())
    k.Ptx.Kernel.body;
  let loads = List.rev !loads in
  let class_of_pc = Hashtbl.create 16 in
  List.iter
    (fun li ->
      if Ptx.Instr.is_global_load k.Ptx.Kernel.body.(li.li_pc) then
        Hashtbl.replace class_of_pc li.li_pc li.li_class)
    loads;
  { res_kernel = k; res_loads = loads; res_class_of_pc = class_of_pc }

let class_of_global_load res pc = Hashtbl.find_opt res.res_class_of_pc pc

let global_loads res =
  List.filter
    (fun li ->
      Ptx.Instr.is_global_load res.res_kernel.Ptx.Kernel.body.(li.li_pc))
    res.res_loads

let count_global res =
  let g = global_loads res in
  let d =
    List.length (List.filter (fun li -> li.li_class = Deterministic) g)
  in
  (d, List.length g - d)

let pp_load_info ppf li =
  Format.fprintf ppf "pc %4d  %-6s  %-17s  slice=%-3d  leaves={%s}" li.li_pc
    (string_of_space li.li_space)
    (string_of_class li.li_class)
    li.li_slice_size
    (String.concat "," (List.map string_of_leaf li.li_leaves))

let pp_result ppf res =
  Format.fprintf ppf "kernel %s: %d loads (%d global)@\n"
    res.res_kernel.Ptx.Kernel.kname
    (List.length res.res_loads)
    (List.length (global_loads res));
  List.iter (fun li -> Format.fprintf ppf "  %a@\n" pp_load_info li)
    res.res_loads
