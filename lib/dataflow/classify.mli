(** The paper's load classifier (Section V).

    A load is {e deterministic} when its effective address derives only
    from parameterized data — thread/CTA ids, grid/block dimensions,
    kernel parameters and immediates.  It is {e non-deterministic} when
    the address depends, transitively, on a value read from memory by a
    prior load (including an atomic's return value).

    The classifier walks the data-dependence graph backwards from the
    definitions of the load's address register.  Loads and [ld.param]
    are traversal leaves: a load is non-deterministic as soon as its
    address flows from {e any} prior load, regardless of how that load's
    own address was formed. *)

open Ptx.Types

type load_class = Deterministic | Nondeterministic

type leaf =
  | Leaf_param  (** kernel parameter ([ld.param]) *)
  | Leaf_sreg  (** special register (tid / ctaid / ...) *)
  | Leaf_imm  (** immediate *)
  | Leaf_load of space  (** value loaded from this memory space *)
  | Leaf_uninit  (** register never written on some path *)

type load_info = {
  li_pc : int;
  li_space : space;
  li_class : load_class;
  li_leaves : leaf list;  (** distinct leaf kinds, sorted *)
  li_slice_size : int;  (** instructions visited in the address slice *)
}

type result = {
  res_kernel : Ptx.Kernel.t;
  res_loads : load_info list;  (** every memory load, in program order *)
  res_class_of_pc : (int, load_class) Hashtbl.t;  (** global loads only *)
}

val string_of_class : load_class -> string
val short_class : load_class -> string
(** ["D"] / ["N"], the paper's figure labels. *)

val string_of_leaf : leaf -> string

val classify : Ptx.Kernel.t -> result
(** Classify every memory load in the kernel. *)

val class_of_global_load : result -> int -> load_class option
(** Class of the global load at [pc], [None] if [pc] is not a global
    load. *)

val global_loads : result -> load_info list

val count_global : result -> int * int
(** (deterministic, non-deterministic) static counts of global loads. *)

val pp_load_info : Format.formatter -> load_info -> unit
val pp_result : Format.formatter -> result -> unit
