(** Fixed-capacity mutable bit sets over [0, n). *)

type t

val create : int -> t
(** [create n] is the empty set over [0, n). *)

val copy : t -> t
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

val union_into : dst:t -> src:t -> bool
(** [dst <- dst ∪ src]; returns whether [dst] changed. *)

val diff_into : dst:t -> src:t -> unit
(** [dst <- dst \ src]. *)

val equal : t -> t -> bool
val clear : t -> unit
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val elements : t -> int list
val of_list : int -> int list -> t
