(** Backward liveness of register nodes (general + predicate).

    Complements reaching definitions and supports register-pressure
    style analyses (e.g. the spare-register prefetching the paper's
    Section X discusses). *)

type t

val compute : Ptx.Kernel.t -> Ptx.Cfg.t -> t
val live_in_reg : t -> pc:int -> reg:int -> bool
val live_in_pred : t -> pc:int -> pred:int -> bool

val live_nodes_at : t -> int -> int list
(** Live register nodes (general [r], predicate [nregs+p]) entering pc. *)

val max_pressure : t -> int
(** Maximum number of simultaneously live general registers. *)
