(** Full kernel verification: [Ptx.Verify.structural] plus the
    dataflow-dependent checks (use-before-def via reaching definitions,
    floating-point address bases, barriers reachable under divergent
    control flow).  Run by the launch path and by [critload verify]. *)

val verify_kernel : Ptx.Kernel.t -> Ptx.Verify.diag list
(** All diagnostics for the kernel; empty when it is clean.  When the
    structural pass reports errors, the dataflow checks are skipped
    (they assume in-bounds registers and resolvable labels). *)

val verify_clean : Ptx.Kernel.t -> bool
(** No error-severity diagnostics (warnings allowed). *)
