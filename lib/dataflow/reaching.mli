(** Reaching definitions at instruction granularity.

    Register "nodes" unify general and predicate registers: general
    register [r] is node [r], predicate [p] is node [nregs + p], so
    predicate dataflow participates in the analysis. *)

type def = { def_id : int; def_pc : int; def_node : int }

type t = {
  kernel : Ptx.Kernel.t;
  cfg : Ptx.Cfg.t;
  ndefs : int;
  defs : def array;
  defs_of_node : int list array;
  in_at : Bitset.t array;  (** per-pc IN set of definition ids *)
  nregs : int;
}

val node_of_reg : int -> int
val node_of_pred : nregs:int -> int -> int
val compute : Ptx.Kernel.t -> Ptx.Cfg.t -> t

val defs_reaching_node : t -> pc:int -> node:int -> int list
(** pcs of the definitions of [node] that reach [pc]. *)

val defs_reaching_reg : t -> pc:int -> reg:int -> int list
val defs_reaching_pred : t -> pc:int -> pred:int -> int list
