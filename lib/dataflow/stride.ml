(* Static lane-stride analysis of load addresses.

   The paper observes that deterministic loads "tend to generate
   coalesced memory accesses" because consecutive threads compute
   consecutive addresses.  This module turns that observation into a
   static prediction by abstract interpretation over an affine
   lane-coefficient domain:

     Kon k     a known integer constant
     Affv a    unknown-but-uniform base + known coefficients over the
               lane-varying symbols tid.x/tid.y/tid.z/laneid
               (a zero coefficient vector is a warp-uniform value)
     Unknown   lane-variant with unknown shape (data-dependent
               addresses, loop-carried values, irregular arithmetic)

   Given the launch's block shape, an affine address yields the exact
   per-lane offsets of a fully-active warp, and hence the number of
   128-byte lines — coalesced requests — the warp touches.  This also
   covers 2-D blocks where one warp spans several tid.y rows.  Array
   bases are assumed line-aligned (cudaMalloc guarantees 256-byte
   alignment; the workload Layout allocator aligns to 128). *)

open Ptx.Types

(* Coefficients of the lane-varying symbols. *)
type aff = { ax : int64; ay : int64; az : int64; al : int64 }

let zero_aff = { ax = 0L; ay = 0L; az = 0L; al = 0L }

(* Grouped-affine: per-(tid.y, tid.z) groups with unknown-but-distinct
   bases (e.g. [tid.y * width] with unknown width) plus known x/lane
   coefficients within each group. *)
type gaff = { gax : int64; gal : int64 }

type value =
  | Kon of int64
  | Affv of aff
  | Gaff of gaff
  | Unknown

let uniform = Affv zero_aff

let is_uniformish = function
  | Kon _ -> true
  | Affv a -> a = zero_aff
  | Gaff _ | Unknown -> false

(* y/z-only affine values (no x/lane variation) *)
let is_yz_only = function
  | Affv a -> a.ax = 0L && a.al = 0L && a <> zero_aff
  | Kon _ | Gaff _ | Unknown -> false

let aff_map2 f a b =
  { ax = f a.ax b.ax; ay = f a.ay b.ay; az = f a.az b.az; al = f a.al b.al }

let aff_scale k a =
  { ax = Int64.mul k a.ax; ay = Int64.mul k a.ay; az = Int64.mul k a.az;
    al = Int64.mul k a.al }

let add v w =
  match (v, w) with
  | Kon x, Kon y -> Kon (Int64.add x y)
  | Kon _, Affv a | Affv a, Kon _ -> Affv a
  | Affv a, Affv b -> Affv (aff_map2 Int64.add a b)
  | Gaff g, Kon _ | Kon _, Gaff g -> Gaff g
  | Gaff g, Affv a | Affv a, Gaff g ->
      (* known y/z terms shift group bases, which stay group-distinct *)
      Gaff { gax = Int64.add g.gax a.ax; gal = Int64.add g.gal a.al }
  | Gaff a, Gaff b ->
      Gaff { gax = Int64.add a.gax b.gax; gal = Int64.add a.gal b.gal }
  | Unknown, _ | _, Unknown -> Unknown

let neg = function
  | Kon x -> Kon (Int64.neg x)
  | Affv a -> Affv (aff_scale (-1L) a)
  | Gaff g -> Gaff { gax = Int64.neg g.gax; gal = Int64.neg g.gal }
  | Unknown -> Unknown

let sub v w = add v (neg w)

let mul v w =
  match (v, w) with
  | Kon 0L, _ | _, Kon 0L -> Kon 0L
  | Kon x, Kon y -> Kon (Int64.mul x y)
  | Kon k, Affv a | Affv a, Kon k -> Affv (aff_scale k a)
  | Kon k, Gaff g | Gaff g, Kon k ->
      Gaff { gax = Int64.mul k g.gax; gal = Int64.mul k g.gal }
  | Affv a, Affv b when a = zero_aff && b = zero_aff -> uniform
  | (Affv _ as y), (Affv u as v') when is_yz_only y && v' = uniform ->
      ignore u;
      (* y/z term scaled by an unknown uniform: distinct per-group bases *)
      Gaff { gax = 0L; gal = 0L }
  | (Affv u as v'), (Affv _ as y) when is_yz_only y && v' = uniform ->
      ignore u;
      Gaff { gax = 0L; gal = 0L }
  | Gaff g, Affv u when Affv u = uniform && g.gax = 0L && g.gal = 0L ->
      Gaff g
  | Affv u, Gaff g when Affv u = uniform && g.gax = 0L && g.gal = 0L ->
      Gaff g
  | Affv _, Affv _ | Gaff _, _ | _, Gaff _ -> Unknown
  | Unknown, _ | _, Unknown -> Unknown

let shl v w =
  match w with
  | Kon k when k >= 0L && k < 62L ->
      mul v (Kon (Int64.shift_left 1L (Int64.to_int k)))
  | Kon _ -> Unknown
  | Affv _ | Gaff _ | Unknown ->
      if is_uniformish v && is_uniformish w then uniform else Unknown

(* Any pure ALU operation over lane-invariant inputs stays
   lane-invariant, whatever it computes. *)
let opaque_op operands =
  if List.for_all is_uniformish operands then uniform else Unknown

(* ------------- per-kernel analysis ------------- *)

type t = {
  kernel : Ptx.Kernel.t;
  values : value array; (* abstract value defined by each pc *)
}

let sreg_value = function
  | Tid X -> Affv { zero_aff with ax = 1L }
  | Tid Y -> Affv { zero_aff with ay = 1L }
  | Tid Z -> Affv { zero_aff with az = 1L }
  | Laneid -> Affv { zero_aff with al = 1L }
  | Ntid _ | Ctaid _ | Nctaid _ | Warpid -> uniform

let operand_value an (r : Reaching.t) ~pc (op : operand) =
  match op with
  | Imm i -> Kon i
  | Fimm _ -> uniform
  | Sreg s -> sreg_value s
  | Reg reg -> (
      match Reaching.defs_reaching_reg r ~pc ~reg with
      | [] -> Unknown (* no reaching definition: be conservative *)
      | d :: rest ->
          (* a join is precise only when every definition agrees *)
          let v0 = an.values.(d) in
          if List.for_all (fun d' -> an.values.(d') = v0) rest then v0
          else Unknown)

let analyze_instr an r pc (i : Ptx.Instr.t) =
  let ov = operand_value an r ~pc in
  match i with
  | Ld_param _ -> uniform
  | Mov (_, s) -> ov s
  | Iop (Add, _, a, b) -> add (ov a) (ov b)
  | Iop (Sub, _, a, b) -> sub (ov a) (ov b)
  | Iop (Mul, _, a, b) -> mul (ov a) (ov b)
  | Iop (Shl, _, a, b) -> shl (ov a) (ov b)
  | Iop ((Mulhi | Div | Rem | Min | Max | Band | Bor | Bxor | Shr), _, a, b)
    ->
      opaque_op [ ov a; ov b ]
  | Mad (_, a, b, c) -> add (mul (ov a) (ov b)) (ov c)
  | Cvt (dt, _, _, a) when not (dtype_is_float dt) -> ov a
  | Cvt (_, _, _, a) -> opaque_op [ ov a ]
  | Fop (_, _, _, a, b) -> opaque_op [ ov a; ov b ]
  | Fma (_, _, a, b, c) -> opaque_op [ ov a; ov b; ov c ]
  | Funary (_, _, _, a) -> opaque_op [ ov a ]
  | Selp (_, a, b, _) -> opaque_op [ ov a; ov b ]
  | Ld _ | Atom _ -> Unknown (* data-dependent value *)
  | St _ | Setp _ | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit | Label _ ->
      Unknown

(* Forward passes to a fixpoint: straight-line code stabilizes in one;
   anything whose abstract value changes between passes (loop-carried
   definitions) collapses to Unknown. *)
let analyze (k : Ptx.Kernel.t) =
  let cfg = Ptx.Cfg.build k in
  let r = Reaching.compute k cfg in
  let n = Array.length k.Ptx.Kernel.body in
  let an = { kernel = k; values = Array.make n Unknown } in
  Array.iteri
    (fun pc i -> an.values.(pc) <- analyze_instr an r pc i)
    k.Ptx.Kernel.body;
  let unstable = ref true in
  let rounds = ref 0 in
  while !unstable && !rounds < 4 do
    unstable := false;
    incr rounds;
    Array.iteri
      (fun pc i ->
        let v = analyze_instr an r pc i in
        if v <> an.values.(pc) then begin
          an.values.(pc) <- Unknown;
          unstable := true
        end)
      k.Ptx.Kernel.body
  done;
  (an, r)

(* ------------- coalescing prediction ------------- *)

(* [int] payloads are the predicted coalesced requests of one
   fully-active warp. *)
type prediction =
  | Broadcast (* all lanes read one address: 1 request *)
  | Coalesced of int (* 1-2 lines per warp *)
  | Strided of int (* more lines, but statically known *)
  | Irregular (* data-dependent: the uncoalesced-burst candidates *)

let string_of_prediction = function
  | Broadcast -> "broadcast"
  | Coalesced n -> Printf.sprintf "coalesced(%d req/warp)" n
  | Strided n -> Printf.sprintf "strided(%d req/warp)" n
  | Irregular -> "irregular"

let address_value an r pc =
  match an.kernel.Ptx.Kernel.body.(pc) with
  | Ptx.Instr.Ld (_, _, _, a) | Ptx.Instr.Atom (_, _, _, a, _) ->
      add (operand_value an r ~pc a.abase) (Kon (Int64.of_int a.aoffset))
  | _ -> invalid_arg "Stride.address_value: pc is not a load"

(* Distinct lines of a grouped-affine address: per-(y,z) groups have
   unknown, assumed-disjoint bases; within each group x/lane offsets
   are known. *)
let lines_of_gaff ?(warp_size = 32) ?(line_size = 128) ~block g =
  let bx, by, _bz = block in
  let bx = max 1 bx and by = max 1 by in
  let groups = Hashtbl.create 8 in
  for lane = 0 to warp_size - 1 do
    let x = lane mod bx in
    let y = lane / bx mod by in
    let z = lane / (bx * by) in
    let off =
      Int64.add
        (Int64.mul g.gax (Int64.of_int x))
        (Int64.mul g.gal (Int64.of_int lane))
    in
    let line = Int64.div off (Int64.of_int line_size) in
    let key = (y, z) in
    let lines =
      match Hashtbl.find_opt groups key with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 4 in
          Hashtbl.add groups key s;
          s
    in
    Hashtbl.replace lines line ()
  done;
  Hashtbl.fold (fun _ lines acc -> acc + Hashtbl.length lines) groups 0

(* Distinct 128-byte lines touched by a fully-active warp whose lane
   offsets follow the affine form, for the given block shape. *)
let lines_of_aff ?(warp_size = 32) ?(line_size = 128) ~block a =
  let bx, by, _bz = block in
  let bx = max 1 bx and by = max 1 by in
  let seen = Hashtbl.create 8 in
  for lane = 0 to warp_size - 1 do
    let x = lane mod bx in
    let y = lane / bx mod by in
    let z = lane / (bx * by) in
    let off =
      Int64.add
        (Int64.add
           (Int64.mul a.ax (Int64.of_int x))
           (Int64.mul a.ay (Int64.of_int y)))
        (Int64.add
           (Int64.mul a.az (Int64.of_int z))
           (Int64.mul a.al (Int64.of_int lane)))
    in
    let line =
      Int64.div
        (if Int64.compare off 0L < 0 then
           Int64.sub off (Int64.of_int (line_size - 1))
         else off)
        (Int64.of_int line_size)
    in
    Hashtbl.replace seen line ()
  done;
  Hashtbl.length seen

let predict_value ?warp_size ?line_size ~block = function
  | Unknown -> Irregular
  | Kon _ -> Broadcast
  | Affv a when a = zero_aff -> Broadcast
  | Affv a ->
      let n = lines_of_aff ?warp_size ?line_size ~block a in
      if n <= 2 then Coalesced n else Strided n
  | Gaff g ->
      let n = lines_of_gaff ?warp_size ?line_size ~block g in
      if n <= 2 then Coalesced n else Strided n

type load_prediction = { lp_pc : int; lp_prediction : prediction }

(* Predict the warp-level coalescing of every global load, given the
   launch's block shape (default: a 1-D block, the common layout). *)
let predict ?warp_size ?line_size ?(block = (256, 1, 1)) (k : Ptx.Kernel.t) =
  let an, r = analyze k in
  List.map
    (fun pc ->
      { lp_pc = pc;
        lp_prediction =
          predict_value ?warp_size ?line_size ~block (address_value an r pc) })
    (Ptx.Kernel.global_load_pcs k)

let pp_predictions ?block ppf k =
  List.iter
    (fun lp ->
      Format.fprintf ppf "  pc %4d  %s@\n" lp.lp_pc
        (string_of_prediction lp.lp_prediction))
    (predict ?block k)
