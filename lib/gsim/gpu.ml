(* Top-level cycle simulator: SMs + interconnect + memory partitions,
   plus the per-launch CTA work distributor.

   The machine persists across the kernel launches of one application,
   so L1/L2 contents survive kernel boundaries as they do on hardware;
   only the warp slots are reconfigured per launch.

   CTA scheduling (Section X.B): the hardware default assigns CTAs to
   SMs in round-robin order as slots free up; the clustered policy
   sends groups of [k] consecutive CTAs to the same SM to exploit
   neighbour-CTA data locality in the private L1s. *)

type t = {
  cfg : Config.t;
  stats : Stats.t;
  trace : Trace.t;
  icnt : Icnt.t;
  parts : L2part.t array;
  sms : Sm.t array;
  mutable cycle : int;
}

(* The per-cycle hot path allocates short-lived boxes (Int64 register
   values, requests, warp-load records); under the default 256k-word
   minor heap a long simulation spends a measurable fraction of its
   time in minor collections.  Grow the minor heap once per process —
   GC parameters are pure runtime tuning and cannot affect simulation
   results.  Never shrinks a user-configured larger heap. *)
let gc_tuned = ref false

let tune_gc () =
  if not !gc_tuned then begin
    gc_tuned := true;
    let g = Gc.get () in
    let minor = 16 * 1024 * 1024 (* words *) in
    if g.Gc.minor_heap_size < minor then
      Gc.set
        { g with
          Gc.minor_heap_size = minor;
          space_overhead = max g.Gc.space_overhead 200 }
  end

let create_machine ?(cfg = Config.default) ?stats ?(trace = Trace.null ()) ()
    =
  tune_gc ();
  let stats = match stats with Some s -> s | None -> Stats.create () in
  {
    cfg;
    stats;
    trace;
    icnt = Icnt.create ~trace cfg;
    parts =
      Array.init cfg.Config.n_mem_partitions (fun id ->
          L2part.create ~trace cfg ~id ~stats);
    sms =
      Array.init cfg.Config.n_sms (fun id ->
          Sm.create ~trace cfg ~id ~stats ~warp_slots:0);
    cycle = 0;
  }

(* Per-launch distributor state. *)
type dist = {
  launch : Launch.t;
  n_ctas_target : int;
  mutable next_cta : int;
  cta_queues : int Queue.t array;
}

let make_dist t ?(max_ctas = 0) launch =
  let n_ctas = Launch.n_ctas launch in
  let n_ctas_target = if max_ctas = 0 then n_ctas else min max_ctas n_ctas in
  let cta_queues = Array.init t.cfg.Config.n_sms (fun _ -> Queue.create ()) in
  (match t.cfg.Config.cta_sched with
  | Config.Round_robin -> ()
  | Config.Clustered k ->
      let k = max 1 k in
      for cta = 0 to n_ctas_target - 1 do
        Queue.push cta cta_queues.(cta / k mod t.cfg.Config.n_sms)
      done);
  { launch; n_ctas_target; next_cta = 0; cta_queues }

(* Hand out CTAs to SMs with free slots. *)
let distribute t d =
  match t.cfg.Config.cta_sched with
  | Config.Round_robin ->
      let progress = ref true in
      while !progress && d.next_cta < d.n_ctas_target do
        progress := false;
        Array.iter
          (fun sm ->
            if
              d.next_cta < d.n_ctas_target
              && Sm.free_slots sm > 0
              && Sm.try_launch sm d.launch ~cta_lin:d.next_cta
            then begin
              d.next_cta <- d.next_cta + 1;
              progress := true
            end)
          t.sms
      done
  | Config.Clustered _ ->
      Array.iteri
        (fun i sm ->
          let q = d.cta_queues.(i) in
          let progress = ref true in
          while !progress && not (Queue.is_empty q) do
            progress := false;
            let cta = Queue.peek q in
            if Sm.free_slots sm > 0 && Sm.try_launch sm d.launch ~cta_lin:cta
            then begin
              ignore (Queue.pop q);
              progress := true
            end
          done)
        t.sms

let work_remaining t d =
  let pending_ctas =
    match t.cfg.Config.cta_sched with
    | Config.Round_robin -> d.next_cta < d.n_ctas_target
    | Config.Clustered _ ->
        Array.exists (fun q -> not (Queue.is_empty q)) d.cta_queues
  in
  pending_ctas
  || Array.exists (fun sm -> not (Sm.idle sm)) t.sms
  || Array.exists (fun p -> not (L2part.idle p)) t.parts

(* Occupancy timelines are sampled sparsely — every 256th cycle — so
   tracing a long run stays linear in events, not cycles * SMs. *)
let occupancy_interval_mask = 255

let step t d =
  distribute t d;
  let now = t.cycle in
  for i = 0 to Array.length t.sms - 1 do
    Sm.cycle t.sms.(i) ~now ~icnt:t.icnt
  done;
  for i = 0 to Array.length t.parts - 1 do
    L2part.cycle t.parts.(i) ~now ~icnt:t.icnt
  done;
  if Trace.enabled t.trace && now land occupancy_interval_mask = 0 then
    Array.iteri
      (fun id sm ->
        let mshr, ldst_q = Sm.occupancy_sample sm in
        Trace.emit t.trace
          (Trace.Ev_occupancy { cycle = now; sm = id; mshr; ldst_q }))
      t.sms;
  t.cycle <- t.cycle + 1

(* The stall watchdog fires after this many cycles with no change in
   the activity fingerprint.  Inspecting the SMs then tells a barrier
   deadlock (some warp parked at bar.sync forever) from a livelock. *)
let watchdog_cycles = 200_000

let diagnose_stall t (launch : Launch.t) =
  let kernel = launch.Launch.kernel.Ptx.Kernel.kname in
  let waiters =
    Array.to_list t.sms |> List.concat_map (fun sm -> Sm.barrier_waiters sm)
  in
  match waiters with
  | (cta, warp, pc) :: rest ->
      Sim_error.error ~kernel ~pc ~cta ~warp ~cycle:t.cycle
        Sim_error.Barrier_deadlock
        "warp stuck at a barrier for %d cycles (%d more warp(s) waiting); \
         the rest of the CTA never arrives — likely a barrier under \
         divergent control flow"
        watchdog_cycles (List.length rest)
  | [] ->
      Sim_error.error ~kernel ~cycle:t.cycle Sim_error.No_progress
        "no forward progress for %d cycles: no instruction retired, no \
         memory request advanced, and no warp is at a barrier"
        watchdog_cycles

(* ---- event-driven fast-forward ----

   When every component is quiescent — no SM can issue or retry, no
   interconnect transfer has arrived, no DRAM burst or ROP hit has
   matured, and no pending CTA could be placed — nothing in the model
   mutates until the earliest "next wake" among them, except the
   per-cycle unit-occupancy samples, which [Sm.account_idle] restores
   in batch.  The clock can therefore jump to that horizon instead of
   idling cycle-by-cycle; [run_launch ~fast_forward:true] is
   byte-identical in [Stats.t] and trace stream to the naive loop (the
   equivalence test cross-checks all 15 apps).

   Returns [None] when some component is active at [t.cycle] (step
   normally) and [Some h] with the quiescent horizon otherwise —
   [max_int] when nothing is pending at all, in which case the caller's
   watchdog cap turns the jump into the same stall diagnosis the naive
   loop reaches. *)
let quiescent_horizon t d =
  let dist_active =
    (* CTA placement is slot-driven, not time-driven: if any pending
       CTA might fit now, stay on the naive path.  Slots only free
       during SM activity, so this cannot become true inside a
       quiescent window. *)
    match t.cfg.Config.cta_sched with
    | Config.Round_robin ->
        d.next_cta < d.n_ctas_target
        && Array.exists (fun sm -> Sm.free_slots sm > 0) t.sms
    | Config.Clustered _ ->
        let n = Array.length t.sms in
        let rec any i =
          i < n
          && ((not (Queue.is_empty d.cta_queues.(i)))
              && Sm.free_slots t.sms.(i) > 0
             || any (i + 1))
        in
        any 0
  in
  if dist_active then None
  else begin
    let now = t.cycle in
    let active = ref false in
    let horizon = ref max_int in
    let consider c =
      if c <= now then active := true else if c < !horizon then horizon := c
    in
    let nsm = Array.length t.sms in
    let i = ref 0 in
    while (not !active) && !i < nsm do
      consider (Sm.next_wake t.sms.(!i) ~now);
      incr i
    done;
    if not !active then consider (Icnt.next_wake t.icnt ~now);
    let nparts = Array.length t.parts in
    let i = ref 0 in
    while (not !active) && !i < nparts do
      consider (L2part.next_wake t.parts.(!i) ~now);
      incr i
    done;
    if !active then None else Some !horizon
  end

(* Run one kernel launch to completion (or to the caps), keeping cache
   state from prior launches.  Returns false when an instruction/cycle
   cap stopped the launch early (also recorded as [stats.truncated]).
   With [fast_forward] (default false) quiescent windows are jumped
   instead of stepped — same observable behaviour, fewer iterations.
   @raise Sim_error.Error on barrier deadlock or livelock — a guard
   against malformed kernels and simulator bugs, not an expected
   outcome. *)
let run_launch t ?max_ctas ?(fast_forward = false) (launch : Launch.t) =
  let threads_per_cta = Launch.threads_per_cta launch in
  let ctas_per_sm =
    Config.ctas_per_sm t.cfg ~threads_per_cta
      ~smem_bytes:launch.Launch.kernel.Ptx.Kernel.smem_bytes
  in
  let warps_per_cta =
    Launch.warps_per_cta launch ~warp_size:t.cfg.Config.warp_size
  in
  Array.iter
    (fun sm ->
      Sm.reconfigure sm ~warp_slots:(ctas_per_sm * warps_per_cta)
        ~warps_per_cta)
    t.sms;
  let d = make_dist t ?max_ctas launch in
  let last_activity = ref t.cycle in
  let last_fingerprint = ref (-1) in
  let fingerprint () =
    t.stats.Stats.warp_insts + t.stats.Stats.l1_probe_cycles
    + t.stats.Stats.completed_ctas
  in
  let cap_hit () =
    (t.cfg.Config.max_warp_insts > 0
     && t.stats.Stats.warp_insts >= t.cfg.Config.max_warp_insts)
    || t.cycle >= t.cfg.Config.max_cycles
  in
  while work_remaining t d && not (cap_hit ()) do
    (if fast_forward then
       match quiescent_horizon t d with
       | None -> ()
       | Some h ->
           (* Never jump past an observable boundary: the watchdog
              deadline (the stall must be diagnosed at the same cycle),
              the cycle cap, or — when tracing — the next sparse
              occupancy sample, which the naive loop emits in [step]. *)
           let h = min h (!last_activity + watchdog_cycles) in
           let h = min h t.cfg.Config.max_cycles in
           let h =
             if Trace.enabled t.trace then
               if t.cycle land occupancy_interval_mask = 0 then t.cycle
               else
                 min h
                   ((t.cycle lor occupancy_interval_mask) + 1)
             else h
           in
           if h > t.cycle then begin
             Array.iter
               (fun sm -> Sm.account_idle sm ~now:t.cycle ~until:h)
               t.sms;
             t.cycle <- h
           end);
    if not (cap_hit ()) then begin
      step t d;
      let fp = fingerprint () in
      if fp <> !last_fingerprint then begin
        last_fingerprint := fp;
        last_activity := t.cycle
      end
      else if t.cycle - !last_activity > watchdog_cycles then
        diagnose_stall t launch
    end
  done;
  t.stats.Stats.cycles <- t.cycle;
  if cap_hit () then begin
    t.stats.Stats.truncated <- true;
    false
  end
  else true

(* Convenience: one launch on a fresh machine. *)
let run ?cfg ?max_ctas ?stats ?trace ?fast_forward (launch : Launch.t) =
  let t = create_machine ?cfg ?stats ?trace () in
  ignore (run_launch t ?max_ctas ?fast_forward launch);
  t
