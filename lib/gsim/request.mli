(** Memory requests and per-warp-load tracking records.

    A warp-level load that does not fully coalesce fans out into
    several requests, one per distinct cache line.  Each request
    carries timestamps at every pipeline boundary so the turnaround
    breakdowns of the paper's Figs 5 and 7 can be reconstructed. *)

type kind = Load | Store | Atomic

(** Deepest level that serviced a request (determines its unloaded,
    contention-free latency). *)
type level = Lvl_l1 | Lvl_l2 | Lvl_dram

(** Tracking record for one warp-level global load instruction. *)
type warp_load = {
  wl_sm : int;
  wl_warp_slot : int;  (** SM warp-table index, for wake-up *)
  wl_cta : int;  (** linear CTA id, [-1] when not attributable *)
  wl_kernel : string;
  wl_pc : int;
  wl_cls : Dataflow.Classify.load_class;
  wl_active : int;  (** active threads in the warp *)
  wl_t_issue : int;
  mutable wl_nreq : int;  (** coalesced requests generated *)
  mutable wl_outstanding : int;
  mutable wl_t_first_accept : int;
  mutable wl_t_last_accept : int;
  mutable wl_t_first_return : int;
  mutable wl_t_last_return : int;
  mutable wl_deepest : level;
  mutable wl_sum_icnt_wait : int;
      (** queueing delay between L1 acceptance and L2 service *)
}

type t = {
  req_id : int;
  line_addr : int;
  sm_id : int;
  cta : int;  (** requesting CTA, [-1] when not attributable (prefetch) *)
  kind : kind;
  cls : Dataflow.Classify.load_class;
  wl : warp_load option;  (** [None] for stores *)
  mutable t_issue : int;  (** warp issued to the LD/ST unit *)
  mutable t_accept : int;  (** accepted by the L1 *)
  mutable t_icnt : int;  (** injected towards L2 *)
  mutable t_arrive : int;  (** landed at the partition input *)
  mutable t_l2_start : int;
  mutable t_serviced : int;  (** data produced at the partition *)
  mutable t_return : int;  (** fill back at the SM *)
  mutable t_resp_arrive : int;
  mutable level : level;
  mutable no_fill : bool;  (** bypassed loads do not allocate in the L1 *)
}

val make :
  cta:int ->
  line_addr:int ->
  sm_id:int ->
  kind:kind ->
  cls:Dataflow.Classify.load_class ->
  wl:warp_load option ->
  now:int ->
  t

val make_warp_load :
  cta:int ->
  sm:int ->
  warp_slot:int ->
  kernel:string ->
  pc:int ->
  cls:Dataflow.Classify.load_class ->
  active:int ->
  now:int ->
  warp_load

val deeper : level -> level -> level

val unloaded_latency : Config.t -> level -> int
(** Contention-free latency of a request serviced at the given level. *)
