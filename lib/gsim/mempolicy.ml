(* Per-SM interpreter for Config.policy — see the .mli for the hook
   contract.  The representation keeps one flat record with optional
   shortcuts to the IAR and throttle state so the per-cycle hooks are
   a null check under Baseline; the recursive [state] mirrors the
   Config.policy tree for [decide]. *)

type cls = Dataflow.Classify.load_class

type decision = {
  d_flags : Config.load_policy;
  d_protect : bool;
  d_buffer : bool;
}

let no_decision =
  { d_flags = Config.no_policy; d_protect = false; d_buffer = false }

(* ---- IAR reorder buffer ---- *)

type iar_entry = {
  ie_line : int;
  ie_born : int;
  ie_wl : Request.warp_load option;
  ie_kind : Request.kind;
  ie_cls : cls;
  ie_cta : int;
}

type iar_state = {
  ip : Config.iar_params;
  mutable entries : iar_entry list; (* oldest first *)
  mutable count : int;
  mutable retry_at : int; (* quiet until this cycle after a failed probe *)
}

(* ---- holistic bypass / protect / throttle ---- *)

type pc_mon = {
  mutable mon_probes : int; (* completed D-load probes at this pc *)
  mutable mon_hits : int; (* of which hit (or merged) in the L1 *)
  mutable mon_bypass : bool; (* verdict: streaming, bypass the L1 *)
}

type holistic_state = {
  hp : Config.holistic_params;
  stream : (string * int, pc_mon) Hashtbl.t;
  mutable win_probes : int;
  mutable win_fails : int;
  mutable h_allowed : int;
  mutable h_max_ctas : int;
  mutable h_warps_per_cta : int;
  mutable h_steps : int; (* throttle tightenings, for observability *)
}

type state =
  | S_baseline
  | S_ndet of Config.load_policy
  | S_iar of iar_state
  | S_holistic of holistic_state
  | S_perpc of ((string * int) * Config.load_policy) list * state

type t = {
  st : state;
  iar : iar_state option; (* shortcut into the S_iar arm, if any *)
  thr : holistic_state option; (* shortcut into the S_holistic arm *)
}

let rec state_of_policy = function
  | Config.Baseline -> S_baseline
  | Config.Ndet_flags f -> S_ndet f
  | Config.Iar ip -> S_iar { ip; entries = []; count = 0; retry_at = 0 }
  | Config.Holistic hp ->
      S_holistic
        {
          hp;
          stream = Hashtbl.create 32;
          win_probes = 0;
          win_fails = 0;
          h_allowed = max_int;
          h_max_ctas = 0;
          h_warps_per_cta = 0;
          h_steps = 0;
        }
  | Config.Per_pc (ps, inner) -> S_perpc (ps, state_of_policy inner)

let rec find_iar = function
  | S_iar is -> Some is
  | S_perpc (_, inner) -> find_iar inner
  | S_baseline | S_ndet _ | S_holistic _ -> None

let rec find_thr = function
  | S_holistic hs -> Some hs
  | S_perpc (_, inner) -> find_thr inner
  | S_baseline | S_ndet _ | S_iar _ -> None

let create (cfg : Config.t) =
  let st = state_of_policy cfg.Config.policy in
  { st; iar = find_iar st; thr = find_thr st }

let reconfigure t ~warp_slots ~warps_per_cta =
  match t.thr with
  | None -> ()
  | Some hs ->
      hs.h_warps_per_cta <- warps_per_cta;
      hs.h_max_ctas <-
        (if warps_per_cta > 0 then max 1 (warp_slots / warps_per_cta) else 0);
      hs.h_allowed <- (if hs.h_max_ctas > 0 then hs.h_max_ctas else max_int);
      hs.win_probes <- 0;
      hs.win_fails <- 0

(* ---- decide ---- *)

let holistic_decision hs cls =
  match cls with
  | Dataflow.Classify.Nondeterministic ->
      if hs.hp.Config.hp_protect_ndet then
        { no_decision with d_protect = true }
      else no_decision
  | Dataflow.Classify.Deterministic -> no_decision

let rec decide_st st ~kernel ~pc cls =
  match st with
  | S_baseline -> no_decision
  | S_ndet f ->
      if cls = Dataflow.Classify.Nondeterministic then
        { no_decision with d_flags = f }
      else no_decision
  | S_iar _ ->
      if cls = Dataflow.Classify.Nondeterministic then
        { no_decision with d_buffer = true }
      else no_decision
  | S_holistic hs -> (
      match cls with
      | Dataflow.Classify.Deterministic -> (
          match Hashtbl.find_opt hs.stream (kernel, pc) with
          | Some m when m.mon_bypass ->
              { no_decision with
                d_flags = { Config.no_policy with Config.lp_bypass = true } }
          | Some _ | None -> no_decision)
      | Dataflow.Classify.Nondeterministic -> holistic_decision hs cls)
  | S_perpc (ps, inner) -> (
      match List.assoc_opt (kernel, pc) ps with
      | Some f -> { no_decision with d_flags = f }
      | None -> decide_st inner ~kernel ~pc cls)

let decide t ~kernel ~pc cls = decide_st t.st ~kernel ~pc cls

(* ---- outcome feedback ---- *)

let on_outcome t ~kernel ~pc cls (outcome : Cache.outcome) =
  match t.thr with
  | None -> ()
  | Some hs ->
      let hp = hs.hp in
      (if cls = Dataflow.Classify.Deterministic then
         let m =
           match Hashtbl.find_opt hs.stream (kernel, pc) with
           | Some m -> m
           | None ->
               let m =
                 { mon_probes = 0; mon_hits = 0; mon_bypass = false }
               in
               Hashtbl.add hs.stream (kernel, pc) m;
               m
         in
         (match outcome with
         | Cache.Hit | Cache.Hit_reserved ->
             m.mon_probes <- m.mon_probes + 1;
             m.mon_hits <- m.mon_hits + 1
         | Cache.Miss -> m.mon_probes <- m.mon_probes + 1
         | Cache.Rsrv_fail _ -> ());
         if
           (not m.mon_bypass)
           && m.mon_probes >= hp.Config.hp_bypass_sample
           && m.mon_hits * 100 <= hp.Config.hp_bypass_hit_pct * m.mon_probes
         then m.mon_bypass <- true);
      (* the reservation-fail throttle window counts every probe
         attempt, including the failed ones it exists to detect *)
      hs.win_probes <- hs.win_probes + 1;
      (match outcome with
      | Cache.Rsrv_fail _ -> hs.win_fails <- hs.win_fails + 1
      | Cache.Hit | Cache.Hit_reserved | Cache.Miss -> ());
      if hs.win_probes >= hp.Config.hp_throttle_window then begin
        let rate = 100 * hs.win_fails / hs.win_probes in
        let max_ctas =
          if hs.h_max_ctas > 0 then hs.h_max_ctas else max_int
        in
        if rate >= hp.Config.hp_throttle_high_pct && hs.h_allowed > 1 then begin
          hs.h_allowed <- min hs.h_allowed max_ctas - 1;
          hs.h_steps <- hs.h_steps + 1
        end
        else if
          rate <= hp.Config.hp_throttle_low_pct && hs.h_allowed < max_ctas
        then hs.h_allowed <- hs.h_allowed + 1;
        hs.win_probes <- 0;
        hs.win_fails <- 0
      end

let allowed_ctas t =
  match t.thr with None -> max_int | Some hs -> hs.h_allowed

let throttle_steps t =
  match t.thr with None -> 0 | Some hs -> hs.h_steps

(* ---- IAR buffer operations ---- *)

let iar_room t ~n =
  match t.iar with
  | None -> false
  | Some is -> is.count + n <= is.ip.Config.iar_entries

let iar_add t e =
  match t.iar with
  | None -> ()
  | Some is ->
      is.entries <- is.entries @ [ e ];
      is.count <- is.count + 1

let iar_pending t = match t.iar with None -> 0 | Some is -> is.count

(* most-combinable line and its entry count; first-seen (oldest) wins
   ties *)
let most_combinable is =
  let counts = ref [] in
  List.iter
    (fun e ->
      match List.assoc_opt e.ie_line !counts with
      | Some r -> incr r
      | None -> counts := !counts @ [ (e.ie_line, ref 1) ])
    is.entries;
  let best = ref 0 and best_line = ref 0 in
  List.iter
    (fun (line, r) ->
      if !r > !best then begin
        best := !r;
        best_line := line
      end)
    !counts;
  (!best_line, !best)

(* A failed probe means a resource (tag, MSHR, injection credit) is
   exhausted; it will not free for several cycles, so retrying every
   cycle only burns the L1 port.  After a failure the buffer yields to
   the in-order queue for a fixed quiet window. *)
let iar_fail_backoff = 8

let iar_defer t ~now =
  match t.iar with
  | None -> ()
  | Some is -> is.retry_at <- now + iar_fail_backoff

let iar_select t ~now ~fifo_nonempty =
  match t.iar with
  | None -> None
  | Some is ->
      if is.count = 0 || now < is.retry_at then None
      else begin
        let line, combined = most_combinable is in
        (* a formed batch is the unit's whole purpose: harvest it now,
           turning [combined] would-be probes into one *)
        if combined >= 2 then Some line
        else
          (* oldest-first list: the first aged entry is the oldest *)
          match
            List.find_opt
              (fun e -> now - e.ie_born >= is.ip.Config.iar_max_wait)
              is.entries
          with
          | Some e -> Some e.ie_line
          | None -> if fifo_nonempty then None else Some line
      end

let iar_batch t ~line =
  match t.iar with
  | None -> []
  | Some is -> List.filter (fun e -> e.ie_line = line) is.entries

let iar_remove_line t ~line =
  match t.iar with
  | None -> ()
  | Some is ->
      let keep = List.filter (fun e -> e.ie_line <> line) is.entries in
      is.count <- List.length keep;
      is.entries <- keep
