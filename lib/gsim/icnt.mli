(** Interconnection network between SMs and memory partitions.

    Request path: each SM owns [icnt_buffer_size] injection credits;
    the L1 checks [can_inject] before declaring a miss — a full buffer
    is the paper's "reservation fail by interconnection".  Requests
    arrive at their partition after [icnt_latency] cycles; the credit
    returns when the partition consumes the request.

    Response path: same latency, unlimited buffering (SMs drain fills
    at a fixed rate). *)

type t

val create : ?trace:Trace.t -> Config.t -> t
(** [?trace] defaults to a null sink; transfer events (enqueue /
    dequeue on both directions) are emitted only when enabled. *)

val partition_of : Config.t -> sm:int -> int -> int
(** Memory partition servicing a line address.  Under the Section X.C
    semi-global-L2 ablation each SM cluster owns a private subset of
    partitions, so the mapping depends on the requesting SM. *)

val can_inject : t -> sm:int -> bool
val inject_request : t -> now:int -> Request.t -> unit

val pop_request : t -> now:int -> part:int -> Request.t option
(** Head request for the partition if it has arrived; consuming it
    returns the credit to its SM. *)

val inject_response : t -> now:int -> Request.t -> unit
val pop_response : t -> now:int -> sm:int -> Request.t option
val pending_responses : t -> sm:int -> int

val response_arrived : t -> now:int -> sm:int -> bool
(** Allocation-free probe: true iff the head response for [sm] has
    arrived and {!pop_response} would return it. *)

val next_wake : t -> now:int -> int
(** Fast-forward contract: earliest cycle at which an in-flight
    transfer matures (both queue families are FIFO in arrival time, so
    only the heads are inspected; allocation-free).  A value [<= now]
    — an arrived head awaits its consumer; [max_int] — nothing in
    flight. *)
