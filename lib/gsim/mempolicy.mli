(** Per-SM interpreter for the memory-system policy selected in
    {!Config.t.policy}.

    [Sm] consults this module at five points of the load path — load
    issue ({!decide}), coalescer routing (the [d_buffer] flag), cache
    probe outcome ({!on_outcome}), warp-issue gating
    ({!allowed_ctas}), and launch reconfiguration ({!reconfigure}) —
    and otherwise runs the stock pipeline.  Under {!Config.Baseline}
    every hook is a constant-time no-op returning the neutral answer,
    which is what keeps the default run byte-identical to the
    perf-lock goldens.

    To add a policy: extend {!Config.policy}, give it a state arm
    here, answer {!decide} (and whichever of the optional hooks it
    needs), and name its parameters in [Config.string_of_mem_policy]
    so sweep-cache keys distinguish its runs. *)

type cls = Dataflow.Classify.load_class

(** What the policy wants for one global load instruction. *)
type decision = {
  d_flags : Config.load_policy;
      (** static split/prefetch/bypass flags (the X.A mechanisms) *)
  d_protect : bool;
      (** pin the L1 line this load touches (eviction second-chance) *)
  d_buffer : bool;
      (** route the load through the IAR reorder buffer instead of
          the in-order LD/ST queue *)
}

val no_decision : decision
(** Neutral answer: stock flags, no protection, no buffering. *)

type t

val create : Config.t -> t
(** Fresh per-SM state for the config's policy. *)

val reconfigure : t -> warp_slots:int -> warps_per_cta:int -> unit
(** Called at each launch boundary (no CTAs resident): resets the
    throttle to fully open for the new occupancy and clears windowed
    counters.  Streaming-pc verdicts persist across launches, like the
    caches themselves. *)

val decide : t -> kernel:string -> pc:int -> cls -> decision
(** Policy decision for the global load at [(kernel, pc)]. *)

val on_outcome : t -> kernel:string -> pc:int -> cls -> Cache.outcome -> unit
(** Feed one L1 probe outcome back to the policy (streaming detection
    and the reservation-fail throttle window).  Call once per demand
    probe attempt, mirroring the {!Stats} accounting. *)

val allowed_ctas : t -> int
(** CTA-granular warp-throttle level: only warps of the [allowed_ctas]
    lowest-based resident CTAs may issue this cycle ([max_int] when
    the policy does not throttle).  CTA granularity keeps barriers
    whole — a throttled CTA is throttled as a unit. *)

val throttle_steps : t -> int
(** Times the throttle tightened (observability and tests). *)

(** {1 IAR reorder buffer}

    Holds individual line requests of buffered loads; [Sm] issues at
    most one line batch per cycle, probing the L1 once for the whole
    batch and attaching the secondaries to the primary's MSHR entry.
    All hooks are no-ops / empty under non-IAR policies. *)

type iar_entry = {
  ie_line : int;  (** cache-line address *)
  ie_born : int;  (** cycle the entry was buffered *)
  ie_wl : Request.warp_load option;
  ie_kind : Request.kind;
  ie_cls : cls;
  ie_cta : int;
}

val iar_room : t -> n:int -> bool
(** Can [n] more line entries be buffered?  [false] under non-IAR
    policies (callers then use the in-order queue). *)

val iar_add : t -> iar_entry -> unit
(** Buffer one line entry.  Call only after {!iar_room}. *)

val iar_pending : t -> int
(** Buffered line entries (0 under non-IAR policies). *)

val iar_select : t -> now:int -> fifo_nonempty:bool -> int option
(** The line the buffer wants to issue this cycle, or [None] to let
    the in-order queue go.  A formed batch (two or more entries on
    one line) issues immediately — harvesting the combining is the
    unit's purpose; next come aged singles (waited [iar_max_wait]+);
    otherwise the queue drains first and the buffer only issues when
    the queue is idle (most buffered entries, oldest first on ties).
    Quiet (constant [None]) during the post-failure backoff window
    set by {!iar_defer}. *)

val iar_defer : t -> now:int -> unit
(** A buffered probe just failed: the exhausted resource will not
    free for several cycles, so the unit goes quiet for a fixed
    backoff window instead of burning the L1 port on retries. *)

val iar_batch : t -> line:int -> iar_entry list
(** All buffered entries for [line], oldest first, without removing
    them (the probe may fail and retry later). *)

val iar_remove_line : t -> line:int -> unit
(** Drop every entry for [line] after a successful probe. *)
