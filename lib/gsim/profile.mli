(** Profile reducer: folds the {!Trace} event stream into the per-PC
    and per-category derived metrics the paper's figures plot —
    turnaround histograms in log-2 buckets (Figs 5-6), reservation-fail
    attribution by load category (Fig 3), MSHR-merge inter- vs
    intra-CTA locality (Figs 8-9), and per-SM MSHR / LD-ST queue
    occupancy timelines.

    A profile is a commutative-monoid accumulator: profiles built from
    disjoint event streams {!merge} in any order to identical
    summaries, so per-worker profiles can ride the parsweep pipeline
    as JSON. *)

type cls = Dataflow.Classify.load_class

(** {1 Log-2 latency histogram} *)

val n_buckets : int

val bucket_of_latency : int -> int
(** Bucket 0 holds latency [<= 0]; bucket [i >= 1] holds
    [\[2^(i-1), 2^i)]; the last bucket absorbs everything above. *)

val bucket_lo : int -> int
(** Inclusive lower bound of a bucket. *)

val bucket_label : int -> string

(** {1 Accumulators} *)

type class_profile = {
  mutable cp_issues : int;  (** warp-level loads issued *)
  mutable cp_returns : int;  (** warp-level loads completed *)
  mutable cp_sum_turnaround : int;
  mutable cp_max_turnaround : int;
  cp_hist : int array;  (** {!n_buckets} turnaround buckets *)
  mutable cp_l1_hit : int;
  mutable cp_l1_merge : int;
  mutable cp_l1_miss : int;
  cp_l1_fail : int array;  (** tags / mshr / icnt *)
  mutable cp_l2_access : int;
  mutable cp_l2_miss : int;
  cp_l2_fail : int array;
}

type pc_profile = {
  pp_kernel : string;
  pp_pc : int;
  pp_cls : cls;
  mutable pp_issues : int;
  mutable pp_returns : int;
  mutable pp_sum_turnaround : int;
  pp_hist : int array;
}

type occ_sample = { oc_sm : int; oc_cycle : int; oc_mshr : int; oc_ldst : int }

type t = {
  per_class : class_profile array;  (** D, N — {!Stats.cls_index} order *)
  per_pc : (string * int, pc_profile) Hashtbl.t;
  mutable store_ok : int;
  st_fail : int array;
  mutable l2_store_fail : int;
  mutable prefetch_probes : int;
  mutable prefetch_misses : int;
  mutable l1_merge_intra : int;
  mutable l1_merge_inter : int;
  mutable l2_merge_intra : int;
  mutable l2_merge_inter : int;
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable icnt_req_enq : int;
  mutable icnt_req_deq : int;
  mutable icnt_resp_enq : int;
  mutable icnt_resp_deq : int;
  mutable occ : occ_sample list;  (** reverse emission order *)
}

val create : unit -> t
val add : t -> Trace.event -> unit

val sink : t -> Trace.t
(** A trace handle whose stream sink feeds this profile. *)

val merge : dst:t -> src:t -> unit
(** Fold [src] into [dst]; associative and commutative over disjoint
    event streams. *)

(** {1 Derived metrics} *)

val avg_turnaround : t -> cls -> float
val l1_loads : t -> cls -> int
(** Completed L1 load probes: hit + merge + miss (fails excluded),
    matching [Stats.cs_l1_access]. *)

val occ_sorted : t -> occ_sample list
(** Occupancy samples in deterministic (cycle, sm) order regardless of
    merge order. *)

(** {1 Serialization} *)

val to_json : t -> Stats_io.Json.t
(** Deterministic: per-PC rows sorted by (kernel, pc), occupancy by
    (cycle, sm). *)

val of_json : Stats_io.Json.t -> t
(** @raise Stats_io.Json.Parse_error on schema mismatch. *)

val pp_summary : Format.formatter -> t -> unit
(** The [critload trace APP --format summary] report: per-category
    turnaround histograms, reservation-fail attribution, MSHR-merge
    locality, occupancy digest, hottest loads. *)

val summary_to_string : t -> string
