(** Machine-readable stats layer: a small in-tree JSON value type with
    an emitter and parser (no external dependency), plus lossless
    converters for {!Stats.t} and summaries of
    {!Dataflow.Classify.result} and {!Config.t}.

    Emission is deterministic: object fields appear in a fixed order
    and hashtable-backed collections are sorted before printing, so two
    equal stats values always serialize to byte-identical strings (the
    invariant the parallel sweep runner's retry logic relies on). *)

(** {1 JSON values} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string
  (** Raised by {!of_string} on malformed input and by the accessors
      below on schema mismatches. *)

  val to_string : t -> string
  (** Compact, deterministic rendering (fields in construction order). *)

  val to_channel : out_channel -> t -> unit

  val of_string : string -> t
  (** @raise Parse_error on malformed input. *)

  (** {2 Schema accessors} — all raise [Parse_error] on mismatch. *)

  val member : string -> t -> t
  (** Field of an object; [Null] when absent. *)

  val get_int : t -> int
  val get_float : t -> float
  (** Accepts both [Int] and [Float]. *)

  val get_bool : t -> bool
  val get_str : t -> string
  val get_list : t -> t list
  val int_field : string -> t -> int
  val str_field : string -> t -> string
end

(** {1 JSONL framing}

    One compact JSON value per newline-terminated line — the framing
    shared by sweep checkpoints, the trace JSONL sink, and the serve
    daemon's socket protocol. *)

module Framing : sig
  val frame : Json.t -> string
  (** Compact rendering plus the terminating ['\n']. *)

  val output : out_channel -> Json.t -> unit
  (** [frame] written to a channel (not flushed). *)

  val input : in_channel -> Json.t option
  (** Next non-blank line parsed as JSON; [None] at end of input.
      @raise Json.Parse_error on a malformed line. *)

  (** Incremental line splitter for multiplexed nonblocking streams: a
      select loop feeds whatever byte chunks arrive and pops complete
      lines as they form, without blocking on a partial tail. *)
  module Splitter : sig
    type t

    val create : unit -> t

    val feed : t -> string -> unit
    (** Append a received chunk (message boundaries need not align). *)

    val pop : t -> string option
    (** Next complete line (without its newline), if one has formed. *)

    val pending : t -> int
    (** Bytes buffered beyond the last complete line. *)
  end
end

(** {1 Timing statistics} *)

val stats_to_json : Stats.t -> Json.t
val stats_of_json : Json.t -> Stats.t
(** Inverse of {!stats_to_json}:
    [stats_of_json (stats_to_json s)] equals [s] field-for-field, and
    re-serializing yields a byte-identical string.
    @raise Json.Parse_error on schema mismatch. *)

(** {1 Configuration} *)

val config_to_json : Config.t -> Json.t
(** Every scalar knob plus the policy variants, for provenance in sweep
    outputs and cache entries. *)

val config_of_json : Json.t -> Config.t
(** Inverse of {!config_to_json}; together with {!Config.to_digest}
    this gives configs both a round-trippable JSON form and a canonical
    content digest.
    @raise Json.Parse_error on schema mismatch. *)

(** {1 Static classification summaries} *)

type load_summary = {
  lo_pc : int;
  lo_space : Ptx.Types.space;
  lo_class : Dataflow.Classify.load_class;
  lo_leaves : string list;
  lo_slice_size : int;
}

type classify_summary = {
  cy_kernel : string;
  cy_static_d : int;  (** deterministic global loads *)
  cy_static_n : int;
  cy_loads : load_summary list;  (** every load, in program order *)
}

val classify_summary : Dataflow.Classify.result -> classify_summary
val classify_summary_to_json : classify_summary -> Json.t
val classify_summary_of_json : Json.t -> classify_summary
