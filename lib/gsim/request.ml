(* Memory requests and per-warp-load tracking records.

   A warp-level load that cannot fully coalesce fans out into several
   [Request.t]s, one per distinct cache line.  Each request carries
   timestamps at every pipeline boundary so the turnaround breakdowns
   of Figs 5 and 7 can be reconstructed:

     t_issue   warp issued to the LD/ST unit
     t_accept  accepted by the L1 (hit, merge, or miss reservation)
     t_icnt    injected into the interconnect towards L2
     t_serviced  data produced at the memory partition (L2 or DRAM)
     t_return  fill arrived back at the SM

   [level] records the deepest level that serviced the request, which
   determines its unloaded (contention-free) latency. *)

type kind = Load | Store | Atomic

type level = Lvl_l1 | Lvl_l2 | Lvl_dram

(* Tracking record for one warp-level global load instruction. *)
type warp_load = {
  wl_sm : int;
  wl_warp_slot : int; (* index into the SM warp table, for wake-up *)
  wl_cta : int; (* linear CTA id, -1 when not attributable *)
  wl_kernel : string;
  wl_pc : int;
  wl_cls : Dataflow.Classify.load_class;
  wl_active : int; (* active threads in the warp *)
  wl_t_issue : int;
  mutable wl_nreq : int; (* coalesced requests generated *)
  mutable wl_outstanding : int;
  mutable wl_t_first_accept : int;
  mutable wl_t_last_accept : int;
  mutable wl_t_first_return : int;
  mutable wl_t_last_return : int;
  mutable wl_deepest : level;
  mutable wl_sum_icnt_wait : int; (* queueing between L1 accept and L2 *)
}

type t = {
  req_id : int;
  line_addr : int;
  sm_id : int;
  cta : int; (* requesting CTA, -1 when not attributable (prefetch) *)
  kind : kind;
  cls : Dataflow.Classify.load_class;
  wl : warp_load option; (* None for stores *)
  mutable t_issue : int;
  mutable t_accept : int;
  mutable t_icnt : int;
  mutable t_arrive : int; (* when it lands at the partition input *)
  mutable t_l2_start : int;
  mutable t_serviced : int;
  mutable t_return : int;
  mutable t_resp_arrive : int; (* when the response lands back at the SM *)
  mutable level : level;
  mutable no_fill : bool; (* bypassed loads do not allocate in the L1 *)
}

let next_id = ref 0

let make ~cta ~line_addr ~sm_id ~kind ~cls ~wl ~now =
  incr next_id;
  {
    req_id = !next_id;
    line_addr;
    sm_id;
    cta;
    kind;
    cls;
    wl;
    t_issue = now;
    t_accept = -1;
    t_icnt = -1;
    t_arrive = -1;
    t_l2_start = -1;
    t_serviced = -1;
    t_return = -1;
    t_resp_arrive = -1;
    level = Lvl_l1;
    no_fill = false;
  }

let make_warp_load ~cta ~sm ~warp_slot ~kernel ~pc ~cls ~active ~now =
  {
    wl_sm = sm;
    wl_warp_slot = warp_slot;
    wl_cta = cta;
    wl_kernel = kernel;
    wl_pc = pc;
    wl_cls = cls;
    wl_active = active;
    wl_t_issue = now;
    wl_nreq = 0;
    wl_outstanding = 0;
    wl_t_first_accept = -1;
    wl_t_last_accept = -1;
    wl_t_first_return = -1;
    wl_t_last_return = -1;
    wl_deepest = Lvl_l1;
    wl_sum_icnt_wait = 0;
  }

let deeper a b =
  match (a, b) with
  | Lvl_dram, _ | _, Lvl_dram -> Lvl_dram
  | Lvl_l2, _ | _, Lvl_l2 -> Lvl_l2
  | Lvl_l1, Lvl_l1 -> Lvl_l1

(* Contention-free latency of a request serviced at [level]. *)
let unloaded_latency (c : Config.t) = function
  | Lvl_l1 -> c.Config.l1_hit_latency
  | Lvl_l2 -> Config.unloaded_l2_latency c
  | Lvl_dram -> Config.unloaded_dram_latency c
