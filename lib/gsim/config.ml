(* Simulator configuration.  Defaults follow Table II of the paper
   (GPGPU-Sim v3.2.2, NVIDIA Tesla C2050 configuration): 14 SMs at
   1.15 GHz, 32-wide SIMT, 16KB/128B-line/4-way L1D with 64 MSHRs,
   768KB 8-way unified L2 with 32 MSHRs per partition, ROP (L2) latency
   120 cycles, DRAM latency 100 cycles. *)

type cta_sched_policy =
  | Round_robin (* CTA i -> SM (i mod n_sms), the hardware default *)
  | Clustered of int
      (* groups of k consecutive CTAs go to the same SM — the Section
         X.B proposal exploiting neighbour-CTA data locality *)

(* Static per-load flags: the paper's Section X.A suggestion of
   "instruction-feature-aware mechanisms that can be selectively
   applied to load instructions".  Used as the leaf of the policy
   tree below: either class-wide for non-deterministic loads
   ([Ndet_flags]) or per (kernel, pc) ([Per_pc]). *)
type load_policy = {
  lp_split : int; (* sub-warp width, 0 = no split *)
  lp_prefetch : bool; (* next-line prefetch on miss *)
  lp_bypass : bool; (* skip the L1 *)
}

let no_policy = { lp_split = 0; lp_prefetch = false; lp_bypass = false }

(* ---- memory-system policies ----

   One composable value selects the memory-system intervention a run
   evaluates; [Mempolicy] interprets it per SM.  [Baseline] must be
   observationally identical to a simulator with no policy code at all
   — the perf-lock goldens pin that equivalence byte-for-byte. *)

(* Irregular Accesses Reorder unit (arXiv 2007.07131): a bounded
   per-SM buffer that holds non-deterministic loads and issues them
   line-batched, recovering inter-warp coalescing the hardware
   coalescer cannot see. *)
type iar_params = {
  iar_entries : int; (* buffer capacity (line requests) *)
  iar_max_wait : int; (* cycles before an entry bypasses batching *)
}

let default_iar = { iar_entries = 48; iar_max_wait = 64 }

(* Holistic warp-level memory-hierarchy management (arXiv 1804.11038):
   classifier-driven L1 bypass for streaming deterministic loads, line
   protection for non-deterministic loads, and CTA-granular warp
   throttling when the reservation-fail rate spikes.  All thresholds
   are integers (percent / counts) so the canonical key stays exact. *)
type holistic_params = {
  hp_bypass_sample : int; (* D-load probes per pc before judging it *)
  hp_bypass_hit_pct : int; (* mark streaming when hit% <= this *)
  hp_protect_ndet : bool; (* protect N-load lines from eviction *)
  hp_throttle_window : int; (* probes per throttle evaluation window *)
  hp_throttle_high_pct : int; (* fail% >= this: throttle one CTA *)
  hp_throttle_low_pct : int; (* fail% <= this: release one CTA *)
}

let default_holistic =
  {
    hp_bypass_sample = 256;
    hp_bypass_hit_pct = 20;
    hp_protect_ndet = true;
    hp_throttle_window = 2048;
    hp_throttle_high_pct = 40;
    hp_throttle_low_pct = 10;
  }

type policy =
  | Baseline (* stock hardware; byte-identical to the locked goldens *)
  | Ndet_flags of load_policy
      (* class-wide split/prefetch/bypass applied to every
         non-deterministic load (the former warp_split_width /
         prefetch_ndet / bypass_ndet knobs) *)
  | Iar of iar_params
  | Holistic of holistic_params
  | Per_pc of ((string * int) * load_policy) list * policy
      (* per-(kernel, pc) overrides wrapping any inner policy; an entry
         replaces the inner policy's static flags for that load *)

(* Warp issue policy within an SM. *)
type warp_sched_policy =
  | Lrr (* loose round robin, the paper-era GPGPU-Sim default *)
  | Gto (* greedy-then-oldest: stay on one warp until it stalls *)

type t = {
  n_sms : int;
  warp_size : int;
  max_threads_per_sm : int;
  max_ctas_per_sm : int;
  shared_mem_per_sm : int;
  (* L1 data cache *)
  l1_sets : int;
  l1_ways : int;
  line_size : int;
  l1_mshr_entries : int;
  l1_mshr_max_merge : int;
  l1_hit_latency : int;
  (* L2 *)
  n_mem_partitions : int;
  l2_sets : int; (* per partition *)
  l2_ways : int;
  l2_mshr_entries : int;
  l2_latency : int; (* ROP latency *)
  (* interconnect *)
  icnt_latency : int;
  icnt_buffer_size : int; (* per SM injection buffer (requests) *)
  l2_input_queue_size : int; (* per partition *)
  (* DRAM *)
  dram_latency : int;
  dram_interval : int; (* min cycles between DRAM data bursts *)
  dram_queue_size : int;
  (* execution latencies *)
  sp_latency : int;
  sfu_latency : int;
  sfu_initiation : int; (* SFU first-stage busy cycles per warp op *)
  shared_latency : int;
  shared_banks : int; (* bank-conflict serialization, 0 disables *)
  (* simulation control *)
  max_warp_insts : int; (* stop after this many issued warp instrs; 0 = no cap *)
  max_cycles : int;
  cta_sched : cta_sched_policy;
  warp_sched : warp_sched_policy;
  (* Section X.C ablation: SMs grouped into clusters of this size, each
     cluster owning a private slice of L2 (0 = global L2).  Modelled by
     scaling each partition's capacity by cluster/n_sms and routing a
     cluster's traffic to its own partition set. *)
  l2_cluster : int;
  (* the memory-system policy this run evaluates (see [Mempolicy]) *)
  policy : policy;
}

(* Tesla C2050 / Table II defaults. *)
let default =
  {
    n_sms = 14;
    warp_size = 32;
    max_threads_per_sm = 1536;
    max_ctas_per_sm = 8;
    shared_mem_per_sm = 48 * 1024;
    l1_sets = 32;
    (* 16KB / 128B / 4-way *)
    l1_ways = 4;
    line_size = 128;
    l1_mshr_entries = 64;
    l1_mshr_max_merge = 8;
    l1_hit_latency = 28;
    n_mem_partitions = 6;
    l2_sets = 128;
    (* 768KB / 6 partitions / 128B / 8-way = 128 sets *)
    l2_ways = 8;
    l2_mshr_entries = 32;
    l2_latency = 120;
    icnt_latency = 8;
    icnt_buffer_size = 64;
    l2_input_queue_size = 32;
    dram_latency = 100;
    dram_interval = 4;
    dram_queue_size = 32;
    sp_latency = 4;
    sfu_latency = 16;
    sfu_initiation = 8;
    shared_latency = 24;
    shared_banks = 32;
    max_warp_insts = 300_000;
    max_cycles = 3_000_000;
    cta_sched = Round_robin;
    warp_sched = Lrr;
    l2_cluster = 0;
    policy = Baseline;
  }

(* ---- builder ----

   Pipeline-style combinators over [default]; each takes the config
   last so call sites read
     Config.default |> Config.with_mshrs 32 |> Config.with_caps
       ~max_warp_insts:5_000 ()
   Optional arguments leave the corresponding field untouched, so a
   builder names only what an experiment varies. *)

let opt v = function Some x -> x | None -> v

let with_n_sms n c = { c with n_sms = n }
let with_warp_size n c = { c with warp_size = n }

let with_l1 ?sets ?ways ?line_size ?hit_latency c =
  {
    c with
    l1_sets = opt c.l1_sets sets;
    l1_ways = opt c.l1_ways ways;
    line_size = opt c.line_size line_size;
    l1_hit_latency = opt c.l1_hit_latency hit_latency;
  }

let with_mshrs ?max_merge entries c =
  {
    c with
    l1_mshr_entries = entries;
    l1_mshr_max_merge = opt c.l1_mshr_max_merge max_merge;
  }

let with_l2 ?partitions ?sets ?ways ?mshr_entries ?latency ?input_queue c =
  {
    c with
    n_mem_partitions = opt c.n_mem_partitions partitions;
    l2_sets = opt c.l2_sets sets;
    l2_ways = opt c.l2_ways ways;
    l2_mshr_entries = opt c.l2_mshr_entries mshr_entries;
    l2_latency = opt c.l2_latency latency;
    l2_input_queue_size = opt c.l2_input_queue_size input_queue;
  }

let with_icnt_width n c = { c with icnt_buffer_size = n }
let with_icnt_latency n c = { c with icnt_latency = n }

let with_dram ?latency ?interval ?queue_size c =
  {
    c with
    dram_latency = opt c.dram_latency latency;
    dram_interval = opt c.dram_interval interval;
    dram_queue_size = opt c.dram_queue_size queue_size;
  }

let with_caps ?max_warp_insts ?max_cycles () c =
  {
    c with
    max_warp_insts = opt c.max_warp_insts max_warp_insts;
    max_cycles = opt c.max_cycles max_cycles;
  }

let with_cta_sched p c = { c with cta_sched = p }
let with_warp_sched p c = { c with warp_sched = p }
let with_l2_cluster k c = { c with l2_cluster = k }
let with_policy p c = { c with policy = p }

(* Deprecated flag builders: the former class-wide knobs, kept so old
   call sites (and the X.A ablation tables) still read naturally.
   They edit the [Ndet_flags] layer of the current policy — all-off
   flags normalize back to [Baseline], so
   [default |> with_warp_split 0 = default] — and leave a structured
   policy ([Iar]/[Holistic]) untouched. *)

let rec edit_ndet_flags f = function
  | Baseline ->
      let fl = f no_policy in
      if fl = no_policy then Baseline else Ndet_flags fl
  | Ndet_flags fl ->
      let fl = f fl in
      if fl = no_policy then Baseline else Ndet_flags fl
  | Per_pc (ps, inner) -> Per_pc (ps, edit_ndet_flags f inner)
  | (Iar _ | Holistic _) as p -> p

let with_warp_split w c =
  { c with policy = edit_ndet_flags (fun f -> { f with lp_split = w }) c.policy }

let with_prefetch_ndet b c =
  { c with
    policy = edit_ndet_flags (fun f -> { f with lp_prefetch = b }) c.policy }

let with_bypass_ndet b c =
  { c with
    policy = edit_ndet_flags (fun f -> { f with lp_bypass = b }) c.policy }

(* Deprecated: replaces the per-pc override table wholesale (the old
   [pc_policies] field semantics), wrapping whatever structured policy
   is already selected.  New code should build [Per_pc] directly. *)
let with_pc_policies ps c =
  let inner =
    match c.policy with Per_pc (_, inner) -> inner | p -> p
  in
  { c with policy = (match ps with [] -> inner | _ -> Per_pc (ps, inner)) }

(* ---- canonical key / digest ----

   [to_key] renders every field in a fixed order, so two configs share
   a key iff they are semantically identical; [to_digest] hashes the
   key (stdlib MD5) into the short stable token the sweep cache and
   provenance records embed.  Any new field MUST be appended here —
   forgetting it would make the cache return stale results across
   configs differing only in that field. *)

let string_of_cta_sched = function
  | Round_robin -> "rr"
  | Clustered k -> "clustered:" ^ string_of_int k

let string_of_warp_sched = function Lrr -> "lrr" | Gto -> "gto"

let string_of_load_policy (p : load_policy) =
  Printf.sprintf "%d:%b:%b" p.lp_split p.lp_prefetch p.lp_bypass

(* Canonical policy rendering: every parameter appears, so two configs
   share a key iff their policies are semantically identical. *)
let rec string_of_mem_policy = function
  | Baseline -> "baseline"
  | Ndet_flags f -> "ndet{" ^ string_of_load_policy f ^ "}"
  | Iar p -> Printf.sprintf "iar{%d:%d}" p.iar_entries p.iar_max_wait
  | Holistic p ->
      Printf.sprintf "holistic{%d:%d:%b:%d:%d:%d}" p.hp_bypass_sample
        p.hp_bypass_hit_pct p.hp_protect_ndet p.hp_throttle_window
        p.hp_throttle_high_pct p.hp_throttle_low_pct
  | Per_pc (ps, inner) ->
      let b = Buffer.create 64 in
      Buffer.add_string b "perpc{";
      List.iter
        (fun ((kernel, pc), f) ->
          Buffer.add_string b
            (Printf.sprintf "%s@%d=%s;" kernel pc (string_of_load_policy f)))
        ps;
      Buffer.add_string b "}:";
      Buffer.add_string b (string_of_mem_policy inner);
      Buffer.contents b

let policy_name = function
  | Baseline -> "baseline"
  | Ndet_flags _ -> "ndet-flags"
  | Iar _ -> "iar"
  | Holistic _ -> "holistic"
  | Per_pc _ -> "per-pc"

let policy_of_string = function
  | "baseline" -> Ok Baseline
  | "iar" -> Ok (Iar default_iar)
  | "holistic" -> Ok (Holistic default_holistic)
  | s ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected baseline, iar or holistic)" s)

let to_key c =
  let b = Buffer.create 256 in
  let i n v =
    Buffer.add_string b n;
    Buffer.add_char b '=';
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ';'
  in
  let s n v =
    Buffer.add_string b n;
    Buffer.add_char b '=';
    Buffer.add_string b v;
    Buffer.add_char b ';'
  in
  i "n_sms" c.n_sms;
  i "warp_size" c.warp_size;
  i "max_threads_per_sm" c.max_threads_per_sm;
  i "max_ctas_per_sm" c.max_ctas_per_sm;
  i "shared_mem_per_sm" c.shared_mem_per_sm;
  i "l1_sets" c.l1_sets;
  i "l1_ways" c.l1_ways;
  i "line_size" c.line_size;
  i "l1_mshr_entries" c.l1_mshr_entries;
  i "l1_mshr_max_merge" c.l1_mshr_max_merge;
  i "l1_hit_latency" c.l1_hit_latency;
  i "n_mem_partitions" c.n_mem_partitions;
  i "l2_sets" c.l2_sets;
  i "l2_ways" c.l2_ways;
  i "l2_mshr_entries" c.l2_mshr_entries;
  i "l2_latency" c.l2_latency;
  i "icnt_latency" c.icnt_latency;
  i "icnt_buffer_size" c.icnt_buffer_size;
  i "l2_input_queue_size" c.l2_input_queue_size;
  i "dram_latency" c.dram_latency;
  i "dram_interval" c.dram_interval;
  i "dram_queue_size" c.dram_queue_size;
  i "sp_latency" c.sp_latency;
  i "sfu_latency" c.sfu_latency;
  i "sfu_initiation" c.sfu_initiation;
  i "shared_latency" c.shared_latency;
  i "shared_banks" c.shared_banks;
  i "max_warp_insts" c.max_warp_insts;
  i "max_cycles" c.max_cycles;
  s "cta_sched" (string_of_cta_sched c.cta_sched);
  s "warp_sched" (string_of_warp_sched c.warp_sched);
  i "l2_cluster" c.l2_cluster;
  s "policy" (string_of_mem_policy c.policy);
  Buffer.contents b

let to_digest c = Digest.to_hex (Digest.string (to_key c))

(* Latency of a load that misses everywhere, with empty queues: request
   over icnt, L2 access, DRAM, and the return trip.  The L1 probe that
   detects the miss is a single cycle in this model, accounted in the
   acceptance timestamps rather than here. *)
let unloaded_dram_latency c =
  c.icnt_latency + c.l2_latency + c.dram_latency + c.icnt_latency

let unloaded_l2_latency c = c.icnt_latency + c.l2_latency + c.icnt_latency

let max_warps_per_cta c threads_per_cta =
  (threads_per_cta + c.warp_size - 1) / c.warp_size

(* How many CTAs of [threads_per_cta] threads and [smem] bytes of static
   shared memory fit on one SM. *)
let ctas_per_sm c ~threads_per_cta ~smem_bytes =
  let by_threads =
    if threads_per_cta = 0 then c.max_ctas_per_sm
    else c.max_threads_per_sm / threads_per_cta
  in
  let by_smem =
    if smem_bytes = 0 then c.max_ctas_per_sm
    else c.shared_mem_per_sm / smem_bytes
  in
  max 1 (min c.max_ctas_per_sm (min by_threads by_smem))

let pp ppf c =
  Format.fprintf ppf
    "@[<v>Core: %d SMs, %d-wide SIMT, %d threads/SM max@,\
     L1D: %dKB, %dB line, %d-way, %d MSHR entries@,\
     L2: unified %dKB, %d partitions, %d-way, %d MSHR entries@,\
     Latencies: L1 %d, ROP %d, DRAM %d, icnt %d@]"
    c.n_sms c.warp_size c.max_threads_per_sm
    (c.l1_sets * c.l1_ways * c.line_size / 1024)
    c.line_size c.l1_ways c.l1_mshr_entries
    (c.l2_sets * c.l2_ways * c.line_size * c.n_mem_partitions / 1024)
    c.n_mem_partitions c.l2_ways c.l2_mshr_entries c.l1_hit_latency
    c.l2_latency c.dram_latency c.icnt_latency
