(** Preallocated growable FIFO — a drop-in replacement for [Queue.t]
    on the simulator's hot paths.

    [Queue] allocates one cons-like cell per [push]; at millions of
    memory requests per run that is pure GC churn.  [Ringbuf] stores
    elements in a circular array that doubles when full, so the steady
    state allocates nothing per operation.

    Semantics match [Queue] exactly — strict FIFO, [pop]/[peek] observe
    the oldest element — which the property suite checks against a
    [Queue] reference under random operation sequences. *)

type 'a t

exception Empty

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty buffer.  [capacity] (default 16, clamped to >= 1) is
    the initial allocation; the buffer grows as needed. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current allocated slots (for tests and introspection). *)

val push : 'a -> 'a t -> unit
(** Append at the tail; grows (doubling) when full. *)

val pop : 'a t -> 'a
(** Remove and return the head.  @raise Empty when empty. *)

val pop_opt : 'a t -> 'a option
(** Remove and return the head, or [None] when empty. *)

val peek : 'a t -> 'a
(** Head without removing it.  Allocation-free, for per-cycle polling
    loops.  @raise Empty when empty. *)

val peek_opt : 'a t -> 'a option
(** Head without removing it, or [None] when empty. *)

val clear : 'a t -> unit
(** Drop all elements (capacity is retained). *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] oldest-first. *)

val to_list : 'a t -> 'a list
(** Elements oldest-first (for tests). *)
