(** Set-associative cache with reserved (in-flight) lines and an
    integrated MSHR table — the GPGPU-Sim L1/L2 model the paper's
    Section VI describes.

    A load access has one of six outcomes; the three reservation
    failures (tags / MSHRs / interconnect) are the wasted cycles the
    paper's Fig 3 plots. *)

type fail_reason = Fail_tags | Fail_mshr | Fail_icnt
type outcome = Hit | Hit_reserved | Miss | Rsrv_fail of fail_reason

type t

val create :
  sets:int ->
  ways:int ->
  line_size:int ->
  mshr_entries:int ->
  mshr_max_merge:int ->
  t

val line_addr : t -> int -> int
(** Align a byte address down to its cache line. *)

val access_load : t -> req:Request.t -> icnt_ok:bool -> outcome
(** Probe for a load request.  On [Miss] the line is reserved, an MSHR
    entry allocated (with [req] as first waiter), and the caller must
    forward the request downstream ([icnt_ok] asserts it can).  On
    [Hit_reserved] the request was merged into the in-flight entry.
    Reservation failures leave no state behind. *)

val fill : t -> line_addr:int -> Request.t list
(** A fill returning from below: the line becomes valid; returns the
    waiting requests (first element is the original miss). *)

val probe : t -> line_addr:int -> [ `Valid | `Reserved | `Absent ]
(** Side-effect-free lookup. *)

val invalidate : t -> line_addr:int -> unit
(** Write-evict for L1 global stores (write-through no-allocate). *)

val write_allocate : t -> line_addr:int -> bool
(** Write-allocate update for L2 stores; false when every way of the
    set is reserved this cycle. *)

val occupancy : t -> int * int
(** (valid lines, reserved lines). *)
