(** Set-associative cache with reserved (in-flight) lines and an
    integrated MSHR table — the GPGPU-Sim L1/L2 model the paper's
    Section VI describes.

    A load access has one of six outcomes; the three reservation
    failures (tags / MSHRs / interconnect) are the wasted cycles the
    paper's Fig 3 plots. *)

type fail_reason = Fail_tags | Fail_mshr | Fail_icnt
type outcome = Hit | Hit_reserved | Miss | Rsrv_fail of fail_reason

val outcome_index : outcome -> int
(** Hit 0, Hit_reserved 1, Miss 2, then tags / mshr / icnt fails 3-5
    (the {!Stats} Fig 3 slot order). *)

type t

val create :
  sets:int ->
  ways:int ->
  line_size:int ->
  mshr_entries:int ->
  mshr_max_merge:int ->
  t

val line_addr : t -> int -> int
(** Align a byte address down to its cache line. *)

val access_load : t -> req:Request.t -> icnt_ok:bool -> outcome
(** Probe for a load request.  On [Miss] the line is reserved, an MSHR
    entry allocated (with [req] as first waiter), and the caller must
    forward the request downstream ([icnt_ok] asserts it can).  On
    [Hit_reserved] the request was merged into the in-flight entry.
    Reservation failures leave no state behind. *)

val access_load_protect :
  t -> protect:bool -> req:Request.t -> icnt_ok:bool -> outcome
(** {!access_load} with policy-driven line protection: with [protect]
    the touched line is pinned against eviction until every evictable
    way of its set is protected, at which point the whole set loses
    protection — second-chance semantics for the holistic N-load
    protection policy.  [~protect:false] is exactly {!access_load}. *)

val mshr_attach : t -> line_addr:int -> req:Request.t -> bool
(** Attach [req] to the line's in-flight MSHR entry without consuming
    merge capacity — for requests combined upstream of the cache (the
    IAR reorder unit), which shared the primary's single probe.  False
    when the line has no in-flight entry. *)

val fill : t -> line_addr:int -> Request.t list
(** A fill returning from below: the line becomes valid; returns the
    waiting requests (first element is the original miss). *)

val probe : t -> line_addr:int -> [ `Valid | `Reserved | `Absent ]
(** Side-effect-free lookup. *)

val invalidate : t -> line_addr:int -> unit
(** Write-evict for L1 global stores (write-through no-allocate). *)

val write_allocate : t -> line_addr:int -> bool
(** Write-allocate update for L2 stores; false when every way of the
    set is reserved this cycle. *)

val occupancy : t -> int * int
(** (valid lines, reserved lines). *)

val outcome_counts : t -> int array
(** Load-probe outcomes counted by the cache itself, indexed by
    {!outcome_index}: one increment per [access_load] call, so an
    access that fails reservation and retries counts once per attempt
    in the fail slots plus once on completion. *)

val completed_accesses : t -> int
(** Hit + hit-reserved + miss — each logical load access exactly once,
    retries excluded: the same accounting {!Simplecache} uses, which is
    what lets trace-derived counts reconcile across the two models. *)

val mshr_in_use : t -> int
(** In-flight MSHR entries (occupancy timelines). *)

val mshr_owner_cta : t -> line_addr:int -> int
(** CTA that allocated the in-flight MSHR entry for the line; [-1]
    when the line has no entry (MSHR-merge locality attribution). *)
