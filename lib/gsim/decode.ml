(* Predecoded per-pc tables; see the interface for the contract. *)

type t = {
  units : Exec.unit_class array;
  bra_target : int array;
  is_label : bool array;
  load_cls : Dataflow.Classify.load_class array;
  alu : (Exec.env -> Exec.thread array -> int -> unit) array;
}

let of_kernel (kernel : Ptx.Kernel.t) (classes : Dataflow.Classify.result) =
  let body = kernel.Ptx.Kernel.body in
  {
    units = Array.map Exec.unit_of_instr body;
    bra_target =
      Array.map
        (function
          | Ptx.Instr.Bra (_, l) -> Ptx.Kernel.label_pc kernel l
          | _ -> -1)
        body;
    is_label =
      Array.map (function Ptx.Instr.Label _ -> true | _ -> false) body;
    load_cls =
      Array.mapi
        (fun pc _ ->
          match Dataflow.Classify.class_of_global_load classes pc with
          | Some c -> c
          | None -> Dataflow.Classify.Deterministic)
        body;
    alu = Array.map Exec.compile_alu body;
  }
