(* Circular-array FIFO.  Elements live in an [Obj.t array] so one
   polymorphic buffer can be preallocated without a caller-supplied
   dummy element; slots are reset to an immediate on [pop] so popped
   elements do not leak.  The backing array is created from an
   immediate, so it is never specialized to a flat float array and
   storing any boxed value in it is representation-safe. *)

type 'a t = {
  mutable buf : Obj.t array;
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
}

exception Empty

let hole = Obj.repr 0

let create ?(capacity = 16) () =
  { buf = Array.make (max 1 capacity) hole; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let capacity t = Array.length t.buf

let grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (2 * cap) hole in
  for i = 0 to t.len - 1 do
    nbuf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- nbuf;
  t.head <- 0

let push x t =
  let cap = Array.length t.buf in
  if t.len = cap then grow t;
  let cap = Array.length t.buf in
  t.buf.((t.head + t.len) mod cap) <- Obj.repr x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then raise Empty;
  let x = t.buf.(t.head) in
  t.buf.(t.head) <- hole;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.len <- t.len - 1;
  Obj.obj x

let pop_opt t = if t.len = 0 then None else Some (pop t)

let peek t = if t.len = 0 then raise Empty else Obj.obj t.buf.(t.head)

let peek_opt t = if t.len = 0 then None else Some (Obj.obj t.buf.(t.head))

let clear t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    t.buf.((t.head + i) mod cap) <- hole
  done;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f (Obj.obj t.buf.((t.head + i) mod cap))
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
