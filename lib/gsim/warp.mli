(** A warp: [warp_size] threads in lockstep under a post-dominator
    SIMT reconvergence stack (as in GPGPU-Sim).

    [step] executes exactly one warp instruction {e functionally} —
    registers, memory values and control flow resolve immediately — and
    reports what happened, so a caller can model timing on top (the
    cycle simulator) or just record a trace (the functional one). *)

open Ptx.Types

type mem_kind = Load | Store | Atomic

(** A warp-level memory operation: which lanes were active and the
    per-lane effective byte addresses.  [m_addrs] aliases the warp's
    reused scratch buffer — consume it before stepping the warp
    again (both simulators do so in the same call frame). *)
type mem_op = {
  m_pc : int;
  m_space : space;
  m_kind : mem_kind;
  m_dtype : dtype;
  m_mask : int;
  m_addrs : int array;
}

type step_result =
  | S_alu of Exec.unit_class  (** SP or SFU instruction completed *)
  | S_mem of mem_op
  | S_barrier
  | S_exit_partial  (** some lanes finished; the warp continues *)
  | S_exit_warp  (** all lanes finished *)

(** Access to the memories this warp's CTA can see; [atomic] returns
    the old value. *)
type mem_iface = {
  read : space -> dtype -> int -> int64;
  write : space -> dtype -> int -> int64 -> unit;
  atomic : atomop -> dtype -> int -> int64 -> int64;
  m_global : Mem.t;  (** also serves const/tex/param *)
  m_shared : Mem.t;
  m_local : Mem.t;
}

type t = {
  warp_id : int;
  cta_lin : int;
  kernel : Ptx.Kernel.t;
  decode : Decode.t;  (** predecoded per-pc tables, shared per launch *)
  env : Exec.env;
  threads : Exec.thread array;
  valid_mask : int;
  params : (string, int64) Hashtbl.t;
  reconv_of_pc : int array;
  mem : mem_iface;
  scratch_addrs : int array;
      (** reused buffer behind [mem_op.m_addrs]: valid only until the
          next [step] of this warp *)
  mutable stack : entry list;
  mutable warp_insts : int;
  mutable thread_insts : int;
}

and entry = { mutable spc : int; smask : int; sreconv : int }

val popcount : int -> int
val full_mask : int -> int

val reconvergence_table : Ptx.Kernel.t -> int array
(** Per-pc reconvergence points from the post-dominator tree; -1 for
    non-branches and branches that reconverge only at exit.  Computed
    once per kernel and shared by all warps. *)

val create :
  warp_id:int ->
  cta_lin:int ->
  decode:Decode.t ->
  env:Exec.env ->
  threads:Exec.thread array ->
  valid_mask:int ->
  params:(string, int64) Hashtbl.t ->
  reconv_of_pc:int array ->
  mem:mem_iface ->
  Ptx.Kernel.t ->
  t

val finished : t -> bool
val pc : t -> int
val active_mask : t -> int
val iter_active : int -> (int -> unit) -> unit

val peek_unit : t -> Exec.unit_class
(** Functional unit the next instruction occupies, without executing
    it (the SM issue stage's structural-hazard check). *)

val step : t -> step_result
(** Execute one warp instruction.  The warp must not be finished. *)
