(* Flat byte-addressable memories.  Global memory is one Bytes buffer
   shared by all CTAs; shared/local memories are small per-CTA buffers.
   Register values are 64-bit; floats travel as IEEE-754 bit patterns
   (f32 values are rounded through 32 bits on store/load). *)

(* The buffer is zeroed lazily: [zeroed] bytes from the start are
   known-zero (or since overwritten); anything beyond is uninitialized
   [Bytes.create] garbage that no access has ever seen.  Applications
   allocate tens of MB of address space but often touch only a few MB,
   and an eager memset of the whole buffer dominated their setup time;
   the watermark bounds total zeroing work by the touched range (plus
   one chunk) instead of the capacity. *)
type t = { data : Bytes.t; size : int; mutable zeroed : int }

let zero_chunk = 256 * 1024

let create size = { data = Bytes.create size; size; zeroed = 0 }

let size t = t.size

(* Extend the zeroed prefix to cover [limit) in chunk-sized steps. *)
let extend_zero t limit =
  let upto = min t.size ((limit + zero_chunk - 1) land lnot (zero_chunk - 1)) in
  Bytes.fill t.data t.zeroed (upto - t.zeroed) '\000';
  t.zeroed <- upto

let check t addr len =
  if addr < 0 || addr + len > t.size then
    Sim_error.error Sim_error.Mem_fault
      "access [%d,+%d) out of bounds [0,%d)" addr len t.size;
  if addr + len > t.zeroed then extend_zero t (addr + len)

(* All loads zero-extend into the 64-bit register except the signed
   narrow types, which sign-extend (as PTX ld.sN does). *)
let load t (ty : Ptx.Types.dtype) addr =
  let open Ptx.Types in
  check t addr (dtype_size ty);
  match ty with
  | U8 -> Int64.of_int (Char.code (Bytes.get t.data addr))
  | S8 -> Int64.of_int (Bytes.get_int8 t.data addr)
  | U16 -> Int64.of_int (Bytes.get_uint16_le t.data addr)
  | S16 -> Int64.of_int (Bytes.get_int16_le t.data addr)
  | U32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data addr)) 0xFFFFFFFFL
  | S32 -> Int64.of_int32 (Bytes.get_int32_le t.data addr)
  | U64 | S64 -> Bytes.get_int64_le t.data addr
  | F32 ->
      (* widen to double bits for the register file *)
      Int64.bits_of_float
        (Int32.float_of_bits (Bytes.get_int32_le t.data addr))
  | F64 -> Bytes.get_int64_le t.data addr

let store t (ty : Ptx.Types.dtype) addr v =
  let open Ptx.Types in
  check t addr (dtype_size ty);
  match ty with
  | U8 | S8 -> Bytes.set_int8 t.data addr (Int64.to_int v land 0xFF)
  | U16 | S16 -> Bytes.set_uint16_le t.data addr (Int64.to_int v land 0xFFFF)
  | U32 | S32 -> Bytes.set_int32_le t.data addr (Int64.to_int32 v)
  | U64 | S64 -> Bytes.set_int64_le t.data addr v
  | F32 ->
      Bytes.set_int32_le t.data addr
        (Int32.bits_of_float (Int64.float_of_bits v))
  | F64 -> Bytes.set_int64_le t.data addr v

(* Convenience host-side accessors for initializing datasets and
   checking results. *)
let get_u32 t addr = Int64.to_int (load t Ptx.Types.U32 addr)
let set_u32 t addr v = store t Ptx.Types.U32 addr (Int64.of_int v)
let get_f32 t addr = Int64.float_of_bits (load t Ptx.Types.F32 addr)
let set_f32 t addr v = store t Ptx.Types.F32 addr (Int64.bits_of_float v)
let get_i64 t addr = load t Ptx.Types.U64 addr
let set_i64 t addr v = store t Ptx.Types.U64 addr v
let get_f64 t addr = Int64.float_of_bits (load t Ptx.Types.F64 addr)
let set_f64 t addr v = store t Ptx.Types.F64 addr (Int64.bits_of_float v)
