(* Machine-readable stats layer.  A deliberately small JSON
   implementation lives here (emitter + recursive-descent parser) so
   sweep results can cross process boundaries without an external
   dependency; converters turn Stats.t, Config.t and classification
   results into deterministic JSON and back. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  (* ---- emitter ---- *)

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* Shortest decimal rendering that parses back exactly; integral
     floats keep a ".0" so the parser reads them back as floats. *)
  let float_repr f =
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s
    then s
    else s ^ ".0"

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | Arr l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf v)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            emit buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 4096 in
    emit buf v;
    Buffer.contents buf

  let to_channel oc v = output_string oc (to_string v)

  (* ---- parser ---- *)

  type state = { text : string; mutable pos : int }

  let fail st msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

  let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        st.pos <- st.pos + 1;
        skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c' = c -> st.pos <- st.pos + 1
    | _ -> fail st (Printf.sprintf "expected '%c'" c)

  let literal st word value =
    let n = String.length word in
    if
      st.pos + n <= String.length st.text
      && String.sub st.text st.pos n = word
    then begin
      st.pos <- st.pos + n;
      value
    end
    else fail st (Printf.sprintf "expected %s" word)

  let parse_string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if st.pos >= String.length st.text then fail st "unterminated string";
      let c = st.text.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if st.pos >= String.length st.text then fail st "bad escape";
          let e = st.text.[st.pos] in
          st.pos <- st.pos + 1;
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if st.pos + 4 > String.length st.text then fail st "bad \\u";
              let hex = String.sub st.text st.pos 4 in
              st.pos <- st.pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail st "bad \\u digits"
              in
              (* only the control-character range we ever emit *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail st "unsupported \\u escape";
              go ()
          | _ -> fail st "unknown escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()

  let parse_number st =
    let start = st.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      st.pos < String.length st.text && is_num_char st.text.[st.pos]
    do
      st.pos <- st.pos + 1
    done;
    let s = String.sub st.text start (st.pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "malformed number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> fail st "malformed number"

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> fail st "unexpected end of input"
    | Some '{' ->
        expect st '{';
        skip_ws st;
        if peek st = Some '}' then begin
          expect st '}';
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws st;
            let k = parse_string st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            fields := (k, v) :: !fields;
            skip_ws st;
            match peek st with
            | Some ',' ->
                expect st ',';
                members ()
            | Some '}' -> expect st '}'
            | _ -> fail st "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        expect st '[';
        skip_ws st;
        if peek st = Some ']' then begin
          expect st ']';
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value st in
            items := v :: !items;
            skip_ws st;
            match peek st with
            | Some ',' ->
                expect st ',';
                elements ()
            | Some ']' -> expect st ']'
            | _ -> fail st "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> parse_number st

  let of_string text =
    let st = { text; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length text then fail st "trailing garbage";
    v

  (* ---- schema accessors ---- *)

  let type_name = function
    | Null -> "null"
    | Bool _ -> "bool"
    | Int _ -> "int"
    | Float _ -> "float"
    | Str _ -> "string"
    | Arr _ -> "array"
    | Obj _ -> "object"

  let schema_fail want v =
    raise
      (Parse_error (Printf.sprintf "expected %s, got %s" want (type_name v)))

  let member key = function
    | Obj fields -> ( match List.assoc_opt key fields with
      | Some v -> v
      | None -> Null)
    | v -> schema_fail (Printf.sprintf "object with %S" key) v

  let get_int = function Int i -> i | v -> schema_fail "int" v

  let get_float = function
    | Float f -> f
    | Int i -> float_of_int i
    | v -> schema_fail "number" v

  let get_bool = function Bool b -> b | v -> schema_fail "bool" v
  let get_str = function Str s -> s | v -> schema_fail "string" v
  let get_list = function Arr l -> l | v -> schema_fail "array" v
  let int_field key v = get_int (member key v)
  let str_field key v = get_str (member key v)
end

(* ---- JSONL framing ----

   One compact JSON value per '\n'-terminated line: the framing shared
   by sweep checkpoints, the trace JSONL sink, and the serve daemon's
   socket protocol.  Channel helpers cover blocking endpoints (the
   submit client, worker loops); [Splitter] covers multiplexed
   nonblocking endpoints (the server's select loop), which receive
   arbitrary byte chunks and must recover message boundaries
   themselves. *)

module Framing = struct
  let frame v = Json.to_string v ^ "\n"

  let output oc v =
    Json.to_channel oc v;
    output_char oc '\n'

  let rec input ic =
    match input_line ic with
    | exception End_of_file -> None
    | line -> if String.trim line = "" then input ic else Some (Json.of_string line)

  module Splitter = struct
    (* A byte accumulator that yields complete lines as they form.
       Carried bytes are compacted lazily: [start] advances as lines
       are popped and the buffer is rebuilt only when a feed arrives
       with consumed prefix pending, so steady-state feed/pop cycles
       do one copy per chunk. *)
    type t = { mutable buf : string; mutable start : int }

    let create () = { buf = ""; start = 0 }

    let feed t chunk =
      if String.length chunk > 0 then
        if t.start >= String.length t.buf then begin
          t.buf <- chunk;
          t.start <- 0
        end
        else begin
          t.buf <-
            String.sub t.buf t.start (String.length t.buf - t.start) ^ chunk;
          t.start <- 0
        end

    let pop t =
      match String.index_from_opt t.buf t.start '\n' with
      | None -> None
      | Some nl ->
          let line = String.sub t.buf t.start (nl - t.start) in
          t.start <- nl + 1;
          Some line

    let pending t = String.length t.buf - t.start
  end
end

open Json

(* ---- load class ---- *)

let class_to_json c = Str (Dataflow.Classify.short_class c)

let class_of_json v =
  match get_str v with
  | "D" -> Dataflow.Classify.Deterministic
  | "N" -> Dataflow.Classify.Nondeterministic
  | s -> raise (Parse_error ("unknown load class " ^ s))

(* ---- Stats.t ---- *)

let class_stats_to_json (c : Stats.class_stats) =
  Obj
    [ ("warps", Int c.Stats.cs_warps);
      ("requests", Int c.Stats.cs_requests);
      ("active_threads", Int c.Stats.cs_active_threads);
      ("turnaround", Int c.Stats.cs_turnaround);
      ("unloaded", Int c.Stats.cs_unloaded);
      ("rsrv_prev", Int c.Stats.cs_rsrv_prev);
      ("rsrv_cur", Int c.Stats.cs_rsrv_cur);
      ("wasted_mem", Int c.Stats.cs_wasted_mem);
      ("l1_access", Int c.Stats.cs_l1_access);
      ("l1_miss", Int c.Stats.cs_l1_miss);
      ("l2_access", Int c.Stats.cs_l2_access);
      ("l2_miss", Int c.Stats.cs_l2_miss) ]

let class_stats_of_json v : Stats.class_stats =
  {
    Stats.cs_warps = int_field "warps" v;
    cs_requests = int_field "requests" v;
    cs_active_threads = int_field "active_threads" v;
    cs_turnaround = int_field "turnaround" v;
    cs_unloaded = int_field "unloaded" v;
    cs_rsrv_prev = int_field "rsrv_prev" v;
    cs_rsrv_cur = int_field "rsrv_cur" v;
    cs_wasted_mem = int_field "wasted_mem" v;
    cs_l1_access = int_field "l1_access" v;
    cs_l1_miss = int_field "l1_miss" v;
    cs_l2_access = int_field "l2_access" v;
    cs_l2_miss = int_field "l2_miss" v;
  }

let bucket_to_json nreq (b : Stats.nreq_bucket) =
  Obj
    [ ("nreq", Int nreq);
      ("count", Int b.Stats.nb_count);
      ("turnaround", Int b.Stats.nb_turnaround);
      ("common", Int b.Stats.nb_common);
      ("gap_l1d", Int b.Stats.nb_gap_l1d);
      ("gap_icnt_l2", Int b.Stats.nb_gap_icnt_l2);
      ("gap_l2_icnt", Int b.Stats.nb_gap_l2_icnt) ]

let bucket_of_json v : int * Stats.nreq_bucket =
  ( int_field "nreq" v,
    {
      Stats.nb_count = int_field "count" v;
      nb_turnaround = int_field "turnaround" v;
      nb_common = int_field "common" v;
      nb_gap_l1d = int_field "gap_l1d" v;
      nb_gap_icnt_l2 = int_field "gap_icnt_l2" v;
      nb_gap_l2_icnt = int_field "gap_l2_icnt" v;
    } )

let pc_stats_to_json (ps : Stats.pc_stats) =
  let buckets =
    Hashtbl.fold (fun n b acc -> (n, b) :: acc) ps.Stats.ps_by_nreq []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (n, b) -> bucket_to_json n b)
  in
  Obj
    [ ("kernel", Str ps.Stats.ps_kernel);
      ("pc", Int ps.Stats.ps_pc);
      ("class", class_to_json ps.Stats.ps_cls);
      ("warps", Int ps.Stats.ps_warps);
      ("requests", Int ps.Stats.ps_requests);
      ("by_nreq", Arr buckets) ]

let pc_stats_of_json v : Stats.pc_stats =
  let by_nreq = Hashtbl.create 8 in
  List.iter
    (fun bv ->
      let n, b = bucket_of_json bv in
      Hashtbl.replace by_nreq n b)
    (get_list (member "by_nreq" v));
  {
    Stats.ps_kernel = str_field "kernel" v;
    ps_pc = int_field "pc" v;
    ps_cls = class_of_json (member "class" v);
    ps_warps = int_field "warps" v;
    ps_requests = int_field "requests" v;
    ps_by_nreq = by_nreq;
  }

let int_array_to_json a = Arr (Array.to_list (Array.map (fun i -> Int i) a))

let int_array_of_json ~len name v =
  let l = List.map get_int (get_list v) in
  if List.length l <> len then
    raise
      (Parse_error
         (Printf.sprintf "field %s: expected %d entries, got %d" name len
            (List.length l)));
  Array.of_list l

let stats_to_json (s : Stats.t) =
  let per_pc =
    Hashtbl.fold (fun _ ps acc -> ps :: acc) s.Stats.per_pc []
    |> List.sort (fun (a : Stats.pc_stats) b ->
           compare (a.Stats.ps_kernel, a.Stats.ps_pc)
             (b.Stats.ps_kernel, b.Stats.ps_pc))
    |> List.map pc_stats_to_json
  in
  Obj
    [ ("cycles", Int s.Stats.cycles);
      ("warp_insts", Int s.Stats.warp_insts);
      ("thread_insts", Int s.Stats.thread_insts);
      ("l1_events", int_array_to_json s.Stats.l1_events);
      ("l1_probe_cycles", Int s.Stats.l1_probe_cycles);
      ("unit_busy", int_array_to_json s.Stats.unit_busy);
      ("shared_loads", Int s.Stats.shared_loads);
      ("global_stores", Int s.Stats.global_stores);
      ( "per_class",
        Arr (Array.to_list (Array.map class_stats_to_json s.Stats.per_class))
      );
      ("per_pc", Arr per_pc);
      ("completed_ctas", Int s.Stats.completed_ctas);
      ("l2_rsrv_fails", Int s.Stats.l2_rsrv_fails);
      ("prefetches_issued", Int s.Stats.prefetches_issued);
      ("truncated", Bool s.Stats.truncated) ]

let stats_of_json v : Stats.t =
  let per_class =
    match get_list (member "per_class" v) with
    | [ d; n ] -> [| class_stats_of_json d; class_stats_of_json n |]
    | l ->
        raise
          (Parse_error
             (Printf.sprintf "per_class: expected 2 entries, got %d"
                (List.length l)))
  in
  let per_pc = Hashtbl.create 64 in
  List.iter
    (fun pv ->
      let ps = pc_stats_of_json pv in
      Hashtbl.replace per_pc (ps.Stats.ps_kernel, ps.Stats.ps_pc) ps)
    (get_list (member "per_pc" v));
  {
    Stats.cycles = int_field "cycles" v;
    warp_insts = int_field "warp_insts" v;
    thread_insts = int_field "thread_insts" v;
    l1_events =
      int_array_of_json ~len:Stats.n_l1_events "l1_events"
        (member "l1_events" v);
    l1_probe_cycles = int_field "l1_probe_cycles" v;
    unit_busy = int_array_of_json ~len:3 "unit_busy" (member "unit_busy" v);
    shared_loads = int_field "shared_loads" v;
    global_stores = int_field "global_stores" v;
    per_class;
    per_pc;
    completed_ctas = int_field "completed_ctas" v;
    l2_rsrv_fails = int_field "l2_rsrv_fails" v;
    prefetches_issued = int_field "prefetches_issued" v;
    (* absent in pre-truncation documents: default to a clean finish *)
    truncated =
      (match member "truncated" v with Null -> false | b -> get_bool b);
  }

(* ---- Config.t ---- *)

(* Memory-system policy tree.  Serialized recursively: a bare string
   for the parameterless baseline, a one-member object keyed by the
   variant otherwise, so adding a policy never disturbs old readers of
   other variants. *)

let load_policy_to_json (p : Config.load_policy) =
  Obj
    [ ("split", Int p.Config.lp_split);
      ("prefetch", Bool p.Config.lp_prefetch);
      ("bypass", Bool p.Config.lp_bypass) ]

let load_policy_of_json pv =
  {
    Config.lp_split = int_field "split" pv;
    lp_prefetch = get_bool (member "prefetch" pv);
    lp_bypass = get_bool (member "bypass" pv);
  }

let pc_policy_to_json ((kernel, pc), (p : Config.load_policy)) =
  Obj
    [ ("kernel", Str kernel);
      ("pc", Int pc);
      ("split", Int p.Config.lp_split);
      ("prefetch", Bool p.Config.lp_prefetch);
      ("bypass", Bool p.Config.lp_bypass) ]

let pc_policy_of_json pv =
  ((str_field "kernel" pv, int_field "pc" pv), load_policy_of_json pv)

let rec mem_policy_to_json (p : Config.policy) =
  match p with
  | Config.Baseline -> Str "baseline"
  | Config.Ndet_flags lp -> Obj [ ("ndet_flags", load_policy_to_json lp) ]
  | Config.Iar ip ->
      Obj
        [ ( "iar",
            Obj
              [ ("entries", Int ip.Config.iar_entries);
                ("max_wait", Int ip.Config.iar_max_wait) ] ) ]
  | Config.Holistic hp ->
      Obj
        [ ( "holistic",
            Obj
              [ ("bypass_sample", Int hp.Config.hp_bypass_sample);
                ("bypass_hit_pct", Int hp.Config.hp_bypass_hit_pct);
                ("protect_ndet", Bool hp.Config.hp_protect_ndet);
                ("throttle_window", Int hp.Config.hp_throttle_window);
                ("throttle_high_pct", Int hp.Config.hp_throttle_high_pct);
                ("throttle_low_pct", Int hp.Config.hp_throttle_low_pct) ] ) ]
  | Config.Per_pc (ps, inner) ->
      Obj
        [ ("per_pc", Arr (List.map pc_policy_to_json ps));
          ("inner", mem_policy_to_json inner) ]

let rec mem_policy_of_json v : Config.policy =
  match v with
  | Str "baseline" -> Config.Baseline
  | Str s -> raise (Parse_error ("unknown policy " ^ s))
  | Obj _ -> (
      match member "ndet_flags" v with
      | Null -> (
          match member "iar" v with
          | Null -> (
              match member "holistic" v with
              | Null -> (
                  match member "per_pc" v with
                  | Null ->
                      raise (Parse_error "policy object with no known variant")
                  | ps ->
                      Config.Per_pc
                        ( List.map pc_policy_of_json (get_list ps),
                          mem_policy_of_json (member "inner" v) ))
              | h ->
                  Config.Holistic
                    {
                      Config.hp_bypass_sample = int_field "bypass_sample" h;
                      hp_bypass_hit_pct = int_field "bypass_hit_pct" h;
                      hp_protect_ndet = get_bool (member "protect_ndet" h);
                      hp_throttle_window = int_field "throttle_window" h;
                      hp_throttle_high_pct = int_field "throttle_high_pct" h;
                      hp_throttle_low_pct = int_field "throttle_low_pct" h;
                    })
          | ip ->
              Config.Iar
                {
                  Config.iar_entries = int_field "entries" ip;
                  iar_max_wait = int_field "max_wait" ip;
                })
      | lp -> Config.Ndet_flags (load_policy_of_json lp))
  | w -> raise (Parse_error ("bad policy: " ^ type_name w))

(* Documents written before the policy redesign carried four separate
   members (warp_split_width / prefetch_ndet / bypass_ndet /
   pc_policies); rebuild the equivalent policy tree from them. *)
let legacy_policy_of_json v : Config.policy =
  let split =
    match member "warp_split_width" v with Null -> 0 | w -> get_int w
  in
  let prefetch =
    match member "prefetch_ndet" v with Null -> false | b -> get_bool b
  in
  let bypass =
    match member "bypass_ndet" v with Null -> false | b -> get_bool b
  in
  let pcs =
    match member "pc_policies" v with
    | Null -> []
    | ps -> List.map pc_policy_of_json (get_list ps)
  in
  let base =
    if split = 0 && (not prefetch) && not bypass then Config.Baseline
    else
      Config.Ndet_flags
        { Config.lp_split = split; lp_prefetch = prefetch; lp_bypass = bypass }
  in
  match pcs with [] -> base | _ -> Config.Per_pc (pcs, base)

let config_to_json (c : Config.t) =
  let cta_sched =
    match c.Config.cta_sched with
    | Config.Round_robin -> Str "round_robin"
    | Config.Clustered k -> Obj [ ("clustered", Int k) ]
  in
  let warp_sched =
    match c.Config.warp_sched with
    | Config.Lrr -> Str "lrr"
    | Config.Gto -> Str "gto"
  in
  Obj
    [ ("n_sms", Int c.Config.n_sms);
      ("warp_size", Int c.Config.warp_size);
      ("max_threads_per_sm", Int c.Config.max_threads_per_sm);
      ("max_ctas_per_sm", Int c.Config.max_ctas_per_sm);
      ("shared_mem_per_sm", Int c.Config.shared_mem_per_sm);
      ("l1_sets", Int c.Config.l1_sets);
      ("l1_ways", Int c.Config.l1_ways);
      ("line_size", Int c.Config.line_size);
      ("l1_mshr_entries", Int c.Config.l1_mshr_entries);
      ("l1_mshr_max_merge", Int c.Config.l1_mshr_max_merge);
      ("l1_hit_latency", Int c.Config.l1_hit_latency);
      ("n_mem_partitions", Int c.Config.n_mem_partitions);
      ("l2_sets", Int c.Config.l2_sets);
      ("l2_ways", Int c.Config.l2_ways);
      ("l2_mshr_entries", Int c.Config.l2_mshr_entries);
      ("l2_latency", Int c.Config.l2_latency);
      ("icnt_latency", Int c.Config.icnt_latency);
      ("icnt_buffer_size", Int c.Config.icnt_buffer_size);
      ("l2_input_queue_size", Int c.Config.l2_input_queue_size);
      ("dram_latency", Int c.Config.dram_latency);
      ("dram_interval", Int c.Config.dram_interval);
      ("dram_queue_size", Int c.Config.dram_queue_size);
      ("sp_latency", Int c.Config.sp_latency);
      ("sfu_latency", Int c.Config.sfu_latency);
      ("sfu_initiation", Int c.Config.sfu_initiation);
      ("shared_latency", Int c.Config.shared_latency);
      ("shared_banks", Int c.Config.shared_banks);
      ("max_warp_insts", Int c.Config.max_warp_insts);
      ("max_cycles", Int c.Config.max_cycles);
      ("cta_sched", cta_sched);
      ("warp_sched", warp_sched);
      ("l2_cluster", Int c.Config.l2_cluster);
      ("policy", mem_policy_to_json c.Config.policy) ]

let config_of_json v : Config.t =
  let cta_sched =
    match member "cta_sched" v with
    | Str "round_robin" -> Config.Round_robin
    | Obj _ as o -> Config.Clustered (int_field "clustered" o)
    | w -> raise (Parse_error ("bad cta_sched: " ^ type_name w))
  in
  let warp_sched =
    match member "warp_sched" v with
    | Str "lrr" -> Config.Lrr
    | Str "gto" -> Config.Gto
    | Str s -> raise (Parse_error ("unknown warp_sched " ^ s))
    | w -> raise (Parse_error ("bad warp_sched: " ^ type_name w))
  in
  let policy =
    match member "policy" v with
    | Null -> legacy_policy_of_json v
    | p -> mem_policy_of_json p
  in
  {
    Config.n_sms = int_field "n_sms" v;
    warp_size = int_field "warp_size" v;
    max_threads_per_sm = int_field "max_threads_per_sm" v;
    max_ctas_per_sm = int_field "max_ctas_per_sm" v;
    shared_mem_per_sm = int_field "shared_mem_per_sm" v;
    l1_sets = int_field "l1_sets" v;
    l1_ways = int_field "l1_ways" v;
    line_size = int_field "line_size" v;
    l1_mshr_entries = int_field "l1_mshr_entries" v;
    l1_mshr_max_merge = int_field "l1_mshr_max_merge" v;
    l1_hit_latency = int_field "l1_hit_latency" v;
    n_mem_partitions = int_field "n_mem_partitions" v;
    l2_sets = int_field "l2_sets" v;
    l2_ways = int_field "l2_ways" v;
    l2_mshr_entries = int_field "l2_mshr_entries" v;
    l2_latency = int_field "l2_latency" v;
    icnt_latency = int_field "icnt_latency" v;
    icnt_buffer_size = int_field "icnt_buffer_size" v;
    l2_input_queue_size = int_field "l2_input_queue_size" v;
    dram_latency = int_field "dram_latency" v;
    dram_interval = int_field "dram_interval" v;
    dram_queue_size = int_field "dram_queue_size" v;
    sp_latency = int_field "sp_latency" v;
    sfu_latency = int_field "sfu_latency" v;
    sfu_initiation = int_field "sfu_initiation" v;
    shared_latency = int_field "shared_latency" v;
    shared_banks = int_field "shared_banks" v;
    max_warp_insts = int_field "max_warp_insts" v;
    max_cycles = int_field "max_cycles" v;
    cta_sched;
    warp_sched;
    l2_cluster = int_field "l2_cluster" v;
    policy;
  }

(* ---- classification summaries ---- *)

type load_summary = {
  lo_pc : int;
  lo_space : Ptx.Types.space;
  lo_class : Dataflow.Classify.load_class;
  lo_leaves : string list;
  lo_slice_size : int;
}

type classify_summary = {
  cy_kernel : string;
  cy_static_d : int;
  cy_static_n : int;
  cy_loads : load_summary list;
}

let classify_summary (r : Dataflow.Classify.result) =
  let d, n = Dataflow.Classify.count_global r in
  {
    cy_kernel = r.Dataflow.Classify.res_kernel.Ptx.Kernel.kname;
    cy_static_d = d;
    cy_static_n = n;
    cy_loads =
      List.map
        (fun (li : Dataflow.Classify.load_info) ->
          {
            lo_pc = li.Dataflow.Classify.li_pc;
            lo_space = li.Dataflow.Classify.li_space;
            lo_class = li.Dataflow.Classify.li_class;
            lo_leaves =
              List.map Dataflow.Classify.string_of_leaf
                li.Dataflow.Classify.li_leaves;
            lo_slice_size = li.Dataflow.Classify.li_slice_size;
          })
        r.Dataflow.Classify.res_loads;
  }

let load_summary_to_json l =
  Obj
    [ ("pc", Int l.lo_pc);
      ("space", Str (Ptx.Types.string_of_space l.lo_space));
      ("class", class_to_json l.lo_class);
      ("leaves", Arr (List.map (fun s -> Str s) l.lo_leaves));
      ("slice_size", Int l.lo_slice_size) ]

let load_summary_of_json v =
  {
    lo_pc = int_field "pc" v;
    lo_space = Ptx.Types.space_of_string (str_field "space" v);
    lo_class = class_of_json (member "class" v);
    lo_leaves = List.map get_str (get_list (member "leaves" v));
    lo_slice_size = int_field "slice_size" v;
  }

let classify_summary_to_json c =
  Obj
    [ ("kernel", Str c.cy_kernel);
      ("static_d", Int c.cy_static_d);
      ("static_n", Int c.cy_static_n);
      ("loads", Arr (List.map load_summary_to_json c.cy_loads)) ]

let classify_summary_of_json v =
  {
    cy_kernel = str_field "kernel" v;
    cy_static_d = int_field "static_d" v;
    cy_static_n = int_field "static_n" v;
    cy_loads = List.map load_summary_of_json (get_list (member "loads" v));
  }
