(** Functional semantics of one thread executing one instruction.

    Registers are 64-bit; floats are stored as IEEE-754 bit patterns
    (F32 results are rounded through 32 bits).  Integer division by
    zero yields 0, a total stand-in for the undefined PTX behaviour. *)

open Ptx.Types

type thread = {
  regs : int64 array;
  preds : bool array;
  tid : int * int * int;
  lane : int;
}

(** Per-warp execution environment (identical for all lanes). *)
type env = {
  ctaid : int * int * int;
  ntid : int * int * int;
  nctaid : int * int * int;
  warp_in_cta : int;
}

val eval_operand : env -> thread -> operand -> int64
val eval_addr : env -> thread -> addr -> int

val mulhi64 : int64 -> int64 -> int64
(** High 64 bits of the signed 64x64 product. *)

val exec_iop : iop -> int64 -> int64 -> int64
val round_f32 : float -> float
val exec_fop : fop -> dtype -> float -> float -> float
val exec_funary : funary -> dtype -> float -> float
val exec_cvt : dst_ty:dtype -> src_ty:dtype -> int64 -> int64
val exec_cmp : cmp -> dtype -> int64 -> int64 -> bool

val exec_atom : atomop -> int64 -> int64 -> int64
(** [exec_atom op old v] is the new memory value. *)

val exec_alu : env -> thread -> Ptx.Instr.t -> unit
(** Execute a non-memory, non-control instruction for one thread.
    @raise Invalid_argument on memory/control instructions. *)

val exec_alu_warp : env -> thread array -> int -> Ptx.Instr.t -> unit
(** [exec_alu_warp env threads mask i] executes [i] for every lane set
    in [mask] (ascending), dispatching on the instruction once for the
    whole warp.  Semantically identical to [exec_alu] per active lane.
    @raise Invalid_argument on memory/control instructions. *)

val compile_alu : Ptx.Instr.t -> env -> thread array -> int -> unit
(** [compile_alu i] specialises [i] into a closure executing it for
    every lane set in the mask argument (ascending).  Operand-shape
    dispatch happens at compile time, once per pc per launch; results
    are bit-identical to {!exec_alu_warp}.  Compiling a memory/control
    instruction yields a closure that raises when invoked. *)

(** Functional-unit class (for the Fig 4 occupancy statistics). *)
type unit_class = SP | SFU | LDST

val unit_of_instr : Ptx.Instr.t -> unit_class
