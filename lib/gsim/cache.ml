(* Set-associative cache with reserved (in-flight) lines and an
   integrated MSHR table — the GPGPU-Sim L1/L2 model the paper's
   Section VI describes.

   A load access has one of six outcomes:
     Hit            line valid
     Hit_reserved   line in flight, merged into the existing MSHR entry
     Miss           a line was reserved, an MSHR allocated, and the
                    request may be forwarded down the hierarchy
     Rsrv_fail Fail_tags   every candidate line in the set is reserved
     Rsrv_fail Fail_mshr   no MSHR entry free / merge capacity exhausted
     Rsrv_fail Fail_icnt   no downstream buffer slot (checked by caller,
                    passed in as [icnt_ok])

   On a reservation failure the access retries in a later cycle; the
   wasted cache cycles are what Fig 3 plots. *)

type fail_reason = Fail_tags | Fail_mshr | Fail_icnt

type outcome = Hit | Hit_reserved | Miss | Rsrv_fail of fail_reason

let outcome_index = function
  | Hit -> 0
  | Hit_reserved -> 1
  | Miss -> 2
  | Rsrv_fail Fail_tags -> 3
  | Rsrv_fail Fail_mshr -> 4
  | Rsrv_fail Fail_icnt -> 5

type line_state = Invalid | Valid | Reserved

type line = {
  mutable tag : int;
  mutable state : line_state;
  mutable last_use : int;
  (* policy-protected (holistic N-load protection): skipped by victim
     selection until every evictable way of the set is protected, at
     which point the whole set loses protection (second chance).
     Never set unless an access passes [~protect:true], so the default
     victim behaviour is exactly the unprotected LRU. *)
  mutable protected_ : bool;
}

type mshr_entry = { mutable waiters : Request.t list; mutable merged : int }

type t = {
  sets : int;
  ways : int;
  line_size : int;
  lines : line array array; (* [set].[way] *)
  mshr : (int, mshr_entry) Hashtbl.t; (* line_addr -> entry *)
  mshr_entries : int;
  mshr_max_merge : int;
  mutable time : int; (* LRU clock *)
  (* Load-probe outcome counters, indexed by [outcome_index].  These
     count exactly what [access_load] returned: one increment per probe
     cycle, so a reservation failure that retries later counts once per
     attempt (slots 3-5) plus once when it finally completes (slots
     0-2).  Completed accesses (slots 0+1+2) therefore match the
     retry-free accounting [Simplecache] uses, the convention the
     trace/stats reconciliation tests rely on. *)
  outcomes : int array;
}

let create ~sets ~ways ~line_size ~mshr_entries ~mshr_max_merge =
  {
    sets;
    ways;
    line_size;
    lines =
      Array.init sets (fun _ ->
          Array.init ways (fun _ ->
              { tag = -1; state = Invalid; last_use = 0; protected_ = false }));
    mshr = Hashtbl.create (2 * mshr_entries);
    mshr_entries;
    mshr_max_merge;
    time = 0;
    outcomes = Array.make 6 0;
  }

let line_addr t addr = addr / t.line_size * t.line_size

let set_index t line_addr = line_addr / t.line_size mod t.sets

let find_line t la =
  let set = t.lines.(set_index t la) in
  let rec go w =
    if w >= t.ways then None
    else if set.(w).tag = la && set.(w).state <> Invalid then Some set.(w)
    else go (w + 1)
  in
  go 0

(* Victim selection: an invalid way first, else the LRU non-reserved
   unprotected way; when every evictable way is protected, clear the
   set's protection and take the plain LRU (second chance).  None when
   every way is reserved (tag reservation failure).  With no protected
   lines — the default — this is exactly the unprotected LRU policy. *)
let find_victim t la =
  let set = t.lines.(set_index t la) in
  let invalid = Array.fold_left
      (fun acc l -> match acc with
         | Some _ -> acc
         | None -> if l.state = Invalid then Some l else None)
      None set
  in
  match invalid with
  | Some l -> Some l
  | None -> (
      let pick ~skip_protected =
        Array.fold_left
          (fun acc l ->
            if l.state = Reserved || (skip_protected && l.protected_) then acc
            else
              match acc with
              | Some best when best.last_use <= l.last_use -> acc
              | _ -> Some l)
          None set
      in
      match pick ~skip_protected:true with
      | Some _ as v -> v
      | None -> (
          match pick ~skip_protected:false with
          | Some _ as v ->
              Array.iter (fun l -> l.protected_ <- false) set;
              v
          | None -> None))

let mshr_full t = Hashtbl.length t.mshr >= t.mshr_entries

(* Access for a load request.  [icnt_ok] tells whether a miss could be
   forwarded downstream this cycle.  [protect] (policy-driven) pins
   the touched line against eviction — see [find_victim]. *)
let access_load_protect t ~protect ~(req : Request.t) ~icnt_ok =
  t.time <- t.time + 1;
  let la = req.Request.line_addr in
  let count o =
    t.outcomes.(outcome_index o) <- t.outcomes.(outcome_index o) + 1;
    o
  in
  count
  @@
  match find_line t la with
  | Some l when l.state = Valid ->
      l.last_use <- t.time;
      if protect then l.protected_ <- true;
      Hit
  | Some _ -> (
      (* line is in flight: try to merge into its MSHR entry *)
      match Hashtbl.find_opt t.mshr la with
      | Some e when e.merged < t.mshr_max_merge ->
          e.waiters <- req :: e.waiters;
          e.merged <- e.merged + 1;
          Hit_reserved
      | Some _ -> Rsrv_fail Fail_mshr
      | None ->
          (* reserved by a store allocation with no MSHR: treat as merge
             space exhausted *)
          Rsrv_fail Fail_mshr)
  | None -> (
      match find_victim t la with
      | None -> Rsrv_fail Fail_tags
      | Some victim ->
          if mshr_full t then Rsrv_fail Fail_mshr
          else if not icnt_ok then Rsrv_fail Fail_icnt
          else begin
            victim.tag <- la;
            victim.state <- Reserved;
            victim.last_use <- t.time;
            victim.protected_ <- protect;
            Hashtbl.replace t.mshr la { waiters = [ req ]; merged = 1 };
            Miss
          end)

(* The stock access path: no line protection. *)
let access_load t ~req ~icnt_ok =
  access_load_protect t ~protect:false ~req ~icnt_ok

(* Attach a request to an existing in-flight MSHR entry WITHOUT
   consuming merge capacity: the IAR reorder unit combines same-line
   accesses before they reach the cache, so the combined secondaries
   ride the primary's entry for free — they were one probe.  Prepended
   like merges, keeping the allocator last for [mshr_owner_cta].
   False when the line has no in-flight entry (caller invariant). *)
let mshr_attach t ~line_addr ~(req : Request.t) =
  match Hashtbl.find_opt t.mshr line_addr with
  | Some e ->
      e.waiters <- req :: e.waiters;
      true
  | None -> false

(* A fill returning from the lower level: validate the line and release
   the waiting requests. *)
let fill t ~line_addr =
  (match find_line t line_addr with
  | Some l when l.state = Reserved -> l.state <- Valid
  | Some _ | None -> ());
  match Hashtbl.find_opt t.mshr line_addr with
  | Some e ->
      Hashtbl.remove t.mshr line_addr;
      List.rev e.waiters
  | None -> []

(* Probe without side effects (used by write handling and tests). *)
let probe t ~line_addr =
  match find_line t line_addr with
  | Some l when l.state = Valid -> `Valid
  | Some _ -> `Reserved
  | None -> `Absent

(* Write-evict for L1 global stores (Fermi L1 is write-through
   no-allocate): drop the line if present and valid. *)
let invalidate t ~line_addr =
  match find_line t line_addr with
  | Some l when l.state = Valid ->
      l.state <- Invalid;
      l.tag <- -1;
      l.protected_ <- false
  | Some _ | None -> ()

(* Write-allocate update for L2 stores: mark/refresh the line valid.
   Returns false when allocation is impossible this cycle (all ways
   reserved). *)
let write_allocate t ~line_addr =
  t.time <- t.time + 1;
  match find_line t line_addr with
  | Some l ->
      if l.state = Valid then l.last_use <- t.time;
      true
  | None -> (
      match find_victim t line_addr with
      | None -> false
      | Some victim ->
          victim.tag <- line_addr;
          victim.state <- Valid;
          victim.last_use <- t.time;
          true)

let outcome_counts t = Array.copy t.outcomes

let completed_accesses t = t.outcomes.(0) + t.outcomes.(1) + t.outcomes.(2)

let mshr_in_use t = Hashtbl.length t.mshr

(* CTA that allocated the in-flight MSHR entry for [line_addr]: waiters
   are prepended on merge, so the allocator is the last element.  -1
   when the line has no entry. *)
let mshr_owner_cta t ~line_addr =
  match Hashtbl.find_opt t.mshr line_addr with
  | Some { waiters = _ :: _ as ws; _ } ->
      (List.nth ws (List.length ws - 1)).Request.cta
  | Some { waiters = []; _ } | None -> -1

let occupancy t =
  let valid = ref 0 and reserved = ref 0 in
  Array.iter
    (Array.iter (fun l ->
         match l.state with
         | Valid -> incr valid
         | Reserved -> incr reserved
         | Invalid -> ()))
    t.lines;
  (!valid, !reserved)
