(** Cycle-level event tracing: zero-cost-when-disabled emission of the
    memory-system transitions the paper's figures are built from.

    Components of the timing simulator share one {!t} and [emit] typed
    events at each transition; the active sink decides what happens —
    nothing (null), kept in a bounded ring (tests / post-mortem), or
    streamed to a callback (JSONL writer, Chrome [trace_event] writer,
    {!Profile} reducer).  Emission sites guard event construction
    behind {!enabled}, so untraced runs allocate nothing and produce a
    {!Stats.t} byte-identical to a build without tracing. *)

type cls = Dataflow.Classify.load_class

(** Which cache observed an access: an SM's L1 or a partition's L2. *)
type side = S_l1 of int | S_l2 of int

type dir = Dir_req | Dir_resp

(** What probed the cache: a classified load, a store, or a next-line
    prefetch (prefetch probes are not recorded in {!Stats}, so they are
    tagged distinctly to keep trace-derived counts reconcilable). *)
type acc_src = A_load of cls | A_store | A_prefetch

type event =
  | Ev_load_issue of {
      cycle : int;
      sm : int;
      cta : int;
      warp_slot : int;
      kernel : string;
      pc : int;
      cls : cls;
      active : int;
      nreq : int;  (** coalesced line requests the load fans out into *)
    }  (** A warp-level global load entered the LD/ST queue (Fig 6). *)
  | Ev_load_return of {
      cycle : int;
      sm : int;
      cta : int;
      kernel : string;
      pc : int;
      cls : cls;
      nreq : int;
      turnaround : int;  (** issue-to-last-return, the Fig 5 metric *)
      level : Request.level;  (** deepest level that serviced it *)
    }  (** The last outstanding request of a warp-level load returned. *)
  | Ev_access of {
      cycle : int;
      where : side;
      line : int;
      src : acc_src;
      outcome : Cache.outcome;
    }  (** One cache probe cycle, incl. reservation failures (Fig 3). *)
  | Ev_mshr_alloc of { cycle : int; where : side; line : int; cta : int }
  | Ev_mshr_merge of {
      cycle : int;
      where : side;
      line : int;
      cta : int;  (** requesting CTA *)
      owner_cta : int;  (** CTA that allocated the in-flight entry *)
    }  (** Merge into an in-flight line — Figs 8-9 locality evidence. *)
  | Ev_mshr_free of { cycle : int; where : side; line : int; waiters : int }
  | Ev_icnt_enq of { cycle : int; dir : dir; sm : int; part : int; line : int }
  | Ev_icnt_deq of { cycle : int; dir : dir; sm : int; part : int; line : int }
  | Ev_dram_enq of { cycle : int; part : int; line : int; write : bool }
  | Ev_dram_deq of { cycle : int; part : int; line : int }
  | Ev_occupancy of { cycle : int; sm : int; mshr : int; ldst_q : int }
      (** Periodic per-SM MSHR / LD-ST queue occupancy sample. *)

type ring

type sink = Null | Ring of ring | Stream of (event -> unit)

type t = { mutable sink : sink }

val null : unit -> t
(** The production default: every emission is dropped. *)

val ring_sink : capacity:int -> t
(** Keep the last [capacity] events in memory. *)

val stream : (event -> unit) -> t

val enabled : t -> bool
(** False only for the null sink — emission sites check this before
    constructing an event, making disabled tracing allocation-free. *)

val emit : t -> event -> unit

val ring_contents : t -> event list
(** Oldest-to-newest contents of a ring sink; [[]] for other sinks. *)

val ring_total : t -> int
(** Events ever emitted into a ring sink (may exceed its capacity). *)

val with_muted : t -> (unit -> 'a) -> 'a
(** Run [f] with the sink swapped to [Null] (kernel filtering). *)

(** {1 JSON encoding} *)

val cls_name : cls -> string
(** ["D"] / ["N"]. *)

val event_to_json : event -> Stats_io.Json.t

val event_of_json : Stats_io.Json.t -> event
(** Inverse of {!event_to_json}.
    @raise Stats_io.Json.Parse_error on schema mismatch. *)

val jsonl_sink : out_channel -> t
(** One JSON object per line, parseable by {!Stats_io.Json}. *)

val chrome_sink : out_channel -> t * (unit -> unit)
(** Chrome [trace_event] JSON array for chrome://tracing / Perfetto;
    cycles are written as microseconds, warp-load lifetimes as complete
    ("X") spans, occupancy samples as counter ("C") tracks.  The
    returned closer terminates the array (it does not close the
    channel). *)
