(* Timing-simulation statistics: everything Figs 2–8 need, separated by
   load class (D / N) and, for Figs 6–7, by load pc and request count. *)

type cls = Dataflow.Classify.load_class

let cls_index = function
  | Dataflow.Classify.Deterministic -> 0
  | Dataflow.Classify.Nondeterministic -> 1

(* Fig 3 outcome slots. *)
let n_l1_events = 6

let l1_event_index (o : Cache.outcome) =
  match o with
  | Cache.Hit -> 0
  | Cache.Hit_reserved -> 1
  | Cache.Miss -> 2
  | Cache.Rsrv_fail Cache.Fail_tags -> 3
  | Cache.Rsrv_fail Cache.Fail_mshr -> 4
  | Cache.Rsrv_fail Cache.Fail_icnt -> 5

let l1_event_name = function
  | 0 -> "hit"
  | 1 -> "hit_reserved"
  | 2 -> "miss"
  | 3 -> "rsrv_fail_tags"
  | 4 -> "rsrv_fail_mshr"
  | 5 -> "rsrv_fail_icnt"
  | _ -> invalid_arg "l1_event_name"

type class_stats = {
  mutable cs_warps : int; (* completed warp-level global loads *)
  mutable cs_requests : int;
  mutable cs_active_threads : int;
  mutable cs_turnaround : int;
  mutable cs_unloaded : int;
  mutable cs_rsrv_prev : int; (* waiting for the first acceptance *)
  mutable cs_rsrv_cur : int; (* first-to-last acceptance spread *)
  mutable cs_wasted_mem : int; (* L2/DRAM/icnt imbalance *)
  mutable cs_l1_access : int;
  mutable cs_l1_miss : int;
  mutable cs_l2_access : int;
  mutable cs_l2_miss : int;
}

let empty_class_stats () =
  {
    cs_warps = 0;
    cs_requests = 0;
    cs_active_threads = 0;
    cs_turnaround = 0;
    cs_unloaded = 0;
    cs_rsrv_prev = 0;
    cs_rsrv_cur = 0;
    cs_wasted_mem = 0;
    cs_l1_access = 0;
    cs_l1_miss = 0;
    cs_l2_access = 0;
    cs_l2_miss = 0;
  }

(* Fig 6/7 bucket: warp loads of one pc that generated [n] requests. *)
type nreq_bucket = {
  mutable nb_count : int;
  mutable nb_turnaround : int;
  mutable nb_common : int;
  mutable nb_gap_l1d : int;
  mutable nb_gap_icnt_l2 : int;
  mutable nb_gap_l2_icnt : int;
}

type pc_stats = {
  ps_kernel : string;
  ps_pc : int;
  ps_cls : cls;
  mutable ps_warps : int;
  mutable ps_requests : int;
  ps_by_nreq : (int, nreq_bucket) Hashtbl.t;
}

type t = {
  mutable cycles : int;
  mutable warp_insts : int;
  mutable thread_insts : int;
  l1_events : int array;
  mutable l1_probe_cycles : int;
  unit_busy : int array; (* SP / SFU / LDST first-stage busy cycles *)
  mutable shared_loads : int;
  mutable global_stores : int;
  per_class : class_stats array;
  per_pc : (string * int, pc_stats) Hashtbl.t;
  mutable completed_ctas : int;
  mutable l2_rsrv_fails : int;
  mutable prefetches_issued : int;
  mutable truncated : bool; (* a cycle/instruction cap cut the run short *)
}

let create () =
  {
    cycles = 0;
    warp_insts = 0;
    thread_insts = 0;
    l1_events = Array.make n_l1_events 0;
    l1_probe_cycles = 0;
    unit_busy = Array.make 3 0;
    shared_loads = 0;
    global_stores = 0;
    per_class = [| empty_class_stats (); empty_class_stats () |];
    per_pc = Hashtbl.create 64;
    completed_ctas = 0;
    l2_rsrv_fails = 0;
    prefetches_issued = 0;
    truncated = false;
  }

let unit_index = function Exec.SP -> 0 | Exec.SFU -> 1 | Exec.LDST -> 2

let record_unit_busy t u = t.unit_busy.(unit_index u) <- t.unit_busy.(unit_index u) + 1

(* Batch form for the fast-forward path: [n] skipped cycles in which
   the unit's first stage would have sampled busy. *)
let record_unit_busy_span t u n =
  if n > 0 then t.unit_busy.(unit_index u) <- t.unit_busy.(unit_index u) + n

let record_l1_event t outcome cls =
  let i = l1_event_index outcome in
  t.l1_events.(i) <- t.l1_events.(i) + 1;
  t.l1_probe_cycles <- t.l1_probe_cycles + 1;
  let c = t.per_class.(cls_index cls) in
  match outcome with
  | Cache.Hit | Cache.Hit_reserved ->
      c.cs_l1_access <- c.cs_l1_access + 1
  | Cache.Miss ->
      c.cs_l1_access <- c.cs_l1_access + 1;
      c.cs_l1_miss <- c.cs_l1_miss + 1
  | Cache.Rsrv_fail _ -> ()

(* Stores occupy L1 cycles (write-evict probe + downstream injection)
   but are not classified loads: count the cycle, not the class. *)
let record_l1_store_event t outcome =
  let i = l1_event_index outcome in
  t.l1_events.(i) <- t.l1_events.(i) + 1;
  t.l1_probe_cycles <- t.l1_probe_cycles + 1

let record_l2_access t cls ~miss =
  let c = t.per_class.(cls_index cls) in
  c.cs_l2_access <- c.cs_l2_access + 1;
  if miss then c.cs_l2_miss <- c.cs_l2_miss + 1

let pc_stats t kernel pc cls =
  match Hashtbl.find_opt t.per_pc (kernel, pc) with
  | Some ps -> ps
  | None ->
      let ps =
        { ps_kernel = kernel; ps_pc = pc; ps_cls = cls; ps_warps = 0;
          ps_requests = 0; ps_by_nreq = Hashtbl.create 8 }
      in
      Hashtbl.add t.per_pc (kernel, pc) ps;
      ps

let bucket ps n =
  match Hashtbl.find_opt ps.ps_by_nreq n with
  | Some b -> b
  | None ->
      let b =
        { nb_count = 0; nb_turnaround = 0; nb_common = 0; nb_gap_l1d = 0;
          nb_gap_icnt_l2 = 0; nb_gap_l2_icnt = 0 }
      in
      Hashtbl.add ps.ps_by_nreq n b;
      b

(* Called when the last request of a warp-level load returns. *)
let record_warp_load_done t (cfg : Config.t) (wl : Request.warp_load) =
  let turnaround = wl.Request.wl_t_last_return - wl.Request.wl_t_issue in
  (* MSHR-merged loads can return faster than the nominal unloaded
     path; cap the baseline so the stacked breakdown sums to the
     turnaround *)
  let unloaded =
    min turnaround (Request.unloaded_latency cfg wl.Request.wl_deepest)
  in
  let rsrv_prev = max 0 (wl.Request.wl_t_first_accept - wl.Request.wl_t_issue) in
  let rsrv_prev = min rsrv_prev (max 0 (turnaround - unloaded)) in
  let rsrv_cur =
    max 0 (wl.Request.wl_t_last_accept - wl.Request.wl_t_first_accept)
  in
  let rsrv_cur = min rsrv_cur (max 0 (turnaround - unloaded - rsrv_prev)) in
  let wasted = max 0 (turnaround - unloaded - rsrv_prev - rsrv_cur) in
  let c = t.per_class.(cls_index wl.Request.wl_cls) in
  c.cs_warps <- c.cs_warps + 1;
  c.cs_requests <- c.cs_requests + wl.Request.wl_nreq;
  c.cs_active_threads <- c.cs_active_threads + wl.Request.wl_active;
  c.cs_turnaround <- c.cs_turnaround + turnaround;
  c.cs_unloaded <- c.cs_unloaded + unloaded;
  c.cs_rsrv_prev <- c.cs_rsrv_prev + rsrv_prev;
  c.cs_rsrv_cur <- c.cs_rsrv_cur + rsrv_cur;
  c.cs_wasted_mem <- c.cs_wasted_mem + wasted;
  let ps = pc_stats t wl.Request.wl_kernel wl.Request.wl_pc wl.Request.wl_cls in
  ps.ps_warps <- ps.ps_warps + 1;
  ps.ps_requests <- ps.ps_requests + wl.Request.wl_nreq;
  let b = bucket ps wl.Request.wl_nreq in
  b.nb_count <- b.nb_count + 1;
  b.nb_turnaround <- b.nb_turnaround + turnaround;
  b.nb_common <- b.nb_common + unloaded;
  b.nb_gap_l1d <-
    b.nb_gap_l1d + max 0 (wl.Request.wl_t_last_accept - wl.Request.wl_t_issue);
  b.nb_gap_icnt_l2 <-
    b.nb_gap_icnt_l2
    + (if wl.Request.wl_nreq = 0 then 0
       else wl.Request.wl_sum_icnt_wait / wl.Request.wl_nreq);
  b.nb_gap_l2_icnt <-
    b.nb_gap_l2_icnt
    + max 0 (wl.Request.wl_t_last_return - wl.Request.wl_t_first_return)

(* Derived figures. *)

let requests_per_warp t cls =
  let c = t.per_class.(cls_index cls) in
  if c.cs_warps = 0 then 0.0
  else float_of_int c.cs_requests /. float_of_int c.cs_warps

let requests_per_active_thread t cls =
  let c = t.per_class.(cls_index cls) in
  if c.cs_active_threads = 0 then 0.0
  else float_of_int c.cs_requests /. float_of_int c.cs_active_threads

let avg_turnaround t cls =
  let c = t.per_class.(cls_index cls) in
  if c.cs_warps = 0 then 0.0
  else float_of_int c.cs_turnaround /. float_of_int c.cs_warps

(* (unloaded, rsrv_prev, rsrv_cur, wasted) averages. *)
let turnaround_breakdown t cls =
  let c = t.per_class.(cls_index cls) in
  if c.cs_warps = 0 then (0.0, 0.0, 0.0, 0.0)
  else
    let f x = float_of_int x /. float_of_int c.cs_warps in
    (f c.cs_unloaded, f c.cs_rsrv_prev, f c.cs_rsrv_cur, f c.cs_wasted_mem)

let l1_miss_ratio t cls =
  let c = t.per_class.(cls_index cls) in
  if c.cs_l1_access = 0 then 0.0
  else float_of_int c.cs_l1_miss /. float_of_int c.cs_l1_access

let l2_miss_ratio t cls =
  let c = t.per_class.(cls_index cls) in
  if c.cs_l2_access = 0 then 0.0
  else float_of_int c.cs_l2_miss /. float_of_int c.cs_l2_access

(* Fig 3: fractions of L1 probe cycles per outcome. *)
let l1_cycle_breakdown t =
  let total = max 1 t.l1_probe_cycles in
  Array.map (fun e -> float_of_int e /. float_of_int total) t.l1_events

(* Fig 4: busy fraction of each unit's first pipeline stage.  Busy
   cycles are summed across SMs, so normalize by cycles * n_sms. *)
let unit_busy_fraction t ~n_sms u =
  if t.cycles = 0 then 0.0
  else
    float_of_int t.unit_busy.(unit_index u)
    /. float_of_int (t.cycles * n_sms)

(* Merge [src] into [dst] (used to aggregate per-SM stats). *)
let merge_class ~dst ~src =
  dst.cs_warps <- dst.cs_warps + src.cs_warps;
  dst.cs_requests <- dst.cs_requests + src.cs_requests;
  dst.cs_active_threads <- dst.cs_active_threads + src.cs_active_threads;
  dst.cs_turnaround <- dst.cs_turnaround + src.cs_turnaround;
  dst.cs_unloaded <- dst.cs_unloaded + src.cs_unloaded;
  dst.cs_rsrv_prev <- dst.cs_rsrv_prev + src.cs_rsrv_prev;
  dst.cs_rsrv_cur <- dst.cs_rsrv_cur + src.cs_rsrv_cur;
  dst.cs_wasted_mem <- dst.cs_wasted_mem + src.cs_wasted_mem;
  dst.cs_l1_access <- dst.cs_l1_access + src.cs_l1_access;
  dst.cs_l1_miss <- dst.cs_l1_miss + src.cs_l1_miss;
  dst.cs_l2_access <- dst.cs_l2_access + src.cs_l2_access;
  dst.cs_l2_miss <- dst.cs_l2_miss + src.cs_l2_miss
