(** Top-level cycle simulator: SMs + interconnect + memory partitions,
    plus the per-launch CTA work distributor.

    The machine persists across the kernel launches of one application,
    so L1/L2 contents survive kernel boundaries as on hardware; only
    the warp slots are reconfigured per launch. *)

type t = {
  cfg : Config.t;
  stats : Stats.t;
  trace : Trace.t;
  icnt : Icnt.t;
  parts : L2part.t array;
  sms : Sm.t array;
  mutable cycle : int;
}

val create_machine :
  ?cfg:Config.t -> ?stats:Stats.t -> ?trace:Trace.t -> unit -> t
(** [?trace] defaults to a null sink shared by every SM, the
    interconnect, and every memory partition; when enabled, per-SM
    MSHR / LD-ST queue occupancy is additionally sampled every 256th
    cycle. *)

val run_launch : t -> ?max_ctas:int -> ?fast_forward:bool -> Launch.t -> bool
(** Run one kernel launch to completion (or to the instruction/cycle
    caps), keeping cache state from prior launches.  Returns false when
    a cap stopped the launch early — also recorded as
    [stats.truncated].

    With [fast_forward] (default false), cycles in which every
    component reports quiescent (see {!Sm.next_wake},
    {!Icnt.next_wake}, {!L2part.next_wake}) are jumped in one step to
    the earliest next-wake horizon — capped at the watchdog deadline,
    the cycle cap, and (when tracing) the next sparse occupancy sample
    — with the skipped unit-occupancy samples restored in batch.
    Fast-forwarded runs are byte-identical in [Stats.t] and trace
    stream to the naive loop; the equivalence suite cross-checks every
    app in both modes.
    @raise Sim_error.Error on barrier deadlock or livelock (the stall
    watchdog), with kernel / warp / cycle context. *)

val run :
  ?cfg:Config.t -> ?max_ctas:int -> ?stats:Stats.t -> ?trace:Trace.t ->
  ?fast_forward:bool -> Launch.t -> t
(** One launch on a fresh machine. *)

