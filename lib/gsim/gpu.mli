(** Top-level cycle simulator: SMs + interconnect + memory partitions,
    plus the per-launch CTA work distributor.

    The machine persists across the kernel launches of one application,
    so L1/L2 contents survive kernel boundaries as on hardware; only
    the warp slots are reconfigured per launch. *)

type t = {
  cfg : Config.t;
  stats : Stats.t;
  icnt : Icnt.t;
  parts : L2part.t array;
  sms : Sm.t array;
  mutable cycle : int;
}

exception Stalled of int
(** Raised when the machine makes no progress for a long time — a
    simulator bug guard, not an expected outcome. *)

val create_machine : ?cfg:Config.t -> ?stats:Stats.t -> unit -> t

val run_launch : t -> ?max_ctas:int -> Launch.t -> bool
(** Run one kernel launch to completion (or to the instruction/cycle
    caps), keeping cache state from prior launches.  Returns false when
    a cap stopped the launch early.
    @raise Stalled on livelock. *)

val run : ?cfg:Config.t -> ?max_ctas:int -> ?stats:Stats.t -> Launch.t -> t
(** One launch on a fresh machine. *)
