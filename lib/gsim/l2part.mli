(** One memory partition: a slice of the unified L2 cache plus its DRAM
    channel.  Stores write-allocate and stream to DRAM fire-and-forget;
    loads probe the L2 with the same outcome taxonomy as the L1. *)

type t

val create : ?trace:Trace.t -> Config.t -> id:int -> stats:Stats.t -> t
(** [?trace] defaults to a null sink; L2 access, MSHR, and DRAM
    channel events are emitted only when enabled. *)

val cycle : t -> now:int -> icnt:Icnt.t -> unit
(** One cycle: complete DRAM transactions and pending L2 hits, accept
    arrived interconnect requests, process the input-queue head, and
    inject one response back towards its SM. *)

val idle : t -> bool
(** No queued work anywhere in the partition. *)

val next_wake : t -> now:int -> int
(** Fast-forward contract: earliest cycle at which the partition can
    make progress on its own.  A value [<= now] — active (a queued
    input head or pending response); [now < c < max_int] — quiescent
    until the DRAM / ROP-hit queue head matures at [c]; [max_int] —
    empty.  Allocation-free. *)
