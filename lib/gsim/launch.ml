(* A kernel launch: grid/block geometry, parameter bindings, the global
   memory image, and the per-pc load classification that both
   simulators tag memory traffic with. *)

type t = {
  kernel : Ptx.Kernel.t;
  grid : int * int * int;
  block : int * int * int;
  params : (string, int64) Hashtbl.t;
  global : Mem.t;
  classes : Dataflow.Classify.result;
  reconv : int array;
  decode : Decode.t;
}

(* The static analyses — verification, dataflow classification, the
   post-dominator reconvergence table, and the predecoded dispatch
   tables — depend only on the kernel, but iterative applications
   relaunch the same kernel value dozens to hundreds of times.  Memoize
   them on the kernel's physical identity ([Ptx.Kernel.t] is immutable
   once built); the move-to-front list keeps the handful of live
   kernels at the head and the cap bounds growth for callers that
   rebuild kernels per launch. *)
type static = {
  s_classes : Dataflow.Classify.result;
  s_reconv : int array;
  s_decode : Decode.t;
}

let static_cache : (Ptx.Kernel.t * static) list ref = ref []

let static_cache_cap = 64

let static_of_kernel kernel =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let rec find acc = function
    | [] -> None
    | ((k, s) as e) :: rest ->
        if k == kernel then begin
          static_cache := e :: List.rev_append acc rest;
          Some s
        end
        else find (e :: acc) rest
  in
  match find [] !static_cache with
  | Some s -> s
  | None ->
      let kname = kernel.Ptx.Kernel.kname in
      (* Static verification up front: a kernel that fails here would
         otherwise surface as a confusing runtime fault
         mid-simulation. *)
      (match Dataflow.Verify.verify_kernel kernel |> Ptx.Verify.errors with
      | [] -> ()
      | errs ->
          Sim_error.error ~kernel:kname Sim_error.Invalid_kernel
            "kernel failed verification: %s"
            (String.concat "; " (List.map Ptx.Verify.to_string errs)));
      let classes = Dataflow.Classify.classify kernel in
      let s =
        {
          s_classes = classes;
          s_reconv = Warp.reconvergence_table kernel;
          s_decode = Decode.of_kernel kernel classes;
        }
      in
      static_cache := take static_cache_cap ((kernel, s) :: !static_cache);
      s

let create ~kernel ~grid ~block ~params ~global =
  let kname = kernel.Ptx.Kernel.kname in
  let s = static_of_kernel kernel in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) params;
  List.iter
    (fun (p : Ptx.Kernel.param) ->
      if not (Hashtbl.mem tbl p.pname) then
        let bound =
          List.map fst params |> List.sort compare |> String.concat ", "
        in
        Sim_error.error ~kernel:kname Sim_error.Unbound_param
          "parameter %s is declared but not bound at launch (bound: %s)"
          p.pname
          (if bound = "" then "none" else bound))
    kernel.Ptx.Kernel.params;
  {
    kernel;
    grid;
    block;
    params = tbl;
    global;
    classes = s.s_classes;
    reconv = s.s_reconv;
    decode = s.s_decode;
  }

let n_ctas t =
  let x, y, z = t.grid in
  x * y * z

let threads_per_cta t =
  let x, y, z = t.block in
  x * y * z

let warps_per_cta t ~warp_size =
  (threads_per_cta t + warp_size - 1) / warp_size

(* 3-D coordinates of the linearized CTA id (paper's linearization:
   CtaId.x + CtaId.y*CtaDim.x + CtaId.z*CtaDim.x*CtaDim.y). *)
let cta_coords t lin =
  let gx, gy, _ = t.grid in
  (lin mod gx, lin / gx mod gy, lin / (gx * gy))

let thread_coords t linear_tid =
  let bx, by, _ = t.block in
  (linear_tid mod bx, linear_tid / bx mod by, linear_tid / (bx * by))

let load_class t pc = t.decode.Decode.load_cls.(pc)
