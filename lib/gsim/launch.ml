(* A kernel launch: grid/block geometry, parameter bindings, the global
   memory image, and the per-pc load classification that both
   simulators tag memory traffic with. *)

type t = {
  kernel : Ptx.Kernel.t;
  grid : int * int * int;
  block : int * int * int;
  params : (string, int64) Hashtbl.t;
  global : Mem.t;
  classes : Dataflow.Classify.result;
  reconv : int array;
}

let create ~kernel ~grid ~block ~params ~global =
  let kname = kernel.Ptx.Kernel.kname in
  (* Static verification up front: a kernel that fails here would
     otherwise surface as a confusing runtime fault mid-simulation. *)
  (match Dataflow.Verify.verify_kernel kernel |> Ptx.Verify.errors with
  | [] -> ()
  | errs ->
      Sim_error.error ~kernel:kname Sim_error.Invalid_kernel
        "kernel failed verification: %s"
        (String.concat "; " (List.map Ptx.Verify.to_string errs)));
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) params;
  List.iter
    (fun (p : Ptx.Kernel.param) ->
      if not (Hashtbl.mem tbl p.pname) then
        let bound =
          List.map fst params |> List.sort compare |> String.concat ", "
        in
        Sim_error.error ~kernel:kname Sim_error.Unbound_param
          "parameter %s is declared but not bound at launch (bound: %s)"
          p.pname
          (if bound = "" then "none" else bound))
    kernel.Ptx.Kernel.params;
  {
    kernel;
    grid;
    block;
    params = tbl;
    global;
    classes = Dataflow.Classify.classify kernel;
    reconv = Warp.reconvergence_table kernel;
  }

let n_ctas t =
  let x, y, z = t.grid in
  x * y * z

let threads_per_cta t =
  let x, y, z = t.block in
  x * y * z

let warps_per_cta t ~warp_size =
  (threads_per_cta t + warp_size - 1) / warp_size

(* 3-D coordinates of the linearized CTA id (paper's linearization:
   CtaId.x + CtaId.y*CtaDim.x + CtaId.z*CtaDim.x*CtaDim.y). *)
let cta_coords t lin =
  let gx, gy, _ = t.grid in
  (lin mod gx, lin / gx mod gy, lin / (gx * gy))

let thread_coords t linear_tid =
  let bx, by, _ = t.block in
  (linear_tid mod bx, linear_tid / bx mod by, linear_tid / (bx * by))

let load_class t pc =
  match Dataflow.Classify.class_of_global_load t.classes pc with
  | Some c -> c
  | None -> Dataflow.Classify.Deterministic
