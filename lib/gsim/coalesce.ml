(* The memory-access coalescer.  Sits in front of the L1 (as in the
   paper's Section VI): the lane addresses of one warp memory
   instruction are grouped into distinct cache-line requests.  A fully
   coalesced warp load touches one line; a worst-case gather touches
   one line per active lane. *)

(* Distinct line addresses touched by the access, in first-lane order.
   Dedup is a linear membership scan of the (at most warp-size long,
   typically 1-2 long) accumulator — cheaper than hashing on the hot
   path and allocation-free beyond the result list itself. *)
let lines ~line_size ~mask ~addrs =
  let out = ref [] in
  let m = ref mask in
  let lane = ref 0 in
  while !m <> 0 do
    if !m land 1 <> 0 then begin
      let la = addrs.(!lane) / line_size * line_size in
      if not (List.memq la !out) then out := la :: !out
    end;
    m := !m lsr 1;
    incr lane
  done;
  List.rev !out

let count ~line_size ~mask ~addrs =
  List.length (lines ~line_size ~mask ~addrs)

(* Ascending-address ordering of a coalesced line list — the order the
   IAR reorder unit buffers entries in, so same-line requests from
   different warps batch into one probe.  The in-order LD/ST queue
   keeps first-lane order; only the reorder buffer re-sorts. *)
let sort_lines ls = List.sort compare ls

(* Split the lane mask into sub-warps of [width] lanes each — the
   Section X.A warp-splitting ablation.  Returns the per-sub-warp line
   lists, dropping empty sub-warps. *)
let split_lines ~line_size ~width ~mask ~addrs =
  if width <= 0 then [ lines ~line_size ~mask ~addrs ]
  else begin
    let groups = ref [] in
    let lane = ref 0 in
    let nlanes = Array.length addrs in
    while !lane < nlanes do
      let gmask = ref 0 in
      for l = !lane to min (nlanes - 1) (!lane + width - 1) do
        if mask land (1 lsl l) <> 0 then gmask := !gmask lor (1 lsl l)
      done;
      if !gmask <> 0 then
        groups := lines ~line_size ~mask:!gmask ~addrs :: !groups;
      lane := !lane + width
    done;
    List.rev !groups
  end
