(* CTA instantiation: builds the warps of one thread block, its shared
   memory, and the memory interface its threads use.

   Local memory is modelled as a per-CTA scratch buffer indexed by the
   thread-local addresses the kernel computes; const and tex spaces
   read the global image (their caches are not modelled). *)

open Ptx.Types

type t = {
  cta_lin : int;
  warps : Warp.t array;
  shared : Mem.t;
  launch : Launch.t;
}

let shared_size kernel =
  max 256 kernel.Ptx.Kernel.smem_bytes

let mem_iface (launch : Launch.t) shared local =
  let pick = function
    | Global | Const | Tex | Param -> launch.Launch.global
    | Shared -> shared
    | Local -> local
  in
  {
    Warp.read = (fun sp ty addr -> Mem.load (pick sp) ty addr);
    write = (fun sp ty addr v -> Mem.store (pick sp) ty addr v);
    atomic =
      (fun op ty addr v ->
        let m = launch.Launch.global in
        let old = Mem.load m ty addr in
        Mem.store m ty addr (Exec.exec_atom op old v);
        old);
    m_global = launch.Launch.global;
    m_shared = shared;
    m_local = local;
  }

let create (launch : Launch.t) ~warp_size ~cta_lin =
  let kernel = launch.Launch.kernel in
  let nthreads = Launch.threads_per_cta launch in
  let nwarps = (nthreads + warp_size - 1) / warp_size in
  let shared = Mem.create (shared_size kernel) in
  let local = Mem.create (max 256 (nthreads * 64)) in
  let mem = mem_iface launch shared local in
  let ctaid = Launch.cta_coords launch cta_lin in
  let gx, gy, gz = launch.Launch.grid in
  let bx, by, bz = launch.Launch.block in
  let warps =
    Array.init nwarps (fun w ->
        let env =
          {
            Exec.ctaid;
            ntid = (bx, by, bz);
            nctaid = (gx, gy, gz);
            warp_in_cta = w;
          }
        in
        let base = w * warp_size in
        let lanes = min warp_size (nthreads - base) in
        let threads =
          Array.init warp_size (fun lane ->
              let linear = base + lane in
              {
                Exec.regs = Array.make kernel.Ptx.Kernel.nregs 0L;
                preds = Array.make kernel.Ptx.Kernel.npregs false;
                tid =
                  (if lane < lanes then Launch.thread_coords launch linear
                   else (0, 0, 0));
                lane;
              })
        in
        Warp.create ~warp_id:w ~cta_lin ~decode:launch.Launch.decode ~env
          ~threads ~valid_mask:(Warp.full_mask lanes)
          ~params:launch.Launch.params ~reconv_of_pc:launch.Launch.reconv ~mem
          kernel)
  in
  { cta_lin; warps; shared; launch }

let n_warps t = Array.length t.warps

let all_finished t = Array.for_all Warp.finished t.warps
