(* Cycle-level event tracing: a zero-cost-when-disabled emission layer
   under the timing simulator.

   Every memory-system transition the paper's figures are built from is
   an [event]: warp-level load issue/return (Figs 5-6), L1/L2 probe
   outcomes including the three reservation-fail kinds (Fig 3), MSHR
   allocate/merge/free with the requesting CTA (Figs 8-9), and
   interconnect/DRAM queue enqueue/dequeue.  Components hold one shared
   [t] and call [emit] at each transition; the active [sink] decides
   what happens to the event:

     Null     dropped — the production default.  Call sites guard event
              construction behind [enabled], so a run without tracing
              allocates nothing and [Stats.t] is byte-identical to a
              pre-trace build (the invariant test_trace checks).
     Ring     last-N events kept in memory (tests, post-mortem).
     Stream   callback per event: the JSONL writer, the Chrome
              trace_event writer, and the [Profile] reducer are all
              stream sinks.

   The sink is mutable so a driver can mute tracing for launches
   outside a --kernel filter without re-plumbing the machine. *)

type cls = Dataflow.Classify.load_class

(* Which cache observed an access: an SM's L1 or a partition's L2. *)
type side = S_l1 of int | S_l2 of int

type dir = Dir_req | Dir_resp

(* What kind of access probed the cache: a classified load, a store
   (write-evict / write-allocate probe), or a next-line prefetch.
   Prefetch probes are not recorded in [Stats], so they are tagged
   distinctly to keep trace-derived counts reconcilable. *)
type acc_src = A_load of cls | A_store | A_prefetch

type event =
  | Ev_load_issue of {
      cycle : int;
      sm : int;
      cta : int;
      warp_slot : int;
      kernel : string;
      pc : int;
      cls : cls;
      active : int;
      nreq : int;
    }
  | Ev_load_return of {
      cycle : int;
      sm : int;
      cta : int;
      kernel : string;
      pc : int;
      cls : cls;
      nreq : int;
      turnaround : int;
      level : Request.level;
    }
  | Ev_access of {
      cycle : int;
      where : side;
      line : int;
      src : acc_src;
      outcome : Cache.outcome;
    }
  | Ev_mshr_alloc of { cycle : int; where : side; line : int; cta : int }
  | Ev_mshr_merge of {
      cycle : int;
      where : side;
      line : int;
      cta : int;
      owner_cta : int;
    }
  | Ev_mshr_free of { cycle : int; where : side; line : int; waiters : int }
  | Ev_icnt_enq of { cycle : int; dir : dir; sm : int; part : int; line : int }
  | Ev_icnt_deq of { cycle : int; dir : dir; sm : int; part : int; line : int }
  | Ev_dram_enq of { cycle : int; part : int; line : int; write : bool }
  | Ev_dram_deq of { cycle : int; part : int; line : int }
  | Ev_occupancy of { cycle : int; sm : int; mshr : int; ldst_q : int }

type ring = {
  buf : event option array;
  mutable head : int; (* next write position *)
  mutable total : int; (* events ever emitted *)
}

type sink = Null | Ring of ring | Stream of (event -> unit)

type t = { mutable sink : sink }

let null () = { sink = Null }

let ring_sink ~capacity =
  { sink = Ring { buf = Array.make (max 1 capacity) None; head = 0; total = 0 } }

let stream f = { sink = Stream f }

let enabled t = match t.sink with Null -> false | Ring _ | Stream _ -> true

let emit t ev =
  match t.sink with
  | Null -> ()
  | Ring r ->
      r.buf.(r.head) <- Some ev;
      r.head <- (r.head + 1) mod Array.length r.buf;
      r.total <- r.total + 1
  | Stream f -> f ev

(* Oldest-to-newest contents of a ring sink ([] for other sinks). *)
let ring_contents t =
  match t.sink with
  | Ring r ->
      let n = Array.length r.buf in
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match r.buf.((r.head + i) mod n) with
        | Some ev -> acc := ev :: !acc
        | None -> ()
      done;
      !acc
  | Null | Stream _ -> []

let ring_total t = match t.sink with Ring r -> r.total | _ -> 0

(* Swap the sink to Null for the duration of [f] (kernel filtering). *)
let with_muted t f =
  let saved = t.sink in
  t.sink <- Null;
  Fun.protect ~finally:(fun () -> t.sink <- saved) f

(* ---- JSON encoding (via the in-tree Stats_io.Json value type) ---- *)

module Json = Stats_io.Json

let cls_name = function
  | Dataflow.Classify.Deterministic -> "D"
  | Dataflow.Classify.Nondeterministic -> "N"

let cls_of_name = function
  | "D" -> Dataflow.Classify.Deterministic
  | "N" -> Dataflow.Classify.Nondeterministic
  | s -> raise (Json.Parse_error ("unknown load class " ^ s))

let outcome_name (o : Cache.outcome) =
  match o with
  | Cache.Hit -> "hit"
  | Cache.Hit_reserved -> "hit_reserved"
  | Cache.Miss -> "miss"
  | Cache.Rsrv_fail Cache.Fail_tags -> "rsrv_fail_tags"
  | Cache.Rsrv_fail Cache.Fail_mshr -> "rsrv_fail_mshr"
  | Cache.Rsrv_fail Cache.Fail_icnt -> "rsrv_fail_icnt"

let outcome_of_name = function
  | "hit" -> Cache.Hit
  | "hit_reserved" -> Cache.Hit_reserved
  | "miss" -> Cache.Miss
  | "rsrv_fail_tags" -> Cache.Rsrv_fail Cache.Fail_tags
  | "rsrv_fail_mshr" -> Cache.Rsrv_fail Cache.Fail_mshr
  | "rsrv_fail_icnt" -> Cache.Rsrv_fail Cache.Fail_icnt
  | s -> raise (Json.Parse_error ("unknown cache outcome " ^ s))

let level_name = function
  | Request.Lvl_l1 -> "l1"
  | Request.Lvl_l2 -> "l2"
  | Request.Lvl_dram -> "dram"

let level_of_name = function
  | "l1" -> Request.Lvl_l1
  | "l2" -> Request.Lvl_l2
  | "dram" -> Request.Lvl_dram
  | s -> raise (Json.Parse_error ("unknown memory level " ^ s))

let src_name = function
  | A_load c -> cls_name c
  | A_store -> "store"
  | A_prefetch -> "prefetch"

let src_of_name = function
  | "store" -> A_store
  | "prefetch" -> A_prefetch
  | s -> A_load (cls_of_name s)

let side_fields = function
  | S_l1 sm -> [ ("at", Json.Str "l1"); ("unit", Json.Int sm) ]
  | S_l2 part -> [ ("at", Json.Str "l2"); ("unit", Json.Int part) ]

let side_of_json v =
  let unit_ = Json.int_field "unit" v in
  match Json.str_field "at" v with
  | "l1" -> S_l1 unit_
  | "l2" -> S_l2 unit_
  | s -> raise (Json.Parse_error ("unknown cache side " ^ s))

let dir_name = function Dir_req -> "req" | Dir_resp -> "resp"

let dir_of_name = function
  | "req" -> Dir_req
  | "resp" -> Dir_resp
  | s -> raise (Json.Parse_error ("unknown icnt direction " ^ s))

let event_to_json = function
  | Ev_load_issue e ->
      Json.Obj
        [ ("ev", Json.Str "load_issue"); ("cycle", Json.Int e.cycle);
          ("sm", Json.Int e.sm); ("cta", Json.Int e.cta);
          ("warp_slot", Json.Int e.warp_slot);
          ("kernel", Json.Str e.kernel); ("pc", Json.Int e.pc);
          ("cls", Json.Str (cls_name e.cls)); ("active", Json.Int e.active);
          ("nreq", Json.Int e.nreq) ]
  | Ev_load_return e ->
      Json.Obj
        [ ("ev", Json.Str "load_return"); ("cycle", Json.Int e.cycle);
          ("sm", Json.Int e.sm); ("cta", Json.Int e.cta);
          ("kernel", Json.Str e.kernel); ("pc", Json.Int e.pc);
          ("cls", Json.Str (cls_name e.cls)); ("nreq", Json.Int e.nreq);
          ("turnaround", Json.Int e.turnaround);
          ("level", Json.Str (level_name e.level)) ]
  | Ev_access e ->
      Json.Obj
        ([ ("ev", Json.Str "access"); ("cycle", Json.Int e.cycle) ]
        @ side_fields e.where
        @ [ ("line", Json.Int e.line); ("src", Json.Str (src_name e.src));
            ("outcome", Json.Str (outcome_name e.outcome)) ])
  | Ev_mshr_alloc e ->
      Json.Obj
        ([ ("ev", Json.Str "mshr_alloc"); ("cycle", Json.Int e.cycle) ]
        @ side_fields e.where
        @ [ ("line", Json.Int e.line); ("cta", Json.Int e.cta) ])
  | Ev_mshr_merge e ->
      Json.Obj
        ([ ("ev", Json.Str "mshr_merge"); ("cycle", Json.Int e.cycle) ]
        @ side_fields e.where
        @ [ ("line", Json.Int e.line); ("cta", Json.Int e.cta);
            ("owner_cta", Json.Int e.owner_cta) ])
  | Ev_mshr_free e ->
      Json.Obj
        ([ ("ev", Json.Str "mshr_free"); ("cycle", Json.Int e.cycle) ]
        @ side_fields e.where
        @ [ ("line", Json.Int e.line); ("waiters", Json.Int e.waiters) ])
  | Ev_icnt_enq e ->
      Json.Obj
        [ ("ev", Json.Str "icnt_enq"); ("cycle", Json.Int e.cycle);
          ("dir", Json.Str (dir_name e.dir)); ("sm", Json.Int e.sm);
          ("part", Json.Int e.part); ("line", Json.Int e.line) ]
  | Ev_icnt_deq e ->
      Json.Obj
        [ ("ev", Json.Str "icnt_deq"); ("cycle", Json.Int e.cycle);
          ("dir", Json.Str (dir_name e.dir)); ("sm", Json.Int e.sm);
          ("part", Json.Int e.part); ("line", Json.Int e.line) ]
  | Ev_dram_enq e ->
      Json.Obj
        [ ("ev", Json.Str "dram_enq"); ("cycle", Json.Int e.cycle);
          ("part", Json.Int e.part); ("line", Json.Int e.line);
          ("write", Json.Bool e.write) ]
  | Ev_dram_deq e ->
      Json.Obj
        [ ("ev", Json.Str "dram_deq"); ("cycle", Json.Int e.cycle);
          ("part", Json.Int e.part); ("line", Json.Int e.line) ]
  | Ev_occupancy e ->
      Json.Obj
        [ ("ev", Json.Str "occupancy"); ("cycle", Json.Int e.cycle);
          ("sm", Json.Int e.sm); ("mshr", Json.Int e.mshr);
          ("ldst_q", Json.Int e.ldst_q) ]

let event_of_json v =
  let cycle = Json.int_field "cycle" v in
  match Json.str_field "ev" v with
  | "load_issue" ->
      Ev_load_issue
        { cycle; sm = Json.int_field "sm" v; cta = Json.int_field "cta" v;
          warp_slot = Json.int_field "warp_slot" v;
          kernel = Json.str_field "kernel" v; pc = Json.int_field "pc" v;
          cls = cls_of_name (Json.str_field "cls" v);
          active = Json.int_field "active" v;
          nreq = Json.int_field "nreq" v }
  | "load_return" ->
      Ev_load_return
        { cycle; sm = Json.int_field "sm" v; cta = Json.int_field "cta" v;
          kernel = Json.str_field "kernel" v; pc = Json.int_field "pc" v;
          cls = cls_of_name (Json.str_field "cls" v);
          nreq = Json.int_field "nreq" v;
          turnaround = Json.int_field "turnaround" v;
          level = level_of_name (Json.str_field "level" v) }
  | "access" ->
      Ev_access
        { cycle; where = side_of_json v; line = Json.int_field "line" v;
          src = src_of_name (Json.str_field "src" v);
          outcome = outcome_of_name (Json.str_field "outcome" v) }
  | "mshr_alloc" ->
      Ev_mshr_alloc
        { cycle; where = side_of_json v; line = Json.int_field "line" v;
          cta = Json.int_field "cta" v }
  | "mshr_merge" ->
      Ev_mshr_merge
        { cycle; where = side_of_json v; line = Json.int_field "line" v;
          cta = Json.int_field "cta" v;
          owner_cta = Json.int_field "owner_cta" v }
  | "mshr_free" ->
      Ev_mshr_free
        { cycle; where = side_of_json v; line = Json.int_field "line" v;
          waiters = Json.int_field "waiters" v }
  | "icnt_enq" ->
      Ev_icnt_enq
        { cycle; dir = dir_of_name (Json.str_field "dir" v);
          sm = Json.int_field "sm" v; part = Json.int_field "part" v;
          line = Json.int_field "line" v }
  | "icnt_deq" ->
      Ev_icnt_deq
        { cycle; dir = dir_of_name (Json.str_field "dir" v);
          sm = Json.int_field "sm" v; part = Json.int_field "part" v;
          line = Json.int_field "line" v }
  | "dram_enq" ->
      Ev_dram_enq
        { cycle; part = Json.int_field "part" v;
          line = Json.int_field "line" v;
          write = Json.get_bool (Json.member "write" v) }
  | "dram_deq" ->
      Ev_dram_deq
        { cycle; part = Json.int_field "part" v;
          line = Json.int_field "line" v }
  | "occupancy" ->
      Ev_occupancy
        { cycle; sm = Json.int_field "sm" v; mshr = Json.int_field "mshr" v;
          ldst_q = Json.int_field "ldst_q" v }
  | s -> raise (Json.Parse_error ("unknown trace event " ^ s))

(* ---- streaming writers ---- *)

(* One JSON object per line — the format @trace-smoke validates with
   the stats_io parser. *)
let jsonl_sink oc =
  stream (fun ev ->
      output_string oc (Json.to_string (event_to_json ev));
      output_char oc '\n')

(* Chrome trace_event ("catapult") JSON array, loadable in
   chrome://tracing or https://ui.perfetto.dev.  Cycles are written as
   microseconds; warp-load lifetimes become complete ("X") spans and
   everything else an instant ("i") or counter ("C") event. *)
let chrome_json ev =
  let common ~name ~cat ~ph ~ts ~pid ~tid extra =
    Json.Obj
      ([ ("name", Json.Str name); ("cat", Json.Str cat); ("ph", Json.Str ph);
         ("ts", Json.Int ts); ("pid", Json.Int pid); ("tid", Json.Int tid) ]
      @ extra)
  in
  let instant ~name ~cat ~ts ~pid ~tid args =
    common ~name ~cat ~ph:"i" ~ts ~pid ~tid
      (("s", Json.Str "t") :: if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  match ev with
  | Ev_load_return e ->
      common
        ~name:(Printf.sprintf "ld %s+%d %s" e.kernel e.pc (cls_name e.cls))
        ~cat:"load" ~ph:"X" ~ts:(max 0 (e.cycle - e.turnaround)) ~pid:e.sm
        ~tid:e.cta
        [ ("dur", Json.Int (max 1 e.turnaround));
          ("args",
           Json.Obj
             [ ("pc", Json.Int e.pc); ("nreq", Json.Int e.nreq);
               ("level", Json.Str (level_name e.level)) ]) ]
  | Ev_occupancy e ->
      common ~name:"occupancy" ~cat:"occupancy" ~ph:"C" ~ts:e.cycle ~pid:e.sm
        ~tid:0
        [ ("args",
           Json.Obj
             [ ("mshr", Json.Int e.mshr); ("ldst_q", Json.Int e.ldst_q) ]) ]
  | Ev_load_issue e ->
      instant ~name:"load_issue" ~cat:"load" ~ts:e.cycle ~pid:e.sm ~tid:e.cta
        [ ("pc", Json.Int e.pc); ("cls", Json.Str (cls_name e.cls)) ]
  | Ev_access e ->
      let pid, tid = match e.where with S_l1 sm -> (sm, 1) | S_l2 p -> (p, 2) in
      instant
        ~name:(Printf.sprintf "%s:%s" (src_name e.src) (outcome_name e.outcome))
        ~cat:"access" ~ts:e.cycle ~pid ~tid
        [ ("line", Json.Int e.line) ]
  | Ev_mshr_alloc e ->
      let pid = match e.where with S_l1 sm -> sm | S_l2 p -> p in
      instant ~name:"mshr_alloc" ~cat:"mshr" ~ts:e.cycle ~pid ~tid:e.cta
        [ ("line", Json.Int e.line) ]
  | Ev_mshr_merge e ->
      let pid = match e.where with S_l1 sm -> sm | S_l2 p -> p in
      instant ~name:"mshr_merge" ~cat:"mshr" ~ts:e.cycle ~pid ~tid:e.cta
        [ ("line", Json.Int e.line); ("owner_cta", Json.Int e.owner_cta) ]
  | Ev_mshr_free e ->
      let pid = match e.where with S_l1 sm -> sm | S_l2 p -> p in
      instant ~name:"mshr_free" ~cat:"mshr" ~ts:e.cycle ~pid ~tid:0
        [ ("line", Json.Int e.line); ("waiters", Json.Int e.waiters) ]
  | Ev_icnt_enq e ->
      instant ~name:(Printf.sprintf "icnt_enq_%s" (dir_name e.dir)) ~cat:"icnt"
        ~ts:e.cycle ~pid:e.sm ~tid:e.part []
  | Ev_icnt_deq e ->
      instant ~name:(Printf.sprintf "icnt_deq_%s" (dir_name e.dir)) ~cat:"icnt"
        ~ts:e.cycle ~pid:e.sm ~tid:e.part []
  | Ev_dram_enq e ->
      instant ~name:(if e.write then "dram_write" else "dram_read") ~cat:"dram"
        ~ts:e.cycle ~pid:e.part ~tid:0 [ ("line", Json.Int e.line) ]
  | Ev_dram_deq e ->
      instant ~name:"dram_deq" ~cat:"dram" ~ts:e.cycle ~pid:e.part ~tid:0
        [ ("line", Json.Int e.line) ]

(* Returns the sink and a closer that terminates the JSON array.  The
   closer does not close the channel. *)
let chrome_sink oc =
  output_string oc "[";
  let first = ref true in
  let t =
    stream (fun ev ->
        if !first then first := false else output_string oc ",";
        output_char oc '\n';
        output_string oc (Json.to_string (chrome_json ev)))
  in
  (t, fun () -> output_string oc "\n]\n")
