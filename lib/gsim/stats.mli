(** Timing-simulation statistics: everything the paper's Figs 2-8
    need, separated by load class (D/N) and, for Figs 6-7, by load pc
    and request count. *)

type cls = Dataflow.Classify.load_class

val cls_index : cls -> int
(** 0 = deterministic, 1 = non-deterministic. *)

val n_l1_events : int
val l1_event_index : Cache.outcome -> int
val l1_event_name : int -> string

(** Aggregates for one load class. *)
type class_stats = {
  mutable cs_warps : int;  (** completed warp-level global loads *)
  mutable cs_requests : int;
  mutable cs_active_threads : int;
  mutable cs_turnaround : int;
  mutable cs_unloaded : int;
  mutable cs_rsrv_prev : int;  (** waiting for the first acceptance *)
  mutable cs_rsrv_cur : int;  (** first-to-last acceptance spread *)
  mutable cs_wasted_mem : int;  (** L2/DRAM/icnt imbalance *)
  mutable cs_l1_access : int;
  mutable cs_l1_miss : int;
  mutable cs_l2_access : int;
  mutable cs_l2_miss : int;
}

(** Fig 6/7 bucket: warp loads of one pc that generated [n] requests. *)
type nreq_bucket = {
  mutable nb_count : int;
  mutable nb_turnaround : int;
  mutable nb_common : int;
  mutable nb_gap_l1d : int;
  mutable nb_gap_icnt_l2 : int;
  mutable nb_gap_l2_icnt : int;
}

type pc_stats = {
  ps_kernel : string;
  ps_pc : int;
  ps_cls : cls;
  mutable ps_warps : int;
  mutable ps_requests : int;
  ps_by_nreq : (int, nreq_bucket) Hashtbl.t;
}

type t = {
  mutable cycles : int;
  mutable warp_insts : int;
  mutable thread_insts : int;
  l1_events : int array;
  mutable l1_probe_cycles : int;
  unit_busy : int array;  (** SP / SFU / LDST first-stage busy cycles *)
  mutable shared_loads : int;
  mutable global_stores : int;
  per_class : class_stats array;
  per_pc : (string * int, pc_stats) Hashtbl.t;
  mutable completed_ctas : int;
  mutable l2_rsrv_fails : int;
  mutable prefetches_issued : int;
  mutable truncated : bool;
      (** a cycle/instruction cap cut the run short; the counters cover
          only the simulated prefix *)
}

val create : unit -> t
val unit_index : Exec.unit_class -> int
val record_unit_busy : t -> Exec.unit_class -> unit

val record_unit_busy_span : t -> Exec.unit_class -> int -> unit
(** Batch form for the fast-forward path: [n] skipped cycles in which
    the unit's first stage would have sampled busy. *)

val record_l1_event : t -> Cache.outcome -> cls -> unit

val record_l1_store_event : t -> Cache.outcome -> unit
(** Stores occupy L1 cycles but are not classified loads. *)

val record_l2_access : t -> cls -> miss:bool -> unit
val pc_stats : t -> string -> int -> cls -> pc_stats
val record_warp_load_done : t -> Config.t -> Request.warp_load -> unit

(** {1 Derived figures} *)

val requests_per_warp : t -> cls -> float
val requests_per_active_thread : t -> cls -> float
val avg_turnaround : t -> cls -> float

val turnaround_breakdown : t -> cls -> float * float * float * float
(** (unloaded, rsrv-fail-by-previous, rsrv-fail-by-current, wasted)
    averages per warp load — the paper's Fig 5 stack. *)

val l1_miss_ratio : t -> cls -> float
val l2_miss_ratio : t -> cls -> float

val l1_cycle_breakdown : t -> float array
(** Fig 3: fraction of L1 probe cycles per outcome, indexed by
    [l1_event_index]. *)

val unit_busy_fraction : t -> n_sms:int -> Exec.unit_class -> float
(** Fig 4: busy fraction of a unit's first pipeline stage (busy cycles
    summed across SMs, normalized by [cycles * n_sms]). *)

val merge_class : dst:class_stats -> src:class_stats -> unit
