(** Structured simulator diagnostics.

    Raise sites report whatever execution context they know (kernel,
    pc, CTA, warp, cycle); outer layers add the rest via
    [with_context] as the exception propagates.  [Error] is registered
    with [Printexc], so generic handlers render the structured
    message. *)

type kind =
  | Invalid_kernel  (** rejected by the static verifier *)
  | Unbound_param  (** ld.param of a parameter the launch never bound *)
  | Mem_fault  (** out-of-bounds access *)
  | Arith_fault  (** integer division by zero *)
  | Barrier_deadlock  (** part of a CTA waits at bar.sync forever *)
  | No_progress  (** machine live-locked: cycles pass, nothing retires *)
  | Internal  (** broken simulator invariant *)

type t = {
  e_kind : kind;
  e_kernel : string option;
  e_pc : int option;
  e_cta : int option;
  e_warp : int option;
  e_cycle : int option;
  e_msg : string;
}

exception Error of t

val kind_name : kind -> string

val make :
  ?kernel:string ->
  ?pc:int ->
  ?cta:int ->
  ?warp:int ->
  ?cycle:int ->
  kind ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val error :
  ?kernel:string ->
  ?pc:int ->
  ?cta:int ->
  ?warp:int ->
  ?cycle:int ->
  kind ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** [make] followed by [raise (Error _)]. *)

val with_context :
  ?kernel:string ->
  ?pc:int ->
  ?cta:int ->
  ?warp:int ->
  ?cycle:int ->
  t ->
  t
(** Fill in context fields the raise site did not know; existing
    (innermost) values win. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
