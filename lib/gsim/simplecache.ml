(* Minimal serial set-associative LRU cache: every access resolves
   immediately (hit, or miss + fill).  Used by the functional simulator
   to emulate the CUDA-profiler hit/miss counters (Table III), where no
   timing or in-flight state is involved.

   Counting convention, shared with [Cache]: each logical access counts
   exactly once (hit or miss).  [Cache] additionally sees
   reservation-fail retry probes, which it counts in separate fail
   slots; its completed accesses (hit + hit-reserved + miss) therefore
   line up with [accesses] here — the invariant the trace/stats
   reconciliation regression test pins down. *)

type t = {
  sets : int;
  ways : int;
  line_size : int;
  tags : int array array;
  lru : int array array;
  mutable time : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~sets ~ways ~line_size =
  {
    sets;
    ways;
    line_size;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    lru = Array.init sets (fun _ -> Array.make ways 0);
    time = 0;
    hits = 0;
    misses = 0;
  }

let line_addr t addr = addr / t.line_size * t.line_size

(* Access one line address; returns true on hit.  Misses allocate. *)
let access t la =
  t.time <- t.time + 1;
  let s = la / t.line_size mod t.sets in
  let tags = t.tags.(s) and lru = t.lru.(s) in
  let rec find w = if w >= t.ways then -1 else if tags.(w) = la then w else find (w + 1) in
  let w = find 0 in
  if w >= 0 then begin
    lru.(w) <- t.time;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* victim: LRU way *)
    let victim = ref 0 in
    for i = 1 to t.ways - 1 do
      if lru.(i) < lru.(!victim) then victim := i
    done;
    tags.(!victim) <- la;
    lru.(!victim) <- t.time;
    false
  end

(* Completed accesses — same meaning as [Cache.completed_accesses]. *)
let accesses t = t.hits + t.misses

let miss_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total
