(* Profile reducer: folds the Trace event stream into the per-PC and
   per-category derived metrics the paper's figures plot — turnaround
   histograms in log-2 buckets (Figs 5-6), reservation-fail attribution
   by load category (Fig 3), MSHR-merge inter- vs intra-CTA locality
   (Figs 8-9), and per-SM MSHR / LD-ST queue occupancy timelines.

   A profile is an ordinary commutative-monoid accumulator: profiles
   built from disjoint event streams can be [merge]d in any order and
   serialize to identical JSON (the associativity test_profile checks),
   which is what lets per-worker profiles ride the parsweep pipeline. *)

type cls = Dataflow.Classify.load_class

module Json = Stats_io.Json

(* ---- log-2 latency histogram ---- *)

(* Bucket 0 holds latency <= 0; bucket i >= 1 holds [2^(i-1), 2^i);
   the last bucket additionally absorbs everything above 2^22. *)
let n_buckets = 24

let bucket_of_latency lat =
  if lat <= 0 then 0
  else begin
    (* bit length = floor(log2 lat) + 1 *)
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (n_buckets - 1) (bits 0 lat)
  end

let bucket_lo = function 0 -> 0 | i -> 1 lsl (i - 1)

let bucket_label i =
  if i = 0 then "0"
  else if i = n_buckets - 1 then Printf.sprintf "[%d,inf)" (bucket_lo i)
  else Printf.sprintf "[%d,%d)" (bucket_lo i) (1 lsl i)

(* ---- accumulators ---- *)

let n_fail = 3 (* tags / mshr / icnt, Fig 3's three reservation fails *)

let fail_index = function
  | Cache.Fail_tags -> 0
  | Cache.Fail_mshr -> 1
  | Cache.Fail_icnt -> 2

type class_profile = {
  mutable cp_issues : int; (* warp-level loads issued *)
  mutable cp_returns : int; (* warp-level loads completed *)
  mutable cp_sum_turnaround : int;
  mutable cp_max_turnaround : int;
  cp_hist : int array; (* n_buckets turnaround buckets *)
  mutable cp_l1_hit : int;
  mutable cp_l1_merge : int;
  mutable cp_l1_miss : int;
  cp_l1_fail : int array; (* reservation fails by kind *)
  mutable cp_l2_access : int;
  mutable cp_l2_miss : int;
  cp_l2_fail : int array;
}

let empty_class_profile () =
  {
    cp_issues = 0;
    cp_returns = 0;
    cp_sum_turnaround = 0;
    cp_max_turnaround = 0;
    cp_hist = Array.make n_buckets 0;
    cp_l1_hit = 0;
    cp_l1_merge = 0;
    cp_l1_miss = 0;
    cp_l1_fail = Array.make n_fail 0;
    cp_l2_access = 0;
    cp_l2_miss = 0;
    cp_l2_fail = Array.make n_fail 0;
  }

type pc_profile = {
  pp_kernel : string;
  pp_pc : int;
  pp_cls : cls;
  mutable pp_issues : int;
  mutable pp_returns : int;
  mutable pp_sum_turnaround : int;
  pp_hist : int array;
}

(* Per-SM occupancy timeline sample. *)
type occ_sample = { oc_sm : int; oc_cycle : int; oc_mshr : int; oc_ldst : int }

type t = {
  per_class : class_profile array; (* D, N — Stats.cls_index order *)
  per_pc : (string * int, pc_profile) Hashtbl.t;
  mutable store_ok : int; (* store probes that went downstream *)
  st_fail : int array; (* L1 store reservation fails by kind *)
  mutable l2_store_fail : int;
  mutable prefetch_probes : int;
  mutable prefetch_misses : int;
  (* MSHR merge locality: did the merging request come from the CTA
     that allocated the in-flight entry (intra) or another one (inter)? *)
  mutable l1_merge_intra : int;
  mutable l1_merge_inter : int;
  mutable l2_merge_intra : int;
  mutable l2_merge_inter : int;
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable icnt_req_enq : int;
  mutable icnt_req_deq : int;
  mutable icnt_resp_enq : int;
  mutable icnt_resp_deq : int;
  mutable occ : occ_sample list; (* reverse emission order *)
}

let create () =
  {
    per_class = [| empty_class_profile (); empty_class_profile () |];
    per_pc = Hashtbl.create 64;
    store_ok = 0;
    st_fail = Array.make n_fail 0;
    l2_store_fail = 0;
    prefetch_probes = 0;
    prefetch_misses = 0;
    l1_merge_intra = 0;
    l1_merge_inter = 0;
    l2_merge_intra = 0;
    l2_merge_inter = 0;
    dram_reads = 0;
    dram_writes = 0;
    icnt_req_enq = 0;
    icnt_req_deq = 0;
    icnt_resp_enq = 0;
    icnt_resp_deq = 0;
    occ = [];
  }

let class_profile t c = t.per_class.(Stats.cls_index c)

let pc_profile t kernel pc c =
  match Hashtbl.find_opt t.per_pc (kernel, pc) with
  | Some pp -> pp
  | None ->
      let pp =
        { pp_kernel = kernel; pp_pc = pc; pp_cls = c; pp_issues = 0;
          pp_returns = 0; pp_sum_turnaround = 0;
          pp_hist = Array.make n_buckets 0 }
      in
      Hashtbl.add t.per_pc (kernel, pc) pp;
      pp

let add t (ev : Trace.event) =
  match ev with
  | Trace.Ev_load_issue e ->
      (class_profile t e.cls).cp_issues <-
        (class_profile t e.cls).cp_issues + 1;
      let pp = pc_profile t e.kernel e.pc e.cls in
      pp.pp_issues <- pp.pp_issues + 1
  | Trace.Ev_load_return e ->
      let cp = class_profile t e.cls in
      cp.cp_returns <- cp.cp_returns + 1;
      cp.cp_sum_turnaround <- cp.cp_sum_turnaround + e.turnaround;
      if e.turnaround > cp.cp_max_turnaround then
        cp.cp_max_turnaround <- e.turnaround;
      let b = bucket_of_latency e.turnaround in
      cp.cp_hist.(b) <- cp.cp_hist.(b) + 1;
      let pp = pc_profile t e.kernel e.pc e.cls in
      pp.pp_returns <- pp.pp_returns + 1;
      pp.pp_sum_turnaround <- pp.pp_sum_turnaround + e.turnaround;
      pp.pp_hist.(b) <- pp.pp_hist.(b) + 1
  | Trace.Ev_access e -> (
      match (e.where, e.src) with
      | Trace.S_l1 _, Trace.A_load c -> (
          let cp = class_profile t c in
          match e.outcome with
          | Cache.Hit -> cp.cp_l1_hit <- cp.cp_l1_hit + 1
          | Cache.Hit_reserved -> cp.cp_l1_merge <- cp.cp_l1_merge + 1
          | Cache.Miss -> cp.cp_l1_miss <- cp.cp_l1_miss + 1
          | Cache.Rsrv_fail k ->
              let i = fail_index k in
              cp.cp_l1_fail.(i) <- cp.cp_l1_fail.(i) + 1)
      | Trace.S_l1 _, Trace.A_store -> (
          match e.outcome with
          | Cache.Rsrv_fail k ->
              let i = fail_index k in
              t.st_fail.(i) <- t.st_fail.(i) + 1
          | Cache.Hit | Cache.Hit_reserved | Cache.Miss ->
              t.store_ok <- t.store_ok + 1)
      | Trace.S_l1 _, Trace.A_prefetch ->
          t.prefetch_probes <- t.prefetch_probes + 1;
          if e.outcome = Cache.Miss then
            t.prefetch_misses <- t.prefetch_misses + 1
      | Trace.S_l2 _, Trace.A_load c -> (
          let cp = class_profile t c in
          match e.outcome with
          | Cache.Hit | Cache.Hit_reserved ->
              cp.cp_l2_access <- cp.cp_l2_access + 1
          | Cache.Miss ->
              cp.cp_l2_access <- cp.cp_l2_access + 1;
              cp.cp_l2_miss <- cp.cp_l2_miss + 1
          | Cache.Rsrv_fail k ->
              let i = fail_index k in
              cp.cp_l2_fail.(i) <- cp.cp_l2_fail.(i) + 1)
      | Trace.S_l2 _, (Trace.A_store | Trace.A_prefetch) -> (
          match e.outcome with
          | Cache.Rsrv_fail _ -> t.l2_store_fail <- t.l2_store_fail + 1
          | _ -> ()))
  | Trace.Ev_mshr_merge e -> (
      let intra = e.cta >= 0 && e.cta = e.owner_cta in
      match e.where with
      | Trace.S_l1 _ ->
          if intra then t.l1_merge_intra <- t.l1_merge_intra + 1
          else t.l1_merge_inter <- t.l1_merge_inter + 1
      | Trace.S_l2 _ ->
          if intra then t.l2_merge_intra <- t.l2_merge_intra + 1
          else t.l2_merge_inter <- t.l2_merge_inter + 1)
  | Trace.Ev_mshr_alloc _ | Trace.Ev_mshr_free _ -> ()
  | Trace.Ev_icnt_enq e ->
      if e.dir = Trace.Dir_req then t.icnt_req_enq <- t.icnt_req_enq + 1
      else t.icnt_resp_enq <- t.icnt_resp_enq + 1
  | Trace.Ev_icnt_deq e ->
      if e.dir = Trace.Dir_req then t.icnt_req_deq <- t.icnt_req_deq + 1
      else t.icnt_resp_deq <- t.icnt_resp_deq + 1
  | Trace.Ev_dram_enq e ->
      if e.write then t.dram_writes <- t.dram_writes + 1
      else t.dram_reads <- t.dram_reads + 1
  | Trace.Ev_dram_deq _ -> ()
  | Trace.Ev_occupancy e ->
      t.occ <-
        { oc_sm = e.sm; oc_cycle = e.cycle; oc_mshr = e.mshr;
          oc_ldst = e.ldst_q }
        :: t.occ

(* A trace sink that feeds this profile. *)
let sink t = Trace.stream (add t)

(* ---- merge (per-worker / per-SM aggregation) ---- *)

let add_arrays dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src

let merge_class ~(dst : class_profile) ~(src : class_profile) =
  dst.cp_issues <- dst.cp_issues + src.cp_issues;
  dst.cp_returns <- dst.cp_returns + src.cp_returns;
  dst.cp_sum_turnaround <- dst.cp_sum_turnaround + src.cp_sum_turnaround;
  dst.cp_max_turnaround <- max dst.cp_max_turnaround src.cp_max_turnaround;
  add_arrays dst.cp_hist src.cp_hist;
  dst.cp_l1_hit <- dst.cp_l1_hit + src.cp_l1_hit;
  dst.cp_l1_merge <- dst.cp_l1_merge + src.cp_l1_merge;
  dst.cp_l1_miss <- dst.cp_l1_miss + src.cp_l1_miss;
  add_arrays dst.cp_l1_fail src.cp_l1_fail;
  dst.cp_l2_access <- dst.cp_l2_access + src.cp_l2_access;
  dst.cp_l2_miss <- dst.cp_l2_miss + src.cp_l2_miss;
  add_arrays dst.cp_l2_fail src.cp_l2_fail

let merge ~dst ~src =
  Array.iteri
    (fun i s -> merge_class ~dst:dst.per_class.(i) ~src:s)
    src.per_class;
  Hashtbl.iter
    (fun key (sp : pc_profile) ->
      match Hashtbl.find_opt dst.per_pc key with
      | None ->
          Hashtbl.add dst.per_pc key
            { sp with pp_hist = Array.copy sp.pp_hist }
      | Some dp ->
          dp.pp_issues <- dp.pp_issues + sp.pp_issues;
          dp.pp_returns <- dp.pp_returns + sp.pp_returns;
          dp.pp_sum_turnaround <- dp.pp_sum_turnaround + sp.pp_sum_turnaround;
          add_arrays dp.pp_hist sp.pp_hist)
    src.per_pc;
  dst.store_ok <- dst.store_ok + src.store_ok;
  add_arrays dst.st_fail src.st_fail;
  dst.l2_store_fail <- dst.l2_store_fail + src.l2_store_fail;
  dst.prefetch_probes <- dst.prefetch_probes + src.prefetch_probes;
  dst.prefetch_misses <- dst.prefetch_misses + src.prefetch_misses;
  dst.l1_merge_intra <- dst.l1_merge_intra + src.l1_merge_intra;
  dst.l1_merge_inter <- dst.l1_merge_inter + src.l1_merge_inter;
  dst.l2_merge_intra <- dst.l2_merge_intra + src.l2_merge_intra;
  dst.l2_merge_inter <- dst.l2_merge_inter + src.l2_merge_inter;
  dst.dram_reads <- dst.dram_reads + src.dram_reads;
  dst.dram_writes <- dst.dram_writes + src.dram_writes;
  dst.icnt_req_enq <- dst.icnt_req_enq + src.icnt_req_enq;
  dst.icnt_req_deq <- dst.icnt_req_deq + src.icnt_req_deq;
  dst.icnt_resp_enq <- dst.icnt_resp_enq + src.icnt_resp_enq;
  dst.icnt_resp_deq <- dst.icnt_resp_deq + src.icnt_resp_deq;
  dst.occ <- src.occ @ dst.occ

(* ---- derived metrics ---- *)

let avg_turnaround t c =
  let cp = class_profile t c in
  if cp.cp_returns = 0 then 0.0
  else float_of_int cp.cp_sum_turnaround /. float_of_int cp.cp_returns

let l1_loads t c =
  let cp = class_profile t c in
  cp.cp_l1_hit + cp.cp_l1_merge + cp.cp_l1_miss

(* Occupancy samples in deterministic (cycle, sm) order regardless of
   merge order. *)
let occ_sorted t =
  List.sort
    (fun a b ->
      match compare a.oc_cycle b.oc_cycle with
      | 0 -> compare a.oc_sm b.oc_sm
      | c -> c)
    t.occ

(* ---- JSON (rides stats_io through the parsweep pipeline) ---- *)

let int_arr a = Json.Arr (Array.to_list (Array.map (fun i -> Json.Int i) a))

let int_arr_of v = Array.of_list (List.map Json.get_int (Json.get_list v))

let class_to_json cp =
  Json.Obj
    [ ("issues", Json.Int cp.cp_issues);
      ("returns", Json.Int cp.cp_returns);
      ("sum_turnaround", Json.Int cp.cp_sum_turnaround);
      ("max_turnaround", Json.Int cp.cp_max_turnaround);
      ("hist", int_arr cp.cp_hist);
      ("l1_hit", Json.Int cp.cp_l1_hit);
      ("l1_merge", Json.Int cp.cp_l1_merge);
      ("l1_miss", Json.Int cp.cp_l1_miss);
      ("l1_fail", int_arr cp.cp_l1_fail);
      ("l2_access", Json.Int cp.cp_l2_access);
      ("l2_miss", Json.Int cp.cp_l2_miss);
      ("l2_fail", int_arr cp.cp_l2_fail) ]

let class_of_json v =
  let cp = empty_class_profile () in
  cp.cp_issues <- Json.int_field "issues" v;
  cp.cp_returns <- Json.int_field "returns" v;
  cp.cp_sum_turnaround <- Json.int_field "sum_turnaround" v;
  cp.cp_max_turnaround <- Json.int_field "max_turnaround" v;
  Array.blit (int_arr_of (Json.member "hist" v)) 0 cp.cp_hist 0 n_buckets;
  cp.cp_l1_hit <- Json.int_field "l1_hit" v;
  cp.cp_l1_merge <- Json.int_field "l1_merge" v;
  cp.cp_l1_miss <- Json.int_field "l1_miss" v;
  Array.blit (int_arr_of (Json.member "l1_fail" v)) 0 cp.cp_l1_fail 0 n_fail;
  cp.cp_l2_access <- Json.int_field "l2_access" v;
  cp.cp_l2_miss <- Json.int_field "l2_miss" v;
  Array.blit (int_arr_of (Json.member "l2_fail" v)) 0 cp.cp_l2_fail 0 n_fail;
  cp

let cls_of_name = function
  | "D" -> Dataflow.Classify.Deterministic
  | _ -> Dataflow.Classify.Nondeterministic

let pc_to_json pp =
  Json.Obj
    [ ("kernel", Json.Str pp.pp_kernel);
      ("pc", Json.Int pp.pp_pc);
      ("cls", Json.Str (Trace.cls_name pp.pp_cls));
      ("issues", Json.Int pp.pp_issues);
      ("returns", Json.Int pp.pp_returns);
      ("sum_turnaround", Json.Int pp.pp_sum_turnaround);
      ("hist", int_arr pp.pp_hist) ]

let pc_of_json v =
  let pp =
    { pp_kernel = Json.str_field "kernel" v;
      pp_pc = Json.int_field "pc" v;
      pp_cls = cls_of_name (Json.str_field "cls" v);
      pp_issues = Json.int_field "issues" v;
      pp_returns = Json.int_field "returns" v;
      pp_sum_turnaround = Json.int_field "sum_turnaround" v;
      pp_hist = Array.make n_buckets 0 }
  in
  Array.blit (int_arr_of (Json.member "hist" v)) 0 pp.pp_hist 0 n_buckets;
  pp

let to_json t =
  let pcs =
    Hashtbl.fold (fun _ pp acc -> pp :: acc) t.per_pc []
    |> List.sort (fun a b ->
           match compare a.pp_kernel b.pp_kernel with
           | 0 -> compare a.pp_pc b.pp_pc
           | c -> c)
  in
  let occ =
    occ_sorted t
    |> List.map (fun s ->
           Json.Arr
             [ Json.Int s.oc_cycle; Json.Int s.oc_sm; Json.Int s.oc_mshr;
               Json.Int s.oc_ldst ])
  in
  Json.Obj
    [ ("schema", Json.Str "critload-profile-v1");
      ("class_d", class_to_json t.per_class.(0));
      ("class_n", class_to_json t.per_class.(1));
      ("per_pc", Json.Arr (List.map pc_to_json pcs));
      ("store_ok", Json.Int t.store_ok);
      ("st_fail", int_arr t.st_fail);
      ("l2_store_fail", Json.Int t.l2_store_fail);
      ("prefetch_probes", Json.Int t.prefetch_probes);
      ("prefetch_misses", Json.Int t.prefetch_misses);
      ("l1_merge_intra", Json.Int t.l1_merge_intra);
      ("l1_merge_inter", Json.Int t.l1_merge_inter);
      ("l2_merge_intra", Json.Int t.l2_merge_intra);
      ("l2_merge_inter", Json.Int t.l2_merge_inter);
      ("dram_reads", Json.Int t.dram_reads);
      ("dram_writes", Json.Int t.dram_writes);
      ("icnt_req_enq", Json.Int t.icnt_req_enq);
      ("icnt_req_deq", Json.Int t.icnt_req_deq);
      ("icnt_resp_enq", Json.Int t.icnt_resp_enq);
      ("icnt_resp_deq", Json.Int t.icnt_resp_deq);
      ("occupancy", Json.Arr occ) ]

let of_json v =
  let t = create () in
  merge_class ~dst:t.per_class.(0)
    ~src:(class_of_json (Json.member "class_d" v));
  merge_class ~dst:t.per_class.(1)
    ~src:(class_of_json (Json.member "class_n" v));
  List.iter
    (fun pv ->
      let pp = pc_of_json pv in
      Hashtbl.replace t.per_pc (pp.pp_kernel, pp.pp_pc) pp)
    (Json.get_list (Json.member "per_pc" v));
  t.store_ok <- Json.int_field "store_ok" v;
  Array.blit (int_arr_of (Json.member "st_fail" v)) 0 t.st_fail 0 n_fail;
  t.l2_store_fail <- Json.int_field "l2_store_fail" v;
  t.prefetch_probes <- Json.int_field "prefetch_probes" v;
  t.prefetch_misses <- Json.int_field "prefetch_misses" v;
  t.l1_merge_intra <- Json.int_field "l1_merge_intra" v;
  t.l1_merge_inter <- Json.int_field "l1_merge_inter" v;
  t.l2_merge_intra <- Json.int_field "l2_merge_intra" v;
  t.l2_merge_inter <- Json.int_field "l2_merge_inter" v;
  t.dram_reads <- Json.int_field "dram_reads" v;
  t.dram_writes <- Json.int_field "dram_writes" v;
  t.icnt_req_enq <- Json.int_field "icnt_req_enq" v;
  t.icnt_req_deq <- Json.int_field "icnt_req_deq" v;
  t.icnt_resp_enq <- Json.int_field "icnt_resp_enq" v;
  t.icnt_resp_deq <- Json.int_field "icnt_resp_deq" v;
  t.occ <-
    List.rev_map
      (fun s ->
        match Json.get_list s with
        | [ c; sm; m; l ] ->
            { oc_cycle = Json.get_int c; oc_sm = Json.get_int sm;
              oc_mshr = Json.get_int m; oc_ldst = Json.get_int l }
        | _ -> raise (Json.Parse_error "occupancy sample shape"))
      (Json.get_list (Json.member "occupancy" v));
  t

(* ---- human-readable summary (`critload trace APP --format summary`) ---- *)

let pp_summary ppf t =
  let pr fmt = Format.fprintf ppf fmt in
  let class_block name cp =
    pr "%s loads: %d issued, %d returned, avg turnaround %.1f, max %d@."
      name cp.cp_issues cp.cp_returns
      (if cp.cp_returns = 0 then 0.0
       else float_of_int cp.cp_sum_turnaround /. float_of_int cp.cp_returns)
      cp.cp_max_turnaround;
    let total = Array.fold_left ( + ) 0 cp.cp_hist in
    if total > 0 then begin
      pr "  turnaround histogram (cycles):@.";
      Array.iteri
        (fun i n ->
          if n > 0 then
            pr "    %-14s %8d  %5.1f%%@." (bucket_label i) n
              (100.0 *. float_of_int n /. float_of_int total))
        cp.cp_hist
    end;
    pr "  L1: %d hit, %d merge, %d miss; rsrv fails: %d tags, %d mshr, %d icnt@."
      cp.cp_l1_hit cp.cp_l1_merge cp.cp_l1_miss cp.cp_l1_fail.(0)
      cp.cp_l1_fail.(1) cp.cp_l1_fail.(2);
    pr "  L2: %d access, %d miss; rsrv fails: %d tags, %d mshr, %d icnt@."
      cp.cp_l2_access cp.cp_l2_miss cp.cp_l2_fail.(0) cp.cp_l2_fail.(1)
      cp.cp_l2_fail.(2)
  in
  class_block "D" t.per_class.(0);
  class_block "N" t.per_class.(1);
  pr "stores: %d accepted; rsrv fails: %d tags, %d mshr, %d icnt; %d L2 fails@."
    t.store_ok t.st_fail.(0) t.st_fail.(1) t.st_fail.(2) t.l2_store_fail;
  let l1m = t.l1_merge_intra + t.l1_merge_inter in
  let l2m = t.l2_merge_intra + t.l2_merge_inter in
  pr "MSHR merges: L1 %d (%d intra-CTA, %d inter-CTA), L2 %d (%d intra, %d inter)@."
    l1m t.l1_merge_intra t.l1_merge_inter l2m t.l2_merge_intra
    t.l2_merge_inter;
  pr "DRAM: %d reads, %d writes; icnt: %d req, %d resp@." t.dram_reads
    t.dram_writes t.icnt_req_enq t.icnt_resp_enq;
  (match occ_sorted t with
  | [] -> ()
  | samples ->
      let by_sm = Hashtbl.create 16 in
      List.iter
        (fun s ->
          let sum, peak, n =
            Option.value (Hashtbl.find_opt by_sm s.oc_sm) ~default:(0, 0, 0)
          in
          Hashtbl.replace by_sm s.oc_sm
            (sum + s.oc_mshr, max peak s.oc_mshr, n + 1))
        samples;
      let sms = Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_sm [] in
      let sms = List.sort compare sms in
      pr "MSHR occupancy (%d samples):@." (List.length samples);
      List.iter
        (fun (sm, (sum, peak, n)) ->
          pr "  SM %2d: avg %5.1f, peak %3d@." sm
            (float_of_int sum /. float_of_int (max 1 n))
            peak)
        sms);
  let hot =
    Hashtbl.fold (fun _ pp acc -> pp :: acc) t.per_pc []
    |> List.sort (fun a b ->
           match compare b.pp_sum_turnaround a.pp_sum_turnaround with
           | 0 -> compare (a.pp_kernel, a.pp_pc) (b.pp_kernel, b.pp_pc)
           | c -> c)
    |> List.filteri (fun i _ -> i < 10)
  in
  if hot <> [] then begin
    pr "hottest loads by total turnaround:@.";
    List.iter
      (fun pp ->
        pr "  %-16s pc %3d %s  %8d returns, avg turnaround %8.1f@."
          pp.pp_kernel pp.pp_pc
          (Trace.cls_name pp.pp_cls)
          pp.pp_returns
          (if pp.pp_returns = 0 then 0.0
           else
             float_of_int pp.pp_sum_turnaround /. float_of_int pp.pp_returns))
      hot
  end

let summary_to_string t = Format.asprintf "%a" pp_summary t
