(* Functional (trace-based) simulator.

   Executes a launch without timing, recording the event counts the
   paper measured on real hardware with the CUDA profiler (Table I,
   Table III, Figs 1 and 9) and the address-trace locality metrics
   (Figs 10–12): per-128B-block access counts, the set of CTAs touching
   each block, and the derived cold-miss / inter-CTA-sharing /
   CTA-distance statistics.

   CTAs run to completion one at a time (warps round-robin between
   barriers), with CTA -> SM assignment following the configured CTA
   scheduler so the emulated per-SM L1 counters see the same working
   sets as the timing model. *)

type cls = Dataflow.Classify.load_class

(* Per-128B-block record for the locality study.  [bl_ctas] is kept as
   a sorted list of distinct linearized CTA ids. *)
type block_info = {
  mutable bl_count : int;
  mutable bl_ctas : int list;
  mutable bl_nctas : int;
}

type t = {
  cfg : Config.t;
  mutable warp_insts : int;
  mutable thread_insts : int;
  gld_warps : int array; (* D / N warp-level global loads *)
  gld_requests : int array; (* coalesced requests *)
  gld_active_threads : int array;
  gld_warps_by_pc : (string * int, int) Hashtbl.t; (* (kernel, pc) -> warps *)
  gld_requests_by_pc : (string * int, int) Hashtbl.t;
  mutable shared_load_warps : int;
  mutable global_store_warps : int;
  mutable atom_warps : int;
  blocks : (int, block_info) Hashtbl.t;
  mutable block_accesses : int; (* total load requests to global blocks *)
  l1s : Simplecache.t array;
  l2 : Simplecache.t;
  mutable l2_queries : int; (* line-granularity queries *)
  mutable l2_sector_queries : int; (* 32B-sector granularity, as the
                                      CUDA profiler counts them *)
  mutable l2_hits : int;
  mutable ctas_run : int;
  mutable capped : bool; (* stopped at the instruction cap *)
}

let cls_index = Stats.cls_index

let create cfg =
  {
    cfg;
    warp_insts = 0;
    thread_insts = 0;
    gld_warps = Array.make 2 0;
    gld_requests = Array.make 2 0;
    gld_active_threads = Array.make 2 0;
    gld_warps_by_pc = Hashtbl.create 32;
    gld_requests_by_pc = Hashtbl.create 32;
    shared_load_warps = 0;
    global_store_warps = 0;
    atom_warps = 0;
    blocks = Hashtbl.create (1 lsl 16);
    block_accesses = 0;
    l1s =
      Array.init cfg.Config.n_sms (fun _ ->
          Simplecache.create ~sets:cfg.Config.l1_sets ~ways:cfg.Config.l1_ways
            ~line_size:cfg.Config.line_size);
    l2 =
      Simplecache.create
        ~sets:(cfg.Config.l2_sets * cfg.Config.n_mem_partitions)
        ~ways:cfg.Config.l2_ways ~line_size:cfg.Config.line_size;
    l2_queries = 0;
    l2_sector_queries = 0;
    l2_hits = 0;
    ctas_run = 0;
    capped = false;
  }

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: rest as l ->
      if x = y then l
      else if x < y then x :: l
      else y :: insert_sorted x rest

let record_block t ~cta la =
  t.block_accesses <- t.block_accesses + 1;
  match Hashtbl.find_opt t.blocks la with
  | Some b ->
      b.bl_count <- b.bl_count + 1;
      if not (List.mem cta b.bl_ctas) then begin
        b.bl_ctas <- insert_sorted cta b.bl_ctas;
        b.bl_nctas <- b.bl_nctas + 1
      end
  | None ->
      Hashtbl.add t.blocks la { bl_count = 1; bl_ctas = [ cta ]; bl_nctas = 1 }

let record_mem t ~launch ~sm ~cta (m : Warp.mem_op) =
  let cfg = t.cfg in
  match (m.Warp.m_space, m.Warp.m_kind) with
  | Ptx.Types.Global, Warp.Load | Ptx.Types.Global, Warp.Atomic ->
      if m.Warp.m_kind = Warp.Atomic then t.atom_warps <- t.atom_warps + 1;
      let cls = Launch.load_class launch m.Warp.m_pc in
      let i = cls_index cls in
      let lines =
        Coalesce.lines ~line_size:cfg.Config.line_size ~mask:m.Warp.m_mask
          ~addrs:m.Warp.m_addrs
      in
      t.gld_warps.(i) <- t.gld_warps.(i) + 1;
      t.gld_requests.(i) <- t.gld_requests.(i) + List.length lines;
      t.gld_active_threads.(i) <-
        t.gld_active_threads.(i) + Warp.popcount m.Warp.m_mask;
      let pc_key =
        (launch.Launch.kernel.Ptx.Kernel.kname, m.Warp.m_pc)
      in
      Hashtbl.replace t.gld_warps_by_pc pc_key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.gld_warps_by_pc pc_key));
      Hashtbl.replace t.gld_requests_by_pc pc_key
        (List.length lines
        + Option.value ~default:0 (Hashtbl.find_opt t.gld_requests_by_pc pc_key));
      (* distinct 32B sectors touched per line (the profiler's
         sector-query granularity) *)
      let sectors_of la =
        let seen = ref 0 in
        Warp.iter_active m.Warp.m_mask (fun lane ->
            let a = m.Warp.m_addrs.(lane) in
            if a / cfg.Config.line_size * cfg.Config.line_size = la then
              seen := !seen lor (1 lsl (a mod cfg.Config.line_size / 32)));
        Warp.popcount !seen
      in
      List.iter
        (fun la ->
          record_block t ~cta la;
          if not (Simplecache.access t.l1s.(sm) la) then begin
            t.l2_queries <- t.l2_queries + 1;
            t.l2_sector_queries <- t.l2_sector_queries + sectors_of la;
            if Simplecache.access t.l2 la then t.l2_hits <- t.l2_hits + 1
          end)
        lines
  | Ptx.Types.Global, Warp.Store ->
      t.global_store_warps <- t.global_store_warps + 1
  | Ptx.Types.Shared, Warp.Load -> t.shared_load_warps <- t.shared_load_warps + 1
  | _, _ -> ()

(* CTA -> SM assignment under the configured scheduler (matches the
   timing simulator's initial placement). *)
let sm_of_cta cfg cta =
  match cfg.Config.cta_sched with
  | Config.Round_robin -> cta mod cfg.Config.n_sms
  | Config.Clustered k ->
      let k = max 1 k in
      cta / k mod cfg.Config.n_sms

(* Run one CTA to completion: warps advance round-robin, pausing at
   barriers until the whole CTA arrives. *)
let run_cta t ~launch ~max_warp_insts cta_lin =
  let cfg = t.cfg in
  let sm = sm_of_cta cfg cta_lin in
  let cta = Cta.create launch ~warp_size:cfg.Config.warp_size ~cta_lin in
  let n = Cta.n_warps cta in
  let at_barrier = Array.make n false in
  let local_insts = ref 0 in
  let budget_left () =
    max_warp_insts = 0 || t.warp_insts + !local_insts < max_warp_insts
  in
  let progress = ref true in
  while (not (Cta.all_finished cta)) && !progress && budget_left () do
    progress := false;
    (* release a completed barrier *)
    let waiting = ref 0 and alive = ref 0 in
    Array.iteri
      (fun i w ->
        if not (Warp.finished w) then begin
          incr alive;
          if at_barrier.(i) then incr waiting
        end)
      cta.Cta.warps;
    if !alive > 0 && !waiting = !alive then Array.fill at_barrier 0 n false;
    Array.iteri
      (fun i w ->
        if (not (Warp.finished w)) && (not at_barrier.(i)) && budget_left ()
        then begin
          progress := true;
          let stop = ref false in
          while (not !stop) && budget_left () do
            incr local_insts;
            match Warp.step w with
            | Warp.S_alu _ -> ()
            | Warp.S_mem m -> record_mem t ~launch ~sm ~cta:cta_lin m
            | Warp.S_barrier ->
                at_barrier.(i) <- true;
                stop := true
            | Warp.S_exit_partial -> ()
            | Warp.S_exit_warp -> stop := true
          done
        end)
      cta.Cta.warps
  done;
  let wi = Array.fold_left (fun a w -> a + w.Warp.warp_insts) 0 cta.Cta.warps in
  let ti =
    Array.fold_left (fun a w -> a + w.Warp.thread_insts) 0 cta.Cta.warps
  in
  t.warp_insts <- t.warp_insts + wi;
  t.thread_insts <- t.thread_insts + ti;
  t.ctas_run <- t.ctas_run + 1;
  if not (budget_left ()) then t.capped <- true

(* Run one launch, accumulating into [t] (multi-kernel applications
   share one stats object across their launches). *)
let run_into t ?(max_warp_insts = 0) (launch : Launch.t) =
  let n = Launch.n_ctas launch in
  let i = ref 0 in
  while !i < n && not t.capped do
    run_cta t ~launch ~max_warp_insts !i;
    incr i
  done

let run ?(cfg = Config.default) ?(max_warp_insts = 0) (launch : Launch.t) =
  let t = create cfg in
  run_into t ~max_warp_insts launch;
  t

(* ------------- derived metrics ------------- *)

let total_gld_warps t = t.gld_warps.(0) + t.gld_warps.(1)

(* Measured requests per warp for one load instruction. *)
let requests_per_warp_of_pc t ~kernel ~pc =
  match
    ( Hashtbl.find_opt t.gld_warps_by_pc (kernel, pc),
      Hashtbl.find_opt t.gld_requests_by_pc (kernel, pc) )
  with
  | Some w, Some r when w > 0 -> Some (float_of_int r /. float_of_int w)
  | _ -> None

(* Fig 1: fraction of global load warps that are deterministic. *)
let deterministic_fraction t =
  let total = total_gld_warps t in
  if total = 0 then 1.0 else float_of_int t.gld_warps.(0) /. float_of_int total

let requests_per_warp t (c : cls) =
  let i = cls_index c in
  if t.gld_warps.(i) = 0 then 0.0
  else float_of_int t.gld_requests.(i) /. float_of_int t.gld_warps.(i)

let requests_per_active_thread t (c : cls) =
  let i = cls_index c in
  if t.gld_active_threads.(i) = 0 then 0.0
  else float_of_int t.gld_requests.(i) /. float_of_int t.gld_active_threads.(i)

(* Fig 9: shared-memory loads per global load. *)
let shared_per_global t =
  let g = total_gld_warps t in
  if g = 0 then 0.0 else float_of_int t.shared_load_warps /. float_of_int g

(* Fig 10: cold misses = first touches of distinct 128B blocks. *)
let cold_miss_ratio t =
  if t.block_accesses = 0 then 0.0
  else float_of_int (Hashtbl.length t.blocks) /. float_of_int t.block_accesses

let avg_accesses_per_block t =
  let blocks = Hashtbl.length t.blocks in
  if blocks = 0 then 0.0
  else float_of_int t.block_accesses /. float_of_int blocks

(* Fig 11 metrics. *)
type sharing = {
  sh_block_ratio : float; (* blocks touched by >= 2 CTAs / all blocks *)
  sh_access_ratio : float; (* accesses to such blocks / all accesses *)
  sh_avg_ctas : float; (* avg #CTAs per multi-CTA block *)
}

let sharing t =
  let blocks = Hashtbl.length t.blocks in
  let shared_blocks = ref 0 and shared_accesses = ref 0 in
  let cta_sum = ref 0 in
  Hashtbl.iter
    (fun _ b ->
      if b.bl_nctas >= 2 then begin
        incr shared_blocks;
        shared_accesses := !shared_accesses + b.bl_count;
        cta_sum := !cta_sum + b.bl_nctas
      end)
    t.blocks;
  {
    sh_block_ratio =
      (if blocks = 0 then 0.0
       else float_of_int !shared_blocks /. float_of_int blocks);
    sh_access_ratio =
      (if t.block_accesses = 0 then 0.0
       else float_of_int !shared_accesses /. float_of_int t.block_accesses);
    sh_avg_ctas =
      (if !shared_blocks = 0 then 0.0
       else float_of_int !cta_sum /. float_of_int !shared_blocks);
  }

(* Fig 12: histogram of distances between consecutive distinct CTA ids
   (sorted order) over blocks shared by multiple CTAs.  Returns
   distance -> fraction of all recorded pair-distances. *)
let cta_distance_histogram t =
  let hist = Hashtbl.create 64 in
  let total = ref 0 in
  Hashtbl.iter
    (fun _ b ->
      if b.bl_nctas >= 2 then begin
        let rec pairs = function
          | a :: (c :: _ as rest) ->
              let d = c - a in
              Hashtbl.replace hist d
                (1 + Option.value ~default:0 (Hashtbl.find_opt hist d));
              incr total;
              pairs rest
          | [ _ ] | [] -> ()
        in
        pairs b.bl_ctas
      end)
    t.blocks;
  let total = max 1 !total in
  Hashtbl.fold
    (fun d c acc -> (d, float_of_int c /. float_of_int total) :: acc)
    hist []
  |> List.sort compare

(* Table III style counters. *)
type counters = {
  gld_request : int;
  shared_load : int;
  l1_global_load_hit : int;
  l1_global_load_miss : int;
  l2_read_hits : int;
  l2_read_queries : int;
  l2_read_sector_queries : int;
}

let counters t =
  let l1h = Array.fold_left (fun a c -> a + c.Simplecache.hits) 0 t.l1s in
  let l1m = Array.fold_left (fun a c -> a + c.Simplecache.misses) 0 t.l1s in
  {
    gld_request = total_gld_warps t;
    shared_load = t.shared_load_warps;
    l1_global_load_hit = l1h;
    l1_global_load_miss = l1m;
    l2_read_hits = t.l2_hits;
    l2_read_queries = t.l2_queries;
    l2_read_sector_queries = t.l2_sector_queries;
  }
