(** Functional (trace-based) simulator.

    Executes launches without timing, recording the event counts the
    paper measured with the CUDA profiler (Tables I/III, Figs 1 and 9)
    and the address-trace locality metrics (Figs 10-12): per-128B-block
    access counts, the set of CTAs touching each block, and the derived
    cold-miss / inter-CTA-sharing / CTA-distance statistics. *)

type cls = Dataflow.Classify.load_class

(** Per-128B-block record; [bl_ctas] is the sorted list of distinct
    linearized CTA ids that touched the block. *)
type block_info = {
  mutable bl_count : int;
  mutable bl_ctas : int list;
  mutable bl_nctas : int;
}

type t = {
  cfg : Config.t;
  mutable warp_insts : int;
  mutable thread_insts : int;
  gld_warps : int array;  (** warp-level global loads, by class (D/N) *)
  gld_requests : int array;  (** coalesced requests, by class *)
  gld_active_threads : int array;
  gld_warps_by_pc : (string * int, int) Hashtbl.t;
      (** (kernel, pc) -> executed warp-level loads *)
  gld_requests_by_pc : (string * int, int) Hashtbl.t;
  mutable shared_load_warps : int;
  mutable global_store_warps : int;
  mutable atom_warps : int;
  blocks : (int, block_info) Hashtbl.t;
  mutable block_accesses : int;
  l1s : Simplecache.t array;
  l2 : Simplecache.t;
  mutable l2_queries : int;  (** line-granularity L2 queries *)
  mutable l2_sector_queries : int;  (** 32B-sector granularity *)
  mutable l2_hits : int;
  mutable ctas_run : int;
  mutable capped : bool;  (** stopped at the instruction cap *)
}

val create : Config.t -> t

val run_into : t -> ?max_warp_insts:int -> Launch.t -> unit
(** Run one launch, accumulating into [t] (multi-kernel applications
    share one stats object across launches). *)

val run : ?cfg:Config.t -> ?max_warp_insts:int -> Launch.t -> t

(** {1 Derived metrics} *)

val total_gld_warps : t -> int

val requests_per_warp_of_pc : t -> kernel:string -> pc:int -> float option
(** Measured requests per warp of one load instruction, when it
    executed. *)

val deterministic_fraction : t -> float
(** Fig 1: fraction of executed global-load warps classified
    deterministic. *)

val requests_per_warp : t -> cls -> float
val requests_per_active_thread : t -> cls -> float

val shared_per_global : t -> float
(** Fig 9: shared-memory loads per global load. *)

val cold_miss_ratio : t -> float
(** Fig 10: first touches of distinct 128B blocks / total block
    accesses. *)

val avg_accesses_per_block : t -> float

(** Fig 11 metrics. *)
type sharing = {
  sh_block_ratio : float;  (** blocks touched by >= 2 CTAs / all blocks *)
  sh_access_ratio : float;  (** accesses to such blocks / all accesses *)
  sh_avg_ctas : float;  (** avg #CTAs per multi-CTA block *)
}

val sharing : t -> sharing

val cta_distance_histogram : t -> (int * float) list
(** Fig 12: distance between consecutive distinct CTA ids (sorted) over
    shared blocks, as (distance, fraction) pairs sorted by distance. *)

(** Table III style profiler counters. *)
type counters = {
  gld_request : int;
  shared_load : int;
  l1_global_load_hit : int;
  l1_global_load_miss : int;
  l2_read_hits : int;
  l2_read_queries : int;
  l2_read_sector_queries : int;  (** profiler-style 32B sector counts *)
}

val counters : t -> counters
