(** Flat byte-addressable memory.  Global memory is one buffer shared
    by all CTAs; shared/local memories are small per-CTA instances.
    Register values are 64 bits; floats travel as IEEE-754 bit patterns
    (F32 values round through 32 bits on store/load). *)

type t

val create : int -> t
(** [create size] is a zeroed memory of [size] bytes. *)

val size : t -> int

val load : t -> Ptx.Types.dtype -> int -> int64
(** Typed load; narrow signed types sign-extend, unsigned zero-extend,
    F32 widens to double bits.
    @raise Invalid_argument on out-of-bounds access. *)

val store : t -> Ptx.Types.dtype -> int -> int64 -> unit
(** Typed store. @raise Invalid_argument on out-of-bounds access. *)

(** {1 Host-side convenience accessors} *)

val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_f32 : t -> int -> float
val set_f32 : t -> int -> float -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit
val get_f64 : t -> int -> float
val set_f64 : t -> int -> float -> unit
