(** The memory-access coalescer in front of the L1 (paper Section VI):
    the lane addresses of one warp memory instruction are grouped into
    distinct cache-line requests.  A fully coalesced warp load touches
    one line; a worst-case gather touches one line per active lane. *)

val lines : line_size:int -> mask:int -> addrs:int array -> int list
(** Distinct line addresses touched by the active lanes, in first-lane
    order. *)

val count : line_size:int -> mask:int -> addrs:int array -> int

val sort_lines : int list -> int list
(** Ascending-address ordering of a coalesced line list — the order
    the IAR reorder unit buffers entries in ({!Mempolicy}).  The
    in-order LD/ST queue keeps first-lane order. *)

val split_lines :
  line_size:int -> width:int -> mask:int -> addrs:int array -> int list list
(** Per-sub-warp line lists under the Section X.A warp-splitting
    ablation ([width] lanes per sub-warp; [width <= 0] disables the
    split).  Empty sub-warps are dropped. *)
