(** Simulator configuration.  Defaults follow the paper's Table II
    (GPGPU-Sim v3.2.2, NVIDIA Tesla C2050): 14 SMs, 32-wide SIMT,
    16KB/128B/4-way L1D with 64 MSHRs, 768KB 8-way L2, ROP latency 120,
    DRAM latency 100. *)

(** CTA-to-SM assignment policy (paper Section X.B). *)
type cta_sched_policy =
  | Round_robin  (** hardware default: CTAs round-robin over SMs *)
  | Clustered of int
      (** groups of [k] consecutive CTAs on the same SM, exploiting
          neighbour-CTA locality in the private L1 *)

(** Static per-load flags — the paper's Section X.A
    "instruction-feature-aware mechanisms selectively applied to load
    instructions".  The leaf of the {!policy} tree: class-wide for
    non-deterministic loads ({!Ndet_flags}) or per (kernel, pc)
    ({!Per_pc}). *)
type load_policy = {
  lp_split : int;  (** sub-warp width, 0 = no split *)
  lp_prefetch : bool;
  lp_bypass : bool;
}

val no_policy : load_policy

(** {1 Memory-system policies}

    One composable value selects the memory-system intervention a run
    evaluates; [Mempolicy] interprets it per SM.  {!Baseline} is
    observationally identical to a simulator with no policy code at
    all — the perf-lock goldens pin that byte-for-byte. *)

(** Irregular Accesses Reorder unit (arXiv 2007.07131): a bounded
    per-SM buffer that holds non-deterministic loads and issues them
    line-batched, recovering inter-warp coalescing. *)
type iar_params = {
  iar_entries : int;  (** buffer capacity (line requests) *)
  iar_max_wait : int;  (** cycles before an entry bypasses batching *)
}

val default_iar : iar_params

(** Holistic warp-level memory management (arXiv 1804.11038):
    classifier-driven bypass for streaming deterministic loads, line
    protection for non-deterministic loads, CTA-granular warp
    throttling on reservation-fail spikes.  Integer thresholds keep
    the canonical key exact. *)
type holistic_params = {
  hp_bypass_sample : int;  (** D-load probes per pc before judging it *)
  hp_bypass_hit_pct : int;  (** mark streaming when hit% <= this *)
  hp_protect_ndet : bool;
  hp_throttle_window : int;  (** probes per throttle window *)
  hp_throttle_high_pct : int;  (** fail% >= this: throttle one CTA *)
  hp_throttle_low_pct : int;  (** fail% <= this: release one CTA *)
}

val default_holistic : holistic_params

type policy =
  | Baseline  (** stock hardware; byte-identical to the locked goldens *)
  | Ndet_flags of load_policy
      (** class-wide split/prefetch/bypass for every non-deterministic
          load (the former [warp_split_width] / [prefetch_ndet] /
          [bypass_ndet] knobs) *)
  | Iar of iar_params
  | Holistic of holistic_params
  | Per_pc of ((string * int) * load_policy) list * policy
      (** per-(kernel, pc) overrides wrapping any inner policy *)

val policy_name : policy -> string
(** Short label for tables and sweep job names. *)

val string_of_mem_policy : policy -> string
(** Canonical rendering with every parameter (the {!to_key} form). *)

val policy_of_string : string -> (policy, string) result
(** Parse a CLI policy name ([baseline] / [iar] / [holistic]), using
    the default parameters for the structured policies. *)

(** Warp issue policy within an SM. *)
type warp_sched_policy =
  | Lrr  (** loose round robin, the paper-era GPGPU-Sim default *)
  | Gto  (** greedy-then-oldest: stay on one warp until it stalls *)

type t = {
  n_sms : int;
  warp_size : int;
  max_threads_per_sm : int;
  max_ctas_per_sm : int;
  shared_mem_per_sm : int;
  l1_sets : int;
  l1_ways : int;
  line_size : int;
  l1_mshr_entries : int;
  l1_mshr_max_merge : int;
  l1_hit_latency : int;
  n_mem_partitions : int;
  l2_sets : int;  (** per partition *)
  l2_ways : int;
  l2_mshr_entries : int;
  l2_latency : int;  (** ROP latency *)
  icnt_latency : int;
  icnt_buffer_size : int;  (** per-SM injection credits *)
  l2_input_queue_size : int;
  dram_latency : int;
  dram_interval : int;  (** min cycles between DRAM bursts *)
  dram_queue_size : int;
  sp_latency : int;
  sfu_latency : int;
  sfu_initiation : int;
  shared_latency : int;
  shared_banks : int;  (** 4-byte banks; conflicts serialize; 0 = off *)
  max_warp_insts : int;  (** stop after this many issued warp instrs; 0 = off *)
  max_cycles : int;
  cta_sched : cta_sched_policy;
  warp_sched : warp_sched_policy;
  l2_cluster : int;
      (** Section X.C ablation: SM-cluster size owning a private L2
          slice (0 = globally shared L2) *)
  policy : policy;  (** the memory-system policy this run evaluates *)
}

val default : t

(** {1 Builder}

    Pipeline-style combinators over {!default}; each takes the config
    last, so call sites read
    [Config.default |> Config.with_mshrs 32 |> Config.with_caps
     ~max_warp_insts:5_000 ()].  Optional arguments leave the
    corresponding field untouched, so a builder names only what an
    experiment varies. *)

val with_n_sms : int -> t -> t
val with_warp_size : int -> t -> t

val with_l1 :
  ?sets:int -> ?ways:int -> ?line_size:int -> ?hit_latency:int -> t -> t

val with_mshrs : ?max_merge:int -> int -> t -> t
(** [with_mshrs n] sets the L1 MSHR entry count (and optionally the
    per-entry merge limit, shared with the L2). *)

val with_l2 :
  ?partitions:int ->
  ?sets:int ->
  ?ways:int ->
  ?mshr_entries:int ->
  ?latency:int ->
  ?input_queue:int ->
  t ->
  t

val with_icnt_width : int -> t -> t
(** Per-SM interconnect injection credits ([icnt_buffer_size]). *)

val with_icnt_latency : int -> t -> t
val with_dram : ?latency:int -> ?interval:int -> ?queue_size:int -> t -> t

val with_caps : ?max_warp_insts:int -> ?max_cycles:int -> unit -> t -> t
(** Simulation stop caps; [0] for [max_warp_insts] disables that cap. *)

val with_cta_sched : cta_sched_policy -> t -> t
val with_warp_sched : warp_sched_policy -> t -> t
val with_l2_cluster : int -> t -> t

val with_policy : policy -> t -> t
(** Select the memory-system policy (see {!policy}). *)

val with_warp_split : int -> t -> t
(** @deprecated Edits the {!Ndet_flags} layer of the current policy
    (all-off flags normalize to {!Baseline}); leaves a structured
    policy untouched.  Use {!with_policy}. *)

val with_prefetch_ndet : bool -> t -> t
(** @deprecated See {!with_warp_split}. *)

val with_bypass_ndet : bool -> t -> t
(** @deprecated See {!with_warp_split}. *)

val with_pc_policies : ((string * int) * load_policy) list -> t -> t
(** @deprecated Replaces the per-pc override table wholesale, wrapping
    the current structured policy in {!Per_pc} ([[]] unwraps).  Build
    {!Per_pc} directly via {!with_policy} instead. *)

(** {1 Canonical identity} *)

val to_key : t -> string
(** Canonical rendering of every field in a fixed order: two configs
    share a key iff they are semantically identical.  The input to
    {!to_digest} and the contract the sweep cache keys rest on. *)

val to_digest : t -> string
(** Hex MD5 of {!to_key} — the short stable token embedded in
    content-addressed cache keys and provenance records.  The JSON
    counterpart ({!Stats_io.config_to_json} / [config_of_json]) is the
    round-trippable form. *)

val unloaded_dram_latency : t -> int
(** Contention-free latency of a load serviced by DRAM. *)

val unloaded_l2_latency : t -> int
(** Contention-free latency of a load serviced by the L2. *)

val max_warps_per_cta : t -> int -> int

val ctas_per_sm : t -> threads_per_cta:int -> smem_bytes:int -> int
(** Concurrent CTAs per SM given the thread and shared-memory limits. *)

val pp : Format.formatter -> t -> unit
