(** A kernel launch: grid/block geometry, parameter bindings, the
    global-memory image, and the per-pc load classification that both
    simulators tag memory traffic with. *)

type t = {
  kernel : Ptx.Kernel.t;
  grid : int * int * int;
  block : int * int * int;
  params : (string, int64) Hashtbl.t;
  global : Mem.t;
  classes : Dataflow.Classify.result;
  reconv : int array;
  decode : Decode.t;
}

val create :
  kernel:Ptx.Kernel.t ->
  grid:int * int * int ->
  block:int * int * int ->
  params:(string * int64) list ->
  global:Mem.t ->
  t
(** Classifies the kernel's loads and precomputes reconvergence points.
    Runs the static verifier ({!Dataflow.Verify.verify_kernel}) first.
    @raise Sim_error.Error ([Invalid_kernel]) when verification finds
    errors, or ([Unbound_param]) when a declared parameter is unbound. *)

val n_ctas : t -> int
val threads_per_cta : t -> int
val warps_per_cta : t -> warp_size:int -> int

val cta_coords : t -> int -> int * int * int
(** 3-D coordinates of a linearized CTA id (the paper's linearization:
    [x + y*dimx + z*dimx*dimy]). *)

val thread_coords : t -> int -> int * int * int

val load_class : t -> int -> Dataflow.Classify.load_class
(** Class of the global load at pc; [Deterministic] for non-loads. *)
