(* Structured simulator diagnostics.

   Every failure the simulator can hit at run time — a kernel the
   verifier rejects, an unbound parameter, an out-of-bounds memory
   access, a deadlocked barrier, a machine that stops making forward
   progress — is reported as one [t] carrying whatever execution
   context is known at the raise site: kernel name, pc, CTA, warp,
   cycle.  Inner layers (Mem, Exec) raise with no context; the warp
   and GPU layers attach what they know via [with_context] as the
   exception propagates, so the message that reaches the user pins the
   fault to an instruction, not just a subsystem.

   [Error] is registered with [Printexc], so even a worker process
   that only stringifies exceptions ships the structured rendering. *)

type kind =
  | Invalid_kernel (* rejected by the static verifier *)
  | Unbound_param (* ld.param of a parameter the launch never bound *)
  | Mem_fault (* out-of-bounds access *)
  | Arith_fault (* integer division by zero *)
  | Barrier_deadlock (* part of a CTA waits at bar.sync forever *)
  | No_progress (* machine live-locked: cycles pass, nothing retires *)
  | Internal (* broken simulator invariant *)

type t = {
  e_kind : kind;
  e_kernel : string option;
  e_pc : int option;
  e_cta : int option;
  e_warp : int option;
  e_cycle : int option;
  e_msg : string;
}

exception Error of t

let kind_name = function
  | Invalid_kernel -> "invalid-kernel"
  | Unbound_param -> "unbound-param"
  | Mem_fault -> "mem-fault"
  | Arith_fault -> "arith-fault"
  | Barrier_deadlock -> "barrier-deadlock"
  | No_progress -> "no-progress"
  | Internal -> "internal"

let make ?kernel ?pc ?cta ?warp ?cycle kind fmt =
  Format.kasprintf
    (fun msg ->
      { e_kind = kind; e_kernel = kernel; e_pc = pc; e_cta = cta;
        e_warp = warp; e_cycle = cycle; e_msg = msg })
    fmt

let error ?kernel ?pc ?cta ?warp ?cycle kind fmt =
  Format.kasprintf
    (fun msg ->
      raise
        (Error
           { e_kind = kind; e_kernel = kernel; e_pc = pc; e_cta = cta;
             e_warp = warp; e_cycle = cycle; e_msg = msg }))
    fmt

(* Fill in the context fields the raise site did not know; existing
   values win, so the innermost (most precise) context is kept. *)
let with_context ?kernel ?pc ?cta ?warp ?cycle e =
  let keep own added = match own with Some _ -> own | None -> added in
  {
    e with
    e_kernel = keep e.e_kernel kernel;
    e_pc = keep e.e_pc pc;
    e_cta = keep e.e_cta cta;
    e_warp = keep e.e_warp warp;
    e_cycle = keep e.e_cycle cycle;
  }

let to_string e =
  let ctx =
    List.filter_map Fun.id
      [
        Option.map (fun k -> "kernel " ^ k) e.e_kernel;
        Option.map (Printf.sprintf "pc %d") e.e_pc;
        Option.map (Printf.sprintf "cta %d") e.e_cta;
        Option.map (Printf.sprintf "warp %d") e.e_warp;
        Option.map (Printf.sprintf "cycle %d") e.e_cycle;
      ]
  in
  Printf.sprintf "sim error [%s]%s: %s" (kind_name e.e_kind)
    (match ctx with [] -> "" | l -> " " ^ String.concat ", " l)
    e.e_msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (to_string e)
    | _ -> None)
