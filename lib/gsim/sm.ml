(* Streaming multiprocessor timing model.

   Per cycle (driven by [Gpu]):
     1. fills returning from the interconnect and local L1-hit
        completions wake waiting warps;
     2. the LD/ST unit issues at most one coalesced request per cycle
        into the L1, recording hit / hit-reserved / miss /
        reservation-fail outcomes (Fig 3) — trailing requests of a
        multi-request warp load wait, which is the paper's "rsrv fail
        by a current warp";
     3. the issue stage picks one ready warp (loose round-robin) whose
        required functional unit is free and executes its next
        instruction.

   Occupancy of each unit's first pipeline stage is sampled every cycle
   for Fig 4.

   Warp-slot state lives in flat int arrays ([states], [blocked_until])
   rather than a per-slot variant record: the issue scan, the
   fast-forward [next_wake] probe and the barrier/retire sweeps all
   walk every slot, and an unboxed compare-and-branch per slot keeps
   those walks allocation-free and cache-friendly. *)

type cls = Dataflow.Classify.load_class

(* Slot state codes (values of [states]). *)
let st_empty = 0

let st_ready = 1

let st_blocked = 2 (* wakes at [blocked_until] *)

let st_waiting_mem = 3

let st_barrier = 4

let st_done = 5

type resident = {
  rc_cta : Cta.t;
  rc_base : int; (* first slot index *)
  rc_nwarps : int;
}

(* One warp-level memory instruction being pushed into the L1, line by
   line.  [pm_groups] holds the remaining sub-warp groups of the
   Section X.A warp-splitting ablation. *)
type pending_mem = {
  pm_wl : Request.warp_load option; (* None for stores *)
  mutable pm_lines : int list;
  mutable pm_groups : int list list;
  pm_kind : Request.kind;
  pm_cls : cls;
  pm_cta : int; (* issuing CTA, for MSHR locality attribution *)
  pm_prefetch : bool; (* next-line prefetch on miss *)
  pm_bypass : bool; (* skip the L1 *)
  pm_protect : bool; (* pin the touched L1 lines (holistic N loads) *)
}

type hit_completion = { hc_ready : int; hc_req : Request.t }

(* [slot_unit] codes: the three [Exec.unit_class]es plus "not peeked
   yet". *)
let unit_unknown = -1

let unit_code = function Exec.SP -> 0 | Exec.SFU -> 1 | Exec.LDST -> 2

type t = {
  id : int;
  cfg : Config.t;
  stats : Stats.t;
  trace : Trace.t;
  l1 : Cache.t;
  pol : Mempolicy.t; (* per-SM memory-system policy state *)
  mutable warps : Warp.t option array; (* per slot *)
  mutable states : int array; (* per slot, [st_*] codes *)
  mutable blocked_until : int array; (* meaningful when [st_blocked] *)
  (* Cached [Warp.peek_unit] per slot, [unit_unknown] when not yet
     peeked.  A warp's next instruction is fixed between steps, so the
     cache is invalidated only when the slot's warp steps (or the slot
     is re-assigned); the issue scan then skips the peek on warps it
     already knows are stalled on a busy unit. *)
  mutable slot_unit : int array;
  mutable slot_rc : resident option array; (* owning CTA per slot *)
  mutable n_empty : int; (* |{ i | states.(i) = st_empty }| *)
  mutable n_ready : int; (* |{ i | states.(i) = st_ready }| *)
  (* Ready slots bucketed by cached unit: index [slot_unit + 1], so
     bucket 0 counts ready slots not yet peeked.  Lets the issue stage
     skip the scan when every ready warp waits on a known-busy unit. *)
  n_ready_u : int array;
  mutable n_blocked : int; (* |{ i | states.(i) = st_blocked }| *)
  (* Lower bound on min blocked_until over blocked slots (max_int when
     none).  Never raised eagerly when a blocked slot wakes, so it can
     go stale low — [refresh_blocked_min] recomputes it exactly before
     it is used to skip work.  A stale-low bound only costs a scan,
     never correctness. *)
  mutable blocked_min : int;
  mutable residents : resident list;
  ldst_q : pending_mem Ringbuf.t;
  hit_pending : hit_completion Ringbuf.t;
  mutable sp_busy_until : int;
  mutable sfu_busy_until : int;
  mutable ldst_busy_until : int; (* shared/const ops occupy LD/ST too *)
  mutable last_issued : int;
  mutable completed_ctas : int;
}

let create ?(trace = Trace.null ()) (cfg : Config.t) ~id ~stats ~warp_slots =
  {
    id;
    cfg;
    stats;
    trace;
    l1 =
      Cache.create ~sets:cfg.Config.l1_sets ~ways:cfg.Config.l1_ways
        ~line_size:cfg.Config.line_size
        ~mshr_entries:cfg.Config.l1_mshr_entries
        ~mshr_max_merge:cfg.Config.l1_mshr_max_merge;
    pol = Mempolicy.create cfg;
    warps = Array.make warp_slots None;
    states = Array.make warp_slots st_empty;
    blocked_until = Array.make warp_slots 0;
    slot_unit = Array.make warp_slots unit_unknown;
    slot_rc = Array.make warp_slots None;
    n_empty = warp_slots;
    n_ready = 0;
    n_ready_u = Array.make 4 0;
    n_blocked = 0;
    blocked_min = max_int;
    residents = [];
    ldst_q = Ringbuf.create ~capacity:64 ();
    hit_pending = Ringbuf.create ~capacity:64 ();
    sp_busy_until = 0;
    sfu_busy_until = 0;
    ldst_busy_until = 0;
    last_issued = 0;
    completed_ctas = 0;
  }

(* Resize the warp-slot table for a new launch; caches persist across
   kernel boundaries.  Only legal when no CTAs are resident. *)
let reconfigure t ~warp_slots ~warps_per_cta =
  Mempolicy.reconfigure t.pol ~warp_slots ~warps_per_cta;
  if t.residents <> [] then
    Sim_error.error Sim_error.Internal
      "SM %d reconfigured with %d CTAs still resident" t.id
      (List.length t.residents);
  if Array.length t.states <> warp_slots then begin
    t.warps <- Array.make warp_slots None;
    t.states <- Array.make warp_slots st_empty;
    t.blocked_until <- Array.make warp_slots 0;
    t.slot_unit <- Array.make warp_slots unit_unknown;
    t.slot_rc <- Array.make warp_slots None
  end;
  t.n_empty <- warp_slots;
  t.n_ready <- 0;
  Array.fill t.n_ready_u 0 4 0;
  t.n_blocked <- 0;
  t.blocked_min <- max_int;
  t.last_issued <- 0

let free_slots t = t.n_empty

(* All slot-state writes go through here so the O(1) occupancy counters
   stay consistent with [states]. *)
let set_state t i st =
  let old = t.states.(i) in
  if old <> st then begin
    if old = st_empty then t.n_empty <- t.n_empty - 1
    else if old = st_ready then begin
      t.n_ready <- t.n_ready - 1;
      let b = t.slot_unit.(i) + 1 in
      t.n_ready_u.(b) <- t.n_ready_u.(b) - 1
    end
    else if old = st_blocked then begin
      t.n_blocked <- t.n_blocked - 1;
      if t.n_blocked = 0 then t.blocked_min <- max_int
    end;
    if st = st_empty then t.n_empty <- t.n_empty + 1
    else if st = st_ready then begin
      t.n_ready <- t.n_ready + 1;
      let b = t.slot_unit.(i) + 1 in
      t.n_ready_u.(b) <- t.n_ready_u.(b) + 1
    end
    else if st = st_blocked then t.n_blocked <- t.n_blocked + 1;
    t.states.(i) <- st
  end

(* All [slot_unit] writes on live slots go through here so the
   [n_ready_u] buckets track ready slots exactly. *)
let set_slot_unit t i c =
  let old = t.slot_unit.(i) in
  if old <> c then begin
    if t.states.(i) = st_ready then begin
      t.n_ready_u.(old + 1) <- t.n_ready_u.(old + 1) - 1;
      t.n_ready_u.(c + 1) <- t.n_ready_u.(c + 1) + 1
    end;
    t.slot_unit.(i) <- c
  end

let set_blocked t i ~until =
  set_state t i st_blocked;
  t.blocked_until.(i) <- until;
  if until < t.blocked_min then t.blocked_min <- until

(* Recompute [blocked_min] exactly; call only when the stale bound is
   about to trigger a slot scan. *)
let refresh_blocked_min t =
  let m = ref max_int in
  let bu = t.blocked_until and sts = t.states in
  for i = 0 to Array.length sts - 1 do
    if sts.(i) = st_blocked && bu.(i) < !m then m := bu.(i)
  done;
  t.blocked_min <- !m

(* True iff some slot would pass [slot_ready] this cycle — the issue
   scan (and its stack-mutating [Warp.peek_unit] calls) runs only on
   such slots, so skipping it entirely when this is false is
   behaviourally identical. *)
let any_issuable t ~now =
  t.n_ready > 0
  || t.n_blocked > 0
     && t.blocked_min <= now
     && begin
          refresh_blocked_min t;
          t.blocked_min <= now
        end

(* Stronger gate for the issue stage only: beyond [any_issuable], a
   scan is also pointless when every ready slot's cached unit is busy
   (bucket 0 holds the not-yet-peeked slots, which must be scanned to
   learn their unit).  An expired blocked slot always forces the scan —
   the scan promotes it to [st_ready] so the buckets take over from the
   next cycle on.  NOT used by [next_wake]: busy units are not wake
   sources there, so the weaker [any_issuable] keeps its contract. *)
let scan_worthwhile t ~now =
  (t.n_blocked > 0
   && t.blocked_min <= now
   && begin
        refresh_blocked_min t;
        t.blocked_min <= now
      end)
  || t.n_ready_u.(0) > 0
  || (t.n_ready_u.(1) > 0 && t.sp_busy_until <= now)
  || (t.n_ready_u.(2) > 0 && t.sfu_busy_until <= now)
  || t.n_ready_u.(3) > 0
     && Ringbuf.is_empty t.ldst_q
     && t.ldst_busy_until <= now

(* Place a CTA in contiguous free slots; false when it does not fit. *)
let try_launch t (launch : Launch.t) ~cta_lin =
  let nwarps = Launch.warps_per_cta launch ~warp_size:t.cfg.Config.warp_size in
  let n = Array.length t.states in
  let rec find_base base =
    if base + nwarps > n then None
    else begin
      let free = ref true in
      for i = base to base + nwarps - 1 do
        if t.states.(i) <> st_empty then free := false
      done;
      if !free then Some base else find_base (base + nwarps)
    end
  in
  match find_base 0 with
  | None -> false
  | Some base ->
      let cta = Cta.create launch ~warp_size:t.cfg.Config.warp_size ~cta_lin in
      let rc = { rc_cta = cta; rc_base = base; rc_nwarps = Cta.n_warps cta } in
      Array.iteri
        (fun i w ->
          t.warps.(base + i) <- Some w;
          t.slot_unit.(base + i) <- unit_unknown; (* while still empty *)
          set_state t (base + i) st_ready;
          t.slot_rc.(base + i) <- Some rc)
        cta.Cta.warps;
      t.residents <- rc :: t.residents;
      true

let resident_of_slot t slot =
  match t.slot_rc.(slot) with
  | Some rc -> rc
  | None ->
      Sim_error.error Sim_error.Internal
        "SM %d: warp slot %d belongs to no resident CTA" t.id slot

(* Barrier release: when every live warp of the CTA is at the barrier,
   set them all ready. *)
let check_barrier t rc =
  let all_there = ref true in
  for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
    let st = t.states.(i) in
    if st <> st_barrier && st <> st_done then all_there := false
  done;
  if !all_there then
    for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
      if t.states.(i) = st_barrier then set_state t i st_ready
    done

(* CTA retirement: free its slots. *)
let check_cta_done t rc =
  let all_done = ref true in
  for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
    if t.states.(i) <> st_done then all_done := false
  done;
  if !all_done then begin
    for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
      t.warps.(i) <- None;
      set_state t i st_empty;
      t.slot_unit.(i) <- unit_unknown;
      t.slot_rc.(i) <- None
    done;
    t.residents <- List.filter (fun r -> r != rc) t.residents;
    t.completed_ctas <- t.completed_ctas + 1;
    t.stats.Stats.completed_ctas <- t.stats.Stats.completed_ctas + 1
  end

(* ---- memory completion path ---- *)

let complete_request t ~now (req : Request.t) =
  req.Request.t_return <- now;
  match req.Request.wl with
  | None -> ()
  | Some wl ->
      if wl.Request.wl_t_first_return < 0 then
        wl.Request.wl_t_first_return <- now;
      wl.Request.wl_t_last_return <- now;
      wl.Request.wl_deepest <-
        Request.deeper wl.Request.wl_deepest req.Request.level;
      if req.Request.t_l2_start >= 0 && req.Request.t_icnt >= 0 then
        wl.Request.wl_sum_icnt_wait <-
          wl.Request.wl_sum_icnt_wait
          + max 0
              (req.Request.t_l2_start - req.Request.t_icnt
             - t.cfg.Config.icnt_latency);
      wl.Request.wl_outstanding <- wl.Request.wl_outstanding - 1;
      if wl.Request.wl_outstanding = 0 then begin
        Stats.record_warp_load_done t.stats t.cfg wl;
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Ev_load_return
               { cycle = now; sm = t.id; cta = wl.Request.wl_cta;
                 kernel = wl.Request.wl_kernel; pc = wl.Request.wl_pc;
                 cls = wl.Request.wl_cls; nreq = wl.Request.wl_nreq;
                 turnaround = now - wl.Request.wl_t_issue;
                 level = wl.Request.wl_deepest });
        let slot = wl.Request.wl_warp_slot in
        if t.states.(slot) = st_waiting_mem then set_state t slot st_ready
      end

let process_returns t ~now ~icnt =
  (* responses from the memory side: fill the L1 and release both the
     primary request and any merged (hit-reserved) waiters *)
  let budget = ref 2 in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    match Icnt.pop_response icnt ~now ~sm:t.id with
    | Some req ->
        decr budget;
        let waiters =
          if req.Request.no_fill then []
          else begin
            let ws = Cache.fill t.l1 ~line_addr:req.Request.line_addr in
            if Trace.enabled t.trace then
              Trace.emit t.trace
                (Trace.Ev_mshr_free
                   { cycle = now; where = Trace.S_l1 t.id;
                     line = req.Request.line_addr;
                     waiters = List.length ws });
            ws
          end
        in
        complete_request t ~now req;
        List.iter
          (fun w ->
            if w.Request.req_id <> req.Request.req_id then begin
              w.Request.level <- Request.deeper w.Request.level req.Request.level;
              complete_request t ~now w
            end)
          waiters
    | None -> continue_ := false
  done;
  (* local L1-hit completions *)
  let continue_ = ref true in
  while !continue_ && not (Ringbuf.is_empty t.hit_pending) do
    let hc = Ringbuf.peek t.hit_pending in
    if hc.hc_ready <= now then begin
      ignore (Ringbuf.pop t.hit_pending);
      complete_request t ~now hc.hc_req
    end
    else continue_ := false
  done

(* ---- LD/ST unit: one L1 access attempt per cycle ---- *)

let accept_times (wl : Request.warp_load option) now =
  match wl with
  | None -> ()
  | Some wl ->
      if wl.Request.wl_t_first_accept < 0 then
        wl.Request.wl_t_first_accept <- now;
      wl.Request.wl_t_last_accept <- now

(* Feed a demand-load probe outcome back to the policy (streaming
   detection, reservation-fail throttle window).  Constant-time no-op
   under Baseline. *)
let policy_outcome t (wl : Request.warp_load option) cls outcome =
  match wl with
  | Some wl ->
      Mempolicy.on_outcome t.pol ~kernel:wl.Request.wl_kernel
        ~pc:wl.Request.wl_pc cls outcome
  | None -> ()

(* Drain the in-order LD/ST queue: one L1 access attempt per cycle. *)
let fifo_cycle t ~now ~icnt =
  if not (Ringbuf.is_empty t.ldst_q) then begin
    let pm = Ringbuf.peek t.ldst_q in
      match pm.pm_lines with
      | [] -> (
          ignore (Ringbuf.pop t.ldst_q);
          (* next sub-warp group goes to the back of the queue so other
             warps can interleave (Section X.A) *)
          match pm.pm_groups with
          | g :: rest ->
              pm.pm_lines <- g;
              pm.pm_groups <- rest;
              Ringbuf.push pm t.ldst_q
          | [] -> ())
      | line :: rest -> (
          match pm.pm_kind with
          | Request.Store ->
              if Icnt.can_inject icnt ~sm:t.id then begin
                Cache.invalidate t.l1 ~line_addr:line;
                let req =
                  Request.make ~cta:pm.pm_cta ~line_addr:line ~sm_id:t.id
                    ~kind:Request.Store ~cls:pm.pm_cls ~wl:None ~now
                in
                req.Request.t_accept <- now;
                Icnt.inject_request icnt ~now req;
                Stats.record_l1_store_event t.stats Cache.Miss;
                if Trace.enabled t.trace then
                  Trace.emit t.trace
                    (Trace.Ev_access
                       { cycle = now; where = Trace.S_l1 t.id; line;
                         src = Trace.A_store; outcome = Cache.Miss });
                t.stats.Stats.global_stores <- t.stats.Stats.global_stores + 1;
                pm.pm_lines <- rest
              end
              else begin
                Stats.record_l1_store_event t.stats
                  (Cache.Rsrv_fail Cache.Fail_icnt);
                if Trace.enabled t.trace then
                  Trace.emit t.trace
                    (Trace.Ev_access
                       { cycle = now; where = Trace.S_l1 t.id; line;
                         src = Trace.A_store;
                         outcome = Cache.Rsrv_fail Cache.Fail_icnt })
              end
          | Request.Load | Request.Atomic when pm.pm_bypass ->
              (* instruction-aware L1 bypass: the request goes straight
                 to the L2, no tag or MSHR is reserved and the response
                 will not fill the L1 *)
              if Icnt.can_inject icnt ~sm:t.id then begin
                let req =
                  Request.make ~cta:pm.pm_cta ~line_addr:line ~sm_id:t.id
                    ~kind:pm.pm_kind ~cls:pm.pm_cls ~wl:pm.pm_wl ~now
                in
                (match pm.pm_wl with
                | Some wl -> req.Request.t_issue <- wl.Request.wl_t_issue
                | None -> ());
                req.Request.no_fill <- true;
                req.Request.t_accept <- now;
                accept_times pm.pm_wl now;
                Icnt.inject_request icnt ~now req;
                (* a bypass injection is a successful attempt of the
                   L1 pipe: feed the throttle window as a miss *)
                policy_outcome t pm.pm_wl pm.pm_cls Cache.Miss;
                pm.pm_lines <- rest
              end
              else begin
                (* a stalled bypass load is still a load-side icnt
                   reservation failure: record it with its D/N class
                   (the store recorder used here previously dropped the
                   class, splitting trace and stats accounting) *)
                Stats.record_l1_event t.stats
                  (Cache.Rsrv_fail Cache.Fail_icnt) pm.pm_cls;
                policy_outcome t pm.pm_wl pm.pm_cls
                  (Cache.Rsrv_fail Cache.Fail_icnt);
                if Trace.enabled t.trace then
                  Trace.emit t.trace
                    (Trace.Ev_access
                       { cycle = now; where = Trace.S_l1 t.id; line;
                         src = Trace.A_load pm.pm_cls;
                         outcome = Cache.Rsrv_fail Cache.Fail_icnt })
              end
          | Request.Load | Request.Atomic -> (
              let req =
                Request.make ~cta:pm.pm_cta ~line_addr:line ~sm_id:t.id
                  ~kind:pm.pm_kind ~cls:pm.pm_cls ~wl:pm.pm_wl ~now
              in
              (match pm.pm_wl with
              | Some wl -> req.Request.t_issue <- wl.Request.wl_t_issue
              | None -> ());
              let icnt_ok = Icnt.can_inject icnt ~sm:t.id in
              (* MSHR merges need the allocating CTA before the probe
                 prepends this request to the waiter list *)
              let owner_cta =
                if Trace.enabled t.trace then
                  Cache.mshr_owner_cta t.l1 ~line_addr:line
                else -1
              in
              let outcome =
                Cache.access_load_protect t.l1 ~protect:pm.pm_protect ~req
                  ~icnt_ok
              in
              Stats.record_l1_event t.stats outcome pm.pm_cls;
              policy_outcome t pm.pm_wl pm.pm_cls outcome;
              if Trace.enabled t.trace then begin
                Trace.emit t.trace
                  (Trace.Ev_access
                     { cycle = now; where = Trace.S_l1 t.id; line;
                       src = Trace.A_load pm.pm_cls; outcome });
                match outcome with
                | Cache.Miss ->
                    Trace.emit t.trace
                      (Trace.Ev_mshr_alloc
                         { cycle = now; where = Trace.S_l1 t.id; line;
                           cta = pm.pm_cta })
                | Cache.Hit_reserved ->
                    Trace.emit t.trace
                      (Trace.Ev_mshr_merge
                         { cycle = now; where = Trace.S_l1 t.id; line;
                           cta = pm.pm_cta; owner_cta })
                | Cache.Hit | Cache.Rsrv_fail _ -> ()
              end;
              match outcome with
              | Cache.Hit ->
                  req.Request.t_accept <- now;
                  accept_times pm.pm_wl now;
                  Ringbuf.push
                    { hc_ready = now + t.cfg.Config.l1_hit_latency;
                      hc_req = req }
                    t.hit_pending;
                  pm.pm_lines <- rest
              | Cache.Hit_reserved ->
                  req.Request.t_accept <- now;
                  accept_times pm.pm_wl now;
                  pm.pm_lines <- rest
              | Cache.Miss ->
                  req.Request.t_accept <- now;
                  accept_times pm.pm_wl now;
                  Icnt.inject_request icnt ~now req;
                  pm.pm_lines <- rest;
                  (* Section X.A: next-line prefetch for N loads, only
                     when every resource is free (never displaces demand
                     traffic at reservation time) *)
                  if pm.pm_prefetch && Icnt.can_inject icnt ~sm:t.id then begin
                    let pline = line + t.cfg.Config.line_size in
                    if Cache.probe t.l1 ~line_addr:pline = `Absent then begin
                      let preq =
                        Request.make ~cta:(-1) ~line_addr:pline ~sm_id:t.id
                          ~kind:Request.Load ~cls:pm.pm_cls ~wl:None ~now
                      in
                      match
                        Cache.access_load t.l1 ~req:preq ~icnt_ok:true
                      with
                      | Cache.Miss ->
                          Icnt.inject_request icnt ~now preq;
                          t.stats.Stats.prefetches_issued <-
                            t.stats.Stats.prefetches_issued + 1
                      | Cache.Hit | Cache.Hit_reserved | Cache.Rsrv_fail _ ->
                          ()
                    end
                  end
              | Cache.Rsrv_fail _ -> ()))
  end

(* Issue one IAR line batch: every buffered entry for [line] shares a
   single L1 probe.  The oldest entry is the primary; on Miss or
   Hit_reserved the secondaries attach to the primary's MSHR entry
   without consuming merge capacity (they were combined upstream of
   the cache), on Hit each gets its own local completion, and on a
   reservation failure the whole batch stays buffered for a later
   cycle — the reorder unit will often pick a different line then,
   which is where the reduction in per-retry fail cycles comes from. *)
let iar_issue t ~now ~icnt ~line =
  match Mempolicy.iar_batch t.pol ~line with
  | [] -> () (* unreachable: select only returns buffered lines *)
  | prim :: secs -> (
      let mk (e : Mempolicy.iar_entry) =
        let req =
          Request.make ~cta:e.Mempolicy.ie_cta ~line_addr:line ~sm_id:t.id
            ~kind:e.Mempolicy.ie_kind ~cls:e.Mempolicy.ie_cls
            ~wl:e.Mempolicy.ie_wl ~now
        in
        (match e.Mempolicy.ie_wl with
        | Some wl -> req.Request.t_issue <- wl.Request.wl_t_issue
        | None -> ());
        req
      in
      let accept (req : Request.t) (e : Mempolicy.iar_entry) =
        req.Request.t_accept <- now;
        accept_times e.Mempolicy.ie_wl now
      in
      let req = mk prim in
      let icnt_ok = Icnt.can_inject icnt ~sm:t.id in
      let owner_cta =
        if Trace.enabled t.trace then Cache.mshr_owner_cta t.l1 ~line_addr:line
        else -1
      in
      let outcome = Cache.access_load t.l1 ~req ~icnt_ok in
      Stats.record_l1_event t.stats outcome prim.Mempolicy.ie_cls;
      if Trace.enabled t.trace then begin
        Trace.emit t.trace
          (Trace.Ev_access
             { cycle = now; where = Trace.S_l1 t.id; line;
               src = Trace.A_load prim.Mempolicy.ie_cls; outcome });
        match outcome with
        | Cache.Miss ->
            Trace.emit t.trace
              (Trace.Ev_mshr_alloc
                 { cycle = now; where = Trace.S_l1 t.id; line;
                   cta = prim.Mempolicy.ie_cta })
        | Cache.Hit_reserved ->
            Trace.emit t.trace
              (Trace.Ev_mshr_merge
                 { cycle = now; where = Trace.S_l1 t.id; line;
                   cta = prim.Mempolicy.ie_cta; owner_cta })
        | Cache.Hit | Cache.Rsrv_fail _ -> ()
      end;
      match outcome with
      | Cache.Rsrv_fail _ -> Mempolicy.iar_defer t.pol ~now
      | Cache.Hit ->
          accept req prim;
          Ringbuf.push
            { hc_ready = now + t.cfg.Config.l1_hit_latency; hc_req = req }
            t.hit_pending;
          List.iter
            (fun e ->
              let r = mk e in
              accept r e;
              Ringbuf.push
                { hc_ready = now + t.cfg.Config.l1_hit_latency; hc_req = r }
                t.hit_pending)
            secs;
          Mempolicy.iar_remove_line t.pol ~line
      | Cache.Hit_reserved | Cache.Miss ->
          accept req prim;
          if outcome = Cache.Miss then Icnt.inject_request icnt ~now req;
          List.iter
            (fun e ->
              let r = mk e in
              accept r e;
              ignore (Cache.mshr_attach t.l1 ~line_addr:line ~req:r))
            secs;
          Mempolicy.iar_remove_line t.pol ~line)

(* LD/ST arbitration: the reorder buffer may claim this cycle's single
   L1 access (aged entries first, else when the in-order queue is
   empty); otherwise the queue drains as on stock hardware.  Under
   Baseline [iar_select] is a constant [None]. *)
let ldst_cycle t ~now ~icnt =
  match
    Mempolicy.iar_select t.pol ~now
      ~fifo_nonempty:(not (Ringbuf.is_empty t.ldst_q))
  with
  | Some line -> iar_issue t ~now ~icnt ~line
  | None -> fifo_cycle t ~now ~icnt

(* ---- issue stage ---- *)

let slot_ready t i ~now =
  let st = t.states.(i) in
  st = st_ready || (st = st_blocked && t.blocked_until.(i) <= now)

(* Issue one memory instruction: consult the memory-system policy,
   coalesce, build the warp-load record, route into the LD/ST unit
   (in-order queue or IAR reorder buffer), block the warp if it must
   wait. *)
let issue_mem t ~now ~slot_idx (w : Warp.t) (m : Warp.mem_op) =
  let cfg = t.cfg in
  match (m.Warp.m_space, m.Warp.m_kind) with
  | Ptx.Types.Global, (Warp.Load | Warp.Atomic) ->
      let launch = (resident_of_slot t slot_idx).rc_cta.Cta.launch in
      let kernel = launch.Launch.kernel.Ptx.Kernel.kname in
      let cls = Launch.load_class launch m.Warp.m_pc in
      let d = Mempolicy.decide t.pol ~kernel ~pc:m.Warp.m_pc cls in
      let pol = d.Mempolicy.d_flags in
      let groups =
        Coalesce.split_lines ~line_size:cfg.Config.line_size
          ~width:pol.Config.lp_split ~mask:m.Warp.m_mask ~addrs:m.Warp.m_addrs
      in
      let total = List.fold_left (fun a g -> a + List.length g) 0 groups in
      let cta = w.Warp.cta_lin in
      let wl =
        Request.make_warp_load ~cta ~sm:t.id ~warp_slot:slot_idx ~kernel
          ~pc:m.Warp.m_pc ~cls ~active:(Warp.popcount m.Warp.m_mask) ~now
      in
      wl.Request.wl_nreq <- total;
      wl.Request.wl_outstanding <- total;
      (match groups with
      | [] -> set_blocked t slot_idx ~until:(now + 1)
      | g :: rest ->
          if Trace.enabled t.trace then
            Trace.emit t.trace
              (Trace.Ev_load_issue
                 { cycle = now; sm = t.id; cta; warp_slot = slot_idx;
                   kernel; pc = m.Warp.m_pc; cls;
                   active = Warp.popcount m.Warp.m_mask; nreq = total });
          (* Reorder-buffer routing: plain (unsplit) loads only —
             atomics and sub-warp groups keep program order.  When the
             buffer lacks room the load falls back to the in-order
             queue, which bounds buffered state by construction. *)
          let buffered =
            d.Mempolicy.d_buffer
            && m.Warp.m_kind = Warp.Load
            && rest = []
            && Mempolicy.iar_room t.pol ~n:(List.length g)
          in
          if buffered then
            List.iter
              (fun line ->
                Mempolicy.iar_add t.pol
                  { Mempolicy.ie_line = line; ie_born = now; ie_wl = Some wl;
                    ie_kind = Request.Load; ie_cls = cls; ie_cta = cta })
              (Coalesce.sort_lines g)
          else
            Ringbuf.push
              { pm_wl = Some wl; pm_lines = g; pm_groups = rest;
                pm_kind =
                  (if m.Warp.m_kind = Warp.Atomic then Request.Atomic
                   else Request.Load);
                pm_cls = cls;
                pm_cta = cta;
                pm_prefetch = pol.Config.lp_prefetch;
                pm_bypass = pol.Config.lp_bypass;
                pm_protect = d.Mempolicy.d_protect }
              t.ldst_q;
          set_state t slot_idx st_waiting_mem)
  | Ptx.Types.Global, Warp.Store ->
      let lines =
        Coalesce.lines ~line_size:cfg.Config.line_size ~mask:m.Warp.m_mask
          ~addrs:m.Warp.m_addrs
      in
      Ringbuf.push
        { pm_wl = None; pm_lines = lines; pm_groups = [];
          pm_kind = Request.Store; pm_cls = Dataflow.Classify.Deterministic;
          pm_cta = w.Warp.cta_lin;
          pm_prefetch = false; pm_bypass = false; pm_protect = false }
        t.ldst_q;
      (* stores are fire-and-forget: the warp continues *)
      set_blocked t slot_idx ~until:(now + 1)
  | (Ptx.Types.Shared | Ptx.Types.Local), _ ->
      if m.Warp.m_kind = Warp.Load then
        t.stats.Stats.shared_loads <- t.stats.Stats.shared_loads + 1;
      (* bank conflicts serialize the access: the warp pays one extra
         trip per additional lane hitting the same 4-byte bank *)
      let conflicts =
        if cfg.Config.shared_banks <= 0 then 1
        else begin
          let counts = Array.make cfg.Config.shared_banks 0 in
          Warp.iter_active m.Warp.m_mask (fun lane ->
              let bank = m.Warp.m_addrs.(lane) / 4 mod cfg.Config.shared_banks in
              counts.(bank) <- counts.(bank) + 1);
          Array.fold_left max 1 counts
        end
      in
      t.ldst_busy_until <- now + 1 + conflicts;
      set_blocked t slot_idx
        ~until:(now + cfg.Config.shared_latency + (2 * (conflicts - 1)))
  | (Ptx.Types.Const | Ptx.Types.Tex | Ptx.Types.Param), _ ->
      t.ldst_busy_until <- now + 2;
      set_blocked t slot_idx ~until:(now + cfg.Config.l1_hit_latency)

(* CTA-granular warp-throttle boundary: when the policy caps resident
   CTAs at [allowed], only slots below the base of the (allowed+1)-th
   lowest-based resident CTA may issue.  CTAs occupy contiguous slot
   ranges, so "slot < bound" admits exactly the [allowed] lowest CTAs
   — always whole CTAs (barriers stay safe) and always including the
   lowest-based one (forward progress is guaranteed: it retires, its
   slots free up, and the next CTA slides under the bound). *)
let throttle_bound t =
  let allowed = Mempolicy.allowed_ctas t.pol in
  if allowed = max_int then max_int
  else begin
    let nres = List.length t.residents in
    if nres <= allowed then max_int
    else
      let bases =
        List.sort compare (List.map (fun r -> r.rc_base) t.residents)
      in
      List.nth bases allowed
  end

let issue_cycle t ~now =
  let n = Array.length t.states in
  if n > 0 && scan_worthwhile t ~now then begin
    let bound = throttle_bound t in
    let issued = ref false in
    let tried = ref 0 in
    (* LRR rotates from the last issuer; GTO stays greedy on the same
       warp and falls back to the oldest (lowest slot).  The candidate
       sequence is generated by increment-and-wrap — no division in
       this per-cycle loop.  LRR visits last+1, last+2, ... (mod n);
       GTO visits last, 0, 1, ..., skipping last. *)
    let lrr = t.cfg.Config.warp_sched = Config.Lrr in
    let last = t.last_issued in
    let cur = ref (if lrr then (if last + 1 >= n then 0 else last + 1) else last)
    in
    while (not !issued) && !tried < n do
      let i = !cur in
      incr tried;
      if lrr then begin
        incr cur;
        if !cur >= n then cur := 0
      end
      else if !tried = 1 then cur := (if last = 0 then 1 else 0)
      else begin
        incr cur;
        if !cur = last then incr cur
      end;
      if i < bound && slot_ready t i ~now then begin
        match t.warps.(i) with
        | None -> ()
        | Some w ->
            (* An expired block and ready are indistinguishable to the
               issue stage; normalizing to ready here keeps this slot in
               the [n_ready_u] buckets so [scan_worthwhile] can gate on
               its unit from now on. *)
            if t.states.(i) = st_blocked then set_state t i st_ready;
            (* A warp's next instruction is fixed between steps: peek
               it once and reuse the cached unit on later scans (the
               repeat [Warp.peek_unit] calls were idempotent). *)
            let uc =
              let c = t.slot_unit.(i) in
              if c <> unit_unknown then c
              else begin
                let c = unit_code (Warp.peek_unit w) in
                set_slot_unit t i c;
                c
              end
            in
            let free =
              if uc = 0 then t.sp_busy_until <= now
              else if uc = 1 then t.sfu_busy_until <= now
              else Ringbuf.is_empty t.ldst_q && t.ldst_busy_until <= now
            in
            if free then begin
              issued := true;
              t.last_issued <- i;
              set_slot_unit t i unit_unknown;
              t.stats.Stats.warp_insts <- t.stats.Stats.warp_insts + 1;
              t.stats.Stats.thread_insts <-
                t.stats.Stats.thread_insts + Warp.popcount (Warp.active_mask w);
              if uc = 0 then t.sp_busy_until <- now + 1
              else if uc = 1 then
                t.sfu_busy_until <- now + t.cfg.Config.sfu_initiation;
              match Warp.step w with
              | Warp.S_alu Exec.SP ->
                  set_blocked t i ~until:(now + t.cfg.Config.sp_latency)
              | Warp.S_alu Exec.SFU ->
                  set_blocked t i ~until:(now + t.cfg.Config.sfu_latency)
              | Warp.S_alu Exec.LDST ->
                  Sim_error.error Sim_error.Internal
                    "SM %d slot %d: ALU step reported the LD/ST unit" t.id i
              | Warp.S_mem m -> issue_mem t ~now ~slot_idx:i w m
              | Warp.S_barrier ->
                  set_state t i st_barrier;
                  check_barrier t (resident_of_slot t i)
              | Warp.S_exit_partial -> set_blocked t i ~until:(now + 1)
              | Warp.S_exit_warp ->
                  set_state t i st_done;
                  let rc = resident_of_slot t i in
                  check_barrier t rc;
                  check_cta_done t rc
            end
      end
    done
  end

(* Sample unit occupancy (Fig 4) — call after the cycle's work. *)
let sample_occupancy t ~now =
  if t.sp_busy_until > now then Stats.record_unit_busy t.stats Exec.SP;
  if t.sfu_busy_until > now then Stats.record_unit_busy t.stats Exec.SFU;
  if
    (not (Ringbuf.is_empty t.ldst_q))
    || Mempolicy.iar_pending t.pol > 0
    || t.ldst_busy_until > now
  then Stats.record_unit_busy t.stats Exec.LDST

(* Skipped phases are provably no-ops: [process_returns] only acts on
   an arrived response or a matured local hit, and [ldst_cycle] only on
   a non-empty queue ([issue_cycle] gates itself on the occupancy
   counters).  The gates keep the common all-idle SM-cycle down to a
   handful of reads. *)
let cycle t ~now ~icnt =
  if
    Icnt.response_arrived icnt ~now ~sm:t.id
    || not (Ringbuf.is_empty t.hit_pending)
  then process_returns t ~now ~icnt;
  if not (Ringbuf.is_empty t.ldst_q) || Mempolicy.iar_pending t.pol > 0 then
    ldst_cycle t ~now ~icnt;
  issue_cycle t ~now;
  sample_occupancy t ~now

(* Called per step by [Gpu.work_remaining]: the residents check must be
   a constructor match, not a polymorphic [= []]. *)
let idle t =
  (match t.residents with [] -> true | _ :: _ -> false)
  && Ringbuf.is_empty t.ldst_q
  && Ringbuf.is_empty t.hit_pending
  && Mempolicy.iar_pending t.pol = 0

(* ---- fast-forward contract (see DESIGN) ----

   [next_wake t ~now] is the earliest cycle at which this SM can make
   progress without an external stimulus (an interconnect response is
   the interconnect's wake, not ours):
     - a value [<= now] — the SM is active this cycle: a pending LD/ST
       queue entry (retried every cycle, mutating reservation-fail
       stats), a ready warp, an expired block, or a matured local hit
       completion;
     - [now < c < max_int] — quiescent until [c]: the earliest of the
       pending block expiries and the L1-hit completion at the queue
       head (FIFO with a constant latency, so the head is minimal);
     - [max_int] — nothing pending at all; only a response can wake
       this SM.
   The probe is O(1) and allocation-free — it reads the occupancy
   counters, not the slot table.  Busy functional units are
   deliberately NOT wake sources: a unit freeing up with no ready warp
   changes nothing, and its per-cycle occupancy samples are
   reconstructed in batch by [account_idle]. *)
let next_wake t ~now =
  if
    (not (Ringbuf.is_empty t.ldst_q))
    || Mempolicy.iar_pending t.pol > 0
    || any_issuable t ~now
  then now
  else begin
    (* any_issuable refreshed blocked_min if it was <= now, so it is
       now exact: the earliest pending block expiry (max_int when
       none). *)
    let horizon = ref (if t.n_blocked > 0 then t.blocked_min else max_int) in
    if not (Ringbuf.is_empty t.hit_pending) then begin
      let hc = Ringbuf.peek t.hit_pending in
      if hc.hc_ready < !horizon then horizon := hc.hc_ready
    end;
    !horizon
  end

(* Reconstruct the per-cycle [sample_occupancy] contributions for the
   skipped range [now, until): while the SM is quiescent its LD/ST
   queue is empty and no state mutates, so the only samples the naive
   loop would have taken are the busy-until tails of the three units. *)
let account_idle t ~now ~until =
  let span busy_until = max 0 (min busy_until until - now) in
  let sp = span t.sp_busy_until in
  if sp > 0 then Stats.record_unit_busy_span t.stats Exec.SP sp;
  let sfu = span t.sfu_busy_until in
  if sfu > 0 then Stats.record_unit_busy_span t.stats Exec.SFU sfu;
  let ld = span t.ldst_busy_until in
  if ld > 0 then Stats.record_unit_busy_span t.stats Exec.LDST ld

(* (in-flight L1 MSHR entries, LD/ST queue depth incl. reorder-buffer
   entries) — the per-SM occupancy timeline the trace layer samples. *)
let occupancy_sample t =
  (Cache.mshr_in_use t.l1, Ringbuf.length t.ldst_q + Mempolicy.iar_pending t.pol)

(* (cta, warp id, pc) of every warp parked at a barrier — the stall
   watchdog uses this to tell a barrier deadlock from a livelock. *)
let barrier_waiters t =
  let acc = ref [] in
  for i = 0 to Array.length t.states - 1 do
    if t.states.(i) = st_barrier then
      match t.warps.(i) with
      | Some w ->
          acc := (w.Warp.cta_lin, w.Warp.warp_id, Warp.pc w) :: !acc
      | None -> ()
  done;
  List.rev !acc
