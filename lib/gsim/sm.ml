(* Streaming multiprocessor timing model.

   Per cycle (driven by [Gpu]):
     1. fills returning from the interconnect and local L1-hit
        completions wake waiting warps;
     2. the LD/ST unit issues at most one coalesced request per cycle
        into the L1, recording hit / hit-reserved / miss /
        reservation-fail outcomes (Fig 3) — trailing requests of a
        multi-request warp load wait, which is the paper's "rsrv fail
        by a current warp";
     3. the issue stage picks one ready warp (loose round-robin) whose
        required functional unit is free and executes its next
        instruction.

   Occupancy of each unit's first pipeline stage is sampled every cycle
   for Fig 4. *)

type cls = Dataflow.Classify.load_class

type warp_state =
  | W_ready
  | W_blocked_until of int
  | W_waiting_mem
  | W_barrier
  | W_done
  | W_empty

type slot = { mutable warp : Warp.t option; mutable state : warp_state }

type resident = {
  rc_cta : Cta.t;
  rc_base : int; (* first slot index *)
  rc_nwarps : int;
}

(* One warp-level memory instruction being pushed into the L1, line by
   line.  [pm_groups] holds the remaining sub-warp groups of the
   Section X.A warp-splitting ablation. *)
type pending_mem = {
  pm_wl : Request.warp_load option; (* None for stores *)
  mutable pm_lines : int list;
  mutable pm_groups : int list list;
  pm_kind : Request.kind;
  pm_cls : cls;
  pm_cta : int; (* issuing CTA, for MSHR locality attribution *)
  pm_prefetch : bool; (* next-line prefetch on miss *)
  pm_bypass : bool; (* skip the L1 *)
}

type hit_completion = { hc_ready : int; hc_req : Request.t }

type t = {
  id : int;
  cfg : Config.t;
  stats : Stats.t;
  trace : Trace.t;
  l1 : Cache.t;
  mutable slots : slot array;
  mutable residents : resident list;
  ldst_q : pending_mem Queue.t;
  hit_pending : hit_completion Queue.t;
  mutable sp_busy_until : int;
  mutable sfu_busy_until : int;
  mutable ldst_busy_until : int; (* shared/const ops occupy LD/ST too *)
  mutable last_issued : int;
  mutable completed_ctas : int;
}

let create ?(trace = Trace.null ()) (cfg : Config.t) ~id ~stats ~warp_slots =
  {
    id;
    cfg;
    stats;
    trace;
    l1 =
      Cache.create ~sets:cfg.Config.l1_sets ~ways:cfg.Config.l1_ways
        ~line_size:cfg.Config.line_size
        ~mshr_entries:cfg.Config.l1_mshr_entries
        ~mshr_max_merge:cfg.Config.l1_mshr_max_merge;
    slots = Array.init warp_slots (fun _ -> { warp = None; state = W_empty });
    residents = [];
    ldst_q = Queue.create ();
    hit_pending = Queue.create ();
    sp_busy_until = 0;
    sfu_busy_until = 0;
    ldst_busy_until = 0;
    last_issued = 0;
    completed_ctas = 0;
  }

(* Resize the warp-slot table for a new launch; caches persist across
   kernel boundaries.  Only legal when no CTAs are resident. *)
let reconfigure t ~warp_slots =
  if t.residents <> [] then
    Sim_error.error Sim_error.Internal
      "SM %d reconfigured with %d CTAs still resident" t.id
      (List.length t.residents);
  if Array.length t.slots <> warp_slots then
    t.slots <- Array.init warp_slots (fun _ -> { warp = None; state = W_empty });
  t.last_issued <- 0

let free_slots t =
  Array.fold_left (fun a s -> if s.state = W_empty then a + 1 else a) 0 t.slots

(* Place a CTA in contiguous free slots; false when it does not fit. *)
let try_launch t (launch : Launch.t) ~cta_lin =
  let nwarps = Launch.warps_per_cta launch ~warp_size:t.cfg.Config.warp_size in
  let n = Array.length t.slots in
  let rec find_base base =
    if base + nwarps > n then None
    else if
      Array.for_all
        (fun i -> t.slots.(base + i).state = W_empty)
        (Array.init nwarps Fun.id)
    then Some base
    else find_base (base + nwarps)
  in
  match find_base 0 with
  | None -> false
  | Some base ->
      let cta = Cta.create launch ~warp_size:t.cfg.Config.warp_size ~cta_lin in
      Array.iteri
        (fun i w ->
          t.slots.(base + i).warp <- Some w;
          t.slots.(base + i).state <- W_ready)
        cta.Cta.warps;
      t.residents <- { rc_cta = cta; rc_base = base; rc_nwarps = Cta.n_warps cta } :: t.residents;
      true

let resident_of_slot t slot =
  match
    List.find_opt
      (fun rc -> slot >= rc.rc_base && slot < rc.rc_base + rc.rc_nwarps)
      t.residents
  with
  | Some rc -> rc
  | None ->
      Sim_error.error Sim_error.Internal
        "SM %d: warp slot %d belongs to no resident CTA" t.id slot

(* Barrier release: when every live warp of the CTA is at the barrier,
   set them all ready. *)
let check_barrier t rc =
  let all_there = ref true in
  for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
    match t.slots.(i).state with
    | W_barrier | W_done -> ()
    | W_ready | W_blocked_until _ | W_waiting_mem | W_empty ->
        all_there := false
  done;
  if !all_there then
    for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
      if t.slots.(i).state = W_barrier then t.slots.(i).state <- W_ready
    done

(* CTA retirement: free its slots. *)
let check_cta_done t rc =
  let all_done = ref true in
  for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
    if t.slots.(i).state <> W_done then all_done := false
  done;
  if !all_done then begin
    for i = rc.rc_base to rc.rc_base + rc.rc_nwarps - 1 do
      t.slots.(i).warp <- None;
      t.slots.(i).state <- W_empty
    done;
    t.residents <- List.filter (fun r -> r != rc) t.residents;
    t.completed_ctas <- t.completed_ctas + 1;
    t.stats.Stats.completed_ctas <- t.stats.Stats.completed_ctas + 1
  end

(* ---- memory completion path ---- *)

let complete_request t ~now (req : Request.t) =
  req.Request.t_return <- now;
  match req.Request.wl with
  | None -> ()
  | Some wl ->
      if wl.Request.wl_t_first_return < 0 then
        wl.Request.wl_t_first_return <- now;
      wl.Request.wl_t_last_return <- now;
      wl.Request.wl_deepest <-
        Request.deeper wl.Request.wl_deepest req.Request.level;
      if req.Request.t_l2_start >= 0 && req.Request.t_icnt >= 0 then
        wl.Request.wl_sum_icnt_wait <-
          wl.Request.wl_sum_icnt_wait
          + max 0
              (req.Request.t_l2_start - req.Request.t_icnt
             - t.cfg.Config.icnt_latency);
      wl.Request.wl_outstanding <- wl.Request.wl_outstanding - 1;
      if wl.Request.wl_outstanding = 0 then begin
        Stats.record_warp_load_done t.stats t.cfg wl;
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Ev_load_return
               { cycle = now; sm = t.id; cta = wl.Request.wl_cta;
                 kernel = wl.Request.wl_kernel; pc = wl.Request.wl_pc;
                 cls = wl.Request.wl_cls; nreq = wl.Request.wl_nreq;
                 turnaround = now - wl.Request.wl_t_issue;
                 level = wl.Request.wl_deepest });
        let slot = t.slots.(wl.Request.wl_warp_slot) in
        if slot.state = W_waiting_mem then slot.state <- W_ready
      end

let process_returns t ~now ~icnt =
  (* responses from the memory side: fill the L1 and release both the
     primary request and any merged (hit-reserved) waiters *)
  let budget = ref 2 in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    match Icnt.pop_response icnt ~now ~sm:t.id with
    | Some req ->
        decr budget;
        let waiters =
          if req.Request.no_fill then []
          else begin
            let ws = Cache.fill t.l1 ~line_addr:req.Request.line_addr in
            if Trace.enabled t.trace then
              Trace.emit t.trace
                (Trace.Ev_mshr_free
                   { cycle = now; where = Trace.S_l1 t.id;
                     line = req.Request.line_addr;
                     waiters = List.length ws });
            ws
          end
        in
        complete_request t ~now req;
        List.iter
          (fun w ->
            if w.Request.req_id <> req.Request.req_id then begin
              w.Request.level <- Request.deeper w.Request.level req.Request.level;
              complete_request t ~now w
            end)
          waiters
    | None -> continue_ := false
  done;
  (* local L1-hit completions *)
  let continue_ = ref true in
  while !continue_ do
    match Queue.peek_opt t.hit_pending with
    | Some hc when hc.hc_ready <= now ->
        ignore (Queue.pop t.hit_pending);
        complete_request t ~now hc.hc_req
    | Some _ | None -> continue_ := false
  done

(* ---- LD/ST unit: one L1 access attempt per cycle ---- *)

let accept_times (wl : Request.warp_load option) now =
  match wl with
  | None -> ()
  | Some wl ->
      if wl.Request.wl_t_first_accept < 0 then
        wl.Request.wl_t_first_accept <- now;
      wl.Request.wl_t_last_accept <- now

let ldst_cycle t ~now ~icnt =
  match Queue.peek_opt t.ldst_q with
  | None -> ()
  | Some pm -> (
      match pm.pm_lines with
      | [] -> (
          ignore (Queue.pop t.ldst_q);
          (* next sub-warp group goes to the back of the queue so other
             warps can interleave (Section X.A) *)
          match pm.pm_groups with
          | g :: rest ->
              pm.pm_lines <- g;
              pm.pm_groups <- rest;
              Queue.push pm t.ldst_q
          | [] -> ())
      | line :: rest -> (
          match pm.pm_kind with
          | Request.Store ->
              if Icnt.can_inject icnt ~sm:t.id then begin
                Cache.invalidate t.l1 ~line_addr:line;
                let req =
                  Request.make ~cta:pm.pm_cta ~line_addr:line ~sm_id:t.id
                    ~kind:Request.Store ~cls:pm.pm_cls ~wl:None ~now
                in
                req.Request.t_accept <- now;
                Icnt.inject_request icnt ~now req;
                Stats.record_l1_store_event t.stats Cache.Miss;
                if Trace.enabled t.trace then
                  Trace.emit t.trace
                    (Trace.Ev_access
                       { cycle = now; where = Trace.S_l1 t.id; line;
                         src = Trace.A_store; outcome = Cache.Miss });
                t.stats.Stats.global_stores <- t.stats.Stats.global_stores + 1;
                pm.pm_lines <- rest
              end
              else begin
                Stats.record_l1_store_event t.stats
                  (Cache.Rsrv_fail Cache.Fail_icnt);
                if Trace.enabled t.trace then
                  Trace.emit t.trace
                    (Trace.Ev_access
                       { cycle = now; where = Trace.S_l1 t.id; line;
                         src = Trace.A_store;
                         outcome = Cache.Rsrv_fail Cache.Fail_icnt })
              end
          | Request.Load | Request.Atomic when pm.pm_bypass ->
              (* instruction-aware L1 bypass: the request goes straight
                 to the L2, no tag or MSHR is reserved and the response
                 will not fill the L1 *)
              if Icnt.can_inject icnt ~sm:t.id then begin
                let req =
                  Request.make ~cta:pm.pm_cta ~line_addr:line ~sm_id:t.id
                    ~kind:pm.pm_kind ~cls:pm.pm_cls ~wl:pm.pm_wl ~now
                in
                (match pm.pm_wl with
                | Some wl -> req.Request.t_issue <- wl.Request.wl_t_issue
                | None -> ());
                req.Request.no_fill <- true;
                req.Request.t_accept <- now;
                accept_times pm.pm_wl now;
                Icnt.inject_request icnt ~now req;
                pm.pm_lines <- rest
              end
              else begin
                (* a stalled bypass load is still a load-side icnt
                   reservation failure: record it with its D/N class
                   (the store recorder used here previously dropped the
                   class, splitting trace and stats accounting) *)
                Stats.record_l1_event t.stats
                  (Cache.Rsrv_fail Cache.Fail_icnt) pm.pm_cls;
                if Trace.enabled t.trace then
                  Trace.emit t.trace
                    (Trace.Ev_access
                       { cycle = now; where = Trace.S_l1 t.id; line;
                         src = Trace.A_load pm.pm_cls;
                         outcome = Cache.Rsrv_fail Cache.Fail_icnt })
              end
          | Request.Load | Request.Atomic -> (
              let req =
                Request.make ~cta:pm.pm_cta ~line_addr:line ~sm_id:t.id
                  ~kind:pm.pm_kind ~cls:pm.pm_cls ~wl:pm.pm_wl ~now
              in
              (match pm.pm_wl with
              | Some wl -> req.Request.t_issue <- wl.Request.wl_t_issue
              | None -> ());
              let icnt_ok = Icnt.can_inject icnt ~sm:t.id in
              (* MSHR merges need the allocating CTA before the probe
                 prepends this request to the waiter list *)
              let owner_cta =
                if Trace.enabled t.trace then
                  Cache.mshr_owner_cta t.l1 ~line_addr:line
                else -1
              in
              let outcome = Cache.access_load t.l1 ~req ~icnt_ok in
              Stats.record_l1_event t.stats outcome pm.pm_cls;
              if Trace.enabled t.trace then begin
                Trace.emit t.trace
                  (Trace.Ev_access
                     { cycle = now; where = Trace.S_l1 t.id; line;
                       src = Trace.A_load pm.pm_cls; outcome });
                match outcome with
                | Cache.Miss ->
                    Trace.emit t.trace
                      (Trace.Ev_mshr_alloc
                         { cycle = now; where = Trace.S_l1 t.id; line;
                           cta = pm.pm_cta })
                | Cache.Hit_reserved ->
                    Trace.emit t.trace
                      (Trace.Ev_mshr_merge
                         { cycle = now; where = Trace.S_l1 t.id; line;
                           cta = pm.pm_cta; owner_cta })
                | Cache.Hit | Cache.Rsrv_fail _ -> ()
              end;
              match outcome with
              | Cache.Hit ->
                  req.Request.t_accept <- now;
                  accept_times pm.pm_wl now;
                  Queue.push
                    { hc_ready = now + t.cfg.Config.l1_hit_latency;
                      hc_req = req }
                    t.hit_pending;
                  pm.pm_lines <- rest
              | Cache.Hit_reserved ->
                  req.Request.t_accept <- now;
                  accept_times pm.pm_wl now;
                  pm.pm_lines <- rest
              | Cache.Miss ->
                  req.Request.t_accept <- now;
                  accept_times pm.pm_wl now;
                  Icnt.inject_request icnt ~now req;
                  pm.pm_lines <- rest;
                  (* Section X.A: next-line prefetch for N loads, only
                     when every resource is free (never displaces demand
                     traffic at reservation time) *)
                  if pm.pm_prefetch && Icnt.can_inject icnt ~sm:t.id then begin
                    let pline = line + t.cfg.Config.line_size in
                    if Cache.probe t.l1 ~line_addr:pline = `Absent then begin
                      let preq =
                        Request.make ~cta:(-1) ~line_addr:pline ~sm_id:t.id
                          ~kind:Request.Load ~cls:pm.pm_cls ~wl:None ~now
                      in
                      match
                        Cache.access_load t.l1 ~req:preq ~icnt_ok:true
                      with
                      | Cache.Miss ->
                          Icnt.inject_request icnt ~now preq;
                          t.stats.Stats.prefetches_issued <-
                            t.stats.Stats.prefetches_issued + 1
                      | Cache.Hit | Cache.Hit_reserved | Cache.Rsrv_fail _ ->
                          ()
                    end
                  end
              | Cache.Rsrv_fail _ -> ())))

(* ---- issue stage ---- *)

let slot_ready t i ~now =
  match t.slots.(i).state with
  | W_ready -> true
  | W_blocked_until c -> c <= now
  | W_waiting_mem | W_barrier | W_done | W_empty -> false

let unit_free t ~now = function
  | Exec.SP -> t.sp_busy_until <= now
  | Exec.SFU -> t.sfu_busy_until <= now
  | Exec.LDST -> Queue.length t.ldst_q = 0 && t.ldst_busy_until <= now

(* Effective policy for the global load at (kernel, pc): a per-pc
   override from the advisor when present, else the class-wide flags. *)
let policy_for (cfg : Config.t) ~kernel ~pc cls =
  match List.assoc_opt (kernel, pc) cfg.Config.pc_policies with
  | Some p -> p
  | None ->
      if cls = Dataflow.Classify.Nondeterministic then
        { Config.lp_split = cfg.Config.warp_split_width;
          lp_prefetch = cfg.Config.prefetch_ndet;
          lp_bypass = cfg.Config.bypass_ndet }
      else Config.no_policy

(* Issue one memory instruction: coalesce, build the warp-load record,
   enqueue into the LD/ST unit, block the warp if it must wait. *)
let issue_mem t ~now ~slot_idx (w : Warp.t) (m : Warp.mem_op) =
  let cfg = t.cfg in
  let slot = t.slots.(slot_idx) in
  match (m.Warp.m_space, m.Warp.m_kind) with
  | Ptx.Types.Global, (Warp.Load | Warp.Atomic) ->
      let launch = (resident_of_slot t slot_idx).rc_cta.Cta.launch in
      let kernel = launch.Launch.kernel.Ptx.Kernel.kname in
      let cls = Launch.load_class launch m.Warp.m_pc in
      let pol = policy_for cfg ~kernel ~pc:m.Warp.m_pc cls in
      let groups =
        Coalesce.split_lines ~line_size:cfg.Config.line_size
          ~width:pol.Config.lp_split ~mask:m.Warp.m_mask ~addrs:m.Warp.m_addrs
      in
      let total = List.fold_left (fun a g -> a + List.length g) 0 groups in
      let cta = w.Warp.cta_lin in
      let wl =
        Request.make_warp_load ~cta ~sm:t.id ~warp_slot:slot_idx ~kernel
          ~pc:m.Warp.m_pc ~cls ~active:(Warp.popcount m.Warp.m_mask) ~now
      in
      wl.Request.wl_nreq <- total;
      wl.Request.wl_outstanding <- total;
      (match groups with
      | [] -> slot.state <- W_blocked_until (now + 1)
      | g :: rest ->
          if Trace.enabled t.trace then
            Trace.emit t.trace
              (Trace.Ev_load_issue
                 { cycle = now; sm = t.id; cta; warp_slot = slot_idx;
                   kernel; pc = m.Warp.m_pc; cls;
                   active = Warp.popcount m.Warp.m_mask; nreq = total });
          Queue.push
            { pm_wl = Some wl; pm_lines = g; pm_groups = rest;
              pm_kind =
                (if m.Warp.m_kind = Warp.Atomic then Request.Atomic
                 else Request.Load);
              pm_cls = cls;
              pm_cta = cta;
              pm_prefetch = pol.Config.lp_prefetch;
              pm_bypass = pol.Config.lp_bypass }
            t.ldst_q;
          slot.state <- W_waiting_mem)
  | Ptx.Types.Global, Warp.Store ->
      let lines =
        Coalesce.lines ~line_size:cfg.Config.line_size ~mask:m.Warp.m_mask
          ~addrs:m.Warp.m_addrs
      in
      Queue.push
        { pm_wl = None; pm_lines = lines; pm_groups = [];
          pm_kind = Request.Store; pm_cls = Dataflow.Classify.Deterministic;
          pm_cta = w.Warp.cta_lin;
          pm_prefetch = false; pm_bypass = false }
        t.ldst_q;
      (* stores are fire-and-forget: the warp continues *)
      slot.state <- W_blocked_until (now + 1)
  | (Ptx.Types.Shared | Ptx.Types.Local), _ ->
      if m.Warp.m_kind = Warp.Load then
        t.stats.Stats.shared_loads <- t.stats.Stats.shared_loads + 1;
      (* bank conflicts serialize the access: the warp pays one extra
         trip per additional lane hitting the same 4-byte bank *)
      let conflicts =
        if cfg.Config.shared_banks <= 0 then 1
        else begin
          let counts = Array.make cfg.Config.shared_banks 0 in
          Warp.iter_active m.Warp.m_mask (fun lane ->
              let bank = m.Warp.m_addrs.(lane) / 4 mod cfg.Config.shared_banks in
              counts.(bank) <- counts.(bank) + 1);
          Array.fold_left max 1 counts
        end
      in
      t.ldst_busy_until <- now + 1 + conflicts;
      slot.state <-
        W_blocked_until (now + cfg.Config.shared_latency + (2 * (conflicts - 1)))
  | (Ptx.Types.Const | Ptx.Types.Tex | Ptx.Types.Param), _ ->
      t.ldst_busy_until <- now + 2;
      slot.state <- W_blocked_until (now + cfg.Config.l1_hit_latency)

let issue_cycle t ~now =
  let n = Array.length t.slots in
  if n > 0 then begin
    let issued = ref false in
    let tried = ref 0 in
    (* LRR rotates from the last issuer; GTO stays greedy on the same
       warp and falls back to the oldest (lowest slot) *)
    let candidate k =
      match t.cfg.Config.warp_sched with
      | Config.Lrr -> (t.last_issued + 1 + k) mod n
      | Config.Gto ->
          if k = 0 then t.last_issued
          else
            let j = k - 1 in
            if j < t.last_issued then j else (j + 1) mod n
    in
    while (not !issued) && !tried < n do
      let i = candidate !tried in
      incr tried;
      if slot_ready t i ~now then begin
        match t.slots.(i).warp with
        | None -> ()
        | Some w ->
            let u = Warp.peek_unit w in
            if unit_free t ~now u then begin
              issued := true;
              t.last_issued <- i;
              t.stats.Stats.warp_insts <- t.stats.Stats.warp_insts + 1;
              t.stats.Stats.thread_insts <-
                t.stats.Stats.thread_insts + Warp.popcount (Warp.active_mask w);
              (match u with
              | Exec.SP -> t.sp_busy_until <- now + 1
              | Exec.SFU -> t.sfu_busy_until <- now + t.cfg.Config.sfu_initiation
              | Exec.LDST -> ());
              match Warp.step w with
              | Warp.S_alu Exec.SP ->
                  t.slots.(i).state <-
                    W_blocked_until (now + t.cfg.Config.sp_latency)
              | Warp.S_alu Exec.SFU ->
                  t.slots.(i).state <-
                    W_blocked_until (now + t.cfg.Config.sfu_latency)
              | Warp.S_alu Exec.LDST ->
                  Sim_error.error Sim_error.Internal
                    "SM %d slot %d: ALU step reported the LD/ST unit" t.id i
              | Warp.S_mem m -> issue_mem t ~now ~slot_idx:i w m
              | Warp.S_barrier ->
                  t.slots.(i).state <- W_barrier;
                  check_barrier t (resident_of_slot t i)
              | Warp.S_exit_partial ->
                  t.slots.(i).state <- W_blocked_until (now + 1)
              | Warp.S_exit_warp ->
                  t.slots.(i).state <- W_done;
                  let rc = resident_of_slot t i in
                  check_barrier t rc;
                  check_cta_done t rc
            end
      end
    done
  end

(* Sample unit occupancy (Fig 4) — call after the cycle's work. *)
let sample_occupancy t ~now =
  if t.sp_busy_until > now then Stats.record_unit_busy t.stats Exec.SP;
  if t.sfu_busy_until > now then Stats.record_unit_busy t.stats Exec.SFU;
  if (not (Queue.is_empty t.ldst_q)) || t.ldst_busy_until > now then
    Stats.record_unit_busy t.stats Exec.LDST

let cycle t ~now ~icnt =
  process_returns t ~now ~icnt;
  ldst_cycle t ~now ~icnt;
  issue_cycle t ~now;
  sample_occupancy t ~now

let idle t =
  t.residents = [] && Queue.is_empty t.ldst_q && Queue.is_empty t.hit_pending

(* ---- fast-forward contract (see DESIGN) ----

   [next_wake t ~now] is the earliest cycle >= now at which this SM can
   make progress without an external stimulus (an interconnect response
   is the interconnect's wake, not ours):
     - [Some now]  — the SM is active this cycle: a pending LD/ST queue
       entry (retried every cycle, mutating reservation-fail stats), a
       ready warp, an expired block, or a matured local hit completion;
     - [Some c]    — quiescent until [c]: the earliest of the pending
       block expiries and the L1-hit completion at the queue head
       (FIFO with a constant latency, so the head is minimal);
     - [None]      — nothing pending at all; only a response can wake
       this SM.
   Busy functional units are deliberately NOT wake sources: a unit
   freeing up with no ready warp changes nothing, and its per-cycle
   occupancy samples are reconstructed in batch by [account_idle]. *)
let next_wake t ~now =
  if not (Queue.is_empty t.ldst_q) then Some now
  else begin
    let active = ref false in
    let horizon = ref max_int in
    let candidate c =
      if c <= now then active := true else if c < !horizon then horizon := c
    in
    Array.iter
      (fun slot ->
        match slot.state with
        | W_ready -> active := true
        | W_blocked_until c -> candidate c
        | W_waiting_mem | W_barrier | W_done | W_empty -> ())
      t.slots;
    (match Queue.peek_opt t.hit_pending with
    | Some hc -> candidate hc.hc_ready
    | None -> ());
    if !active then Some now
    else if !horizon = max_int then None
    else Some !horizon
  end

(* Reconstruct the per-cycle [sample_occupancy] contributions for the
   skipped range [now, until): while the SM is quiescent its LD/ST
   queue is empty and no state mutates, so the only samples the naive
   loop would have taken are the busy-until tails of the three units. *)
let account_idle t ~now ~until =
  let span busy_until = max 0 (min busy_until until - now) in
  Stats.record_unit_busy_span t.stats Exec.SP (span t.sp_busy_until);
  Stats.record_unit_busy_span t.stats Exec.SFU (span t.sfu_busy_until);
  Stats.record_unit_busy_span t.stats Exec.LDST (span t.ldst_busy_until)

(* (in-flight L1 MSHR entries, LD/ST queue depth) — the per-SM
   occupancy timeline the trace layer samples. *)
let occupancy_sample t = (Cache.mshr_in_use t.l1, Queue.length t.ldst_q)

(* (cta, warp id, pc) of every warp parked at a barrier — the stall
   watchdog uses this to tell a barrier deadlock from a livelock. *)
let barrier_waiters t =
  let acc = ref [] in
  Array.iter
    (fun slot ->
      match (slot.state, slot.warp) with
      | W_barrier, Some w ->
          acc := (w.Warp.cta_lin, w.Warp.warp_id, Warp.pc w) :: !acc
      | _ -> ())
    t.slots;
  List.rev !acc
