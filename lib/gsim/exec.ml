(* Functional semantics of one thread executing one instruction.

   Registers are 64-bit; floating values are stored as IEEE-754 bit
   patterns (widened to double bits in registers, rounded through 32
   bits for F32 memory traffic).  Integer division by zero yields 0, as
   a total stand-in for the undefined PTX behaviour. *)

open Ptx.Types

type thread = {
  regs : int64 array;
  preds : bool array;
  tid : int * int * int;
  lane : int;
}

(* Per-warp execution environment (identical for all lanes). *)
type env = {
  ctaid : int * int * int;
  ntid : int * int * int;
  nctaid : int * int * int;
  warp_in_cta : int;
}

let dim_of (x, y, z) = function X -> x | Y -> y | Z -> z

let eval_sreg env th = function
  | Tid d -> Int64.of_int (dim_of th.tid d)
  | Ntid d -> Int64.of_int (dim_of env.ntid d)
  | Ctaid d -> Int64.of_int (dim_of env.ctaid d)
  | Nctaid d -> Int64.of_int (dim_of env.nctaid d)
  | Laneid -> Int64.of_int th.lane
  | Warpid -> Int64.of_int env.warp_in_cta

let eval_operand env th = function
  | Reg r -> th.regs.(r)
  | Imm i -> i
  | Fimm f -> Int64.bits_of_float f
  | Sreg s -> eval_sreg env th s

let eval_addr env th (a : addr) =
  Int64.to_int (eval_operand env th a.abase) + a.aoffset

(* High 64 bits of the signed 64x64 product, via 32-bit halves. *)
let mulhi64 a b =
  let mask = 0xFFFFFFFFL in
  let al = Int64.logand a mask and ah = Int64.shift_right a 32 in
  let bl = Int64.logand b mask and bh = Int64.shift_right b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = Int64.add (Int64.add lh hl) (Int64.shift_right_logical ll 32) in
  Int64.add hh (Int64.shift_right mid 32)

let exec_iop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Mulhi -> mulhi64 a b
  | Div -> if b = 0L then 0L else Int64.div a b
  | Rem -> if b = 0L then 0L else Int64.rem a b
  | Min -> if Int64.compare a b <= 0 then a else b
  | Max -> if Int64.compare a b >= 0 then a else b
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

(* Operands of float instructions: register / float-immediate bits are
   IEEE patterns; integer immediates are taken by value. *)
let as_float env th = function
  | Imm i -> Int64.to_float i
  | op -> Int64.float_of_bits (eval_operand env th op)

let round_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

let exec_fop op ty a b =
  let r =
    match op with
    | Fadd -> a +. b
    | Fsub -> a -. b
    | Fmul -> a *. b
    | Fdiv -> a /. b
    | Fmin -> Float.min a b
    | Fmax -> Float.max a b
  in
  if ty = F32 then round_f32 r else r

let exec_funary op ty a =
  let r =
    match op with
    | Sqrt -> Float.sqrt a
    | Rsqrt -> 1.0 /. Float.sqrt a
    | Rcp -> 1.0 /. a
    | Sin -> Float.sin a
    | Cos -> Float.cos a
    | Ex2 -> Float.pow 2.0 a
    | Lg2 -> Float.log a /. Float.log 2.0
  in
  if ty = F32 then round_f32 r else r

let exec_cvt ~dst_ty ~src_ty v =
  let fval () = Int64.float_of_bits v in
  match (dtype_is_float dst_ty, dtype_is_float src_ty) with
  | true, true ->
      if dst_ty = F32 then Int64.bits_of_float (round_f32 (fval ())) else v
  | true, false ->
      let f = Int64.to_float v in
      Int64.bits_of_float (if dst_ty = F32 then round_f32 f else f)
  | false, true -> Int64.of_float (fval ())
  | false, false -> (
      (* narrow with the destination's signedness *)
      match dst_ty with
      | U8 -> Int64.logand v 0xFFL
      | S8 -> Int64.of_int ((Int64.to_int (Int64.logand v 0xFFL) lsl 55) asr 55)
      | U16 -> Int64.logand v 0xFFFFL
      | S16 ->
          Int64.of_int ((Int64.to_int (Int64.logand v 0xFFFFL) lsl 47) asr 47)
      | U32 -> Int64.logand v 0xFFFFFFFFL
      | S32 -> Int64.of_int32 (Int64.to_int32 v)
      | U64 | S64 -> v
      | F32 | F64 ->
          Sim_error.error Sim_error.Internal
            "exec_cvt: float destination in the integer narrowing path")

let exec_cmp c ty a b =
  let r =
    if dtype_is_float ty then
      Float.compare (Int64.float_of_bits a) (Int64.float_of_bits b)
    else if dtype_is_signed ty then Int64.compare a b
    else Int64.unsigned_compare a b
  in
  match c with
  | Eq -> r = 0
  | Ne -> r <> 0
  | Lt -> r < 0
  | Le -> r <= 0
  | Gt -> r > 0
  | Ge -> r >= 0

let exec_atom op old v =
  match op with
  | Aadd -> Int64.add old v
  | Amin -> if Int64.compare old v <= 0 then old else v
  | Amax -> if Int64.compare old v >= 0 then old else v
  | Aexch -> v
  | Acas -> v (* compare value handled by the caller if needed *)

(* Execute a non-memory, non-control instruction for one thread,
   writing results into its register/predicate files. *)
let exec_alu env th (i : Ptx.Instr.t) =
  match i with
  | Mov (d, s) -> th.regs.(d) <- eval_operand env th s
  | Iop (op, d, a, b) ->
      th.regs.(d) <- exec_iop op (eval_operand env th a) (eval_operand env th b)
  | Mad (d, a, b, c) ->
      th.regs.(d) <-
        Int64.add
          (Int64.mul (eval_operand env th a) (eval_operand env th b))
          (eval_operand env th c)
  | Fop (op, ty, d, a, b) ->
      th.regs.(d) <-
        Int64.bits_of_float
          (exec_fop op ty (as_float env th a) (as_float env th b))
  | Fma (ty, d, a, b, c) ->
      let r = (as_float env th a *. as_float env th b) +. as_float env th c in
      th.regs.(d) <- Int64.bits_of_float (if ty = F32 then round_f32 r else r)
  | Funary (op, ty, d, a) ->
      th.regs.(d) <- Int64.bits_of_float (exec_funary op ty (as_float env th a))
  | Cvt (dst_ty, src_ty, d, a) ->
      th.regs.(d) <- exec_cvt ~dst_ty ~src_ty (eval_operand env th a)
  | Setp (c, ty, p, a, b) ->
      th.preds.(p) <-
        exec_cmp c ty (eval_operand env th a) (eval_operand env th b)
  | Selp (d, a, b, p) ->
      th.regs.(d) <-
        (if th.preds.(p) then eval_operand env th a else eval_operand env th b)
  | Pnot (d, s) -> th.preds.(d) <- not th.preds.(s)
  | Pand (d, a, b) -> th.preds.(d) <- th.preds.(a) && th.preds.(b)
  | Por (d, a, b) -> th.preds.(d) <- th.preds.(a) || th.preds.(b)
  | Ld_param _ | Ld _ | St _ | Atom _ | Bra _ | Bar | Exit | Label _ ->
      Sim_error.error Sim_error.Internal
        "exec_alu: not an ALU instruction: %s" (Ptx.Instr.to_string i)

(* Functional-unit class, for the Fig 4 occupancy statistics. *)
type unit_class = SP | SFU | LDST

let unit_of_instr (i : Ptx.Instr.t) =
  match i with
  | Funary _ -> SFU
  | Ld _ | St _ | Atom _ -> LDST
  | Ld_param _ | Mov _ | Iop _ | Mad _ | Fop _ | Fma _ | Cvt _ | Setp _
  | Selp _ | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit | Label _ ->
      SP
