(* Functional semantics of one thread executing one instruction.

   Registers are 64-bit; floating values are stored as IEEE-754 bit
   patterns (widened to double bits in registers, rounded through 32
   bits for F32 memory traffic).  Integer division by zero yields 0, as
   a total stand-in for the undefined PTX behaviour. *)

open Ptx.Types

type thread = {
  regs : int64 array;
  preds : bool array;
  tid : int * int * int;
  lane : int;
}

(* Per-warp execution environment (identical for all lanes). *)
type env = {
  ctaid : int * int * int;
  ntid : int * int * int;
  nctaid : int * int * int;
  warp_in_cta : int;
}

let dim_of (x, y, z) = function X -> x | Y -> y | Z -> z

let eval_sreg env th = function
  | Tid d -> Int64.of_int (dim_of th.tid d)
  | Ntid d -> Int64.of_int (dim_of env.ntid d)
  | Ctaid d -> Int64.of_int (dim_of env.ctaid d)
  | Nctaid d -> Int64.of_int (dim_of env.nctaid d)
  | Laneid -> Int64.of_int th.lane
  | Warpid -> Int64.of_int env.warp_in_cta

let eval_operand env th = function
  | Reg r -> th.regs.(r)
  | Imm i -> i
  | Fimm f -> Int64.bits_of_float f
  | Sreg s -> eval_sreg env th s

let eval_addr env th (a : addr) =
  Int64.to_int (eval_operand env th a.abase) + a.aoffset

(* High 64 bits of the signed 64x64 product, via 32-bit halves. *)
let mulhi64 a b =
  let mask = 0xFFFFFFFFL in
  let al = Int64.logand a mask and ah = Int64.shift_right a 32 in
  let bl = Int64.logand b mask and bh = Int64.shift_right b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = Int64.add (Int64.add lh hl) (Int64.shift_right_logical ll 32) in
  Int64.add hh (Int64.shift_right mid 32)

let exec_iop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Mulhi -> mulhi64 a b
  | Div -> if b = 0L then 0L else Int64.div a b
  | Rem -> if b = 0L then 0L else Int64.rem a b
  | Min -> if Int64.compare a b <= 0 then a else b
  | Max -> if Int64.compare a b >= 0 then a else b
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

(* Operands of float instructions: register / float-immediate bits are
   IEEE patterns; integer immediates are taken by value. *)
let as_float env th = function
  | Imm i -> Int64.to_float i
  | op -> Int64.float_of_bits (eval_operand env th op)

let round_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

let exec_fop op ty a b =
  let r =
    match op with
    | Fadd -> a +. b
    | Fsub -> a -. b
    | Fmul -> a *. b
    | Fdiv -> a /. b
    | Fmin -> Float.min a b
    | Fmax -> Float.max a b
  in
  if ty = F32 then round_f32 r else r

let exec_funary op ty a =
  let r =
    match op with
    | Sqrt -> Float.sqrt a
    | Rsqrt -> 1.0 /. Float.sqrt a
    | Rcp -> 1.0 /. a
    | Sin -> Float.sin a
    | Cos -> Float.cos a
    | Ex2 -> Float.pow 2.0 a
    | Lg2 -> Float.log a /. Float.log 2.0
  in
  if ty = F32 then round_f32 r else r

let exec_cvt ~dst_ty ~src_ty v =
  let fval () = Int64.float_of_bits v in
  match (dtype_is_float dst_ty, dtype_is_float src_ty) with
  | true, true ->
      if dst_ty = F32 then Int64.bits_of_float (round_f32 (fval ())) else v
  | true, false ->
      let f = Int64.to_float v in
      Int64.bits_of_float (if dst_ty = F32 then round_f32 f else f)
  | false, true -> Int64.of_float (fval ())
  | false, false -> (
      (* narrow with the destination's signedness *)
      match dst_ty with
      | U8 -> Int64.logand v 0xFFL
      | S8 -> Int64.of_int ((Int64.to_int (Int64.logand v 0xFFL) lsl 55) asr 55)
      | U16 -> Int64.logand v 0xFFFFL
      | S16 ->
          Int64.of_int ((Int64.to_int (Int64.logand v 0xFFFFL) lsl 47) asr 47)
      | U32 -> Int64.logand v 0xFFFFFFFFL
      | S32 -> Int64.of_int32 (Int64.to_int32 v)
      | U64 | S64 -> v
      | F32 | F64 ->
          Sim_error.error Sim_error.Internal
            "exec_cvt: float destination in the integer narrowing path")

let exec_cmp c ty a b =
  let r =
    if dtype_is_float ty then
      Float.compare (Int64.float_of_bits a) (Int64.float_of_bits b)
    else if dtype_is_signed ty then Int64.compare a b
    else Int64.unsigned_compare a b
  in
  match c with
  | Eq -> r = 0
  | Ne -> r <> 0
  | Lt -> r < 0
  | Le -> r <= 0
  | Gt -> r > 0
  | Ge -> r >= 0

let exec_atom op old v =
  match op with
  | Aadd -> Int64.add old v
  | Amin -> if Int64.compare old v <= 0 then old else v
  | Amax -> if Int64.compare old v >= 0 then old else v
  | Aexch -> v
  | Acas -> v (* compare value handled by the caller if needed *)

(* Execute a non-memory, non-control instruction for one thread,
   writing results into its register/predicate files. *)
let exec_alu env th (i : Ptx.Instr.t) =
  match i with
  | Mov (d, s) -> th.regs.(d) <- eval_operand env th s
  | Iop (op, d, a, b) ->
      th.regs.(d) <- exec_iop op (eval_operand env th a) (eval_operand env th b)
  | Mad (d, a, b, c) ->
      th.regs.(d) <-
        Int64.add
          (Int64.mul (eval_operand env th a) (eval_operand env th b))
          (eval_operand env th c)
  | Fop (op, ty, d, a, b) ->
      th.regs.(d) <-
        Int64.bits_of_float
          (exec_fop op ty (as_float env th a) (as_float env th b))
  | Fma (ty, d, a, b, c) ->
      let r = (as_float env th a *. as_float env th b) +. as_float env th c in
      th.regs.(d) <- Int64.bits_of_float (if ty = F32 then round_f32 r else r)
  | Funary (op, ty, d, a) ->
      th.regs.(d) <- Int64.bits_of_float (exec_funary op ty (as_float env th a))
  | Cvt (dst_ty, src_ty, d, a) ->
      th.regs.(d) <- exec_cvt ~dst_ty ~src_ty (eval_operand env th a)
  | Setp (c, ty, p, a, b) ->
      th.preds.(p) <-
        exec_cmp c ty (eval_operand env th a) (eval_operand env th b)
  | Selp (d, a, b, p) ->
      th.regs.(d) <-
        (if th.preds.(p) then eval_operand env th a else eval_operand env th b)
  | Pnot (d, s) -> th.preds.(d) <- not th.preds.(s)
  | Pand (d, a, b) -> th.preds.(d) <- th.preds.(a) && th.preds.(b)
  | Por (d, a, b) -> th.preds.(d) <- th.preds.(a) || th.preds.(b)
  | Ld_param _ | Ld _ | St _ | Atom _ | Bra _ | Bar | Exit | Label _ ->
      Sim_error.error Sim_error.Internal
        "exec_alu: not an ALU instruction: %s" (Ptx.Instr.to_string i)

(* Warp-level ALU execution: match the instruction variant once and
   loop the active lanes inside each case, instead of re-dispatching
   through [exec_alu]'s match per lane.  The hot instruction kinds
   additionally specialise the common operand shapes (register /
   immediate) so the per-lane body is a straight array read-compute-
   write with no operand dispatch; every specialised body performs
   exactly the operations of the general one, so results are
   bit-identical.  Lane order (ascending) is identical throughout. *)
let exec_alu_warp env threads mask (i : Ptx.Instr.t) =
  let iter f =
    let m = ref mask in
    let lane = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then f threads.(!lane);
      m := !m lsr 1;
      incr lane
    done
  in
  match i with
  | Ptx.Instr.Mov (d, s) -> (
      match s with
      | Reg r -> iter (fun th -> th.regs.(d) <- th.regs.(r))
      | Imm v -> iter (fun th -> th.regs.(d) <- v)
      | Fimm _ | Sreg _ ->
          iter (fun th -> th.regs.(d) <- eval_operand env th s))
  | Iop (op, d, a, b) -> (
      match (a, b) with
      | Reg ra, Reg rb ->
          iter (fun th -> th.regs.(d) <- exec_iop op th.regs.(ra) th.regs.(rb))
      | Reg ra, Imm vb ->
          iter (fun th -> th.regs.(d) <- exec_iop op th.regs.(ra) vb)
      | Imm va, Reg rb ->
          iter (fun th -> th.regs.(d) <- exec_iop op va th.regs.(rb))
      | _ ->
          iter (fun th ->
              th.regs.(d) <-
                exec_iop op (eval_operand env th a) (eval_operand env th b)))
  | Mad (d, a, b, c) -> (
      match (a, b, c) with
      | Reg ra, Reg rb, Reg rc ->
          iter (fun th ->
              th.regs.(d) <-
                Int64.add (Int64.mul th.regs.(ra) th.regs.(rb)) th.regs.(rc))
      | Reg ra, Imm vb, Reg rc ->
          iter (fun th ->
              th.regs.(d) <- Int64.add (Int64.mul th.regs.(ra) vb) th.regs.(rc))
      | _ ->
          iter (fun th ->
              th.regs.(d) <-
                Int64.add
                  (Int64.mul (eval_operand env th a) (eval_operand env th b))
                  (eval_operand env th c)))
  | Fop (op, ty, d, a, b) -> (
      match (a, b) with
      | Reg ra, Reg rb ->
          iter (fun th ->
              th.regs.(d) <-
                Int64.bits_of_float
                  (exec_fop op ty
                     (Int64.float_of_bits th.regs.(ra))
                     (Int64.float_of_bits th.regs.(rb))))
      | _ ->
          iter (fun th ->
              th.regs.(d) <-
                Int64.bits_of_float
                  (exec_fop op ty (as_float env th a) (as_float env th b))))
  | Fma (ty, d, a, b, c) -> (
      match (a, b, c) with
      | Reg ra, Reg rb, Reg rc ->
          if ty = F32 then
            iter (fun th ->
                let r =
                  (Int64.float_of_bits th.regs.(ra)
                  *. Int64.float_of_bits th.regs.(rb))
                  +. Int64.float_of_bits th.regs.(rc)
                in
                th.regs.(d) <- Int64.bits_of_float (round_f32 r))
          else
            iter (fun th ->
                let r =
                  (Int64.float_of_bits th.regs.(ra)
                  *. Int64.float_of_bits th.regs.(rb))
                  +. Int64.float_of_bits th.regs.(rc)
                in
                th.regs.(d) <- Int64.bits_of_float r)
      | _ ->
          iter (fun th ->
              let r =
                (as_float env th a *. as_float env th b) +. as_float env th c
              in
              th.regs.(d) <-
                Int64.bits_of_float (if ty = F32 then round_f32 r else r)))
  | Funary (op, ty, d, a) ->
      iter (fun th ->
          th.regs.(d) <-
            Int64.bits_of_float (exec_funary op ty (as_float env th a)))
  | Cvt (dst_ty, src_ty, d, a) -> (
      match a with
      | Reg r ->
          iter (fun th -> th.regs.(d) <- exec_cvt ~dst_ty ~src_ty th.regs.(r))
      | _ ->
          iter (fun th ->
              th.regs.(d) <- exec_cvt ~dst_ty ~src_ty (eval_operand env th a)))
  | Setp (c, ty, p, a, b) -> (
      match (a, b) with
      | Reg ra, Reg rb ->
          iter (fun th ->
              th.preds.(p) <- exec_cmp c ty th.regs.(ra) th.regs.(rb))
      | Reg ra, Imm vb ->
          iter (fun th -> th.preds.(p) <- exec_cmp c ty th.regs.(ra) vb)
      | _ ->
          iter (fun th ->
              th.preds.(p) <-
                exec_cmp c ty (eval_operand env th a) (eval_operand env th b)))
  | Selp (d, a, b, p) -> (
      match (a, b) with
      | Reg ra, Reg rb ->
          iter (fun th ->
              th.regs.(d) <-
                (if th.preds.(p) then th.regs.(ra) else th.regs.(rb)))
      | _ ->
          iter (fun th ->
              th.regs.(d) <-
                (if th.preds.(p) then eval_operand env th a
                 else eval_operand env th b)))
  | Pnot (d, s) -> iter (fun th -> th.preds.(d) <- not th.preds.(s))
  | Pand (d, a, b) ->
      iter (fun th -> th.preds.(d) <- th.preds.(a) && th.preds.(b))
  | Por (d, a, b) ->
      iter (fun th -> th.preds.(d) <- th.preds.(a) || th.preds.(b))
  | Ld_param _ | Ld _ | St _ | Atom _ | Bra _ | Bar | Exit | Label _ ->
      Sim_error.error Sim_error.Internal
        "exec_alu_warp: not an ALU instruction: %s" (Ptx.Instr.to_string i)

(* Compile one ALU instruction into a ready-to-run closure over
   (env, threads, mask), built once per pc at decode time.  The operand
   shape is resolved here, so the per-execution cost is one indirect
   call and a lane loop whose body is a straight array read-compute-
   write — no instruction dispatch, no operand dispatch, no per-lane
   closure invocation.  Every compiled body performs exactly the
   operations of [exec_alu_warp]'s corresponding path (bit-identical
   results, ascending lane order); uncompiled shapes fall back to it. *)
let compile_alu (i : Ptx.Instr.t) : env -> thread array -> int -> unit =
  match i with
  | Mov (d, Reg r) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- th.regs.(r));
          m := !m lsr 1;
          incr lane
        done
  | Mov (d, Imm v) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          if !m land 1 <> 0 then threads.(!lane).regs.(d) <- v;
          m := !m lsr 1;
          incr lane
        done
  | Iop (Add, d, Reg ra, Reg rb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- Int64.add th.regs.(ra) th.regs.(rb));
          m := !m lsr 1;
          incr lane
        done
  | Iop (Add, d, Reg ra, Imm vb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- Int64.add th.regs.(ra) vb);
          m := !m lsr 1;
          incr lane
        done
  | Iop (Mul, d, Reg ra, Imm vb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- Int64.mul th.regs.(ra) vb);
          m := !m lsr 1;
          incr lane
        done
  | Iop (op, d, Reg ra, Reg rb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- exec_iop op th.regs.(ra) th.regs.(rb));
          m := !m lsr 1;
          incr lane
        done
  | Iop (op, d, Reg ra, Imm vb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- exec_iop op th.regs.(ra) vb);
          m := !m lsr 1;
          incr lane
        done
  | Iop (op, d, Imm va, Reg rb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- exec_iop op va th.regs.(rb));
          m := !m lsr 1;
          incr lane
        done
  | Mad (d, Reg ra, Reg rb, Reg rc) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <-
               Int64.add (Int64.mul th.regs.(ra) th.regs.(rb)) th.regs.(rc));
          m := !m lsr 1;
          incr lane
        done
  | Mad (d, Reg ra, Imm vb, Reg rc) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- Int64.add (Int64.mul th.regs.(ra) vb) th.regs.(rc));
          m := !m lsr 1;
          incr lane
        done
  | Fop (op, ty, d, Reg ra, Reg rb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <-
               Int64.bits_of_float
                 (exec_fop op ty
                    (Int64.float_of_bits th.regs.(ra))
                    (Int64.float_of_bits th.regs.(rb))));
          m := !m lsr 1;
          incr lane
        done
  | Fma (F32, d, Reg ra, Reg rb, Reg rc) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             let r =
               (Int64.float_of_bits th.regs.(ra)
               *. Int64.float_of_bits th.regs.(rb))
               +. Int64.float_of_bits th.regs.(rc)
             in
             th.regs.(d) <- Int64.bits_of_float (round_f32 r));
          m := !m lsr 1;
          incr lane
        done
  | Fma ((F64 | U8 | S8 | U16 | S16 | U32 | S32 | U64 | S64), d,
         Reg ra, Reg rb, Reg rc) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             let r =
               (Int64.float_of_bits th.regs.(ra)
               *. Int64.float_of_bits th.regs.(rb))
               +. Int64.float_of_bits th.regs.(rc)
             in
             th.regs.(d) <- Int64.bits_of_float r);
          m := !m lsr 1;
          incr lane
        done
  | Cvt (dst_ty, src_ty, d, Reg r) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- exec_cvt ~dst_ty ~src_ty th.regs.(r));
          m := !m lsr 1;
          incr lane
        done
  | Setp (c, ty, p, Reg ra, Reg rb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.preds.(p) <- exec_cmp c ty th.regs.(ra) th.regs.(rb));
          m := !m lsr 1;
          incr lane
        done
  | Setp (c, ty, p, Reg ra, Imm vb) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.preds.(p) <- exec_cmp c ty th.regs.(ra) vb);
          m := !m lsr 1;
          incr lane
        done
  | Selp (d, Reg ra, Reg rb, p) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.regs.(d) <- (if th.preds.(p) then th.regs.(ra) else th.regs.(rb)));
          m := !m lsr 1;
          incr lane
        done
  | Pnot (d, s) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.preds.(d) <- not th.preds.(s));
          m := !m lsr 1;
          incr lane
        done
  | Pand (d, a, b) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.preds.(d) <- (th.preds.(a) && th.preds.(b)));
          m := !m lsr 1;
          incr lane
        done
  | Por (d, a, b) ->
      fun _ threads mask ->
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          (if !m land 1 <> 0 then
             let th = threads.(!lane) in
             th.preds.(d) <- (th.preds.(a) || th.preds.(b)));
          m := !m lsr 1;
          incr lane
        done
  | Mov _ | Iop _ | Mad _ | Fop _ | Fma _ | Funary _ | Cvt _ | Setp _
  | Selp _ ->
      fun env threads mask -> exec_alu_warp env threads mask i
  | Ld_param _ | Ld _ | St _ | Atom _ | Bra _ | Bar | Exit | Label _ ->
      fun _ _ _ ->
        Sim_error.error Sim_error.Internal
          "compile_alu: not an ALU instruction: %s" (Ptx.Instr.to_string i)

(* Functional-unit class, for the Fig 4 occupancy statistics. *)
type unit_class = SP | SFU | LDST

let unit_of_instr (i : Ptx.Instr.t) =
  match i with
  | Funary _ -> SFU
  | Ld _ | St _ | Atom _ -> LDST
  | Ld_param _ | Mov _ | Iop _ | Mad _ | Fop _ | Fma _ | Cvt _ | Setp _
  | Selp _ | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit | Label _ ->
      SP
