(* A warp: [warp_size] threads executing in lockstep under a SIMT
   reconvergence stack (post-dominator based, as in GPGPU-Sim).

   [step] executes exactly one warp instruction *functionally* —
   register values, memory values and control flow are resolved
   immediately — and reports what happened so a caller can model
   timing on top (the cycle simulator) or just record a trace (the
   functional simulator). *)

open Ptx.Types

type mem_kind = Load | Store | Atomic

type mem_op = {
  m_pc : int;
  m_space : space;
  m_kind : mem_kind;
  m_dtype : dtype;
  m_mask : int; (* lanes active for this access *)
  m_addrs : int array; (* per-lane effective byte address *)
}

type step_result =
  | S_alu of Exec.unit_class (* SP or SFU instruction *)
  | S_mem of mem_op
  | S_barrier
  | S_exit_partial (* some lanes finished; warp continues *)
  | S_exit_warp (* all lanes finished *)

(* Access to the memories this warp's CTA can see.  [atomic] returns
   the old value.  The three backing stores are exposed directly so the
   per-lane load/store loops can call [Mem.load]/[Mem.store] without an
   indirect dispatch; the closures remain for the uncommon paths. *)
type mem_iface = {
  read : space -> dtype -> int -> int64;
  write : space -> dtype -> int -> int64 -> unit;
  atomic : atomop -> dtype -> int -> int64 -> int64;
  m_global : Mem.t; (* also serves const/tex/param *)
  m_shared : Mem.t;
  m_local : Mem.t;
}

let mem_of_space iface = function
  | Global | Const | Tex | Param -> iface.m_global
  | Shared -> iface.m_shared
  | Local -> iface.m_local

type entry = { mutable spc : int; smask : int; sreconv : int }

type t = {
  warp_id : int; (* index within the CTA *)
  cta_lin : int; (* linearized CTA id *)
  kernel : Ptx.Kernel.t;
  decode : Decode.t; (* predecoded per-pc tables, shared per launch *)
  env : Exec.env;
  threads : Exec.thread array;
  valid_mask : int; (* lanes that hold real threads *)
  params : (string, int64) Hashtbl.t;
  reconv_of_pc : int array; (* per-branch reconvergence pc, -1 = exit *)
  mem : mem_iface;
  scratch_addrs : int array; (* reused [mem_op.m_addrs] buffer *)
  mutable stack : entry list;
  mutable warp_insts : int;
  mutable thread_insts : int;
}

let popcount mask =
  let m = ref mask in
  let acc = ref 0 in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr acc
  done;
  !acc

let full_mask n = (1 lsl n) - 1

(* Precompute per-pc reconvergence points from the post-dominator tree;
   shared across all warps of a launch. *)
let reconvergence_table kernel =
  let cfg = Ptx.Cfg.build kernel in
  let pdom = Ptx.Dom.post_dominators cfg in
  Array.mapi
    (fun pc instr ->
      if Ptx.Instr.is_branch instr then
        match Ptx.Dom.reconvergence_pc cfg pdom pc with
        | Some r -> r
        | None -> -1
      else -1)
    kernel.Ptx.Kernel.body

let create ~warp_id ~cta_lin ~decode ~env ~threads ~valid_mask ~params
    ~reconv_of_pc ~mem kernel =
  {
    warp_id;
    cta_lin;
    kernel;
    decode;
    env;
    threads;
    valid_mask;
    params;
    reconv_of_pc;
    mem;
    scratch_addrs = Array.make (Array.length threads) (-1);
    stack = [ { spc = 0; smask = valid_mask; sreconv = -1 } ];
    warp_insts = 0;
    thread_insts = 0;
  }

let finished w = w.stack = []

let pc w = match w.stack with [] -> -1 | e :: _ -> e.spc

let active_mask w = match w.stack with [] -> 0 | e :: _ -> e.smask

let iter_active mask f =
  let m = ref mask in
  let lane = ref 0 in
  while !m <> 0 do
    if !m land 1 <> 0 then f !lane;
    m := !m lsr 1;
    incr lane
  done

(* Pop entries whose pc reached their own reconvergence point. *)
let rec merge w =
  match w.stack with
  | e :: rest when e.sreconv >= 0 && e.spc = e.sreconv ->
      w.stack <- rest;
      merge w
  | _ -> ()

let advance w npc =
  (match w.stack with
  | [] -> ()
  | e :: _ -> e.spc <- npc);
  merge w

let exec_branch w e pc guard target =
  let mask = e.smask in
  let taken_mask =
    match guard with
    | None -> mask
    | Some (polarity, p) ->
        let taken = ref 0 in
        let m = ref mask and lane = ref 0 in
        while !m <> 0 do
          if
            !m land 1 <> 0
            && w.threads.(!lane).Exec.preds.(p) = polarity
          then taken := !taken lor (1 lsl !lane);
          m := !m lsr 1;
          incr lane
        done;
        !taken
  in
  let not_taken = mask land lnot taken_mask in
  let fallthrough = pc + 1 in
  if taken_mask = 0 then advance w fallthrough
  else if not_taken = 0 then advance w target
  else begin
    (* divergence *)
    let r = w.reconv_of_pc.(pc) in
    if r >= 0 then begin
      e.spc <- r;
      (* e becomes the reconvergence entry *)
      w.stack <-
        { spc = target; smask = taken_mask; sreconv = r }
        :: { spc = fallthrough; smask = not_taken; sreconv = r }
        :: w.stack;
      (* a path that starts at the reconvergence point (e.g. the skip
         branch of an if) merges immediately — it must not run the
         post-reconvergence tail on its own *)
      merge w
    end
    else begin
      (* reconverges only at exit: replace with the two paths *)
      w.stack <- List.tl w.stack;
      w.stack <-
        { spc = target; smask = taken_mask; sreconv = -1 }
        :: { spc = fallthrough; smask = not_taken; sreconv = -1 }
        :: w.stack
    end
  end

let rec skip_labels w =
  match w.stack with
  | [] -> ()
  | e :: _ ->
      if w.decode.Decode.is_label.(e.spc) then begin
        advance w (e.spc + 1);
        skip_labels w
      end

(* Functional unit the next instruction will occupy, without executing
   it (used by the SM issue stage for structural-hazard checks). *)
let peek_unit w =
  skip_labels w;
  match w.stack with
  | [] -> Exec.SP
  | e :: _ -> w.decode.Decode.units.(e.spc)

(* Execute one warp instruction.  Assumes the warp is not finished. *)
let step_unguarded w : step_result =
  skip_labels w;
  match w.stack with
  | [] -> S_exit_warp
  | e :: _ -> (
      let pc = e.spc in
      let mask = e.smask in
      let instr = w.kernel.Ptx.Kernel.body.(pc) in
      w.warp_insts <- w.warp_insts + 1;
      w.thread_insts <- w.thread_insts + popcount mask;
      match instr with
      | Ptx.Instr.Label _ ->
          Sim_error.error Sim_error.Internal
            "step reached a label pseudo-instruction"
      | Ptx.Instr.Exit ->
          w.stack <- List.tl w.stack;
          merge w;
          if w.stack = [] then S_exit_warp else S_exit_partial
      | Ptx.Instr.Bar ->
          advance w (pc + 1);
          S_barrier
      | Ptx.Instr.Bra (guard, _) ->
          exec_branch w e pc guard w.decode.Decode.bra_target.(pc);
          S_alu Exec.SP
      | Ptx.Instr.Ld_param (d, p) ->
          let v =
            match Hashtbl.find_opt w.params p with
            | Some v -> v
            | None ->
                let bound =
                  Hashtbl.fold (fun k _ acc -> k :: acc) w.params []
                  |> List.sort compare
                in
                Sim_error.error Sim_error.Unbound_param
                  "kernel %s: parameter %s is not bound (bound: %s)"
                  w.kernel.Ptx.Kernel.kname p
                  (if bound = [] then "none" else String.concat ", " bound)
          in
          iter_active mask (fun lane -> w.threads.(lane).Exec.regs.(d) <- v);
          advance w (pc + 1);
          S_alu Exec.SP
      | Ptx.Instr.Ld (sp, ty, d, a) ->
          (* [scratch_addrs] is only ever read through [m_mask], so
             inactive-lane slots may hold stale values.  The common
             register-base address is specialised to keep the per-lane
             body free of operand dispatch. *)
          let addrs = w.scratch_addrs in
          let mm = mem_of_space w.mem sp in
          (match a.abase with
          | Reg r ->
              let off = a.aoffset in
              let m = ref mask and lane = ref 0 in
              while !m <> 0 do
                (if !m land 1 <> 0 then begin
                   let th = w.threads.(!lane) in
                   let addr = Int64.to_int th.Exec.regs.(r) + off in
                   addrs.(!lane) <- addr;
                   th.Exec.regs.(d) <- Mem.load mm ty addr
                 end);
                m := !m lsr 1;
                incr lane
              done
          | _ ->
              iter_active mask (fun lane ->
                  let th = w.threads.(lane) in
                  let addr = Exec.eval_addr w.env th a in
                  addrs.(lane) <- addr;
                  th.Exec.regs.(d) <- Mem.load mm ty addr));
          advance w (pc + 1);
          S_mem
            { m_pc = pc; m_space = sp; m_kind = Load; m_dtype = ty;
              m_mask = mask; m_addrs = addrs }
      | Ptx.Instr.St (sp, ty, a, v) ->
          let addrs = w.scratch_addrs in
          let mm = mem_of_space w.mem sp in
          (match (a.abase, v) with
          | Reg r, Reg rv ->
              let off = a.aoffset in
              let m = ref mask and lane = ref 0 in
              while !m <> 0 do
                (if !m land 1 <> 0 then begin
                   let th = w.threads.(!lane) in
                   let addr = Int64.to_int th.Exec.regs.(r) + off in
                   addrs.(!lane) <- addr;
                   Mem.store mm ty addr th.Exec.regs.(rv)
                 end);
                m := !m lsr 1;
                incr lane
              done
          | _ ->
              iter_active mask (fun lane ->
                  let th = w.threads.(lane) in
                  let addr = Exec.eval_addr w.env th a in
                  addrs.(lane) <- addr;
                  Mem.store mm ty addr (Exec.eval_operand w.env th v)));
          advance w (pc + 1);
          S_mem
            { m_pc = pc; m_space = sp; m_kind = Store; m_dtype = ty;
              m_mask = mask; m_addrs = addrs }
      | Ptx.Instr.Atom (op, ty, d, a, v) ->
          let addrs = w.scratch_addrs in
          iter_active mask (fun lane ->
              let th = w.threads.(lane) in
              let addr = Exec.eval_addr w.env th a in
              addrs.(lane) <- addr;
              th.Exec.regs.(d) <-
                w.mem.atomic op ty addr (Exec.eval_operand w.env th v));
          advance w (pc + 1);
          S_mem
            { m_pc = pc; m_space = Global; m_kind = Atomic; m_dtype = ty;
              m_mask = mask; m_addrs = addrs }
      | Ptx.Instr.Mov _ | Ptx.Instr.Iop _ | Ptx.Instr.Mad _ | Ptx.Instr.Fop _
      | Ptx.Instr.Fma _ | Ptx.Instr.Funary _ | Ptx.Instr.Cvt _
      | Ptx.Instr.Setp _ | Ptx.Instr.Selp _ | Ptx.Instr.Pnot _
      | Ptx.Instr.Pand _ | Ptx.Instr.Por _ ->
          w.decode.Decode.alu.(pc) w.env w.threads mask;
          advance w (pc + 1);
          S_alu w.decode.Decode.units.(pc))

(* [step_unguarded] with execution context attached to any simulator
   fault: faulting instructions do not advance the pc, so [pc w] at
   catch time still names them.  Division by zero (corrupt data feeding
   div/rem) is promoted to a structured error here too. *)
let step w : step_result =
  try step_unguarded w with
  | Sim_error.Error e ->
      raise
        (Sim_error.Error
           (Sim_error.with_context ~kernel:w.kernel.Ptx.Kernel.kname
              ~pc:(pc w) ~cta:w.cta_lin ~warp:w.warp_id e))
  | Division_by_zero ->
      Sim_error.error ~kernel:w.kernel.Ptx.Kernel.kname ~pc:(pc w)
        ~cta:w.cta_lin ~warp:w.warp_id Sim_error.Arith_fault
        "integer division by zero"
