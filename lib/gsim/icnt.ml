(* Interconnection network between the SMs and the memory partitions.

   Request path: each SM owns a finite injection buffer
   ([icnt_buffer_size] credits).  The L1 checks [can_inject] before
   declaring a miss — a full buffer is the paper's "reservation fail by
   interconnection".  Requests arrive at their partition after
   [icnt_latency] cycles and are consumed by the partition's input
   queue; a credit returns to the SM when its request is consumed.

   Response path: modelled with the same latency but unlimited
   buffering (fills are drained at a fixed rate by the SMs). *)

type t = {
  cfg : Config.t;
  trace : Trace.t;
  to_part : Request.t Queue.t array; (* per partition, FIFO by arrival *)
  to_sm : Request.t Queue.t array; (* per SM, FIFO by arrival *)
  sm_inflight : int array; (* outstanding credits used per SM *)
}

let create ?(trace = Trace.null ()) (cfg : Config.t) =
  {
    cfg;
    trace;
    to_part = Array.init cfg.Config.n_mem_partitions (fun _ -> Queue.create ());
    to_sm = Array.init cfg.Config.n_sms (fun _ -> Queue.create ());
    sm_inflight = Array.make cfg.Config.n_sms 0;
  }

(* Memory partition servicing a line address.  Under the Section X.C
   semi-global-L2 ablation each cluster of SMs owns a private subset of
   the partitions, so the partition depends on the requesting SM too. *)
let partition_of (cfg : Config.t) ~sm line_addr =
  let n = cfg.Config.n_mem_partitions in
  let line = line_addr / cfg.Config.line_size in
  if cfg.Config.l2_cluster <= 0 then line mod n
  else begin
    let n_clusters =
      (cfg.Config.n_sms + cfg.Config.l2_cluster - 1) / cfg.Config.l2_cluster
    in
    let parts_per_cluster = max 1 (n / n_clusters) in
    let cluster = sm / cfg.Config.l2_cluster in
    let base = cluster * parts_per_cluster mod n in
    base + (line mod parts_per_cluster)
  end

let can_inject t ~sm = t.sm_inflight.(sm) < t.cfg.Config.icnt_buffer_size

let emit_xfer t ~cycle ~dir ~enq (req : Request.t) ~part =
  if Trace.enabled t.trace then begin
    let sm = req.Request.sm_id and line = req.Request.line_addr in
    Trace.emit t.trace
      (if enq then Trace.Ev_icnt_enq { cycle; dir; sm; part; line }
       else Trace.Ev_icnt_deq { cycle; dir; sm; part; line })
  end

let inject_request t ~now (req : Request.t) =
  let part = partition_of t.cfg ~sm:req.Request.sm_id req.Request.line_addr in
  req.Request.t_icnt <- now;
  req.Request.t_arrive <- now + t.cfg.Config.icnt_latency;
  t.sm_inflight.(req.Request.sm_id) <- t.sm_inflight.(req.Request.sm_id) + 1;
  emit_xfer t ~cycle:now ~dir:Trace.Dir_req ~enq:true req ~part;
  Queue.push req t.to_part.(part)

(* Head request for the partition if it has arrived; consuming it
   returns the credit to its SM. *)
let pop_request t ~now ~part =
  let q = t.to_part.(part) in
  if Queue.is_empty q then None
  else begin
    let req = Queue.peek q in
    if req.Request.t_arrive <= now then begin
      ignore (Queue.pop q);
      t.sm_inflight.(req.Request.sm_id) <-
        t.sm_inflight.(req.Request.sm_id) - 1;
      emit_xfer t ~cycle:now ~dir:Trace.Dir_req ~enq:false req ~part;
      Some req
    end
    else None
  end

let inject_response t ~now (req : Request.t) =
  req.Request.t_resp_arrive <- now + t.cfg.Config.icnt_latency;
  emit_xfer t ~cycle:now ~dir:Trace.Dir_resp ~enq:true req
    ~part:(partition_of t.cfg ~sm:req.Request.sm_id req.Request.line_addr);
  Queue.push req t.to_sm.(req.Request.sm_id)

let pop_response t ~now ~sm =
  let q = t.to_sm.(sm) in
  if Queue.is_empty q then None
  else begin
    let req = Queue.peek q in
    if req.Request.t_resp_arrive <= now then begin
      ignore (Queue.pop q);
      emit_xfer t ~cycle:now ~dir:Trace.Dir_resp ~enq:false req
        ~part:
          (partition_of t.cfg ~sm:req.Request.sm_id req.Request.line_addr);
      Some req
    end
    else None
  end

let pending_responses t ~sm = Queue.length t.to_sm.(sm)

(* Allocation-free per-cycle probe: has the head response for [sm]
   arrived?  Lets the SM skip its return-processing phase entirely on
   the (common) cycles with nothing to drain. *)
let response_arrived t ~now ~sm =
  let q = t.to_sm.(sm) in
  (not (Queue.is_empty q)) && (Queue.peek q).Request.t_resp_arrive <= now

(* Fast-forward contract: earliest cycle at which an in-flight transfer
   matures — [max_int] when nothing is in flight, any value [<= now]
   means a head has already arrived and its consumer must run.  Both
   queue families are FIFO in arrival time (the latency is a constant
   added to a monotone enqueue clock), so only the heads need
   inspecting; the scan is allocation-free. *)
let next_wake t ~now:_ =
  let horizon = ref max_int in
  Array.iter
    (fun q ->
      if not (Queue.is_empty q) then begin
        let c = (Queue.peek q).Request.t_arrive in
        if c < !horizon then horizon := c
      end)
    t.to_part;
  Array.iter
    (fun q ->
      if not (Queue.is_empty q) then begin
        let c = (Queue.peek q).Request.t_resp_arrive in
        if c < !horizon then horizon := c
      end)
    t.to_sm;
  !horizon
