(* Interconnection network between the SMs and the memory partitions.

   Request path: each SM owns a finite injection buffer
   ([icnt_buffer_size] credits).  The L1 checks [can_inject] before
   declaring a miss — a full buffer is the paper's "reservation fail by
   interconnection".  Requests arrive at their partition after
   [icnt_latency] cycles and are consumed by the partition's input
   queue; a credit returns to the SM when its request is consumed.

   Response path: modelled with the same latency but unlimited
   buffering (fills are drained at a fixed rate by the SMs). *)

type t = {
  cfg : Config.t;
  trace : Trace.t;
  to_part : Request.t Queue.t array; (* per partition, FIFO by arrival *)
  to_sm : Request.t Queue.t array; (* per SM, FIFO by arrival *)
  sm_inflight : int array; (* outstanding credits used per SM *)
}

let create ?(trace = Trace.null ()) (cfg : Config.t) =
  {
    cfg;
    trace;
    to_part = Array.init cfg.Config.n_mem_partitions (fun _ -> Queue.create ());
    to_sm = Array.init cfg.Config.n_sms (fun _ -> Queue.create ());
    sm_inflight = Array.make cfg.Config.n_sms 0;
  }

(* Memory partition servicing a line address.  Under the Section X.C
   semi-global-L2 ablation each cluster of SMs owns a private subset of
   the partitions, so the partition depends on the requesting SM too. *)
let partition_of (cfg : Config.t) ~sm line_addr =
  let n = cfg.Config.n_mem_partitions in
  let line = line_addr / cfg.Config.line_size in
  if cfg.Config.l2_cluster <= 0 then line mod n
  else begin
    let n_clusters =
      (cfg.Config.n_sms + cfg.Config.l2_cluster - 1) / cfg.Config.l2_cluster
    in
    let parts_per_cluster = max 1 (n / n_clusters) in
    let cluster = sm / cfg.Config.l2_cluster in
    let base = cluster * parts_per_cluster mod n in
    base + (line mod parts_per_cluster)
  end

let can_inject t ~sm = t.sm_inflight.(sm) < t.cfg.Config.icnt_buffer_size

let emit_xfer t ~cycle ~dir ~enq (req : Request.t) ~part =
  if Trace.enabled t.trace then begin
    let sm = req.Request.sm_id and line = req.Request.line_addr in
    Trace.emit t.trace
      (if enq then Trace.Ev_icnt_enq { cycle; dir; sm; part; line }
       else Trace.Ev_icnt_deq { cycle; dir; sm; part; line })
  end

let inject_request t ~now (req : Request.t) =
  let part = partition_of t.cfg ~sm:req.Request.sm_id req.Request.line_addr in
  req.Request.t_icnt <- now;
  req.Request.t_arrive <- now + t.cfg.Config.icnt_latency;
  t.sm_inflight.(req.Request.sm_id) <- t.sm_inflight.(req.Request.sm_id) + 1;
  emit_xfer t ~cycle:now ~dir:Trace.Dir_req ~enq:true req ~part;
  Queue.push req t.to_part.(part)

(* Head request for the partition if it has arrived; consuming it
   returns the credit to its SM. *)
let pop_request t ~now ~part =
  match Queue.peek_opt t.to_part.(part) with
  | Some req when req.Request.t_arrive <= now ->
      ignore (Queue.pop t.to_part.(part));
      t.sm_inflight.(req.Request.sm_id) <-
        t.sm_inflight.(req.Request.sm_id) - 1;
      emit_xfer t ~cycle:now ~dir:Trace.Dir_req ~enq:false req ~part;
      Some req
  | Some _ | None -> None

let inject_response t ~now (req : Request.t) =
  req.Request.t_resp_arrive <- now + t.cfg.Config.icnt_latency;
  emit_xfer t ~cycle:now ~dir:Trace.Dir_resp ~enq:true req
    ~part:(partition_of t.cfg ~sm:req.Request.sm_id req.Request.line_addr);
  Queue.push req t.to_sm.(req.Request.sm_id)

let pop_response t ~now ~sm =
  match Queue.peek_opt t.to_sm.(sm) with
  | Some req when req.Request.t_resp_arrive <= now ->
      ignore (Queue.pop t.to_sm.(sm));
      emit_xfer t ~cycle:now ~dir:Trace.Dir_resp ~enq:false req
        ~part:
          (partition_of t.cfg ~sm:req.Request.sm_id req.Request.line_addr);
      Some req
  | Some _ | None -> None

let pending_responses t ~sm = Queue.length t.to_sm.(sm)

(* Fast-forward contract: earliest cycle >= now at which an in-flight
   transfer matures.  Both queue families are FIFO in arrival time
   (the latency is a constant added to a monotone enqueue clock), so
   only the heads need inspecting.  [Some now] — a head has already
   arrived and its consumer must run; [None] — nothing in flight. *)
let next_wake t ~now =
  let active = ref false in
  let horizon = ref max_int in
  let candidate c =
    if c <= now then active := true else if c < !horizon then horizon := c
  in
  Array.iter
    (fun q ->
      match Queue.peek_opt q with
      | Some req -> candidate req.Request.t_arrive
      | None -> ())
    t.to_part;
  Array.iter
    (fun q ->
      match Queue.peek_opt q with
      | Some req -> candidate req.Request.t_resp_arrive
      | None -> ())
    t.to_sm;
  if !active then Some now
  else if !horizon = max_int then None
  else Some !horizon
