(** Per-kernel predecoded instruction tables.

    The issue stage and the warp stepper used to re-inspect the
    instruction variant — and chase label/classification hash tables —
    on every warp instruction of every warp.  All of that is a pure
    function of the kernel body, so it is computed once per launch and
    shared by every warp (like {!Warp.reconvergence_table}):

    - [units]       functional unit per pc ({!Exec.unit_of_instr});
    - [bra_target]  branch-target pc per pc (-1 for non-branches),
                    replacing the per-execution label lookup;
    - [is_label]    label pseudo-instruction flags, for the skip loop;
    - [load_cls]    D/N class per pc ([Deterministic] for pcs that are
                    not global loads), replacing the per-issue
                    classification table lookup;
    - [alu]         compiled executor per pc ({!Exec.compile_alu}):
                    operand-shape dispatch done once here, so the
                    stepper's ALU path is one indirect call. *)

type t = {
  units : Exec.unit_class array;
  bra_target : int array;
  is_label : bool array;
  load_cls : Dataflow.Classify.load_class array;
  alu : (Exec.env -> Exec.thread array -> int -> unit) array;
}

val of_kernel : Ptx.Kernel.t -> Dataflow.Classify.result -> t
