(** Minimal serial set-associative LRU cache: every access resolves
    immediately (hit, or miss + fill).  Used by the functional
    simulator to emulate the CUDA-profiler hit/miss counters
    (Table III), where no in-flight state is involved. *)

type t = {
  sets : int;
  ways : int;
  line_size : int;
  tags : int array array;
  lru : int array array;
  mutable time : int;
  mutable hits : int;
  mutable misses : int;
}

val create : sets:int -> ways:int -> line_size:int -> t
val line_addr : t -> int -> int

val access : t -> int -> bool
(** Access one line address; true on hit.  Misses allocate (LRU). *)

val accesses : t -> int
(** Completed accesses (hits + misses) — each logical access exactly
    once, the convention {!Cache.completed_accesses} mirrors so
    trace-derived counts reconcile across both cache models. *)

val miss_ratio : t -> float
