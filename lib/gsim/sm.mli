(** Streaming-multiprocessor timing model.

    Per cycle: (1) returning fills and local L1-hit completions wake
    waiting warps; (2) the LD/ST unit pushes at most one coalesced
    request per cycle into the L1, recording hit / hit-reserved / miss
    / reservation-fail outcomes (Fig 3) — the trailing requests of a
    multi-request warp load waiting here are the paper's "rsrv fail by
    a current warp"; (3) the issue stage picks one ready warp (loose
    round-robin) whose functional unit is free.  Unit occupancy is
    sampled every cycle for Fig 4. *)

type t

val create :
  ?trace:Trace.t -> Config.t -> id:int -> stats:Stats.t -> warp_slots:int -> t
(** [?trace] defaults to a null sink; emission sites are guarded by
    {!Trace.enabled} so the disabled path costs one mutable-field
    read. *)

val reconfigure : t -> warp_slots:int -> warps_per_cta:int -> unit
(** Resize the warp-slot table for a new launch and tell the memory
    policy the new occupancy shape ({!Mempolicy.reconfigure}); caches
    persist across kernel boundaries.  Only legal when no CTAs are
    resident. *)

val free_slots : t -> int

val try_launch : t -> Launch.t -> cta_lin:int -> bool
(** Place a CTA in contiguous free slots; false when it does not fit. *)

val cycle : t -> now:int -> icnt:Icnt.t -> unit
val idle : t -> bool

val next_wake : t -> now:int -> int
(** Fast-forward contract: earliest cycle at which the SM can make
    progress without an external stimulus.  A value [<= now] — active
    this cycle (non-empty LD/ST queue, a ready warp, an expired block,
    or a matured local hit); [now < c < max_int] — quiescent until [c]
    (earliest block expiry / L1-hit completion); [max_int] — only an
    interconnect response can wake it.  O(1) and allocation-free.
    Busy functional units are not wake sources; their skipped occupancy
    samples are restored by {!account_idle}. *)

val account_idle : t -> now:int -> until:int -> unit
(** Batch-account the per-cycle unit-occupancy samples the naive loop
    would have taken over the skipped quiescent range [\[now, until)],
    keeping fast-forwarded {!Stats.t} byte-identical to naive runs. *)

val occupancy_sample : t -> int * int
(** (in-flight L1 MSHR entries, LD/ST queue depth) — the per-SM
    occupancy timeline {!Gpu.step} samples when tracing. *)

val barrier_waiters : t -> (int * int * int) list
(** [(cta, warp, pc)] of every warp parked at a barrier; the stall
    watchdog uses this to tell a barrier deadlock from a livelock. *)

