(** CTA instantiation: the warps of one thread block, its shared
    memory, and the memory interface its threads use.  Local memory is
    a per-CTA scratch buffer; const/tex read the global image (their
    caches are not modelled). *)

type t = {
  cta_lin : int;
  warps : Warp.t array;
  shared : Mem.t;
  launch : Launch.t;
}

val create : Launch.t -> warp_size:int -> cta_lin:int -> t
val n_warps : t -> int
val all_finished : t -> bool
