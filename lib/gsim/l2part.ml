(* One memory partition: a slice of the unified L2 cache plus its DRAM
   channel.

   Each cycle the partition (a) completes DRAM transactions whose data
   is ready, filling the L2 and releasing MSHR waiters, (b) completes
   pending L2 hits after the ROP latency, (c) accepts newly arrived
   interconnect requests into a finite input queue, and (d) processes
   the queue head: stores write-allocate and stream to DRAM
   (fire-and-forget), loads probe the L2 with hit / hit-reserved /
   miss / reservation-fail outcomes mirroring the L1 model. *)

type dram_txn = { d_line : int; d_ready : int; d_write : bool }

type pending_hit = { h_req : Request.t; h_ready : int }

type t = {
  id : int;
  cfg : Config.t;
  stats : Stats.t;
  trace : Trace.t;
  cache : Cache.t;
  input : Request.t Queue.t;
  dram : dram_txn Queue.t;
  hits : pending_hit Queue.t;
  resp : Request.t Queue.t;
  mutable dram_next_free : int;
  mutable rsrv_fails : int;
  mutable dram_reads : int;
  mutable dram_writes : int;
}

let create ?(trace = Trace.null ()) (cfg : Config.t) ~id ~stats =
  {
    id;
    cfg;
    stats;
    trace;
    cache =
      Cache.create ~sets:cfg.Config.l2_sets ~ways:cfg.Config.l2_ways
        ~line_size:cfg.Config.line_size
        ~mshr_entries:cfg.Config.l2_mshr_entries
        ~mshr_max_merge:cfg.Config.l1_mshr_max_merge;
    input = Queue.create ();
    dram = Queue.create ();
    hits = Queue.create ();
    resp = Queue.create ();
    dram_next_free = 0;
    rsrv_fails = 0;
    dram_reads = 0;
    dram_writes = 0;
  }

let respond t ~now ~(level : Request.level) (req : Request.t) =
  req.Request.t_serviced <- now;
  req.Request.level <- Request.deeper req.Request.level level;
  Queue.push req t.resp

(* Schedule a DRAM transaction; returns its completion time.  The
   channel issues one burst every [dram_interval] cycles. *)
let schedule_dram t ~start ~line ~write =
  let begin_at = max start t.dram_next_free in
  t.dram_next_free <- begin_at + t.cfg.Config.dram_interval;
  if write then t.dram_writes <- t.dram_writes + 1
  else t.dram_reads <- t.dram_reads + 1;
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Ev_dram_enq { cycle = begin_at; part = t.id; line; write });
  let ready = begin_at + t.cfg.Config.dram_latency in
  if not write then Queue.push { d_line = line; d_ready = ready; d_write = write } t.dram;
  ready

let dram_has_space t = Queue.length t.dram < t.cfg.Config.dram_queue_size

let cycle t ~now ~icnt =
  let cfg = t.cfg in
  (* (a) DRAM completions: fill L2, release waiters *)
  let continue_ = ref true in
  while !continue_ && not (Queue.is_empty t.dram) do
    let txn = Queue.peek t.dram in
    if txn.d_ready <= now then begin
      ignore (Queue.pop t.dram);
      let waiters = Cache.fill t.cache ~line_addr:txn.d_line in
      if Trace.enabled t.trace then begin
        Trace.emit t.trace
          (Trace.Ev_dram_deq { cycle = now; part = t.id; line = txn.d_line });
        Trace.emit t.trace
          (Trace.Ev_mshr_free
             { cycle = now; where = Trace.S_l2 t.id; line = txn.d_line;
               waiters = List.length waiters })
      end;
      List.iter (fun req -> respond t ~now ~level:Request.Lvl_dram req) waiters
    end
    else continue_ := false
  done;
  (* (b) L2 hits whose ROP latency elapsed *)
  let continue_ = ref true in
  while !continue_ && not (Queue.is_empty t.hits) do
    let h = Queue.peek t.hits in
    if h.h_ready <= now then begin
      ignore (Queue.pop t.hits);
      respond t ~now ~level:Request.Lvl_l2 h.h_req
    end
    else continue_ := false
  done;
  (* (c) accept arrived interconnect requests into the input queue *)
  let continue_ = ref true in
  while !continue_ && Queue.length t.input < cfg.Config.l2_input_queue_size do
    match Icnt.pop_request icnt ~now ~part:t.id with
    | Some req -> Queue.push req t.input
    | None -> continue_ := false
  done;
  (* (d) process the input-queue head *)
  (if not (Queue.is_empty t.input) then begin
     let req = Queue.peek t.input in
      if req.Request.t_l2_start < 0 then req.Request.t_l2_start <- now;
      match req.Request.kind with
      | Request.Store ->
          if Cache.write_allocate t.cache ~line_addr:req.Request.line_addr
          then begin
            ignore (Queue.pop t.input);
            if Trace.enabled t.trace then
              Trace.emit t.trace
                (Trace.Ev_access
                   { cycle = now; where = Trace.S_l2 t.id;
                     line = req.Request.line_addr; src = Trace.A_store;
                     outcome = Cache.Miss });
            (* write-through to DRAM, no response expected *)
            ignore
              (schedule_dram t ~start:(now + cfg.Config.l2_latency)
                 ~line:req.Request.line_addr ~write:true)
          end
          else begin
            t.rsrv_fails <- t.rsrv_fails + 1;
            t.stats.Stats.l2_rsrv_fails <- t.stats.Stats.l2_rsrv_fails + 1;
            if Trace.enabled t.trace then
              Trace.emit t.trace
                (Trace.Ev_access
                   { cycle = now; where = Trace.S_l2 t.id;
                     line = req.Request.line_addr; src = Trace.A_store;
                     outcome = Cache.Rsrv_fail Cache.Fail_tags })
          end
      | Request.Load | Request.Atomic -> (
          let owner_cta =
            if Trace.enabled t.trace then
              Cache.mshr_owner_cta t.cache ~line_addr:req.Request.line_addr
            else -1
          in
          let outcome =
            Cache.access_load t.cache ~req ~icnt_ok:(dram_has_space t)
          in
          (if Trace.enabled t.trace then begin
             let src =
               if req.Request.wl = None && req.Request.cta < 0 then
                 Trace.A_prefetch
               else Trace.A_load req.Request.cls
             in
             Trace.emit t.trace
               (Trace.Ev_access
                  { cycle = now; where = Trace.S_l2 t.id;
                    line = req.Request.line_addr; src; outcome });
             match outcome with
             | Cache.Miss ->
                 Trace.emit t.trace
                   (Trace.Ev_mshr_alloc
                      { cycle = now; where = Trace.S_l2 t.id;
                        line = req.Request.line_addr;
                        cta = req.Request.cta })
             | Cache.Hit_reserved ->
                 Trace.emit t.trace
                   (Trace.Ev_mshr_merge
                      { cycle = now; where = Trace.S_l2 t.id;
                        line = req.Request.line_addr;
                        cta = req.Request.cta; owner_cta })
             | Cache.Hit | Cache.Rsrv_fail _ -> ()
           end);
          match outcome with
          | Cache.Hit ->
              ignore (Queue.pop t.input);
              Stats.record_l2_access t.stats req.Request.cls ~miss:false;
              Queue.push
                { h_req = req; h_ready = now + cfg.Config.l2_latency }
                t.hits
          | Cache.Hit_reserved ->
              ignore (Queue.pop t.input);
              Stats.record_l2_access t.stats req.Request.cls ~miss:false
          | Cache.Miss ->
              ignore (Queue.pop t.input);
              Stats.record_l2_access t.stats req.Request.cls ~miss:true;
              ignore
                (schedule_dram t ~start:(now + cfg.Config.l2_latency)
                   ~line:req.Request.line_addr ~write:false)
          | Cache.Rsrv_fail _ ->
              t.rsrv_fails <- t.rsrv_fails + 1;
              t.stats.Stats.l2_rsrv_fails <- t.stats.Stats.l2_rsrv_fails + 1)
   end);
  (* (e) inject one response back towards its SM *)
  match Queue.take_opt t.resp with
  | Some req -> Icnt.inject_response icnt ~now req
  | None -> ()

let idle t =
  Queue.is_empty t.input && Queue.is_empty t.dram && Queue.is_empty t.hits
  && Queue.is_empty t.resp

(* Fast-forward contract: earliest cycle at which the partition can
   make progress on its own — [max_int] when nothing is pending, any
   value [<= now] means it is active this cycle.  A non-empty input
   queue is active every cycle (the head is retried, mutating
   reservation-fail stats on failure), as is a pending response
   injection.  The DRAM and ROP-hit queues are FIFO in ready time —
   DRAM ready times are [begin_at + dram_latency] with [begin_at]
   monotone by construction of [schedule_dram], hit ready times are a
   constant past a monotone enqueue clock — so only their heads need
   inspecting; the probe is allocation-free. *)
let next_wake t ~now =
  if not (Queue.is_empty t.input) || not (Queue.is_empty t.resp) then now
  else begin
    let horizon = ref max_int in
    if not (Queue.is_empty t.dram) then begin
      let c = (Queue.peek t.dram).d_ready in
      if c < !horizon then horizon := c
    end;
    if not (Queue.is_empty t.hits) then begin
      let c = (Queue.peek t.hits).h_ready in
      if c < !horizon then horizon := c
    end;
    !horizon
  end
