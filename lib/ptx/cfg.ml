(* Control-flow graph over a kernel's instruction array.

   Blocks are maximal straight-line pc ranges.  Leaders are: pc 0, every
   Label, and every pc following a branch or exit.  A conditional branch
   has two successors (target, fallthrough); an unconditional branch one;
   Exit none. *)

type block = {
  bid : int;
  first : int; (* first pc of the block *)
  last : int; (* last pc of the block (inclusive) *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  kernel : Kernel.t;
  blocks : block array;
  block_of_pc : int array; (* pc -> bid *)
}

let build (k : Kernel.t) =
  let n = Array.length k.body in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc instr ->
      match instr with
      | Instr.Label _ -> leader.(pc) <- true
      | Instr.Bra (_, l) ->
          if pc + 1 < n then leader.(pc + 1) <- true;
          leader.(Kernel.label_pc k l) <- true
      | Instr.Exit -> if pc + 1 < n then leader.(pc + 1) <- true
      | _ -> ())
    k.body;
  let block_of_pc = Array.make n (-1) in
  let blocks = ref [] in
  let nblocks = ref 0 in
  let start = ref 0 in
  for pc = 0 to n - 1 do
    if pc > 0 && leader.(pc) then begin
      blocks :=
        { bid = !nblocks; first = !start; last = pc - 1; succs = []; preds = [] }
        :: !blocks;
      incr nblocks;
      start := pc
    end;
    block_of_pc.(pc) <- !nblocks
  done;
  blocks :=
    { bid = !nblocks; first = !start; last = n - 1; succs = []; preds = [] }
    :: !blocks;
  let blocks = Array.of_list (List.rev !blocks) in
  (* successor edges *)
  Array.iter
    (fun b ->
      let add_edge dst =
        if not (List.mem dst b.succs) then begin
          b.succs <- dst :: b.succs;
          let d = blocks.(dst) in
          if not (List.mem b.bid d.preds) then d.preds <- b.bid :: d.preds
        end
      in
      match k.body.(b.last) with
      | Instr.Bra (guard, l) ->
          add_edge block_of_pc.(Kernel.label_pc k l);
          (match guard with
          | Some _ when b.last + 1 < n -> add_edge block_of_pc.(b.last + 1)
          | Some _ | None -> ())
      | Instr.Exit -> ()
      | _ -> if b.last + 1 < n then add_edge block_of_pc.(b.last + 1))
    blocks;
  { kernel = k; blocks; block_of_pc }

let nblocks t = Array.length t.blocks
let block t bid = t.blocks.(bid)
let block_of_pc t pc = t.block_of_pc.(pc)
let entry _ = 0

(* Blocks whose last instruction is Exit (or which fall off the end). *)
let exit_blocks t =
  Array.to_list t.blocks
  |> List.filter_map (fun b ->
         match t.kernel.Kernel.body.(b.last) with
         | Instr.Exit -> Some b.bid
         | _ -> if b.succs = [] then Some b.bid else None)

(* Reverse postorder over forward edges, starting at entry. *)
let reverse_postorder t =
  let n = nblocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs t.blocks.(b).succs;
      order := b :: !order
    end
  in
  dfs 0;
  !order

(* Graphviz rendering of the CFG (one record node per basic block). *)
let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  node [shape=box, fontname=monospace];\n"
       t.kernel.Kernel.kname);
  Array.iter
    (fun b ->
      let body = Buffer.create 128 in
      for pc = b.first to b.last do
        Buffer.add_string body
          (Printf.sprintf "%d: %s\\l" pc
             (String.concat ""
                (String.split_on_char '"'
                   (Instr.to_string t.kernel.Kernel.body.(pc)))))
      done;
      Buffer.add_string buf
        (Printf.sprintf "  B%d [label=\"B%d\\n%s\"];\n" b.bid b.bid
           (Buffer.contents body));
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  B%d -> B%d;\n" b.bid s))
        b.succs)
    t.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d [%d..%d] -> %a@\n" b.bid b.first b.last
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (List.sort compare b.succs))
    t.blocks
