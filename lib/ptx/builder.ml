(* Imperative eDSL for constructing kernels.

   Emitter functions append an instruction and return the destination as
   an operand, so address computations compose naturally:

     let tid = B.special b (Tid X) in
     let idx = B.add b (B.mul b (B.special b (Ctaid X)) (B.int 256)) tid in
     let v = B.ld b Global U32 (B.at ~base:mask_ptr idx ~scale:4) in
     ...

   [finish] validates the kernel. *)

open Types

type t = {
  name : string;
  params : Kernel.param list;
  smem_bytes : int;
  mutable instrs : Instr.t list; (* reversed *)
  mutable nregs : int;
  mutable npregs : int;
  mutable nlabels : int;
}

let create ~name ~params ?(smem_bytes = 0) () =
  { name; params; smem_bytes; instrs = []; nregs = 0; npregs = 0; nlabels = 0 }

let emit b i = b.instrs <- i :: b.instrs

let fresh_reg b =
  let r = b.nregs in
  b.nregs <- r + 1;
  r

let fresh_pred b =
  let p = b.npregs in
  b.npregs <- p + 1;
  p

let fresh_label b prefix =
  let n = b.nlabels in
  b.nlabels <- n + 1;
  Printf.sprintf "%s_%d" prefix n

(* Operand constructors. *)
let int n = Imm (Int64.of_int n)
let int64 n = Imm n
let float f = Fimm f
let special s = Sreg s
let tid_x = Sreg (Tid X)
let tid_y = Sreg (Tid Y)
let ctaid_x = Sreg (Ctaid X)
let ctaid_y = Sreg (Ctaid Y)
let ntid_x = Sreg (Ntid X)
let ntid_y = Sreg (Ntid Y)
let nctaid_x = Sreg (Nctaid X)

(* Address of [base + idx*scale + off]; emits the arithmetic. *)
let def1 b mk =
  let d = fresh_reg b in
  emit b (mk d);
  Reg d

let mov b s = def1 b (fun d -> Instr.Mov (d, s))
let iop b o x y = def1 b (fun d -> Instr.Iop (o, d, x, y))
let add b x y = iop b Add x y
let sub b x y = iop b Sub x y
let mul b x y = iop b Mul x y
let div b x y = iop b Div x y
let rem b x y = iop b Rem x y
let min_ b x y = iop b Min x y
let max_ b x y = iop b Max x y
let band b x y = iop b Band x y
let bor b x y = iop b Bor x y
let bxor b x y = iop b Bxor x y
let shl b x y = iop b Shl x y
let shr b x y = iop b Shr x y
let mad b x y z = def1 b (fun d -> Instr.Mad (d, x, y, z))
let fop b o ?(ty = F32) x y = def1 b (fun d -> Instr.Fop (o, ty, d, x, y))
let fadd b ?ty x y = fop b Fadd ?ty x y
let fsub b ?ty x y = fop b Fsub ?ty x y
let fmul b ?ty x y = fop b Fmul ?ty x y
let fdiv b ?ty x y = fop b Fdiv ?ty x y
let fma b ?(ty = F32) x y z = def1 b (fun d -> Instr.Fma (ty, d, x, y, z))
let funary b o ?(ty = F32) x = def1 b (fun d -> Instr.Funary (o, ty, d, x))
let cvt b ~dst_ty ~src_ty x = def1 b (fun d -> Instr.Cvt (dst_ty, src_ty, d, x))
let ld_param b p = def1 b (fun d -> Instr.Ld_param (d, p))

let addr ?(off = 0) base = { abase = base; aoffset = off }

(* base + idx*scale, emitted as a mad when scale <> 1. *)
let at b ~base ?(scale = 1) ?(off = 0) idx =
  let eff =
    if scale = 1 then add b base idx else mad b idx (int scale) base
  in
  addr ~off eff

let ld b sp ty a = def1 b (fun d -> Instr.Ld (sp, ty, d, a))
let st b sp ty a v = emit b (Instr.St (sp, ty, a, v))
let atom b o ty a v = def1 b (fun d -> Instr.Atom (o, ty, d, a, v))

let setp b c ?(ty = S64) x y =
  let p = fresh_pred b in
  emit b (Instr.Setp (c, ty, p, x, y));
  p

let selp b x y p = def1 b (fun d -> Instr.Selp (d, x, y, p))

let pnot b p =
  let d = fresh_pred b in
  emit b (Instr.Pnot (d, p));
  d

let pand b p q =
  let d = fresh_pred b in
  emit b (Instr.Pand (d, p, q));
  d

let por b p q =
  let d = fresh_pred b in
  emit b (Instr.Por (d, p, q));
  d

let label b l = emit b (Instr.Label l)
let bra b l = emit b (Instr.Bra (None, l))
let bra_if b p l = emit b (Instr.Bra (Some (true, p), l))
let bra_ifnot b p l = emit b (Instr.Bra (Some (false, p), l))
let bar b = emit b Instr.Bar
let exit_ b = emit b Instr.Exit

(* Structured helpers built on labels. *)

(* if_ b pred then_body: executes body when pred holds. *)
let if_ b p body =
  let skip = fresh_label b "Lskip" in
  bra_ifnot b p skip;
  body ();
  label b skip

(* if_not b pred then_body: executes body when pred does not hold. *)
let if_not b p body =
  let skip = fresh_label b "Lskip" in
  bra_if b p skip;
  body ();
  label b skip

(* A counted loop: for i = init; i < bound; i += step.  [body] receives
   the loop counter operand.  The counter register is reused across
   iterations (a mutable register, as compiled PTX loops have). *)
let for_loop b ~init ~bound ~step body =
  let i = fresh_reg b in
  emit b (Instr.Mov (i, init));
  let head = fresh_label b "Lhead" in
  let done_ = fresh_label b "Ldone" in
  label b head;
  let p = setp b Ge (Reg i) bound in
  bra_if b p done_;
  body (Reg i);
  emit b (Instr.Iop (Add, i, Reg i, step));
  bra b head;
  label b done_

(* while_ b cond body: [cond] is re-evaluated each iteration and returns
   a predicate register. *)
let while_ b cond body =
  let head = fresh_label b "Lwhile" in
  let done_ = fresh_label b "Lwdone" in
  label b head;
  let p = cond () in
  bra_ifnot b p done_;
  body ();
  bra b head;
  label b done_

(* Global thread id: ctaid.x * ntid.x + tid.x. *)
let global_tid b = mad b ctaid_x ntid_x tid_x

let finish b =
  let body = Array.of_list (List.rev (Instr.Exit :: b.instrs)) in
  Kernel.validate
    (Kernel.create ~name:b.name ~params:b.params ~nregs:(max 1 b.nregs)
       ~npregs:(max 1 b.npregs) ~smem_bytes:b.smem_bytes body)
