(* Dominators and post-dominators via the Cooper–Harvey–Kennedy
   iterative algorithm ("A Simple, Fast Dominance Algorithm").

   Post-dominators are computed on the reversed CFG augmented with a
   virtual exit node that succeeds every exit block; the immediate
   post-dominator of a divergent branch gives the SIMT reconvergence
   point used by the simulator. *)

type t = {
  idom : int array; (* immediate dominator per node; -1 if unreachable *)
  rpo_index : int array;
}

(* Generic CHK over a graph with [n] nodes, an [entry], and edge
   functions.  Returns idom with idom.(entry) = entry. *)
let compute ~n ~entry ~succs ~preds =
  let rpo_index = Array.make n (-1) in
  let order = ref [] in
  let visited = Array.make n false in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs (succs v);
      order := v :: !order
    end
  in
  dfs entry;
  let rpo = Array.of_list !order in
  Array.iteri (fun i v -> rpo_index.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let rec intersect b1 b2 =
    if b1 = b2 then b1
    else if rpo_index.(b1) > rpo_index.(b2) then intersect idom.(b1) b2
    else intersect b1 idom.(b2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed =
            List.filter (fun p -> idom.(p) <> -1 && rpo_index.(p) >= 0)
              (preds b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo_index }

let dominators (cfg : Cfg.t) =
  let n = Cfg.nblocks cfg in
  compute ~n ~entry:0
    ~succs:(fun b -> (Cfg.block cfg b).Cfg.succs)
    ~preds:(fun b -> (Cfg.block cfg b).Cfg.preds)

(* Node [n] is the virtual exit. *)
let post_dominators (cfg : Cfg.t) =
  let n = Cfg.nblocks cfg in
  let exits = Cfg.exit_blocks cfg in
  let succs b =
    if b = n then List.map (fun e -> e) exits
    else (Cfg.block cfg b).Cfg.preds
  in
  let preds b =
    if b = n then []
    else
      let fwd = (Cfg.block cfg b).Cfg.succs in
      if List.mem b exits then n :: fwd else fwd
  in
  compute ~n:(n + 1) ~entry:n ~succs ~preds

let idom t b = if t.idom.(b) = b then None else Some t.idom.(b)

let dominates t a b =
  let rec go b = if b = a then true else if t.idom.(b) = b || t.idom.(b) = -1 then false else go t.idom.(b) in
  a = b || go b

(* Reconvergence pc for the (divergent) branch at [pc]: the first pc of
   the branch block's immediate post-dominator.  [None] when the branch
   only reconverges at kernel exit. *)
let reconvergence_pc (cfg : Cfg.t) (pdom : t) pc =
  let b = Cfg.block_of_pc cfg pc in
  let virt = Cfg.nblocks cfg in
  let ip = pdom.idom.(b) in
  if ip = -1 || ip = virt then None else Some (Cfg.block cfg ip).Cfg.first
