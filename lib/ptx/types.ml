(* Core types of the PTX-like virtual ISA.

   The ISA mirrors the subset of NVIDIA PTX that matters for the paper's
   backward-dataflow load classification and for cycle-level simulation:
   typed loads/stores over distinct memory spaces, integer/floating ALU
   operations, SFU transcendentals, predicated branches, barriers and
   atomics.  Values are carried in 64-bit general registers; floating
   values are stored as their IEEE-754 bit patterns. *)

type dtype =
  | U8
  | S8
  | U16
  | S16
  | U32
  | S32
  | U64
  | S64
  | F32
  | F64

type space =
  | Param
  | Global
  | Shared
  | Local
  | Const
  | Tex

type dim = X | Y | Z

(* Special (read-only) registers exposed to every thread. *)
type sreg =
  | Tid of dim
  | Ntid of dim
  | Ctaid of dim
  | Nctaid of dim
  | Laneid
  | Warpid

type operand =
  | Reg of int (* general-purpose virtual register *)
  | Imm of int64
  | Fimm of float
  | Sreg of sreg

(* [abase + aoffset] addressing, as in PTX [%r1+8]. *)
type addr = { abase : operand; aoffset : int }

type iop =
  | Add
  | Sub
  | Mul
  | Mulhi
  | Div
  | Rem
  | Min
  | Max
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type fop =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmin
  | Fmax

type funary =
  | Sqrt
  | Rsqrt
  | Rcp
  | Sin
  | Cos
  | Ex2
  | Lg2

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type atomop =
  | Aadd
  | Amin
  | Amax
  | Aexch
  | Acas

let dtype_size = function
  | U8 | S8 -> 1
  | U16 | S16 -> 2
  | U32 | S32 | F32 -> 4
  | U64 | S64 | F64 -> 8

let dtype_is_float = function
  | F32 | F64 -> true
  | U8 | S8 | U16 | S16 | U32 | S32 | U64 | S64 -> false

let dtype_is_signed = function
  | S8 | S16 | S32 | S64 -> true
  | U8 | U16 | U32 | U64 | F32 | F64 -> false

let string_of_dtype = function
  | U8 -> "u8"
  | S8 -> "s8"
  | U16 -> "u16"
  | S16 -> "s16"
  | U32 -> "u32"
  | S32 -> "s32"
  | U64 -> "u64"
  | S64 -> "s64"
  | F32 -> "f32"
  | F64 -> "f64"

let dtype_of_string = function
  | "u8" -> U8
  | "s8" -> S8
  | "u16" -> U16
  | "s16" -> S16
  | "u32" -> U32
  | "s32" -> S32
  | "u64" -> U64
  | "s64" -> S64
  | "f32" -> F32
  | "f64" -> F64
  | s -> invalid_arg ("dtype_of_string: " ^ s)

let string_of_space = function
  | Param -> "param"
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"
  | Const -> "const"
  | Tex -> "tex"

let space_of_string = function
  | "param" -> Param
  | "global" -> Global
  | "shared" -> Shared
  | "local" -> Local
  | "const" -> Const
  | "tex" -> Tex
  | s -> invalid_arg ("space_of_string: " ^ s)

let string_of_dim = function X -> "x" | Y -> "y" | Z -> "z"

let string_of_sreg = function
  | Tid d -> "%tid." ^ string_of_dim d
  | Ntid d -> "%ntid." ^ string_of_dim d
  | Ctaid d -> "%ctaid." ^ string_of_dim d
  | Nctaid d -> "%nctaid." ^ string_of_dim d
  | Laneid -> "%laneid"
  | Warpid -> "%warpid"

let string_of_iop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul.lo"
  | Mulhi -> "mul.hi"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let string_of_fop = function
  | Fadd -> "add.f"
  | Fsub -> "sub.f"
  | Fmul -> "mul.f"
  | Fdiv -> "div.f"
  | Fmin -> "min.f"
  | Fmax -> "max.f"

let string_of_funary = function
  | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt"
  | Rcp -> "rcp"
  | Sin -> "sin"
  | Cos -> "cos"
  | Ex2 -> "ex2"
  | Lg2 -> "lg2"

let string_of_cmp = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let cmp_of_string = function
  | "eq" -> Eq
  | "ne" -> Ne
  | "lt" -> Lt
  | "le" -> Le
  | "gt" -> Gt
  | "ge" -> Ge
  | s -> invalid_arg ("cmp_of_string: " ^ s)

let string_of_atomop = function
  | Aadd -> "add"
  | Amin -> "min"
  | Amax -> "max"
  | Aexch -> "exch"
  | Acas -> "cas"

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "%%r%d" r
  | Imm i -> Format.fprintf ppf "%Ld" i
  | Fimm f -> Format.fprintf ppf "%h" f
  | Sreg s -> Format.pp_print_string ppf (string_of_sreg s)

let pp_addr ppf { abase; aoffset } =
  if aoffset = 0 then Format.fprintf ppf "[%a]" pp_operand abase
  else Format.fprintf ppf "[%a+%d]" pp_operand abase aoffset
