(* Instructions of the PTX-like ISA, plus their def/use sets.

   Program counters are indices into a kernel's instruction array.
   [Label] is a pseudo-instruction: it defines a branch target and is
   skipped by the executor.  Predicates live in a separate register
   class (as in PTX), addressed by small integers. *)

open Types

type t =
  | Ld_param of int * string
      (* dst register <- named kernel parameter (ld.param) *)
  | Ld of space * dtype * int * addr (* dst <- [addr] *)
  | St of space * dtype * addr * operand (* [addr] <- value *)
  | Mov of int * operand
  | Iop of iop * int * operand * operand
  | Mad of int * operand * operand * operand (* d = a*b + c (mad.lo) *)
  | Fop of fop * dtype * int * operand * operand
  | Fma of dtype * int * operand * operand * operand
  | Funary of funary * dtype * int * operand (* SFU op *)
  | Cvt of dtype * dtype * int * operand (* cvt.dst_ty.src_ty *)
  | Setp of cmp * dtype * int * operand * operand (* pred <- a cmp b *)
  | Selp of int * operand * operand * int (* d = p ? a : b *)
  | Pnot of int * int (* pred dst <- not src *)
  | Pand of int * int * int
  | Por of int * int * int
  | Bra of (bool * int) option * string
      (* optional guard (polarity, pred reg); target label *)
  | Atom of atomop * dtype * int * addr * operand
      (* dst <- old value; [addr] updated *)
  | Bar (* CTA-wide barrier *)
  | Exit
  | Label of string

let regs_of_operand = function
  | Reg r -> [ r ]
  | Imm _ | Fimm _ | Sreg _ -> []

let regs_of_addr a = regs_of_operand a.abase

(* General registers defined by the instruction. *)
let defs = function
  | Ld_param (d, _) -> [ d ]
  | Ld (_, _, d, _) -> [ d ]
  | Mov (d, _) -> [ d ]
  | Iop (_, d, _, _) -> [ d ]
  | Mad (d, _, _, _) -> [ d ]
  | Fop (_, _, d, _, _) -> [ d ]
  | Fma (_, d, _, _, _) -> [ d ]
  | Funary (_, _, d, _) -> [ d ]
  | Cvt (_, _, d, _) -> [ d ]
  | Selp (d, _, _, _) -> [ d ]
  | Atom (_, _, d, _, _) -> [ d ]
  | St _ | Setp _ | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit | Label _ ->
      []

(* General registers used by the instruction. *)
let uses = function
  | Ld_param _ -> []
  | Ld (_, _, _, a) -> regs_of_addr a
  | St (_, _, a, v) -> regs_of_addr a @ regs_of_operand v
  | Mov (_, s) -> regs_of_operand s
  | Iop (_, _, a, b) -> regs_of_operand a @ regs_of_operand b
  | Mad (_, a, b, c) ->
      regs_of_operand a @ regs_of_operand b @ regs_of_operand c
  | Fop (_, _, _, a, b) -> regs_of_operand a @ regs_of_operand b
  | Fma (_, _, a, b, c) ->
      regs_of_operand a @ regs_of_operand b @ regs_of_operand c
  | Funary (_, _, _, a) -> regs_of_operand a
  | Cvt (_, _, _, a) -> regs_of_operand a
  | Setp (_, _, _, a, b) -> regs_of_operand a @ regs_of_operand b
  | Selp (_, a, b, _) -> regs_of_operand a @ regs_of_operand b
  | Atom (_, _, _, a, v) -> regs_of_addr a @ regs_of_operand v
  | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit | Label _ -> []

(* Predicate registers defined / used. *)
let pdefs = function
  | Setp (_, _, p, _, _) -> [ p ]
  | Pnot (p, _) -> [ p ]
  | Pand (p, _, _) -> [ p ]
  | Por (p, _, _) -> [ p ]
  | Ld_param _ | Ld _ | St _ | Mov _ | Iop _ | Mad _ | Fop _ | Fma _
  | Funary _ | Cvt _ | Selp _ | Bra _ | Atom _ | Bar | Exit | Label _ ->
      []

let puses = function
  | Selp (_, _, _, p) -> [ p ]
  | Pnot (_, p) -> [ p ]
  | Pand (_, a, b) -> [ a; b ]
  | Por (_, a, b) -> [ a; b ]
  | Bra (Some (_, p), _) -> [ p ]
  | Bra (None, _) | Ld_param _ | Ld _ | St _ | Mov _ | Iop _ | Mad _ | Fop _
  | Fma _ | Funary _ | Cvt _ | Setp _ | Atom _ | Bar | Exit | Label _ ->
      []

(* Is this a load whose destination value comes from memory?  Atomics
   return the old memory value, so they count as loads for the paper's
   classification. *)
let loads_from_memory = function
  | Ld (sp, _, _, _) -> Some sp
  | Atom _ -> Some Global
  | Ld_param _ | St _ | Mov _ | Iop _ | Mad _ | Fop _ | Fma _ | Funary _
  | Cvt _ | Setp _ | Selp _ | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit
  | Label _ ->
      None

let is_global_load = function
  | Ld (Global, _, _, _) | Atom _ -> true
  | Ld ((Param | Shared | Local | Const | Tex), _, _, _)
  | Ld_param _ | St _ | Mov _ | Iop _ | Mad _ | Fop _ | Fma _ | Funary _
  | Cvt _ | Setp _ | Selp _ | Pnot _ | Pand _ | Por _ | Bra _ | Bar | Exit
  | Label _ ->
      false

let is_branch = function
  | Bra _ -> true
  | _ -> false

let is_exit = function
  | Exit -> true
  | _ -> false

let pp ppf (i : t) =
  let pr fmt = Format.fprintf ppf fmt in
  let op = pp_operand in
  match i with
  | Ld_param (d, p) -> pr "ld.param.u64 %%r%d, [%s]" d p
  | Ld (sp, ty, d, a) ->
      pr "ld.%s.%s %%r%d, %a" (string_of_space sp) (string_of_dtype ty) d
        pp_addr a
  | St (sp, ty, a, v) ->
      pr "st.%s.%s %a, %a" (string_of_space sp) (string_of_dtype ty) pp_addr a
        op v
  | Mov (d, s) -> pr "mov %%r%d, %a" d op s
  | Iop (o, d, a, b) -> pr "%s %%r%d, %a, %a" (string_of_iop o) d op a op b
  | Mad (d, a, b, c) -> pr "mad.lo %%r%d, %a, %a, %a" d op a op b op c
  | Fop (o, ty, d, a, b) ->
      pr "%s%s %%r%d, %a, %a" (string_of_fop o)
        (if ty = F64 then "64" else "32")
        d op a op b
  | Fma (ty, d, a, b, c) ->
      pr "fma.%s %%r%d, %a, %a, %a" (string_of_dtype ty) d op a op b op c
  | Funary (o, ty, d, a) ->
      pr "%s.%s %%r%d, %a" (string_of_funary o) (string_of_dtype ty) d op a
  | Cvt (dt, st, d, a) ->
      pr "cvt.%s.%s %%r%d, %a" (string_of_dtype dt) (string_of_dtype st) d op a
  | Setp (c, ty, p, a, b) ->
      pr "setp.%s.%s %%p%d, %a, %a" (string_of_cmp c) (string_of_dtype ty) p op
        a op b
  | Selp (d, a, b, p) -> pr "selp %%r%d, %a, %a, %%p%d" d op a op b p
  | Pnot (d, s) -> pr "not.pred %%p%d, %%p%d" d s
  | Pand (d, a, b) -> pr "and.pred %%p%d, %%p%d, %%p%d" d a b
  | Por (d, a, b) -> pr "or.pred %%p%d, %%p%d, %%p%d" d a b
  | Bra (None, l) -> pr "bra %s" l
  | Bra (Some (true, p), l) -> pr "@@%%p%d bra %s" p l
  | Bra (Some (false, p), l) -> pr "@@!%%p%d bra %s" p l
  | Atom (o, ty, d, a, v) ->
      pr "atom.global.%s.%s %%r%d, %a, %a" (string_of_atomop o)
        (string_of_dtype ty) d pp_addr a op v
  | Bar -> pr "bar.sync 0"
  | Exit -> pr "exit"
  | Label l -> pr "%s:" l

let to_string i = Format.asprintf "%a" pp i
