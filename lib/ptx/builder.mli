(** Imperative eDSL for constructing kernels.

    Emitter functions append an instruction to the builder and return
    the destination register as an operand, so address computations
    compose naturally:

    {[
      let b = Builder.create ~name:"saxpy" ~params () in
      let i = Builder.global_tid b in
      let x = Builder.ld b Global F32 (Builder.at b ~base:xp ~scale:4 i) in
      ...
    ]} *)

open Types

type t

val create :
  name:string -> params:Kernel.param list -> ?smem_bytes:int -> unit -> t

val emit : t -> Instr.t -> unit
val fresh_reg : t -> int
val fresh_pred : t -> int
val fresh_label : t -> string -> string

(** {1 Operand constructors} *)

val int : int -> operand
val int64 : int64 -> operand
val float : float -> operand
val special : sreg -> operand
val tid_x : operand
val tid_y : operand
val ctaid_x : operand
val ctaid_y : operand
val ntid_x : operand
val ntid_y : operand
val nctaid_x : operand

(** {1 Arithmetic emitters} — each returns the destination operand. *)

val mov : t -> operand -> operand
val iop : t -> iop -> operand -> operand -> operand
val add : t -> operand -> operand -> operand
val sub : t -> operand -> operand -> operand
val mul : t -> operand -> operand -> operand
val div : t -> operand -> operand -> operand
val rem : t -> operand -> operand -> operand
val min_ : t -> operand -> operand -> operand
val max_ : t -> operand -> operand -> operand
val band : t -> operand -> operand -> operand
val bor : t -> operand -> operand -> operand
val bxor : t -> operand -> operand -> operand
val shl : t -> operand -> operand -> operand
val shr : t -> operand -> operand -> operand
val mad : t -> operand -> operand -> operand -> operand
val fop : t -> fop -> ?ty:dtype -> operand -> operand -> operand
val fadd : t -> ?ty:dtype -> operand -> operand -> operand
val fsub : t -> ?ty:dtype -> operand -> operand -> operand
val fmul : t -> ?ty:dtype -> operand -> operand -> operand
val fdiv : t -> ?ty:dtype -> operand -> operand -> operand
val fma : t -> ?ty:dtype -> operand -> operand -> operand -> operand
val funary : t -> funary -> ?ty:dtype -> operand -> operand
val cvt : t -> dst_ty:dtype -> src_ty:dtype -> operand -> operand

(** {1 Memory} *)

val ld_param : t -> string -> operand
(** Load a named kernel parameter ([ld.param]) — the deterministic leaf
    of the paper's classification. *)

val addr : ?off:int -> operand -> addr
val at : t -> base:operand -> ?scale:int -> ?off:int -> operand -> addr
(** [at b ~base ~scale idx] emits the address arithmetic for
    [base + idx*scale + off] and returns the memory operand. *)

val ld : t -> space -> dtype -> addr -> operand
val st : t -> space -> dtype -> addr -> operand -> unit
val atom : t -> atomop -> dtype -> addr -> operand -> operand

(** {1 Predicates and control flow} *)

val setp : t -> cmp -> ?ty:dtype -> operand -> operand -> int
val selp : t -> operand -> operand -> int -> operand
val pnot : t -> int -> int
val pand : t -> int -> int -> int
val por : t -> int -> int -> int
val label : t -> string -> unit
val bra : t -> string -> unit
val bra_if : t -> int -> string -> unit
val bra_ifnot : t -> int -> string -> unit
val bar : t -> unit
val exit_ : t -> unit

val if_ : t -> int -> (unit -> unit) -> unit
(** [if_ b p body] runs [body] only for threads where predicate [p]
    holds (compiled to a guarded branch around the body). *)

val if_not : t -> int -> (unit -> unit) -> unit

val for_loop :
  t -> init:operand -> bound:operand -> step:operand -> (operand -> unit) ->
  unit
(** Counted loop [for i = init; i < bound; i += step]; the body receives
    the loop counter operand.  The counter register is mutated across
    iterations, as in compiled PTX loops. *)

val while_ : t -> (unit -> int) -> (unit -> unit) -> unit
(** [while_ b cond body]: [cond] is re-emitted per iteration and returns
    the predicate register that controls the loop. *)

val global_tid : t -> operand
(** [ctaid.x * ntid.x + tid.x]. *)

val finish : t -> Kernel.t
(** Appends a trailing [Exit], validates, and returns the kernel.
    @raise Kernel.Invalid on malformed code. *)
