(** Core types of the PTX-like virtual ISA.

    The ISA mirrors the subset of NVIDIA PTX needed for the paper's
    backward-dataflow load classification and for cycle-level simulation.
    Values live in 64-bit general registers; floating-point values are
    stored as their IEEE-754 bit patterns. *)

(** Scalar data types, as in PTX type suffixes ([.u32], [.f32], ...). *)
type dtype = U8 | S8 | U16 | S16 | U32 | S32 | U64 | S64 | F32 | F64

(** Memory spaces addressable by loads and stores. *)
type space = Param | Global | Shared | Local | Const | Tex

type dim = X | Y | Z

(** Special read-only per-thread registers ([%tid.x], [%ctaid.y], ...). *)
type sreg =
  | Tid of dim
  | Ntid of dim
  | Ctaid of dim
  | Nctaid of dim
  | Laneid
  | Warpid

(** Instruction operands. [Reg r] is virtual general register [r]. *)
type operand = Reg of int | Imm of int64 | Fimm of float | Sreg of sreg

(** Memory operand [base + offset], as in PTX [[%r1+8]]. *)
type addr = { abase : operand; aoffset : int }

(** Integer binary ALU operations. *)
type iop =
  | Add | Sub | Mul | Mulhi | Div | Rem | Min | Max
  | Band | Bor | Bxor | Shl | Shr

(** Floating binary ALU operations. *)
type fop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

(** Unary transcendental operations, executed on SFUs. *)
type funary = Sqrt | Rsqrt | Rcp | Sin | Cos | Ex2 | Lg2

(** Comparison operators for [setp]. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Atomic read-modify-write operations. *)
type atomop = Aadd | Amin | Amax | Aexch | Acas

val dtype_size : dtype -> int
(** Size of the type in bytes. *)

val dtype_is_float : dtype -> bool
val dtype_is_signed : dtype -> bool

val string_of_dtype : dtype -> string
val dtype_of_string : string -> dtype
(** @raise Invalid_argument on an unknown type name. *)

val string_of_space : space -> string
val space_of_string : string -> space
(** @raise Invalid_argument on an unknown space name. *)

val string_of_dim : dim -> string
val string_of_sreg : sreg -> string
val string_of_iop : iop -> string
val string_of_fop : fop -> string
val string_of_funary : funary -> string
val string_of_cmp : cmp -> string
val cmp_of_string : string -> cmp
val string_of_atomop : atomop -> string
val pp_operand : Format.formatter -> operand -> unit
val pp_addr : Format.formatter -> addr -> unit
