(** Instructions of the PTX-like ISA, with def/use sets.

    Program counters are indices into a kernel's instruction array.
    [Label] is a pseudo-instruction that defines a branch target and is
    skipped by the executor.  Predicate registers form a separate class,
    as in PTX. *)

open Types

type t =
  | Ld_param of int * string  (** dst <- named kernel parameter *)
  | Ld of space * dtype * int * addr  (** dst <- [addr] *)
  | St of space * dtype * addr * operand  (** [addr] <- value *)
  | Mov of int * operand
  | Iop of iop * int * operand * operand
  | Mad of int * operand * operand * operand  (** d = a*b + c (mad.lo) *)
  | Fop of fop * dtype * int * operand * operand
  | Fma of dtype * int * operand * operand * operand
  | Funary of funary * dtype * int * operand  (** transcendental, on SFU *)
  | Cvt of dtype * dtype * int * operand  (** cvt.dst_ty.src_ty *)
  | Setp of cmp * dtype * int * operand * operand  (** pred <- a cmp b *)
  | Selp of int * operand * operand * int  (** d = p ? a : b *)
  | Pnot of int * int
  | Pand of int * int * int
  | Por of int * int * int
  | Bra of (bool * int) option * string
      (** optional guard (polarity, predicate register); target label *)
  | Atom of atomop * dtype * int * addr * operand
      (** dst <- old memory value; [addr] updated atomically *)
  | Bar  (** CTA-wide barrier *)
  | Exit
  | Label of string

val defs : t -> int list
(** General registers written by the instruction. *)

val uses : t -> int list
(** General registers read by the instruction. *)

val pdefs : t -> int list
(** Predicate registers written. *)

val puses : t -> int list
(** Predicate registers read. *)

val loads_from_memory : t -> space option
(** [Some space] when the instruction's destination register receives a
    value from memory ([Ld] and [Atom]); [ld.param] deliberately returns
    [None] — parameters are the deterministic leaves of the paper's
    classification. *)

val is_global_load : t -> bool
(** True for loads that access global memory (including atomics). *)

val is_branch : t -> bool
val is_exit : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
