(** Kernel representation: a named instruction array with declared
    parameters, register counts and static shared-memory size. *)

open Types

type param = { pname : string; pty : dtype }

type t = {
  kname : string;
  params : param list;
  body : Instr.t array;
  nregs : int;  (** number of general registers *)
  npregs : int;  (** number of predicate registers *)
  smem_bytes : int;  (** static shared memory per CTA, in bytes *)
  labels : (string, int) Hashtbl.t;  (** label -> pc of its [Label] *)
}

exception Invalid of string
(** Raised by [validate], [target], [param_index] and [label_pc] on a
    malformed kernel. *)

val create :
  name:string ->
  params:param list ->
  nregs:int ->
  npregs:int ->
  smem_bytes:int ->
  Instr.t array ->
  t
(** Builds a kernel and indexes its labels.
    @raise Invalid on duplicate labels. *)

val param_index : t -> string -> int
(** Position of a named parameter in [params]. @raise Invalid if absent. *)

val label_pc : t -> string -> int
(** pc of a label. @raise Invalid if absent. *)

val target : t -> int -> int
(** Branch target pc of the branch instruction at the given pc.
    @raise Invalid if the pc does not hold a branch. *)

val validate : t -> t
(** Checks register bounds, branch targets, parameter references and the
    presence of an [Exit]; returns the kernel unchanged.
    @raise Invalid with a diagnostic otherwise. *)

val global_load_pcs : t -> int list
(** pcs of all global-memory loads (including atomics), in order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
