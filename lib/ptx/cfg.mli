(** Control-flow graph over a kernel's instruction array.

    Blocks are maximal straight-line pc ranges; leaders are pc 0, every
    [Label], and every pc following a branch or exit. *)

type block = {
  bid : int;
  first : int;  (** first pc of the block *)
  last : int;  (** last pc of the block, inclusive *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  kernel : Kernel.t;
  blocks : block array;
  block_of_pc : int array;
}

val build : Kernel.t -> t
val nblocks : t -> int
val block : t -> int -> block
val block_of_pc : t -> int -> int
val entry : t -> int

val exit_blocks : t -> int list
(** Blocks ending in [Exit] (plus any block with no successors). *)

val reverse_postorder : t -> int list
(** Blocks reachable from entry, in reverse postorder. *)

val to_dot : t -> string
(** Graphviz rendering (one box per basic block, edges = control flow). *)

val pp : Format.formatter -> t -> unit
