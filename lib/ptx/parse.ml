(* Parser for the textual kernel format emitted by [Kernel.pp].

   The format is line-oriented:

     .kernel name (.param .u64 a, .param .u32 n)
     .reg 12 .pred 2 .shared 0
     {
       ld.param.u64 %r0, [a];
       mov %r1, %tid.x;
     LOOP:
       @%p0 bra DONE;
       exit;
     }

   Comments start with [//] and run to end of line. *)

open Types

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let strip_comment line =
  match String.index_opt line '/' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '/' ->
      String.sub line 0 i
  | _ -> line

let trim = String.trim

let split_operands s =
  (* split on top-level commas (no nesting in this grammar) *)
  String.split_on_char ',' s |> List.map trim
  |> List.filter (fun x -> x <> "")

let parse_sreg s =
  let dim_of c =
    match c with
    | "x" -> X
    | "y" -> Y
    | "z" -> Z
    | _ -> error "bad dimension %s" c
  in
  match String.split_on_char '.' s with
  | [ "%tid"; d ] -> Tid (dim_of d)
  | [ "%ntid"; d ] -> Ntid (dim_of d)
  | [ "%ctaid"; d ] -> Ctaid (dim_of d)
  | [ "%nctaid"; d ] -> Nctaid (dim_of d)
  | [ "%laneid" ] -> Laneid
  | [ "%warpid" ] -> Warpid
  | _ -> error "unknown special register %s" s

let parse_reg s =
  if String.length s > 2 && s.[0] = '%' && s.[1] = 'r' then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some r -> r
    | None -> error "bad register %s" s
  else error "expected general register, got %s" s

let parse_pred s =
  if String.length s > 2 && s.[0] = '%' && s.[1] = 'p' then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some p -> p
    | None -> error "bad predicate %s" s
  else error "expected predicate register, got %s" s

let parse_operand s =
  if s = "" then error "empty operand"
  else if s.[0] = '%' then
    if String.length s > 1 && s.[1] = 'r' then Reg (parse_reg s)
    else Sreg (parse_sreg s)
  else
    match Int64.of_string_opt s with
    | Some i -> Imm i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Fimm f
        | None -> error "bad operand %s" s)

(* "[%r1+8]" | "[%r1]" | "[name]" (for ld.param, handled separately) *)
let parse_addr s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then error "bad address %s" s
  else
    let inner = String.sub s 1 (n - 2) in
    match String.index_opt inner '+' with
    | Some i ->
        let base = parse_operand (trim (String.sub inner 0 i)) in
        let off =
          match
            int_of_string_opt (trim (String.sub inner (i + 1) (String.length inner - i - 1)))
          with
          | Some o -> o
          | None -> error "bad offset in %s" s
        in
        { abase = base; aoffset = off }
    | None -> { abase = parse_operand (trim inner); aoffset = 0 }

let addr_inner s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then error "bad address %s" s
  else String.sub s 1 (n - 2)

let iop_of_mnemonic = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul.lo" -> Some Mul
  | "mul.hi" -> Some Mulhi
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "min" -> Some Min
  | "max" -> Some Max
  | "and" -> Some Band
  | "or" -> Some Bor
  | "xor" -> Some Bxor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | _ -> None

let fop_of_mnemonic = function
  | "add.f32" -> Some (Fadd, F32)
  | "add.f64" -> Some (Fadd, F64)
  | "sub.f32" -> Some (Fsub, F32)
  | "sub.f64" -> Some (Fsub, F64)
  | "mul.f32" -> Some (Fmul, F32)
  | "mul.f64" -> Some (Fmul, F64)
  | "div.f32" -> Some (Fdiv, F32)
  | "div.f64" -> Some (Fdiv, F64)
  | "min.f32" -> Some (Fmin, F32)
  | "min.f64" -> Some (Fmin, F64)
  | "max.f32" -> Some (Fmax, F32)
  | "max.f64" -> Some (Fmax, F64)
  | _ -> None

let funary_of_string = function
  | "sqrt" -> Some Sqrt
  | "rsqrt" -> Some Rsqrt
  | "rcp" -> Some Rcp
  | "sin" -> Some Sin
  | "cos" -> Some Cos
  | "ex2" -> Some Ex2
  | "lg2" -> Some Lg2
  | _ -> None

let atomop_of_string = function
  | "add" -> Aadd
  | "min" -> Amin
  | "max" -> Amax
  | "exch" -> Aexch
  | "cas" -> Acas
  | s -> error "unknown atomic op %s" s

(* Instructions with dotted mnemonics (ld/st/setp/cvt/fma/atom/SFU). *)
let parse_dotted mnemonic rest line : Instr.t =
  match String.split_on_char '.' mnemonic with
  | [ "ld"; "param"; _ty ] -> (
      match split_operands rest with
      | [ d; a ] -> Instr.Ld_param (parse_reg d, addr_inner a)
      | _ -> error "ld.param arity: %s" line)
  | [ "ld"; sp; ty ] -> (
      match split_operands rest with
      | [ d; a ] ->
          Instr.Ld (space_of_string sp, dtype_of_string ty, parse_reg d, parse_addr a)
      | _ -> error "ld arity: %s" line)
  | [ "st"; sp; ty ] -> (
      match split_operands rest with
      | [ a; v ] ->
          Instr.St (space_of_string sp, dtype_of_string ty, parse_addr a, parse_operand v)
      | _ -> error "st arity: %s" line)
  | [ "setp"; c; ty ] -> (
      match split_operands rest with
      | [ p; a; b ] ->
          Instr.Setp (cmp_of_string c, dtype_of_string ty, parse_pred p,
                      parse_operand a, parse_operand b)
      | _ -> error "setp arity: %s" line)
  | [ "cvt"; dt; st ] -> (
      match split_operands rest with
      | [ d; a ] ->
          Instr.Cvt (dtype_of_string dt, dtype_of_string st, parse_reg d, parse_operand a)
      | _ -> error "cvt arity: %s" line)
  | [ "fma"; ty ] -> (
      match split_operands rest with
      | [ d; a; b; c ] ->
          Instr.Fma (dtype_of_string ty, parse_reg d, parse_operand a,
                     parse_operand b, parse_operand c)
      | _ -> error "fma arity: %s" line)
  | [ "atom"; "global"; op; ty ] -> (
      match split_operands rest with
      | [ d; a; v ] ->
          Instr.Atom (atomop_of_string op, dtype_of_string ty, parse_reg d,
                      parse_addr a, parse_operand v)
      | _ -> error "atom arity: %s" line)
  | [ f; ty ] -> (
      match funary_of_string f with
      | Some o -> (
          match split_operands rest with
          | [ d; a ] ->
              Instr.Funary (o, dtype_of_string ty, parse_reg d, parse_operand a)
          | _ -> error "%s arity: %s" mnemonic line)
      | None -> error "unknown instruction %s" line)
  | _ -> error "unknown instruction %s" line

(* Parse one instruction line (without trailing ';'). *)
let parse_instr line : Instr.t =
  let line = trim line in
  (* guarded branch: "@%p0 bra L" or "@!%p0 bra L" *)
  if String.length line > 0 && line.[0] = '@' then begin
    let neg = String.length line > 1 && line.[1] = '!' in
    let rest = String.sub line (if neg then 2 else 1) (String.length line - (if neg then 2 else 1)) in
    match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
    | [ p; "bra"; l ] -> Instr.Bra (Some (not neg, parse_pred p), l)
    | _ -> error "bad guarded branch: %s" line
  end
  else
    let mnemonic, rest =
      match String.index_opt line ' ' with
      | Some i ->
          ( String.sub line 0 i,
            trim (String.sub line (i + 1) (String.length line - i - 1)) )
      | None -> (line, "")
    in
    let ops () = split_operands rest in
    match mnemonic with
    | "exit" -> Instr.Exit
    | "bar.sync" -> Instr.Bar
    | "bra" -> Instr.Bra (None, trim rest)
    | "mov" -> (
        match ops () with
        | [ d; s ] -> Instr.Mov (parse_reg d, parse_operand s)
        | _ -> error "mov arity: %s" line)
    | "mad.lo" -> (
        match ops () with
        | [ d; a; b; c ] ->
            Instr.Mad (parse_reg d, parse_operand a, parse_operand b, parse_operand c)
        | _ -> error "mad arity: %s" line)
    | "selp" -> (
        match ops () with
        | [ d; a; b; p ] ->
            Instr.Selp (parse_reg d, parse_operand a, parse_operand b, parse_pred p)
        | _ -> error "selp arity: %s" line)
    | "not.pred" -> (
        match ops () with
        | [ d; s ] -> Instr.Pnot (parse_pred d, parse_pred s)
        | _ -> error "not.pred arity: %s" line)
    | "and.pred" -> (
        match ops () with
        | [ d; a; b ] -> Instr.Pand (parse_pred d, parse_pred a, parse_pred b)
        | _ -> error "and.pred arity: %s" line)
    | "or.pred" -> (
        match ops () with
        | [ d; a; b ] -> Instr.Por (parse_pred d, parse_pred a, parse_pred b)
        | _ -> error "or.pred arity: %s" line)
    | _ -> (
        match iop_of_mnemonic mnemonic with
        | Some o -> (
            match ops () with
            | [ d; a; b ] ->
                Instr.Iop (o, parse_reg d, parse_operand a, parse_operand b)
            | _ -> error "%s arity: %s" mnemonic line)
        | None -> (
            match fop_of_mnemonic mnemonic with
            | Some (o, ty) -> (
                match ops () with
                | [ d; a; b ] ->
                    Instr.Fop (o, ty, parse_reg d, parse_operand a, parse_operand b)
                | _ -> error "%s arity: %s" mnemonic line)
            | None -> parse_dotted mnemonic rest line))

let parse_param s =
  (* ".param .u64 name" *)
  match String.split_on_char ' ' (trim s) |> List.filter (fun x -> x <> "") with
  | [ ".param"; ty; name ] when String.length ty > 1 && ty.[0] = '.' ->
      { Kernel.pname = name;
        pty = dtype_of_string (String.sub ty 1 (String.length ty - 1)) }
  | _ -> error "bad parameter declaration: %s" s

let parse_header line =
  (* ".kernel name (params...)" *)
  let line = trim line in
  if not (String.length line > 8 && String.sub line 0 8 = ".kernel ") then
    error "expected .kernel header, got %s" line
  else
    let rest = trim (String.sub line 8 (String.length line - 8)) in
    match String.index_opt rest '(' with
    | None -> error "missing parameter list: %s" line
    | Some i ->
        let name = trim (String.sub rest 0 i) in
        let close =
          match String.rindex_opt rest ')' with
          | Some c -> c
          | None -> error "missing ')' in %s" line
        in
        let plist = String.sub rest (i + 1) (close - i - 1) in
        let params =
          if trim plist = "" then []
          else String.split_on_char ',' plist |> List.map parse_param
        in
        (name, params)

let parse_decls line =
  (* ".reg N .pred M .shared S" *)
  match
    String.split_on_char ' ' (trim line) |> List.filter (fun s -> s <> "")
  with
  | [ ".reg"; n; ".pred"; m; ".shared"; s ] -> (
      match (int_of_string_opt n, int_of_string_opt m, int_of_string_opt s) with
      | Some n, Some m, Some s -> (n, m, s)
      | _ -> error "bad declarations: %s" line)
  | _ -> error "bad declarations: %s" line

let kernel_of_string text =
  (* keep 1-based source line numbers through comment stripping and
     blank-line removal, so every error can say where it happened *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, trim (strip_comment l)))
    |> List.filter (fun (_, l) -> l <> "")
  in
  (* dtype/space/cmp string conversions raise Invalid_argument; fold
     them into the same line-attributed parse error *)
  let at ln f =
    try f () with
    | Error msg -> error "line %d: %s" ln msg
    | Invalid_argument msg -> error "line %d: %s" ln msg
  in
  match lines with
  | (hln, header) :: (dln, decls) :: (_, "{") :: rest ->
      let name, params = at hln (fun () -> parse_header header) in
      let nregs, npregs, smem_bytes = at dln (fun () -> parse_decls decls) in
      let body = ref [] in
      let rec go = function
        | [] -> error "missing closing '}'"
        | (_, "}") :: _ -> ()
        | (ln, line) :: rest ->
            let n = String.length line in
            (if n > 0 && line.[n - 1] = ':' then
               body := Instr.Label (String.sub line 0 (n - 1)) :: !body
             else
               let line =
                 if n > 0 && line.[n - 1] = ';' then String.sub line 0 (n - 1)
                 else line
               in
               body := at ln (fun () -> parse_instr line) :: !body);
            go rest
      in
      go rest;
      Kernel.validate
        (Kernel.create ~name ~params ~nregs ~npregs ~smem_bytes
           (Array.of_list (List.rev !body)))
  | _ -> error "expected '.kernel', declarations and '{'"
