(** Parser for the textual kernel format emitted by [Kernel.pp].

    The format is line-oriented:
    {v
    .kernel name (.param .u64 a, .param .u32 n)
    .reg 12 .pred 2 .shared 0
    {
      ld.param.u64 %r0, [a];
      mov %r1, %tid.x;
    LOOP:
      @%p0 bra DONE;
      exit;
    }
    v}
    Comments start with [//] and run to end of line.  Printing and
    reparsing a kernel is stable (property-tested). *)

exception Error of string

val parse_operand : string -> Types.operand
(** @raise Error on malformed operands. *)

val parse_instr : string -> Instr.t
(** Parse one instruction line (without the trailing [;]).
    @raise Error with a diagnostic on malformed input. *)

val kernel_of_string : string -> Kernel.t
(** Parse and validate a whole kernel.
    @raise Error on syntax errors.
    @raise Kernel.Invalid on structurally invalid kernels. *)
