(* Static structural verification of a kernel.

   [Kernel.validate] raises on the first malformed construct it meets;
   this pass instead walks the whole program and returns every problem
   as a structured diagnostic, so a caller (CLI, launch path, test
   harness) can report all of them at once and decide what is fatal.

   The checks here need only the instruction array: register and
   predicate bounds, branch targets, parameter references, exit
   reachability and unreachable code.  Dataflow-dependent checks
   (use-before-def, operand kinds, barriers under divergent control
   flow) live in [Dataflow.Verify], which layers on top of this
   module. *)

type severity = Error | Warning

type diag = {
  d_kernel : string;
  d_pc : int; (* -1 when the problem is not tied to one instruction *)
  d_severity : severity;
  d_code : string; (* stable machine-readable code *)
  d_msg : string;
}

let diag ?(severity = Error) ~kernel ~pc ~code fmt =
  Format.kasprintf
    (fun msg ->
      { d_kernel = kernel; d_pc = pc; d_severity = severity; d_code = code;
        d_msg = msg })
    fmt

let severity_name = function Error -> "error" | Warning -> "warning"

let to_string d =
  if d.d_pc < 0 then
    Printf.sprintf "%s: %s [%s] %s" d.d_kernel (severity_name d.d_severity)
      d.d_code d.d_msg
  else
    Printf.sprintf "%s: pc %d: %s [%s] %s" d.d_kernel d.d_pc
      (severity_name d.d_severity) d.d_code d.d_msg

let pp ppf d = Format.pp_print_string ppf (to_string d)

let errors = List.filter (fun d -> d.d_severity = Error)

(* ---- individual checks ---- *)

(* Register / predicate indices within the declared files. *)
let check_bounds (k : Kernel.t) acc =
  let kernel = k.Kernel.kname in
  let acc = ref acc in
  Array.iteri
    (fun pc instr ->
      let reg what r =
        if r < 0 || r >= k.Kernel.nregs then
          acc :=
            diag ~kernel ~pc ~code:"register-bounds"
              "%s register %%r%d outside the declared file [0,%d)" what r
              k.Kernel.nregs
            :: !acc
      in
      let pred what p =
        if p < 0 || p >= k.Kernel.npregs then
          acc :=
            diag ~kernel ~pc ~code:"predicate-bounds"
              "%s predicate %%p%d outside the declared file [0,%d)" what p
              k.Kernel.npregs
            :: !acc
      in
      List.iter (reg "defined") (Instr.defs instr);
      List.iter (reg "used") (Instr.uses instr);
      List.iter (pred "defined") (Instr.pdefs instr);
      List.iter (pred "used") (Instr.puses instr))
    k.Kernel.body;
  !acc

(* Every branch target must be a declared label. *)
let check_branch_targets (k : Kernel.t) acc =
  let kernel = k.Kernel.kname in
  let acc = ref acc in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Instr.Bra (_, l) ->
          if not (Hashtbl.mem k.Kernel.labels l) then
            acc :=
              diag ~kernel ~pc ~code:"unknown-label"
                "branch to unresolved label %s (known: %s)" l
                (Hashtbl.fold (fun l' _ a -> l' :: a) k.Kernel.labels []
                |> List.sort compare |> String.concat ", ")
              :: !acc
      | _ -> ())
    k.Kernel.body;
  !acc

(* ld.param must name a declared kernel parameter. *)
let check_params (k : Kernel.t) acc =
  let kernel = k.Kernel.kname in
  let declared = List.map (fun p -> p.Kernel.pname) k.Kernel.params in
  let acc = ref acc in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Instr.Ld_param (_, p) ->
          if not (List.mem p declared) then
            acc :=
              diag ~kernel ~pc ~code:"unknown-param"
                "ld.param of undeclared parameter %s (declared: %s)" p
                (if declared = [] then "none"
                 else String.concat ", " declared)
              :: !acc
      | _ -> ())
    k.Kernel.body;
  !acc

(* The program must contain a reachable way to terminate. *)
let check_exit (k : Kernel.t) acc =
  if Array.exists Instr.is_exit k.Kernel.body then acc
  else
    diag ~kernel:k.Kernel.kname ~pc:(-1) ~code:"no-exit"
      "no exit instruction anywhere in the body"
    :: acc

(* Instructions no path from entry can reach (dead stores of the
   builder, mistyped labels): a warning, not an error. *)
let check_unreachable (k : Kernel.t) acc =
  let n = Array.length k.Kernel.body in
  let reachable = Array.make n false in
  let rec visit pc =
    if pc < n && not reachable.(pc) then begin
      reachable.(pc) <- true;
      match k.Kernel.body.(pc) with
      | Instr.Exit -> ()
      | Instr.Bra (guard, l) -> (
          (match Hashtbl.find_opt k.Kernel.labels l with
          | Some t -> visit t
          | None -> ());
          match guard with Some _ -> visit (pc + 1) | None -> ())
      | _ -> visit (pc + 1)
    end
  in
  if n > 0 then visit 0;
  let acc = ref acc in
  Array.iteri
    (fun pc r ->
      if not r then
        acc :=
          diag ~severity:Warning ~kernel:k.Kernel.kname ~pc
            ~code:"unreachable" "unreachable instruction: %s"
            (Instr.to_string k.Kernel.body.(pc))
          :: !acc)
    reachable;
  !acc

(* ---- entry point ---- *)

(* Structural pass.  The result is in program order; [errors] filters
   the fatal subset.  Dataflow checks require a structurally sound
   kernel, so callers must run (and act on) this pass first. *)
let structural (k : Kernel.t) : diag list =
  let acc = [] in
  let acc =
    if Array.length k.Kernel.body = 0 then
      [ diag ~kernel:k.Kernel.kname ~pc:(-1) ~code:"empty-body"
          "kernel body is empty" ]
    else acc
  in
  if acc <> [] then acc
  else
    []
    |> check_bounds k
    |> check_branch_targets k
    |> check_params k
    |> check_exit k
    |> check_unreachable k
    |> List.rev
