(** Dominators and post-dominators (Cooper–Harvey–Kennedy).

    Post-dominators are computed on the reversed CFG with a virtual exit
    node; the immediate post-dominator of a divergent branch is the SIMT
    reconvergence point used by the simulator. *)

type t = { idom : int array; rpo_index : int array }

val compute :
  n:int ->
  entry:int ->
  succs:(int -> int list) ->
  preds:(int -> int list) ->
  t
(** Generic immediate-dominator computation over an arbitrary rooted
    graph; [idom.(entry) = entry], unreachable nodes get [-1]. *)

val dominators : Cfg.t -> t

val post_dominators : Cfg.t -> t
(** Computed with virtual exit node [Cfg.nblocks cfg]. *)

val idom : t -> int -> int option
(** Immediate dominator, [None] for the entry. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] (post-)dominate [b]? *)

val reconvergence_pc : Cfg.t -> t -> int -> int option
(** Reconvergence pc for the branch at [pc]: first pc of the branch
    block's immediate post-dominator, or [None] when the branch only
    reconverges at kernel exit. *)
