(** Static structural verification of a kernel.

    Unlike {!Kernel.validate}, which raises on the first malformed
    construct, this pass walks the whole program and returns every
    problem as a structured diagnostic.  Dataflow-dependent checks
    (use-before-def, operand kinds, divergent barriers) layer on top in
    [Dataflow.Verify]. *)

type severity = Error | Warning

type diag = {
  d_kernel : string;
  d_pc : int;  (** -1 when not tied to one instruction *)
  d_severity : severity;
  d_code : string;  (** stable machine-readable code *)
  d_msg : string;
}

val diag :
  ?severity:severity ->
  kernel:string ->
  pc:int ->
  code:string ->
  ('a, Format.formatter, unit, diag) format4 ->
  'a

val severity_name : severity -> string
val to_string : diag -> string
val pp : Format.formatter -> diag -> unit

val errors : diag list -> diag list
(** The fatal subset. *)

val structural : Kernel.t -> diag list
(** Register/predicate bounds, branch targets, parameter references,
    exit reachability, unreachable code.  Program order. *)
