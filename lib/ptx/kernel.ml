(* Kernel representation: a named instruction array with declared
   parameters, register counts and static shared-memory size.

   Branch targets are symbolic labels; [labels] maps each label to the
   index of its [Label] pseudo-instruction.  [target] resolves a branch
   at pc to the index the executor should jump to. *)

open Types

type param = { pname : string; pty : dtype }

type t = {
  kname : string;
  params : param list;
  body : Instr.t array;
  nregs : int; (* number of general registers *)
  npregs : int; (* number of predicate registers *)
  smem_bytes : int; (* static shared memory per CTA *)
  labels : (string, int) Hashtbl.t;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let build_labels body =
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Instr.Label l ->
          if Hashtbl.mem labels l then invalid "duplicate label %s" l;
          Hashtbl.add labels l pc
      | _ -> ())
    body;
  labels

let create ~name ~params ~nregs ~npregs ~smem_bytes body =
  {
    kname = name;
    params;
    body;
    nregs;
    npregs;
    smem_bytes;
    labels = build_labels body;
  }

let param_index k name =
  let rec go i = function
    | [] -> invalid "kernel %s: unknown parameter %s" k.kname name
    | p :: _ when p.pname = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 k.params

let label_pc k l =
  match Hashtbl.find_opt k.labels l with
  | Some pc -> pc
  | None -> invalid "kernel %s: unknown label %s" k.kname l

(* Index of the instruction a branch at [pc] jumps to. *)
let target k pc =
  match k.body.(pc) with
  | Instr.Bra (_, l) -> label_pc k l
  | i -> invalid "kernel %s: pc %d is not a branch: %s" k.kname pc
           (Instr.to_string i)

let check_operand k = function
  | Reg r ->
      if r < 0 || r >= k.nregs then
        invalid "kernel %s: register %%r%d out of range [0,%d)" k.kname r
          k.nregs
  | Imm _ | Fimm _ | Sreg _ -> ()

let check_pred k p =
  if p < 0 || p >= k.npregs then
    invalid "kernel %s: predicate %%p%d out of range [0,%d)" k.kname p k.npregs

(* Structural validation: register bounds, label targets, parameter
   names, and that every path ends in [Exit]. *)
let validate k =
  if Array.length k.body = 0 then invalid "kernel %s: empty body" k.kname;
  Array.iteri
    (fun pc instr ->
      List.iter (fun r -> check_operand k (Reg r)) (Instr.defs instr);
      List.iter (fun r -> check_operand k (Reg r)) (Instr.uses instr);
      List.iter (check_pred k) (Instr.pdefs instr);
      List.iter (check_pred k) (Instr.puses instr);
      match instr with
      | Instr.Bra (_, l) ->
          if not (Hashtbl.mem k.labels l) then
            invalid "kernel %s: pc %d branches to unknown label %s" k.kname pc
              l
      | Instr.Ld_param (_, p) -> ignore (param_index k p)
      | _ -> ())
    k.body;
  let exits = Array.exists Instr.is_exit k.body in
  if not exits then invalid "kernel %s: no exit instruction" k.kname;
  k

let global_load_pcs k =
  let acc = ref [] in
  Array.iteri
    (fun pc i -> if Instr.is_global_load i then acc := pc :: !acc)
    k.body;
  List.rev !acc

let pp ppf k =
  let pp_param ppf p =
    Format.fprintf ppf ".param .%s %s" (string_of_dtype p.pty) p.pname
  in
  Format.fprintf ppf ".kernel %s (%a)@\n" k.kname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_param)
    k.params;
  Format.fprintf ppf ".reg %d .pred %d .shared %d@\n{@\n" k.nregs k.npregs
    k.smem_bytes;
  Array.iter
    (fun i ->
      match i with
      | Instr.Label _ -> Format.fprintf ppf "%a@\n" Instr.pp i
      | _ -> Format.fprintf ppf "  %a;@\n" Instr.pp i)
    k.body;
  Format.fprintf ppf "}@\n"

let to_string k = Format.asprintf "%a" pp k
