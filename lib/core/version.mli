(** Package and simulator-model version identifiers. *)

val version : string
(** Package version, printed by [--version]. *)

val sim_tag : string
(** Revision tag of the simulated machine's semantics.  Folded into the
    sweep cache's content digests, so bumping it invalidates every
    cached result.  Bump on any change that alters simulated statistics
    for some (kernel, config, dataset); not on pure refactors or
    observably-equivalent performance work. *)
