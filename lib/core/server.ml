(* The serve daemon: one select loop multiplexing a listening
   Unix-domain socket, N client connections, and a supervised pool of
   persistent forked workers.

   The parent owns all policy — queueing, fairness, deadlines, retry,
   backoff, the cache — and workers only ever do one thing: read a job
   line, simulate, write an envelope line.  Everything a worker can do
   wrong (crash, hang, write garbage, die mid-line) is detected at the
   pipe and handled by the supervisor; nothing a client can do
   (disconnect mid-job, pipeline junk, stop reading) reaches a worker
   at all. *)

module Json = Gsim.Stats_io.Json
module Framing = Gsim.Stats_io.Framing
module P = Protocol

type chaos = { kill_every : int }

type config = {
  socket_path : string;
  workers : int;
  job_timeout : float;
  queue_limit : int;
  retry_after : float;
  backoff_base : float;
  backoff_cap : float;
  cache_dir : string option;
  chaos : chaos option;
  log : (string -> unit) option;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 4;
    job_timeout = 600.;
    queue_limit = 64;
    retry_after = 0.25;
    backoff_base = 0.05;
    backoff_cap = 2.0;
    cache_dir = None;
    chaos = None;
    log = None;
  }

(* ---- small fd helpers ---- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- the worker process ---- *)

(* A worker loops forever on its job pipe: one line in (a job plus its
   attempt number), one envelope line out.  EOF on the pipe is the
   supervisor saying "drain and exit".  The chaos hook fires between
   reading a job and running it, so an injected SIGKILL always loses
   exactly one in-flight job — the worst case the retry path must
   cover. *)
let worker_main ~chaos job_rd result_wr =
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  Sys.set_signal Sys.sigpipe Sys.Signal_default;
  let split = Framing.Splitter.create () in
  let chunk = Bytes.create 65536 in
  let jobs_seen = ref 0 in
  let process line =
    incr jobs_seen;
    let v = Json.of_string line in
    let attempt = Json.int_field "attempt" v in
    (match chaos with
    | Some { kill_every = n } when n > 0 && attempt = 0 && !jobs_seen mod n = 0
      ->
        Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    let envelope =
      match P.job_of_json (Json.member "job" v) with
      | Error e ->
          Json.Obj
            [ ("status", Json.Str "error");
              ("message", Json.Str ("bad job: " ^ e)) ]
      | Ok job -> (
          match Parsweep.exec_job job with
          | payload ->
              Json.Obj [ ("status", Json.Str "ok"); ("result", payload) ]
          | exception e ->
              Json.Obj
                [ ("status", Json.Str "error");
                  ("message", Json.Str (Printexc.to_string e)) ])
    in
    write_all result_wr (Framing.frame envelope)
  in
  let rec loop () =
    match Framing.Splitter.pop split with
    | Some line ->
        if String.trim line <> "" then process line;
        loop ()
    | None -> (
        match Unix.read job_rd chunk 0 (Bytes.length chunk) with
        | 0 -> () (* supervisor closed the pipe: clean exit *)
        | n ->
            Framing.Splitter.feed split (Bytes.sub_string chunk 0 n);
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  (try loop () with _ -> ());
  Unix._exit 0

(* ---- supervisor state ---- *)

(* One accepted-but-unfinished submission. *)
type pending = {
  p_id : string;  (** the client's request id, echoed in the response *)
  p_client : int;  (** client key; the client may be gone by settle time *)
  p_job : Parsweep.job;
  p_attempt : int;  (** 0, or 1 after a worker crash *)
}

type wproc = {
  wp_pid : int;
  wp_to : Unix.file_descr;  (** job lines in *)
  wp_from : Unix.file_descr;  (** envelope lines out *)
  wp_split : Framing.Splitter.t;
  mutable wp_streak : int;
      (** consecutive crashes on this slot before this process; reset
          by the first envelope it delivers *)
}

type slot_state =
  | Idle of wproc
  | Busy of wproc * pending * float  (** deadline *)
  | Down of { d_until : float; d_crashes : int }

type slot = { mutable s : slot_state }

type client = {
  c_key : int;
  c_fd : Unix.file_descr;
  c_split : Framing.Splitter.t;
  c_out : Buffer.t;  (** bytes owed to the client *)
  mutable c_out_off : int;  (** prefix of [c_out] already written *)
  c_queue : pending Queue.t;
  mutable c_last_served : int;  (** dispatch tick, for round-robin *)
  mutable c_closing : bool;  (** close once [c_out] drains *)
}

(* A client that pipelines requests but never reads responses would
   otherwise grow its out-buffer without bound; past this it is cut
   off like any other misbehaving peer. *)
let max_client_backlog = 8 * 1024 * 1024

(* ---- the server ---- *)

let run ?(on_listening = fun () -> ()) cfg =
  let log fmt =
    Printf.ksprintf
      (fun s -> match cfg.log with Some f -> f s | None -> ())
      fmt
  in
  let workers = max 1 cfg.workers in
  (* A live daemon answers a connect on its socket; a stale file left
     by a crash refuses it and is safe to replace. *)
  let socket_busy () =
    if not (Sys.file_exists cfg.socket_path) then false
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          match Unix.connect fd (Unix.ADDR_UNIX cfg.socket_path) with
          | () -> true
          | exception Unix.Unix_error _ -> false)
  in
  if socket_busy () then
    Error
      (Printf.sprintf "socket %s is owned by a running server"
         cfg.socket_path)
  else begin
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
         Unix.listen fd 64;
         Unix.set_nonblock fd
       with e ->
         close_noerr fd;
         raise e);
      fd
    with
    | exception Unix.Unix_error (err, _, _) ->
        Error
          (Printf.sprintf "cannot bind %s: %s" cfg.socket_path
             (Unix.error_message err))
    | listen_fd ->
        (* -- signals: first TERM/INT drains, second forces -- *)
        let signals = ref 0 in
        let prev_term =
          Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> incr signals))
        in
        let prev_int =
          Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> incr signals))
        in
        let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
        let stopping () = !signals >= 1 in
        let forced () = !signals >= 2 in

        (* -- counters -- *)
        let accepted = ref 0 and completed = ref 0 and failed = ref 0 in
        let timeouts = ref 0 and rejected = ref 0 in
        let cache_hits = ref 0 and cache_misses = ref 0 in
        let cache_damaged = ref 0 in
        let crashes = ref 0 and restarts = ref 0 and disconnects = ref 0 in

        (* -- state -- *)
        let clients : (int, client) Hashtbl.t = Hashtbl.create 16 in
        let fd_client : (Unix.file_descr, client) Hashtbl.t =
          Hashtbl.create 16
        in
        let slots = Array.init workers (fun _ -> { s = Down { d_until = 0.; d_crashes = 0 } }) in
        let retries : pending Queue.t = Queue.create () in
        let queued = ref 0 in
        (* retries are part of the queue bound *)
        let next_key = ref 0 in
        let tick = ref 0 in
        let chunk = Bytes.create 65536 in

        let inflight () =
          Array.fold_left
            (fun n sl -> match sl.s with Busy _ -> n + 1 | _ -> n)
            0 slots
        in
        let alive () =
          Array.fold_left
            (fun n sl -> match sl.s with Idle _ | Busy _ -> n + 1 | _ -> n)
            0 slots
        in
        let health () =
          {
            P.h_queued = !queued;
            h_inflight = inflight ();
            h_clients = Hashtbl.length clients;
            h_workers = workers;
            h_alive = alive ();
            h_accepted = !accepted;
            h_completed = !completed;
            h_failed = !failed;
            h_timeouts = !timeouts;
            h_rejected = !rejected;
            h_cache_hits = !cache_hits;
            h_cache_misses = !cache_misses;
            h_cache_damaged = !cache_damaged;
            h_crashes = !crashes;
            h_restarts = !restarts;
            h_disconnects = !disconnects;
          }
        in

        (* -- worker lifecycle -- *)

        (* Forked children inherit every parent fd; each must drop the
           listen socket, all client sockets, and the pipes of every
           other worker, or EOF-based crash detection breaks. *)
        let parent_fds () =
          let acc = ref [ listen_fd ] in
          Hashtbl.iter (fun fd _ -> acc := fd :: !acc) fd_client;
          Array.iter
            (fun sl ->
              match sl.s with
              | Idle w | Busy (w, _, _) -> acc := w.wp_to :: w.wp_from :: !acc
              | Down _ -> ())
            slots;
          !acc
        in
        let spawn_worker streak =
          let job_rd, job_wr = Unix.pipe () in
          let res_rd, res_wr = Unix.pipe () in
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
              List.iter close_noerr (parent_fds ());
              close_noerr job_wr;
              close_noerr res_rd;
              worker_main ~chaos:cfg.chaos job_rd res_wr
          | pid ->
              close_noerr job_rd;
              close_noerr res_wr;
              {
                wp_pid = pid;
                wp_to = job_wr;
                wp_from = res_rd;
                wp_split = Framing.Splitter.create ();
                wp_streak = streak;
              }
        in
        let backoff n =
          min cfg.backoff_cap (cfg.backoff_base *. (2. ** float_of_int (n - 1)))
        in
        let reap_worker w =
          close_noerr w.wp_to;
          close_noerr w.wp_from;
          try ignore (Unix.waitpid [] w.wp_pid)
          with Unix.Unix_error _ -> ()
        in

        (* -- responding -- *)

        let respond c resp =
          Buffer.add_string c.c_out (Framing.frame (P.response_to_json resp));
          if Buffer.length c.c_out - c.c_out_off > max_client_backlog then begin
            log "client %d: backlog over %d bytes, dropping" c.c_key
              max_client_backlog;
            c.c_closing <- true
          end
        in
        let respond_key key resp =
          match Hashtbl.find_opt clients key with
          | Some c when not c.c_closing -> respond c resp
          | _ -> () (* the client is gone; the work still warmed the cache *)
        in

        (* -- settle paths -- *)

        let settle_ok p payload =
          incr completed;
          (match cfg.cache_dir with
          | Some dir -> Parsweep.cache_store ~dir p.p_job payload
          | None -> ());
          respond_key p.p_client (P.Result { id = p.p_id; payload })
        in
        let settle_failed p message =
          incr failed;
          respond_key p.p_client (P.Job_failed { id = p.p_id; message })
        in

        (* A worker died under an assignment: first loss earns the
           deterministic retry, the second is a real failure. *)
        let lost_assignment p reason =
          if p.p_attempt = 0 then begin
            log "job %s: %s; retrying" p.p_id reason;
            Queue.add { p with p_attempt = 1 } retries;
            incr queued
          end
          else
            settle_failed p
              (Printf.sprintf "worker lost twice (%s)" reason)
        in

        let worker_crashed si reason =
          match slots.(si).s with
          | Down _ -> ()
          | Idle w | Busy (w, _, _) -> (
              incr crashes;
              let streak = w.wp_streak + 1 in
              let delay = backoff streak in
              log "worker %d (slot %d) %s; backoff %.2fs (streak %d)"
                w.wp_pid si reason delay streak;
              let prev = slots.(si).s in
              reap_worker w;
              slots.(si).s <-
                Down
                  { d_until = Unix.gettimeofday () +. delay;
                    d_crashes = streak };
              match prev with
              | Busy (_, p, _) -> lost_assignment p reason
              | _ -> ())
        in

        (* -- dispatch: round-robin over clients, retries first -- *)

        let pick_pending () =
          if not (Queue.is_empty retries) then Some (Queue.pop retries)
          else begin
            let best = ref None in
            Hashtbl.iter
              (fun _ c ->
                if not (Queue.is_empty c.c_queue) then
                  match !best with
                  | Some b when b.c_last_served <= c.c_last_served -> ()
                  | _ -> best := Some c)
              clients;
            match !best with
            | None -> None
            | Some c ->
                incr tick;
                c.c_last_served <- !tick;
                Some (Queue.pop c.c_queue)
          end
        in
        let find_idle () =
          let rec go i =
            if i >= Array.length slots then None
            else match slots.(i).s with Idle _ -> Some i | _ -> go (i + 1)
          in
          go 0
        in
        let dispatch () =
          let progress = ref true in
          while !progress && !queued > 0 do
            progress := false;
            match find_idle () with
            | None -> ()
            | Some si -> (
                match pick_pending () with
                | None -> queued := 0 (* queues and counter out of sync *)
                | Some p -> (
                    decr queued;
                    match slots.(si).s with
                    | Idle w -> (
                        let line =
                          Framing.frame
                            (Json.Obj
                               [ ("attempt", Json.Int p.p_attempt);
                                 ("job", P.job_to_json p.p_job) ])
                        in
                        match write_all w.wp_to line with
                        | () ->
                            slots.(si).s <-
                              Busy
                                ( w,
                                  p,
                                  Unix.gettimeofday () +. cfg.job_timeout );
                            progress := true
                        | exception Unix.Unix_error _ ->
                            (* the worker died before taking the job:
                               treat as a crash; the job keeps its
                               attempt count (nothing was lost) *)
                            Queue.add p retries;
                            incr queued;
                            worker_crashed si "died before accepting a job")
                    | _ -> ()))
          done
        in

        (* -- client lifecycle -- *)

        let drop_client ?(lost = false) c =
          let pending_work =
            (not (Queue.is_empty c.c_queue))
            || Array.exists
                 (fun sl ->
                   match sl.s with
                   | Busy (_, p, _) -> p.p_client = c.c_key
                   | _ -> false)
                 slots
          in
          if lost && pending_work then incr disconnects;
          queued := !queued - Queue.length c.c_queue;
          Queue.clear c.c_queue;
          (* drop queued retries that belonged to it *)
          let keep = Queue.create () in
          Queue.iter
            (fun p ->
              if p.p_client = c.c_key then decr queued else Queue.add p keep)
            retries;
          Queue.clear retries;
          Queue.transfer keep retries;
          Hashtbl.remove fd_client c.c_fd;
          Hashtbl.remove clients c.c_key;
          close_noerr c.c_fd
        in

        let handle_submit c id job =
          incr accepted;
          let served_from_cache =
            match cfg.cache_dir with
            | None -> false
            | Some dir -> (
                match Parsweep.cache_probe ~dir job with
                | Parsweep.Cache_hit payload ->
                    incr cache_hits;
                    incr completed;
                    respond c (P.Result { id; payload });
                    true
                | Parsweep.Cache_miss ->
                    incr cache_misses;
                    false
                | Parsweep.Cache_damaged reason ->
                    (* corrupt store: degrade to a miss, loudly *)
                    incr cache_damaged;
                    log "cache damage: %s" reason;
                    false)
          in
          if not served_from_cache then
            if stopping () then begin
              incr rejected;
              respond c
                (P.Rejected
                   { id; reason = P.Shutting_down; retry_after = 1.0 })
            end
            else if !queued >= cfg.queue_limit then begin
              incr rejected;
              respond c
                (P.Rejected
                   { id;
                     reason = P.Queue_full;
                     retry_after = cfg.retry_after })
            end
            else begin
              Queue.add
                { p_id = id; p_client = c.c_key; p_job = job; p_attempt = 0 }
                c.c_queue;
              incr queued
            end
        in

        let handle_request c line =
          match Json.of_string line with
          | exception Json.Parse_error e ->
              (* framing is line-based, so one unparseable line means
                 the stream can no longer be trusted *)
              respond c
                (P.Error_response { message = "unparseable request: " ^ e });
              c.c_closing <- true
          | v -> (
              match P.request_of_json v with
              | Error e -> respond c (P.Error_response { message = e })
              | Ok (P.Submit { id; job }) -> handle_submit c id job
              | Ok P.Health -> respond c (P.Health_report (health ()))
              | Ok P.Ping -> respond c P.Pong)
        in

        let client_readable c =
          match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ ->
              log "client %d: connection lost" c.c_key;
              drop_client ~lost:true c
          | 0 ->
              (* EOF: a clean goodbye if nothing is owed or pending;
                 [drop_client] counts it as a disconnect otherwise *)
              drop_client ~lost:true c
          | n ->
              Framing.Splitter.feed c.c_split (Bytes.sub_string chunk 0 n);
              let continue_ = ref true in
              while !continue_ && not c.c_closing do
                match Framing.Splitter.pop c.c_split with
                | None -> continue_ := false
                | Some line ->
                    if String.trim line <> "" then handle_request c line
              done
        in

        let client_writable c =
          let len = Buffer.length c.c_out - c.c_out_off in
          if len > 0 then begin
            let s = Buffer.sub c.c_out c.c_out_off (min len 65536) in
            match Unix.write_substring c.c_fd s 0 (String.length s) with
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
            | exception Unix.Unix_error _ -> drop_client ~lost:true c
            | n ->
                c.c_out_off <- c.c_out_off + n;
                if c.c_out_off = Buffer.length c.c_out then begin
                  Buffer.clear c.c_out;
                  c.c_out_off <- 0;
                  if c.c_closing then drop_client c
                end
          end
          else if c.c_closing then drop_client c
        in

        let accept_clients () =
          let continue_ = ref true in
          while !continue_ do
            match Unix.accept listen_fd with
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                continue_ := false
            | exception Unix.Unix_error _ -> continue_ := false
            | fd, _ ->
                Unix.set_nonblock fd;
                incr next_key;
                let c =
                  {
                    c_key = !next_key;
                    c_fd = fd;
                    c_split = Framing.Splitter.create ();
                    c_out = Buffer.create 4096;
                    c_out_off = 0;
                    c_queue = Queue.create ();
                    c_last_served = 0;
                    c_closing = false;
                  }
                in
                Hashtbl.replace clients c.c_key c;
                Hashtbl.replace fd_client fd c
          done
        in

        (* -- worker pipe events -- *)

        let worker_readable si =
          match slots.(si).s with
          | Down _ -> ()
          | (Idle w | Busy (w, _, _)) as state -> (
              match Unix.read w.wp_from chunk 0 (Bytes.length chunk) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error _ ->
                  worker_crashed si "result pipe error"
              | 0 -> worker_crashed si "crashed (pipe closed)"
              | n -> (
                  Framing.Splitter.feed w.wp_split (Bytes.sub_string chunk 0 n);
                  match Framing.Splitter.pop w.wp_split with
                  | None -> ()
                  | Some line -> (
                      match state with
                      | Busy (_, p, _) -> (
                          match Json.of_string line with
                          | exception Json.Parse_error _ ->
                              (* garbage where an envelope should be:
                                 the worker can no longer be trusted;
                                 the slot is still Busy, so the crash
                                 path retries the assignment *)
                              worker_crashed si "shipped garbage"
                          | v -> (
                              match
                                (Json.member "status" v, Json.member "result" v)
                              with
                              | Json.Str "ok", payload when payload <> Json.Null
                                ->
                                  w.wp_streak <- 0;
                                  slots.(si).s <- Idle w;
                                  settle_ok p payload
                              | Json.Str "error", _ ->
                                  let msg =
                                    match Json.member "message" v with
                                    | Json.Str m -> m
                                    | _ -> "worker reported an error"
                                  in
                                  w.wp_streak <- 0;
                                  slots.(si).s <- Idle w;
                                  settle_failed p msg
                              | _ -> worker_crashed si "malformed envelope"))
                      | _ ->
                          (* an envelope with no assignment: the slot is
                             out of sync; recycle it *)
                          worker_crashed si "unexpected output while idle")))
        in

        let check_deadlines now =
          Array.iteri
            (fun si sl ->
              match sl.s with
              | Busy (w, p, deadline) when now > deadline ->
                  incr timeouts;
                  log "job %s: deadline %.1fs expired, killing worker %d"
                    p.p_id cfg.job_timeout w.wp_pid;
                  (try Unix.kill w.wp_pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  reap_worker w;
                  (* a timeout is the job's verdict, not the worker's:
                     respawn without backoff and answer distinctly *)
                  slots.(si).s <- Idle (spawn_worker w.wp_streak);
                  respond_key p.p_client
                    (P.Job_timeout { id = p.p_id; after = cfg.job_timeout })
              | _ -> ())
            slots
        in

        let respawn_due now =
          Array.iteri
            (fun si sl ->
              match sl.s with
              | Down { d_until; d_crashes } when now >= d_until ->
                  slots.(si).s <- Idle (spawn_worker d_crashes);
                  if d_crashes > 0 then begin
                    incr restarts;
                    log "slot %d: respawned after %d crash(es)" si d_crashes
                  end
              | _ -> ())
            slots
        in

        (* -- main loop -- *)

        on_listening ();
        log "serving on %s with %d worker(s)" cfg.socket_path workers;
        let draining_logged = ref false in
        (try
           while
             (not (forced ()))
             && ((not (stopping ())) || !queued > 0 || inflight () > 0)
           do
             if stopping () && not !draining_logged then begin
               draining_logged := true;
               log "shutdown requested: draining %d queued + %d in-flight"
                 !queued (inflight ())
             end;
             let now = Unix.gettimeofday () in
             respawn_due now;
             dispatch ();
             let reads = ref [] and writes = ref [] in
             if not (stopping ()) then reads := [ listen_fd ];
             Hashtbl.iter
               (fun fd c ->
                 if not c.c_closing then reads := fd :: !reads;
                 if Buffer.length c.c_out > c.c_out_off || c.c_closing then
                   writes := fd :: !writes)
               fd_client;
             Array.iter
               (fun sl ->
                 match sl.s with
                 | Idle w | Busy (w, _, _) -> reads := w.wp_from :: !reads
                 | Down _ -> ())
               slots;
             let horizon =
               Array.fold_left
                 (fun acc sl ->
                   match sl.s with
                   | Busy (_, _, deadline) -> min acc deadline
                   | Down { d_until; _ } -> min acc d_until
                   | Idle _ -> acc)
                 (now +. 0.25) slots
             in
             let sel_timeout = max 0.01 (horizon -. now) in
             let readable, writable, _ =
               try Unix.select !reads !writes [] sel_timeout
               with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
             in
             List.iter
               (fun fd ->
                 if fd = listen_fd then accept_clients ()
                 else
                   match Hashtbl.find_opt fd_client fd with
                   | Some c -> client_readable c
                   | None ->
                       Array.iteri
                         (fun si sl ->
                           match sl.s with
                           | (Idle w | Busy (w, _, _)) when w.wp_from = fd ->
                               worker_readable si
                           | _ -> ())
                         slots)
               readable;
             List.iter
               (fun fd ->
                 match Hashtbl.find_opt fd_client fd with
                 | Some c -> client_writable c
                 | None -> ())
               writable;
             check_deadlines (Unix.gettimeofday ())
           done
         with e ->
           (* a supervisor bug must still tear the pool down *)
           log "fatal: %s" (Printexc.to_string e));

        (* -- teardown: flush clients, retire workers, remove socket -- *)

        if forced () then log "forced shutdown: abandoning queued work";
        let final = health () in
        (* flush what clients are owed, briefly *)
        let flush_deadline = Unix.gettimeofday () +. 2.0 in
        let rec flush_clients () =
          let pending_fds =
            Hashtbl.fold
              (fun fd c acc ->
                if Buffer.length c.c_out > c.c_out_off then fd :: acc else acc)
              fd_client []
          in
          if pending_fds <> [] && Unix.gettimeofday () < flush_deadline then begin
            (match Unix.select [] pending_fds [] 0.1 with
            | _, writable, _ ->
                List.iter
                  (fun fd ->
                    match Hashtbl.find_opt fd_client fd with
                    | Some c -> client_writable c
                    | None -> ())
                  writable
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            flush_clients ()
          end
        in
        flush_clients ();
        Hashtbl.iter (fun fd _ -> close_noerr fd) fd_client;
        Hashtbl.reset fd_client;
        Hashtbl.reset clients;
        (* retire workers: EOF first, SIGKILL stragglers — no orphans *)
        Array.iter
          (fun sl ->
            match sl.s with
            | Idle w | Busy (w, _, _) ->
                close_noerr w.wp_to;
                let deadline = Unix.gettimeofday () +. 2.0 in
                let rec wait () =
                  match Unix.waitpid [ Unix.WNOHANG ] w.wp_pid with
                  | 0, _ ->
                      if Unix.gettimeofday () > deadline then begin
                        (try Unix.kill w.wp_pid Sys.sigkill
                         with Unix.Unix_error _ -> ());
                        (try ignore (Unix.waitpid [] w.wp_pid)
                         with Unix.Unix_error _ -> ())
                      end
                      else begin
                        Unix.sleepf 0.01;
                        wait ()
                      end
                  | _ -> ()
                  | exception Unix.Unix_error _ -> ()
                in
                wait ();
                close_noerr w.wp_from
            | Down _ -> ())
          slots;
        close_noerr listen_fd;
        (try Sys.remove cfg.socket_path with Sys_error _ -> ());
        Sys.set_signal Sys.sigterm prev_term;
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigpipe prev_pipe;
        log "drained: %d completed, %d failed, %d timeouts" final.P.h_completed
          final.P.h_failed final.P.h_timeouts;
        Ok final
  end
