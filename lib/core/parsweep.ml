(* Parallel experiment sweep runner: a fork-based worker pool.

   The parent never serializes jobs — a forked child inherits the job
   closure — but results always cross back as JSON text over a pipe,
   the same representation the CLI writes to disk.  The parent
   multiplexes worker pipes with select, enforces per-job wall-clock
   deadlines, and retries a crashed or hung worker exactly once; since
   the simulators are deterministic, a retry reproduces the lost result
   bit-for-bit. *)

module Json = Gsim.Stats_io.Json

type mode = Func | Timing

type job = {
  sj_app : string;
  sj_scale : Workloads.App.scale;
  sj_label : string;
  sj_cfg : Gsim.Config.t;
  sj_mode : mode;
  sj_warmup : bool;
  sj_profile : bool; (* attach a Profile reducer to a timing run *)
  sj_fast_forward : bool; (* timing runs: skip quiescent cycle windows *)
}

let job ?(label = "base") ?(cfg = Gsim.Config.default) ?(mode = Timing)
    ?(warmup = true) ?(profile = false) ?(fast_forward = true)
    ?(scale = Workloads.App.Small) app =
  {
    sj_app = app;
    sj_scale = scale;
    sj_label = label;
    sj_cfg = cfg;
    sj_mode = mode;
    sj_warmup = warmup;
    sj_profile = profile;
    sj_fast_forward = fast_forward;
  }

let jobs ~apps ~scales ~cfgs ?(mode = Timing) ?(warmup = true)
    ?(profile = false) ?(fast_forward = true) () =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun scale ->
          List.map
            (fun (label, cfg) ->
              job ~label ~cfg ~mode ~warmup ~profile ~fast_forward ~scale app)
            cfgs)
        scales)
    apps

let string_of_mode = function Func -> "func" | Timing -> "timing"

(* Stable identity of a job across processes: the sweep cross product
   never repeats an (app, scale, label, mode) combination, so this is
   unique within one sweep and survives a restart with the same CLI
   arguments — the property resume rests on.  The "|profile" suffix is
   appended only for profiled jobs so checkpoints written before the
   flag existed still resolve. *)
let job_key j =
  String.concat "|"
    [ j.sj_app;
      Workloads.App.string_of_scale j.sj_scale;
      j.sj_label;
      string_of_mode j.sj_mode ]
  ^ if j.sj_profile then "|profile" else ""

(* ---- content digests ----

   The sweep cache is content-addressed: a job's digest covers
   everything its result depends on — the application's kernels (as
   text, after a parse → print round trip so formatting-only edits
   don't invalidate), its launch geometry and dataset seed, the full
   machine configuration, the simulation mode, and the simulator
   semantics tag.  Presentation knobs (the config label) and
   observably-equivalent execution knobs (fast-forward, which is
   byte-identical by construction) are deliberately excluded: two jobs
   that must produce the same bytes share one cache entry. *)

let cache_schema = "critload-cache-v1"

(* Kernel identity as normalized text: printing, re-parsing and
   printing again makes the digest a function of the parsed program,
   not of whitespace or comment choices in the builder. *)
let normalize_kernel k =
  Ptx.Kernel.to_string (Ptx.Parse.kernel_of_string (Ptx.Kernel.to_string k))

(* Enumerating an app's launches without simulating between them is
   deterministic — a driver's host logic sees the untouched initial
   memory image — so it names the app's content reproducibly even
   though the enumerated sequence can be shorter than a real run's.
   Deliberately not memoized by app name: two [App.t] values may share
   a name yet differ in seed or kernels, and must digest apart. *)
let app_fingerprint (app : Workloads.App.t) scale =
  let b = Buffer.create 4096 in
  Printf.ksprintf (Buffer.add_string b) "%s|seed=%#x|scale=%s"
    app.Workloads.App.name app.Workloads.App.seed
    (Workloads.App.string_of_scale scale);
  let seen = Hashtbl.create 4 in
  let run = app.Workloads.App.make scale in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some l ->
        let k = l.Gsim.Launch.kernel in
        let kname = k.Ptx.Kernel.kname in
        let gx, gy, gz = l.Gsim.Launch.grid in
        let bx, by, bz = l.Gsim.Launch.block in
        Printf.ksprintf (Buffer.add_string b) "|launch=%s:%dx%dx%d:%dx%dx%d"
          kname gx gy gz bx by bz;
        if not (Hashtbl.mem seen kname) then begin
          Hashtbl.add seen kname ();
          Buffer.add_string b "|kernel=";
          Buffer.add_string b (normalize_kernel k)
        end
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

let job_digest j =
  let app = Workloads.Suite.find j.sj_app in
  let payload =
    String.concat "\n"
      [ cache_schema;
        Version.sim_tag;
        app_fingerprint app j.sj_scale;
        Gsim.Config.to_digest j.sj_cfg;
        string_of_mode j.sj_mode;
        (if j.sj_warmup then "warmup" else "nowarmup");
        (if j.sj_profile then "profile" else "noprofile") ]
  in
  Digest.to_hex (Digest.string payload)

(* ---- on-disk cache ----

   One file per digest.  Entries carry provenance (app, config JSON,
   sim tag) alongside the result payload, written via a temporary file
   and rename so a reader never observes a torn entry.  Lookups treat
   any unreadable or mismatched file as a miss — a corrupt entry costs
   one re-simulation, never a crash. *)

let cache_path ~dir digest = Filename.concat dir (digest ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let cache_store ~dir j payload =
  try
    let digest = job_digest j in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let entry =
      Json.Obj
        [ ("schema", Json.Str cache_schema);
          ("digest", Json.Str digest);
          ("sim_tag", Json.Str Version.sim_tag);
          ("app", Json.Str j.sj_app);
          ("scale", Json.Str (Workloads.App.string_of_scale j.sj_scale));
          ("mode", Json.Str (string_of_mode j.sj_mode));
          ("warmup", Json.Bool j.sj_warmup);
          ("profile", Json.Bool j.sj_profile);
          ("config", Gsim.Stats_io.config_to_json j.sj_cfg);
          ("result", payload) ]
    in
    let path = cache_path ~dir digest in
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Json.to_channel oc entry);
    Unix.rename tmp path
  with _ -> () (* a full disk or permission error degrades to no cache *)

(* ---- result summaries ---- *)

type func_summary = {
  fu_launches : int;
  fu_ctas : int;
  fu_threads_per_cta : int;
  fu_static_d : int;
  fu_static_n : int;
  fu_check : bool;
  fu_warp_insts : int;
  fu_thread_insts : int;
  fu_gld_warps : int array;
  fu_gld_requests : int array;
  fu_gld_active_threads : int array;
  fu_shared_load_warps : int;
  fu_global_store_warps : int;
  fu_atom_warps : int;
}

let func_summary (r : Runner.func_result) =
  let fs = r.Runner.fr_fs in
  {
    fu_launches = r.Runner.fr_launches;
    fu_ctas = r.Runner.fr_ctas;
    fu_threads_per_cta = r.Runner.fr_threads_per_cta;
    fu_static_d = r.Runner.fr_static_d;
    fu_static_n = r.Runner.fr_static_n;
    fu_check = r.Runner.fr_check;
    fu_warp_insts = fs.Gsim.Funcsim.warp_insts;
    fu_thread_insts = fs.Gsim.Funcsim.thread_insts;
    fu_gld_warps = Array.copy fs.Gsim.Funcsim.gld_warps;
    fu_gld_requests = Array.copy fs.Gsim.Funcsim.gld_requests;
    fu_gld_active_threads = Array.copy fs.Gsim.Funcsim.gld_active_threads;
    fu_shared_load_warps = fs.Gsim.Funcsim.shared_load_warps;
    fu_global_store_warps = fs.Gsim.Funcsim.global_store_warps;
    fu_atom_warps = fs.Gsim.Funcsim.atom_warps;
  }

let int_array_to_json a =
  Json.Arr (Array.to_list (Array.map (fun i -> Json.Int i) a))

let int_array_of_json v =
  Array.of_list (List.map Json.get_int (Json.get_list v))

let func_summary_to_json f =
  Json.Obj
    [ ("launches", Json.Int f.fu_launches);
      ("ctas", Json.Int f.fu_ctas);
      ("threads_per_cta", Json.Int f.fu_threads_per_cta);
      ("static_d", Json.Int f.fu_static_d);
      ("static_n", Json.Int f.fu_static_n);
      ("check", Json.Bool f.fu_check);
      ("warp_insts", Json.Int f.fu_warp_insts);
      ("thread_insts", Json.Int f.fu_thread_insts);
      ("gld_warps", int_array_to_json f.fu_gld_warps);
      ("gld_requests", int_array_to_json f.fu_gld_requests);
      ("gld_active_threads", int_array_to_json f.fu_gld_active_threads);
      ("shared_load_warps", Json.Int f.fu_shared_load_warps);
      ("global_store_warps", Json.Int f.fu_global_store_warps);
      ("atom_warps", Json.Int f.fu_atom_warps) ]

let func_summary_of_json v =
  {
    fu_launches = Json.int_field "launches" v;
    fu_ctas = Json.int_field "ctas" v;
    fu_threads_per_cta = Json.int_field "threads_per_cta" v;
    fu_static_d = Json.int_field "static_d" v;
    fu_static_n = Json.int_field "static_n" v;
    fu_check = Json.get_bool (Json.member "check" v);
    fu_warp_insts = Json.int_field "warp_insts" v;
    fu_thread_insts = Json.int_field "thread_insts" v;
    fu_gld_warps = int_array_of_json (Json.member "gld_warps" v);
    fu_gld_requests = int_array_of_json (Json.member "gld_requests" v);
    fu_gld_active_threads =
      int_array_of_json (Json.member "gld_active_threads" v);
    fu_shared_load_warps = Json.int_field "shared_load_warps" v;
    fu_global_store_warps = Json.int_field "global_store_warps" v;
    fu_atom_warps = Json.int_field "atom_warps" v;
  }

type timing_summary = {
  tm_launches : int;
  tm_stats : Gsim.Stats.t;
  tm_profile : Gsim.Profile.t option;
}

let timing_summary_to_json t =
  Json.Obj
    ([ ("launches", Json.Int t.tm_launches);
       ("stats", Gsim.Stats_io.stats_to_json t.tm_stats) ]
    @
    match t.tm_profile with
    | None -> []
    | Some p -> [ ("profile", Gsim.Profile.to_json p) ])

let timing_summary_of_json v =
  {
    tm_launches = Json.int_field "launches" v;
    tm_stats = Gsim.Stats_io.stats_of_json (Json.member "stats" v);
    tm_profile =
      (match Json.member "profile" v with
      | Json.Null -> None
      | p -> Some (Gsim.Profile.of_json p));
  }

(* ---- cache probing ----

   (Below the summary codecs because a probe validates the stored
   payload against them.)  A hit must survive the full gauntlet before
   it is served: the entry parses, names this digest, carries the
   current simulator tag, and its payload decodes as a summary of the
   job's mode.  A legitimately stale entry (another schema revision or
   simulator tag) is a plain miss; an entry that exists but fails a
   structural check is [Cache_damaged] — still served as a miss, but
   counted and surfaced so torn or bit-rotted stores are visible
   instead of silently re-simulating forever. *)

type cache_probe = Cache_hit of Json.t | Cache_miss | Cache_damaged of string

let cache_probe ~dir j =
  match job_digest j with
  | exception _ -> Cache_miss (* unknown app: let execution report it *)
  | digest -> (
      let path = cache_path ~dir digest in
      if not (Sys.file_exists path) then Cache_miss
      else
        let damaged fmt = Printf.ksprintf (fun m -> Cache_damaged m) fmt in
        match Json.of_string (read_file path) with
        | exception Json.Parse_error e -> damaged "%s: unparseable (%s)" path e
        | exception _ -> damaged "%s: unreadable" path
        | v -> (
            match (Json.member "schema" v, Json.member "sim_tag" v) with
            | Json.Str s, _ when s <> cache_schema -> Cache_miss
            | _, Json.Str t when t <> Version.sim_tag -> Cache_miss
            | Json.Str _, Json.Str _ -> (
                match Json.member "digest" v with
                | Json.Str d when d <> digest ->
                    damaged "%s: digest mismatch (entry says %s)" path d
                | Json.Str _ -> (
                    match Json.member "result" v with
                    | Json.Null -> damaged "%s: missing result payload" path
                    | r ->
                        let decodes =
                          match j.sj_mode with
                          | Timing -> (
                              match timing_summary_of_json r with
                              | _ -> true
                              | exception _ -> false)
                          | Func -> (
                              match func_summary_of_json r with
                              | _ -> true
                              | exception _ -> false)
                        in
                        if decodes then Cache_hit r
                        else
                          damaged "%s: result does not decode as a %s summary"
                            path (string_of_mode j.sj_mode))
                | _ -> damaged "%s: missing digest field" path)
            | _ -> damaged "%s: missing schema or sim_tag field" path))

let cache_lookup ~dir j =
  match cache_probe ~dir j with
  | Cache_hit r -> Some r
  | Cache_miss | Cache_damaged _ -> None

(* ---- worker body ---- *)

let exec_job j =
  let app = Workloads.Suite.find j.sj_app in
  let mode = match j.sj_mode with Func -> Runner.Func | Timing -> Runner.Timing in
  let report =
    match
      Runner.run ~cfg:j.sj_cfg ~mode ~scale:j.sj_scale ~warmup:j.sj_warmup
        ~check:true ~profile:j.sj_profile ~fast_forward:j.sj_fast_forward app
    with
    | Ok r -> r
    | Error e -> raise (Gsim.Sim_error.Error e)
  in
  match j.sj_mode with
  | Timing ->
      timing_summary_to_json
        {
          tm_launches = report.Runner.Report.launches;
          tm_stats = Runner.Report.stats_exn report;
          tm_profile = report.Runner.Report.profile;
        }
  | Func -> func_summary_to_json (func_summary (Runner.Report.func_exn report))

(* ---- pool ---- *)

type outcome = Completed of Json.t | Failed of string

type event =
  | Started of job * int
  | Finished of job * float
  | Retried of job * string
  | Gave_up of job * string
  | Skipped of job
  | Cached of job
  | Cache_damage of job * string

(* Raised by a [chaos] hook to make the worker ship deliberately
   corrupted bytes instead of a result envelope — exercises the
   parent's parse-failure → retry path. *)
exception Garble

type worker = {
  w_pid : int;
  w_index : int;
  w_attempt : int;
  w_buf : Buffer.t;
  w_start : float;
  w_deadline : float;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

(* The child must not replay the parent's buffered output nor run its
   at_exit handlers, hence the flushes before fork and _exit after. *)
let spawn ~chaos job_arr index attempt =
  flush stdout;
  flush stderr;
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      (try
         match
           (try chaos ~job_index:index ~attempt; None
            with Garble -> Some "{\"status\": \"ok\", \"result\": tr")
         with
         | Some junk -> write_all wr junk
         | None ->
             let envelope =
               try
                 Json.Obj
                   [ ("status", Json.Str "ok");
                     ("result", exec_job job_arr.(index)) ]
               with e ->
                 Json.Obj
                   [ ("status", Json.Str "error");
                     ("message", Json.Str (Printexc.to_string e)) ]
             in
             write_all wr (Json.to_string envelope)
       with _ -> ());
      (try Unix.close wr with Unix.Unix_error _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close wr;
      (rd, pid)

let run ?(workers = 1) ?(timeout = 600.)
    ?(on_event = fun (_ : event) -> ())
    ?(chaos = fun ~job_index:_ ~attempt:_ -> ())
    ?(prefilled = [])
    ?(on_result = fun (_ : int) (_ : job) (_ : outcome) -> ())
    ?abort_after ?cache_dir job_list =
  let job_arr = Array.of_list job_list in
  let n = Array.length job_arr in
  let results = Array.make n (Failed "never ran") in
  let workers = max 1 workers in
  let settled = ref 0 in
  (* Terminal outcome for job [i]: record it and tell the caller (the
     checkpoint writer) right away, so a later crash loses at most the
     in-flight jobs. *)
  let record i outcome =
    results.(i) <- outcome;
    incr settled;
    on_result i job_arr.(i) outcome
  in
  let pending = Queue.create () in
  Array.iteri
    (fun i j ->
      match List.assoc_opt (job_key j) prefilled with
      | Some o ->
          (* restored from a checkpoint; already on disk, so bypass
             [record] and do not re-emit it to [on_result] *)
          results.(i) <- o;
          incr settled;
          on_event (Skipped j)
      | None -> (
          (* checkpoints (exact resume of this sweep) outrank the
             content cache; a cache hit settles through [record] so it
             still reaches the checkpoint writer *)
          match
            match cache_dir with
            | Some dir -> (
                match cache_probe ~dir j with
                | Cache_hit payload -> Some payload
                | Cache_miss -> None
                | Cache_damaged reason ->
                    (* a torn or corrupt entry costs one re-simulation,
                       never a crash — but the caller hears about it *)
                    on_event (Cache_damage (j, reason));
                    None)
            | None -> None
          with
          | Some payload ->
              record i (Completed payload);
              on_event (Cached j)
          | None -> Queue.add (i, 0) pending))
    job_arr;
  let running : (Unix.file_descr, worker) Hashtbl.t = Hashtbl.create 8 in
  let chunk = Bytes.create 65536 in
  (* A finished worker either completed, failed deterministically (its
     own error envelope — retrying cannot help), or crashed / timed
     out / shipped garbage, which earns the single retry. *)
  let settle w ~crashed reason =
    let j = job_arr.(w.w_index) in
    let envelope =
      if crashed then None
      else
        match Json.of_string (Buffer.contents w.w_buf) with
        | v -> Some v
        | exception Json.Parse_error _ -> None
    in
    match envelope with
    | Some v when Json.member "status" v = Json.Str "ok" ->
        let payload = Json.member "result" v in
        record w.w_index (Completed payload);
        (match cache_dir with
        | Some dir -> cache_store ~dir j payload
        | None -> ());
        on_event (Finished (j, Unix.gettimeofday () -. w.w_start))
    | Some v ->
        let msg =
          match Json.member "message" v with
          | Json.Str m -> m
          | _ -> "worker reported an error"
        in
        record w.w_index (Failed msg);
        on_event (Gave_up (j, msg))
    | None ->
        if w.w_attempt = 0 then begin
          on_event (Retried (j, reason));
          Queue.add (w.w_index, 1) pending
        end
        else begin
          record w.w_index (Failed reason);
          on_event (Gave_up (j, reason))
        end
  in
  let reap fd w ~crashed reason =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Hashtbl.remove running fd;
    let crashed =
      match snd (Unix.waitpid [] w.w_pid) with
      | Unix.WEXITED 0 -> crashed
      | _ -> true
    in
    settle w ~crashed reason
  in
  (* Kill every in-flight worker without settling its job, so the
     checkpoint keeps only genuinely finished work and a resume re-runs
     the rest. *)
  let kill_all () =
    Hashtbl.iter
      (fun fd w ->
        (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      running;
    Hashtbl.reset running
  in
  let abort_hit () =
    match abort_after with Some k -> !settled >= k | None -> false
  in
  (try
     while
       (Hashtbl.length running > 0 || not (Queue.is_empty pending))
       && not (abort_hit ())
     do
       while
         Hashtbl.length running < workers && not (Queue.is_empty pending)
       do
         let index, attempt = Queue.pop pending in
         let rd, pid = spawn ~chaos job_arr index attempt in
         let now = Unix.gettimeofday () in
         Hashtbl.replace running rd
           {
             w_pid = pid;
             w_index = index;
             w_attempt = attempt;
             w_buf = Buffer.create 4096;
             w_start = now;
             w_deadline = now +. timeout;
           };
         on_event (Started (job_arr.(index), attempt))
       done;
       let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) running [] in
       let now = Unix.gettimeofday () in
       let next_deadline =
         Hashtbl.fold
           (fun _ w acc -> min acc w.w_deadline)
           running (now +. 0.25)
       in
       let sel_timeout = max 0.01 (next_deadline -. now) in
       let ready, _, _ =
         try Unix.select fds [] [] sel_timeout
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       List.iter
         (fun fd ->
           match Hashtbl.find_opt running fd with
           | None -> ()
           | Some w -> (
               match Unix.read fd chunk 0 (Bytes.length chunk) with
               | 0 -> reap fd w ~crashed:false "worker closed the pipe"
               | nread -> Buffer.add_subbytes w.w_buf chunk 0 nread
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
         ready;
       let now = Unix.gettimeofday () in
       let overdue =
         Hashtbl.fold
           (fun fd w acc ->
             if now > w.w_deadline then (fd, w) :: acc else acc)
           running []
       in
       List.iter
         (fun (fd, w) ->
           (try Unix.kill w.w_pid Sys.sigkill
            with Unix.Unix_error _ -> ());
           reap fd w ~crashed:true
             (Printf.sprintf "timeout after %.0fs" timeout))
         overdue
     done;
     if abort_hit () then kill_all ()
   with Sys.Break ->
     (* ctrl-C: reap the pool before propagating, so no orphan worker
        keeps simulating after the parent is gone *)
     kill_all ();
     raise Sys.Break);
  results

(* ---- sweep documents ---- *)

let job_envelope j outcome =
  let base =
    [ ("app", Json.Str j.sj_app);
      ("scale", Json.Str (Workloads.App.string_of_scale j.sj_scale));
      ("label", Json.Str j.sj_label);
      ("mode", Json.Str (string_of_mode j.sj_mode)) ]
  in
  match outcome with
  | Completed payload ->
      Json.Obj (base @ [ ("status", Json.Str "ok"); ("result", payload) ])
  | Failed msg ->
      Json.Obj (base @ [ ("status", Json.Str "failed"); ("error", Json.Str msg) ])

let sweep_to_json ~jobs ~outcomes =
  let results =
    List.mapi (fun i j -> job_envelope j outcomes.(i)) jobs
  in
  Json.Obj
    [ ("schema", Json.Str "critload-sweep-v1"); ("results", Json.Arr results) ]

(* ---- checkpoints ----

   One JSON line per settled job, appended as results arrive.  The
   final document is still assembled from the in-memory outcome array
   in job order, so a resumed sweep emits bytes identical to an
   uninterrupted one: the checkpoint only decides which jobs are
   skipped, never the output layout. *)

let outcome_of_envelope v =
  match Json.member "status" v with
  | exception Json.Parse_error _ -> None (* not an object at all *)
  | Json.Str "ok" -> Some (Completed (Json.member "result" v))
  | Json.Str "failed" ->
      let msg =
        match Json.member "error" v with Json.Str m -> m | _ -> "failed"
      in
      Some (Failed msg)
  | _ -> None

let checkpoint_line j outcome =
  Json.to_string
    (Json.Obj
       [ ("key", Json.Str (job_key j)); ("envelope", job_envelope j outcome) ])

let read_checkpoint ?(on_corrupt = fun ~line:_ ~reason:_ -> ()) path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let acc = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then
           match Json.of_string line with
           | v -> (
               match
                 ( Json.member "key" v,
                   outcome_of_envelope (Json.member "envelope" v) )
               with
               | Json.Str k, Some o -> acc := (k, o) :: !acc
               | _ ->
                   on_corrupt ~line:!lineno
                     ~reason:"well-formed JSON but not a checkpoint record")
           (* a line cut short by the crash that made the checkpoint
              matter: drop it (the job simply re-runs) — but report it,
              so an unexpectedly mangled checkpoint is visible *)
           | exception Json.Parse_error e ->
               on_corrupt ~line:!lineno ~reason:e
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !acc
  end
