(** Standardized process exit codes for the [critload] CLI.

    Every subcommand maps its terminal conditions onto this table, so
    scripts and the test suite can dispatch on the code instead of
    scraping stderr.  Codes 124/125 remain cmdliner's (argument parse
    errors and uncaught exceptions); 130 is the conventional
    128+SIGINT of an interrupted run. *)

val ok : int
(** 0 — the requested work succeeded. *)

val failure : int
(** 1 — the work ran but the check failed: static verification
    diagnostics, a functional host-check mismatch, or a sweep/submit
    with failed jobs. *)

val usage : int
(** 2 — bad usage detected by the subcommand itself (unknown
    application name, incoherent flag combination).  Cmdliner's own
    parse errors keep its conventional 124. *)

val sim_error : int
(** 3 — the simulator reported a structured {!Gsim.Sim_error.t}. *)

val timeout : int
(** 4 — a deadline expired: a served job exceeded the server's
    per-request deadline, or the submit client's response deadline
    passed. *)

val unavailable : int
(** 5 — the serve daemon could not be reached (connect failure) or
    refused the work past the client's retry budget, or a new daemon
    found its socket already owned by a live server. *)

val interrupted : int
(** 130 — terminated by SIGINT/SIGTERM after a clean drain
    (checkpoints consistent, no orphaned workers). *)
