(* Standardized CLI exit codes; see the interface for the table. *)

let ok = 0
let failure = 1
let usage = 2
let sim_error = 3
let timeout = 4
let unavailable = 5
let interrupted = 130
