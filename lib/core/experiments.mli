(** One function per paper table/figure: structured rows for tests plus
    a text renderer for the bench harness.  EXPERIMENTS.md records the
    shapes to compare against the paper. *)

open Dataflow.Classify

val func_cap : int
(** Warp-instruction cap of the functional runs. *)

val set_timing_cap : int -> unit
(** Override the per-app warp-instruction cap of the timing runs (the
    bench harness exposes this as [--cap]; default 120k). *)

val timing_cfg :
  ?cfg:Gsim.Config.t -> ?max_warp_insts:int -> unit -> Gsim.Config.t

val all_apps : Workloads.App.t list

val func_result :
  ?check:bool -> Workloads.App.scale -> Workloads.App.t ->
  Runner.func_result
(** Cached functional run (several figures share them). *)

val timing_report :
  ?cfg:Gsim.Config.t -> Workloads.App.scale -> Workloads.App.t ->
  Runner.Report.t
(** Cached timing run (cache bypassed when [cfg] is supplied). *)

(** {1 Table I — application characteristics} *)

type table1_row = {
  t1_name : string;
  t1_category : string;
  t1_ctas : int;
  t1_threads_per_cta : int;
  t1_total_insts : int;
  t1_gld_insts : int;
  t1_gld_fraction : float;
}

val table1 : Workloads.App.scale -> table1_row list
val render_table1 : Workloads.App.scale -> string

(** {1 Table II / III} *)

val render_table2 : unit -> string
val render_table3 : Workloads.App.scale -> string

(** {1 Fig 1 — load classification} *)

type fig1_row = {
  f1_name : string;
  f1_static_d : int;
  f1_static_n : int;
  f1_dyn_d_fraction : float;
}

val fig1 : Workloads.App.scale -> fig1_row list
val render_fig1 : Workloads.App.scale -> string

(** {1 Fig 2 — requests per warp / active thread} *)

type fig2_row = {
  f2_name : string;
  f2_req_per_warp : load_class -> float;
  f2_req_per_thread : load_class -> float;
}

val fig2 : Workloads.App.scale -> fig2_row list
val render_fig2 : Workloads.App.scale -> string

(** {1 Fig 3 / Fig 4} *)

val fig3 : Workloads.App.scale -> Workloads.App.t -> float array
(** L1 cycle-outcome fractions, indexed by [Stats.l1_event_index]. *)

val render_fig3 : Workloads.App.scale -> string

val fig4 : Workloads.App.scale -> Workloads.App.t -> float * float * float
(** (SP, SFU, LD/ST) first-stage busy fractions. *)

val render_fig4 : Workloads.App.scale -> string

(** {1 Fig 5 — turnaround breakdown} *)

val fig5 :
  Workloads.App.scale ->
  Workloads.App.t ->
  (float * float * float * float) * (float * float * float * float)
(** ((N breakdown), (D breakdown)) — each (unloaded, rsrv_prev,
    rsrv_cur, wasted). *)

val render_fig5 : Workloads.App.scale -> string

(** {1 Fig 6 / Fig 7 — per-pc turnaround vs request count} *)

type fig6_series = {
  f6_app : string;
  f6_kernel : string;
  f6_pc : int;
  f6_cls : load_class;
  f6_points : (int * float) list;
}

val fig6 : Workloads.App.scale -> fig6_series list
val render_fig6 : Workloads.App.scale -> string

type fig7_row = {
  f7_nreq : int;
  f7_count : int;
  f7_common : float;
  f7_gap_l1d : float;
  f7_gap_icnt_l2 : float;
  f7_gap_l2_icnt : float;
}

val fig7 : Workloads.App.scale -> (string * int) * fig7_row list
val render_fig7 : Workloads.App.scale -> string

(** {1 Fig 8 — miss ratios} *)

val fig8 :
  Workloads.App.scale ->
  Workloads.App.t ->
  (float * float) * (float * float)
(** ((L1 N, L2 N), (L1 D, L2 D)). *)

val render_fig8 : Workloads.App.scale -> string

(** {1 Figs 9-12 — functional-side metrics} *)

val fig9 : Workloads.App.scale -> Workloads.App.t -> float
val render_fig9 : Workloads.App.scale -> string
val fig10 : Workloads.App.scale -> Workloads.App.t -> float * float
val render_fig10 : Workloads.App.scale -> string
val fig11 : Workloads.App.scale -> Workloads.App.t -> Gsim.Funcsim.sharing
val render_fig11 : Workloads.App.scale -> string
val fig12 : Workloads.App.scale -> Workloads.App.t -> (int * float) list
val render_fig12 : Workloads.App.scale -> string

(** {1 Input-size sensitivity} *)

type sensitivity_row = {
  sn_app : string;
  sn_scale : string;
  sn_dyn_d_fraction : float;
  sn_req_per_thread_n : float;
}

val sensitivity : string list -> sensitivity_row list
(** Classification metrics across dataset scales (cf. Burtscher et al.:
    irregularity is largely input-size independent). *)

val render_sensitivity : unit -> string

(** {1 Section X ablations} *)

type ablation_row = {
  ab_app : string;
  ab_variant : string;
  ab_cycles : int;
  ab_l1_miss_n : float;
  ab_turnaround_n : float;
  ab_fail_frac : float;
}

val ablation_run :
  Workloads.App.scale -> Workloads.App.t -> Gsim.Config.t -> string ->
  ablation_row

val ablate_split : Workloads.App.scale -> ablation_row list
val render_ablate_split : Workloads.App.scale -> string
val ablate_cta : Workloads.App.scale -> ablation_row list
val render_ablate_cta : Workloads.App.scale -> string

val ablate_prefetch : Workloads.App.scale -> ablation_row list
val render_ablate_prefetch : Workloads.App.scale -> string

val ablate_advisor : Workloads.App.scale -> ablation_row list
val render_ablate_advisor : Workloads.App.scale -> string

val ablate_bypass : Workloads.App.scale -> ablation_row list
val render_ablate_bypass : Workloads.App.scale -> string

val ablate_warpsched : Workloads.App.scale -> ablation_row list
val render_ablate_warpsched : Workloads.App.scale -> string

val ablate_l2 :
  Workloads.App.scale -> (string * string * int * float * float) list

val render_ablate_l2 : Workloads.App.scale -> string

(** {1 Memory-system policy sweep}

    Every app under every first-class {!Gsim.Config.policy}, run
    through the cached parallel sweep runner ({!Parsweep}) with
    profiling on.  Speedup is baseline cycles over the policy's
    cycles; the D/N reservation-fail columns count L1 probe cycles
    lost to reservation failures per load class (the profile
    reducer's [cp_l1_fail] totals), with the N-class change relative
    to baseline. *)

type policy_row = {
  po_app : string;
  po_category : string;
  po_policy : string;
  po_cycles : int;
  po_speedup : float;
  po_fail_d : int;
  po_fail_n : int;
  po_fail_n_delta : float;
}

val default_policies : Gsim.Config.policy list
(** Baseline, IAR, and holistic with their default parameters. *)

val policy_sweep :
  ?policies:Gsim.Config.policy list ->
  ?workers:int ->
  ?cache_dir:string ->
  Workloads.App.scale ->
  policy_row list
(** Rows ordered app-major then policy; jobs that failed in the pool
    are dropped (speedup falls back to 1.0 when an app's baseline row
    is missing). *)

val render_policy_rows : policy_row list -> string
(** Table rendering of already-computed rows (the bench harness runs
    the sweep once and feeds both the table and its JSON export). *)

val render_policy_sweep :
  ?policies:Gsim.Config.policy list ->
  ?workers:int ->
  ?cache_dir:string ->
  Workloads.App.scale ->
  string
