(** The [critload serve] daemon: a long-running, crash-tolerant sweep
    service.

    One process owns a Unix-domain stream socket and multiplexes any
    number of concurrent clients (speaking {!Protocol} over JSONL
    framing) onto a supervised pool of forked worker processes.  The
    design treats failure as the normal case:

    - {b Supervision.}  Each worker slot is watched; a worker that
      crashes (or ships garbage) is reaped and its slot respawned with
      capped exponential backoff.  A job lost to a crash is retried
      once on another worker — simulation is deterministic, so the
      retry reproduces the lost result bit-for-bit.  A job that
      crashes twice fails loudly ({!Protocol.Job_failed}), never
      silently.
    - {b Deadlines.}  Every request carries the server's per-job
      wall-clock deadline; an overdue worker is SIGKILLed and the
      client receives a distinct {!Protocol.Job_timeout} (no retry —
      a timeout is evidence the job does not fit the budget).
    - {b Backpressure.}  The pending queue is bounded; a submission
      that would overflow it is turned away immediately with
      {!Protocol.Rejected} and a [retry_after] hint, never buffered
      without bound.
    - {b Fairness.}  Queued work is dispatched round-robin across
      clients (least-recently-served first), so one client pipelining
      hundreds of jobs cannot starve another's single request.
    - {b Cache degradation.}  With a content-addressed store
      configured, submissions are probed through
      {!Parsweep.cache_probe}; torn or corrupt entries are served as
      misses, counted, and reported — the daemon never returns bytes
      from a damaged entry and never dies over one.
    - {b Graceful shutdown.}  SIGTERM/SIGINT stops intake (new
      submissions are rejected as [Shutting_down]), drains queued and
      in-flight jobs, flushes client responses, reaps every worker (no
      orphans), removes the socket, and returns the final counters.  A
      second signal forces immediate teardown. *)

(** Deterministic fault injection for the chaos/soak harness:
    [kill_every n] makes each worker SIGKILL itself on every [n]-th
    first-attempt job it is handed, exercising the crash → retry →
    respawn path without ever changing result bytes (retries are
    exempt, so recovery always converges). *)
type chaos = { kill_every : int }

type config = {
  socket_path : string;
  workers : int;  (** worker slots (clamped to at least 1) *)
  job_timeout : float;  (** per-request wall-clock deadline, seconds *)
  queue_limit : int;  (** bound on queued (not yet dispatched) jobs *)
  retry_after : float;  (** hint sent with [Queue_full] rejections *)
  backoff_base : float;  (** first respawn delay after a crash *)
  backoff_cap : float;  (** ceiling of the exponential backoff *)
  cache_dir : string option;  (** content-addressed store; [None] = off *)
  chaos : chaos option;  (** fault injection; [None] in production *)
  log : (string -> unit) option;  (** event log sink; [None] = quiet *)
}

val default_config : socket_path:string -> config
(** 4 workers, 600 s deadline, queue bound 64, retry-after 0.25 s,
    backoff 0.05 s doubling to a 2 s cap, no cache, no chaos, quiet. *)

val run :
  ?on_listening:(unit -> unit) -> config -> (Protocol.health, string) result
(** Bind the socket and serve until SIGTERM or SIGINT, then drain and
    return the final counters.  [on_listening] fires once the socket
    accepts connections.  [Error] covers startup only: the socket path
    is owned by a live daemon (detected by connecting to it — a stale
    socket file left by a crash is silently replaced) or cannot be
    bound.  Once serving, client churn, worker crashes, and store
    corruption are handled, counted, and never fatal. *)
