(* Wire protocol of the serve daemon: newline-framed JSON objects over
   a Unix-domain socket.  Decoding never raises — every byte here
   arrived from an untrusted peer, so malformed input becomes an
   [Error] the server can answer instead of a crash. *)

module Json = Gsim.Stats_io.Json

let schema = "critload-serve-v1"

(* ---- job specifications ---- *)

let job_to_json (j : Parsweep.job) =
  Json.Obj
    [ ("app", Json.Str j.Parsweep.sj_app);
      ("scale", Json.Str (Workloads.App.string_of_scale j.Parsweep.sj_scale));
      ("label", Json.Str j.Parsweep.sj_label);
      ( "mode",
        Json.Str
          (match j.Parsweep.sj_mode with
          | Parsweep.Func -> "func"
          | Parsweep.Timing -> "timing") );
      ("warmup", Json.Bool j.Parsweep.sj_warmup);
      ("profile", Json.Bool j.Parsweep.sj_profile);
      ("fast_forward", Json.Bool j.Parsweep.sj_fast_forward);
      ("config", Gsim.Stats_io.config_to_json j.Parsweep.sj_cfg) ]

let job_of_json v =
  let ( let* ) r f = Result.bind r f in
  let field name decode ~default =
    match Json.member name v with
    | Json.Null -> Ok default
    | x -> (
        match decode x with
        | r -> Ok r
        | exception Json.Parse_error e ->
            Error (Printf.sprintf "bad %S field: %s" name e)
        | exception Invalid_argument e ->
            Error (Printf.sprintf "bad %S field: %s" name e))
  in
  match Json.member "app" v with
  | exception Json.Parse_error _ -> Error "job is not an object"
  | Json.Str app ->
      let* scale =
        field "scale"
          (fun x -> Workloads.App.scale_of_string (Json.get_str x))
          ~default:Workloads.App.Small
      in
      let* label = field "label" Json.get_str ~default:"base" in
      let* mode =
        field "mode"
          (fun x ->
            match Json.get_str x with
            | "func" -> Parsweep.Func
            | "timing" -> Parsweep.Timing
            | m -> invalid_arg ("unknown mode " ^ m))
          ~default:Parsweep.Timing
      in
      let* warmup = field "warmup" Json.get_bool ~default:true in
      let* profile = field "profile" Json.get_bool ~default:false in
      let* fast_forward = field "fast_forward" Json.get_bool ~default:true in
      let* cfg =
        field "config" Gsim.Stats_io.config_of_json ~default:Gsim.Config.default
      in
      Ok
        (Parsweep.job ~label ~cfg ~mode ~warmup ~profile ~fast_forward ~scale
           app)
  | Json.Null -> Error "job is missing the \"app\" field"
  | _ -> Error "job \"app\" field is not a string"

(* ---- requests ---- *)

type request = Submit of { id : string; job : Parsweep.job } | Health | Ping

let request_to_json = function
  | Submit { id; job } ->
      Json.Obj
        [ ("schema", Json.Str schema);
          ("op", Json.Str "submit");
          ("id", Json.Str id);
          ("job", job_to_json job) ]
  | Health ->
      Json.Obj [ ("schema", Json.Str schema); ("op", Json.Str "health") ]
  | Ping -> Json.Obj [ ("schema", Json.Str schema); ("op", Json.Str "ping") ]

let request_of_json v =
  match (Json.member "schema" v, Json.member "op" v) with
  | exception Json.Parse_error _ -> Error "request is not an object"
  | Json.Str s, _ when s <> schema ->
      Error (Printf.sprintf "unsupported schema %S (this server speaks %s)" s
               schema)
  | _, Json.Str "submit" -> (
      match Json.member "id" v with
      | Json.Str id -> (
          match job_of_json (Json.member "job" v) with
          | Ok job -> Ok (Submit { id; job })
          | Error e -> Error e)
      | _ -> Error "submit request needs a string \"id\"")
  | _, Json.Str "health" -> Ok Health
  | _, Json.Str "ping" -> Ok Ping
  | _, Json.Str op -> Error (Printf.sprintf "unknown op %S" op)
  | _, _ -> Error "request is missing the \"op\" field"

(* ---- responses ---- *)

type reject_reason = Queue_full | Shutting_down

let reject_reason_to_string = function
  | Queue_full -> "queue_full"
  | Shutting_down -> "shutting_down"

let reject_reason_of_string = function
  | "queue_full" -> Some Queue_full
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type health = {
  h_queued : int;
  h_inflight : int;
  h_clients : int;
  h_workers : int;
  h_alive : int;
  h_accepted : int;
  h_completed : int;
  h_failed : int;
  h_timeouts : int;
  h_rejected : int;
  h_cache_hits : int;
  h_cache_misses : int;
  h_cache_damaged : int;
  h_crashes : int;
  h_restarts : int;
  h_disconnects : int;
}

let empty_health =
  {
    h_queued = 0;
    h_inflight = 0;
    h_clients = 0;
    h_workers = 0;
    h_alive = 0;
    h_accepted = 0;
    h_completed = 0;
    h_failed = 0;
    h_timeouts = 0;
    h_rejected = 0;
    h_cache_hits = 0;
    h_cache_misses = 0;
    h_cache_damaged = 0;
    h_crashes = 0;
    h_restarts = 0;
    h_disconnects = 0;
  }

(* Field spellings double as the health JSON schema; keep them in sync
   with the README's "Operating the service" table. *)
let health_fields =
  [ ("queued", (fun h -> h.h_queued), fun h x -> { h with h_queued = x });
    ("inflight", (fun h -> h.h_inflight), fun h x -> { h with h_inflight = x });
    ("clients", (fun h -> h.h_clients), fun h x -> { h with h_clients = x });
    ("workers", (fun h -> h.h_workers), fun h x -> { h with h_workers = x });
    ("alive", (fun h -> h.h_alive), fun h x -> { h with h_alive = x });
    ("accepted", (fun h -> h.h_accepted), fun h x -> { h with h_accepted = x });
    ( "completed",
      (fun h -> h.h_completed),
      fun h x -> { h with h_completed = x } );
    ("failed", (fun h -> h.h_failed), fun h x -> { h with h_failed = x });
    ("timeouts", (fun h -> h.h_timeouts), fun h x -> { h with h_timeouts = x });
    ("rejected", (fun h -> h.h_rejected), fun h x -> { h with h_rejected = x });
    ( "cache_hits",
      (fun h -> h.h_cache_hits),
      fun h x -> { h with h_cache_hits = x } );
    ( "cache_misses",
      (fun h -> h.h_cache_misses),
      fun h x -> { h with h_cache_misses = x } );
    ( "cache_damaged",
      (fun h -> h.h_cache_damaged),
      fun h x -> { h with h_cache_damaged = x } );
    ("crashes", (fun h -> h.h_crashes), fun h x -> { h with h_crashes = x });
    ("restarts", (fun h -> h.h_restarts), fun h x -> { h with h_restarts = x });
    ( "disconnects",
      (fun h -> h.h_disconnects),
      fun h x -> { h with h_disconnects = x } ) ]

let health_to_json h =
  Json.Obj (List.map (fun (name, get, _) -> (name, Json.Int (get h))) health_fields)

let health_of_json v =
  List.fold_left
    (fun h (name, _, set) -> set h (Json.int_field name v))
    empty_health health_fields

type response =
  | Result of { id : string; payload : Json.t }
  | Job_failed of { id : string; message : string }
  | Job_timeout of { id : string; after : float }
  | Rejected of { id : string; reason : reject_reason; retry_after : float }
  | Health_report of health
  | Pong
  | Error_response of { message : string }

let response_to_json = function
  | Result { id; payload } ->
      Json.Obj
        [ ("type", Json.Str "result");
          ("id", Json.Str id);
          ("result", payload) ]
  | Job_failed { id; message } ->
      Json.Obj
        [ ("type", Json.Str "failed");
          ("id", Json.Str id);
          ("error", Json.Str message) ]
  | Job_timeout { id; after } ->
      Json.Obj
        [ ("type", Json.Str "timeout");
          ("id", Json.Str id);
          ("after", Json.Float after) ]
  | Rejected { id; reason; retry_after } ->
      Json.Obj
        [ ("type", Json.Str "rejected");
          ("id", Json.Str id);
          ("reason", Json.Str (reject_reason_to_string reason));
          ("retry_after", Json.Float retry_after) ]
  | Health_report h ->
      Json.Obj (("type", Json.Str "health") :: [ ("health", health_to_json h) ])
  | Pong -> Json.Obj [ ("type", Json.Str "pong") ]
  | Error_response { message } ->
      Json.Obj [ ("type", Json.Str "error"); ("message", Json.Str message) ]

let response_of_json v =
  let id () =
    match Json.member "id" v with
    | Json.Str id -> Ok id
    | _ -> Error "response is missing the \"id\" field"
  in
  let ( let* ) r f = Result.bind r f in
  match Json.member "type" v with
  | exception Json.Parse_error _ -> Error "response is not an object"
  | Json.Str "result" ->
      let* id = id () in
      Ok (Result { id; payload = Json.member "result" v })
  | Json.Str "failed" ->
      let* id = id () in
      let message =
        match Json.member "error" v with Json.Str m -> m | _ -> "failed"
      in
      Ok (Job_failed { id; message })
  | Json.Str "timeout" ->
      let* id = id () in
      let after =
        match Json.member "after" v with
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | _ -> 0.
      in
      Ok (Job_timeout { id; after })
  | Json.Str "rejected" -> (
      let* id = id () in
      match Json.member "reason" v with
      | Json.Str r -> (
          match reject_reason_of_string r with
          | Some reason ->
              let retry_after =
                match Json.member "retry_after" v with
                | Json.Float f -> f
                | Json.Int i -> float_of_int i
                | _ -> 0.1
              in
              Ok (Rejected { id; reason; retry_after })
          | None -> Error (Printf.sprintf "unknown reject reason %S" r))
      | _ -> Error "rejected response is missing the \"reason\" field")
  | Json.Str "health" -> (
      match health_of_json (Json.member "health" v) with
      | h -> Ok (Health_report h)
      | exception Json.Parse_error e -> Error ("bad health payload: " ^ e))
  | Json.Str "pong" -> Ok Pong
  | Json.Str "error" ->
      let message =
        match Json.member "message" v with
        | Json.Str m -> m
        | _ -> "protocol error"
      in
      Ok (Error_response { message })
  | Json.Str t -> Error (Printf.sprintf "unknown response type %S" t)
  | _ -> Error "response is missing the \"type\" field"
