(* Drives an application (a sequence of kernel launches) through the
   functional or cycle simulator, accumulating statistics across the
   launches and collecting the static load classification of each
   distinct kernel.

   The unified entry point is [run], which returns a [Report.t] for
   either simulation mode; [run_func] and [run_timing] below are the
   mode-specific machinery it drives, private to this module. *)

type mode = Func | Timing

let mode_name = function Func -> "func" | Timing -> "timing"

type func_result = {
  fr_app : Workloads.App.t;
  fr_fs : Gsim.Funcsim.t;
  fr_launches : int;
  fr_ctas : int; (* total CTAs across launches *)
  fr_threads_per_cta : int; (* of the first launch *)
  fr_static_d : int; (* static deterministic global-load instructions *)
  fr_static_n : int;
  fr_check : bool;
}

type timing_result = {
  tr_app : Workloads.App.t;
  tr_stats : Gsim.Stats.t;
  tr_launches : int;
  tr_cfg : Gsim.Config.t;
}

(* Accumulate static per-kernel classification over distinct kernels. *)
let static_counts seen (launch : Gsim.Launch.t) =
  let name = launch.Gsim.Launch.kernel.Ptx.Kernel.kname in
  if Hashtbl.mem seen name then (0, 0)
  else begin
    Hashtbl.add seen name ();
    Dataflow.Classify.count_global launch.Gsim.Launch.classes
  end

let run_func ?(cfg = Gsim.Config.default) ?(max_warp_insts = 0)
    ?(check = true) (app : Workloads.App.t) scale =
  let run = app.Workloads.App.make scale in
  let fs = Gsim.Funcsim.create cfg in
  let seen = Hashtbl.create 8 in
  let launches = ref 0 in
  let ctas = ref 0 in
  let threads_per_cta = ref 0 in
  let d = ref 0 and n = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        incr launches;
        ctas := !ctas + Gsim.Launch.n_ctas launch;
        if !threads_per_cta = 0 then
          threads_per_cta := Gsim.Launch.threads_per_cta launch;
        let sd, sn = static_counts seen launch in
        d := !d + sd;
        n := !n + sn;
        Gsim.Funcsim.run_into fs ~max_warp_insts launch;
        if fs.Gsim.Funcsim.capped then continue_ := false
  done;
  {
    fr_app = app;
    fr_fs = fs;
    fr_launches = !launches;
    fr_ctas = !ctas;
    fr_threads_per_cta = !threads_per_cta;
    fr_static_d = !d;
    fr_static_n = !n;
    fr_check =
      (if check && not fs.Gsim.Funcsim.capped then run.Workloads.App.check ()
       else true);
  }

(* Iterative applications (bfs, sssp, ...) spend their first launches
   on tiny frontiers; measuring only those would mischaracterize the
   steady state the paper reports.  A functional pre-pass finds the
   first launch carrying substantial global-load traffic (>= 25% of the
   busiest launch); the timing pass fast-forwards to it functionally —
   the memory image is shared, so simulation can resume exactly there —
   and cycle-simulates from that point. *)
let warmup_launches ?(cfg = Gsim.Config.default) (app : Workloads.App.t) scale
    =
  let run = app.Workloads.App.make scale in
  let fs = Gsim.Funcsim.create cfg in
  let per_launch = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        let d0 = fs.Gsim.Funcsim.gld_requests.(0) in
        let n0 = fs.Gsim.Funcsim.gld_requests.(1) in
        Gsim.Funcsim.run_into fs launch;
        per_launch :=
          ( fs.Gsim.Funcsim.gld_requests.(0) - d0,
            fs.Gsim.Funcsim.gld_requests.(1) - n0 )
          :: !per_launch
  done;
  (* traffic metric: non-deterministic requests when the app has any
     (the bursty side the paper characterizes), else all requests *)
  let deltas = Array.of_list (List.rev !per_launch) in
  let has_n = Array.exists (fun (_, n) -> n > 0) deltas in
  let counts =
    Array.map (fun (d, n) -> if has_n then n else d + n) deltas
  in
  let peak = Array.fold_left max 1 counts in
  let rec first i =
    if i >= Array.length counts then 0
    else if counts.(i) * 4 >= peak then i
    else first (i + 1)
  in
  first 0

let run_timing ?(cfg = Gsim.Config.default) ?(warmup = true) ?trace
    ?trace_kernel ?(fast_forward = false) (app : Workloads.App.t) scale =
  let skip = if warmup then warmup_launches ~cfg app scale else 0 in
  let run = app.Workloads.App.make scale in
  let machine = Gsim.Gpu.create_machine ~cfg ?trace () in
  let stats = machine.Gsim.Gpu.stats in
  let trace = machine.Gsim.Gpu.trace in
  let ff = Gsim.Funcsim.create cfg in
  let launches = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        if !launches < skip then Gsim.Funcsim.run_into ff launch
        else begin
          (* --kernel filtering: mute the shared trace for launches of
             other kernels instead of rebuilding the machine, so cache
             state still flows across kernel boundaries *)
          let muted =
            match trace_kernel with
            | Some k -> k <> launch.Gsim.Launch.kernel.Ptx.Kernel.kname
            | None -> false
          in
          let ran =
            if muted then
              Gsim.Trace.with_muted trace (fun () ->
                  Gsim.Gpu.run_launch machine ~fast_forward launch)
            else Gsim.Gpu.run_launch machine ~fast_forward launch
          in
          if not ran then continue_ := false
        end;
        incr launches
  done;
  { tr_app = app; tr_stats = stats; tr_launches = !launches; tr_cfg = cfg }

(* Result-returning wrappers: every failure mode a malformed kernel or
   a simulator bug can produce — static verification, unbound
   parameters, memory faults, watchdog stalls — arrives as one typed
   [Sim_error.t] instead of an exception escaping to the caller.
   Kernel construction and parsing errors are folded into the same
   type so callers have a single error channel. *)

let catching f =
  try Ok (f ()) with
  | Gsim.Sim_error.Error e -> Error e
  | Ptx.Kernel.Invalid msg ->
      Error (Gsim.Sim_error.make Gsim.Sim_error.Invalid_kernel "%s" msg)
  | Ptx.Parse.Error msg ->
      Error (Gsim.Sim_error.make Gsim.Sim_error.Invalid_kernel "%s" msg)

(* The unified report: one result shape for both simulation modes, so
   callers (CLI subcommands, the sweep runner, benches) branch on the
   mode they asked for instead of juggling two entry points with
   different record types. *)
module Report = struct
  type t = {
    app : Workloads.App.t;
    mode : mode;
    cfg : Gsim.Config.t;
    scale : Workloads.App.scale;
    launches : int;
    stats : Gsim.Stats.t option;  (* Timing *)
    func : func_result option;  (* Func *)
    profile : Gsim.Profile.t option;  (* Timing with ~profile:true *)
    truncated : bool;
  }

  let stats_exn t =
    match t.stats with
    | Some s -> s
    | None -> invalid_arg "Runner.Report.stats_exn: functional report"

  let func_exn t =
    match t.func with
    | Some f -> f
    | None -> invalid_arg "Runner.Report.func_exn: timing report"
end

(* A trace handle that feeds two sinks.  Used to tee the event stream
   into a profile reducer while still honouring a caller's own trace;
   [Trace.with_muted] on the machine handle mutes both together, which
   is exactly what --kernel filtering wants. *)
let tee_trace a b =
  Gsim.Trace.stream (fun ev ->
      Gsim.Trace.emit a ev;
      Gsim.Trace.emit b ev)

let run ?(cfg = Gsim.Config.default) ?(mode = Timing)
    ?(scale = Workloads.App.Default) ?(warmup = true) ?(check = true)
    ?(func_cap = 0) ?trace ?trace_kernel ?(profile = false)
    ?(fast_forward = true) (app : Workloads.App.t) =
  catching (fun () ->
      match mode with
      | Func ->
          (* Functional runs ignore the config's instruction cap (the
             cap is a property of the cycle simulation); [func_cap]
             (0 = uncapped) bounds exploratory runs, at the price of
             skipping host-reference verification when it fires. *)
          let r = run_func ~cfg ~max_warp_insts:func_cap ~check app scale in
          {
            Report.app;
            mode;
            cfg;
            scale;
            launches = r.fr_launches;
            stats = None;
            func = Some r;
            profile = None;
            truncated = r.fr_fs.Gsim.Funcsim.capped;
          }
      | Timing ->
          let prof = if profile then Some (Gsim.Profile.create ()) else None in
          let trace =
            match (prof, trace) with
            | None, t -> t
            | Some p, None -> Some (Gsim.Profile.sink p)
            | Some p, Some user -> Some (tee_trace (Gsim.Profile.sink p) user)
          in
          let r =
            run_timing ~cfg ~warmup ?trace ?trace_kernel ~fast_forward app
              scale
          in
          {
            Report.app;
            mode;
            cfg;
            scale;
            launches = r.tr_launches;
            stats = Some r.tr_stats;
            func = None;
            profile = prof;
            truncated = r.tr_stats.Gsim.Stats.truncated;
          })
