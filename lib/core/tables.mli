(** Plain-text table rendering for the experiment harness. *)

val render : ?title:string -> header:string list -> string list list -> string
(** Aligned columns with a header rule. *)

val pct : float -> string
(** [0.123] as ["12.3%"]. *)

val f2 : float -> string
val f1 : float -> string
val int : int -> string
