(** Classification-guided policy advisor — the paper's Section X.A made
    concrete: instruction-feature-aware mechanisms selectively applied
    to load instructions.

    Combines the D/N classification, the static coalescing prediction
    and sequential-walk detection into a per-load hardware policy:
    deterministic loads are left alone, walking non-deterministic loads
    get next-line prefetch, true gathers get warp splitting. *)

type advice =
  | Leave_alone
  | Prefetch_next_line of int  (** sequential walk, byte step *)
  | Split_warp of int  (** sub-warp width *)

type load_advice = {
  la_kernel : string;
  la_pc : int;
  la_class : Dataflow.Classify.load_class;
  la_prediction : Dataflow.Stride.prediction;
  la_walk : int option;
  la_advice : advice;
}

val string_of_advice : advice -> string
val advise_kernel : ?block:int * int * int -> Ptx.Kernel.t -> load_advice list

val advise_app : Workloads.App.t -> Workloads.App.scale -> load_advice list
(** Advice for every distinct kernel the application launches. *)

val policies :
  load_advice list -> ((string * int) * Gsim.Config.load_policy) list
(** Per-pc simulator policies implementing the advice (feed into
    [Gsim.Config.pc_policies]). *)

val pp_advice : Format.formatter -> load_advice list -> unit
