(* Classification-guided policy advisor — the paper's Section X.A made
   concrete: "design instruction-feature-aware mechanisms that can be
   selectively applied to load instructions according to their
   characteristics".

   For every global load the advisor combines three static analyses —
   the D/N classification (the paper's core), the lane-stride
   coalescing prediction, and sequential-walk detection — into a
   per-instruction hardware policy:

     - deterministic / statically coalesced loads: leave alone;
     - non-deterministic loads that walk sequentially (edge arrays):
       next-line prefetch, the [16]-style specialization;
     - other non-deterministic loads (true gathers): warp splitting to
       throttle their reservation bursts.

   [policies] converts the advice into the per-pc overrides the
   simulator's Config accepts, so the guided machine can be compared
   against the one-knob global variants. *)

module Classify = Dataflow.Classify
module Stride = Dataflow.Stride
module Induction = Dataflow.Induction

type advice =
  | Leave_alone
  | Prefetch_next_line of int (* sequential walk, byte step *)
  | Split_warp of int (* sub-warp width *)

type load_advice = {
  la_kernel : string;
  la_pc : int;
  la_class : Classify.load_class;
  la_prediction : Stride.prediction;
  la_walk : int option;
  la_advice : advice;
}

let string_of_advice = function
  | Leave_alone -> "leave alone"
  | Prefetch_next_line s -> Printf.sprintf "prefetch (walks %+dB/iter)" s
  | Split_warp w -> Printf.sprintf "split into %d-lane sub-warps" w

let split_width = 8

let advise_kernel ?block (k : Ptx.Kernel.t) =
  let classes = Classify.classify k in
  let predictions = Stride.predict ?block k in
  let walks = Induction.walking_loads k in
  List.map
    (fun (lp : Stride.load_prediction) ->
      let pc = lp.Stride.lp_pc in
      let cls =
        Option.value ~default:Classify.Deterministic
          (Classify.class_of_global_load classes pc)
      in
      let walk =
        List.find_map
          (fun (w : Induction.walk) ->
            if w.Induction.w_pc = pc then Some w.Induction.w_step else None)
          walks
      in
      let advice =
        match (cls, walk) with
        | Classify.Deterministic, _ -> Leave_alone
        | Classify.Nondeterministic, Some s when abs s <= 32 && s <> 0 ->
            Prefetch_next_line s
        | Classify.Nondeterministic, _ -> (
            match lp.Stride.lp_prediction with
            | Stride.Irregular -> Split_warp split_width
            | Stride.Broadcast | Stride.Coalesced _ | Stride.Strided _ ->
                Leave_alone)
      in
      {
        la_kernel = k.Ptx.Kernel.kname;
        la_pc = pc;
        la_class = cls;
        la_prediction = lp.Stride.lp_prediction;
        la_walk = walk;
        la_advice = advice;
      })
    predictions

(* Advice for every distinct kernel an application launches. *)
let advise_app (app : Workloads.App.t) scale =
  let run = app.Workloads.App.make scale in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        let k = launch.Gsim.Launch.kernel in
        if not (Hashtbl.mem seen k.Ptx.Kernel.kname) then begin
          Hashtbl.add seen k.Ptx.Kernel.kname ();
          acc := !acc @ advise_kernel ~block:launch.Gsim.Launch.block k
        end
  done;
  !acc

(* Per-pc simulator policies implementing the advice. *)
let policies advice_list =
  List.filter_map
    (fun la ->
      match la.la_advice with
      | Leave_alone -> None
      | Prefetch_next_line _ ->
          Some
            ( (la.la_kernel, la.la_pc),
              { Gsim.Config.no_policy with Gsim.Config.lp_prefetch = true } )
      | Split_warp w ->
          Some
            ( (la.la_kernel, la.la_pc),
              { Gsim.Config.no_policy with Gsim.Config.lp_split = w } ))
    advice_list

let pp_advice ppf advice_list =
  List.iter
    (fun la ->
      Format.fprintf ppf "  %-14s pc %3d  %s  %-14s -> %s@\n" la.la_kernel
        la.la_pc
        (Classify.short_class la.la_class)
        (Stride.string_of_prediction la.la_prediction)
        (string_of_advice la.la_advice))
    advice_list
