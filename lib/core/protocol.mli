(** Wire protocol of the [critload serve] daemon.

    Clients speak newline-framed JSON ({!Gsim.Stats_io.Framing}) over a
    Unix-domain stream socket: one request object per line in, one
    response object per line out.  Submissions are asynchronous —
    responses to one connection arrive as their jobs settle, not
    necessarily in submission order — so every submit carries a
    client-chosen [id] echoed verbatim in its response.

    The protocol is versioned by {!schema}; a server answers a request
    whose schema it does not speak with {!Error_response}. *)

module Json = Gsim.Stats_io.Json

val schema : string
(** ["critload-serve-v1"]. *)

(** {1 Job specifications}

    The unit of work is exactly a sweep job ({!Parsweep.job}), so a
    served result is byte-identical to what [critload sweep] or
    {!Parsweep.exec_job} produces for the same specification. *)

val job_to_json : Parsweep.job -> Json.t
(** Full job specification, config included (via
    {!Gsim.Stats_io.config_to_json}). *)

val job_of_json : Json.t -> (Parsweep.job, string) result
(** Decode a job specification.  An absent ["config"] field means
    {!Gsim.Config.default}; unknown scales, modes, or malformed configs
    are reported as [Error] — never an exception, since the bytes come
    from an untrusted socket.  The application name is {e not} resolved
    here: an unknown app travels to execution and fails there, exactly
    as in a sweep. *)

(** {1 Requests} *)

type request =
  | Submit of { id : string; job : Parsweep.job }
      (** run one job; the response echoes [id] *)
  | Health  (** snapshot the daemon's counters and queue state *)
  | Ping  (** liveness probe; answered with {!Pong} *)

val request_to_json : request -> Json.t

val request_of_json : Json.t -> (request, string) result
(** Never raises: malformed or unknown requests come back as [Error]
    (the server answers them with {!Error_response}). *)

(** {1 Responses} *)

(** Why a submission was turned away rather than queued. *)
type reject_reason =
  | Queue_full  (** backpressure: the bounded queue is at capacity *)
  | Shutting_down  (** the daemon is draining and accepts no new work *)

val reject_reason_to_string : reject_reason -> string

(** Point-in-time daemon counters, served under the ["health"] op and
    returned by {!Server.run} as the final tally. *)
type health = {
  h_queued : int;  (** jobs accepted but not yet dispatched *)
  h_inflight : int;  (** jobs currently on a worker *)
  h_clients : int;  (** open client connections *)
  h_workers : int;  (** configured worker slots *)
  h_alive : int;  (** slots with a live worker process *)
  h_accepted : int;
  h_completed : int;
  h_failed : int;
  h_timeouts : int;
  h_rejected : int;
  h_cache_hits : int;
  h_cache_misses : int;
  h_cache_damaged : int;  (** torn/corrupt store entries served as misses *)
  h_crashes : int;  (** worker processes lost to crashes *)
  h_restarts : int;  (** supervisor respawns (after backoff) *)
  h_disconnects : int;  (** clients gone with work still pending *)
}

val empty_health : health

val health_to_json : health -> Json.t
(** Flat object of counters; field spellings are the protocol schema
    documented in the README's "Operating the service" section. *)

val health_of_json : Json.t -> health
(** @raise Json.Parse_error on schema mismatch. *)

type response =
  | Result of { id : string; payload : Json.t }
      (** the job's result payload — bytes identical to
          {!Parsweep.exec_job} output for the same job *)
  | Job_failed of { id : string; message : string }
      (** the job ran (possibly twice) and failed deterministically *)
  | Job_timeout of { id : string; after : float }
      (** the per-request deadline expired; the worker was killed *)
  | Rejected of { id : string; reason : reject_reason; retry_after : float }
      (** not queued; retry no sooner than [retry_after] seconds *)
  | Health_report of health
  | Pong
  | Error_response of { message : string }
      (** the request line itself was unintelligible *)

val response_to_json : response -> Json.t

val response_of_json : Json.t -> (response, string) result
(** Never raises; the inverse of {!response_to_json}. *)
