(** Parallel experiment sweep runner.

    Executes (app x scale x config) jobs across a pool of forked worker
    processes.  Each worker runs one job and ships its result back over
    a pipe as JSON (see {!Gsim.Stats_io}), so results survive the
    process boundary in the same machine-readable form the CLI exports.

    Guarantees:
    - results come back in job order, regardless of completion order;
    - a worker that crashes or exceeds the per-job wall-clock timeout
      is killed and its job retried once on a fresh fork (safe because
      simulation is deterministic — see the determinism test);
    - a job that fails twice yields [Failed], never a corrupted or
      missing slot. *)

type mode =
  | Func  (** functional simulation ({!Runner.run_func}) *)
  | Timing  (** cycle simulation ({!Runner.run_timing}) *)

type job = {
  sj_app : string;  (** application name, resolved via {!Workloads.Suite} *)
  sj_scale : Workloads.App.scale;
  sj_label : string;  (** configuration label, e.g. ["base"] *)
  sj_cfg : Gsim.Config.t;
  sj_mode : mode;
  sj_warmup : bool;  (** timing runs: fast-forward past cold launches *)
  sj_profile : bool;  (** timing runs: attach a {!Gsim.Profile} reducer *)
}

val job :
  ?label:string ->
  ?cfg:Gsim.Config.t ->
  ?mode:mode ->
  ?warmup:bool ->
  ?profile:bool ->
  ?scale:Workloads.App.scale ->
  string ->
  job
(** [job app] with defaults: label ["base"], default config, [Timing]
    mode, warmup on, profiling off, [Small] scale. *)

val jobs :
  apps:string list ->
  scales:Workloads.App.scale list ->
  cfgs:(string * Gsim.Config.t) list ->
  ?mode:mode ->
  ?warmup:bool ->
  ?profile:bool ->
  unit ->
  job list
(** Cross product, ordered app-major (app, then scale, then config). *)

val job_key : job -> string
(** Stable identity ["app|scale|label|mode"] — unique within one sweep
    cross product and reproducible across restarts with the same CLI
    arguments; the key checkpoints and resume match on.  Profiled jobs
    carry a ["|profile"] suffix so pre-existing checkpoints (written
    before the flag existed) still resolve. *)

(** {1 Result summaries} *)

(** JSON-portable digest of a functional run. *)
type func_summary = {
  fu_launches : int;
  fu_ctas : int;
  fu_threads_per_cta : int;
  fu_static_d : int;
  fu_static_n : int;
  fu_check : bool;
  fu_warp_insts : int;
  fu_thread_insts : int;
  fu_gld_warps : int array;  (** by class (D/N) *)
  fu_gld_requests : int array;
  fu_gld_active_threads : int array;
  fu_shared_load_warps : int;
  fu_global_store_warps : int;
  fu_atom_warps : int;
}

val func_summary : Runner.func_result -> func_summary
val func_summary_to_json : func_summary -> Gsim.Stats_io.Json.t

val func_summary_of_json : Gsim.Stats_io.Json.t -> func_summary
(** @raise Gsim.Stats_io.Json.Parse_error on schema mismatch. *)

(** JSON-portable digest of a timing run; [tm_stats] round-trips the
    full {!Gsim.Stats.t}, [tm_profile] (profiled jobs only) the
    {!Gsim.Profile.t} reduced from the run's trace. *)
type timing_summary = {
  tm_launches : int;
  tm_stats : Gsim.Stats.t;
  tm_profile : Gsim.Profile.t option;
}

val timing_summary : ?profile:Gsim.Profile.t -> Runner.timing_result -> timing_summary
val timing_summary_to_json : timing_summary -> Gsim.Stats_io.Json.t

val timing_summary_of_json : Gsim.Stats_io.Json.t -> timing_summary
(** @raise Gsim.Stats_io.Json.Parse_error on schema mismatch. *)

(** {1 Execution} *)

type outcome =
  | Completed of Gsim.Stats_io.Json.t
      (** the job's result payload (the envelope's ["result"] field) *)
  | Failed of string  (** error after the retry was also exhausted *)

type event =
  | Started of job * int  (** attempt number, 0 or 1 *)
  | Finished of job * float  (** wall-clock seconds *)
  | Retried of job * string  (** first attempt failed: reason *)
  | Gave_up of job * string
  | Skipped of job  (** restored from a checkpoint, not re-run *)

exception Garble
(** A [chaos] hook may raise this to make its worker ship deliberately
    corrupted bytes instead of a result envelope, exercising the
    parent's parse-failure → retry path. *)

val exec_job : job -> Gsim.Stats_io.Json.t
(** Run one job in-process (the code a worker executes) and return its
    result payload.  Exposed so tests can compare pool output against
    direct execution. *)

val run :
  ?workers:int ->
  ?timeout:float ->
  ?on_event:(event -> unit) ->
  ?chaos:(job_index:int -> attempt:int -> unit) ->
  ?prefilled:(string * outcome) list ->
  ?on_result:(int -> job -> outcome -> unit) ->
  ?abort_after:int ->
  job list ->
  outcome array
(** Run the jobs over [workers] concurrent forked processes (default 1;
    values < 1 clamp to 1) with a per-job wall-clock [timeout] in
    seconds (default 600).  The result array is indexed by job order.

    [chaos] runs inside the worker before the job body — a test hook
    for fault injection (self-[SIGKILL], a hang the timeout must catch,
    or raising {!Garble}); the default does nothing.

    [prefilled] maps {!job_key}s to already-known outcomes (typically
    {!read_checkpoint} output): matching jobs are not re-run, their
    slot is filled directly and [Skipped] is reported.

    [on_result] fires once per job the moment its outcome is final
    (prefilled jobs excluded) — the checkpoint-append hook.

    [abort_after k] stops the sweep once [k] outcomes are settled
    (counting prefilled), killing in-flight workers without settling
    them; remaining slots read [Failed "never ran"].  A test hook
    simulating a mid-sweep crash.

    On [Sys.Break] the pool is reaped (no orphan workers) and the
    exception propagates; jobs settled before the interrupt have
    already reached [on_result]. *)

val job_envelope : job -> outcome -> Gsim.Stats_io.Json.t
(** Self-describing per-job record: app, scale, label, mode, status and
    payload — the element type of the sweep file's ["results"] array. *)

val sweep_to_json : jobs:job list -> outcomes:outcome array -> Gsim.Stats_io.Json.t
(** Whole-sweep document: [{"schema": "critload-sweep-v1", "results": [...]}]. *)

(** {1 Checkpoints}

    One JSON line per settled job, appended as results arrive.  The
    final sweep document is still assembled from the in-memory outcome
    array in job order, so a resumed sweep emits bytes identical to an
    uninterrupted one — the checkpoint only decides which jobs are
    skipped, never the output layout. *)

val checkpoint_line : job -> outcome -> string
(** One checkpoint record (no trailing newline):
    [{"key": ..., "envelope": <job_envelope>}]. *)

val outcome_of_envelope : Gsim.Stats_io.Json.t -> outcome option
(** Recover an outcome from a {!job_envelope}; [None] if the status
    field is unrecognized. *)

val read_checkpoint : string -> (string * outcome) list
(** Parse a checkpoint file into [(job_key, outcome)] pairs, in file
    order.  Missing file → [[]]; a final line cut short by the crash
    that made the checkpoint matter is silently dropped (that job
    simply re-runs). *)
