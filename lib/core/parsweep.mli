(** Parallel experiment sweep runner.

    Executes (app x scale x config) jobs across a pool of forked worker
    processes.  Each worker runs one job and ships its result back over
    a pipe as JSON (see {!Gsim.Stats_io}), so results survive the
    process boundary in the same machine-readable form the CLI exports.

    Guarantees:
    - results come back in job order, regardless of completion order;
    - a worker that crashes or exceeds the per-job wall-clock timeout
      is killed and its job retried once on a fresh fork (safe because
      simulation is deterministic — see the determinism test);
    - a job that fails twice yields [Failed], never a corrupted or
      missing slot. *)

type mode =
  | Func  (** functional simulation ({!Runner.run} with [Runner.Func]) *)
  | Timing  (** cycle simulation ({!Runner.run} with [Runner.Timing]) *)

type job = {
  sj_app : string;  (** application name, resolved via {!Workloads.Suite} *)
  sj_scale : Workloads.App.scale;
  sj_label : string;  (** configuration label, e.g. ["base"] *)
  sj_cfg : Gsim.Config.t;
  sj_mode : mode;
  sj_warmup : bool;  (** timing runs: fast-forward past cold launches *)
  sj_profile : bool;  (** timing runs: attach a {!Gsim.Profile} reducer *)
  sj_fast_forward : bool;
      (** timing runs: let the cycle loop jump quiescent windows
          (statistics and traces are unchanged by construction) *)
}

val job :
  ?label:string ->
  ?cfg:Gsim.Config.t ->
  ?mode:mode ->
  ?warmup:bool ->
  ?profile:bool ->
  ?fast_forward:bool ->
  ?scale:Workloads.App.scale ->
  string ->
  job
(** [job app] with defaults: label ["base"], default config, [Timing]
    mode, warmup on, profiling off, fast-forward on, [Small] scale. *)

val jobs :
  apps:string list ->
  scales:Workloads.App.scale list ->
  cfgs:(string * Gsim.Config.t) list ->
  ?mode:mode ->
  ?warmup:bool ->
  ?profile:bool ->
  ?fast_forward:bool ->
  unit ->
  job list
(** Cross product, ordered app-major (app, then scale, then config). *)

val job_key : job -> string
(** Stable identity ["app|scale|label|mode"] — unique within one sweep
    cross product and reproducible across restarts with the same CLI
    arguments; the key checkpoints and resume match on.  Profiled jobs
    carry a ["|profile"] suffix so pre-existing checkpoints (written
    before the flag existed) still resolve. *)

(** {1 Content digests and the sweep cache}

    The cache is content-addressed: {!job_digest} covers everything a
    job's result depends on — the app's kernels (as normalized text:
    print → parse → print, so formatting-only edits don't invalidate),
    launch geometry, dataset seed, the full {!Gsim.Config.t} (via
    {!Gsim.Config.to_digest}), the simulation mode, warmup and profile
    settings, and {!Version.sim_tag}.  The config {e label} and the
    fast-forward flag are deliberately excluded: they cannot change the
    result bytes, so jobs differing only there share an entry. *)

val app_fingerprint : Workloads.App.t -> Workloads.App.scale -> string
(** Hex digest naming the app's content at a scale (kernels, launch
    geometry, dataset seed).  Launches are enumerated without
    simulating between them, which is deterministic. *)

val job_digest : job -> string
(** Hex digest addressing a job's cache entry.
    @raise Not_found when [sj_app] names no known application. *)

(** Verdict of probing the store for one job: a {!Cache_hit} passed
    every structural check (entry parses, names the job's digest,
    carries the current {!Version.sim_tag}, and its payload decodes as
    a summary of the job's mode); a legitimately stale entry (another
    schema or simulator revision) is {!Cache_miss}; an entry that
    exists but fails a check — a torn write, truncation, bit rot — is
    {!Cache_damaged} with a reason.  Damage is served exactly like a
    miss, but callers can count and surface it. *)
type cache_probe =
  | Cache_hit of Gsim.Stats_io.Json.t
  | Cache_miss
  | Cache_damaged of string

val cache_probe : dir:string -> job -> cache_probe
(** Probe [dir] for the job's entry; never raises. *)

val cache_lookup : dir:string -> job -> Gsim.Stats_io.Json.t option
(** The cached result payload for a job, if [dir] holds a well-formed
    entry under the job's digest with the current {!Version.sim_tag}.
    Unreadable, torn, or mismatched entries are misses, never errors
    ({!cache_probe} with the damage verdict collapsed into [None]). *)

val cache_store : dir:string -> job -> Gsim.Stats_io.Json.t -> unit
(** Write a job's result payload under its digest (creating [dir] if
    needed), via a temporary file and rename so readers never observe a
    torn entry.  I/O failures degrade to not caching. *)

(** {1 Result summaries} *)

(** JSON-portable digest of a functional run. *)
type func_summary = {
  fu_launches : int;
  fu_ctas : int;
  fu_threads_per_cta : int;
  fu_static_d : int;
  fu_static_n : int;
  fu_check : bool;
  fu_warp_insts : int;
  fu_thread_insts : int;
  fu_gld_warps : int array;  (** by class (D/N) *)
  fu_gld_requests : int array;
  fu_gld_active_threads : int array;
  fu_shared_load_warps : int;
  fu_global_store_warps : int;
  fu_atom_warps : int;
}

val func_summary : Runner.func_result -> func_summary
val func_summary_to_json : func_summary -> Gsim.Stats_io.Json.t

val func_summary_of_json : Gsim.Stats_io.Json.t -> func_summary
(** @raise Gsim.Stats_io.Json.Parse_error on schema mismatch. *)

(** JSON-portable digest of a timing run; [tm_stats] round-trips the
    full {!Gsim.Stats.t}, [tm_profile] (profiled jobs only) the
    {!Gsim.Profile.t} reduced from the run's trace. *)
type timing_summary = {
  tm_launches : int;
  tm_stats : Gsim.Stats.t;
  tm_profile : Gsim.Profile.t option;
}

val timing_summary_to_json : timing_summary -> Gsim.Stats_io.Json.t

val timing_summary_of_json : Gsim.Stats_io.Json.t -> timing_summary
(** @raise Gsim.Stats_io.Json.Parse_error on schema mismatch. *)

(** {1 Execution} *)

type outcome =
  | Completed of Gsim.Stats_io.Json.t
      (** the job's result payload (the envelope's ["result"] field) *)
  | Failed of string  (** error after the retry was also exhausted *)

type event =
  | Started of job * int  (** attempt number, 0 or 1 *)
  | Finished of job * float  (** wall-clock seconds *)
  | Retried of job * string  (** first attempt failed: reason *)
  | Gave_up of job * string
  | Skipped of job  (** restored from a checkpoint, not re-run *)
  | Cached of job  (** served from the content cache, not re-run *)
  | Cache_damage of job * string
      (** the store held a torn or corrupt entry for this job; it was
          treated as a miss and the job re-simulates *)

exception Garble
(** A [chaos] hook may raise this to make its worker ship deliberately
    corrupted bytes instead of a result envelope, exercising the
    parent's parse-failure → retry path. *)

val exec_job : job -> Gsim.Stats_io.Json.t
(** Run one job in-process (the code a worker executes) and return its
    result payload.  Exposed so tests can compare pool output against
    direct execution. *)

val run :
  ?workers:int ->
  ?timeout:float ->
  ?on_event:(event -> unit) ->
  ?chaos:(job_index:int -> attempt:int -> unit) ->
  ?prefilled:(string * outcome) list ->
  ?on_result:(int -> job -> outcome -> unit) ->
  ?abort_after:int ->
  ?cache_dir:string ->
  job list ->
  outcome array
(** Run the jobs over [workers] concurrent forked processes (default 1;
    values < 1 clamp to 1) with a per-job wall-clock [timeout] in
    seconds (default 600).  The result array is indexed by job order.

    [chaos] runs inside the worker before the job body — a test hook
    for fault injection (self-[SIGKILL], a hang the timeout must catch,
    or raising {!Garble}); the default does nothing.

    [prefilled] maps {!job_key}s to already-known outcomes (typically
    {!read_checkpoint} output): matching jobs are not re-run, their
    slot is filled directly and [Skipped] is reported.

    [on_result] fires once per job the moment its outcome is final
    (prefilled jobs excluded) — the checkpoint-append hook.

    [abort_after k] stops the sweep once [k] outcomes are settled
    (counting prefilled), killing in-flight workers without settling
    them; remaining slots read [Failed "never ran"].  A test hook
    simulating a mid-sweep crash.

    [cache_dir] enables the content cache: jobs whose {!job_digest}
    resolves in the directory settle immediately from the stored
    payload ([Cached] is reported, and the outcome still reaches
    [on_result] so checkpoints stay complete); completed jobs are
    stored back.  Checkpoints ([prefilled]) outrank the cache.  Failed
    jobs are never cached.

    On [Sys.Break] the pool is reaped (no orphan workers) and the
    exception propagates; jobs settled before the interrupt have
    already reached [on_result]. *)

val job_envelope : job -> outcome -> Gsim.Stats_io.Json.t
(** Self-describing per-job record: app, scale, label, mode, status and
    payload — the element type of the sweep file's ["results"] array. *)

val sweep_to_json : jobs:job list -> outcomes:outcome array -> Gsim.Stats_io.Json.t
(** Whole-sweep document: [{"schema": "critload-sweep-v1", "results": [...]}]. *)

(** {1 Checkpoints}

    One JSON line per settled job, appended as results arrive.  The
    final sweep document is still assembled from the in-memory outcome
    array in job order, so a resumed sweep emits bytes identical to an
    uninterrupted one — the checkpoint only decides which jobs are
    skipped, never the output layout. *)

val checkpoint_line : job -> outcome -> string
(** One checkpoint record (no trailing newline):
    [{"key": ..., "envelope": <job_envelope>}]. *)

val outcome_of_envelope : Gsim.Stats_io.Json.t -> outcome option
(** Recover an outcome from a {!job_envelope}; [None] if the status
    field is unrecognized. *)

val read_checkpoint :
  ?on_corrupt:(line:int -> reason:string -> unit) ->
  string ->
  (string * outcome) list
(** Parse a checkpoint file into [(job_key, outcome)] pairs, in file
    order.  Missing file → [[]]; a line that does not decode as a
    checkpoint record — typically the final line cut short by the
    crash that made the checkpoint matter — is dropped (that job
    simply re-runs) and reported through [on_corrupt] with its
    1-based line number, so callers can count the damage instead of
    resuming in silence. *)
