(* One function per paper table/figure.  Each returns structured rows
   (used by the tests) and can render itself as text (used by the bench
   harness).  The shapes to compare against the paper are noted in
   EXPERIMENTS.md. *)

module App = Workloads.App
module Suite = Workloads.Suite
module Stats = Gsim.Stats
module Config = Gsim.Config
open Dataflow.Classify

let cat_name = App.category_name

(* Caps keep the cycle simulations tractable; the paper similarly
   simulated only the first billion instructions. *)
let func_cap = 3_000_000

let timing_cap = ref 120_000

(* Override the per-app warp-instruction cap of the timing runs (the
   bench harness exposes this as --cap). *)
let set_timing_cap n = timing_cap := n

let timing_cfg ?(cfg = Config.default) ?max_warp_insts () =
  let max_warp_insts =
    match max_warp_insts with Some n -> n | None -> !timing_cap
  in
  cfg |> Config.with_caps ~max_warp_insts ()

let all_apps = Suite.all

(* Experiments are exploratory drivers for the tests and the bench
   harness, which want a simulator failure as the exception it was. *)
let ok = function Ok r -> r | Error e -> raise (Gsim.Sim_error.Error e)

(* Cache of functional runs (several figures share them). *)
let func_results : (string * App.scale, Runner.func_result) Hashtbl.t =
  Hashtbl.create 16

let func_result ?(check = false) scale app =
  let key = (app.App.name, scale) in
  match Hashtbl.find_opt func_results key with
  | Some r -> r
  | None ->
      let r =
        Runner.Report.func_exn
          (ok (Runner.run ~mode:Runner.Func ~scale ~check ~func_cap app))
      in
      Hashtbl.add func_results key r;
      r

let timing_reports : (string * App.scale, Runner.Report.t) Hashtbl.t =
  Hashtbl.create 16

let timing_report ?cfg scale app =
  match cfg with
  | Some cfg -> ok (Runner.run ~cfg ~scale app)
  | None -> (
      let key = (app.App.name, scale) in
      match Hashtbl.find_opt timing_reports key with
      | Some r -> r
      | None ->
          let r = ok (Runner.run ~cfg:(timing_cfg ()) ~scale app) in
          Hashtbl.add timing_reports key r;
          r)

(* ---------------- Table I ---------------- *)

type table1_row = {
  t1_name : string;
  t1_category : string;
  t1_ctas : int;
  t1_threads_per_cta : int;
  t1_total_insts : int; (* dynamic warp instructions *)
  t1_gld_insts : int; (* dynamic global-load warp instructions *)
  t1_gld_fraction : float;
}

let table1 scale =
  List.map
    (fun app ->
      let r = func_result scale app in
      let fs = r.Runner.fr_fs in
      let total = fs.Gsim.Funcsim.warp_insts in
      let gld = Gsim.Funcsim.total_gld_warps fs in
      {
        t1_name = app.App.name;
        t1_category = cat_name app.App.category;
        t1_ctas = r.Runner.fr_ctas;
        t1_threads_per_cta = r.Runner.fr_threads_per_cta;
        t1_total_insts = total;
        t1_gld_insts = gld;
        t1_gld_fraction =
          (if total = 0 then 0.0 else float_of_int gld /. float_of_int total);
      })
    all_apps

let render_table1 scale =
  Tables.render
    ~title:
      "Table I: application characteristics (dynamic warp instructions, \
       scaled datasets)"
    ~header:
      [ "app"; "category"; "CTAs"; "thr/CTA"; "total insts"; "global loads";
        "load frac" ]
    (List.map
       (fun r ->
         [ r.t1_name; r.t1_category; Tables.int r.t1_ctas;
           Tables.int r.t1_threads_per_cta; Tables.int r.t1_total_insts;
           Tables.int r.t1_gld_insts; Tables.pct r.t1_gld_fraction ])
       (table1 scale))

(* ---------------- Table II ---------------- *)

let render_table2 () =
  Format.asprintf
    "Table II: simulated configuration (Tesla C2050 / GPGPU-Sim defaults)@\n\
     %a@\n"
    Config.pp Config.default

(* ---------------- Table III ---------------- *)

let render_table3 scale =
  Tables.render
    ~title:"Table III: profiler-counter emulation (functional simulation)"
    ~header:
      [ "app"; "gld_request"; "shared_load"; "l1_hit"; "l1_miss";
        "l2_read_hits"; "l2_read_queries"; "l2_sector_queries" ]
    (List.map
       (fun app ->
         let r = func_result scale app in
         let c = Gsim.Funcsim.counters r.Runner.fr_fs in
         [ app.App.name; Tables.int c.Gsim.Funcsim.gld_request;
           Tables.int c.Gsim.Funcsim.shared_load;
           Tables.int c.Gsim.Funcsim.l1_global_load_hit;
           Tables.int c.Gsim.Funcsim.l1_global_load_miss;
           Tables.int c.Gsim.Funcsim.l2_read_hits;
           Tables.int c.Gsim.Funcsim.l2_read_queries;
           Tables.int c.Gsim.Funcsim.l2_read_sector_queries ])
       all_apps)

(* ---------------- Fig 1 ---------------- *)

type fig1_row = {
  f1_name : string;
  f1_static_d : int;
  f1_static_n : int;
  f1_dyn_d_fraction : float; (* fraction of executed global load warps *)
}

let fig1 scale =
  List.map
    (fun app ->
      let r = func_result scale app in
      {
        f1_name = app.App.name;
        f1_static_d = r.Runner.fr_static_d;
        f1_static_n = r.Runner.fr_static_n;
        f1_dyn_d_fraction = Gsim.Funcsim.deterministic_fraction r.Runner.fr_fs;
      })
    all_apps

let render_fig1 scale =
  Tables.render
    ~title:
      "Fig 1: deterministic vs non-deterministic global loads (static \
       instruction counts and dynamic warp fractions)"
    ~header:[ "app"; "static D"; "static N"; "static D frac"; "dynamic D frac" ]
    (List.map
       (fun r ->
         let tot = r.f1_static_d + r.f1_static_n in
         [ r.f1_name; Tables.int r.f1_static_d; Tables.int r.f1_static_n;
           (if tot = 0 then "-"
            else Tables.pct (float_of_int r.f1_static_d /. float_of_int tot));
           Tables.pct r.f1_dyn_d_fraction ])
       (fig1 scale))

(* ---------------- Fig 2 ---------------- *)

type fig2_row = {
  f2_name : string;
  f2_req_per_warp : load_class -> float;
  f2_req_per_thread : load_class -> float;
}

let fig2 scale =
  List.map
    (fun app ->
      let r = timing_report scale app in
      {
        f2_name = app.App.name;
        f2_req_per_warp = Stats.requests_per_warp (Runner.Report.stats_exn r);
        f2_req_per_thread = Stats.requests_per_active_thread (Runner.Report.stats_exn r);
      })
    all_apps

let render_fig2 scale =
  Tables.render
    ~title:
      "Fig 2: memory requests per warp and per active thread (N = \
       non-deterministic, D = deterministic)"
    ~header:[ "app"; "req/warp N"; "req/warp D"; "req/thread N"; "req/thread D" ]
    (List.map
       (fun r ->
         [ r.f2_name;
           Tables.f2 (r.f2_req_per_warp Nondeterministic);
           Tables.f2 (r.f2_req_per_warp Deterministic);
           Tables.f2 (r.f2_req_per_thread Nondeterministic);
           Tables.f2 (r.f2_req_per_thread Deterministic) ])
       (fig2 scale))

(* ---------------- Fig 3 ---------------- *)

let fig3 scale app =
  let r = timing_report scale app in
  Stats.l1_cycle_breakdown (Runner.Report.stats_exn r)

let render_fig3 scale =
  Tables.render
    ~title:"Fig 3: breakdown of L1 data-cache access cycles"
    ~header:
      [ "app"; "hit"; "hit_resv"; "miss"; "fail_tags"; "fail_mshr";
        "fail_icnt" ]
    (List.map
       (fun app ->
         let b = fig3 scale app in
         app.App.name :: List.map Tables.pct (Array.to_list b))
       all_apps)

(* ---------------- Fig 4 ---------------- *)

let fig4 scale app =
  let r = timing_report scale app in
  let n_sms = r.Runner.Report.cfg.Config.n_sms in
  ( Stats.unit_busy_fraction (Runner.Report.stats_exn r) ~n_sms Gsim.Exec.SP,
    Stats.unit_busy_fraction (Runner.Report.stats_exn r) ~n_sms Gsim.Exec.SFU,
    Stats.unit_busy_fraction (Runner.Report.stats_exn r) ~n_sms Gsim.Exec.LDST )

let render_fig4 scale =
  Tables.render
    ~title:"Fig 4: busy fraction of each execution unit's first stage"
    ~header:[ "app"; "SP"; "SFU"; "LD/ST" ]
    (List.map
       (fun app ->
         let sp, sfu, ldst = fig4 scale app in
         [ app.App.name; Tables.pct sp; Tables.pct sfu; Tables.pct ldst ])
       all_apps)

(* ---------------- Fig 5 ---------------- *)

let fig5 scale app =
  let r = timing_report scale app in
  ( Stats.turnaround_breakdown (Runner.Report.stats_exn r) Nondeterministic,
    Stats.turnaround_breakdown (Runner.Report.stats_exn r) Deterministic )

let render_fig5 scale =
  Tables.render
    ~title:
      "Fig 5: average load turnaround breakdown (cycles): unloaded latency \
       + rsrv-fail by previous warps + rsrv-fail by current warp + wasted \
       in L2/DRAM"
    ~header:
      [ "app"; "cls"; "unloaded"; "rsrv_prev"; "rsrv_cur"; "wasted"; "total" ]
    (List.concat_map
       (fun app ->
         let n, d = fig5 scale app in
         let row cls (u, p, c, w) =
           [ app.App.name; cls; Tables.f1 u; Tables.f1 p; Tables.f1 c;
             Tables.f1 w; Tables.f1 (u +. p +. c +. w) ]
         in
         [ row "N" n; row "D" d ])
       all_apps)

(* ---------------- Fig 6 / Fig 7 ---------------- *)

(* Most informative load pc of a class: widest spread of
   requests-per-warp buckets (the paper picked pcs whose request count
   varies), tie-broken by executed warps. *)
let hottest_pc stats cls =
  let score (ps : Stats.pc_stats) =
    (Hashtbl.length ps.Stats.ps_by_nreq, ps.Stats.ps_warps)
  in
  Hashtbl.fold
    (fun _ (ps : Stats.pc_stats) best ->
      if ps.Stats.ps_cls <> cls then best
      else
        match best with
        | Some b when score b >= score ps -> best
        | _ -> Some ps)
    stats.Stats.per_pc None

type fig6_series = {
  f6_app : string;
  f6_kernel : string;
  f6_pc : int;
  f6_cls : load_class;
  f6_points : (int * float) list; (* nreq -> avg turnaround *)
}

let series_of_pc app (ps : Stats.pc_stats) =
  {
    f6_app = app.App.name;
    f6_kernel = ps.Stats.ps_kernel;
    f6_pc = ps.Stats.ps_pc;
    f6_cls = ps.Stats.ps_cls;
    f6_points =
      Hashtbl.fold
        (fun n (b : Stats.nreq_bucket) acc ->
          ( n,
            float_of_int b.Stats.nb_turnaround /. float_of_int (max 1 b.Stats.nb_count)
          )
          :: acc)
        ps.Stats.ps_by_nreq []
      |> List.sort compare;
  }

let fig6 scale =
  List.concat_map
    (fun name ->
      let app = Suite.find name in
      let r = timing_report scale app in
      List.filter_map
        (fun cls ->
          Option.map (series_of_pc app) (hottest_pc (Runner.Report.stats_exn r) cls))
        [ Nondeterministic; Deterministic ])
    [ "bfs"; "sssp"; "spmv" ]

let render_fig6 scale =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Fig 6: load turnaround vs number of generated requests (selected load \
     pcs from bfs, sssp, spmv)\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s (%s pc=0x%x, %s): %s\n" s.f6_app s.f6_kernel
           s.f6_pc
           (short_class s.f6_cls)
           (String.concat " "
              (List.map
                 (fun (n, t) -> Printf.sprintf "%d:%.0f" n t)
                 s.f6_points)));
      ())
    (fig6 scale);
  Buffer.contents buf

type fig7_row = {
  f7_nreq : int;
  f7_count : int;
  f7_common : float;
  f7_gap_l1d : float;
  f7_gap_icnt_l2 : float;
  f7_gap_l2_icnt : float;
}

let fig7 scale =
  let app = Suite.find "bfs" in
  let r = timing_report scale app in
  match hottest_pc (Runner.Report.stats_exn r) Nondeterministic with
  | None -> ((" none", 0), [])
  | Some ps ->
      ( (ps.Stats.ps_kernel, ps.Stats.ps_pc),
        Hashtbl.fold
          (fun n (b : Stats.nreq_bucket) acc ->
            let c = float_of_int (max 1 b.Stats.nb_count) in
            {
              f7_nreq = n;
              f7_count = b.Stats.nb_count;
              f7_common = float_of_int b.Stats.nb_common /. c;
              f7_gap_l1d = float_of_int b.Stats.nb_gap_l1d /. c;
              f7_gap_icnt_l2 = float_of_int b.Stats.nb_gap_icnt_l2 /. c;
              f7_gap_l2_icnt = float_of_int b.Stats.nb_gap_l2_icnt /. c;
            }
            :: acc)
          ps.Stats.ps_by_nreq []
        |> List.sort compare )

let render_fig7 scale =
  let (kernel, pc), rows = fig7 scale in
  Tables.render
    ~title:
      (Printf.sprintf
         "Fig 7: turnaround breakdown vs #requests for the hottest \
          non-deterministic load (%s pc=0x%x)"
         kernel pc)
    ~header:
      [ "#req"; "samples"; "common"; "gap@L1D"; "gap@icnt-L2"; "gap@L2-icnt" ]
    (List.map
       (fun r ->
         [ Tables.int r.f7_nreq; Tables.int r.f7_count; Tables.f1 r.f7_common;
           Tables.f1 r.f7_gap_l1d; Tables.f1 r.f7_gap_icnt_l2;
           Tables.f1 r.f7_gap_l2_icnt ])
       rows)

(* ---------------- Fig 8 ---------------- *)

let fig8 scale app =
  let r = timing_report scale app in
  let s = (Runner.Report.stats_exn r) in
  ( (Stats.l1_miss_ratio s Nondeterministic, Stats.l2_miss_ratio s Nondeterministic),
    (Stats.l1_miss_ratio s Deterministic, Stats.l2_miss_ratio s Deterministic) )

let render_fig8 scale =
  Tables.render
    ~title:"Fig 8: L1 and L2 miss ratios by load class"
    ~header:[ "app"; "L1 N"; "L1 D"; "L2 N"; "L2 D" ]
    (List.map
       (fun app ->
         let (l1n, l2n), (l1d, l2d) = fig8 scale app in
         [ app.App.name; Tables.pct l1n; Tables.pct l1d; Tables.pct l2n;
           Tables.pct l2d ])
       all_apps)

(* ---------------- Fig 9 ---------------- *)

let fig9 scale app =
  Gsim.Funcsim.shared_per_global (func_result scale app).Runner.fr_fs

let render_fig9 scale =
  Tables.render
    ~title:"Fig 9: shared-memory loads per global-memory load"
    ~header:[ "app"; "shared/global" ]
    (List.map
       (fun app -> [ app.App.name; Tables.f2 (fig9 scale app) ])
       all_apps)

(* ---------------- Fig 10 ---------------- *)

let fig10 scale app =
  let fs = (func_result scale app).Runner.fr_fs in
  (Gsim.Funcsim.cold_miss_ratio fs, Gsim.Funcsim.avg_accesses_per_block fs)

let render_fig10 scale =
  Tables.render
    ~title:"Fig 10: cold-miss ratio and average accesses per 128B block"
    ~header:[ "app"; "cold miss"; "accesses/block" ]
    (List.map
       (fun app ->
         let cold, avg = fig10 scale app in
         [ app.App.name; Tables.pct cold; Tables.f1 avg ])
       all_apps)

(* ---------------- Fig 11 ---------------- *)

let fig11 scale app = Gsim.Funcsim.sharing (func_result scale app).Runner.fr_fs

let render_fig11 scale =
  Tables.render
    ~title:"Fig 11: data blocks shared by multiple CTAs"
    ~header:
      [ "app"; "shared-block ratio"; "shared-access ratio"; "avg CTAs/block" ]
    (List.map
       (fun app ->
         let s = fig11 scale app in
         [ app.App.name;
           Tables.pct s.Gsim.Funcsim.sh_block_ratio;
           Tables.pct s.Gsim.Funcsim.sh_access_ratio;
           Tables.f1 s.Gsim.Funcsim.sh_avg_ctas ])
       all_apps)

(* ---------------- Fig 12 ---------------- *)

let fig12 scale app =
  Gsim.Funcsim.cta_distance_histogram (func_result scale app).Runner.fr_fs

let render_fig12 scale =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Fig 12: CTA-distance frequency for blocks shared by multiple CTAs \
     (top 8 distances per app)\n";
  List.iter
    (fun cat ->
      Buffer.add_string buf
        (Printf.sprintf "-- %s --\n" (cat_name cat));
      List.iter
        (fun app ->
          let hist = fig12 scale app in
          let top =
            List.sort (fun (_, a) (_, b) -> compare b a) hist |> fun l ->
            List.filteri (fun i _ -> i < 8) l
          in
          Buffer.add_string buf
            (Printf.sprintf "%-6s %s\n" app.App.name
               (String.concat " "
                  (List.map
                     (fun (d, f) -> Printf.sprintf "d%d:%.0f%%" d (100. *. f))
                     top))))
        (Suite.by_category cat))
    [ App.Linear; App.Image; App.Graph ];
  Buffer.contents buf

(* ---------------- input-size sensitivity ---------------- *)

(* Burtscher et al. (the paper's related work) found that irregularity
   does not change drastically with input size; this experiment checks
   the same for the classification-based metrics. *)
type sensitivity_row = {
  sn_app : string;
  sn_scale : string;
  sn_dyn_d_fraction : float;
  sn_req_per_thread_n : float;
}

let sensitivity apps =
  List.concat_map
    (fun name ->
      let app = Suite.find name in
      List.map
        (fun (scale, sname) ->
          let r = func_result scale app in
          let fs = r.Runner.fr_fs in
          {
            sn_app = name;
            sn_scale = sname;
            sn_dyn_d_fraction = Gsim.Funcsim.deterministic_fraction fs;
            sn_req_per_thread_n =
              Gsim.Funcsim.requests_per_active_thread fs Nondeterministic;
          })
        [ (App.Small, "small"); (App.Default, "default") ])
    apps

let render_sensitivity () =
  Tables.render
    ~title:
      "Input-size sensitivity: the D/N mix and N coalescing barely move \
       with dataset size (cf. Burtscher et al.)"
    ~header:[ "app"; "scale"; "dynamic D frac"; "N req/thread" ]
    (List.map
       (fun r ->
         [ r.sn_app; r.sn_scale; Tables.pct r.sn_dyn_d_fraction;
           Tables.f2 r.sn_req_per_thread_n ])
       (sensitivity [ "spmv"; "bfs"; "ccl"; "mis"; "srad" ]))

(* ---------------- Section X ablations ---------------- *)

type ablation_row = {
  ab_app : string;
  ab_variant : string;
  ab_cycles : int;
  ab_l1_miss_n : float;
  ab_turnaround_n : float;
  ab_fail_frac : float; (* fraction of L1 cycles lost to rsrv fails *)
}

let ablation_run scale app cfg variant =
  let r = ok (Runner.run ~cfg ~scale app) in
  let s = (Runner.Report.stats_exn r) in
  let b = Stats.l1_cycle_breakdown s in
  {
    ab_app = app.App.name;
    ab_variant = variant;
    ab_cycles = s.Stats.cycles;
    ab_l1_miss_n = Stats.l1_miss_ratio s Nondeterministic;
    ab_turnaround_n = Stats.avg_turnaround s Nondeterministic;
    ab_fail_frac = b.(3) +. b.(4) +. b.(5);
  }

let render_ablation ~title rows =
  Tables.render ~title
    ~header:[ "app"; "variant"; "cycles"; "L1 miss N"; "turnaround N"; "rsrv-fail frac" ]
    (List.map
       (fun r ->
         [ r.ab_app; r.ab_variant; Tables.int r.ab_cycles;
           Tables.pct r.ab_l1_miss_n; Tables.f1 r.ab_turnaround_n;
           Tables.pct r.ab_fail_frac ])
       rows)

let graph_apps () = Suite.by_category App.Graph

let ablate_split scale =
  List.concat_map
    (fun app ->
      List.map
        (fun width ->
          let cfg = timing_cfg () |> Config.with_warp_split width in
          ablation_run scale app cfg
            (if width = 0 then "baseline" else Printf.sprintf "split%d" width))
        [ 0; 8; 4 ])
    (graph_apps ())

let render_ablate_split scale =
  render_ablation
    ~title:
      "Section X.A ablation: warp splitting for non-deterministic loads \
       (graph applications)"
    (ablate_split scale)

let ablate_cta scale =
  List.concat_map
    (fun app ->
      List.map
        (fun (sched, name) ->
          let cfg = timing_cfg () |> Config.with_cta_sched sched in
          ablation_run scale app cfg name)
        [ (Config.Round_robin, "round-robin"); (Config.Clustered 2, "cluster2");
          (Config.Clustered 4, "cluster4") ])
    all_apps

let render_ablate_cta scale =
  render_ablation
    ~title:"Section X.B ablation: CTA scheduling (round-robin vs clustered)"
    (ablate_cta scale)

let ablate_prefetch scale =
  List.concat_map
    (fun app ->
      List.map
        (fun (on, name) ->
          let cfg = timing_cfg () |> Config.with_prefetch_ndet on in
          ablation_run scale app cfg name)
        [ (false, "baseline"); (true, "prefetch-N") ])
    (graph_apps () @ [ Suite.find "spmv" ])

let render_ablate_prefetch scale =
  render_ablation
    ~title:
      "Section X.A discussion: next-line prefetching applied only to \
       non-deterministic loads (graph apps + spmv)"
    (ablate_prefetch scale)

let ablate_bypass scale =
  List.concat_map
    (fun app ->
      List.map
        (fun (on, name) ->
          let cfg = timing_cfg () |> Config.with_bypass_ndet on in
          ablation_run scale app cfg name)
        [ (false, "baseline"); (true, "bypass-N") ])
    (graph_apps () @ [ Suite.find "spmv" ])

let render_ablate_bypass scale =
  render_ablation
    ~title:
      "Instruction-aware L1 bypass: non-deterministic loads skip the L1, \
       leaving tags/MSHRs to deterministic traffic (graph apps + spmv)"
    (ablate_bypass scale)

let ablate_warpsched scale =
  List.concat_map
    (fun app ->
      List.map
        (fun (sched, name) ->
          let cfg = timing_cfg () |> Config.with_warp_sched sched in
          ablation_run scale app cfg name)
        [ (Config.Lrr, "lrr"); (Config.Gto, "gto") ])
    all_apps

let render_ablate_warpsched scale =
  render_ablation
    ~title:
      "Warp scheduling: loose round-robin (paper-era default) vs \
       greedy-then-oldest"
    (ablate_warpsched scale)

(* advisor-guided per-pc policies vs the global one-knob variants *)
let ablate_advisor scale =
  List.concat_map
    (fun app ->
      let advice = Advisor.advise_app app scale in
      let guided =
        timing_cfg () |> Config.with_pc_policies (Advisor.policies advice)
      in
      [ ablation_run scale app (timing_cfg ()) "baseline";
        ablation_run scale app guided "advisor" ])
    (graph_apps () @ [ Suite.find "spmv" ])

let render_ablate_advisor scale =
  let advice_text =
    let buf = Buffer.create 1024 in
    List.iter
      (fun app ->
        Buffer.add_string buf
          (Format.asprintf "%a" Advisor.pp_advice
             (Advisor.advise_app app scale)))
      (graph_apps () @ [ Suite.find "spmv" ]);
    Buffer.contents buf
  in
  "Per-load advice (classification x stride x walk detection):\n"
  ^ advice_text ^ "\n"
  ^ render_ablation
      ~title:
        "Section X.A realized: advisor-guided per-instruction policies \
         (prefetch walking N loads, split gathering N loads)"
      (ablate_advisor scale)

let ablate_l2 scale =
  List.concat_map
    (fun app ->
      List.map
        (fun (k, name) ->
          let cfg = timing_cfg () |> Config.with_l2_cluster k in
          let r = ok (Runner.run ~cfg ~scale app) in
          let s = (Runner.Report.stats_exn r) in
          ( app.App.name,
            name,
            s.Stats.cycles,
            Stats.l2_miss_ratio s Nondeterministic,
            Stats.avg_turnaround s Nondeterministic ))
        [ (0, "global-L2"); (2, "cluster2"); (7, "cluster7") ])
    all_apps

let render_ablate_l2 scale =
  Tables.render
    ~title:"Section X.C ablation: semi-global L2 (SM clusters own L2 slices)"
    ~header:[ "app"; "variant"; "cycles"; "L2 miss N"; "turnaround N" ]
    (List.map
       (fun (app, v, cycles, miss, turn) ->
         [ app; v; Tables.int cycles; Tables.pct miss; Tables.f1 turn ])
       (ablate_l2 scale))

(* ---------------- memory-system policy sweep ---------------- *)

(* The tentpole comparison: every app under every first-class policy,
   run through the cached parallel sweep runner with profiling on, so
   the per-class reservation-fail cycles (the paper's Fig 3 wasted
   cycles, split D/N by the profile reducer) can be compared against
   the baseline next to the raw speedup. *)

type policy_row = {
  po_app : string;
  po_category : string;
  po_policy : string;
  po_cycles : int;
  po_speedup : float; (* baseline cycles / policy cycles; 1.0 = baseline *)
  po_fail_d : int; (* D-class L1 reservation-fail probe cycles *)
  po_fail_n : int;
  po_fail_n_delta : float; (* relative N-fail change vs baseline *)
}

let default_policies =
  [ Config.Baseline; Config.Iar Config.default_iar;
    Config.Holistic Config.default_holistic ]

let policy_sweep ?(policies = default_policies) ?(workers = 4) ?cache_dir
    scale =
  let module P = Parsweep in
  let cfg = timing_cfg () in
  let cfgs =
    List.map
      (fun p -> (Config.policy_name p, cfg |> Config.with_policy p))
      policies
  in
  let apps = List.map (fun (a : App.t) -> a.App.name) all_apps in
  let job_list =
    P.jobs ~apps ~scales:[ scale ] ~cfgs ~profile:true ()
  in
  let outcomes = P.run ~workers ?cache_dir job_list in
  let class_fails (tm : P.timing_summary) i =
    match tm.P.tm_profile with
    | Some p -> Array.fold_left ( + ) 0 p.Gsim.Profile.per_class.(i).Gsim.Profile.cp_l1_fail
    | None -> 0
  in
  let decoded =
    List.concat
      (List.mapi
         (fun i (j : P.job) ->
           match outcomes.(i) with
           | P.Failed _ -> []
           | P.Completed payload ->
               [ (j, P.timing_summary_of_json payload) ])
         job_list)
  in
  let baseline app =
    List.find_opt
      (fun ((j : P.job), _) -> j.P.sj_app = app && j.P.sj_label = "baseline")
      decoded
  in
  List.map
    (fun ((j : P.job), tm) ->
      let cycles = tm.P.tm_stats.Stats.cycles in
      let fail_n = class_fails tm (Stats.cls_index Nondeterministic) in
      let speedup, fail_n_delta =
        match baseline j.P.sj_app with
        | Some (_, base) ->
            let bc = base.P.tm_stats.Stats.cycles in
            let bf = class_fails base (Stats.cls_index Nondeterministic) in
            ( (if cycles = 0 then 1.0
               else float_of_int bc /. float_of_int cycles),
              float_of_int (fail_n - bf) /. float_of_int (max 1 bf) )
        | None -> (1.0, 0.0)
      in
      {
        po_app = j.P.sj_app;
        po_category = cat_name (Suite.find j.P.sj_app).App.category;
        po_policy = j.P.sj_label;
        po_cycles = cycles;
        po_speedup = speedup;
        po_fail_d = class_fails tm (Stats.cls_index Deterministic);
        po_fail_n = fail_n;
        po_fail_n_delta = fail_n_delta;
      })
    decoded

let render_policy_rows rows =
  Tables.render
    ~title:
      "Memory-system policies: cycles, speedup over baseline, and \
       L1 reservation-fail cycles by load class"
    ~header:
      [ "app"; "cat"; "policy"; "cycles"; "speedup"; "D fails"; "N fails";
        "N-fail delta" ]
    (List.map
       (fun r ->
         [ r.po_app; r.po_category; r.po_policy; Tables.int r.po_cycles;
           Tables.f2 r.po_speedup; Tables.int r.po_fail_d;
           Tables.int r.po_fail_n; Tables.pct r.po_fail_n_delta ])
       rows)

let render_policy_sweep ?policies ?workers ?cache_dir scale =
  render_policy_rows (policy_sweep ?policies ?workers ?cache_dir scale)
