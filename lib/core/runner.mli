(** Drives an application (a sequence of kernel launches) through the
    functional or cycle simulator, accumulating statistics across
    launches and collecting each kernel's static load classification.

    {!run} is the sole entry point: it selects the simulation {!mode},
    returns a unified {!Report.t}, and folds every failure mode into a
    [result]. *)

(** Which simulator executes the application: [Func] interprets kernels
    directly against global memory (fast, no timing); [Timing] runs the
    cycle-level GPU model and produces a {!Gsim.Stats.t}. *)
type mode = Func | Timing

val mode_name : mode -> string
(** ["func"] / ["timing"] — the sweep JSON / cache spelling. *)

type func_result = {
  fr_app : Workloads.App.t;
  fr_fs : Gsim.Funcsim.t;
  fr_launches : int;
  fr_ctas : int;  (** total CTAs across launches *)
  fr_threads_per_cta : int;  (** of the first launch *)
  fr_static_d : int;  (** static deterministic global-load instructions *)
  fr_static_n : int;
  fr_check : bool;  (** host-reference verification (when requested) *)
}

(** One result shape for both simulation modes. *)
module Report : sig
  type t = {
    app : Workloads.App.t;
    mode : mode;
    cfg : Gsim.Config.t;
    scale : Workloads.App.scale;
    launches : int;
    stats : Gsim.Stats.t option;  (** [Some] iff [mode = Timing] *)
    func : func_result option;  (** [Some] iff [mode = Func] *)
    profile : Gsim.Profile.t option;
        (** [Some] iff [mode = Timing] and profiling was requested *)
    truncated : bool;  (** a cycle / instruction cap cut the run short *)
  }

  val stats_exn : t -> Gsim.Stats.t
  (** @raise Invalid_argument on a functional report. *)

  val func_exn : t -> func_result
  (** @raise Invalid_argument on a timing report. *)
end

val run :
  ?cfg:Gsim.Config.t ->
  ?mode:mode ->
  ?scale:Workloads.App.scale ->
  ?warmup:bool ->
  ?check:bool ->
  ?func_cap:int ->
  ?trace:Gsim.Trace.t ->
  ?trace_kernel:string ->
  ?profile:bool ->
  ?fast_forward:bool ->
  Workloads.App.t ->
  (Report.t, Gsim.Sim_error.t) result
(** Run [app] through the selected simulator (default [Timing], scale
    [Default]).

    Timing mode: with [warmup] (default true) the run fast-forwards
    functionally to the first heavy launch — the memory image is
    shared, so simulation resumes exactly there — and cycle-simulates
    from that point until the configured caps.  [trace] (default null)
    receives memory-system events and [trace_kernel] mutes it for
    launches of every other kernel; [profile] (default false)
    additionally folds the event stream into a {!Gsim.Profile.t}
    returned in the report (teeing with [trace] when both are given).
    [fast_forward] (default true) lets the cycle loop jump over
    quiescent windows — statistics and traces are identical to the
    naive loop by construction (see DESIGN.md), so it is on by default.

    Func mode: the computation is interpreted without timing —
    [cfg.max_warp_insts] is a property of the cycle simulation; the
    separate [func_cap] (default 0 = uncapped) bounds the interpreted
    warp instructions for exploratory runs.  [check] (default true)
    verifies the result against the host reference, skipped when a cap
    cut the run short (verification must observe the complete
    computation).

    Every failure mode — static verification, unbound parameters,
    memory faults, watchdog stalls, kernel construction and parse
    errors — arrives as a structured {!Gsim.Sim_error.t} instead of an
    exception. *)

val warmup_launches :
  ?cfg:Gsim.Config.t -> Workloads.App.t -> Workloads.App.scale -> int
(** Index of the first launch carrying substantial global-load traffic
    (>= 25% of the busiest launch's), found by a functional pre-pass.
    Iterative apps (bfs, sssp, ...) spend their first launches on tiny
    frontiers; measuring only those would mischaracterize the steady
    state the paper reports. *)
