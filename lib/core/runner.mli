(** Drives an application (a sequence of kernel launches) through the
    functional or cycle simulator, accumulating statistics across
    launches and collecting each kernel's static load classification.

    {!run} is the entry point: it selects the simulation {!mode},
    returns a unified {!Report.t}, and folds every failure mode into a
    [result].  The mode-specific entry points further down are retained
    as thin compatibility aliases over the same machinery. *)

(** Which simulator executes the application: [Func] interprets kernels
    directly against global memory (fast, no timing); [Timing] runs the
    cycle-level GPU model and produces a {!Gsim.Stats.t}. *)
type mode = Func | Timing

val mode_name : mode -> string
(** ["func"] / ["timing"] — the sweep JSON / cache spelling. *)

type func_result = {
  fr_app : Workloads.App.t;
  fr_fs : Gsim.Funcsim.t;
  fr_launches : int;
  fr_ctas : int;  (** total CTAs across launches *)
  fr_threads_per_cta : int;  (** of the first launch *)
  fr_static_d : int;  (** static deterministic global-load instructions *)
  fr_static_n : int;
  fr_check : bool;  (** host-reference verification (when requested) *)
}

type timing_result = {
  tr_app : Workloads.App.t;
  tr_stats : Gsim.Stats.t;
  tr_launches : int;
  tr_cfg : Gsim.Config.t;
}

(** One result shape for both simulation modes. *)
module Report : sig
  type t = {
    app : Workloads.App.t;
    mode : mode;
    cfg : Gsim.Config.t;
    scale : Workloads.App.scale;
    launches : int;
    stats : Gsim.Stats.t option;  (** [Some] iff [mode = Timing] *)
    func : func_result option;  (** [Some] iff [mode = Func] *)
    profile : Gsim.Profile.t option;
        (** [Some] iff [mode = Timing] and profiling was requested *)
    truncated : bool;  (** a cycle / instruction cap cut the run short *)
  }

  val stats_exn : t -> Gsim.Stats.t
  (** @raise Invalid_argument on a functional report. *)

  val func_exn : t -> func_result
  (** @raise Invalid_argument on a timing report. *)
end

val run :
  ?cfg:Gsim.Config.t ->
  ?mode:mode ->
  ?scale:Workloads.App.scale ->
  ?warmup:bool ->
  ?check:bool ->
  ?trace:Gsim.Trace.t ->
  ?trace_kernel:string ->
  ?profile:bool ->
  ?fast_forward:bool ->
  Workloads.App.t ->
  (Report.t, Gsim.Sim_error.t) result
(** Run [app] through the selected simulator (default [Timing], scale
    [Default]).

    Timing mode: with [warmup] (default true) the run fast-forwards
    functionally to the first heavy launch — the memory image is
    shared, so simulation resumes exactly there — and cycle-simulates
    from that point until the configured caps.  [trace] (default null)
    receives memory-system events and [trace_kernel] mutes it for
    launches of every other kernel; [profile] (default false)
    additionally folds the event stream into a {!Gsim.Profile.t}
    returned in the report (teeing with [trace] when both are given).
    [fast_forward] (default true) lets the cycle loop jump over
    quiescent windows — statistics and traces are identical to the
    naive loop by construction (see DESIGN.md), so it is on by default.

    Func mode: the full computation is interpreted uncapped —
    [cfg.max_warp_insts] is a property of the cycle simulation, and
    [check] (default true) must observe the complete run to verify it
    against the host reference.

    Every failure mode — static verification, unbound parameters,
    memory faults, watchdog stalls, kernel construction and parse
    errors — arrives as a structured {!Gsim.Sim_error.t} instead of an
    exception. *)

(** {1 Mode-specific entry points}

    Deprecated: thin aliases kept for compatibility; new code should
    call {!run} and read the {!Report.t}. *)

val run_func :
  ?cfg:Gsim.Config.t ->
  ?max_warp_insts:int ->
  ?check:bool ->
  Workloads.App.t ->
  Workloads.App.scale ->
  func_result
(** Deprecated: use [run ~mode:Func].  Functional run; [check] (default
    true) verifies results against the host reference when the run was
    not capped. *)

val warmup_launches :
  ?cfg:Gsim.Config.t -> Workloads.App.t -> Workloads.App.scale -> int
(** Index of the first launch carrying substantial global-load traffic
    (>= 25% of the busiest launch's), found by a functional pre-pass.
    Iterative apps (bfs, sssp, ...) spend their first launches on tiny
    frontiers; measuring only those would mischaracterize the steady
    state the paper reports. *)

val run_timing :
  ?cfg:Gsim.Config.t ->
  ?warmup:bool ->
  ?trace:Gsim.Trace.t ->
  ?trace_kernel:string ->
  ?fast_forward:bool ->
  Workloads.App.t ->
  Workloads.App.scale ->
  timing_result
(** Deprecated: use {!run}.  Cycle-level run; unlike {!run} it raises
    on failure and defaults [fast_forward] to false (the naive loop),
    preserving its historical behaviour exactly. *)

val run_func_result :
  ?cfg:Gsim.Config.t ->
  ?max_warp_insts:int ->
  ?check:bool ->
  Workloads.App.t ->
  Workloads.App.scale ->
  (func_result, Gsim.Sim_error.t) result
(** Deprecated: use [run ~mode:Func].  [run_func] with every failure
    mode returned as a structured {!Gsim.Sim_error.t}. *)

val run_timing_result :
  ?cfg:Gsim.Config.t ->
  ?warmup:bool ->
  ?trace:Gsim.Trace.t ->
  ?trace_kernel:string ->
  Workloads.App.t ->
  Workloads.App.scale ->
  (timing_result, Gsim.Sim_error.t) result
(** Deprecated: use {!run}.  [run_timing], exception-free. *)
