(** Drives an application (a sequence of kernel launches) through the
    functional or cycle simulator, accumulating statistics across
    launches and collecting each kernel's static load classification. *)

type func_result = {
  fr_app : Workloads.App.t;
  fr_fs : Gsim.Funcsim.t;
  fr_launches : int;
  fr_ctas : int;  (** total CTAs across launches *)
  fr_threads_per_cta : int;  (** of the first launch *)
  fr_static_d : int;  (** static deterministic global-load instructions *)
  fr_static_n : int;
  fr_check : bool;  (** host-reference verification (when requested) *)
}

type timing_result = {
  tr_app : Workloads.App.t;
  tr_stats : Gsim.Stats.t;
  tr_launches : int;
  tr_cfg : Gsim.Config.t;
}

val run_func :
  ?cfg:Gsim.Config.t ->
  ?max_warp_insts:int ->
  ?check:bool ->
  Workloads.App.t ->
  Workloads.App.scale ->
  func_result
(** Functional run.  [check] (default true) verifies results against
    the host reference when the run was not capped. *)

val warmup_launches :
  ?cfg:Gsim.Config.t -> Workloads.App.t -> Workloads.App.scale -> int
(** Index of the first launch carrying substantial global-load traffic
    (>= 25% of the busiest launch's), found by a functional pre-pass.
    Iterative apps (bfs, sssp, ...) spend their first launches on tiny
    frontiers; measuring only those would mischaracterize the steady
    state the paper reports. *)

val run_timing :
  ?cfg:Gsim.Config.t ->
  ?warmup:bool ->
  ?trace:Gsim.Trace.t ->
  ?trace_kernel:string ->
  Workloads.App.t ->
  Workloads.App.scale ->
  timing_result
(** Cycle-level run.  With [warmup] (default true) the run
    fast-forwards functionally to the first heavy launch — the memory
    image is shared, so simulation resumes exactly there — and
    cycle-simulates from that point until the configured caps.
    [trace] (default null) receives memory-system events;
    [trace_kernel] mutes it for launches of every other kernel. *)

val run_func_result :
  ?cfg:Gsim.Config.t ->
  ?max_warp_insts:int ->
  ?check:bool ->
  Workloads.App.t ->
  Workloads.App.scale ->
  (func_result, Gsim.Sim_error.t) result
(** [run_func] with every failure mode — static verification, unbound
    parameters, memory faults, watchdog stalls, kernel construction and
    parse errors — returned as a structured {!Gsim.Sim_error.t} instead
    of an exception. *)

val run_timing_result :
  ?cfg:Gsim.Config.t ->
  ?warmup:bool ->
  ?trace:Gsim.Trace.t ->
  ?trace_kernel:string ->
  Workloads.App.t ->
  Workloads.App.scale ->
  (timing_result, Gsim.Sim_error.t) result
(** [run_timing], likewise exception-free. *)
