(* Package and simulator-model version identifiers.

   [version] is what `--version` prints.  [sim_tag] names the revision
   of the *simulated machine's semantics*: it participates in the sweep
   cache's content digests, so bumping it invalidates every cached
   result.  Bump it whenever a change alters simulated statistics for
   some (kernel, config, dataset) — new timing behaviour, a fixed
   accounting bug, a changed default interpretation — and leave it
   alone for pure refactors, CLI work, or performance changes that are
   observably equivalent (e.g. the fast-forward engine, which is
   byte-identical by construction and test). *)

let version = "0.5.0"
let sim_tag = "critload-sim-1"
