(* Plain-text table rendering for the experiment harness: aligned
   columns, a header rule, optional title. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render ?title ~header rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
let f2 f = Printf.sprintf "%.2f" f
let f1 f = Printf.sprintf "%.1f" f
let int i = string_of_int i
