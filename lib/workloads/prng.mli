(** Deterministic pseudo-random numbers for dataset synthesis
    (splitmix64-seeded xoshiro256++).  Every dataset in the suite comes
    from a fixed seed, so runs are exactly reproducible. *)

type t

val create : int -> t
val next : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument when bound <= 0. *)

val float : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> float -> float -> float
val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
