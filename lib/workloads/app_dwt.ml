(* dwt (Rodinia dwt2d): one level of a 2-D Haar wavelet transform,
   rows then columns.  Threads near the frame boundary take a divergent
   mirroring path, reproducing the paper's remark that image kernels
   diverge around frame edges.  All loads deterministic. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let inv_sqrt2 = 0.70710678

(* Row pass with transposed writes: loads stay coalesced (row-major),
   the transpose happens on the store side — the idiom Rodinia's dwt2d
   uses.  Applying the pass twice yields the full 2-D transform.
     dst[j][i]       = (src[i][2j] + src[i][2j+1]) * inv_sqrt2
     dst[j+w/2][i]   = (src[i][2j] - src[i][2j+1]) * inv_sqrt2
   Odd-width frames mirror the last pixel (divergent path). *)
let pass_kernel ~name =
  let b =
    B.create ~name ~params:[ u64 "src"; u64 "dst"; u32 "w"; u32 "h" ] ()
  in
  let sp = B.ld_param b "src" in
  let dp = B.ld_param b "dst" in
  let w = B.ld_param b "w" in
  let h = B.ld_param b "h" in
  let jx = gtid_x b in
  let i = gtid_y b in
  let half = B.shr b w (B.int 1) in
  let pj = B.setp b Lt jx half in
  let pi = B.setp b Lt i h in
  let inside = B.pand b pj pi in
  let index row col = B.add b (B.mul b row w) col in
  let src_at row col = ldf b sp (index row col) in
  let dst_at row col v = stf b dp (index row col) v in
  B.if_ b inside (fun () ->
      let c0 = B.mul b jx (B.int 2) in
      let c1 = B.add b c0 (B.int 1) in
      let a = src_at i c0 in
      (* mirror the final column when 2j+1 runs past the edge *)
      let bv = B.fresh_reg b in
      let p_edge = B.setp b Ge c1 w in
      let in_range = B.pnot b p_edge in
      B.if_ b in_range (fun () ->
          B.emit b (Ptx.Instr.Mov (bv, src_at i c1)));
      B.if_ b p_edge (fun () -> B.emit b (Ptx.Instr.Mov (bv, a)));
      let lo = B.fmul b (B.fadd b a (Reg bv)) (B.float inv_sqrt2) in
      let hi = B.fmul b (B.fsub b a (Reg bv)) (B.float inv_sqrt2) in
      dst_at jx i lo;
      dst_at (B.add b jx half) i hi);
  B.finish b

let size_of_scale = function
  | App.Small -> (64, 64)
  | App.Default -> (192, 192)
  | App.Large -> (512, 512)

let make scale =
  let w, h = size_of_scale scale in
  let rng = Prng.create 0xD3A7 in
  let img = Dataset.image rng w h in
  let global = Gsim.Mem.create (16 * 1024 * 1024) in
  let layout = Layout.create global in
  let src = Dataset.store_f32_array layout img in
  let tmp = Layout.alloc_f32 layout (w * h) in
  let out = Layout.alloc_f32 layout (w * h) in
  let rows = pass_kernel ~name:"dwt_rows" in
  let cols = pass_kernel ~name:"dwt_cols" in
  let launch kernel ~s ~d () =
    Gsim.Launch.create ~kernel
      ~grid:(cdiv (w / 2) 16, cdiv h 16, 1)
      ~block:(16, 16, 1)
      ~params:
        [ Layout.param "src" s; Layout.param "dst" d; Layout.param_int "w" w;
          Layout.param_int "h" h ]
      ~global
  in
  let check () =
    (* host reference: two row passes with transposed writes *)
    let img32 = Array.map round_f32 img in
    let pass src_arr dst_arr =
      for i = 0 to h - 1 do
        for j = 0 to (w / 2) - 1 do
          let a = src_arr.((i * w) + (2 * j)) in
          let b =
            if (2 * j) + 1 < w then src_arr.((i * w) + (2 * j) + 1) else a
          in
          dst_arr.((j * w) + i) <- round_f32 (round_f32 (a +. b) *. inv_sqrt2);
          dst_arr.(((j + (w / 2)) * w) + i) <-
            round_f32 (round_f32 (a -. b) *. inv_sqrt2)
        done
      done
    in
    let tmp_h = Array.make (w * h) 0.0 in
    let out_h = Array.make (w * h) 0.0 in
    pass img32 tmp_h;
    pass tmp_h out_h;
    let ok = ref true in
    for idx = 0 to (w * h) - 1 do
      if
        not
          (App.close_f32 out_h.(idx) (Gsim.Mem.get_f32 global (out + (4 * idx))))
      then ok := false
    done;
    !ok
  in
  App.launch_list ~global ~check
    [ launch rows ~s:src ~d:tmp; launch cols ~s:tmp ~d:out ]

let app =
  {
    App.name = "dwt";
    category = App.Image;
    description = "2-D Haar wavelet transform (row pass + column pass)";
    seed = 0xD3A7;
    make;
  }
