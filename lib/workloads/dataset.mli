(** Synthetic dataset generators replacing the paper's input files,
    preserving the structural properties the characterization depends
    on: dense matrices, skewed-row sparse matrices, pixel frames, and
    power-law (RMAT) or uniform graphs in CSR form. *)

(** Compressed-sparse-row graph/matrix. *)
type csr = {
  n_rows : int;
  n_edges : int;
  row_ptr : int array;  (** length [n_rows + 1] *)
  col_idx : int array;
  values : float array;
}

val dense_matrix : Prng.t -> int -> int -> float array
val image : Prng.t -> int -> int -> float array

val csr_of_edges : n_rows:int -> (int * int) list -> float list -> csr
(** Build CSR from an edge list with per-edge values (counting sort by
    source). *)

val rmat :
  ?a:float -> ?b:float -> ?c:float -> Prng.t -> scale:int -> edge_factor:int ->
  csr
(** RMAT generator (Chakrabarti et al.): 2^scale vertices with the
    skewed degree distribution of real-world graphs — the source of the
    paper's irregular gathers. *)

val uniform_graph : Prng.t -> n:int -> edge_factor:int -> csr
(** Uniform random graph (near-Poisson degrees), like Rodinia's
    graph1M input. *)

val sparse_matrix : Prng.t -> n:int -> avg_nnz_per_row:int -> csr
(** FEM-like sparse matrix: diagonal-clustered with occasional far
    entries and skewed row populations (the paper's Dubcova3). *)

val relabel : Prng.t -> csr -> csr
(** Random permutation of vertex ids.  RMAT clusters hubs at low ids;
    real graph files scatter them, which is what makes frontier gathers
    uncoalesced. *)

val max_degree_vertex : csr -> int
(** A hub — useful as a BFS/SSSP source that reaches a large frontier
    quickly. *)

val symmetrize : csr -> csr
(** Undirected view: every edge inserted in both directions (weights
    preserved; doubles the edge count). *)

val store_csr : Layout.t -> csr -> int * int * int
(** Write row_ptr / col_idx / values into global memory; returns their
    base addresses. *)

val store_f32_array : Layout.t -> float array -> int
val store_u32_array : Layout.t -> int array -> int
