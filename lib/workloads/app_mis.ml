(* mis: maximal independent set, Luby's algorithm.  Vertices carry
   distinct random priorities (input data); an undecided vertex joins
   the set when no undecided neighbour outranks it, and leaves the
   candidate pool when a neighbour joined.  Neighbour status/priority
   loads are non-deterministic. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let st_undecided = 0
let st_in = 1
let st_out = 2

(* Kernel 1: select local priority maxima into the set. *)
let select_kernel () =
  let b =
    B.create ~name:"mis_select"
      ~params:
        [ u64 "row_ptr"; u64 "edges"; u64 "prio"; u64 "state"; u64 "flag";
          u32 "n" ]
      ()
  in
  let rp = B.ld_param b "row_ptr" in
  let ep = B.ld_param b "edges" in
  let pp = B.ld_param b "prio" in
  let sp = B.ld_param b "state" in
  let flag = B.ld_param b "flag" in
  let n = B.ld_param b "n" in
  let v = gtid_x b in
  let pin = B.setp b Lt v n in
  B.if_ b pin (fun () ->
      let sv = ldu b sp v in
      let pund = B.setp b Eq sv (B.int st_undecided) in
      B.if_ b pund (fun () ->
          let pv = ldu b pp v in
          (* best = 1 while no undecided neighbour has higher priority *)
          let best = B.fresh_reg b in
          B.emit b (Ptx.Instr.Mov (best, B.int 1));
          let start = ldu b rp v in
          let stop = ldu b rp (B.add b v (B.int 1)) in
          B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun e ->
              let u = ldu b ep e in
              let su = ldu b sp u in
              let pu = ldu b pp u in
              let p_u_undecided = B.setp b Ne su (B.int st_out) in
              let p_higher = B.setp b Gt pu pv in
              let p_loses = B.pand b p_u_undecided p_higher in
              B.if_ b p_loses (fun () ->
                  B.emit b (Ptx.Instr.Mov (best, B.int 0))));
          let pwin = B.setp b Eq (Reg best) (B.int 1) in
          B.if_ b pwin (fun () ->
              stu b sp v (B.int st_in);
              B.st b Global U32 (B.addr flag) (B.int 1))));
  B.finish b

(* Kernel 2: exclude neighbours of set members. *)
let exclude_kernel () =
  let b =
    B.create ~name:"mis_exclude"
      ~params:[ u64 "row_ptr"; u64 "edges"; u64 "state"; u32 "n" ]
      ()
  in
  let rp = B.ld_param b "row_ptr" in
  let ep = B.ld_param b "edges" in
  let sp = B.ld_param b "state" in
  let n = B.ld_param b "n" in
  let v = gtid_x b in
  let pin = B.setp b Lt v n in
  B.if_ b pin (fun () ->
      let sv = ldu b sp v in
      let pund = B.setp b Eq sv (B.int st_undecided) in
      B.if_ b pund (fun () ->
          let start = ldu b rp v in
          let stop = ldu b rp (B.add b v (B.int 1)) in
          B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun e ->
              let u = ldu b ep e in
              let su = ldu b sp u in
              let pin_set = B.setp b Eq su (B.int st_in) in
              B.if_ b pin_set (fun () -> stu b sp v (B.int st_out)))));
  B.finish b

let size_of_scale = function
  | App.Small -> (512, 3)
  | App.Default -> (8192, 6)
  | App.Large -> (32768, 8)

(* distinct priorities: multiplication by an odd constant is a
   bijection mod 2^30 *)
let priority v = v * 0x9E3779B land 0x3FFFFFFF

let make scale =
  let n, ef = size_of_scale scale in
  let rng = Prng.create 0x315 in
  let g = Dataset.symmetrize (Dataset.uniform_graph rng ~n ~edge_factor:ef) in
  let global = Gsim.Mem.create (64 * 1024 * 1024) in
  let layout = Layout.create global in
  let rp_base = Dataset.store_u32_array layout g.Dataset.row_ptr in
  let ep_base = Dataset.store_u32_array layout g.Dataset.col_idx in
  let prio = Dataset.store_u32_array layout (Array.init n priority) in
  let state = Layout.alloc_u32 layout n in
  let flag = Layout.alloc_u32 layout 1 in
  let select = select_kernel () in
  let exclude = exclude_kernel () in
  let grid = (cdiv n 512, 1, 1) in
  let mk kernel params () =
    Gsim.Launch.create ~kernel ~grid ~block:(512, 1, 1) ~params ~global
  in
  let select_params =
    [ Layout.param "row_ptr" rp_base; Layout.param "edges" ep_base;
      Layout.param "prio" prio; Layout.param "state" state;
      Layout.param "flag" flag; Layout.param_int "n" n ]
  in
  let exclude_params =
    [ Layout.param "row_ptr" rp_base; Layout.param "edges" ep_base;
      Layout.param "state" state; Layout.param_int "n" n ]
  in
  let phase = ref `Select in
  let iters = ref 0 in
  let max_iters = 64 in
  let next_launch () =
    match !phase with
    | `Select ->
        Gsim.Mem.set_u32 global flag 0;
        phase := `Exclude;
        Some (mk select select_params ())
    | `Exclude ->
        phase := `Check;
        Some (mk exclude exclude_params ())
    | `Check ->
        incr iters;
        if Gsim.Mem.get_u32 global flag <> 0 && !iters < max_iters then begin
          Gsim.Mem.set_u32 global flag 0;
          phase := `Exclude;
          Some (mk select select_params ())
        end
        else None
  in
  let check () =
    let st v = Gsim.Mem.get_u32 global (state + (4 * v)) in
    let ok = ref true in
    for v = 0 to n - 1 do
      (* everyone decided *)
      if st v = st_undecided then ok := false;
      (* independence + maximality *)
      let has_in_neighbour = ref false in
      for e = g.Dataset.row_ptr.(v) to g.Dataset.row_ptr.(v + 1) - 1 do
        let u = g.Dataset.col_idx.(e) in
        if u <> v && st u = st_in then has_in_neighbour := true;
        if u <> v && st v = st_in && st u = st_in then ok := false
      done;
      if st v = st_out && not !has_in_neighbour then ok := false
    done;
    !ok
  in
  { App.global; next_launch; check }

let app =
  {
    App.name = "mis";
    category = App.Graph;
    description = "maximal independent set (Luby's algorithm)";
    seed = 0x315;
    make;
  }
