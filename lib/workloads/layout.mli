(** Bump allocator laying out kernel arrays in flat global memory.
    Allocations are 128-byte (cache-line) aligned, matching cudaMalloc
    alignment, so array bases never split lines. *)

type t

val alignment : int
val create : Gsim.Mem.t -> t
val mem : t -> Gsim.Mem.t

val alloc : t -> int -> int
(** Reserve bytes (padded to the alignment); returns the base address.
    @raise Invalid_argument when memory is exhausted. *)

val alloc_f32 : t -> int -> int
val alloc_u32 : t -> int -> int
val fill_f32 : t -> int -> int -> (int -> float) -> unit
val fill_u32 : t -> int -> int -> (int -> int) -> unit

val param : string -> int -> string * int64
(** Kernel-parameter binding for an address. *)

val param_int : string -> int -> string * int64
