(* spmv (Parboil): sparse matrix - dense vector multiplication in CSR
   form, one thread per row.  The row-pointer loads are deterministic
   (indexed by the thread id); the value/column loads are
   non-deterministic (the element index comes from the loaded row
   pointer) and the x-vector gather is doubly so (indexed by a loaded
   column) — the paper's example of a linear-algebra application with
   non-deterministic loads. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let kernel () =
  let b =
    B.create ~name:"spmv_csr"
      ~params:
        [ u64 "row_ptr"; u64 "col_idx"; u64 "vals"; u64 "x"; u64 "y"; u32 "n" ]
      ()
  in
  let rp = B.ld_param b "row_ptr" in
  let cp = B.ld_param b "col_idx" in
  let vp = B.ld_param b "vals" in
  let xp = B.ld_param b "x" in
  let yp = B.ld_param b "y" in
  let n = B.ld_param b "n" in
  let row = gtid_x b in
  let p = B.setp b Lt row n in
  B.if_ b p (fun () ->
      let start = ldu b rp row in
      let stop = ldu b rp (B.add b row (B.int 1)) in
      let acc = f32_acc b in
      B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun e ->
          let v = ldf b vp e in
          let c = ldu b cp e in
          let xv = ldf b xp c in
          B.emit b (Ptx.Instr.Fma (F32, acc, v, xv, Reg acc)));
      stf b yp row (Reg acc));
  B.finish b

let size_of_scale = function
  | App.Small -> 1024
  | App.Default -> 8192
  | App.Large -> 32768

let make scale =
  let n = size_of_scale scale in
  let rng = Prng.create 0x59A7 in
  let m = Dataset.sparse_matrix rng ~n ~avg_nnz_per_row:12 in
  let x = Array.init n (fun _ -> Prng.float_range rng (-1.0) 1.0) in
  let global = Gsim.Mem.create (32 * 1024 * 1024) in
  let layout = Layout.create global in
  let rp_base, ci_base, vs_base = Dataset.store_csr layout m in
  let x_base = Dataset.store_f32_array layout x in
  let y_base = Layout.alloc_f32 layout n in
  let kernel = kernel () in
  let launch () =
    Gsim.Launch.create ~kernel
      ~grid:(cdiv n 192, 1, 1)
      ~block:(192, 1, 1)
      ~params:
        [ Layout.param "row_ptr" rp_base; Layout.param "col_idx" ci_base;
          Layout.param "vals" vs_base; Layout.param "x" x_base;
          Layout.param "y" y_base; Layout.param_int "n" n ]
      ~global
  in
  let check () =
    let x32 = Array.map round_f32 x in
    let ok = ref true in
    for row = 0 to n - 1 do
      let acc = ref 0.0 in
      for e = m.Dataset.row_ptr.(row) to m.Dataset.row_ptr.(row + 1) - 1 do
        acc :=
          round_f32
            ((round_f32 m.Dataset.values.(e) *. x32.(m.Dataset.col_idx.(e)))
            +. !acc)
      done;
      if
        not (App.close_f32 !acc (Gsim.Mem.get_f32 global (y_base + (4 * row))))
      then ok := false
    done;
    !ok
  in
  App.launch_list ~global ~check [ launch ]

let app =
  {
    App.name = "spmv";
    category = App.Linear;
    description = "CSR sparse matrix * dense vector, one thread per row";
    seed = 0x59A7;
    make;
  }
