(* ccl: connected-component labeling by pull-style label propagation.
   Every vertex repeatedly adopts the minimum label among its
   neighbours; labels converge to the minimum vertex id of each
   component.  Neighbour label loads are non-deterministic. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let kernel () =
  let b =
    B.create ~name:"ccl_propagate"
      ~params:[ u64 "row_ptr"; u64 "edges"; u64 "label"; u64 "flag"; u32 "n" ]
      ()
  in
  let rp = B.ld_param b "row_ptr" in
  let ep = B.ld_param b "edges" in
  let lp = B.ld_param b "label" in
  let flag = B.ld_param b "flag" in
  let n = B.ld_param b "n" in
  let v = gtid_x b in
  let pin = B.setp b Lt v n in
  B.if_ b pin (fun () ->
      let lv = ldu b lp v in
      let best = B.fresh_reg b in
      B.emit b (Ptx.Instr.Mov (best, lv));
      let start = ldu b rp v in
      let stop = ldu b rp (B.add b v (B.int 1)) in
      B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun e ->
          let u = ldu b ep e in
          let lu = ldu b lp u in
          B.emit b (Ptx.Instr.Iop (Min, best, Reg best, lu)));
      let pbetter = B.setp b Lt (Reg best) lv in
      B.if_ b pbetter (fun () ->
          stu b lp v (Reg best);
          B.st b Global U32 (B.addr flag) (B.int 1)));
  B.finish b

let size_of_scale = function
  | App.Small -> (512, 3)
  | App.Default -> (8192, 6)
  | App.Large -> (32768, 8)

let make scale =
  let n, ef = size_of_scale scale in
  let rng = Prng.create 0xCC1 in
  let g = Dataset.symmetrize (Dataset.uniform_graph rng ~n ~edge_factor:ef) in
  let global = Gsim.Mem.create (64 * 1024 * 1024) in
  let layout = Layout.create global in
  let rp_base = Dataset.store_u32_array layout g.Dataset.row_ptr in
  let ep_base = Dataset.store_u32_array layout g.Dataset.col_idx in
  let l_base = Layout.alloc_u32 layout n in
  let flag = Layout.alloc_u32 layout 1 in
  Layout.fill_u32 layout l_base n (fun v -> v);
  let kernel = kernel () in
  let launch () =
    Gsim.Launch.create ~kernel
      ~grid:(cdiv n 256, 1, 1)
      ~block:(256, 1, 1)
      ~params:
        [ Layout.param "row_ptr" rp_base; Layout.param "edges" ep_base;
          Layout.param "label" l_base; Layout.param "flag" flag;
          Layout.param_int "n" n ]
      ~global
  in
  let iters = ref 0 in
  let max_iters = 200 in
  let started = ref false in
  let next_launch () =
    if not !started then begin
      started := true;
      Gsim.Mem.set_u32 global flag 0;
      Some (launch ())
    end
    else begin
      incr iters;
      if Gsim.Mem.get_u32 global flag <> 0 && !iters < max_iters then begin
        Gsim.Mem.set_u32 global flag 0;
        Some (launch ())
      end
      else None
    end
  in
  let check () =
    (* host union-find components; device label must equal the minimum
       vertex id of the component *)
    let parent = Array.init n Fun.id in
    let rec find x = if parent.(x) = x then x else begin
        parent.(x) <- find parent.(x);
        parent.(x)
      end
    in
    for v = 0 to n - 1 do
      for e = g.Dataset.row_ptr.(v) to g.Dataset.row_ptr.(v + 1) - 1 do
        let a = find v and b = find g.Dataset.col_idx.(e) in
        if a <> b then parent.(max a b) <- min a b
      done
    done;
    let min_label = Array.make n max_int in
    for v = 0 to n - 1 do
      let r = find v in
      if v < min_label.(r) then min_label.(r) <- v
    done;
    let ok = ref true in
    for v = 0 to n - 1 do
      if Gsim.Mem.get_u32 global (l_base + (4 * v)) <> min_label.(find v) then
        ok := false
    done;
    !ok
  in
  { App.global; next_launch; check }

let app =
  {
    App.name = "ccl";
    category = App.Graph;
    description = "connected-component labeling (min-label propagation)";
    seed = 0xCC1;
    make;
  }
