(* gaus (Rodinia gaussian): Gaussian elimination.  The host loops over
   pivots; per pivot, Fan1 computes the multiplier column and Fan2
   updates the trailing submatrix and the right-hand side.  Pivot index
   [t] arrives as a kernel parameter, so all loads are deterministic —
   the paper's archetype of a many-small-launch linear-algebra code. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

(* m[i*n+t] = a[i*n+t] / a[t*n+t]  for i in (t, n) *)
let fan1_kernel () =
  let b =
    B.create ~name:"gaus_fan1" ~params:[ u64 "a"; u64 "m"; u32 "n"; u32 "t" ] ()
  in
  let ap = B.ld_param b "a" in
  let mp = B.ld_param b "m" in
  let n = B.ld_param b "n" in
  let t = B.ld_param b "t" in
  let idx = gtid_x b in
  let i = B.add b (B.add b idx t) (B.int 1) in
  let p = B.setp b Lt i n in
  B.if_ b p (fun () ->
      let ait = ldf b ap (B.add b (B.mul b i n) t) in
      let att = ldf b ap (B.add b (B.mul b t n) t) in
      let mult = B.fdiv b ait att in
      stf b mp (B.add b (B.mul b i n) t) mult);
  B.finish b

(* a[i][j] -= m[i][t] * a[t][j]; on j = t also b[i] -= m[i][t]*b[t] *)
let fan2_kernel () =
  let b =
    B.create ~name:"gaus_fan2"
      ~params:[ u64 "a"; u64 "bv"; u64 "m"; u32 "n"; u32 "t" ]
      ()
  in
  let ap = B.ld_param b "a" in
  let bvp = B.ld_param b "bv" in
  let mp = B.ld_param b "m" in
  let n = B.ld_param b "n" in
  let t = B.ld_param b "t" in
  let i = B.add b (B.add b (gtid_y b) t) (B.int 1) in
  let j = B.add b (gtid_x b) t in
  let pi = B.setp b Lt i n in
  let pj = B.setp b Lt j n in
  let inside = B.pand b pi pj in
  B.if_ b inside (fun () ->
      let mit = ldf b mp (B.add b (B.mul b i n) t) in
      let atj = ldf b ap (B.add b (B.mul b t n) j) in
      let aij = ldf b ap (B.add b (B.mul b i n) j) in
      let upd = B.fsub b aij (B.fmul b mit atj) in
      stf b ap (B.add b (B.mul b i n) j) upd;
      let pdiag = B.setp b Eq j t in
      B.if_ b pdiag (fun () ->
          let bt = ldf b bvp t in
          let bi = ldf b bvp i in
          let upd = B.fsub b bi (B.fmul b mit bt) in
          stf b bvp i upd));
  B.finish b

let size_of_scale = function
  | App.Small -> 32
  | App.Default -> 96
  | App.Large -> 192

let make scale =
  let n = size_of_scale scale in
  let rng = Prng.create 0x6A05 in
  (* diagonally dominant so elimination is stable *)
  let a =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        let v = Prng.float_range rng (-1.0) 1.0 in
        if i = j then v +. 8.0 else v)
  in
  let bv = Array.init n (fun _ -> Prng.float_range rng (-1.0) 1.0) in
  let global = Gsim.Mem.create (4 * 1024 * 1024) in
  let layout = Layout.create global in
  let a_base = Dataset.store_f32_array layout a in
  let b_base = Dataset.store_f32_array layout bv in
  let m_base = Layout.alloc_f32 layout (n * n) in
  let fan1 = fan1_kernel () in
  let fan2 = fan2_kernel () in
  let launches =
    List.concat_map
      (fun t ->
        [
          (fun () ->
            Gsim.Launch.create ~kernel:fan1
              ~grid:(cdiv (n - t - 1) 16, 1, 1)
              ~block:(16, 1, 1)
              ~params:
                [ Layout.param "a" a_base; Layout.param "m" m_base;
                  Layout.param_int "n" n; Layout.param_int "t" t ]
              ~global);
          (fun () ->
            Gsim.Launch.create ~kernel:fan2
              ~grid:(cdiv (n - t) 16, cdiv (n - t - 1) 16, 1)
              ~block:(16, 16, 1)
              ~params:
                [ Layout.param "a" a_base; Layout.param "bv" b_base;
                  Layout.param "m" m_base; Layout.param_int "n" n;
                  Layout.param_int "t" t ]
              ~global);
        ])
      (List.init (n - 1) Fun.id)
  in
  let check () =
    (* below-diagonal entries must be (numerically) eliminated *)
    let ok = ref true in
    for i = 1 to n - 1 do
      for j = 0 to i - 1 do
        let v = Gsim.Mem.get_f32 global (a_base + (4 * ((i * n) + j))) in
        if Float.abs v > 1e-2 then ok := false
      done
    done;
    !ok
  in
  App.launch_list ~global ~check launches

let app =
  {
    App.name = "gaus";
    category = App.Linear;
    description = "Gaussian elimination (Fan1/Fan2 per pivot)";
    seed = 0x6A05;
    make;
  }
