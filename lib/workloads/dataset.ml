(* Synthetic dataset generators.

   These replace the paper's input files (matrices, images, Dubcova3,
   rmat graphs) with seeded generators that preserve the structural
   properties the characterization depends on: dense regular matrices,
   sparse CSR matrices with skewed rows, pixel frames, and power-law
   (RMAT) or uniform graphs in CSR form. *)

(* Compressed sparse row graph/matrix. *)
type csr = {
  n_rows : int;
  n_edges : int;
  row_ptr : int array; (* length n_rows + 1 *)
  col_idx : int array; (* length n_edges *)
  values : float array; (* length n_edges *)
}

let dense_matrix rng n m =
  Array.init (n * m) (fun _ -> Prng.float_range rng (-1.0) 1.0)

let image rng w h =
  Array.init (w * h) (fun _ -> Prng.float_range rng 0.0 255.0)

(* Build CSR from an edge list (dedup not required for our purposes). *)
let csr_of_edges ~n_rows edges values =
  let deg = Array.make n_rows 0 in
  List.iter (fun (s, _) -> deg.(s) <- deg.(s) + 1) edges;
  let row_ptr = Array.make (n_rows + 1) 0 in
  for i = 0 to n_rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + deg.(i)
  done;
  let n_edges = row_ptr.(n_rows) in
  let col_idx = Array.make (max 1 n_edges) 0 in
  let vals = Array.make (max 1 n_edges) 0.0 in
  let cursor = Array.copy row_ptr in
  List.iter2
    (fun (s, d) v ->
      col_idx.(cursor.(s)) <- d;
      vals.(cursor.(s)) <- v;
      cursor.(s) <- cursor.(s) + 1)
    edges values;
  { n_rows; n_edges; row_ptr; col_idx; values = vals }

(* RMAT generator (Chakrabarti et al.): recursively pick a quadrant with
   probabilities (a,b,c,d), giving the skewed degree distribution of
   real-world graphs — the source of the paper's irregular gathers. *)
let rmat ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) rng ~scale ~edge_factor =
  let n = 1 lsl scale in
  let n_edges = n * edge_factor in
  let edges = ref [] in
  let vals = ref [] in
  for _ = 1 to n_edges do
    let src = ref 0 and dst = ref 0 in
    for bit = scale - 1 downto 0 do
      let r = Prng.float rng in
      if r < a then ()
      else if r < a +. b then dst := !dst lor (1 lsl bit)
      else if r < a +. b +. c then src := !src lor (1 lsl bit)
      else begin
        src := !src lor (1 lsl bit);
        dst := !dst lor (1 lsl bit)
      end
    done;
    edges := (!src, !dst) :: !edges;
    vals := Prng.float_range rng 1.0 100.0 :: !vals
  done;
  csr_of_edges ~n_rows:n !edges !vals

(* Uniform random graph. *)
let uniform_graph rng ~n ~edge_factor =
  let n_edges = n * edge_factor in
  let edges = ref [] and vals = ref [] in
  for _ = 1 to n_edges do
    edges := (Prng.int rng n, Prng.int rng n) :: !edges;
    vals := Prng.float_range rng 1.0 100.0 :: !vals
  done;
  csr_of_edges ~n_rows:n !edges !vals

(* Sparse matrix with a skewed per-row population (geometric-ish), like
   FEM matrices (the paper's Dubcova3). *)
let sparse_matrix rng ~n ~avg_nnz_per_row =
  let edges = ref [] and vals = ref [] in
  for row = 0 to n - 1 do
    let nnz =
      let r = Prng.float rng in
      max 1 (int_of_float (float_of_int avg_nnz_per_row *. 2.0 *. r))
    in
    for _ = 1 to nnz do
      (* cluster around the diagonal, with occasional far entries *)
      let col =
        if Prng.float rng < 0.8 then
          let off = Prng.int rng (max 1 (n / 16)) - (n / 32) in
          (row + off + n) mod n
        else Prng.int rng n
      in
      edges := (row, col) :: !edges;
      vals := Prng.float_range rng (-1.0) 1.0 :: !vals
    done
  done;
  csr_of_edges ~n_rows:n !edges !vals

(* Random relabeling of vertex ids.  RMAT places hubs at low ids; real
   graph files scatter them, which is what makes frontier gathers
   uncoalesced.  Applies a random permutation to all vertex ids. *)
let relabel rng (g : csr) =
  let n = g.n_rows in
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  let edges = ref [] and vals = ref [] in
  for v = 0 to n - 1 do
    for e = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      edges := (perm.(v), perm.(g.col_idx.(e))) :: !edges;
      vals := g.values.(e) :: !vals
    done
  done;
  csr_of_edges ~n_rows:n !edges !vals

(* Vertex with the most out-edges (a hub — useful as a BFS source that
   reaches a large frontier quickly). *)
let max_degree_vertex (g : csr) =
  let best = ref 0 and best_deg = ref (-1) in
  for v = 0 to g.n_rows - 1 do
    let deg = g.row_ptr.(v + 1) - g.row_ptr.(v) in
    if deg > !best_deg then begin
      best := v;
      best_deg := deg
    end
  done;
  !best

(* Undirected view of a graph: every edge is inserted in both
   directions (weights preserved). *)
let symmetrize (g : csr) =
  let edges = ref [] and vals = ref [] in
  for v = 0 to g.n_rows - 1 do
    for e = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      let d = g.col_idx.(e) in
      edges := (v, d) :: (d, v) :: !edges;
      vals := g.values.(e) :: g.values.(e) :: !vals
    done
  done;
  csr_of_edges ~n_rows:g.n_rows !edges !vals

(* Write a CSR structure into global memory; returns the base addresses
   of (row_ptr, col_idx, values). *)
let store_csr layout (g : csr) =
  let rp = Layout.alloc_u32 layout (g.n_rows + 1) in
  Layout.fill_u32 layout rp (g.n_rows + 1) (fun i -> g.row_ptr.(i));
  let ci = Layout.alloc_u32 layout (max 1 g.n_edges) in
  Layout.fill_u32 layout ci (max 1 g.n_edges) (fun i -> g.col_idx.(i));
  let vs = Layout.alloc_f32 layout (max 1 g.n_edges) in
  Layout.fill_f32 layout vs (max 1 g.n_edges) (fun i -> g.values.(i));
  (rp, ci, vs)

let store_f32_array layout arr =
  let base = Layout.alloc_f32 layout (Array.length arr) in
  Layout.fill_f32 layout base (Array.length arr) (fun i -> arr.(i));
  base

let store_u32_array layout arr =
  let base = Layout.alloc_u32 layout (Array.length arr) in
  Layout.fill_u32 layout base (Array.length arr) (fun i -> arr.(i));
  base
