(* bfs (Rodinia): frontier-based breadth-first search — the paper's
   running example (Code 1).  The mask/cost loads are deterministic
   (indexed by tid); the edge and visited gathers are non-deterministic
   (indexed by loaded values).  The host relaunches the two kernels
   until the frontier empties. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

(* Kernel 1: expand the frontier. *)
let k1 () =
  let b =
    B.create ~name:"bfs_k1"
      ~params:
        [ u64 "starts"; u64 "degs"; u64 "edges"; u64 "mask"; u64 "umask";
          u64 "visited"; u64 "cost"; u32 "n" ]
      ()
  in
  let starts = B.ld_param b "starts" in
  let degs = B.ld_param b "degs" in
  let edges = B.ld_param b "edges" in
  let mask = B.ld_param b "mask" in
  let umask = B.ld_param b "umask" in
  let visited = B.ld_param b "visited" in
  let cost = B.ld_param b "cost" in
  let n = B.ld_param b "n" in
  let tid = gtid_x b in
  let pin = B.setp b Lt tid n in
  B.if_ b pin (fun () ->
      let mv = ldu b mask tid in
      let pactive = B.setp b Ne mv (B.int 0) in
      B.if_ b pactive (fun () ->
          stu b mask tid (B.int 0);
          let start = ldu b starts tid in
          let deg = ldu b degs tid in
          let stop = B.add b start deg in
          let my_cost = ldu b cost tid in
          B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun i ->
              let id = ldu b edges i in
              let vis = ldu b visited id in
              let punvis = B.setp b Eq vis (B.int 0) in
              B.if_ b punvis (fun () ->
                  stu b cost id (B.add b my_cost (B.int 1));
                  stu b umask id (B.int 1)))));
  B.finish b

(* Kernel 2: commit the new frontier and raise the continue flag. *)
let k2 () =
  let b =
    B.create ~name:"bfs_k2"
      ~params:[ u64 "mask"; u64 "umask"; u64 "visited"; u64 "flag"; u32 "n" ]
      ()
  in
  let mask = B.ld_param b "mask" in
  let umask = B.ld_param b "umask" in
  let visited = B.ld_param b "visited" in
  let flag = B.ld_param b "flag" in
  let n = B.ld_param b "n" in
  let tid = gtid_x b in
  let pin = B.setp b Lt tid n in
  B.if_ b pin (fun () ->
      let uv = ldu b umask tid in
      let pu = B.setp b Ne uv (B.int 0) in
      B.if_ b pu (fun () ->
          stu b mask tid (B.int 1);
          stu b visited tid (B.int 1);
          stu b umask tid (B.int 0);
          B.st b Global U32 (B.addr flag) (B.int 1)));
  B.finish b

(* Rodinia's graph1M input is a uniform random graph (avg degree 6);
   near-uniform degrees keep warps converged through the edge loop, the
   source of the paper's ~26-requests-per-warp bursts. *)
let size_of_scale = function
  | App.Small -> (1024, 4) (* vertices, avg degree *)
  | App.Default -> (65536, 6)
  | App.Large -> (262144, 6)

let make scale =
  let nv, ef = size_of_scale scale in
  let rng = Prng.create 0xBF5 in
  let g = Dataset.uniform_graph rng ~n:nv ~edge_factor:ef in
  let n = g.Dataset.n_rows in
  let global = Gsim.Mem.create (64 * 1024 * 1024) in
  let layout = Layout.create global in
  let starts = Dataset.store_u32_array layout (Array.sub g.Dataset.row_ptr 0 n) in
  let degs =
    Dataset.store_u32_array layout
      (Array.init n (fun v -> g.Dataset.row_ptr.(v + 1) - g.Dataset.row_ptr.(v)))
  in
  let edges = Dataset.store_u32_array layout g.Dataset.col_idx in
  let mask = Layout.alloc_u32 layout n in
  let umask = Layout.alloc_u32 layout n in
  let visited = Layout.alloc_u32 layout n in
  let cost = Layout.alloc_u32 layout n in
  let flag = Layout.alloc_u32 layout 1 in
  let source = Dataset.max_degree_vertex g in
  Layout.fill_u32 layout cost n (fun _ -> 0xFFFFFF);
  Gsim.Mem.set_u32 global (mask + (4 * source)) 1;
  Gsim.Mem.set_u32 global (visited + (4 * source)) 1;
  Gsim.Mem.set_u32 global (cost + (4 * source)) 0;
  let k1 = k1 () and k2 = k2 () in
  let block = 256 in
  let grid = (cdiv n block, 1, 1) in
  let launch_k1 () =
    Gsim.Launch.create ~kernel:k1 ~grid ~block:(block, 1, 1)
      ~params:
        [ Layout.param "starts" starts; Layout.param "degs" degs;
          Layout.param "edges" edges; Layout.param "mask" mask;
          Layout.param "umask" umask; Layout.param "visited" visited;
          Layout.param "cost" cost; Layout.param_int "n" n ]
      ~global
  in
  let launch_k2 () =
    Gsim.Launch.create ~kernel:k2 ~grid ~block:(block, 1, 1)
      ~params:
        [ Layout.param "mask" mask; Layout.param "umask" umask;
          Layout.param "visited" visited; Layout.param "flag" flag;
          Layout.param_int "n" n ]
      ~global
  in
  (* host driver: do { flag = 0; k1; k2 } while flag *)
  let state = ref `Start in
  let iters = ref 0 in
  let max_iters = 64 in
  let next_launch () =
    match !state with
    | `Start ->
        Gsim.Mem.set_u32 global flag 0;
        state := `After_k1;
        Some (launch_k1 ())
    | `After_k1 ->
        state := `After_k2;
        Some (launch_k2 ())
    | `After_k2 ->
        incr iters;
        if Gsim.Mem.get_u32 global flag <> 0 && !iters < max_iters then begin
          Gsim.Mem.set_u32 global flag 0;
          state := `After_k1;
          Some (launch_k1 ())
        end
        else None
  in
  let check () =
    (* host BFS depths *)
    let dist = Array.make n (-1) in
    dist.(source) <- 0;
    let q = Queue.create () in
    Queue.push source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      for e = g.Dataset.row_ptr.(v) to g.Dataset.row_ptr.(v + 1) - 1 do
        let d = g.Dataset.col_idx.(e) in
        if dist.(d) < 0 then begin
          dist.(d) <- dist.(v) + 1;
          Queue.push d q
        end
      done
    done;
    let ok = ref true in
    for v = 0 to n - 1 do
      let got = Gsim.Mem.get_u32 global (cost + (4 * v)) in
      let expect = if dist.(v) < 0 then 0xFFFFFF else dist.(v) in
      if got <> expect then ok := false
    done;
    !ok
  in
  { App.global; next_launch; check }

let app =
  {
    App.name = "bfs";
    category = App.Graph;
    description = "frontier-based breadth-first search (paper Code 1)";
    seed = 0xBF5;
    make;
  }
