(* srad (Rodinia): speckle-reducing anisotropic diffusion.  As in
   Rodinia, the four neighbour indices of each row/column are
   precomputed in index arrays (iN/iS/jW/jE); the image gathers through
   those loaded indices, so the neighbour loads are non-deterministic
   even though the access pattern is in fact regular — the paper's
   example of "hidden" regularity. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

(* diffusion-coefficient kernel (SRAD kernel 1, simplified shape):
   reads the 4 neighbours through index arrays, computes the
   normalized gradient magnitude and the coefficient c = 1/(1+g). *)
let srad1_kernel () =
  let b =
    B.create ~name:"srad_k1"
      ~params:
        [ u64 "img"; u64 "c"; u64 "iN"; u64 "iS"; u64 "jW"; u64 "jE";
          u32 "rows"; u32 "cols" ]
      ()
  in
  let img = B.ld_param b "img" in
  let cp = B.ld_param b "c" in
  let inp = B.ld_param b "iN" in
  let isp = B.ld_param b "iS" in
  let jwp = B.ld_param b "jW" in
  let jep = B.ld_param b "jE" in
  let rows = B.ld_param b "rows" in
  let cols = B.ld_param b "cols" in
  let col = gtid_x b in
  let row = gtid_y b in
  let pr = B.setp b Lt row rows in
  let pc = B.setp b Lt col cols in
  let inside = B.pand b pr pc in
  B.if_ b inside (fun () ->
      let idx = B.add b (B.mul b row cols) col in
      let jc = ldf b img idx in
      (* neighbour indices loaded from the index arrays -> the image
         gathers below are non-deterministic loads *)
      let i_n = ldu b inp row in
      let i_s = ldu b isp row in
      let j_w = ldu b jwp col in
      let j_e = ldu b jep col in
      let jn = ldf b img (B.add b (B.mul b i_n cols) col) in
      let js = ldf b img (B.add b (B.mul b i_s cols) col) in
      let jw = ldf b img (B.add b (B.mul b row cols) j_w) in
      let je = ldf b img (B.add b (B.mul b row cols) j_e) in
      let dn = B.fsub b jn jc in
      let ds = B.fsub b js jc in
      let dw = B.fsub b jw jc in
      let de = B.fsub b je jc in
      let g2 =
        B.fadd b
          (B.fadd b (B.fmul b dn dn) (B.fmul b ds ds))
          (B.fadd b (B.fmul b dw dw) (B.fmul b de de))
      in
      (* c = 1 / (1 + g2 / (jc*jc + 1e-6)) *)
      let denom = B.fadd b (B.fmul b jc jc) (B.float 1e-6) in
      let q = B.fdiv b g2 denom in
      let cval = B.funary b Rcp (B.fadd b (B.float 1.0) q) in
      stf b cp idx cval);
  B.finish b

(* statistics kernel (Rodinia srad's prepare/reduce stage): per-CTA
   partial sums of the image and its squares via a shared-memory tree
   reduction, used by the host to derive the q0 normalizer. *)
let stats_kernel () =
  let b =
    B.create ~name:"srad_stats"
      ~params:
        [ u64 "img"; u64 "psum"; u64 "psum2"; u32 "rows"; u32 "cols" ]
      ~smem_bytes:(2 * 256 * 4)
      ()
  in
  let img = B.ld_param b "img" in
  let psum = B.ld_param b "psum" in
  let psum2 = B.ld_param b "psum2" in
  let rows = B.ld_param b "rows" in
  let cols = B.ld_param b "cols" in
  let col = gtid_x b in
  let row = gtid_y b in
  let lin = B.add b (B.mul b (B.mov b B.tid_y) (B.int 16)) (B.mov b B.tid_x) in
  let sh_sum i = B.at b ~base:(B.int 0) ~scale:4 i in
  let sh_sum2 i = B.at b ~base:(B.int 1024) ~scale:4 i in
  let pr = B.setp b Lt row rows in
  let pc = B.setp b Lt col cols in
  let inside = B.pand b pr pc in
  (* stage value (or 0 outside the frame) into shared *)
  B.st b Shared F32 (sh_sum lin) (B.float 0.0);
  B.st b Shared F32 (sh_sum2 lin) (B.float 0.0);
  B.if_ b inside (fun () ->
      let v = ldf b img (B.add b (B.mul b row cols) col) in
      B.st b Shared F32 (sh_sum lin) v;
      B.st b Shared F32 (sh_sum2 lin) (B.fmul b v v));
  B.bar b;
  List.iter
    (fun stride ->
      let p_active = B.setp b Lt lin (B.int stride) in
      B.if_ b p_active (fun () ->
          let a = B.ld b Shared F32 (sh_sum lin) in
          let a' = B.ld b Shared F32 (sh_sum (B.add b lin (B.int stride))) in
          B.st b Shared F32 (sh_sum lin) (B.fadd b a a');
          let q = B.ld b Shared F32 (sh_sum2 lin) in
          let q' = B.ld b Shared F32 (sh_sum2 (B.add b lin (B.int stride))) in
          B.st b Shared F32 (sh_sum2 lin) (B.fadd b q q'));
      B.bar b)
    [ 128; 64; 32; 16; 8; 4; 2; 1 ];
  let p0 = B.setp b Eq lin (B.int 0) in
  B.if_ b p0 (fun () ->
      let cta = B.mad b B.ctaid_y B.nctaid_x B.ctaid_x in
      let s = B.ld b Shared F32 (sh_sum (B.int 0)) in
      let s2 = B.ld b Shared F32 (sh_sum2 (B.int 0)) in
      stf b psum cta s;
      stf b psum2 cta s2);
  B.finish b

(* update kernel (SRAD kernel 2 shape): img += 0.25*lambda*div, where
   the divergence uses the coefficient at the S/E neighbours (again
   through the index arrays). *)
let srad2_kernel () =
  let b =
    B.create ~name:"srad_k2"
      ~params:
        [ u64 "img"; u64 "c"; u64 "iS"; u64 "jE"; u32 "rows"; u32 "cols";
          f32 "lambda" ]
      ()
  in
  let img = B.ld_param b "img" in
  let cp = B.ld_param b "c" in
  let isp = B.ld_param b "iS" in
  let jep = B.ld_param b "jE" in
  let rows = B.ld_param b "rows" in
  let cols = B.ld_param b "cols" in
  let lambda = B.ld_param b "lambda" in
  let col = gtid_x b in
  let row = gtid_y b in
  let pr = B.setp b Lt row rows in
  let pc = B.setp b Lt col cols in
  let inside = B.pand b pr pc in
  B.if_ b inside (fun () ->
      let idx = B.add b (B.mul b row cols) col in
      let i_s = ldu b isp row in
      let j_e = ldu b jep col in
      let cc = ldf b cp idx in
      let cs = ldf b cp (B.add b (B.mul b i_s cols) col) in
      let ce = ldf b cp (B.add b (B.mul b row cols) j_e) in
      let d = B.fadd b (B.fadd b cc cs) ce in
      let jc = ldf b img idx in
      let upd = B.fma b (B.fmul b (B.float 0.25) lambda) d jc in
      stf b img idx upd);
  B.finish b

let size_of_scale = function
  | App.Small -> (48, 48)
  | App.Default -> (128, 128)
  | App.Large -> (384, 384)

let make scale =
  let rows, cols = size_of_scale scale in
  let rng = Prng.create 0x5AAD in
  let img = Dataset.image rng cols rows in
  let global = Gsim.Mem.create (16 * 1024 * 1024) in
  let layout = Layout.create global in
  let img_base = Dataset.store_f32_array layout img in
  let c_base = Layout.alloc_f32 layout (rows * cols) in
  let in_arr = Array.init rows (fun i -> max 0 (i - 1)) in
  let is_arr = Array.init rows (fun i -> min (rows - 1) (i + 1)) in
  let jw_arr = Array.init cols (fun j -> max 0 (j - 1)) in
  let je_arr = Array.init cols (fun j -> min (cols - 1) (j + 1)) in
  let in_b = Dataset.store_u32_array layout in_arr in
  let is_b = Dataset.store_u32_array layout is_arr in
  let jw_b = Dataset.store_u32_array layout jw_arr in
  let je_b = Dataset.store_u32_array layout je_arr in
  let k1 = srad1_kernel () in
  let k2 = srad2_kernel () in
  let kstats = stats_kernel () in
  let grid = (cdiv cols 16, cdiv rows 16, 1) in
  let block = (16, 16, 1) in
  let n_ctas = cdiv cols 16 * cdiv rows 16 in
  let psum_base = Layout.alloc_f32 layout n_ctas in
  let psum2_base = Layout.alloc_f32 layout n_ctas in
  let lambda = 0.5 in
  let iters = 2 in
  let stats_launch () =
    Gsim.Launch.create ~kernel:kstats ~grid ~block
      ~params:
        [ Layout.param "img" img_base; Layout.param "psum" psum_base;
          Layout.param "psum2" psum2_base; Layout.param_int "rows" rows;
          Layout.param_int "cols" cols ]
      ~global
  in
  let launches =
    stats_launch
    ::
    List.concat_map
      (fun _ ->
        [
          (fun () ->
            Gsim.Launch.create ~kernel:k1 ~grid ~block
              ~params:
                [ Layout.param "img" img_base; Layout.param "c" c_base;
                  Layout.param "iN" in_b; Layout.param "iS" is_b;
                  Layout.param "jW" jw_b; Layout.param "jE" je_b;
                  Layout.param_int "rows" rows; Layout.param_int "cols" cols ]
              ~global);
          (fun () ->
            Gsim.Launch.create ~kernel:k2 ~grid ~block
              ~params:
                [ Layout.param "img" img_base; Layout.param "c" c_base;
                  Layout.param "iS" is_b; Layout.param "jE" je_b;
                  Layout.param_int "rows" rows; Layout.param_int "cols" cols;
                  ("lambda", Int64.bits_of_float lambda) ]
              ~global);
        ])
      (List.init iters Fun.id)
  in
  let check () =
    (* smoothing sanity: all pixels finite and the total variation of
       the image does not increase *)
    let tv a =
      let acc = ref 0.0 in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 2 do
          acc := !acc +. Float.abs (a ((i * cols) + j) -. a ((i * cols) + j + 1))
        done
      done;
      !acc
    in
    let before = tv (fun k -> round_f32 img.(k)) in
    let after = tv (fun k -> Gsim.Mem.get_f32 global (img_base + (4 * k))) in
    let finite = ref true in
    for k = 0 to (rows * cols) - 1 do
      if not (Float.is_finite (Gsim.Mem.get_f32 global (img_base + (4 * k))))
      then finite := false
    done;
    (* the stats kernel ran once on the original image: its per-CTA
       partial sums must match a host tree reduction exactly *)
    let ctas_x = cdiv cols 16 in
    let stats_ok = ref true in
    for c = 0 to min (n_ctas - 1) 15 do
      let cx = c mod ctas_x and cy = c / ctas_x in
      let vals =
        Array.init 256 (fun lin ->
            let ty = lin / 16 and tx = lin mod 16 in
            let r = (cy * 16) + ty and co = (cx * 16) + tx in
            if r < rows && co < cols then round_f32 img.((r * cols) + co)
            else 0.0)
      in
      let stride = ref 128 in
      while !stride >= 1 do
        for lin = 0 to !stride - 1 do
          vals.(lin) <- round_f32 (vals.(lin) +. vals.(lin + !stride))
        done;
        stride := !stride / 2
      done;
      let got = Gsim.Mem.get_f32 global (psum_base + (4 * c)) in
      if not (App.close_f32 vals.(0) got) then stats_ok := false
    done;
    !finite && after <= before *. 1.05 && !stats_ok
  in
  App.launch_list ~global ~check launches

let app =
  {
    App.name = "srad";
    category = App.Image;
    description =
      "speckle-reducing anisotropic diffusion (index-array neighbour gathers)";
    seed = 0x5AAD;
    make;
  }
